type entry = {
  mutable value : int;
  mutable stride : int;
  mutable confidence : int;
}

type t = {
  stride_mode : bool;
  entries : (Ir.Instr.iid, entry) Hashtbl.t;
  mutable predictions : int;
  mutable correct : int;
}

let create ~stride =
  { stride_mode = stride; entries = Hashtbl.create 256; predictions = 0; correct = 0 }

let max_confidence = 3

let predicted_value t (e : entry) =
  if t.stride_mode then e.value + e.stride else e.value

let predict t iid ~confidence =
  match Hashtbl.find_opt t.entries iid with
  | Some e when e.confidence >= confidence ->
    t.predictions <- t.predictions + 1;
    Some (predicted_value t e)
  | Some _ | None -> None

let train t iid ~actual =
  match Hashtbl.find_opt t.entries iid with
  | Some e ->
    if predicted_value t e = actual then begin
      if e.confidence < max_confidence then e.confidence <- e.confidence + 1;
      t.correct <- t.correct + 1
    end
    else begin
      e.stride <- (if t.stride_mode then actual - e.value else 0);
      e.confidence <- e.confidence / 2
    end;
    e.value <- actual
  | None ->
    Hashtbl.replace t.entries iid { value = actual; stride = 0; confidence = 1 }

let predictions t = t.predictions
let correct t = t.correct
