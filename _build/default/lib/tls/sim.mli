(** The TLS chip-multiprocessor simulator.

    Trace-driven and cycle-stepped: each simulated processor graduates up
    to [issue_width] instructions per cycle from the epoch it is running,
    with latencies from {!Memsys} and stalls from synchronization.
    Sequential program phases run on processor 0 with the same pipeline
    model; reaching a parallelized loop header switches to TLS mode.

    Speculation model (DESIGN.md §4):
    - epochs buffer stores; speculative loads read committed memory
      overlaid with the epoch's own writes;
    - violations are detected at store time (line in a younger epoch's
      speculative-load set) and at commit time (write set vs younger load
      sets); a violated epoch and all younger epochs squash and restart;
    - compiler-forwarded values travel point-to-point over channels with
      {!Config.t.forward_latency}; the signal address buffer violates the
      consumer when the producer stores to an already-signaled address;
    - epochs commit in order; a committed epoch whose exit leaves the loop
      ends the region instance and discards all younger epochs. *)

exception Deadlock of string

(** Run a whole program under TLS.
    @param oracle required when [cfg.oracle <> Oracle_none] or
    [cfg.forward_timing = Forward_perfect].
    @raise Deadlock on a synchronization protocol violation (a consumer
    waits on a channel its completed predecessor never signaled). *)
val run :
  ?max_cycles:int ->
  Config.t ->
  Runtime.Code.t ->
  input:int array ->
  ?oracle:Oracle.t ->
  unit ->
  Simstats.result

(** Sequential timed run (1 processor, same pipeline/cache model), tracking
    cycles inside the loop extents of [track] — used to time the original
    program as the normalization baseline. *)
val run_sequential :
  ?max_cycles:int ->
  Config.t ->
  Runtime.Code.t ->
  input:int array ->
  track:Ir.Region.t list ->
  Simstats.seq_result
