(** Set-associative cache with LRU replacement, used for latency modelling
    only (hits/misses — coherence state is tracked by the simulator's
    speculative sets, not here). *)

type t

(** [create ~sets ~ways] — [sets] must be a power of two. *)
val create : sets:int -> ways:int -> t

(** [access t line] touches a cache line (by line id): returns [true] on
    hit.  On a miss, fills the line, evicting the LRU way. *)
val access : t -> int -> bool

(** Is the line present (no state change)? *)
val probe : t -> int -> bool

val hits : t -> int
val misses : t -> int
