lib/tls/simstats.ml: Runtime
