lib/tls/sim.ml: Array Config Hashtbl Hwsync Int Ir List Memsys Oracle Printf Runtime Set Simstats Vpred
