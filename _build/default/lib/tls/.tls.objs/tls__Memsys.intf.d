lib/tls/memsys.mli: Config
