lib/tls/config.mli: Set
