lib/tls/hwsync.ml: Hashtbl Ir List
