lib/tls/memsys.ml: Array Cache Config
