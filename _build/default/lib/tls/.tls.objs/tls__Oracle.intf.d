lib/tls/oracle.mli: Ir Runtime
