lib/tls/hwsync.mli: Ir
