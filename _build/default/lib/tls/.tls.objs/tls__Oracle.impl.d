lib/tls/oracle.ml: Array Hashtbl Int Ir List Runtime Set
