lib/tls/config.ml: Int Printf Set String
