lib/tls/cache.mli:
