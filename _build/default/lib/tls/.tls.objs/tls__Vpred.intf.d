lib/tls/vpred.mli: Ir
