lib/tls/vpred.ml: Hashtbl Ir
