lib/tls/sim.mli: Config Ir Oracle Runtime Simstats
