lib/tls/cache.ml: Array
