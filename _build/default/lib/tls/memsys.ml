type t = {
  cfg : Config.t;
  l1 : Cache.t array;
  l2 : Cache.t;
  mutable l1_hits : int;
  mutable l1_misses : int;
  mutable l2_misses : int;
}

let create (cfg : Config.t) =
  {
    cfg;
    l1 =
      Array.init cfg.Config.num_procs (fun _ ->
          Cache.create ~sets:cfg.Config.l1_sets ~ways:cfg.Config.l1_ways);
    l2 = Cache.create ~sets:cfg.Config.l2_sets ~ways:cfg.Config.l2_ways;
    l1_hits = 0;
    l1_misses = 0;
    l2_misses = 0;
  }

(* Floor division so negative (garbage speculative) addresses still map to
   stable line ids. *)
let line_of t addr =
  let w = t.cfg.Config.line_words in
  if addr >= 0 then addr / w else ((addr + 1) / w) - 1

let access t ~proc ~addr =
  let line = line_of t addr in
  if Cache.access t.l1.(proc) line then begin
    t.l1_hits <- t.l1_hits + 1;
    t.cfg.Config.l1_hit
  end
  else begin
    t.l1_misses <- t.l1_misses + 1;
    if Cache.access t.l2 line then t.cfg.Config.l1_hit + t.cfg.Config.l2_hit
    else begin
      t.l2_misses <- t.l2_misses + 1;
      t.cfg.Config.l1_hit + t.cfg.Config.l2_hit + t.cfg.Config.mem_lat
    end
  end

let l1_hits t = t.l1_hits
let l1_misses t = t.l1_misses
let l2_misses t = t.l2_misses
