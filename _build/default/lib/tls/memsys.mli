(** Memory-hierarchy latency model: per-processor private L1 data caches
    backed by a shared L2 (Table 1).  Returns the access latency for each
    load/store and maintains the cache state. *)

type t

val create : Config.t -> t

(** [access t ~proc ~addr] — latency in cycles of a data access by
    processor [proc] to word address [addr]. *)
val access : t -> proc:int -> addr:int -> int

(** Line id of a word address. *)
val line_of : t -> int -> int

val l1_hits : t -> int
val l1_misses : t -> int
val l2_misses : t -> int
