(** Value predictor with saturating confidence counters, after the
    hardware value-prediction mechanism the paper compares against [25].
    Indexed by static load id.  Two flavors: last-value (the paper's), and
    stride (predicts last + observed stride) as an extension. *)

type t

(** [create ~stride:false] is the paper's last-value predictor. *)
val create : stride:bool -> t

(** Prediction for a load, if the predictor is confident enough. *)
val predict : t -> Ir.Instr.iid -> confidence:int -> int option

(** Train with the actual value; bumps confidence on a match, resets the
    value and halves confidence on a mismatch. *)
val train : t -> Ir.Instr.iid -> actual:int -> unit

val predictions : t -> int
val correct : t -> int
