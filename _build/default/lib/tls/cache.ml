type t = {
  sets : int;
  ways : int;
  (* tags.(set * ways + way); -1 = invalid. *)
  tags : int array;
  (* LRU stamps parallel to [tags]. *)
  stamps : int array;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~sets ~ways =
  if sets <= 0 || sets land (sets - 1) <> 0 then
    invalid_arg "Cache.create: sets must be a positive power of two";
  if ways <= 0 then invalid_arg "Cache.create: ways must be positive";
  {
    sets;
    ways;
    tags = Array.make (sets * ways) (-1);
    stamps = Array.make (sets * ways) 0;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let find_way t set line =
  let base = set * t.ways in
  let rec loop w =
    if w >= t.ways then None
    else if t.tags.(base + w) = line then Some w
    else loop (w + 1)
  in
  loop 0

let probe t line =
  let set = line land (t.sets - 1) in
  find_way t set line <> None

let access t line =
  t.clock <- t.clock + 1;
  let set = line land (t.sets - 1) in
  let base = set * t.ways in
  match find_way t set line with
  | Some w ->
    t.stamps.(base + w) <- t.clock;
    t.hits <- t.hits + 1;
    true
  | None ->
    t.misses <- t.misses + 1;
    (* Evict LRU (or fill an invalid way). *)
    let victim = ref 0 in
    for w = 1 to t.ways - 1 do
      if t.stamps.(base + w) < t.stamps.(base + !victim) then victim := w
    done;
    t.tags.(base + !victim) <- line;
    t.stamps.(base + !victim) <- t.clock;
    false

let hits t = t.hits
let misses t = t.misses
