module Int_set = Set.Make (Int)

type key = {
  k_region : int;
  k_instance : int;
  k_iteration : int;
  k_iid : Ir.Instr.iid;
}

type t = { values : (key, int array) Hashtbl.t }

(* One tracked (possibly nested) region instance during the recording run. *)
type active = {
  a_region : int;
  a_body : Int_set.t;
  a_header : int;
  a_recording : bool;          (* outermost instances only *)
  a_instance : int;
  mutable a_iteration : int;
}

type rec_state = {
  by_func : (string, (int * int * Int_set.t) list) Hashtbl.t;
  (* func -> (region_id, header, body) *)
  mutable frame_actives : active list list;  (* parallel to the frame stack *)
  mutable depth_actives : int;               (* number of active instances *)
  counters : (int, int) Hashtbl.t;           (* region -> next instance id *)
  acc : (key, int list ref) Hashtbl.t;
}

let current_recorder st =
  let rec scan = function
    | [] -> None
    | actives :: rest -> begin
      match List.find_opt (fun a -> a.a_recording) actives with
      | Some a -> Some a
      | None -> scan rest
    end
  in
  scan st.frame_actives

let record_value st iid v =
  match current_recorder st with
  | None -> ()
  | Some a ->
    let key =
      {
        k_region = a.a_region;
        k_instance = a.a_instance;
        k_iteration = a.a_iteration;
        k_iid = iid;
      }
    in
    let cell =
      match Hashtbl.find_opt st.acc key with
      | Some c -> c
      | None ->
        let c = ref [] in
        Hashtbl.replace st.acc key c;
        c
    in
    cell := v :: !cell

let handle_goto st fname target =
  match st.frame_actives with
  | [] -> ()
  | actives :: rest ->
    let still, closed =
      List.partition (fun a -> Int_set.mem target a.a_body) actives
    in
    st.depth_actives <- st.depth_actives - List.length closed;
    let actives = still in
    let actives =
      match List.find_opt (fun a -> a.a_header = target) actives with
      | Some a ->
        a.a_iteration <- a.a_iteration + 1;
        actives
      | None -> begin
        match Hashtbl.find_opt st.by_func fname with
        | Some regions -> begin
          match
            List.find_opt (fun (_, header, _) -> header = target) regions
          with
          | Some (region_id, header, body) ->
            let recording = st.depth_actives = 0 in
            let instance =
              if recording then begin
                let n =
                  match Hashtbl.find_opt st.counters region_id with
                  | Some n -> n
                  | None -> 0
                in
                Hashtbl.replace st.counters region_id (n + 1);
                n
              end
              else -1
            in
            st.depth_actives <- st.depth_actives + 1;
            {
              a_region = region_id;
              a_body = body;
              a_header = header;
              a_recording = recording;
              a_instance = instance;
              a_iteration = 1;
            }
            :: actives
          | None -> actives
        end
        | None -> actives
      end
    in
    st.frame_actives <- actives :: rest

let handle_pop st =
  match st.frame_actives with
  | actives :: rest ->
    st.depth_actives <- st.depth_actives - List.length actives;
    st.frame_actives <- rest
  | [] -> ()

let record (code : Runtime.Code.t) ~input =
  let by_func = Hashtbl.create 8 in
  List.iter
    (fun (r : Ir.Region.t) ->
      let prev =
        match Hashtbl.find_opt by_func r.Ir.Region.func with
        | Some l -> l
        | None -> []
      in
      Hashtbl.replace by_func r.Ir.Region.func
        ((r.Ir.Region.id, r.Ir.Region.header, Int_set.of_list r.Ir.Region.blocks)
        :: prev))
    code.Runtime.Code.regions;
  let st =
    {
      by_func;
      frame_actives = [ [] ];
      depth_actives = 0;
      counters = Hashtbl.create 8;
      acc = Hashtbl.create 1024;
    }
  in
  let mem = Runtime.Memory.create () in
  Runtime.Memory.store_all mem code.Runtime.Code.initial_stores;
  let base = Runtime.Thread.sequential_hooks mem in
  let hooks =
    {
      base with
      Runtime.Thread.load =
        (fun t i addr ->
          let v = base.Runtime.Thread.load t i addr in
          record_value st i.Ir.Instr.iid v;
          v);
      sync_load =
        (fun t i ch addr ->
          let v = base.Runtime.Thread.sync_load t i ch addr in
          record_value st i.Ir.Instr.iid v;
          v);
    }
  in
  let t = Runtime.Thread.create code ~func_name:"main" ~input in
  let rec loop () =
    match Runtime.Thread.step t hooks with
    | Runtime.Thread.Ran (Runtime.Thread.Exec i) ->
      (match i.Ir.Instr.kind with
      | Ir.Instr.Call (_, _, _) ->
        st.frame_actives <- [] :: st.frame_actives
      | _ -> ());
      loop ()
    | Runtime.Thread.Ran (Runtime.Thread.Goto (fname, _from, target)) ->
      handle_goto st fname target;
      loop ()
    | Runtime.Thread.Ran (Runtime.Thread.Return (_, _)) ->
      handle_pop st;
      loop ()
    | Runtime.Thread.Blocked | Runtime.Thread.Suspended ->
      failwith "Oracle.record: sequential execution blocked"
    | Runtime.Thread.Finished _ -> ()
  in
  loop ();
  let values = Hashtbl.create (Hashtbl.length st.acc) in
  Hashtbl.iter
    (fun key cell ->
      Hashtbl.replace values key (Array.of_list (List.rev !cell)))
    st.acc;
  { values }

let value t ~region ~instance ~iteration ~iid ~occurrence =
  match
    Hashtbl.find_opt t.values
      { k_region = region; k_instance = instance; k_iteration = iteration; k_iid = iid }
  with
  | Some arr when occurrence >= 0 && occurrence < Array.length arr ->
    Some arr.(occurrence)
  | Some _ | None -> None

let size t =
  Hashtbl.fold (fun _ arr acc -> acc + Array.length arr) t.values 0
