(** Perfect-value oracle for the paper's limit studies (Figure 2 "O",
    Figure 6, Figure 9 "E").

    A preparatory sequential run of the transformed program records, for
    every top-level region instance and every epoch (iteration), the
    sequence of values each static load observes.  During simulation an
    oracle-covered load consumes the recorded value — i.e. it is
    "perfectly predicted" — so it neither stalls nor speculates on
    memory. *)

type t

(** Sequentially execute [code] on [input], recording load values inside
    top-level region instances.  Instance numbering matches the TLS
    simulator's activation order. *)
val record : Runtime.Code.t -> input:int array -> t

(** [value t ~region ~instance ~iteration ~iid ~occurrence] — the value of
    the [occurrence]-th dynamic execution (0-based) of load [iid] in that
    epoch, if recorded. *)
val value :
  t ->
  region:int ->
  instance:int ->
  iteration:int ->
  iid:Ir.Instr.iid ->
  occurrence:int ->
  int option

(** Total recorded values (for tests). *)
val size : t -> int
