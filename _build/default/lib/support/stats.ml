let mean = function
  | [] -> 0.0
  | values ->
    List.fold_left ( +. ) 0.0 values /. float_of_int (List.length values)

let geomean = function
  | [] -> 0.0
  | values ->
    let log_sum =
      List.fold_left
        (fun acc v ->
          if v <= 0.0 then invalid_arg "Stats.geomean: non-positive value";
          acc +. log v)
        0.0 values
    in
    exp (log_sum /. float_of_int (List.length values))

let percent num den = if den = 0.0 then 0.0 else 100.0 *. num /. den

let ratio num den = if den = 0.0 then 0.0 else num /. den

let histogram bins values =
  let rec check_increasing = function
    | a :: (b :: _ as rest) ->
      if a >= b then invalid_arg "Stats.histogram: bins must increase";
      check_increasing rest
    | [] | [ _ ] -> ()
  in
  check_increasing bins;
  let bins_arr = Array.of_list bins in
  let n = Array.length bins_arr in
  let counts = Array.make n 0 in
  let place v =
    (* Last bin whose lower bound is <= v. *)
    let rec loop i =
      if i < 0 then ()
      else if v >= bins_arr.(i) then counts.(i) <- counts.(i) + 1
      else loop (i - 1)
    in
    loop (n - 1)
  in
  List.iter place values;
  Array.to_list counts

let round_to d v =
  let scale = 10.0 ** float_of_int d in
  Float.round (v *. scale) /. scale
