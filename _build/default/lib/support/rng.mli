(** Deterministic splittable pseudo-random number generator (SplitMix64).

    Workload input generation and the simulator never consult the global
    [Random] state, so every experiment is reproducible bit-for-bit. *)

type t

(** [create seed] is a fresh generator. *)
val create : int64 -> t

(** [of_int seed] is [create] on the sign-extended seed. *)
val of_int : int -> t

(** [split t] is a new generator statistically independent of [t]. *)
val split : t -> t

(** Next raw 64-bit value. *)
val next64 : t -> int64

(** [int t bound] is uniform in [0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)
val int : t -> int -> int

(** [range t lo hi] is uniform in [lo, hi] inclusive. *)
val range : t -> int -> int -> int

(** [bool t p_num p_den] is [true] with probability [p_num/p_den]. *)
val chance : t -> int -> int -> bool

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit
