(** Plain-text table rendering for experiment output.

    All figures and tables of the paper are regenerated as aligned text
    tables; this module owns the layout so every experiment prints
    consistently. *)

type align = Left | Right

(** [render ~header rows] lays out columns to their widest cell.  Numeric
    alignment is chosen per column via [aligns]; defaults to [Left] for the
    first column and [Right] elsewhere. *)
val render : ?aligns:align list -> header:string list -> string list list -> string

(** [section title] is a visually distinct banner line for grouping output. *)
val section : string -> string

(** Format a float with [d] decimals (no trailing spaces). *)
val float_cell : int -> float -> string

(** Percentage cell with one decimal, e.g. ["42.5"]. *)
val pct_cell : float -> string
