(** Small numeric helpers used by profiles and the experiment harness. *)

(** Arithmetic mean; 0.0 on the empty list. *)
val mean : float list -> float

(** Geometric mean; 0.0 on the empty list.
    @raise Invalid_argument if any element is non-positive. *)
val geomean : float list -> float

(** [percent num den] is [100 * num / den] as a float; 0.0 when [den = 0]. *)
val percent : float -> float -> float

(** [ratio num den] is [num / den]; 0.0 when [den = 0]. *)
val ratio : float -> float -> float

(** [histogram bins values] counts how many values fall into each
    half-open bin [\[b_i, b_{i+1})]; the last bin is open-ended.
    [bins] must be strictly increasing; result has [length bins] cells,
    cell [i] counting values in [\[bins_i, bins_{i+1})]. *)
val histogram : int list -> int list -> int list

(** Round to [d] decimal places. *)
val round_to : int -> float -> float
