type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let of_int seed = create (Int64.of_int seed)

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next64 t in
  create (mix64 seed)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Clear the OCaml sign bit: Int64.to_int wraps 64 bits into 63. *)
  let r = Int64.to_int (next64 t) land max_int in
  r mod bound

let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: empty range";
  lo + int t (hi - lo + 1)

let chance t p_num p_den = int t p_den < p_num

let float t =
  let bits = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  bits /. 9007199254740992.0

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
