type t = { parent : int array; rank : int array }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }

let size t = Array.length t.parent

let check t i =
  if i < 0 || i >= size t then invalid_arg "Union_find: key out of range"

let rec find t i =
  check t i;
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find t p in
    t.parent.(i) <- root;
    root
  end

let union t i j =
  let ri = find t i and rj = find t j in
  if ri = rj then ri
  else if t.rank.(ri) < t.rank.(rj) then begin
    t.parent.(ri) <- rj;
    rj
  end
  else if t.rank.(ri) > t.rank.(rj) then begin
    t.parent.(rj) <- ri;
    ri
  end
  else begin
    t.parent.(rj) <- ri;
    t.rank.(ri) <- t.rank.(ri) + 1;
    ri
  end

let same t i j = find t i = find t j

let classes t =
  let n = size t in
  let by_root = Hashtbl.create 16 in
  for i = n - 1 downto 0 do
    let r = find t i in
    let members = try Hashtbl.find by_root r with Not_found -> [] in
    Hashtbl.replace by_root r (i :: members)
  done;
  Hashtbl.fold (fun _ members acc -> members :: acc) by_root []
  |> List.sort compare

let class_count t =
  let n = size t in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if find t i = i then incr count
  done;
  !count
