type align = Left | Right

let pad align width s =
  let deficit = width - String.length s in
  if deficit <= 0 then s
  else
    match align with
    | Left -> s ^ String.make deficit ' '
    | Right -> String.make deficit ' ' ^ s

let default_aligns n = List.init n (fun i -> if i = 0 then Left else Right)

let render ?aligns ~header rows =
  let ncols = List.length header in
  let aligns =
    match aligns with
    | Some a when List.length a = ncols -> a
    | Some _ -> invalid_arg "Table.render: aligns length mismatch"
    | None -> default_aligns ncols
  in
  List.iter
    (fun row ->
      if List.length row <> ncols then
        invalid_arg "Table.render: row width mismatch")
    rows;
  let widths = Array.make ncols 0 in
  let account row =
    List.iteri
      (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  account header;
  List.iter account rows;
  let render_row row =
    let cells =
      List.mapi
        (fun i cell -> pad (List.nth aligns i) widths.(i) cell)
        row
    in
    String.concat "  " cells
  in
  let rule =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" (render_row header :: rule :: List.map render_row rows)

let section title =
  let bar = String.make (String.length title + 4) '=' in
  Printf.sprintf "%s\n= %s =\n%s" bar title bar

let float_cell d v = Printf.sprintf "%.*f" d v

let pct_cell v = Printf.sprintf "%.1f" v
