lib/support/stats.mli:
