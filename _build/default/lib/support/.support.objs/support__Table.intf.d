lib/support/table.mli:
