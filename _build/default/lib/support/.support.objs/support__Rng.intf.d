lib/support/rng.mli:
