(** Imperative union-find over dense integer keys [0..n-1], with path
    compression and union by rank.  Used to form synchronization groups as
    connected components of the frequent-dependence graph (paper §2.3). *)

type t

(** [create n] is a fresh structure with [n] singleton classes. *)
val create : int -> t

(** Number of keys the structure was created with. *)
val size : t -> int

(** [find t i] is the canonical representative of [i]'s class.
    @raise Invalid_argument if [i] is out of range. *)
val find : t -> int -> int

(** [union t i j] merges the classes of [i] and [j]; returns the
    representative of the merged class. *)
val union : t -> int -> int -> int

(** [same t i j] is [true] iff [i] and [j] are in the same class. *)
val same : t -> int -> int -> bool

(** [classes t] lists every equivalence class whose size is at least 1,
    each as the list of its members in increasing order. *)
val classes : t -> int list list

(** Number of distinct classes. *)
val class_count : t -> int
