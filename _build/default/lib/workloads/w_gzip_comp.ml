(* 164.gzip (compress) — hash-chain string matching: frequent,
   control-sensitive dependences that make speculative parallelization a
   LOSS (paper Table 2: region "speedup" 0.69/0.72), and the one benchmark
   whose results depend on the profiling input (Figure 8's T vs C split).

   Two different store sites update the hash heads: the "literal" path and
   the "match" path.  Which one is hot depends on the input's match
   threshold (the first input word).  The train input drives the literal
   path, the ref input the match path, so a train-profiled compile
   synchronizes the wrong store site: the frequent store at run time is
   not in the group and keeps violating through the signal address
   buffer's detection.  Profiling on ref synchronizes the right site. *)

let source =
  {|
int head[16];   // two hot buckets, one per cache line
int chain[1024];
int data[1024];
int match_count = 0;
int lit_count = 0;
int last_len = 0;
int sig[256];

int hash_of(int v) {
  if (v % 8 < 7) {
    return 0;
  }
  return 8;
}

void insert_literal(int h, int pos) {
  chain[pos] = head[h];
  head[h] = pos;
  lit_count = lit_count + 1;
}

void insert_match(int h, int pos) {
  chain[pos] = head[h];
  head[h] = pos + 1024;
  match_count = match_count + 1;
}

int try_match(int pos, int prev) {
  int j;
  int len;
  len = 0;
  for (j = 0; j < 12 + (data[pos] % 9); j = j + 1) {
    if (data[(pos + j) % 1024] == data[(prev + j) % 1024]) {
      len = len + 1;
    }
  }
  return len;
}

// Sequential output encoding: serialized by its accumulator.
int encode_pass(int seed) {
  int j;
  int acc;
  acc = seed;
  for (j = 0; j < 1024; j = j + 1) {
    acc = acc + ((data[j] << (acc & 3)) ^ (acc >> 1)) % 509;
  }
  return acc;
}

void main() {
  int pos;
  int n;
  int h;
  int prev;
  int len;
  int threshold;
  int i;
  n = inlen();
  threshold = in(0);
  for (i = 0; i < 1024; i = i + 1) {
    data[i] = in((i * 3 + 1) % n) % 5;   // small alphabet: real match lengths
  }
  // Compression loop: the speculative region.
  for (pos = 0; pos < 700; pos = pos + 1) {
    h = hash_of(data[pos % 1024]);
    prev = head[h] % 1024;
    len = try_match(pos % 1024, prev);
    len = len + (last_len >> 3);
    if (len > threshold) {
      insert_match(h, pos % 1024);
    } else {
      insert_literal(h, pos % 1024);
    }
    sig[pos % 256] = sig[pos % 256] ^ (len + h);
    last_len = len;
  }
  print(match_count);
  print(lit_count);
  h = 0;
  for (i = 0; i < 256; i = i + 1) { h = h ^ sig[i]; }
  print(h);
  // Sequential output encoding dominates program time.
  len = 0;
  for (i = 0; i < 160; i = i + 1) {
    len = len + encode_pass(i);
  }
  print(len & 65535);
}
|}

(* Train: high threshold -> the literal path dominates.
   Ref: low threshold -> the match path fires on most positions. *)
let train_input =
  let v = Workload.input_vector ~seed:9909 ~n:44 ~bound:251 in
  v.(0) <- 9;
  v

let ref_input =
  let v = Workload.input_vector ~seed:1010 ~n:60 ~bound:251 in
  v.(0) <- 2;
  v

let workload : Workload.t =
  {
    name = "gzip_comp";
    paper_name = "164.gzip (compress)";
    source;
    train_input;
    ref_input;
    notes =
      "hash-head deps nearly every epoch, produced late: TLS loses; the \
       hot store site flips between train and ref inputs, so the T \
       (train-profiled) build synchronizes the wrong site";
  }
