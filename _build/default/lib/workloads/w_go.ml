(* 099.go — game-playing program: a candidate-move evaluation loop over a
   board, with occasional updates to shared game state.

   Dependence character: epochs are mostly independent board evaluations;
   a global best-move record is updated on a minority of epochs (a max
   reduction), and a "ko state" global on a small fraction.  Unsynchronized
   these cause a steady trickle of violations; the compiler can synchronize
   them (frequency above the 5% threshold).  Coverage is low (~25%): most
   time is spent in tight sequential scanning loops whose epochs are too
   small to parallelize (paper Table 2: 22% coverage). *)

let source =
  {|
int board[1024];
int best_score = -100000;
int best_move = -1;
int ko_state = 0;
int eval_count = 0;

// Tight sequential scan: epochs far below the 15-instruction floor.
int scan(int from, int len) {
  int j;
  int acc;
  acc = 0;
  for (j = from; j < from + len; j = j + 1) {
    acc = acc + board[j % 1024];
  }
  return acc;
}

// Trip count varies with the data: epoch lengths fluctuate, so the
// late-late dependences through record_best do violate under speculation.
int influence(int move, int salt) {
  int j;
  int acc;
  int cell;
  acc = salt;
  for (j = 0; j < 8 + salt % 23; j = j + 1) {
    cell = board[(move * 7 + j * 31) % 1024];
    acc = acc + ((cell ^ (acc << 1)) % 173) + ((acc >> 4) & 63);
    acc = acc + cell % 19;
  }
  return acc;
}

void record_best(int score, int move) {
  if (score > best_score) {
    best_score = score;
    best_move = move;
  }
  eval_count = eval_count + 1;
}

void main() {
  int i;
  int m;
  int n;
  int score;
  int sink;
  n = inlen();
  for (i = 0; i < 1024; i = i + 1) {
    board[i] = (in(i % n) * 13 + i) % 361;
  }
  sink = 0;
  // Candidate-move loop (the speculative region).
  for (m = 0; m < 600; m = m + 1) {
    score = influence(m, in(m % n));
    if (m % 11 == 0) {
      ko_state = ko_state ^ score;
    }
    record_best(score % 5000, m);
  }
  // Sequential bulk: board re-scans dominate program time.
  for (i = 0; i < 150; i = i + 1) {
    sink = sink + scan(i * 3, 600);
  }
  print(best_score);
  print(best_move);
  print(ko_state);
  print(eval_count);
  print(sink);
}
|}

let workload : Workload.t =
  {
    name = "go";
    paper_name = "099.go";
    source;
    train_input = Workload.input_vector ~seed:3303 ~n:40 ~bound:997;
    ref_input = Workload.input_vector ~seed:4404 ~n:56 ~bound:997;
    notes =
      "low-coverage region; max-reduction and ko-state globals updated on a \
       fraction of epochs cause a trickle of violations that compiler sync \
       removes";
  }
