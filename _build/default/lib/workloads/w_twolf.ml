(* 300.twolf — standard-cell placement: the paper's over-synchronization
   example ("software-inserted synchronization can be conservative — it
   synchronizes dependences which may or may not actually happen at
   runtime...  the synchronization code just adds extra overhead — this is
   the cause of the small performance degradation in TWOLF", §4.2).

   The global displacement record is STORED at the very top of each epoch
   and LOADED at the very bottom: the profile reports a 100%-frequency
   dependence, but at run time the consumer's late load always happens
   after the producer's early store, so it essentially never violates.
   Plain speculation (U) already gets the full speedup; compiler sync can
   only add wait/signal overhead. *)

let source =
  {|
int cell_x[1024];
int new_x[1024];
int sig[256];   // one slot per cache line (stride 8)
int disp_record = 0;

void note_move(int d) {
  disp_record = (d * 31) & 8191;
}

int wire_len(int cell, int salt) {
  int j;
  int acc;
  acc = salt;
  for (j = 0; j < 16; j = j + 1) {
    acc = acc + (cell_x[(cell + j * 3) % 1024] ^ (acc << 1)) % 151;
  }
  return acc;
}

void main() {
  int m;
  int n;
  int len;
  int i;
  int d;
  n = inlen();
  for (i = 0; i < 1024; i = i + 1) {
    cell_x[i] = in(i % n) % 907;
  }
  // Move-evaluation loop: the speculative region.
  for (m = 0; m < 620; m = m + 1) {
    if (m % 2 == 0) {
      note_move(m * 7);
    }
    len = wire_len((m * 5) % 1024, in(m % n) % 29);
    new_x[(m * 9) % 1024] = len % 907;
    d = 0;
    if (m % 4 == 3) {
      d = disp_record;
    }
    sig[(m % 32) * 8] = sig[(m % 32) * 8] ^ ((len + d) & 4095);
  }
  d = 0;
  for (i = 0; i < 32; i = i + 1) { d = d ^ sig[i * 8]; }
  print(disp_record);
  print(d);
}
|}

let workload : Workload.t =
  {
    name = "twolf";
    paper_name = "300.twolf";
    source;
    train_input = Workload.input_vector ~seed:3030 ~n:44 ~bound:100003;
    ref_input = Workload.input_vector ~seed:3131 ~n:60 ~bound:100003;
    notes =
      "100%-frequency profiled dependence that never violates at runtime \
       (store at epoch top, load at epoch bottom): compiler sync is pure \
       overhead, the paper's over-synchronization case";
  }
