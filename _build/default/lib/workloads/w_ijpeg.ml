(* 132.ijpeg — image compression: block-parallel transform with essentially
   no inter-epoch memory dependences and very high coverage (97%).

   Each epoch reads one 16-pixel block and writes a disjoint output block;
   a per-block quality accumulator is kept in a wide array so cross-epoch
   reuse distance far exceeds the speculative window.  All configurations
   should obtain close to the full 4-processor region speedup; compiler
   and hardware synchronization have nothing to do (paper Table 2:
   region speedup 1.73 with 97% coverage). *)

let source =
  {|
int image[1024];
int coeffs[16384];
int quality[1024];
int out_checksum = 0;

int transform_block(int base) {
  int j;
  int acc;
  int px;
  acc = 0;
  for (j = 0; j < 16; j = j + 1) {
    px = image[(base + j) % 1024];
    coeffs[base + j] = (px * 3 + (px >> 2)) % 4093 - 512;
    acc = acc + coeffs[base + j] * ((j & 3) + 1);
  }
  return acc;
}

void main() {
  int b;
  int i;
  int n;
  int q;
  n = inlen();
  for (i = 0; i < 1024; i = i + 1) {
    image[i] = (in(i % n) + i * 7) % 1021;
  }
  // Block loop: the speculative region; blocks are disjoint.
  for (b = 0; b < 700; b = b + 1) {
    q = transform_block(b * 16);
    quality[b] = q;
  }
  q = 0;
  for (i = 0; i < 700; i = i + 1) { q = q ^ quality[i]; }
  out_checksum = q;
  print(out_checksum);
}
|}

let workload : Workload.t =
  {
    name = "ijpeg";
    paper_name = "132.ijpeg";
    source;
    train_input = Workload.input_vector ~seed:7707 ~n:36 ~bound:2048;
    ref_input = Workload.input_vector ~seed:8808 ~n:52 ~bound:2048;
    notes =
      "independent block transform; near-ideal speedup in every \
       configuration, no memory synchronization needed";
  }
