(* 253.perlbmk — interpreter: each epoch runs a small bytecode script over
   one input record, sharing a global variable store.

   Opcodes read and write the shared variables [vars] through helpers
   (cloned by the pass).  Writes land early-to-mid epoch and reads happen
   at the top of the next epoch for colliding slots (~30% of epochs), so
   compiler forwarding preserves most overlap while hardware
   stall-until-commit gives up more.  perlbmk is in the paper's
   compiler-wins set (region speedup ~1.2 at 29% coverage). *)

let source =
  {|
int vars[64];   // one interpreter variable per cache line
int bytecode[256];
int records[2048];
int out_sig = 0;
int accum[1024];

int var_read(int slot) {
  return vars[(slot % 4) * 8];
}

void var_write(int slot, int v) {
  vars[(slot % 4) * 8] = v;
}

int run_script(int base, int record) {
  int pc;
  int acc;
  int op;
  int arg;
  acc = record;
  // A script's single side effect on the shared store happens FIRST
  // (publishing its record summary), so the value is produced early.
  if (record % 8 < 6) {
    var_write(record >> 5, record % 8191);
  }
  for (pc = 0; pc < 12; pc = pc + 1) {
    op = bytecode[(base + pc) % 256];
    arg = op >> 4;
    if (op % 4 == 0) {
      acc = acc + var_read(arg);
    }
    if (op % 4 == 1) {
      acc = acc * 5 + (arg << 2);
    }
    if (op % 4 == 2) {
      acc = acc * 3 + (arg ^ acc) % 97;
    }
    if (op % 4 == 3) {
      acc = acc - (acc >> 3) + arg;
    }
  }
  return acc;
}

// Tight sequential report pass.
int tally() {
  int j;
  int t;
  t = 0;
  for (j = 0; j < 1024; j = j + 1) {
    t = t + accum[j];
  }
  return t;
}

void main() {
  int r;
  int n;
  int v;
  int i;
  int sink;
  n = inlen();
  for (i = 0; i < 256; i = i + 1) {
    bytecode[i] = in(i % n) % 4096;
  }
  for (i = 0; i < 2048; i = i + 1) {
    records[i] = in((i * 5 + 2) % n) % 65536;
  }
  // Record-processing loop: the speculative region.
  for (r = 0; r < 520; r = r + 1) {
    v = run_script((r * 7) % 200, records[r % 2048]);
    v = v + ((v << 3) ^ (v >> 5)) % 1021;
    v = v + ((v << 2) ^ (v >> 7)) % 2039;
    accum[r % 1024] = v & 4095;
    out_sig = out_sig ^ (v & 8191);
  }
  // Sequential reporting dominates the rest.
  sink = 0;
  for (i = 0; i < 500; i = i + 1) {
    sink = sink + tally();
  }
  print(vars[0] ^ vars[8] ^ vars[16] ^ vars[24]);
  print(out_sig);
  print(sink);
}
|}

let workload : Workload.t =
  {
    name = "perlbmk";
    paper_name = "253.perlbmk";
    source;
    train_input = Workload.input_vector ~seed:2222 ~n:48 ~bound:60000;
    ref_input = Workload.input_vector ~seed:2323 ~n:64 ~bound:60000;
    notes =
      "interpreter over records sharing a global variable store accessed \
       through cloned helpers; colliding slots depend across epochs with \
       values produced early-to-mid epoch";
  }
