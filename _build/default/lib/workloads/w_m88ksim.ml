(* 124.m88ksim — CPU simulator whose violations are caused by FALSE
   SHARING, not true dependences (paper §4.2).

   The per-unit retirement counters and the pipeline-mode flag live in the
   SAME cache line.  Every epoch reads the mode flag early (the flag is
   never written inside the region, so there is no word-level RAW at all)
   and bumps its unit's counter late.  At line granularity the late
   counter stores conflict with the early flag loads of younger epochs:
   violations on nearly every epoch.  The word-level dependence profile is
   empty, so compiler synchronization has NOTHING to synchronize and
   leaves the violations in place; the hardware table tracks violations at
   the same line granularity as the caches and fixes them (paper: m88ksim
   is the clearest hardware-beats-compiler case). *)

let source =
  {|
int unit_stats[7];
int pipeline_mode = 3;     // shares the cache line with unit_stats
int icache[2048];
int trace[512];
int total_retired = 0;

int decode_and_execute(int word, int mode, int salt) {
  int j;
  int acc;
  acc = word + mode;
  for (j = 0; j < 9 + salt % 17; j = j + 1) {
    acc = acc + ((acc << 2) ^ (word >> (j % 5))) % 211;
    acc = acc & 1048575;
  }
  return acc;
}

// Sequential trace post-processing: serialized by its accumulator.
int postprocess(int seed) {
  int j;
  int acc;
  acc = seed;
  for (j = 0; j < 512; j = j + 1) {
    acc = acc + (trace[j % 512] ^ (acc >> 2));
  }
  return acc;
}

void main() {
  int pc;
  int n;
  int word;
  int unit;
  int result;
  int mode;
  int i;
  n = inlen();
  for (i = 0; i < 2048; i = i + 1) {
    icache[i] = in(i % n) * 97 + i;
  }
  // Simulated instruction loop (the speculative region): fetch+decode,
  // read the mode flag mid-epoch, execute, bump the unit counter late.
  for (pc = 0; pc < 800; pc = pc + 1) {
    word = icache[(pc * 5) % 2048];
    result = decode_and_execute(word, 0, word % 29);
    mode = pipeline_mode;
    result = decode_and_execute(result, mode, (word >> 3) % 29);
    unit = (pc * 3) % 4;
    unit_stats[unit] = unit_stats[unit] + (result & 15);
    trace[pc % 512] = result & 255;
  }
  total_retired = unit_stats[0] + unit_stats[1] + unit_stats[2] + unit_stats[3];
  i = 0;
  for (pc = 0; pc < 512; pc = pc + 1) { i = i ^ trace[pc]; }
  // Sequential trace post-processing.
  mode = 0;
  for (pc = 0; pc < 40; pc = pc + 1) {
    mode = mode + postprocess(pc);
  }
  print(total_retired);
  print(i);
  print(mode & 65535);
}
|}

let workload : Workload.t =
  {
    name = "m88ksim";
    paper_name = "124.m88ksim";
    source;
    train_input = Workload.input_vector ~seed:5505 ~n:44 ~bound:4096;
    ref_input = Workload.input_vector ~seed:6606 ~n:60 ~bound:4096;
    notes =
      "pure false sharing: mode flag and unit counters in one cache line; \
       no word-level RAW exists, so the compiler has nothing to \
       synchronize; hardware line-granularity sync wins";
  }
