lib/workloads/w_go.ml: Workload
