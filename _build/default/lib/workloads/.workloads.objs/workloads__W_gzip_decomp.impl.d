lib/workloads/w_gzip_decomp.ml: Workload
