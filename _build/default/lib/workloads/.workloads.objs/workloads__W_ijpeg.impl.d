lib/workloads/w_ijpeg.ml: Workload
