lib/workloads/registry.ml: List String W_bzip2 W_crafty W_gap W_gcc W_go W_gzip_comp W_gzip_decomp W_ijpeg W_m88ksim W_mcf W_parser W_perlbmk W_twolf W_vpr Workload
