lib/workloads/w_gzip_comp.ml: Array Workload
