lib/workloads/workload.ml: Array Support
