lib/workloads/w_m88ksim.ml: Workload
