lib/workloads/w_twolf.ml: Workload
