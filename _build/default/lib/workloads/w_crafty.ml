(* 186.crafty — chess: bitboard move generation/evaluation, mostly
   independent epochs with an occasional transposition-table hit counter.

   Low coverage (~14%: deep sequential search bookkeeping dominates); the
   hash-hit counter is touched on ~8% of epochs, just above the paper's
   5% synchronization threshold — this is the benchmark class for which
   Figure 6 shows the 5% threshold matters.  Region speedup ~1.16. *)

let source =
  {|
int piece_bb[64];
int tt_hits = 0;
int eval_sig = 0;
int history[1024];

int popcount16(int x) {
  int c;
  c = 0;
  c = c + (x & 1) + ((x >> 1) & 1) + ((x >> 2) & 1) + ((x >> 3) & 1);
  c = c + ((x >> 4) & 1) + ((x >> 5) & 1) + ((x >> 6) & 1) + ((x >> 7) & 1);
  c = c + ((x >> 8) & 1) + ((x >> 9) & 1) + ((x >> 10) & 1) + ((x >> 11) & 1);
  c = c + ((x >> 12) & 1) + ((x >> 13) & 1) + ((x >> 14) & 1) + ((x >> 15) & 1);
  return c;
}

int evaluate_move(int mv, int salt) {
  int j;
  int acc;
  int bb;
  acc = salt;
  for (j = 0; j < 7 + salt % 11; j = j + 1) {
    bb = piece_bb[(mv * 11 + j * 5) % 64];
    acc = acc + popcount16(bb ^ (acc & 65535));
  }
  return acc;
}

// Sequential history decay: the accumulator serializes the outer loop,
// so region selection must leave it alone.
int decay_history(int seed) {
  int j;
  int acc;
  acc = seed;
  for (j = 0; j < 1024; j = j + 1) {
    history[j] = history[j] - (history[j] >> 3);
    acc = acc + history[j];
  }
  return acc;
}

void main() {
  int mv;
  int n;
  int score;
  int round;
  int i;
  n = inlen();
  for (i = 0; i < 64; i = i + 1) {
    piece_bb[i] = in(i % n) * 2654435 % 16777216;
  }
  for (i = 0; i < 1024; i = i + 1) {
    history[i] = in((i * 7) % n) % 256;
  }
  // Move-evaluation loop: the speculative region.
  for (mv = 0; mv < 560; mv = mv + 1) {
    score = evaluate_move(mv, in(mv % n) % 53);
    if (score % 12 == 0) {
      tt_hits = tt_hits + 1;
    }
    eval_sig = eval_sig ^ (score & 2047);
    history[(mv * 13) % 1024] = score & 255;
  }
  // Sequential search bookkeeping dominates.
  score = 0;
  for (round = 0; round < 220; round = round + 1) {
    score = score + decay_history(round);
  }
  i = 0;
  for (mv = 0; mv < 1024; mv = mv + 1) { i = i ^ history[mv]; }
  print(tt_hits);
  print(eval_sig);
  print(i);
  print(score & 65535);
}
|}

let workload : Workload.t =
  {
    name = "crafty";
    paper_name = "186.crafty";
    source;
    train_input = Workload.input_vector ~seed:2020 ~n:44 ~bound:50021;
    ref_input = Workload.input_vector ~seed:2121 ~n:60 ~bound:50021;
    notes =
      "mostly independent bitboard evaluation; ~8% hash-hit counter \
       dependence sits just above the 5% synchronization threshold";
  }
