(** The fifteen benchmarks of the paper's evaluation (Table 2 order). *)

val all : Workload.t list

(** Lookup by short name. *)
val find : string -> Workload.t option

val names : string list
