(* 181.mcf — network simplex pricing: arc scan with a best-candidate
   record updated on a minority of epochs.

   The update decision uses a CHEAP screen at the top of the epoch (as the
   real pricing loop does with reduced costs), so the best-record store —
   when it happens (~15% of epochs) — lands early; the bulk of the epoch
   is the expensive exact recomputation that does not touch the record.
   Compiler synchronization forwards the record early (frontier if-unsent
   signals release the 85% of non-improving paths immediately), restoring
   overlap; unsynchronized, improving epochs violate everything younger;
   hardware stall-to-commit serializes the top-of-epoch load.  mcf is in
   the paper's improves-with-sync set (region speedup ~1.25, 89%
   coverage). *)

let source =
  {|
int arc_cost[4096];
int potential[4096];
int best_cost = 1000000;
int best_arc = -1;
int improve_count = 0;
int sig[512];   // one slot per cache line (stride 8)

void take_best(int cost, int arc) {
  best_cost = cost;
  best_arc = arc;
  improve_count = improve_count + 1;
}

int exact_cost(int arc, int salt) {
  int j;
  int acc;
  acc = arc_cost[arc % 4096];
  for (j = 0; j < 11 + salt % 15; j = j + 1) {
    acc = acc + ((acc >> 2) ^ (arc * 13 + j)) % 229 - 57;
    acc = acc + potential[(arc + j * 7) % 4096] % 13;
  }
  return acc;
}

// Sequential reporting: serialized by its accumulator.
int report_pass(int seed) {
  int j;
  int acc;
  acc = seed;
  for (j = 0; j < 1024; j = j + 1) {
    acc = acc + (arc_cost[j] ^ (acc >> 3)) % 257;
  }
  return acc;
}

void main() {
  int a;
  int n;
  int quick;
  int c;
  int i;
  n = inlen();
  for (i = 0; i < 4096; i = i + 1) {
    arc_cost[i] = in(i % n) % 9973 + 50;
    potential[i] = in((i * 3 + 1) % n) % 777;
  }
  // Arc-pricing scan: the speculative region.
  for (a = 0; a < 700; a = a + 1) {
    quick = arc_cost[(a * 7) % 4096] - potential[(a * 11) % 4096];
    // Refresh the candidate on a true improvement or a periodic re-price.
    if (quick < best_cost - 900000 || a % 9 == 0) {
      take_best(quick + 900000, a);
    }
    c = exact_cost(a * 7, a % 37);
    sig[(a % 64) * 8] = sig[(a % 64) * 8] ^ (c & 511);
  }
  print(best_cost);
  print(best_arc);
  print(improve_count);
  i = 0;
  for (a = 0; a < 64; a = a + 1) { i = i ^ sig[a * 8]; }
  print(i);
  // Small sequential report pass.
  c = 0;
  for (a = 0; a < 14; a = a + 1) {
    c = c + report_pass(a);
  }
  print(c & 65535);
}
|}

let workload : Workload.t =
  {
    name = "mcf";
    paper_name = "181.mcf";
    source;
    train_input = Workload.input_vector ~seed:1818 ~n:44 ~bound:8191;
    ref_input = Workload.input_vector ~seed:1919 ~n:60 ~bound:8191;
    notes =
      "best-candidate record screened and updated at the top of ~15% of \
       epochs; compiler forwarding (with if-unsent frontier signals on \
       non-improving paths) restores overlap";
  }
