(* 175.vpr (place) — simulated-annealing placement: the paper's second
   hardware-beats-compiler case.

   Each epoch evaluates one candidate swap.  The shared cost table is
   read mid-epoch and written at the very end, at a data-dependent bucket:
   the dependence is frequent enough to profile and synchronize, but the
   address varies from epoch to epoch, so the point-to-point forwarded
   (address, value) pair usually fails to match and the consumer falls
   back to speculation — compiler sync pays its overhead without removing
   many violations.  The hardware table synchronizes exactly the loads
   that actually violate, at the cost of a stall to the previous commit,
   and comes out ahead (paper §4.2, region speedup ~1.0). *)

let source =
  {|
int cost_table[16];   // four buckets, two per cache line
int net_weights[2048];
int anneal_t = 4096;
int accepted = 0;
int final_cost = 0;

int swap_cost(int a, int b, int salt) {
  int j;
  int acc;
  acc = salt;
  for (j = 0; j < 11 + salt % 13; j = j + 1) {
    acc = acc + (net_weights[(a * 31 + j) % 2048]
                 - net_weights[(b * 17 + j) % 2048]) % 97;
  }
  return acc;
}

void main() {
  int m;
  int n;
  int r;
  int bucket;
  int delta;
  int base;
  int i;
  int rng;
  int temp;
  n = inlen();
  rng = 12345;
  for (i = 0; i < 2048; i = i + 1) {
    net_weights[i] = in(i % n) % 613;
  }
  // Swap-evaluation loop: the speculative region.
  for (m = 0; m < 650; m = m + 1) {
    rng = (rng * 1103515 + 12345) % 2147483647;
    r = rng;
    temp = anneal_t;
    bucket = ((r >> 3) % 4) * 4;
    base = cost_table[bucket];
    delta = swap_cost(r % 128, (r >> 7) % 128, m % 41);
    delta = delta + (base >> 4);
    if (delta % 3 != 1 && delta % 4096 < temp) {
      accepted = accepted + 1;
    }
    cost_table[((r >> 5) % 4) * 4] = base + delta;
    anneal_t = temp - (temp >> 9) + (delta & 1);
  }
  final_cost = cost_table[0] ^ cost_table[4] ^ cost_table[8] ^ cost_table[12];
  print(final_cost);
  print(accepted);
}
|}

let workload : Workload.t =
  {
    name = "vpr_place";
    paper_name = "175.vpr (place)";
    source;
    train_input = Workload.input_vector ~seed:1414 ~n:44 ~bound:1999;
    ref_input = Workload.input_vector ~seed:1515 ~n:60 ~bound:1999;
    notes =
      "cost-table dependence with varying address, read mid-epoch and \
       written at the end: forwarding rarely matches, so compiler sync \
       underperforms hardware per-load synchronization";
  }
