(* 176.gcc — compiler: a transformation pass over a worklist of
   "instructions", with moderate-frequency dependences through shared
   symbol-table state accessed via helpers.

   Coverage is low (~18%): most time goes to sequential bookkeeping scans.
   The pseudo-register counter is read+bumped through a helper on roughly
   a third of epochs, early in the epoch, and a fold-count global late on
   a smaller fraction.  Compiler synchronization forwards the counter
   early and wins modestly (gcc is in the paper's improves-with-C set,
   region speedup ~1.18). *)

let source =
  {|
int insns[2048];
int next_pseudo = 100;
int fold_count = 0;
int out_sig = 0;
int scratch[512];

int new_pseudo() {
  int r;
  r = next_pseudo;
  next_pseudo = next_pseudo + 1;
  return r;
}

int simplify(int op, int salt) {
  int j;
  int acc;
  acc = op;
  for (j = 0; j < 10 + salt % 19; j = j + 1) {
    acc = acc + ((op >> (j % 6)) ^ (acc << 1)) % 127;
  }
  return acc;
}

// Tight sequential scan, below the epoch-size floor.
int live_scan(int from) {
  int j;
  int acc;
  acc = 0;
  for (j = 0; j < 600; j = j + 1) {
    acc = acc + insns[(from + j) % 2048];
  }
  return acc;
}

void main() {
  int i;
  int w;
  int n;
  int op;
  int v;
  int sink;
  n = inlen();
  for (i = 0; i < 2048; i = i + 1) {
    insns[i] = in(i % n) * 31 + i % 7;
  }
  // Transformation worklist: the speculative region.
  for (w = 0; w < 500; w = w + 1) {
    op = insns[(w * 3) % 2048];
    v = simplify(op, op % 23);
    if (op % 3 == 0) {
      scratch[(new_pseudo() % 64) * 8] = v;
    }
    if (v % 8 == 0) {
      fold_count = fold_count + 1;
    }
    out_sig = out_sig ^ (v & 1023);
  }
  // Sequential bookkeeping dominates program time.
  sink = 0;
  for (i = 0; i < 160; i = i + 1) {
    sink = sink + live_scan(i * 5);
  }
  print(next_pseudo);
  print(fold_count);
  print(out_sig);
  print(sink);
}
|}

let workload : Workload.t =
  {
    name = "gcc";
    paper_name = "176.gcc";
    source;
    train_input = Workload.input_vector ~seed:1616 ~n:40 ~bound:3001;
    ref_input = Workload.input_vector ~seed:1717 ~n:56 ~bound:3001;
    notes =
      "low coverage; pseudo-register counter bumped through a cloned \
       helper on ~1/3 of epochs plus occasional fold counter: compiler \
       sync removes the violation trickle";
  }
