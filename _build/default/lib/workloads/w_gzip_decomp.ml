(* 164.gzip (decompress) — LZ decompression: a genuinely frequent
   memory-resident dependence (the output write position) whose value is
   produced EARLY in each epoch.  This is the benchmark where the paper
   notes "the compiler is able to speculatively forward the desired value
   much earlier than our hardware can", making compiler sync the winner
   over hardware stall-until-commit (paper §4.2, region speedup 1.16 at
   99% coverage).

   Each epoch decodes one token: it reads the global [wpos] through a
   helper (memory-resident, cloned), advances it by the decoded length
   immediately (early production), then spends the bulk of the epoch
   copying/expanding bytes into its now-private output range. *)

let source =
  {|
int window[8192];
int tokens[2048];
int wpos = 0;
int crc = 0;

int reserve(int len) {
  int start;
  start = wpos;
  wpos = wpos + len;
  return start;
}

void expand(int start, int len, int seed) {
  int j;
  int v;
  v = seed;
  for (j = 0; j < len; j = j + 1) {
    v = (v * 17 + j) % 509;
    window[(start + j) % 8192] = v;
  }
}

void main() {
  int t;
  int n;
  int tok;
  int len;
  int start;
  int i;
  n = inlen();
  for (i = 0; i < 2048; i = i + 1) {
    tokens[i] = in(i % n);
  }
  // Decode loop: the speculative region.
  for (t = 0; t < 700; t = t + 1) {
    tok = tokens[t % 2048];
    len = 24 + tok % 31;
    start = reserve(len);
    expand(start, len, tok);
    crc = crc ^ (start + len);
  }
  print(wpos);
  print(crc);
  i = 0;
  for (t = 0; t < 8192; t = t + 1) { i = i ^ window[t]; }
  print(i);
}
|}

let workload : Workload.t =
  {
    name = "gzip_decomp";
    paper_name = "164.gzip (decompress)";
    source;
    train_input = Workload.input_vector ~seed:1212 ~n:40 ~bound:512;
    ref_input = Workload.input_vector ~seed:1313 ~n:56 ~bound:512;
    notes =
      "write-position global read+advanced at the top of every epoch and \
       then unused: compiler forwarding restores nearly full overlap, \
       hardware stall-until-commit serializes";
  }
