(* 197.parser — the paper's motivating example (Figure 4): a loop that
   allocates and frees linked-list elements through a global free list.

   Dependence character engineered here:
   - every epoch reads and writes the memory-resident globals [free_list]
     and [nfree] through helper procedures (so the accesses only become
     synchronizable after procedure cloning);
   - the values are produced near the start of each epoch, followed by a
     large independent evaluation, so compiler-forwarded values arrive
     long before the consumer needs them: compiler sync should recover
     most of the parallelism (paper: region speedup ~2.1, among the best
     compiler-sync results);
   - without synchronization the dependences violate nearly every epoch. *)

let source =
  {|
struct tok { int kind; int weight; tok* next; }

tok pool[512];
tok* free_list;
int nfree = 0;
int results[256];
int link_count = 0;

void free_tok(tok* t) {
  t->next = free_list;
  free_list = t;
  nfree = nfree + 1;
}

tok* alloc_tok() {
  tok* t;
  t = free_list;
  free_list = t->next;
  nfree = nfree - 1;
  return t;
}

// Independent per-sentence evaluation: the bulk of each epoch.
int evaluate(int kind, int weight, int salt) {
  int j;
  int acc;
  int link;
  acc = kind * 131 + weight;
  link = salt;
  for (j = 0; j < 24; j = j + 1) {
    link = (link * 29 + acc) % 16381;
    acc = acc + ((link >> 3) ^ (acc << 1)) % 257;
    if (acc > 60000) { acc = acc - 50000; }
  }
  return acc;
}

// Sequential dictionary maintenance: serialized by its accumulator.
int dict_scan(int seed) {
  int j;
  int acc;
  acc = seed;
  for (j = 0; j < 512; j = j + 1) {
    acc = acc + (pool[j].kind * 3 + pool[j].weight ^ (acc >> 2));
  }
  return acc;
}

void main() {
  int i;
  int s;
  int n;
  int r;
  tok* t;
  n = inlen();
  // Build the free list (small sequential setup).
  for (i = 0; i < 512; i = i + 1) {
    pool[i].kind = i % 7;
    pool[i].weight = i % 13;
    free_tok(&pool[i]);
  }
  // The parallelized parsing loop: alloc early, free early, evaluate long.
  for (s = 0; s < 900; s = s + 1) {
    t = alloc_tok();
    t->kind = in(s % n) % 11;
    t->weight = (in((s + 3) % n) + s) % 17;
    if (t->weight % 4 != 0) {
      free_tok(t);
    } else {
      link_count = link_count + 1;
    }
    r = evaluate(t->kind, t->weight, s);
    results[s % 256] = results[s % 256] ^ r;
  }
  r = 0;
  for (i = 0; i < 256; i = i + 1) { r = r ^ results[i]; }
  print(r);
  // Sequential dictionary maintenance dominates the rest.
  for (i = 0; i < 160; i = i + 1) { r = r + dict_scan(i); }
  print(r & 65535);
  print(nfree);
  print(link_count);
}
|}

let workload : Workload.t =
  {
    name = "parser";
    paper_name = "197.parser";
    source;
    train_input = Workload.input_vector ~seed:1101 ~n:48 ~bound:223;
    ref_input = Workload.input_vector ~seed:2202 ~n:64 ~bound:223;
    notes =
      "global free list read+written every epoch through cloned helpers; \
       values produced early, consumed at the next epoch's start; compiler \
       forwarding recovers parallelism";
  }
