let all : Workload.t list =
  [
    W_go.workload;
    W_m88ksim.workload;
    W_ijpeg.workload;
    W_gzip_comp.workload;
    W_gzip_decomp.workload;
    W_vpr.workload;
    W_gcc.workload;
    W_mcf.workload;
    W_crafty.workload;
    W_parser.workload;
    W_perlbmk.workload;
    W_gap.workload;
    W_bzip2.comp;
    W_bzip2.decomp;
    W_twolf.workload;
  ]

let find name =
  List.find_opt (fun (w : Workload.t) -> String.equal w.Workload.name name) all

let names = List.map (fun (w : Workload.t) -> w.Workload.name) all
