(* 256.bzip2, both directions.

   Compression: block sorting with a shared bucket structure touched by
   most epochs mid-epoch — frequent dependences that synchronization can
   only serialize; paper Table 2 reports a slight loss (0.94/0.96).

   Decompression: independent per-block decoding — the paper's example of
   a benchmark where "failed speculation was not a problem to begin with"
   (region speedup 1.66 at 13% coverage): every configuration looks the
   same and memory sync has nothing to do. *)

let comp_source =
  {|
int block[4096];
int bucket_count[16];   // two buckets, one per cache line
int cursor = 0;
int sorted_sig = 0;
int work_factor = 0;

int rank_of(int v, int salt) {
  int j;
  int r;
  r = v & 255;
  for (j = 0; j < 8 + salt % 9; j = j + 1) {
    r = (r * 31 + (v >> (j % 8))) % 256;
  }
  return r;
}

void main() {
  int i;
  int n;
  int r;
  int prev;
  n = inlen();
  for (i = 0; i < 4096; i = i + 1) {
    block[i] = in(i % n) % 256;
  }
  // Sorting pass: the speculative region.  The bucket is known early from
  // a cheap prefix byte, but its count is only written after the heavy
  // ranking work: a long chain through a varying address.
  for (i = 0; i < 680; i = i + 1) {
    r = block[(i * 11) % 4096] % 2;
    prev = bucket_count[r * 8];
    work_factor = rank_of(block[(i * 11) % 4096] + (cursor & 7), i % 13);
    bucket_count[r * 8] = prev + 1 + (work_factor & 1);
    sorted_sig = sorted_sig ^ (r + prev);
    cursor = cursor + 1 + (work_factor & 3);
  }
  print(work_factor);
  print(sorted_sig);
  r = 0;
  for (i = 0; i < 16; i = i + 1) { r = r + bucket_count[i]; }
  print(r);
}
|}

let decomp_source =
  {|
int stream[4096];
int output[8192];
int block_crc[128];
int final_crc = 0;

int decode_block(int base, int out_base) {
  int j;
  int v;
  int crc;
  crc = 0;
  for (j = 0; j < 28; j = j + 1) {
    v = stream[(base + j) % 4096];
    v = (v * 167 + (v >> 3)) % 4093;
    output[(out_base + j) % 8192] = v;
    crc = crc ^ v;
  }
  return crc;
}

// Sequential CRC verification: tight loop, below the epoch floor.
int verify(int rounds) {
  int j;
  int acc;
  acc = 0;
  for (j = 0; j < rounds; j = j + 1) {
    acc = acc + output[j % 8192];
  }
  return acc;
}

void main() {
  int b;
  int n;
  int i;
  int sink;
  n = inlen();
  for (i = 0; i < 4096; i = i + 1) {
    stream[i] = in(i % n) % 65521;
  }
  // Block-decode loop: the speculative region; blocks are independent.
  for (b = 0; b < 128; b = b + 1) {
    block_crc[b] = decode_block(b * 32, b * 64);
  }
  for (b = 0; b < 128; b = b + 1) { final_crc = final_crc ^ block_crc[b]; }
  // Sequential verification dominates program time.
  sink = 0;
  for (i = 0; i < 40; i = i + 1) { sink = sink + verify(2200); }
  print(final_crc);
  print(sink);
}
|}

let comp : Workload.t =
  {
    name = "bzip2_comp";
    paper_name = "256.bzip2 (compress)";
    source = comp_source;
    train_input = Workload.input_vector ~seed:2626 ~n:44 ~bound:65536;
    ref_input = Workload.input_vector ~seed:2727 ~n:60 ~bound:65536;
    notes =
      "shared bucket structure updated mid-epoch at data-dependent \
       indices: frequent deps, sync serializes, slight net loss";
  }

let decomp : Workload.t =
  {
    name = "bzip2_decomp";
    paper_name = "256.bzip2 (decompress)";
    source = decomp_source;
    train_input = Workload.input_vector ~seed:2828 ~n:44 ~bound:65536;
    ref_input = Workload.input_vector ~seed:2929 ~n:60 ~bound:65536;
    notes =
      "independent block decode: failed speculation is not a problem to \
       begin with; all configurations equal";
  }
