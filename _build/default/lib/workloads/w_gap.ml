(* 254.gap — computer algebra: a workspace bump allocator whose size is
   only known at the END of each epoch, read again at the START of the
   next: an inherently serial chain through memory (paper Table 2: region
   "speedup" 0.92 — a slight loss; gap is nevertheless in the set whose
   FAILED SPECULATION compiler sync removes, Figure 10).

   Each epoch allocates a result cell after computing how much space its
   term expansion needs: [heap_top] is loaded early but advanced late.
   Without sync the early load of the next epoch always violates; with
   compiler sync the load waits for the (late) signal — serialized, but
   cheaper than the squash storm. *)

let source =
  {|
int heap[16384];
int heap_top = 0;
int term_count = 0;
int out_sig = 0;

int workspace_base() {
  return heap_top;
}

void finish_alloc(int base, int size) {
  heap_top = base + size;
  term_count = term_count + 1;
}

void main() {
  int t;
  int n;
  int size;
  int base;
  int j;
  int v;
  n = inlen();
  // Term-expansion loop: the speculative region.  The workspace base is
  // read at the very top of the epoch; the term is expanded INTO the
  // workspace while its size grows data-dependently; the bump pointer is
  // only advanced at the very end, once the size is known.
  for (t = 0; t < 650; t = t + 1) {
    base = workspace_base();
    size = 4;
    v = in(t % n);
    for (j = 0; j < 13 + (v % 11); j = j + 1) {
      size = size + ((v >> (j % 7)) ^ (size << 1)) % 5;
      if (j == 7) {
        size = size + term_count % 2;
      }
      heap[(base + size) % 16384] = (t << 8) + j;
      v = v * 3 + 1;
    }
    finish_alloc(base, size % 48 + 4);
    out_sig = out_sig ^ (base + size);
  }
  print(heap_top);
  print(term_count);
  print(out_sig);
}
|}

let workload : Workload.t =
  {
    name = "gap";
    paper_name = "254.gap";
    source;
    train_input = Workload.input_vector ~seed:2424 ~n:44 ~bound:100000;
    ref_input = Workload.input_vector ~seed:2525 ~n:60 ~bound:100000;
    notes =
      "bump allocator advanced by a size computed late in each epoch and \
       needed early in the next: serial memory chain; sync trades squash \
       storms for stalls (slight net loss vs sequential)";
  }
