(* A benchmark: one mini-C program standing in for a paper benchmark, with
   distinct train/ref inputs (the paper profiles on train and reports on
   ref, Figure 8).

   Each workload's doc comment states which SPEC benchmark it models and
   which dependence character it was engineered to reproduce; the harness
   only relies on [name], [source], and the two inputs. *)

type t = {
  name : string;                (* short name used in tables, e.g. "parser" *)
  paper_name : string;          (* the SPEC benchmark it stands in for *)
  source : string;              (* mini-C program text *)
  train_input : int array;
  ref_input : int array;
  notes : string;               (* dependence character *)
}

(* Deterministic input vector: [n] values in [0, bound). *)
let input_vector ~seed ~n ~bound =
  let rng = Support.Rng.of_int seed in
  Array.init n (fun _ -> Support.Rng.int rng bound)
