(** Profile data produced by the instrumented interpreter.

    Two kinds of information, matching the paper's two uses of profiling:
    - {!loop_stats}: per-loop coverage/trip-count/epoch-size numbers that
      drive region selection (paper §3.1);
    - {!dep_profile}: context-sensitive inter-epoch memory dependence
      frequencies and distances for the loops chosen as speculative regions
      (paper §2.3). *)

(** A static loop, identified by its function and header label. *)
type loop_key = { lk_func : string; lk_header : Ir.Instr.label }

(** A memory access named as the paper names it: static instruction id plus
    the call stack rooted at the parallelized loop (list of call-site iids,
    outermost first; [\[\]] = directly in the loop body). *)
type access = { a_iid : Ir.Instr.iid; a_ctx : Ir.Instr.iid list }

type dep = { producer : access; consumer : access }

type loop_stats = {
  mutable instances : int;       (* times the loop was entered *)
  mutable iterations : int;      (* epochs = header arrivals: an N-trip
                                    for/while loop counts N+1 (the final
                                    exit-test arrival runs as an epoch,
                                    as it does on the TLS machine) *)
  mutable dyn_instrs : int;      (* dynamic instructions inside the loop,
                                    callees included *)
  mutable nested_instances : int;
      (* instances entered while another loop instance was already active
         (in this or an outer frame): such instances would execute
         sequentially inside an enclosing speculative region, so region
         selection discounts them *)
}

type dep_profile = {
  mutable total_epochs : int;
  (* consumer epochs in which each dependence occurred at least once *)
  dep_epochs : (dep, int) Hashtbl.t;
  (* consumer epochs in which each load depended on an earlier epoch *)
  load_dep_epochs : (access, int) Hashtbl.t;
  (* dependence distance (in epochs) -> occurrence count *)
  distances : (int, int) Hashtbl.t;
}

type t = {
  loops : (loop_key, loop_stats) Hashtbl.t;
  deps : (loop_key, dep_profile) Hashtbl.t;   (* only watched loops *)
  mutable total_instrs : int;
  output : int list;                           (* program output, for checks *)
}

val fresh_dep_profile : unit -> dep_profile

(** Fraction of program instructions spent in the loop (0..1). *)
val coverage : t -> loop_key -> float

(** Stats lookup; zeroed stats if the loop never ran. *)
val stats : t -> loop_key -> loop_stats

val dep_profile : t -> loop_key -> dep_profile option

(** Dependences whose consumer-epoch frequency is at least [threshold]
    (fraction of the loop's epochs, e.g. 0.05). *)
val frequent_deps : dep_profile -> threshold:float -> dep list

(** Loads that depend on an earlier epoch in at least [threshold] of
    epochs. *)
val frequent_loads : dep_profile -> threshold:float -> access list

(** Distance histogram as (distance, count) sorted by distance. *)
val distance_histogram : dep_profile -> (int * int) list

val pp_access : access -> string

(** Graphviz rendering of the dependence graph (the paper's Figure 5):
    one vertex per (instruction, call stack) access, one edge per
    recorded dependence labelled with its epoch frequency.  Edges at or
    above [threshold] are drawn solid (they form the synchronization
    groups); infrequent ones dashed. *)
val to_dot : ?threshold:float -> dep_profile -> string
