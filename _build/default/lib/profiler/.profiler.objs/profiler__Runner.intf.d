lib/profiler/runner.mli: Ir Profile
