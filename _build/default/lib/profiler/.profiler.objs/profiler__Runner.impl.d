lib/profiler/runner.ml: Dataflow Hashtbl Int Ir List Profile Runtime Set
