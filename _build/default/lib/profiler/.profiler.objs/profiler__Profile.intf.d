lib/profiler/profile.mli: Hashtbl Ir
