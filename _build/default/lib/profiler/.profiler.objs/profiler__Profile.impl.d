lib/profiler/profile.ml: Buffer Hashtbl Ir List Printf String
