type loop_key = { lk_func : string; lk_header : Ir.Instr.label }

type access = { a_iid : Ir.Instr.iid; a_ctx : Ir.Instr.iid list }

type dep = { producer : access; consumer : access }

type loop_stats = {
  mutable instances : int;
  mutable iterations : int;
  mutable dyn_instrs : int;
  mutable nested_instances : int;
}

type dep_profile = {
  mutable total_epochs : int;
  dep_epochs : (dep, int) Hashtbl.t;
  load_dep_epochs : (access, int) Hashtbl.t;
  distances : (int, int) Hashtbl.t;
}

type t = {
  loops : (loop_key, loop_stats) Hashtbl.t;
  deps : (loop_key, dep_profile) Hashtbl.t;
  mutable total_instrs : int;
  output : int list;
}

let fresh_dep_profile () =
  {
    total_epochs = 0;
    dep_epochs = Hashtbl.create 64;
    load_dep_epochs = Hashtbl.create 64;
    distances = Hashtbl.create 16;
  }

let stats t key =
  match Hashtbl.find_opt t.loops key with
  | Some s -> s
  | None ->
    { instances = 0; iterations = 0; dyn_instrs = 0; nested_instances = 0 }

let coverage t key =
  if t.total_instrs = 0 then 0.0
  else float_of_int (stats t key).dyn_instrs /. float_of_int t.total_instrs

let dep_profile t key = Hashtbl.find_opt t.deps key

let frequent_deps dp ~threshold =
  if dp.total_epochs = 0 then []
  else begin
    let needed =
      int_of_float (ceil (threshold *. float_of_int dp.total_epochs))
    in
    let needed = max needed 1 in
    Hashtbl.fold
      (fun dep count acc -> if count >= needed then dep :: acc else acc)
      dp.dep_epochs []
    |> List.sort compare
  end

let frequent_loads dp ~threshold =
  if dp.total_epochs = 0 then []
  else begin
    let needed =
      int_of_float (ceil (threshold *. float_of_int dp.total_epochs))
    in
    let needed = max needed 1 in
    Hashtbl.fold
      (fun acc_load count acc -> if count >= needed then acc_load :: acc else acc)
      dp.load_dep_epochs []
    |> List.sort compare
  end

let distance_histogram dp =
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) dp.distances []
  |> List.sort compare

let pp_access a =
  match a.a_ctx with
  | [] -> Printf.sprintf "i%d" a.a_iid
  | ctx ->
    Printf.sprintf "i%d@[%s]" a.a_iid
      (String.concat ">" (List.map string_of_int ctx))

let to_dot ?(threshold = 0.05) dp =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph dependences {\n";
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n";
  let needed =
    max 1 (int_of_float (ceil (threshold *. float_of_int dp.total_epochs)))
  in
  let vertices = Hashtbl.create 32 in
  let vertex a =
    let name = pp_access a in
    if not (Hashtbl.mem vertices name) then begin
      Hashtbl.replace vertices name ();
      Buffer.add_string buf (Printf.sprintf "  \"%s\";\n" name)
    end;
    name
  in
  Hashtbl.iter
    (fun d count ->
      let p = vertex d.producer and c = vertex d.consumer in
      let pct =
        if dp.total_epochs = 0 then 0.0
        else 100.0 *. float_of_int count /. float_of_int dp.total_epochs
      in
      let style = if count >= needed then "solid" else "dashed" in
      Buffer.add_string buf
        (Printf.sprintf
           "  \"%s\" -> \"%s\" [label=\"%.0f%%\", style=%s];\n" p c pct
           style))
    dp.dep_epochs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
