type t = (int, int) Hashtbl.t

let create () : t = Hashtbl.create 4096

let copy = Hashtbl.copy

let load t addr = match Hashtbl.find_opt t addr with Some v -> v | None -> 0

let store t addr v =
  if v = 0 then Hashtbl.remove t addr else Hashtbl.replace t addr v

let store_all t pairs = List.iter (fun (a, v) -> store t a v) pairs

let iter t k = Hashtbl.iter k t

let footprint = Hashtbl.length

let equal a b =
  (* Zero-valued words are never stored, so plain containment both ways. *)
  let subset x y =
    Hashtbl.fold (fun addr v ok -> ok && load y addr = v) x true
  in
  subset a b && subset b a
