lib/runtime/memory.ml: Hashtbl List
