lib/runtime/thread.mli: Code Ir Memory
