lib/runtime/thread.ml: Array Code Hashtbl Ir List Memory Option
