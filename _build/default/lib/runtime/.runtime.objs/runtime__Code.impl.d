lib/runtime/code.ml: Array Hashtbl Ir List String
