lib/runtime/code.mli: Hashtbl Ir
