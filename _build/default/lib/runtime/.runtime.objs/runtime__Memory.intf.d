lib/runtime/memory.mli:
