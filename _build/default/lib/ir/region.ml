(* A speculatively parallelized loop (the paper's "speculative region").

   The loop structure is left intact in the IR; the TLS simulator enters
   speculative mode when sequential control reaches [header] in [func], and
   runs each iteration as an epoch.  Scalar channels carry loop-carried
   register values (wait at epoch start, signal placed by the compiler);
   memory channels carry compiler-synchronized memory-resident values. *)

type scalar_channel = {
  sc_id : Instr.channel;
  sc_reg : Instr.reg;    (* the loop-carried register it forwards *)
}

type mem_group = {
  mg_id : Instr.channel;
  (* Static instruction ids synchronized by this group, for reporting and
     for the Figure 11 attribution experiment. *)
  mg_loads : Instr.iid list;
  mg_stores : Instr.iid list;
}

type t = {
  id : int;
  func : string;                     (* function containing the loop *)
  header : Instr.label;
  blocks : Instr.label list;         (* labels of the natural loop *)
  mutable scalar_channels : scalar_channel list;
  mutable mem_groups : mem_group list;
}

let in_loop t label = List.mem label t.blocks
