(** Lowering from the typed AST to the register IR.

    Conventions established here (and relied on by the passes):
    - loop headers are the blocks that evaluate loop conditions
      ([do]-loops: the first body block), so a natural-loop back edge always
      targets the block a {!Region.t} names;
    - locals/params live in registers for their whole function (no SSA);
    - pointer arithmetic is scaled by the pointee size in words;
    - short-circuit [&&]/[||] lower to control flow producing 0/1. *)

(** Lower a checked program.  The result has no regions or synchronization
    yet; those are added by the [tlscore] passes. *)
val program : Lang.Tast.tprogram -> Prog.t

(** Convenience for tests and examples: parse, check, lower. *)
val compile_source : string -> Prog.t
