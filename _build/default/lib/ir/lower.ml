module A = Lang.Ast
module T = Lang.Tast

type env = {
  prog : Prog.t;
  layout : Layout.t;
  func : Func.t;
  locals : (string, Instr.reg) Hashtbl.t;
  mutable current : Instr.label;
  (* Break/continue targets, innermost first. *)
  mutable break_labels : Instr.label list;
  mutable continue_labels : Instr.label list;
  (* Set once the current block is terminated; further statements in the
     (unreachable) tail go into a fresh dead block. *)
  mutable terminated : bool;
}

let lower_binop (op : A.binop) : Instr.binop =
  match op with
  | A.Add -> Instr.Add
  | A.Sub -> Instr.Sub
  | A.Mul -> Instr.Mul
  | A.Div -> Instr.Div
  | A.Rem -> Instr.Rem
  | A.Band -> Instr.Band
  | A.Bor -> Instr.Bor
  | A.Bxor -> Instr.Bxor
  | A.Shl -> Instr.Shl
  | A.Shr -> Instr.Shr
  | A.Eq -> Instr.Eq
  | A.Ne -> Instr.Ne
  | A.Lt -> Instr.Lt
  | A.Le -> Instr.Le
  | A.Gt -> Instr.Gt
  | A.Ge -> Instr.Ge
  | A.Land | A.Lor -> assert false (* lowered to control flow *)

let emit env ~what kind =
  let iid = Prog.fresh_iid env.prog ~in_func:env.func.Func.name ~what in
  let b = Func.block env.func env.current in
  b.Func.instrs <- b.Func.instrs @ [ { Instr.iid; kind } ]

let set_term env term =
  let b = Func.block env.func env.current in
  b.Func.term <- term;
  env.terminated <- true

let start_block env label =
  env.current <- label;
  env.terminated <- false

(* Ensure the rest of the statement list lowers into a live block even after
   a return/break: a fresh unreachable block swallows dead code. *)
let ensure_open env =
  if env.terminated then start_block env (Func.add_block env.func)

let local_reg env name =
  match Hashtbl.find_opt env.locals name with
  | Some r -> r
  | None -> failwith ("Lower: unbound local " ^ name)

let pointee_size env (ty : A.ty) =
  match ty with
  | A.Tptr t -> Layout.sizeof env.layout t
  | A.Tint | A.Tvoid | A.Tstruct _ -> 1

(* Fold scaling of a constant index at lowering time. *)
let scale (idx : Instr.operand) size : Instr.operand * bool =
  if size = 1 then (idx, false)
  else
    match idx with
    | Instr.Imm n -> (Instr.Imm (n * size), false)
    | Instr.Reg _ -> (idx, true)

let rec lower_value env (e : T.texpr) : Instr.operand =
  match e.T.t with
  | T.Tconst n -> Instr.Imm n
  | T.Tnull -> Instr.Imm 0
  | T.Tlocal name -> Instr.Reg (local_reg env name)
  | T.Tglobal name -> begin
    match e.T.ty with
    | A.Tstruct _ ->
      (* struct globals only appear as lvalues; value = address *)
      Instr.Imm (Layout.global_addr env.layout name)
    | A.Tint | A.Tptr _ | A.Tvoid ->
      let dst = Func.fresh_reg env.func in
      emit env ~what:(Printf.sprintf "load %s" name)
        (Instr.Load (dst, Instr.Imm (Layout.global_addr env.layout name)));
      Instr.Reg dst
  end
  | T.Tarray name -> Instr.Imm (Layout.global_addr env.layout name)
  | T.Tbin ((A.Land | A.Lor) as op, a, b) -> lower_short_circuit env op a b
  | T.Tbin (op, a, b) -> lower_arith env op a b
  | T.Tun (A.Neg, a) ->
    let va = lower_value env a in
    let dst = Func.fresh_reg env.func in
    emit env ~what:"neg" (Instr.Bin (Instr.Sub, dst, Instr.Imm 0, va));
    Instr.Reg dst
  | T.Tun (A.Not, a) ->
    let va = lower_value env a in
    let dst = Func.fresh_reg env.func in
    emit env ~what:"not" (Instr.Bin (Instr.Eq, dst, va, Instr.Imm 0));
    Instr.Reg dst
  | T.Tderef _ | T.Tfield _ | T.Tdirect_field _ | T.Tindex _ -> begin
    match e.T.ty with
    | A.Tstruct _ ->
      (* struct lvalue used as a value only as base of '.'/'&': address *)
      lower_addr env e
    | A.Tint | A.Tptr _ | A.Tvoid ->
      let addr = lower_addr env e in
      let dst = Func.fresh_reg env.func in
      emit env ~what:(describe_load env addr) (Instr.Load (dst, addr));
      Instr.Reg dst
  end
  | T.Taddr lv -> lower_addr env lv
  | T.Tcall (name, args) ->
    let vargs = List.map (lower_value env) args in
    let dst = Func.fresh_reg env.func in
    emit env ~what:("call " ^ name) (Instr.Call (Some dst, name, vargs));
    Instr.Reg dst
  | T.Tprint a ->
    let va = lower_value env a in
    emit env ~what:"print" (Instr.Print va);
    Instr.Imm 0
  | T.Tinput a ->
    let va = lower_value env a in
    let dst = Func.fresh_reg env.func in
    emit env ~what:"input" (Instr.Input (dst, va));
    Instr.Reg dst
  | T.Tinput_len ->
    let dst = Func.fresh_reg env.func in
    emit env ~what:"input_len" (Instr.Input_len dst);
    Instr.Reg dst

and describe_load env (addr : Instr.operand) =
  match addr with
  | Instr.Imm a -> "load " ^ Layout.describe_addr env.layout a
  | Instr.Reg _ -> "load *"

and describe_store env (addr : Instr.operand) =
  match addr with
  | Instr.Imm a -> "store " ^ Layout.describe_addr env.layout a
  | Instr.Reg _ -> "store *"

and lower_arith env op a b =
  let va = lower_value env a in
  let vb = lower_value env b in
  (* Scale pointer arithmetic by the pointee size. *)
  let va, vb =
    match op, a.T.ty, b.T.ty with
    | (A.Add | A.Sub), A.Tptr _, A.Tint ->
      let size = pointee_size env a.T.ty in
      let vb, needs_mul = scale vb size in
      if needs_mul then begin
        let scaled = Func.fresh_reg env.func in
        emit env ~what:"scale"
          (Instr.Bin (Instr.Mul, scaled, vb, Instr.Imm size));
        (va, Instr.Reg scaled)
      end
      else (va, vb)
    | A.Add, A.Tint, A.Tptr _ ->
      let size = pointee_size env b.T.ty in
      let va, needs_mul = scale va size in
      if needs_mul then begin
        let scaled = Func.fresh_reg env.func in
        emit env ~what:"scale"
          (Instr.Bin (Instr.Mul, scaled, va, Instr.Imm size));
        (Instr.Reg scaled, vb)
      end
      else (va, vb)
    | _, _, _ -> (va, vb)
  in
  let dst = Func.fresh_reg env.func in
  emit env
    ~what:(Instr.binop_to_string (lower_binop op))
    (Instr.Bin (lower_binop op, dst, va, vb));
  Instr.Reg dst

and lower_short_circuit env op a b =
  (* dst = a && b  ~>  if (a) dst = (b != 0) else dst = 0, via blocks *)
  let dst = Func.fresh_reg env.func in
  let va = lower_value env a in
  let rhs_label = Func.add_block env.func in
  let short_label = Func.add_block env.func in
  let join_label = Func.add_block env.func in
  (match op with
  | A.Land -> set_term env (Instr.Br (va, rhs_label, short_label))
  | A.Lor -> set_term env (Instr.Br (va, short_label, rhs_label))
  | _ -> assert false);
  start_block env rhs_label;
  let vb = lower_value env b in
  emit env ~what:"bool" (Instr.Bin (Instr.Ne, dst, vb, Instr.Imm 0));
  set_term env (Instr.Jmp join_label);
  start_block env short_label;
  let short_value = match op with A.Land -> 0 | _ -> 1 in
  emit env ~what:"bool" (Instr.Mov (dst, Instr.Imm short_value));
  set_term env (Instr.Jmp join_label);
  start_block env join_label;
  Instr.Reg dst

and lower_addr env (e : T.texpr) : Instr.operand =
  match e.T.t with
  | T.Tglobal name -> Instr.Imm (Layout.global_addr env.layout name)
  | T.Tarray name -> Instr.Imm (Layout.global_addr env.layout name)
  | T.Tderef p -> lower_value env p
  | T.Tfield (p, sname, fname) ->
    let base = lower_value env p in
    let off = Layout.field_offset env.layout sname fname in
    add_offset env base off
  | T.Tdirect_field (lv, sname, fname) ->
    let base = lower_addr env lv in
    let off = Layout.field_offset env.layout sname fname in
    add_offset env base off
  | T.Tindex (b, i) ->
    let base = lower_value env b in
    let vi = lower_value env i in
    let elem_size = Layout.sizeof env.layout e.T.ty in
    let scaled, needs_mul = scale vi elem_size in
    let offset_op =
      if needs_mul then begin
        let r = Func.fresh_reg env.func in
        emit env ~what:"scale"
          (Instr.Bin (Instr.Mul, r, scaled, Instr.Imm elem_size));
        Instr.Reg r
      end
      else scaled
    in
    (match base, offset_op with
    | Instr.Imm ba, Instr.Imm off -> Instr.Imm (ba + off)
    | _, Instr.Imm 0 -> base
    | _, _ ->
      let r = Func.fresh_reg env.func in
      emit env ~what:"addr" (Instr.Bin (Instr.Add, r, base, offset_op));
      Instr.Reg r)
  | T.Taddr lv -> lower_addr env lv
  | T.Tconst _ | T.Tnull | T.Tlocal _ | T.Tbin _ | T.Tun _ | T.Tcall _
  | T.Tprint _ | T.Tinput _ | T.Tinput_len ->
    failwith "Lower: not an addressable expression"

and add_offset env base off =
  if off = 0 then base
  else
    match base with
    | Instr.Imm b -> Instr.Imm (b + off)
    | Instr.Reg _ ->
      let r = Func.fresh_reg env.func in
      emit env ~what:"addr" (Instr.Bin (Instr.Add, r, base, Instr.Imm off));
      Instr.Reg r

let rec lower_stmt env (s : T.tstmt) =
  ensure_open env;
  match s with
  | T.Sassign (lhs, rhs) -> begin
    match lhs.T.t with
    | T.Tlocal name ->
      let v = lower_value env rhs in
      emit env ~what:("set " ^ name) (Instr.Mov (local_reg env name, v))
    | _ ->
      let addr = lower_addr env lhs in
      let v = lower_value env rhs in
      emit env ~what:(describe_store env addr) (Instr.Store (addr, v))
  end
  | T.Sif (cond, then_b, else_b) ->
    let vc = lower_value env cond in
    let then_label = Func.add_block env.func in
    let else_label = Func.add_block env.func in
    let join_label = Func.add_block env.func in
    set_term env (Instr.Br (vc, then_label, else_label));
    start_block env then_label;
    List.iter (lower_stmt env) then_b;
    if not env.terminated then set_term env (Instr.Jmp join_label);
    start_block env else_label;
    List.iter (lower_stmt env) else_b;
    if not env.terminated then set_term env (Instr.Jmp join_label);
    start_block env join_label
  | T.Swhile (cond, body) ->
    let header = Func.add_block env.func in
    let body_label = Func.add_block env.func in
    let exit_label = Func.add_block env.func in
    set_term env (Instr.Jmp header);
    start_block env header;
    let vc = lower_value env cond in
    set_term env (Instr.Br (vc, body_label, exit_label));
    start_block env body_label;
    env.break_labels <- exit_label :: env.break_labels;
    env.continue_labels <- header :: env.continue_labels;
    List.iter (lower_stmt env) body;
    env.break_labels <- List.tl env.break_labels;
    env.continue_labels <- List.tl env.continue_labels;
    if not env.terminated then set_term env (Instr.Jmp header);
    start_block env exit_label
  | T.Sdo_while (body, cond) ->
    let header = Func.add_block env.func in
    let exit_label = Func.add_block env.func in
    set_term env (Instr.Jmp header);
    start_block env header;
    env.break_labels <- exit_label :: env.break_labels;
    env.continue_labels <- header :: env.continue_labels;
    List.iter (lower_stmt env) body;
    env.break_labels <- List.tl env.break_labels;
    env.continue_labels <- List.tl env.continue_labels;
    if not env.terminated then begin
      let vc = lower_value env cond in
      set_term env (Instr.Br (vc, header, exit_label))
    end;
    start_block env exit_label
  | T.Sfor (init, cond, step, body) ->
    Option.iter (lower_stmt env) init;
    ensure_open env;
    let header = Func.add_block env.func in
    let body_label = Func.add_block env.func in
    let step_label = Func.add_block env.func in
    let exit_label = Func.add_block env.func in
    set_term env (Instr.Jmp header);
    start_block env header;
    (match cond with
    | Some c ->
      let vc = lower_value env c in
      set_term env (Instr.Br (vc, body_label, exit_label))
    | None -> set_term env (Instr.Jmp body_label));
    start_block env body_label;
    env.break_labels <- exit_label :: env.break_labels;
    env.continue_labels <- step_label :: env.continue_labels;
    List.iter (lower_stmt env) body;
    env.break_labels <- List.tl env.break_labels;
    env.continue_labels <- List.tl env.continue_labels;
    if not env.terminated then set_term env (Instr.Jmp step_label);
    start_block env step_label;
    Option.iter (lower_stmt env) step;
    if not env.terminated then set_term env (Instr.Jmp header);
    start_block env exit_label
  | T.Sreturn None -> set_term env (Instr.Ret None)
  | T.Sreturn (Some e) ->
    let v = lower_value env e in
    set_term env (Instr.Ret (Some v))
  | T.Sexpr e ->
    let (_ : Instr.operand) = lower_value env e in
    ()
  | T.Sbreak -> begin
    match env.break_labels with
    | target :: _ -> set_term env (Instr.Jmp target)
    | [] -> failwith "Lower: break outside loop"
  end
  | T.Scontinue -> begin
    match env.continue_labels with
    | target :: _ -> set_term env (Instr.Jmp target)
    | [] -> failwith "Lower: continue outside loop"
  end

let lower_func prog layout (tf : T.tfunc) : Func.t =
  let func = Func.create tf.T.tf_name (List.map fst tf.T.tf_params) in
  let locals = Hashtbl.create 16 in
  List.iter (fun (name, reg) -> Hashtbl.replace locals name reg) func.Func.params;
  List.iter
    (fun (name, _ty) ->
      if not (Hashtbl.mem locals name) then
        Hashtbl.replace locals name (Func.fresh_reg ~name func))
    tf.T.tf_locals;
  let entry = Func.add_block func in
  assert (entry = Func.entry);
  let env =
    {
      prog;
      layout;
      func;
      locals;
      current = entry;
      break_labels = [];
      continue_labels = [];
      terminated = false;
    }
  in
  List.iter (lower_stmt env) tf.T.tf_body;
  if not env.terminated then set_term env (Instr.Ret None);
  func

let program (tp : T.tprogram) : Prog.t =
  let layout = Layout.build tp in
  let prog = Prog.create layout in
  List.iter
    (fun tf -> Prog.add_func prog (lower_func prog layout tf))
    tp.T.tp_funcs;
  prog

let compile_source src = program (Lang.Sema.check_source src)
