(** Human-readable dumps of the IR, for [mrvcc --dump-ir] and debugging. *)

val operand : Func.t -> Instr.operand -> string
val instr : Func.t -> Instr.t -> string
val terminator : Instr.terminator -> string
val func : Func.t -> string
val program : Prog.t -> string
