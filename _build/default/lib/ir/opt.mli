(** Classic scalar optimizations on the register IR: constant folding,
    block-local copy/constant propagation, and liveness-based dead-code
    elimination of pure instructions.

    The passes never touch memory accesses, calls, I/O, or TLS
    synchronization instructions, and they preserve instruction ids of
    surviving instructions, so profiles gathered on an optimized program
    remain valid for an identically optimized second compile. *)

(** Fold [Bin] instructions whose operands are both immediates.  Returns
    the number of instructions folded. *)
val constant_fold : Func.t -> int

(** Block-local propagation of [Mov] sources (registers and immediates)
    into later uses.  Returns the number of operands rewritten. *)
val propagate_copies : Func.t -> int

(** Remove pure instructions ([Bin]/[Mov]) whose results are dead.
    Returns the number of instructions removed. *)
val eliminate_dead_code : Func.t -> int

(** Run all passes to a (bounded) fixpoint over every function.  Returns
    the total number of simplifications. *)
val run : Prog.t -> int
