let constant_fold (f : Func.t) =
  let folded = ref 0 in
  Array.iter
    (fun (b : Func.block) ->
      b.Func.instrs <-
        List.map
          (fun (i : Instr.t) ->
            match i.Instr.kind with
            | Instr.Bin (op, d, Instr.Imm a, Instr.Imm bv) ->
              incr folded;
              { i with Instr.kind = Instr.Mov (d, Instr.Imm (Instr.eval_binop op a bv)) }
            | _ -> i)
          b.Func.instrs)
    f.Func.blocks;
  !folded

let propagate_copies (f : Func.t) =
  let rewritten = ref 0 in
  Array.iter
    (fun (b : Func.block) ->
      (* reg -> known operand value within this block *)
      let env : (Instr.reg, Instr.operand) Hashtbl.t = Hashtbl.create 16 in
      let subst op =
        match op with
        | Instr.Reg r -> begin
          match Hashtbl.find_opt env r with
          | Some replacement ->
            incr rewritten;
            replacement
          | None -> op
        end
        | Instr.Imm _ -> op
      in
      (* Invalidate every binding that reads or defines [r]. *)
      let kill r =
        Hashtbl.remove env r;
        let stale =
          Hashtbl.fold
            (fun key value acc ->
              match value with
              | Instr.Reg src when src = r -> key :: acc
              | _ -> acc)
            env []
        in
        List.iter (Hashtbl.remove env) stale
      in
      b.Func.instrs <-
        List.map
          (fun (i : Instr.t) ->
            let kind =
              match i.Instr.kind with
              | Instr.Bin (op, d, a, bv) -> Instr.Bin (op, d, subst a, subst bv)
              | Instr.Mov (d, a) -> Instr.Mov (d, subst a)
              | Instr.Load (d, a) -> Instr.Load (d, subst a)
              | Instr.Store (a, v) -> Instr.Store (subst a, subst v)
              | Instr.Call (d, name, args) ->
                Instr.Call (d, name, List.map subst args)
              | Instr.Print a -> Instr.Print (subst a)
              | Instr.Input (d, a) -> Instr.Input (d, subst a)
              | Instr.Signal_scalar (ch, a) -> Instr.Signal_scalar (ch, subst a)
              | Instr.Sync_load (ch, d, a) -> Instr.Sync_load (ch, d, subst a)
              | Instr.Signal_mem (ch, a) -> Instr.Signal_mem (ch, subst a)
              | Instr.Signal_mem_if_unsent (ch, a) ->
                Instr.Signal_mem_if_unsent (ch, subst a)
              | ( Instr.Input_len _ | Instr.Wait_scalar _ | Instr.Wait_mem _
                | Instr.Signal_null _ | Instr.Signal_null_if_unsent _ ) as k ->
                k
            in
            let i = { i with Instr.kind } in
            List.iter kill (Instr.defs i);
            (match i.Instr.kind with
            | Instr.Mov (d, (Instr.Imm _ as src)) -> Hashtbl.replace env d src
            | Instr.Mov (d, (Instr.Reg s as src)) when s <> d ->
              Hashtbl.replace env d src
            | _ -> ());
            i)
          b.Func.instrs;
      b.Func.term <-
        (match b.Func.term with
        | Instr.Br (c, a, bb) -> Instr.Br (subst c, a, bb)
        | Instr.Ret (Some v) -> Instr.Ret (Some (subst v))
        | (Instr.Jmp _ | Instr.Ret None) as t -> t))
    f.Func.blocks;
  !rewritten

(* Liveness computed locally (the dataflow library sits above ir in the
   build graph): a standard backward fixpoint at block granularity. *)
module Int_set = Set.Make (Int)

let block_live_out (f : Func.t) =
  let n = Func.num_blocks f in
  let live_in = Array.make n Int_set.empty in
  let live_out = Array.make n Int_set.empty in
  let transfer l out =
    let b = f.Func.blocks.(l) in
    let live = ref (Int_set.union out (Int_set.of_list (Instr.term_uses b.Func.term))) in
    List.iter
      (fun (i : Instr.t) ->
        let after = List.fold_left (fun s d -> Int_set.remove d s) !live (Instr.defs i) in
        live := List.fold_left (fun s u -> Int_set.add u s) after (Instr.uses i))
      (List.rev b.Func.instrs);
    !live
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for l = n - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc s -> Int_set.union acc live_in.(s))
          Int_set.empty (Func.successors f l)
      in
      let inp = transfer l out in
      if
        (not (Int_set.equal out live_out.(l)))
        || not (Int_set.equal inp live_in.(l))
      then begin
        live_out.(l) <- out;
        live_in.(l) <- inp;
        changed := true
      end
    done
  done;
  live_out

let is_pure (i : Instr.t) =
  match i.Instr.kind with
  | Instr.Bin _ | Instr.Mov _ -> true
  | _ -> false

let eliminate_dead_code (f : Func.t) =
  let removed = ref 0 in
  let live_out = block_live_out f in
  Array.iteri
    (fun l (b : Func.block) ->
      (* Backward scan within the block: a pure instruction whose defs are
         all dead at its program point can go. *)
      let live = ref (Int_set.union live_out.(l) (Int_set.of_list (Instr.term_uses b.Func.term))) in
      let kept =
        List.fold_left
          (fun acc (i : Instr.t) ->
            let defs = Instr.defs i in
            let dead =
              is_pure i && List.for_all (fun d -> not (Int_set.mem d !live)) defs
            in
            if dead then begin
              incr removed;
              acc
            end
            else begin
              let after =
                List.fold_left (fun s d -> Int_set.remove d s) !live defs
              in
              live :=
                List.fold_left (fun s u -> Int_set.add u s) after (Instr.uses i);
              i :: acc
            end)
          []
          (List.rev b.Func.instrs)
      in
      b.Func.instrs <- kept)
    f.Func.blocks;
  !removed

let run (p : Prog.t) =
  let total = ref 0 in
  List.iter
    (fun (_, f) ->
      let rec fixpoint rounds =
        if rounds > 0 then begin
          let changed =
            constant_fold f + propagate_copies f + eliminate_dead_code f
          in
          total := !total + changed;
          if changed > 0 then fixpoint (rounds - 1)
        end
      in
      fixpoint 4)
    p.Prog.funcs;
  !total
