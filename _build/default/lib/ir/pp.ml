let operand f = function
  | Instr.Reg r -> Func.reg_name f r
  | Instr.Imm n -> string_of_int n

let instr f (i : Instr.t) =
  let op = operand f in
  let body =
    match i.Instr.kind with
    | Instr.Bin (bop, d, a, b) ->
      Printf.sprintf "%s = %s %s, %s" (Func.reg_name f d)
        (Instr.binop_to_string bop) (op a) (op b)
    | Instr.Mov (d, a) -> Printf.sprintf "%s = %s" (Func.reg_name f d) (op a)
    | Instr.Load (d, a) ->
      Printf.sprintf "%s = load [%s]" (Func.reg_name f d) (op a)
    | Instr.Store (a, v) -> Printf.sprintf "store [%s], %s" (op a) (op v)
    | Instr.Call (Some d, name, args) ->
      Printf.sprintf "%s = call %s(%s)" (Func.reg_name f d) name
        (String.concat ", " (List.map op args))
    | Instr.Call (None, name, args) ->
      Printf.sprintf "call %s(%s)" name
        (String.concat ", " (List.map op args))
    | Instr.Print a -> Printf.sprintf "print %s" (op a)
    | Instr.Input (d, a) ->
      Printf.sprintf "%s = input [%s]" (Func.reg_name f d) (op a)
    | Instr.Input_len d -> Printf.sprintf "%s = input_len" (Func.reg_name f d)
    | Instr.Wait_scalar (ch, d) ->
      Printf.sprintf "%s = wait_scalar ch%d" (Func.reg_name f d) ch
    | Instr.Signal_scalar (ch, a) ->
      Printf.sprintf "signal_scalar ch%d, %s" ch (op a)
    | Instr.Wait_mem ch -> Printf.sprintf "wait_mem ch%d" ch
    | Instr.Sync_load (ch, d, a) ->
      Printf.sprintf "%s = sync_load ch%d, [%s]" (Func.reg_name f d) ch (op a)
    | Instr.Signal_mem (ch, a) ->
      Printf.sprintf "signal_mem ch%d, [%s]" ch (op a)
    | Instr.Signal_mem_if_unsent (ch, a) ->
      Printf.sprintf "signal_mem_if_unsent ch%d, [%s]" ch (op a)
    | Instr.Signal_null ch -> Printf.sprintf "signal_null ch%d" ch
    | Instr.Signal_null_if_unsent ch ->
      Printf.sprintf "signal_null_if_unsent ch%d" ch
  in
  Printf.sprintf "%4d: %s" i.Instr.iid body

let terminator = function
  | Instr.Jmp l -> Printf.sprintf "jmp L%d" l
  | Instr.Br (c, a, b) ->
    let c_str = match c with Instr.Reg r -> Printf.sprintf "r%d" r | Instr.Imm n -> string_of_int n in
    Printf.sprintf "br %s, L%d, L%d" c_str a b
  | Instr.Ret None -> "ret"
  | Instr.Ret (Some o) ->
    let o_str = match o with Instr.Reg r -> Printf.sprintf "r%d" r | Instr.Imm n -> string_of_int n in
    Printf.sprintf "ret %s" o_str

let func (f : Func.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "func %s(%s)  ; %d regs\n" f.Func.name
       (String.concat ", " (List.map fst f.Func.params))
       f.Func.nregs);
  Array.iteri
    (fun l (b : Func.block) ->
      Buffer.add_string buf (Printf.sprintf "L%d:\n" l);
      List.iter
        (fun i -> Buffer.add_string buf ("  " ^ instr f i ^ "\n"))
        b.Func.instrs;
      Buffer.add_string buf ("  " ^ terminator b.Func.term ^ "\n"))
    f.Func.blocks;
  Buffer.contents buf

let program (p : Prog.t) =
  String.concat "\n" (List.map (fun (_, f) -> func f) p.Prog.funcs)
