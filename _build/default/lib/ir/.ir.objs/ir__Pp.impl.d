lib/ir/pp.ml: Array Buffer Func Instr List Printf Prog String
