lib/ir/lower.mli: Lang Prog
