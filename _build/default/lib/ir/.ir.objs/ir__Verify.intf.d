lib/ir/verify.mli: Func Prog
