lib/ir/lower.ml: Func Hashtbl Instr Lang Layout List Option Printf Prog
