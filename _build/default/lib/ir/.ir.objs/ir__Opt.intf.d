lib/ir/opt.mli: Func Prog
