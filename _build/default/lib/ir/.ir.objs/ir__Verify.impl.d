lib/ir/verify.ml: Array Func Hashtbl Instr List Printf Prog String
