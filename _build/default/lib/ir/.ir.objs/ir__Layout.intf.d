lib/ir/layout.mli: Lang
