lib/ir/prog.ml: Func Hashtbl Instr Layout List Region String
