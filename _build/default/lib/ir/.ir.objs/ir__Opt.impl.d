lib/ir/opt.ml: Array Func Hashtbl Instr Int List Prog Set
