lib/ir/func.mli: Hashtbl Instr
