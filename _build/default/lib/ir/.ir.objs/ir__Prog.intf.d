lib/ir/prog.mli: Func Hashtbl Instr Layout Region
