lib/ir/layout.ml: Hashtbl Lang List Printf
