lib/ir/region.ml: Instr List
