(** Grouping of synchronized accesses (paper §2.3, "Identifying frequently
    occurring dependences").

    Builds the dependence graph whose vertices are (instruction id, call
    stack) accesses and whose edges are the frequent dependences, and
    returns its connected components.  Each component becomes one
    synchronization group, communicated over one forwarding channel. *)

type group = {
  g_loads : Profiler.Profile.access list;
  g_stores : Profiler.Profile.access list;
}

(** Connected components of the frequent-dependence graph.  Accesses are
    classified by the role they play in the dependences (producer = store,
    consumer = load).  Deterministic order. *)
val groups : Profiler.Profile.dep list -> group list
