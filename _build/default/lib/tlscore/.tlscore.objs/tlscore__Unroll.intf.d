lib/tlscore/unroll.mli: Ir Profiler
