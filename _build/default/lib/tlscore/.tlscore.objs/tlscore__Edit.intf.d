lib/tlscore/edit.mli: Ir
