lib/tlscore/regions.mli: Ir Profiler
