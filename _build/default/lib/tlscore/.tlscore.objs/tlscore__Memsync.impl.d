lib/tlscore/memsync.ml: Array Cloning Dataflow Edit Grouping Int Ir List Option Printf Profiler Set String
