lib/tlscore/edit.ml: Array Ir List
