lib/tlscore/cloning.ml: Array Edit Hashtbl Ir List Printf Profiler
