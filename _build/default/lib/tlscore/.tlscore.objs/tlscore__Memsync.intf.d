lib/tlscore/memsync.mli: Ir Profiler
