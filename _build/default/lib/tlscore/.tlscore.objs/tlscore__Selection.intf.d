lib/tlscore/selection.mli: Ir Profiler
