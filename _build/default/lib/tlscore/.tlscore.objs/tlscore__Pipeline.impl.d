lib/tlscore/pipeline.ml: Ir List Memsync Option Profiler Regions Runtime Selection Unroll
