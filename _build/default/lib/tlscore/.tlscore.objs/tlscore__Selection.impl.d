lib/tlscore/selection.ml: Dataflow Float Ir List Profiler Regions String
