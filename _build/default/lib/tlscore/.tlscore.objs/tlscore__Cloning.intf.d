lib/tlscore/cloning.mli: Ir Profiler
