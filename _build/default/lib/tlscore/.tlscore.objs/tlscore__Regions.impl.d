lib/tlscore/regions.ml: Dataflow Edit Hashtbl Ir List Option Printf Profiler
