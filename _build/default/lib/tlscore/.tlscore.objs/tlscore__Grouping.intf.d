lib/tlscore/grouping.mli: Profiler
