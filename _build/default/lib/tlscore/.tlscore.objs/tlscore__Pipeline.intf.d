lib/tlscore/pipeline.mli: Ir Memsync Profiler Regions Runtime Selection
