lib/tlscore/unroll.ml: Dataflow Hashtbl Ir List Printf Profiler
