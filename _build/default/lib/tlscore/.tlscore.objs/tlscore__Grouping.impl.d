lib/tlscore/grouping.ml: Array Hashtbl List Profiler Support
