(** Region selection (paper §3.1, "Deciding Where to Parallelize").

    A loop qualifies as a candidate if, in the loop profile:
    - it covers at least 0.1% of total execution,
    - it averages at least 1.5 epochs (iterations) per instance, and
    - it averages at least 15 instructions per epoch.

    Among candidates, loops are chosen greedily by estimated benefit
    (coverage x achievable overlap on 4 processors), skipping any loop that
    statically overlaps an already-chosen loop of the same function — the
    paper's requirement that selected regions not be nested within each
    other. *)

type thresholds = {
  min_coverage : float;        (* fraction, default 0.001 *)
  min_epochs_per_instance : float;  (* default 1.5 *)
  min_instrs_per_epoch : float;     (* default 15. *)
  num_procs : int;             (* default 4 *)
}

val default_thresholds : thresholds

type candidate = {
  key : Profiler.Profile.loop_key;
  coverage : float;
  epochs_per_instance : float;
  instrs_per_epoch : float;
  benefit : float;
}

(** All loops that pass the three filters, best benefit first. *)
val candidates :
  ?thresholds:thresholds -> Ir.Prog.t -> Profiler.Profile.t -> candidate list

(** The greedy non-overlapping choice. *)
val select :
  ?thresholds:thresholds ->
  Ir.Prog.t ->
  Profiler.Profile.t ->
  Profiler.Profile.loop_key list
