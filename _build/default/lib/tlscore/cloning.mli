(** Procedure cloning along the call paths of synchronized accesses
    (paper §2.3, "Cloning").

    Synchronization must only execute when a marked load/store is reached
    through its profiled call path; this pass clones each procedure on such
    a path and redirects exactly the call sites on the path to the clones.
    Clones are shared between accesses with a common call-path prefix (a
    trie of contexts), so the code expansion stays negligible. *)

type result = {
  (* Where each requested access ended up after cloning: the function that
     now contains it and the (possibly fresh) instruction id. *)
  resolve : Profiler.Profile.access -> string * Ir.Instr.iid;
  clones_created : int;
  instrs_added : int;       (* static instructions added by cloning *)
}

(** [apply prog ~region_func accesses] clones along every non-empty context
    among [accesses].  Contexts are call-site instruction ids as recorded
    by the profiler, rooted at the parallelized loop in [region_func].
    @raise Failure if a context names an instruction that is not a call. *)
val apply :
  Ir.Prog.t ->
  region_func:string ->
  accesses:Profiler.Profile.access list ->
  result
