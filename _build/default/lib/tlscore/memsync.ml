type stats = {
  ms_groups : int;
  ms_static_groups : int;         (* groups with one static address *)
  ms_sync_loads : int;
  ms_sync_stores : int;           (* producer-side signals inserted *)
  ms_guarded_signals : int;       (* if-unsent signals at dataflow frontiers *)
  ms_clones : int;
  ms_instrs_added : int;
  ms_null_signals : int;          (* latch null-signals (pointer groups) *)
  ms_elided_nulls : int;
}

let zero_stats =
  {
    ms_groups = 0;
    ms_static_groups = 0;
    ms_sync_loads = 0;
    ms_sync_stores = 0;
    ms_guarded_signals = 0;
    ms_clones = 0;
    ms_instrs_added = 0;
    ms_null_signals = 0;
    ms_elided_nulls = 0;
  }

module Str_set = Set.Make (String)
module Int_set = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Group address analysis                                              *)
(* ------------------------------------------------------------------ *)

let address_operand (i : Ir.Instr.t) =
  match i.Ir.Instr.kind with
  | Ir.Instr.Load (_, a) | Ir.Instr.Store (a, _) | Ir.Instr.Sync_load (_, _, a)
    ->
    Some a
  | _ -> None

(* If every member access of the group addresses the same immediate (a
   global scalar), the group has one static address: the signal placement
   can then be decided by dataflow in the region function, with the
   address available everywhere.  Pointer-varying groups signal eagerly
   after each store instead. *)
let static_address prog resolve (g : Grouping.group) =
  let addr_of access =
    let fname, iid = resolve access in
    let f = Ir.Prog.func prog fname in
    match Option.bind (Edit.instr f iid) address_operand with
    | Some (Ir.Instr.Imm a) -> Some a
    | Some (Ir.Instr.Reg _) | None -> None
  in
  let members = g.Grouping.g_loads @ g.Grouping.g_stores in
  match members with
  | [] -> None
  | first :: rest -> begin
    match addr_of first with
    | None -> None
    | Some a ->
      if List.for_all (fun m -> addr_of m = Some a) rest then Some a else None
  end

(* ------------------------------------------------------------------ *)
(* May-store-later dataflow (paper §2.3 signal placement)              *)
(* ------------------------------------------------------------------ *)

(* Functions that may (transitively) execute one of the member stores. *)
let storing_functions (prog : Ir.Prog.t) store_sites =
  let direct =
    List.fold_left
      (fun acc (fname, _) -> Str_set.add fname acc)
      Str_set.empty store_sites
  in
  let result = ref direct in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (fname, f) ->
        if not (Str_set.mem fname !result) then
          Ir.Func.iter_instrs f (fun _ i ->
              match i.Ir.Instr.kind with
              | Ir.Instr.Call (_, callee, _)
                when Str_set.mem callee !result ->
                result := Str_set.add fname !result;
                changed := true
              | _ -> ()))
      prog.Ir.Prog.funcs
  done;
  !result

(* A store point in the region function: a direct member store, or a call
   that may reach one. *)
let is_store_point member_store_iids storing_funcs (i : Ir.Instr.t) =
  Int_set.mem i.Ir.Instr.iid member_store_iids
  ||
  match i.Ir.Instr.kind with
  | Ir.Instr.Call (_, callee, _) -> Str_set.mem callee storing_funcs
  | _ -> false

(* Block-level LATER: may a store point execute at or after the start of
   this block, within the current epoch (back edges excluded)? *)
let compute_later (f : Ir.Func.t) (region : Ir.Region.t) is_sp =
  let in_loop l = List.mem l region.Ir.Region.blocks in
  let has_store l =
    List.exists is_sp (Ir.Func.block f l).Ir.Func.instrs
  in
  let n = Ir.Func.num_blocks f in
  let later = Array.make n false in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        let from_succs =
          List.exists
            (fun s ->
              in_loop s && s <> region.Ir.Region.header && later.(s))
            (Ir.Func.successors f l)
        in
        let next = has_store l || from_succs in
        if next <> later.(l) then begin
          later.(l) <- next;
          changed := true
        end)
      region.Ir.Region.blocks
  done;
  later

(* ------------------------------------------------------------------ *)
(* Must-store analysis (for eliding latch nulls of pointer groups)     *)
(* ------------------------------------------------------------------ *)

let all_paths_store (f : Ir.Func.t) (region : Ir.Region.t) store_blocks =
  let in_loop l = List.mem l region.Ir.Region.blocks in
  let preds = Ir.Func.predecessors f in
  let loops = Dataflow.Loops.find f in
  let latches =
    match Dataflow.Loops.loop_of loops region.Ir.Region.header with
    | Some l -> l.Dataflow.Loops.back_edges
    | None -> []
  in
  let n = Ir.Func.num_blocks f in
  let must_out = Array.make n false in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        let gen = List.mem l store_blocks in
        let must_in =
          if l = region.Ir.Region.header then false
          else begin
            match List.filter in_loop preds.(l) with
            | [] -> false
            | ps -> List.for_all (fun p -> must_out.(p)) ps
          end
        in
        let next = must_in || gen in
        if next <> must_out.(l) then begin
          must_out.(l) <- next;
          changed := true
        end)
      region.Ir.Region.blocks
  done;
  latches <> [] && List.for_all (fun l -> must_out.(l)) latches

(* ------------------------------------------------------------------ *)
(* The pass                                                            *)
(* ------------------------------------------------------------------ *)

let apply ?(eager_signals = true) (prog : Ir.Prog.t) (region : Ir.Region.t)
    dep_profile ~threshold =
  let deps = Profiler.Profile.frequent_deps dep_profile ~threshold in
  if deps = [] then zero_stats
  else begin
    let groups = Grouping.groups deps in
    let accesses =
      List.concat_map
        (fun (g : Grouping.group) -> g.Grouping.g_loads @ g.Grouping.g_stores)
        groups
    in
    let cloning =
      Cloning.apply prog ~region_func:region.Ir.Region.func ~accesses
    in
    let region_f = Ir.Prog.func prog region.Ir.Region.func in
    let loops = Dataflow.Loops.find region_f in
    let latches =
      match Dataflow.Loops.loop_of loops region.Ir.Region.header with
      | Some l -> l.Dataflow.Loops.back_edges
      | None -> []
    in
    let sync_loads = ref 0
    and sync_stores = ref 0
    and guarded = ref 0
    and null_signals = ref 0
    and elided = ref 0
    and static_groups = ref 0 in
    let fresh what kind =
      {
        Ir.Instr.iid =
          Ir.Prog.fresh_iid prog ~in_func:region.Ir.Region.func ~what;
        kind;
      }
    in
    let mem_groups =
      List.map
        (fun (g : Grouping.group) ->
          let ch = Ir.Prog.fresh_channel prog in
          (* Consumer side: wait + checked load before every member load. *)
          let load_iids =
            List.map
              (fun a ->
                let fname, iid = cloning.Cloning.resolve a in
                let f = Ir.Prog.func prog fname in
                (match Edit.instr f iid with
                | Some { Ir.Instr.kind = Ir.Instr.Load (d, addr); _ } ->
                  Edit.insert_before f ~anchor:iid
                    [
                      {
                        Ir.Instr.iid =
                          Ir.Prog.fresh_iid prog ~in_func:fname
                            ~what:(Printf.sprintf "wait_mem ch%d" ch);
                        kind = Ir.Instr.Wait_mem ch;
                      };
                    ];
                  Edit.replace_kind f ~anchor:iid
                    (Ir.Instr.Sync_load (ch, d, addr));
                  incr sync_loads
                | Some _ ->
                  failwith "Memsync.apply: grouped consumer is not a load"
                | None -> failwith "Memsync.apply: consumer not found");
                iid)
              g.Grouping.g_loads
          in
          let store_sites =
            List.map (fun a -> cloning.Cloning.resolve a) g.Grouping.g_stores
          in
          (match static_address prog cloning.Cloning.resolve g with
          | Some addr when not eager_signals ->
            (* Lazy ablation: one guarded signal per latch, value leaves at
               the very end of the epoch. *)
            incr static_groups;
            List.iter
              (fun latch ->
                incr guarded;
                Edit.append region_f latch
                  [
                    fresh
                      (Printf.sprintf "signal_mem_if_unsent ch%d" ch)
                      (Ir.Instr.Signal_mem_if_unsent (ch, Ir.Instr.Imm addr));
                  ])
              latches
          | Some addr ->
            (* Static-address group: dataflow placement in the region
               function.  Stores inside clones are covered by signals at
               the call sites, so the forwarded value leaves as soon as
               the last store point of the path is done. *)
            incr static_groups;
            let member_store_iids =
              List.fold_left
                (fun acc (fname, iid) ->
                  if String.equal fname region.Ir.Region.func then
                    Int_set.add iid acc
                  else acc)
                Int_set.empty store_sites
            in
            let storing =
              storing_functions prog
                (List.filter
                   (fun (fname, _) ->
                     not (String.equal fname region.Ir.Region.func))
                   store_sites)
            in
            let is_sp = is_store_point member_store_iids storing in
            let later = compute_later region_f region is_sp in
            let preds = Ir.Func.predecessors region_f in
            let in_loop l = List.mem l region.Ir.Region.blocks in
            (* Final store points: no store point can follow. *)
            List.iter
              (fun l ->
                let b = Ir.Func.block region_f l in
                let instrs = Array.of_list b.Ir.Func.instrs in
                let n = Array.length instrs in
                let succs_later =
                  List.exists
                    (fun s ->
                      in_loop s && s <> region.Ir.Region.header && later.(s))
                    (Ir.Func.successors region_f l)
                in
                for idx = 0 to n - 1 do
                  if is_sp instrs.(idx) then begin
                    let later_in_block = ref false in
                    for j = idx + 1 to n - 1 do
                      if is_sp instrs.(j) then later_in_block := true
                    done;
                    if (not !later_in_block) && not succs_later then begin
                      incr sync_stores;
                      Edit.insert_after region_f
                        ~anchor:instrs.(idx).Ir.Instr.iid
                        [
                          fresh
                            (Printf.sprintf "signal_mem ch%d" ch)
                            (Ir.Instr.Signal_mem (ch, Ir.Instr.Imm addr));
                        ]
                    end
                  end
                done)
              region.Ir.Region.blocks;
            (* Frontier blocks: LATER just became false; a path arriving
               from a non-storing branch has not signaled yet. *)
            List.iter
              (fun l ->
                if
                  l <> region.Ir.Region.header
                  && (not later.(l))
                  && List.exists
                       (fun p -> in_loop p && later.(p))
                       preds.(l)
                then begin
                  incr guarded;
                  Edit.prepend region_f l
                    [
                      fresh
                        (Printf.sprintf "signal_mem_if_unsent ch%d" ch)
                        (Ir.Instr.Signal_mem_if_unsent (ch, Ir.Instr.Imm addr));
                    ]
                end)
              region.Ir.Region.blocks;
            (* No store point reachable at all: forward at epoch start. *)
            if not later.(region.Ir.Region.header) then begin
              incr guarded;
              Edit.prepend region_f region.Ir.Region.header
                [
                  fresh
                    (Printf.sprintf "signal_mem_if_unsent ch%d" ch)
                    (Ir.Instr.Signal_mem_if_unsent (ch, Ir.Instr.Imm addr));
                ]
            end
          | None ->
            (* Pointer-varying group: signal eagerly after each member
               store (the signal address buffer preserves correctness if
               a later store re-writes the address), NULL at the latch on
               paths that may not produce. *)
            List.iter
              (fun (fname, iid) ->
                let f = Ir.Prog.func prog fname in
                match Edit.instr f iid with
                | Some { Ir.Instr.kind = Ir.Instr.Store (addr, _); _ } ->
                  incr sync_stores;
                  Edit.insert_after f ~anchor:iid
                    [
                      {
                        Ir.Instr.iid =
                          Ir.Prog.fresh_iid prog ~in_func:fname
                            ~what:(Printf.sprintf "signal_mem ch%d" ch);
                        kind = Ir.Instr.Signal_mem (ch, addr);
                      };
                    ]
                | Some _ ->
                  failwith "Memsync.apply: grouped producer is not a store"
                | None -> failwith "Memsync.apply: producer not found")
              store_sites;
            let all_local =
              List.for_all
                (fun (fname, _) -> String.equal fname region.Ir.Region.func)
                store_sites
            in
            let store_blocks =
              List.filter_map
                (fun (fname, iid) ->
                  if String.equal fname region.Ir.Region.func then
                    Option.map fst (Edit.find_instr region_f iid)
                  else None)
                store_sites
            in
            (* NULL at the latch on paths that may not produce.  (Unlike
               static-address groups, nothing useful can be forwarded
               earlier: the group's address is unknown on non-storing
               paths, and an early NULL would make consumers speculate on
               still-uncommitted distance-2 values — measurably worse than
               releasing them at the latch.) *)
            if all_local && all_paths_store region_f region store_blocks then
              incr elided
            else
              List.iter
                (fun latch ->
                  incr null_signals;
                  Edit.append region_f latch
                    [
                      fresh
                        (Printf.sprintf "signal_null ch%d" ch)
                        (Ir.Instr.Signal_null_if_unsent ch);
                    ])
                latches);
          {
            Ir.Region.mg_id = ch;
            mg_loads = List.sort compare load_iids;
            mg_stores = List.sort compare (List.map snd store_sites);
          })
        groups
    in
    region.Ir.Region.mem_groups <- mem_groups;
    {
      ms_groups = List.length groups;
      ms_static_groups = !static_groups;
      ms_sync_loads = !sync_loads;
      ms_sync_stores = !sync_stores;
      ms_guarded_signals = !guarded;
      ms_clones = cloning.Cloning.clones_created;
      ms_instrs_added = cloning.Cloning.instrs_added;
      ms_null_signals = !null_signals;
      ms_elided_nulls = !elided;
    }
  end
