(** Loop unrolling for speculative regions (paper §3.1: "the compiler
    automatically applies loop unrolling to small loops to help amortize
    the overheads of speculative parallelization").

    The transformation duplicates the loop body [factor - 1] times and
    chains the back edges through the copies, so control only returns to
    the original header every [factor] iterations.  Since an epoch is one
    header-to-header traversal, epochs become [factor] source iterations:
    per-epoch spawn/commit/forwarding overheads are amortized, and
    distance-1 dependences between iterations of the same epoch become
    intra-epoch (no synchronization needed).  Loop semantics are untouched
    — every copy still evaluates its exit conditions, so early exits and
    arbitrary trip counts work unchanged. *)

(** [apply prog key ~factor] unrolls the loop at [key].  Returns the
    number of blocks added.  The loop keeps its header label, so region
    creation after unrolling finds the (larger) natural loop.
    @raise Failure if the loop cannot be found or [factor < 2]. *)
val apply : Ir.Prog.t -> Profiler.Profile.loop_key -> factor:int -> int

(** Unroll factor suggested by the loop profile: small epochs are unrolled
    until they reach roughly [target_epoch_size] (default 40) dynamic
    instructions, capped at [max_factor] (default 4); loops already big
    enough return 1. *)
val suggested_factor :
  ?target_epoch_size:float ->
  ?max_factor:int ->
  Profiler.Profile.t ->
  Profiler.Profile.loop_key ->
  int
