type group = {
  g_loads : Profiler.Profile.access list;
  g_stores : Profiler.Profile.access list;
}

(* A vertex is an access plus its role; the same iid never plays both roles
   (loads and stores are distinct instructions), but contexts distinguish
   vertices with equal iids anyway. *)
type vertex = Load_v of Profiler.Profile.access | Store_v of Profiler.Profile.access

let groups (deps : Profiler.Profile.dep list) : group list =
  let vertex_ids = Hashtbl.create 64 in
  let vertices = ref [] in
  let intern v =
    match Hashtbl.find_opt vertex_ids v with
    | Some i -> i
    | None ->
      let i = Hashtbl.length vertex_ids in
      Hashtbl.replace vertex_ids v i;
      vertices := v :: !vertices;
      i
  in
  let edges =
    List.map
      (fun (d : Profiler.Profile.dep) ->
        ( intern (Store_v d.Profiler.Profile.producer),
          intern (Load_v d.Profiler.Profile.consumer) ))
      deps
  in
  let n = Hashtbl.length vertex_ids in
  if n = 0 then []
  else begin
    let uf = Support.Union_find.create n in
    List.iter (fun (a, b) -> ignore (Support.Union_find.union uf a b)) edges;
    let vertex_arr = Array.make n (Load_v { Profiler.Profile.a_iid = -1; a_ctx = [] }) in
    List.iter (fun v -> vertex_arr.(Hashtbl.find vertex_ids v) <- v) !vertices;
    Support.Union_find.classes uf
    |> List.map (fun members ->
           let loads, stores =
             List.fold_left
               (fun (loads, stores) idx ->
                 match vertex_arr.(idx) with
                 | Load_v a -> (a :: loads, stores)
                 | Store_v a -> (loads, a :: stores))
               ([], []) members
           in
           {
             g_loads = List.sort compare loads;
             g_stores = List.sort compare stores;
           })
    |> List.sort compare
  end
