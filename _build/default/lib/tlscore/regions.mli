(** Region creation and scalar synchronization (the baseline the paper
    builds on, from Zhai et al. [32]).

    For each selected loop this pass:
    - identifies the {e communicating scalars}: registers live into the
      loop header that are also defined inside the loop;
    - allocates one forwarding channel per scalar;
    - inserts a [Wait_scalar] at the top of the header (the epoch entry);
    - inserts [Signal_scalar]s using an eager placement: directly after the
      last definition when the definition site provably executes exactly
      once per iteration and dominates every latch (this is the
      "instruction scheduling to shrink the critical forwarding path" of
      [32], restricted to the placement decision), and otherwise
      conservatively at every latch. *)

(** How the signal for a carried scalar was placed:
    - [Hoisted]: the value is recomputed at the top of the epoch from the
      waited value (induction-variable style: the single definition uses
      only the scalar itself and loop invariants) and signaled immediately —
      the shortest possible critical forwarding path;
    - [Eager]: signal directly after the last definition (single defining
      block that executes exactly once per iteration);
    - [At_latch]: conservative signal at every latch. *)
type placement = Hoisted | Eager | At_latch

type scalar_info = {
  si_reg : Ir.Instr.reg;
  si_channel : Ir.Instr.channel;
  si_placement : placement;
}

(** Create the region for a profiled loop, insert scalar synchronization,
    and register the region with the program.
    @raise Failure if the loop cannot be found. *)
val create : Ir.Prog.t -> Profiler.Profile.loop_key -> Ir.Region.t * scalar_info list

(** Non-mutating check used by region selection: is the loop serialized by
    a carried scalar whose signal cannot be hoisted to the epoch top?
    Such loops gain nothing even under ideal memory-value prediction, so
    the paper's selection criterion would skip them.
    @raise Failure if the loop cannot be found. *)
val scalar_serialized : Ir.Prog.t -> Profiler.Profile.loop_key -> bool
