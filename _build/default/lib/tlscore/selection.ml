type thresholds = {
  min_coverage : float;
  min_epochs_per_instance : float;
  min_instrs_per_epoch : float;
  num_procs : int;
}

let default_thresholds =
  {
    min_coverage = 0.001;
    min_epochs_per_instance = 1.5;
    min_instrs_per_epoch = 15.0;
    num_procs = 4;
  }

type candidate = {
  key : Profiler.Profile.loop_key;
  coverage : float;
  epochs_per_instance : float;
  instrs_per_epoch : float;
  benefit : float;
}

let candidates ?(thresholds = default_thresholds) (prog : Ir.Prog.t)
    (profile : Profiler.Profile.t) =
  let all = Profiler.Runner.all_loops prog in
  List.filter_map
    (fun key ->
      let stats = Profiler.Profile.stats profile key in
      if stats.Profiler.Profile.instances = 0 then None
      else begin
        let coverage = Profiler.Profile.coverage profile key in
        let epochs_per_instance =
          float_of_int stats.Profiler.Profile.iterations
          /. float_of_int stats.Profiler.Profile.instances
        in
        let instrs_per_epoch =
          if stats.Profiler.Profile.iterations = 0 then 0.0
          else
            float_of_int stats.Profiler.Profile.dyn_instrs
            /. float_of_int stats.Profiler.Profile.iterations
        in
        (* A loop that runs mostly nested inside other loop instances
           would execute sequentially inside their speculative regions,
           so parallelizing it buys (almost) nothing. *)
        let mostly_nested =
          stats.Profiler.Profile.nested_instances * 2
          > stats.Profiler.Profile.instances
        in
        if
          coverage >= thresholds.min_coverage
          && epochs_per_instance >= thresholds.min_epochs_per_instance
          && instrs_per_epoch >= thresholds.min_instrs_per_epoch
          && (not mostly_nested)
          && not (Regions.scalar_serialized prog key)
        then begin
          (* Achievable overlap: bounded by both the processor count and the
             average number of epochs available per instance. *)
          let overlap =
            Float.min (float_of_int thresholds.num_procs) epochs_per_instance
          in
          let benefit = coverage *. (1.0 -. (1.0 /. overlap)) in
          Some { key; coverage; epochs_per_instance; instrs_per_epoch; benefit }
        end
        else None
      end)
    all
  |> List.sort (fun a b -> compare b.benefit a.benefit)

(* Static overlap within one function: bodies share a block. *)
let overlaps prog a b =
  String.equal a.Profiler.Profile.lk_func b.Profiler.Profile.lk_func
  &&
  let f = Ir.Prog.func prog a.Profiler.Profile.lk_func in
  let loops = Dataflow.Loops.find f in
  match
    ( Dataflow.Loops.loop_of loops a.Profiler.Profile.lk_header,
      Dataflow.Loops.loop_of loops b.Profiler.Profile.lk_header )
  with
  | Some la, Some lb ->
    List.exists (fun blk -> List.mem blk lb.Dataflow.Loops.body)
      la.Dataflow.Loops.body
  | _, _ -> false

let select ?(thresholds = default_thresholds) prog profile =
  let cands = candidates ~thresholds prog profile in
  let chosen = ref [] in
  List.iter
    (fun c ->
      if not (List.exists (fun k -> overlaps prog c.key k) !chosen) then
        chosen := c.key :: !chosen)
    cands;
  List.rev !chosen
