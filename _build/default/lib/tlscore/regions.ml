type placement = Hoisted | Eager | At_latch

type scalar_info = {
  si_reg : Ir.Instr.reg;
  si_channel : Ir.Instr.channel;
  si_placement : placement;
}

(* Definition sites of [r] within the loop body: (block, position, instr). *)
let def_sites (f : Ir.Func.t) body r =
  List.concat_map
    (fun l ->
      let b = Ir.Func.block f l in
      List.mapi (fun idx (i : Ir.Instr.t) -> (l, idx, i)) b.Ir.Func.instrs
      |> List.filter_map (fun (l, idx, i) ->
             if List.mem r (Ir.Instr.defs i) then Some (l, idx, i) else None))
    body

(* Is [block] inside a loop strictly nested within [outer]? *)
let in_nested_loop loops (outer : Dataflow.Loops.loop) block =
  List.exists
    (fun (l : Dataflow.Loops.loop) ->
      l.Dataflow.Loops.header <> outer.Dataflow.Loops.header
      && List.mem l.Dataflow.Loops.header outer.Dataflow.Loops.body
      && List.mem block l.Dataflow.Loops.body)
    loops

(* The forwarded value of [r] can be recomputed at the top of the epoch
   when its (single) definition is a pure register computation whose
   operands are the waited scalar itself, loop invariants, or registers
   computed earlier in the same block by an equally pure chain.  This is
   the induction-variable case; hoisting the recomputation (plus an
   immediate signal) shrinks the critical forwarding path to
   wait+chain+signal (the scheduling optimization of Zhai et al. [32]).

   Returns the chain of defining instructions in program order. *)
let max_hoist_chain = 8

exception Not_hoistable

let find_hoist_chain (f : Ir.Func.t) body defined_in_loop r
    (sites_of : Ir.Instr.reg -> (Ir.Instr.label * int * Ir.Instr.t) list)
    (b : Ir.Instr.label) (idx_r : int) (site : Ir.Instr.t) =
  let pure (i : Ir.Instr.t) =
    match i.Ir.Instr.kind with
    | Ir.Instr.Bin _ | Ir.Instr.Mov _ -> true
    | _ -> false
  in
  let collected : (int, Ir.Instr.t) Hashtbl.t = Hashtbl.create 8 in
  let rec add (bl, idx, (ins : Ir.Instr.t)) =
    if bl <> b || not (pure ins) then raise Not_hoistable;
    if not (Hashtbl.mem collected idx) then begin
      if Hashtbl.length collected >= max_hoist_chain then raise Not_hoistable;
      Hashtbl.replace collected idx ins;
      List.iter
        (fun u ->
          if u <> r && List.mem u defined_in_loop then begin
            (* The reaching definition of a temporary must be the latest
               one earlier in this block (registers may have one def per
               unrolled body copy). *)
            let in_block_before =
              List.filter (fun (bl_u, idx_u, _) -> bl_u = b && idx_u < idx)
                (sites_of u)
            in
            match
              List.sort (fun (_, i, _) (_, j, _) -> compare j i) in_block_before
            with
            | latest :: _ -> add latest
            | [] -> raise Not_hoistable
          end)
        (Ir.Instr.uses ins)
    end
  in
  ignore body;
  ignore f;
  match add (b, idx_r, site) with
  | () ->
    Some
      (Hashtbl.fold (fun idx ins acc -> (idx, ins) :: acc) collected []
      |> List.sort compare |> List.map snd)
  | exception Not_hoistable -> None

type plan = {
  p_reg : Ir.Instr.reg;
  p_channel : Ir.Instr.channel;
  p_placement : placement;
  p_sites : (Ir.Instr.label * int * Ir.Instr.t) list;
  p_chain : Ir.Instr.t list;   (* defining chain, for [Hoisted] *)
}

(* Non-mutating analysis shared by {!create} and region selection: which
   registers are loop-carried and how their signals would be placed.  A
   loop whose carried scalar cannot be hoisted is serialized by its scalar
   chain, so even ideal memory-value prediction cannot make it profitable;
   the paper's selection criterion (minimize time under ideal prediction)
   would not choose it. *)
let analyze (prog : Ir.Prog.t) (key : Profiler.Profile.loop_key) =
  let fname = key.Profiler.Profile.lk_func in
  let header = key.Profiler.Profile.lk_header in
  let f = Ir.Prog.func prog fname in
  let loops = Dataflow.Loops.find f in
  let loop =
    match Dataflow.Loops.loop_of loops header with
    | Some l -> l
    | None ->
      failwith
        (Printf.sprintf "Regions.analyze: no loop at %s/L%d" fname header)
  in
  let dom = Dataflow.Dominance.compute f in
  let liveness = Dataflow.Liveness.compute f in
  let live_at_header = Dataflow.Liveness.live_in liveness header in
  let defined_in_loop =
    Dataflow.Liveness.defs_in_blocks f loop.Dataflow.Loops.body
  in
  let carried =
    List.filter (fun r -> List.mem r defined_in_loop) live_at_header
  in
  let latches = loop.Dataflow.Loops.back_edges in
  ignore prog;
  (* Capture original definition sites before any insertion. *)
  let plans =
    List.map
      (fun r ->
        let sites = def_sites f loop.Dataflow.Loops.body r in
        let blocks =
          List.sort_uniq compare (List.map (fun (l, _, _) -> l) sites)
        in
        let sites_of u = def_sites f loop.Dataflow.Loops.body u in
        (* Every defining block must run exactly once per epoch: dominate
           all latches and sit outside nested loops. *)
        let once_per_epoch b =
          List.for_all
            (fun latch -> Dataflow.Dominance.dominates dom b latch)
            latches
          && not (in_nested_loop loops loop b)
        in
        (* Hoisting composes the defining chains of ALL sites in execution
           order (blocks totally ordered by dominance — the unrolled-loop
           case has one site per body copy): the emitted copies thread the
           scalar through fresh registers, yielding the end-of-epoch
           value at the top of the epoch. *)
        let try_hoist_all () =
          let ordered_blocks =
            List.sort
              (fun a b ->
                if a = b then 0
                else if Dataflow.Dominance.dominates dom a b then -1
                else 1)
              blocks
          in
          let rec totally_ordered = function
            | a :: (b :: _ as rest) ->
              Dataflow.Dominance.dominates dom a b && totally_ordered rest
            | [] | [ _ ] -> true
          in
          if not (totally_ordered ordered_blocks) then None
          else begin
            let chains =
              List.map
                (fun b ->
                  (* Sites within a block, in program order. *)
                  let block_sites =
                    List.filter (fun (bl, _, _) -> bl = b) sites
                    |> List.sort (fun (_, i, _) (_, j, _) -> compare i j)
                  in
                  List.map
                    (fun (_, idx, site) ->
                      find_hoist_chain f loop.Dataflow.Loops.body
                        defined_in_loop r sites_of b idx site)
                    block_sites)
                ordered_blocks
              |> List.concat
            in
            if List.for_all Option.is_some chains then
              Some (List.concat_map Option.get chains)
            else None
          end
        in
        let placement, chain =
          if blocks <> [] && List.for_all once_per_epoch blocks then begin
            match try_hoist_all () with
            | Some chain -> (Hoisted, chain)
            | None -> if List.length blocks = 1 then (Eager, []) else (At_latch, [])
          end
          else (At_latch, [])
        in
        {
          p_reg = r;
          p_channel = -1;   (* allocated by [create] *)
          p_placement = placement;
          p_sites = sites;
          p_chain = chain;
        })
      carried
  in
  (loop, latches, plans)

(* Would parallelizing this loop be serialized by a carried scalar whose
   signal cannot be hoisted to the epoch top? *)
let scalar_serialized (prog : Ir.Prog.t) (key : Profiler.Profile.loop_key) =
  let _, _, plans = analyze prog key in
  List.exists
    (fun p ->
      match p.p_placement with
      | Hoisted -> false
      | Eager | At_latch -> true)
    plans

let create (prog : Ir.Prog.t) (key : Profiler.Profile.loop_key) =
  let fname = key.Profiler.Profile.lk_func in
  let header = key.Profiler.Profile.lk_header in
  let f = Ir.Prog.func prog fname in
  let loop, latches, plans0 = analyze prog key in
  let plans =
    List.map (fun p -> { p with p_channel = Ir.Prog.fresh_channel prog }) plans0
  in
  let fresh_sync what kind =
    {
      Ir.Instr.iid = Ir.Prog.fresh_iid prog ~in_func:fname ~what;
      kind;
    }
  in
  (* Header prologue: waits (all scalars), then hoisted recomputations with
     their immediate signals. *)
  let waits =
    List.map
      (fun p ->
        fresh_sync
          (Printf.sprintf "wait_scalar ch%d" p.p_channel)
          (Ir.Instr.Wait_scalar (p.p_channel, p.p_reg)))
      plans
  in
  (* Hoisted recomputation: copy the defining chain at the top of the
     epoch into fresh registers (the originals still execute in place) and
     signal the precomputed value immediately. *)
  let hoisted =
    List.concat_map
      (fun p ->
        match p.p_placement with
        | Hoisted ->
          let fresh_map = Hashtbl.create 8 in
          let fresh_of reg =
            match Hashtbl.find_opt fresh_map reg with
            | Some fr -> fr
            | None ->
              let fr =
                Ir.Func.fresh_reg
                  ~name:(Printf.sprintf "%s_next" (Ir.Func.reg_name f reg))
                  f
              in
              Hashtbl.replace fresh_map reg fr;
              fr
          in
          let map_operand = function
            | Ir.Instr.Imm n -> Ir.Instr.Imm n
            | Ir.Instr.Reg u -> begin
              match Hashtbl.find_opt fresh_map u with
              | Some fr -> Ir.Instr.Reg fr
              | None -> Ir.Instr.Reg u   (* the waited scalar or invariant *)
            end
          in
          let copies =
            List.map
              (fun (ins : Ir.Instr.t) ->
                let kind =
                  match ins.Ir.Instr.kind with
                  | Ir.Instr.Bin (op, d, a, b) ->
                    let a' = map_operand a and b' = map_operand b in
                    Ir.Instr.Bin (op, fresh_of d, a', b')
                  | Ir.Instr.Mov (d, a) ->
                    let a' = map_operand a in
                    Ir.Instr.Mov (fresh_of d, a')
                  | _ -> assert false
                in
                fresh_sync "hoisted def" kind)
              p.p_chain
          in
          copies
          @ [
              fresh_sync
                (Printf.sprintf "signal_scalar ch%d" p.p_channel)
                (Ir.Instr.Signal_scalar
                   (p.p_channel, Ir.Instr.Reg (fresh_of p.p_reg)));
            ]
        | Eager | At_latch -> [])
      plans
  in
  Edit.prepend f header (waits @ hoisted);
  (* Non-hoisted signals. *)
  List.iter
    (fun p ->
      let mk_signal () =
        fresh_sync
          (Printf.sprintf "signal_scalar ch%d" p.p_channel)
          (Ir.Instr.Signal_scalar (p.p_channel, Ir.Instr.Reg p.p_reg))
      in
      match p.p_placement with
      | Hoisted -> ()
      | Eager ->
        (* Single defining block: place after the last definition. *)
        let last =
          List.fold_left
            (fun acc (_, idx, i) ->
              match acc with
              | Some (best_idx, _) when best_idx >= idx -> acc
              | _ -> Some (idx, i.Ir.Instr.iid))
            None p.p_sites
        in
        (match last with
        | Some (_, iid) -> Edit.insert_after f ~anchor:iid [ mk_signal () ]
        | None -> List.iter (fun l -> Edit.append f l [ mk_signal () ]) latches)
      | At_latch ->
        List.iter (fun l -> Edit.append f l [ mk_signal () ]) latches)
    plans;
  let scalar_channels =
    List.map
      (fun p -> { Ir.Region.sc_id = p.p_channel; sc_reg = p.p_reg })
      plans
  in
  let region =
    {
      Ir.Region.id = Ir.Prog.fresh_region_id prog;
      func = fname;
      header;
      blocks = loop.Dataflow.Loops.body;
      scalar_channels;
      mem_groups = [];
    }
  in
  prog.Ir.Prog.regions <- prog.Ir.Prog.regions @ [ region ];
  let infos =
    List.map
      (fun p ->
        {
          si_reg = p.p_reg;
          si_channel = p.p_channel;
          si_placement = p.p_placement;
        })
      plans
  in
  (region, infos)
