(** In-place IR editing utilities shared by the synchronization passes. *)

(** Location of a static instruction: block label and index within it. *)
val find_instr : Ir.Func.t -> Ir.Instr.iid -> (Ir.Instr.label * int) option

(** [insert_before f ~anchor instrs] splices [instrs] immediately before the
    instruction with id [anchor].  @raise Not_found if absent. *)
val insert_before : Ir.Func.t -> anchor:Ir.Instr.iid -> Ir.Instr.t list -> unit

(** [insert_after f ~anchor instrs] splices immediately after [anchor]. *)
val insert_after : Ir.Func.t -> anchor:Ir.Instr.iid -> Ir.Instr.t list -> unit

(** Prepend instructions at the top of a block. *)
val prepend : Ir.Func.t -> Ir.Instr.label -> Ir.Instr.t list -> unit

(** Append instructions at the bottom of a block (before the terminator). *)
val append : Ir.Func.t -> Ir.Instr.label -> Ir.Instr.t list -> unit

(** Replace the kind of instruction [anchor], keeping its id.
    @raise Not_found if absent. *)
val replace_kind : Ir.Func.t -> anchor:Ir.Instr.iid -> Ir.Instr.kind -> unit

(** The instruction with the given id, if present. *)
val instr : Ir.Func.t -> Ir.Instr.iid -> Ir.Instr.t option
