type result = {
  resolve : Profiler.Profile.access -> string * Ir.Instr.iid;
  clones_created : int;
  instrs_added : int;
}

(* Clone a function with fresh instruction ids and remember old -> new. *)
let clone_func (prog : Ir.Prog.t) (f : Ir.Func.t) new_name =
  let mapping = Hashtbl.create 64 in
  let copy_instr (i : Ir.Instr.t) =
    let what =
      match Ir.Prog.iid_info prog i.Ir.Instr.iid with
      | Some info -> info.Ir.Prog.what
      | None -> "cloned"
    in
    let iid = Ir.Prog.fresh_iid prog ~in_func:new_name ~what in
    Hashtbl.replace mapping i.Ir.Instr.iid iid;
    { i with Ir.Instr.iid }
  in
  let blocks =
    Array.map
      (fun (b : Ir.Func.block) ->
        {
          Ir.Func.instrs = List.map copy_instr b.Ir.Func.instrs;
          term = b.Ir.Func.term;
        })
      f.Ir.Func.blocks
  in
  let clone =
    {
      Ir.Func.name = new_name;
      params = f.Ir.Func.params;
      nregs = f.Ir.Func.nregs;
      blocks;
      reg_names = Hashtbl.copy f.Ir.Func.reg_names;
    }
  in
  (clone, mapping)

(* Find the callee name of a call instruction. *)
let callee_of (i : Ir.Instr.t) =
  match i.Ir.Instr.kind with
  | Ir.Instr.Call (_, name, _) -> Some name
  | _ -> None

let apply (prog : Ir.Prog.t) ~region_func ~accesses =
  (* Index every instruction of the current program by iid. *)
  let instr_index = Hashtbl.create 1024 in
  List.iter
    (fun (fname, f) ->
      Ir.Func.iter_instrs f (fun _ i ->
          Hashtbl.replace instr_index i.Ir.Instr.iid (fname, i)))
    prog.Ir.Prog.funcs;
  (* All call-path prefixes needed, shortest first so parents exist. *)
  let prefixes = Hashtbl.create 16 in
  List.iter
    (fun (a : Profiler.Profile.access) ->
      let rec add prefix = function
        | [] -> ()
        | c :: rest ->
          let p = prefix @ [ c ] in
          Hashtbl.replace prefixes p ();
          add p rest
      in
      add [] a.Profiler.Profile.a_ctx)
    accesses;
  let all_prefixes =
    Hashtbl.fold (fun p () acc -> p :: acc) prefixes []
    |> List.sort (fun a b ->
           match compare (List.length a) (List.length b) with
           | 0 -> compare a b
           | c -> c)
  in
  (* prefix -> (clone function name, old-iid -> new-iid map) *)
  let clones : (Ir.Instr.iid list, string * (Ir.Instr.iid, Ir.Instr.iid) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let counter = ref 0 in
  let instrs_added = ref 0 in
  List.iter
    (fun prefix ->
      let call_site = List.nth prefix (List.length prefix - 1) in
      let parent_prefix = List.filteri (fun i _ -> i < List.length prefix - 1) prefix in
      (* Function holding the (possibly cloned) call site, and the iid of
         that call site within it. *)
      let parent_name, call_iid_in_parent =
        if parent_prefix = [] then (region_func, call_site)
        else begin
          let pname, pmap = Hashtbl.find clones parent_prefix in
          match Hashtbl.find_opt pmap call_site with
          | Some iid -> (pname, iid)
          | None ->
            failwith "Cloning.apply: call site missing from parent clone"
        end
      in
      let callee_name =
        match Hashtbl.find_opt instr_index call_site with
        | Some (_, i) -> begin
          match callee_of i with
          | Some name -> name
          | None -> failwith "Cloning.apply: context id is not a call"
        end
        | None -> failwith "Cloning.apply: unknown call-site id"
      in
      let callee = Ir.Prog.func prog callee_name in
      incr counter;
      let clone_name = Printf.sprintf "%s__clone%d" callee_name !counter in
      let clone, mapping = clone_func prog callee clone_name in
      instrs_added := !instrs_added + Ir.Func.instr_count clone;
      Ir.Prog.add_func prog clone;
      Hashtbl.replace clones prefix (clone_name, mapping);
      (* Redirect the call site in the parent (clone) to the new clone. *)
      let parent = Ir.Prog.func prog parent_name in
      (match Edit.instr parent call_iid_in_parent with
      | Some i -> begin
        match i.Ir.Instr.kind with
        | Ir.Instr.Call (dst, _, args) ->
          Edit.replace_kind parent ~anchor:call_iid_in_parent
            (Ir.Instr.Call (dst, clone_name, args))
        | _ -> failwith "Cloning.apply: redirect target is not a call"
      end
      | None -> failwith "Cloning.apply: call site not found in parent"))
    all_prefixes;
  let resolve (a : Profiler.Profile.access) =
    match a.Profiler.Profile.a_ctx with
    | [] -> (region_func, a.Profiler.Profile.a_iid)
    | ctx ->
      let cname, cmap = Hashtbl.find clones ctx in
      (match Hashtbl.find_opt cmap a.Profiler.Profile.a_iid with
      | Some iid -> (cname, iid)
      | None -> failwith "Cloning.resolve: access not found in clone")
  in
  { resolve; clones_created = !counter; instrs_added = !instrs_added }
