(** Memory-resident value synchronization (paper §2.2–2.3) — the core pass.

    Given the dependence profile of a region, this pass:
    + keeps only dependences occurring in at least [threshold] of epochs;
    + groups the involved accesses (connected components, {!Grouping});
    + clones procedures along the call paths of grouped accesses
      ({!Cloning});
    + before every grouped load, inserts [Wait_mem] and turns the load into
      a [Sync_load] on the group's channel (the consumer-side
      check/select of Figure 3(b) is implemented by the simulated
      hardware);
    + after every grouped store, inserts [Signal_mem] forwarding
      (address, current value) — the producer-side signal address buffer
      catches a later same-address store;
    + releases consumers on paths that never produce: static-address
      groups get guarded [Signal_mem_if_unsent] at the may-store-later
      frontier (the value is still forwardable there); pointer-varying
      groups get [Signal_null_if_unsent] at the loop latches, elided when
      a forward must-execute dataflow proves every path stores.

    Channel ids come from the program-global allocator, so the simulator
    can tell a region's own channels from a nested region's. *)

type stats = {
  ms_groups : int;
  ms_static_groups : int;         (* groups with a single static address:
                                     signal placement decided by the
                                     may-store-later dataflow *)
  ms_sync_loads : int;
  ms_sync_stores : int;           (* unconditional producer signals *)
  ms_guarded_signals : int;       (* if-unsent signals at dataflow
                                     frontiers (paths that may not store) *)
  ms_clones : int;
  ms_instrs_added : int;          (* static instrs added by cloning *)
  ms_null_signals : int;          (* latch null-signals (pointer groups) *)
  ms_elided_nulls : int;          (* groups proven to always produce *)
}

(** Apply the pass; updates [region.mem_groups] in place.  A region with no
    frequent dependences is left untouched (zero stats).
    @param eager_signals when [false], static-address groups are signaled
    only at the loop latches instead of at the earliest point the
    may-store-later dataflow allows — the ablation quantifying the paper's
    "forward the value early" claim (default [true]). *)
val apply :
  ?eager_signals:bool ->
  Ir.Prog.t ->
  Ir.Region.t ->
  Profiler.Profile.dep_profile ->
  threshold:float ->
  stats
