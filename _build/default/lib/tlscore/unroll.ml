(* Loop unrolling by body duplication.

   For factor k, the body blocks are cloned k-1 times.  Back edges are
   re-chained: original latches -> copy 1's header image, copy i's latches
   -> copy i+1's header image, and the last copy's latches -> the original
   header.  Edges leaving the loop keep their original (external) targets.
   Registers are shared between copies — with no SSA form, duplicating
   straight-line code is semantically the identity. *)

let clone_body (prog : Ir.Prog.t) (f : Ir.Func.t) body ~header =
  (* Map of original label -> cloned label (header included: back edges to
     the header inside this copy become edges to the NEXT copy's header,
     patched by the caller). *)
  let mapping = Hashtbl.create 16 in
  List.iter
    (fun l -> Hashtbl.replace mapping l (Ir.Func.add_block f))
    body;
  let map_label l =
    match Hashtbl.find_opt mapping l with
    | Some l' -> l'
    | None -> l                               (* exit edge: external target *)
  in
  List.iter
    (fun l ->
      let src = Ir.Func.block f l in
      let dst = Ir.Func.block f (Hashtbl.find mapping l) in
      dst.Ir.Func.instrs <-
        List.map
          (fun (i : Ir.Instr.t) ->
            let what =
              match Ir.Prog.iid_info prog i.Ir.Instr.iid with
              | Some info -> info.Ir.Prog.what
              | None -> "unrolled"
            in
            {
              i with
              Ir.Instr.iid =
                Ir.Prog.fresh_iid prog ~in_func:f.Ir.Func.name ~what;
            })
          src.Ir.Func.instrs;
      dst.Ir.Func.term <-
        (match src.Ir.Func.term with
        | Ir.Instr.Jmp t -> Ir.Instr.Jmp (map_label t)
        | Ir.Instr.Br (c, a, b) -> Ir.Instr.Br (c, map_label a, map_label b)
        | Ir.Instr.Ret v -> Ir.Instr.Ret v))
    body;
  (mapping, Hashtbl.find mapping header)

(* Retarget edges to [old_header] within the given blocks to [new_header]. *)
let retarget f blocks ~old_header ~new_header =
  List.iter
    (fun l ->
      let b = Ir.Func.block f l in
      let patch t = if t = old_header then new_header else t in
      b.Ir.Func.term <-
        (match b.Ir.Func.term with
        | Ir.Instr.Jmp t -> Ir.Instr.Jmp (patch t)
        | Ir.Instr.Br (c, a, bb) -> Ir.Instr.Br (c, patch a, patch bb)
        | Ir.Instr.Ret v -> Ir.Instr.Ret v))
    blocks

let apply (prog : Ir.Prog.t) (key : Profiler.Profile.loop_key) ~factor =
  if factor < 2 then failwith "Unroll.apply: factor must be >= 2";
  let f = Ir.Prog.func prog key.Profiler.Profile.lk_func in
  let header = key.Profiler.Profile.lk_header in
  let loops = Dataflow.Loops.find f in
  let loop =
    match Dataflow.Loops.loop_of loops header with
    | Some l -> l
    | None ->
      failwith
        (Printf.sprintf "Unroll.apply: no loop at %s/L%d"
           key.Profiler.Profile.lk_func header)
  in
  let body = loop.Dataflow.Loops.body in
  (* Create the k-1 copies first (so external labels are stable), then
     chain the back edges from last copy to first. *)
  let copies =
    List.init (factor - 1) (fun _ -> clone_body prog f body ~header)
  in
  (* Original latches -> first copy's header image. *)
  (match copies with
  | (_, first_header) :: _ ->
    retarget f loop.Dataflow.Loops.back_edges ~old_header:header
      ~new_header:first_header
  | [] -> ());
  (* Copy i's internal header edges -> copy i+1's header image; the last
     copy keeps them pointing at the original header (already does: its
     mapping sent header to its own image... patch below). *)
  let rec chain = function
    | (mapping_i, _) :: (((_, header_next) :: _) as rest) ->
      let blocks_i =
        List.map (fun l -> Hashtbl.find mapping_i l) body
      in
      let own_header_image = Hashtbl.find mapping_i header in
      retarget f blocks_i ~old_header:own_header_image
        ~new_header:header_next;
      chain rest
    | [ (mapping_last, _) ] ->
      let blocks_last =
        List.map (fun l -> Hashtbl.find mapping_last l) body
      in
      let own_header_image = Hashtbl.find mapping_last header in
      retarget f blocks_last ~old_header:own_header_image ~new_header:header
    | [] -> ()
  in
  chain copies;
  (factor - 1) * List.length body

let suggested_factor ?(target_epoch_size = 40.0) ?(max_factor = 4) profile key
    =
  let stats = Profiler.Profile.stats profile key in
  if stats.Profiler.Profile.iterations = 0 then 1
  else begin
    let per_epoch =
      float_of_int stats.Profiler.Profile.dyn_instrs
      /. float_of_int stats.Profiler.Profile.iterations
    in
    if per_epoch >= target_epoch_size then 1
    else
      let f = int_of_float (ceil (target_epoch_size /. per_epoch)) in
      max 2 (min max_factor f)
  end
