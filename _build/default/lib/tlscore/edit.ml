let find_instr (f : Ir.Func.t) iid =
  let found = ref None in
  Array.iteri
    (fun l (b : Ir.Func.block) ->
      match !found with
      | Some _ -> ()
      | None ->
        List.iteri
          (fun idx (i : Ir.Instr.t) ->
            if i.Ir.Instr.iid = iid then found := Some (l, idx))
          b.Ir.Func.instrs)
    f.Ir.Func.blocks;
  !found

let splice f ~anchor instrs ~after =
  match find_instr f anchor with
  | None -> raise Not_found
  | Some (l, idx) ->
    let b = Ir.Func.block f l in
    let before, at_and_rest =
      List.filteri (fun i _ -> i < idx) b.Ir.Func.instrs,
      List.filteri (fun i _ -> i >= idx) b.Ir.Func.instrs
    in
    (match at_and_rest with
    | at :: rest ->
      b.Ir.Func.instrs <-
        (if after then before @ (at :: instrs) @ rest
         else before @ instrs @ (at :: rest))
    | [] -> assert false)

let insert_before f ~anchor instrs = splice f ~anchor instrs ~after:false

let insert_after f ~anchor instrs = splice f ~anchor instrs ~after:true

let prepend f l instrs =
  let b = Ir.Func.block f l in
  b.Ir.Func.instrs <- instrs @ b.Ir.Func.instrs

let append f l instrs =
  let b = Ir.Func.block f l in
  b.Ir.Func.instrs <- b.Ir.Func.instrs @ instrs

let replace_kind f ~anchor kind =
  match find_instr f anchor with
  | None -> raise Not_found
  | Some (l, idx) ->
    let b = Ir.Func.block f l in
    b.Ir.Func.instrs <-
      List.mapi
        (fun i (ins : Ir.Instr.t) ->
          if i = idx then { ins with Ir.Instr.kind } else ins)
        b.Ir.Func.instrs

let instr f iid =
  let found = ref None in
  Ir.Func.iter_instrs f (fun _ i ->
      if i.Ir.Instr.iid = iid then found := Some i);
  !found
