(** Per-benchmark experiment context: the compiled configurations, the
    sequential reference, and cached oracle recordings.

    Conventions (paper §3.1, §4):
    - region selection always uses the train-input loop profile, so every
      configuration of a benchmark parallelizes the same loops;
    - the C build synchronizes dependences profiled on the ref input, the
      T build those profiled on train (Figure 8);
    - all timed runs execute the ref input;
    - normalized region execution time = 100 x (TLS region wall cycles /
      sequential region cycles of the ORIGINAL program), subdivided into
      busy/sync/fail/other by graduation-slot fractions (Figure 2). *)

type t = {
  w : Workloads.Workload.t;
  ref_output : int list;                  (* sequential reference output *)
  seq : Tls.Simstats.seq_result;          (* timed original, ref input *)
  seq_region_cycles : int;
  u : Tlscore.Pipeline.compiled;          (* scalar sync only *)
  t_build : Tlscore.Pipeline.compiled;    (* memory sync, train profile *)
  c : Tlscore.Pipeline.compiled;          (* memory sync, ref profile *)
  mutable oracle_u : Tls.Oracle.t option; (* lazy recordings *)
  mutable oracle_c : Tls.Oracle.t option;
}

(** Build everything for one workload (compiles, profiles, sequential
    timing).  [threshold] is the synchronization frequency threshold
    (default 0.05, the paper's 5%). *)
val make : ?threshold:float -> Workloads.Workload.t -> t

val oracle_for_u : t -> Tls.Oracle.t
val oracle_for_c : t -> Tls.Oracle.t

(** Run a configuration and check its output against the sequential
    reference.  @raise Failure if outputs differ (a simulator bug). *)
val run :
  t ->
  Tls.Config.t ->
  Tlscore.Pipeline.compiled ->
  ?oracle:Tls.Oracle.t ->
  unit ->
  Tls.Simstats.result

(** Normalized region bar: (total, busy, sync, fail, other), all as
    percentages of the sequential region time. *)
val region_bar : t -> Tls.Simstats.result -> float * float * float * float * float

(** Fraction of sequential execution spent in the selected regions. *)
val coverage : t -> float

(** Whole-program speedup of a run vs the timed original. *)
val program_speedup : t -> Tls.Simstats.result -> float

(** Region speedup (sequential region cycles / TLS region cycles). *)
val region_speedup : t -> Tls.Simstats.result -> float

(** Sequential-region speedup (cycles outside regions, original vs TLS). *)
val seq_region_speedup : t -> Tls.Simstats.result -> float
