lib/harness/figures.mli: Context
