lib/harness/context.mli: Tls Tlscore Workloads
