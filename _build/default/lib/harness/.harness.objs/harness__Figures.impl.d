lib/harness/figures.ml: Buffer Context Hashtbl Ir List Printf Profiler String Support Tls Tlscore Workloads
