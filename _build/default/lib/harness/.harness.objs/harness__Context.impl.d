lib/harness/context.ml: List Printf Runtime Support Tls Tlscore Workloads
