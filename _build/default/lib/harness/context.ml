type t = {
  w : Workloads.Workload.t;
  ref_output : int list;
  seq : Tls.Simstats.seq_result;
  seq_region_cycles : int;
  u : Tlscore.Pipeline.compiled;
  t_build : Tlscore.Pipeline.compiled;
  c : Tlscore.Pipeline.compiled;
  mutable oracle_u : Tls.Oracle.t option;
  mutable oracle_c : Tls.Oracle.t option;
}

let make ?(threshold = 0.05) (w : Workloads.Workload.t) =
  let source = w.Workloads.Workload.source in
  let train = w.Workloads.Workload.train_input in
  let ref_input = w.Workloads.Workload.ref_input in
  (* Sequential reference semantics. *)
  let original = Tlscore.Pipeline.original ~source in
  let code0 = Runtime.Code.of_prog original in
  let mem0 = Runtime.Memory.create () in
  let ref_output = Runtime.Thread.run_sequential code0 ~input:ref_input mem0 in
  (* Configurations; selection always from the train loop profile. *)
  let u =
    Tlscore.Pipeline.compile ~source ~profile_input:train
      ~memory_sync:Tlscore.Pipeline.No_memory_sync ()
  in
  let selection = u.Tlscore.Pipeline.selected in
  let t_build =
    Tlscore.Pipeline.compile ~selection ~source ~profile_input:train
      ~memory_sync:(Tlscore.Pipeline.Profiled { dep_input = train; threshold })
      ()
  in
  let c =
    Tlscore.Pipeline.compile ~selection ~source ~profile_input:train
      ~memory_sync:
        (Tlscore.Pipeline.Profiled { dep_input = ref_input; threshold })
      ()
  in
  (* Timed sequential reference, tracking the selected loop extents. *)
  let seq =
    Tls.Sim.run_sequential Tls.Config.default code0 ~input:ref_input
      ~track:u.Tlscore.Pipeline.code.Runtime.Code.regions
  in
  let seq_region_cycles =
    List.fold_left (fun acc (_, c) -> acc + c) 0
      seq.Tls.Simstats.sq_region_cycles
  in
  {
    w;
    ref_output;
    seq;
    seq_region_cycles;
    u;
    t_build;
    c;
    oracle_u = None;
    oracle_c = None;
  }

let oracle_for_u t =
  match t.oracle_u with
  | Some o -> o
  | None ->
    let o =
      Tls.Oracle.record t.u.Tlscore.Pipeline.code
        ~input:t.w.Workloads.Workload.ref_input
    in
    t.oracle_u <- Some o;
    o

let oracle_for_c t =
  match t.oracle_c with
  | Some o -> o
  | None ->
    let o =
      Tls.Oracle.record t.c.Tlscore.Pipeline.code
        ~input:t.w.Workloads.Workload.ref_input
    in
    t.oracle_c <- Some o;
    o

let run t cfg (compiled : Tlscore.Pipeline.compiled) ?oracle () =
  let r =
    Tls.Sim.run cfg compiled.Tlscore.Pipeline.code
      ~input:t.w.Workloads.Workload.ref_input ?oracle ()
  in
  let oracle_active =
    match cfg.Tls.Config.oracle, cfg.Tls.Config.forward_timing with
    | Tls.Config.Oracle_none, Tls.Config.Forward_perfect -> true
    | Tls.Config.Oracle_none, _ -> false
    | _, _ -> true
  in
  (* Limit-study oracles replay recorded values; if the replay ever
     desynchronizes the output could differ, which we tolerate only for
     oracle modes. *)
  if (not oracle_active) && r.Tls.Simstats.output <> t.ref_output then
    failwith
      (Printf.sprintf "harness: %s produced wrong output under TLS"
         t.w.Workloads.Workload.name);
  r

let region_bar t (r : Tls.Simstats.result) =
  let seq_cycles = float_of_int t.seq_region_cycles in
  let total =
    Support.Stats.percent (float_of_int r.Tls.Simstats.region_cycles) seq_cycles
  in
  let slots = r.Tls.Simstats.slots in
  let all = float_of_int slots.Tls.Simstats.s_total in
  let frac n = if all = 0.0 then 0.0 else float_of_int n /. all in
  let busy = total *. frac slots.Tls.Simstats.s_busy in
  let sync = total *. frac slots.Tls.Simstats.s_sync in
  let fail = total *. frac slots.Tls.Simstats.s_fail in
  let other = max 0.0 (total -. busy -. sync -. fail) in
  (total, busy, sync, fail, other)

let coverage t =
  Support.Stats.ratio
    (float_of_int t.seq_region_cycles)
    (float_of_int t.seq.Tls.Simstats.sq_cycles)

let program_speedup t (r : Tls.Simstats.result) =
  Support.Stats.ratio
    (float_of_int t.seq.Tls.Simstats.sq_cycles)
    (float_of_int r.Tls.Simstats.total_cycles)

let region_speedup t (r : Tls.Simstats.result) =
  Support.Stats.ratio
    (float_of_int t.seq_region_cycles)
    (float_of_int r.Tls.Simstats.region_cycles)

let seq_region_speedup t (r : Tls.Simstats.result) =
  Support.Stats.ratio
    (float_of_int (t.seq.Tls.Simstats.sq_cycles - t.seq_region_cycles))
    (float_of_int r.Tls.Simstats.seq_cycles)
