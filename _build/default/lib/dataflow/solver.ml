type direction = Forward | Backward

module type Domain = sig
  type fact

  val equal : fact -> fact -> bool
  val bottom : fact
  val boundary : fact
  val join : fact -> fact -> fact
end

module Make (D : Domain) = struct
  let solve ~direction ~transfer (f : Ir.Func.t) =
    let n = Ir.Func.num_blocks f in
    let preds = Ir.Func.predecessors f in
    let succs = Array.init n (Ir.Func.successors f) in
    (* "sources" feed a block's input; "sinks" consume its output. *)
    let sources, sinks =
      match direction with
      | Forward -> (preds, succs)
      | Backward -> (succs, preds)
    in
    let is_boundary l =
      match direction with
      | Forward -> l = Ir.Func.entry
      | Backward -> succs.(l) = []
    in
    let inputs = Array.make n D.bottom in
    let outputs = Array.make n D.bottom in
    let in_worklist = Array.make n true in
    let worklist = Queue.create () in
    for l = 0 to n - 1 do
      Queue.add l worklist
    done;
    while not (Queue.is_empty worklist) do
      let l = Queue.pop worklist in
      in_worklist.(l) <- false;
      let input =
        let from_sources =
          List.fold_left
            (fun acc s -> D.join acc outputs.(s))
            D.bottom sources.(l)
        in
        if is_boundary l then D.join from_sources D.boundary
        else from_sources
      in
      inputs.(l) <- input;
      let output = transfer l input in
      if not (D.equal output outputs.(l)) then begin
        outputs.(l) <- output;
        List.iter
          (fun s ->
            if not in_worklist.(s) then begin
              in_worklist.(s) <- true;
              Queue.add s worklist
            end)
          sinks.(l)
      end
    done;
    (inputs, outputs)
end
