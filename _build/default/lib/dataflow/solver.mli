(** Generic iterative dataflow solver over a function's CFG.

    The framework is block-granular: the client provides a transfer function
    per block and a join; the solver iterates a worklist to the (unique,
    because the client's lattice must be finite-height and the transfer
    monotone) fixpoint. *)

type direction = Forward | Backward

module type Domain = sig
  type fact

  val equal : fact -> fact -> bool
  val bottom : fact

  (** Fact at the boundary (entry for forward, exits for backward). *)
  val boundary : fact

  val join : fact -> fact -> fact
end

module Make (D : Domain) : sig
  (** [solve ~direction ~transfer func] returns [(inputs, outputs)] indexed
      by block label: for a forward analysis, [inputs.(l)] is the fact at
      block entry and [outputs.(l)] at block exit; for a backward analysis,
      [inputs.(l)] is the fact at block exit and [outputs.(l)] at entry. *)
  val solve :
    direction:direction ->
    transfer:(Ir.Instr.label -> D.fact -> D.fact) ->
    Ir.Func.t ->
    D.fact array * D.fact array
end
