lib/dataflow/liveness.mli: Ir
