lib/dataflow/dominance.ml: Array Fun Int Ir List Set
