lib/dataflow/loops.ml: Array Dominance Hashtbl Int Ir List Set
