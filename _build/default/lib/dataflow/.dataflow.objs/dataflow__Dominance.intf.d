lib/dataflow/dominance.mli: Ir
