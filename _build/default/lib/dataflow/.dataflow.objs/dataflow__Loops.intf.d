lib/dataflow/loops.mli: Ir
