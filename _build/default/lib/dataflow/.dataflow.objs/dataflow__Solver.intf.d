lib/dataflow/solver.mli: Ir
