lib/dataflow/liveness.ml: Array Int Ir List Set Solver
