lib/dataflow/solver.ml: Array Ir List Queue
