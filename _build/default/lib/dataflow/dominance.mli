(** Dominator computation (iterative algorithm over dominator sets).

    Blocks unreachable from the entry dominate nothing and are reported as
    dominated only by themselves. *)

type t

val compute : Ir.Func.t -> t

(** [dominates t a b] — does block [a] dominate block [b]? *)
val dominates : t -> Ir.Instr.label -> Ir.Instr.label -> bool

(** Immediate dominator; [None] for the entry and unreachable blocks. *)
val idom : t -> Ir.Instr.label -> Ir.Instr.label option

val reachable : t -> Ir.Instr.label -> bool
