(** Register liveness, block-granular, built on {!Solver}.

    Used by the scalar synchronization pass to find the paper's
    "communicating scalars": registers live into a loop header that are
    also defined inside the loop. *)

type t

val compute : Ir.Func.t -> t

(** Registers live at block entry. *)
val live_in : t -> Ir.Instr.label -> Ir.Instr.reg list

(** Registers live at block exit. *)
val live_out : t -> Ir.Instr.label -> Ir.Instr.reg list

val is_live_in : t -> Ir.Instr.label -> Ir.Instr.reg -> bool

(** Registers defined anywhere in the given blocks. *)
val defs_in_blocks : Ir.Func.t -> Ir.Instr.label list -> Ir.Instr.reg list
