module Int_set = Set.Make (Int)

module Domain = struct
  type fact = Int_set.t

  let equal = Int_set.equal
  let bottom = Int_set.empty
  let boundary = Int_set.empty
  let join = Int_set.union
end

module S = Solver.Make (Domain)

type t = {
  ins : Int_set.t array;   (* live at block entry *)
  outs : Int_set.t array;  (* live at block exit *)
}

let block_transfer (f : Ir.Func.t) l live_out =
  let b = Ir.Func.block f l in
  let live = ref (Int_set.union live_out (Int_set.of_list (Ir.Instr.term_uses b.Ir.Func.term))) in
  List.iter
    (fun (i : Ir.Instr.t) ->
      let after_defs =
        List.fold_left (fun acc d -> Int_set.remove d acc) !live
          (Ir.Instr.defs i)
      in
      live :=
        List.fold_left (fun acc u -> Int_set.add u acc) after_defs
          (Ir.Instr.uses i))
    (List.rev b.Ir.Func.instrs);
  !live

let compute (f : Ir.Func.t) =
  let transfer l fact = block_transfer f l fact in
  let outs, ins = S.solve ~direction:Solver.Backward ~transfer f in
  (* Backward solve: inputs are facts at block exit, outputs at entry. *)
  { ins; outs }

let live_in t l = Int_set.elements t.ins.(l)
let live_out t l = Int_set.elements t.outs.(l)
let is_live_in t l r = Int_set.mem r t.ins.(l)

let defs_in_blocks (f : Ir.Func.t) labels =
  let defs = ref Int_set.empty in
  List.iter
    (fun l ->
      let b = Ir.Func.block f l in
      List.iter
        (fun i ->
          List.iter (fun d -> defs := Int_set.add d !defs) (Ir.Instr.defs i))
        b.Ir.Func.instrs)
    labels;
  Int_set.elements !defs
