module Int_set = Set.Make (Int)

type loop = {
  header : Ir.Instr.label;
  body : Ir.Instr.label list;
  back_edges : Ir.Instr.label list;
  depth : int;
  parent : Ir.Instr.label option;
}

(* Collect the natural loop of back edge (src -> header): all blocks that
   reach src without passing through header. *)
let natural_loop preds header src =
  let body = ref (Int_set.add header Int_set.empty) in
  let stack = ref [] in
  if not (Int_set.mem src !body) then begin
    body := Int_set.add src !body;
    stack := [ src ]
  end;
  let rec loop () =
    match !stack with
    | [] -> ()
    | b :: rest ->
      stack := rest;
      List.iter
        (fun p ->
          if not (Int_set.mem p !body) then begin
            body := Int_set.add p !body;
            stack := p :: !stack
          end)
        preds.(b);
      loop ()
  in
  loop ();
  !body

let find (f : Ir.Func.t) : loop list =
  let dom = Dominance.compute f in
  let preds = Ir.Func.predecessors f in
  let n = Ir.Func.num_blocks f in
  (* header -> (body set, back edge sources) *)
  let by_header = Hashtbl.create 8 in
  for src = 0 to n - 1 do
    if Dominance.reachable dom src then
      List.iter
        (fun dst ->
          if Dominance.dominates dom dst src then begin
            (* back edge src -> dst *)
            let body = natural_loop preds dst src in
            let prev_body, prev_edges =
              match Hashtbl.find_opt by_header dst with
              | Some (b, e) -> (b, e)
              | None -> (Int_set.empty, [])
            in
            Hashtbl.replace by_header dst
              (Int_set.union prev_body body, src :: prev_edges)
          end)
        (Ir.Func.successors f src)
  done;
  let headers = Hashtbl.fold (fun h _ acc -> h :: acc) by_header [] in
  let headers = List.sort compare headers in
  (* Nesting: loop A encloses loop B if A's body contains B's header and
     A <> B.  Parent = smallest enclosing loop. *)
  let body_of h = fst (Hashtbl.find by_header h) in
  let parent_of h =
    let enclosing =
      List.filter
        (fun h' -> h' <> h && Int_set.mem h (body_of h'))
        headers
    in
    (* The innermost enclosing loop is the one whose body is smallest. *)
    match enclosing with
    | [] -> None
    | first :: rest ->
      Some
        (List.fold_left
           (fun best cand ->
             if Int_set.cardinal (body_of cand) < Int_set.cardinal (body_of best)
             then cand
             else best)
           first rest)
  in
  let rec depth_of h =
    match parent_of h with
    | None -> 1
    | Some p -> 1 + depth_of p
  in
  List.map
    (fun h ->
      let body, edges = Hashtbl.find by_header h in
      {
        header = h;
        body = Int_set.elements body;
        back_edges = List.sort compare edges;
        depth = depth_of h;
        parent = parent_of h;
      })
    headers

let loop_of loops header = List.find_opt (fun l -> l.header = header) loops

let exit_edges (f : Ir.Func.t) (l : loop) =
  let body = Int_set.of_list l.body in
  List.concat_map
    (fun b ->
      List.filter_map
        (fun s -> if Int_set.mem s body then None else Some (b, s))
        (Ir.Func.successors f b))
    l.body
