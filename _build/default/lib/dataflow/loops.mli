(** Natural loop discovery and the loop-nest forest.

    A natural loop is identified by its header (the target of a back edge,
    i.e. an edge whose source the header dominates).  Loops sharing a header
    are merged.  The nesting forest is used by region selection to pick
    non-overlapping loops. *)

type loop = {
  header : Ir.Instr.label;
  body : Ir.Instr.label list;          (* includes the header; sorted *)
  back_edges : Ir.Instr.label list;    (* sources of back edges *)
  depth : int;                         (* 1 = outermost *)
  parent : Ir.Instr.label option;      (* header of enclosing loop *)
}

(** All natural loops of a function, outermost first within each nest. *)
val find : Ir.Func.t -> loop list

(** [loop_of loops header] — the loop with that header, if any. *)
val loop_of : loop list -> Ir.Instr.label -> loop option

(** Exit edges of a loop: [(from_block_in_loop, to_block_outside)]. *)
val exit_edges : Ir.Func.t -> loop -> (Ir.Instr.label * Ir.Instr.label) list
