lib/lang/token.mli:
