lib/lang/sema.ml: Ast Hashtbl List Option Parser Printf String Tast Token
