lib/lang/tast.ml: Ast
