lib/lang/ast.ml: Token
