lib/lang/sema.mli: Ast Tast Token
