(* Abstract syntax of the mini-C workload language.

   The language is a deliberately small C subset: word-sized integers,
   pointers (with scaled arithmetic), named structs whose fields are all
   word-sized (int or pointer), global scalars/arrays/structs, and
   functions with int/pointer parameters.  Every scalar occupies one word
   of the simulated address space. *)

type pos = Token.pos

(* Surface types.  [Tstruct] only appears behind pointers, as the element
   type of a global array, or as the type of a global variable. *)
type ty =
  | Tint
  | Tvoid
  | Tptr of ty
  | Tstruct of string

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Land
  | Lor

type unop = Neg | Not

type expr = { desc : expr_desc; pos : pos }

and expr_desc =
  | Int of int
  | Null
  | Var of string                    (* local, parameter, or global scalar *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Deref of expr                    (* *e *)
  | Field of expr * string           (* e->f  (e is a struct pointer) *)
  | Direct_field of expr * string    (* e.f   (e is a global struct lvalue) *)
  | Index of expr * expr             (* e[i]  (array global or pointer) *)
  | Addr_of of expr                  (* &lvalue *)
  | Call of string * expr list

type stmt = { sdesc : stmt_desc; spos : pos }

and stmt_desc =
  | Assign of expr * expr            (* lvalue = expr *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Do_while of stmt list * expr
  | For of stmt option * expr option * stmt option * stmt list
  | Return of expr option
  | Expr of expr                     (* expression statement (a call) *)
  | Break
  | Continue
  | Decl of ty * string * expr option  (* local declaration with optional init *)

type func = {
  fname : string;
  return_ty : ty;
  params : (ty * string) list;
  body : stmt list;
  fpos : pos;
}

type global = {
  gname : string;
  gty : ty;                          (* element type for arrays *)
  array_len : int option;            (* Some n for arrays *)
  init : int option;                 (* scalar initializer *)
  gpos : pos;
}

type struct_decl = {
  sname : string;
  fields : (ty * string) list;
  stpos : pos;
}

type program = {
  structs : struct_decl list;
  globals : global list;
  funcs : func list;
}

let rec ty_to_string = function
  | Tint -> "int"
  | Tvoid -> "void"
  | Tptr t -> ty_to_string t ^ "*"
  | Tstruct s -> "struct " ^ s
