(** Recursive-descent parser for the mini-C workload language.

    Grammar sketch (standard C precedence for expressions):
    {v
    program   ::= (struct | global | func)*
    struct    ::= "struct" IDENT "{" (type IDENT ";")* "}" ";"?
    type      ::= ("int" | IDENT) "*"*
    global    ::= type IDENT ("[" INT "]")? ("=" INT)? ";"
    func      ::= (type | "void") IDENT "(" params ")" block
    stmt      ::= decl | assign | if | while | do-while | for | return
                | break | continue | block | expr ";"
    v} *)

exception Error of string * Token.pos

(** Parse a whole translation unit.  @raise Error on syntax errors. *)
val parse_program : string -> Ast.program

(** Parse a single expression (used by tests). *)
val parse_expr : string -> Ast.expr
