exception Error of string * Token.pos

type global_info = { g_ty : Ast.ty; g_is_array : bool }

type env = {
  structs : (string, (string * Ast.ty) list) Hashtbl.t;
  globals : (string, global_info) Hashtbl.t;
  funcs : (string, Ast.ty * Ast.ty list) Hashtbl.t;  (* return, params *)
  locals : (string, Ast.ty) Hashtbl.t;               (* per-function *)
  mutable decls : (string * Ast.ty) list;            (* collected locals *)
  mutable current_return : Ast.ty;
}

let err pos fmt = Printf.ksprintf (fun msg -> raise (Error (msg, pos))) fmt

let rec ty_equal a b =
  match (a, b) with
  | Ast.Tint, Ast.Tint | Ast.Tvoid, Ast.Tvoid -> true
  | Ast.Tptr a, Ast.Tptr b -> ty_equal a b
  | Ast.Tstruct a, Ast.Tstruct b -> String.equal a b
  | (Ast.Tint | Ast.Tvoid | Ast.Tptr _ | Ast.Tstruct _), _ -> false

let is_pointer = function Ast.Tptr _ -> true | Ast.Tint | Ast.Tvoid | Ast.Tstruct _ -> false

let is_scalar = function
  | Ast.Tint | Ast.Tptr _ -> true
  | Ast.Tvoid | Ast.Tstruct _ -> false

(* [null] is assignment/comparison-compatible with every pointer type. *)
let compatible ~(expected : Ast.ty) (e : Tast.texpr) =
  ty_equal expected e.Tast.ty
  || (is_pointer expected && e.Tast.t = Tast.Tnull)

let struct_fields env pos name =
  match Hashtbl.find_opt env.structs name with
  | Some fields -> fields
  | None -> err pos "unknown struct '%s'" name

let field_ty env pos sname fname =
  let fields = struct_fields env pos sname in
  match List.assoc_opt fname fields with
  | Some ty -> ty
  | None -> err pos "struct '%s' has no field '%s'" sname fname

(* Validate that a surface type is well-formed for the given context. *)
let rec check_ty env pos ~allow_struct (ty : Ast.ty) =
  match ty with
  | Ast.Tint -> ()
  | Ast.Tvoid -> err pos "'void' is only valid as a return type"
  | Ast.Tptr inner -> check_ty env pos ~allow_struct:true inner
  | Ast.Tstruct name ->
    if not (Hashtbl.mem env.structs name) then
      err pos "unknown type '%s'" name;
    if not allow_struct then
      err pos "struct '%s' can only be used behind a pointer or in globals"
        name

let mk ty pos t : Tast.texpr = { Tast.t; ty; pos }

(* Is this typed expression a memory lvalue (lowerable to an address)? *)
let is_memory_lvalue env (e : Tast.texpr) =
  match e.Tast.t with
  | Tast.Tglobal name -> Hashtbl.mem env.globals name
  | Tast.Tderef _ | Tast.Tfield _ | Tast.Tdirect_field _ | Tast.Tindex _ ->
    true
  | Tast.Tconst _ | Tast.Tnull | Tast.Tlocal _ | Tast.Tarray _ | Tast.Tbin _
  | Tast.Tun _ | Tast.Taddr _ | Tast.Tcall _ | Tast.Tprint _ | Tast.Tinput _
  | Tast.Tinput_len ->
    false

let rec check_expr env (e : Ast.expr) : Tast.texpr =
  let pos = e.Ast.pos in
  match e.Ast.desc with
  | Ast.Int n -> mk Ast.Tint pos (Tast.Tconst n)
  | Ast.Null -> mk (Ast.Tptr Ast.Tint) pos Tast.Tnull
  | Ast.Var name -> check_var env pos name
  | Ast.Binop (op, a, b) -> check_binop env pos op a b
  | Ast.Unop (op, a) ->
    let ta = check_rvalue env a in
    if not (ty_equal ta.Tast.ty Ast.Tint) then
      err pos "unary operator requires an int operand";
    mk Ast.Tint pos (Tast.Tun (op, ta))
  | Ast.Deref inner ->
    let ti = check_rvalue env inner in
    (match ti.Tast.ty with
    | Ast.Tptr pointee -> mk pointee pos (Tast.Tderef ti)
    | Ast.Tint | Ast.Tvoid | Ast.Tstruct _ ->
      err pos "cannot dereference a non-pointer")
  | Ast.Field (base, fname) ->
    let tb = check_rvalue env base in
    (match tb.Tast.ty with
    | Ast.Tptr (Ast.Tstruct sname) ->
      let fty = field_ty env pos sname fname in
      mk fty pos (Tast.Tfield (tb, sname, fname))
    | Ast.Tint | Ast.Tvoid | Ast.Tptr _ | Ast.Tstruct _ ->
      err pos "'->' requires a struct pointer")
  | Ast.Direct_field (base, fname) ->
    let tb = check_expr env base in
    (match tb.Tast.ty with
    | Ast.Tstruct sname ->
      let fty = field_ty env pos sname fname in
      mk fty pos (Tast.Tdirect_field (tb, sname, fname))
    | Ast.Tint | Ast.Tvoid | Ast.Tptr _ ->
      err pos "'.' requires a struct lvalue")
  | Ast.Index (base, idx) ->
    let tb = check_expr env base in
    let ti = check_rvalue env idx in
    if not (ty_equal ti.Tast.ty Ast.Tint) then
      err pos "array index must be an int";
    let elem_ty =
      match tb.Tast.t, tb.Tast.ty with
      | Tast.Tarray _, elem -> elem
      | _, Ast.Tptr pointee -> pointee
      | _, (Ast.Tint | Ast.Tvoid | Ast.Tstruct _) ->
        err pos "indexing requires an array or pointer"
    in
    mk elem_ty pos (Tast.Tindex (tb, ti))
  | Ast.Addr_of inner ->
    let ti = check_expr env inner in
    (match ti.Tast.t with
    | Tast.Tlocal _ ->
      err pos "cannot take the address of a register-resident local"
    | Tast.Tarray name ->
      (* &arr is the array base address *)
      mk (Ast.Tptr ti.Tast.ty) pos (Tast.Tarray name)
    | _ ->
      if is_memory_lvalue env ti then
        mk (Ast.Tptr ti.Tast.ty) pos (Tast.Taddr ti)
      else err pos "'&' requires a memory lvalue")
  | Ast.Call (name, args) -> check_call env pos name args

and check_var env pos name =
  match Hashtbl.find_opt env.locals name with
  | Some ty -> mk ty pos (Tast.Tlocal name)
  | None -> begin
    match Hashtbl.find_opt env.globals name with
    | Some { g_ty; g_is_array = true } -> mk g_ty pos (Tast.Tarray name)
    | Some { g_ty; g_is_array = false } -> mk g_ty pos (Tast.Tglobal name)
    | None -> err pos "unknown variable '%s'" name
  end

(* Struct-typed expressions are lvalues; everything else is already a value.
   Arrays decay to pointers when used as values (handled by the caller
   where needed). *)
and check_rvalue env (e : Ast.expr) : Tast.texpr =
  let te = check_expr env e in
  match te.Tast.ty, te.Tast.t with
  | Ast.Tstruct _, _ -> err e.Ast.pos "struct value used where a scalar is required"
  | _, Tast.Tarray _ ->
    (* Decay: array used as value has pointer-to-element type. *)
    { te with Tast.ty = Ast.Tptr te.Tast.ty }
  | _, _ -> te

and check_binop env pos op a b =
  let ta = check_rvalue env a in
  let tb = check_rvalue env b in
  let int_ty = Ast.Tint in
  match op with
  | Ast.Add | Ast.Sub -> begin
    match ta.Tast.ty, tb.Tast.ty with
    | Ast.Tint, Ast.Tint -> mk int_ty pos (Tast.Tbin (op, ta, tb))
    | Ast.Tptr _, Ast.Tint -> mk ta.Tast.ty pos (Tast.Tbin (op, ta, tb))
    | Ast.Tint, Ast.Tptr _ when op = Ast.Add ->
      mk tb.Tast.ty pos (Tast.Tbin (op, ta, tb))
    | _, _ -> err pos "invalid operand types for '+'/'-'"
  end
  | Ast.Mul | Ast.Div | Ast.Rem | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Shl
  | Ast.Shr ->
    if ty_equal ta.Tast.ty int_ty && ty_equal tb.Tast.ty int_ty then
      mk int_ty pos (Tast.Tbin (op, ta, tb))
    else err pos "arithmetic operator requires int operands"
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
    let ok =
      ty_equal ta.Tast.ty tb.Tast.ty
      || (is_pointer ta.Tast.ty && tb.Tast.t = Tast.Tnull)
      || (is_pointer tb.Tast.ty && ta.Tast.t = Tast.Tnull)
    in
    if not ok then err pos "comparison requires operands of the same type";
    mk int_ty pos (Tast.Tbin (op, ta, tb))
  | Ast.Land | Ast.Lor ->
    let truthy t =
      ty_equal t int_ty || is_pointer t
    in
    if truthy ta.Tast.ty && truthy tb.Tast.ty then
      mk int_ty pos (Tast.Tbin (op, ta, tb))
    else err pos "logical operator requires scalar operands"

and check_call env pos name args =
  match name, args with
  | "print", [ arg ] ->
    let ta = check_rvalue env arg in
    if not (is_scalar ta.Tast.ty) then err pos "print requires a scalar";
    mk Ast.Tvoid pos (Tast.Tprint ta)
  | "print", _ -> err pos "print takes exactly one argument"
  | "in", [ arg ] ->
    let ta = check_rvalue env arg in
    if not (ty_equal ta.Tast.ty Ast.Tint) then
      err pos "in() requires an int index";
    mk Ast.Tint pos (Tast.Tinput ta)
  | "in", _ -> err pos "in() takes exactly one argument"
  | "inlen", [] -> mk Ast.Tint pos Tast.Tinput_len
  | "inlen", _ -> err pos "inlen() takes no arguments"
  | _, _ -> begin
    match Hashtbl.find_opt env.funcs name with
    | None -> err pos "unknown function '%s'" name
    | Some (ret, param_tys) ->
      if List.length args <> List.length param_tys then
        err pos "function '%s' expects %d argument(s)" name
          (List.length param_tys);
      let targs =
        List.map2
          (fun expected arg ->
            let ta = check_rvalue env arg in
            if not (compatible ~expected ta) then
              err arg.Ast.pos
                "argument type mismatch in call to '%s': expected %s, got %s"
                name (Ast.ty_to_string expected)
                (Ast.ty_to_string ta.Tast.ty);
            ta)
          param_tys args
      in
      mk ret pos (Tast.Tcall (name, targs))
  end

let check_lvalue env (e : Ast.expr) : Tast.texpr =
  let te = check_expr env e in
  match te.Tast.t with
  | Tast.Tlocal _ -> te
  | _ ->
    if is_memory_lvalue env te then te
    else err e.Ast.pos "expression is not assignable"

let rec check_stmt env (s : Ast.stmt) : Tast.tstmt =
  let pos = s.Ast.spos in
  match s.Ast.sdesc with
  | Ast.Assign (lhs, rhs) ->
    let tl = check_lvalue env lhs in
    (match tl.Tast.ty with
    | Ast.Tstruct _ -> err pos "cannot assign whole structs"
    | Ast.Tvoid -> err pos "cannot assign to void"
    | Ast.Tint | Ast.Tptr _ -> ());
    let tr = check_rvalue env rhs in
    if not (compatible ~expected:tl.Tast.ty tr)
       (* Pointers may be initialized from int 0 as well as null. *)
       && not (is_pointer tl.Tast.ty && tr.Tast.t = Tast.Tconst 0)
    then
      err pos "assignment type mismatch: %s := %s"
        (Ast.ty_to_string tl.Tast.ty)
        (Ast.ty_to_string tr.Tast.ty);
    Tast.Sassign (tl, tr)
  | Ast.If (cond, then_b, else_b) ->
    let tc = check_rvalue env cond in
    Tast.Sif (tc, check_stmts env then_b, check_stmts env else_b)
  | Ast.While (cond, body) ->
    let tc = check_rvalue env cond in
    Tast.Swhile (tc, check_stmts env body)
  | Ast.Do_while (body, cond) ->
    let tb = check_stmts env body in
    let tc = check_rvalue env cond in
    Tast.Sdo_while (tb, tc)
  | Ast.For (init, cond, step, body) ->
    let tinit = Option.map (check_stmt env) init in
    let tcond = Option.map (check_rvalue env) cond in
    let tstep = Option.map (check_stmt env) step in
    Tast.Sfor (tinit, tcond, tstep, check_stmts env body)
  | Ast.Return None ->
    if not (ty_equal env.current_return Ast.Tvoid) then
      err pos "non-void function must return a value";
    Tast.Sreturn None
  | Ast.Return (Some e) ->
    let te = check_rvalue env e in
    if ty_equal env.current_return Ast.Tvoid then
      err pos "void function cannot return a value";
    if not (compatible ~expected:env.current_return te) then
      err pos "return type mismatch";
    Tast.Sreturn (Some te)
  | Ast.Expr e ->
    let te = check_expr env e in
    Tast.Sexpr te
  | Ast.Break -> Tast.Sbreak
  | Ast.Continue -> Tast.Scontinue
  | Ast.Decl (ty, name, init) ->
    check_ty env pos ~allow_struct:false ty;
    if not (is_scalar ty) then
      err pos "locals must be int or pointer typed";
    if Hashtbl.mem env.locals name then
      err pos "redeclaration of local '%s'" name;
    Hashtbl.replace env.locals name ty;
    env.decls <- (name, ty) :: env.decls;
    (match init with
    | None ->
      (* Uninitialized locals read as 0; make that explicit. *)
      Tast.Sassign
        ( mk ty pos (Tast.Tlocal name),
          mk Ast.Tint pos (Tast.Tconst 0) )
    | Some e ->
      let te = check_rvalue env e in
      if
        (not (compatible ~expected:ty te))
        && not (is_pointer ty && te.Tast.t = Tast.Tconst 0)
      then err pos "initializer type mismatch for '%s'" name;
      Tast.Sassign (mk ty pos (Tast.Tlocal name), te))

and check_stmts env stmts = List.map (check_stmt env) stmts

let check_func env (f : Ast.func) : Tast.tfunc =
  Hashtbl.reset env.locals;
  env.decls <- [];
  env.current_return <- f.Ast.return_ty;
  List.iter
    (fun (ty, name) ->
      check_ty env f.Ast.fpos ~allow_struct:false ty;
      if not (is_scalar ty) then
        err f.Ast.fpos "parameter '%s' must be int or pointer typed" name;
      if Hashtbl.mem env.locals name then
        err f.Ast.fpos "duplicate parameter '%s'" name;
      Hashtbl.replace env.locals name ty)
    f.Ast.params;
  let body = check_stmts env f.Ast.body in
  {
    Tast.tf_name = f.Ast.fname;
    tf_return = f.Ast.return_ty;
    tf_params = List.map (fun (ty, name) -> (name, ty)) f.Ast.params;
    tf_locals = List.rev env.decls;
    tf_body = body;
  }

let check (p : Ast.program) : Tast.tprogram =
  let env =
    {
      structs = Hashtbl.create 16;
      globals = Hashtbl.create 64;
      funcs = Hashtbl.create 64;
      locals = Hashtbl.create 64;
      decls = [];
      current_return = Ast.Tvoid;
    }
  in
  List.iter
    (fun (s : Ast.struct_decl) ->
      if Hashtbl.mem env.structs s.Ast.sname then
        err s.Ast.stpos "duplicate struct '%s'" s.Ast.sname;
      (* Register the name first so self-referential pointers check. *)
      Hashtbl.replace env.structs s.Ast.sname [];
      List.iter
        (fun (ty, fname) ->
          check_ty env s.Ast.stpos ~allow_struct:false ty;
          if not (is_scalar ty) then
            err s.Ast.stpos "field '%s' must be int or pointer typed" fname)
        s.Ast.fields;
      let field_names = List.map snd s.Ast.fields in
      let sorted = List.sort_uniq compare field_names in
      if List.length sorted <> List.length field_names then
        err s.Ast.stpos "duplicate field in struct '%s'" s.Ast.sname;
      Hashtbl.replace env.structs s.Ast.sname
        (List.map (fun (ty, fname) -> (fname, ty)) s.Ast.fields))
    p.Ast.structs;
  List.iter
    (fun (g : Ast.global) ->
      if Hashtbl.mem env.globals g.Ast.gname then
        err g.Ast.gpos "duplicate global '%s'" g.Ast.gname;
      check_ty env g.Ast.gpos ~allow_struct:true g.Ast.gty;
      (match g.Ast.array_len with
      | Some n when n <= 0 -> err g.Ast.gpos "array length must be positive"
      | Some _ | None -> ());
      (match g.Ast.init, g.Ast.gty with
      | Some _, Ast.Tstruct _ ->
        err g.Ast.gpos "struct globals cannot have scalar initializers"
      | (Some _ | None), _ -> ());
      Hashtbl.replace env.globals g.Ast.gname
        { g_ty = g.Ast.gty; g_is_array = g.Ast.array_len <> None })
    p.Ast.globals;
  List.iter
    (fun (f : Ast.func) ->
      if Hashtbl.mem env.funcs f.Ast.fname then
        err f.Ast.fpos "duplicate function '%s'" f.Ast.fname;
      if List.mem f.Ast.fname [ "print"; "in"; "inlen" ] then
        err f.Ast.fpos "'%s' is a builtin" f.Ast.fname;
      (match f.Ast.return_ty with
      | Ast.Tvoid -> ()
      | ty -> check_ty env f.Ast.fpos ~allow_struct:false ty);
      Hashtbl.replace env.funcs f.Ast.fname
        (f.Ast.return_ty, List.map fst f.Ast.params))
    p.Ast.funcs;
  (match Hashtbl.find_opt env.funcs "main" with
  | Some (Ast.Tvoid, []) -> ()
  | Some _ ->
    raise
      (Error ("main must be 'void main()'", { Token.line = 0; col = 0 }))
  | None ->
    raise (Error ("missing 'void main()'", { Token.line = 0; col = 0 })));
  let funcs = List.map (check_func env) p.Ast.funcs in
  {
    Tast.tp_structs =
      List.map
        (fun (s : Ast.struct_decl) ->
          ( s.Ast.sname,
            List.map (fun (ty, fname) -> (fname, ty)) s.Ast.fields ))
        p.Ast.structs;
    tp_globals = p.Ast.globals;
    tp_funcs = funcs;
  }

let check_source src = check (Parser.parse_program src)
