(** Tokens of the mini-C workload language, with source positions. *)

type t =
  | Int_lit of int
  | Ident of string
  | Kw_int
  | Kw_void
  | Kw_struct
  | Kw_if
  | Kw_else
  | Kw_while
  | Kw_do
  | Kw_for
  | Kw_return
  | Kw_break
  | Kw_continue
  | Kw_null
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Semi
  | Comma
  | Dot
  | Arrow      (** [->] *)
  | Assign     (** [=] *)
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Amp        (** [&]: unary address-of, binary bitwise and *)
  | Pipe
  | Caret
  | Shl
  | Shr
  | Eq_eq
  | Bang_eq
  | Lt
  | Le
  | Gt
  | Ge
  | Amp_amp
  | Pipe_pipe
  | Bang
  | Eof

(** A position in the source: 1-based line and column. *)
type pos = { line : int; col : int }

type spanned = { tok : t; pos : pos }

(** Human-readable token name for diagnostics. *)
val describe : t -> string
