(* Typed abstract syntax produced by {!Sema}.

   Conventions:
   - locals and parameters are register-resident scalars (their address
     cannot be taken), matching the paper's "communicating scalars";
   - global scalars, struct fields, and array elements are memory-resident;
   - any expression of struct type is an lvalue and lowers to an address. *)

type ty = Ast.ty

type texpr = { t : tdesc; ty : ty; pos : Ast.pos }

and tdesc =
  | Tconst of int
  | Tnull
  | Tlocal of string                       (* register read *)
  | Tglobal of string                      (* global scalar (memory) or
                                              struct global (lvalue) *)
  | Tarray of string                       (* global array, decays to base
                                              address when used as a value *)
  | Tbin of Ast.binop * texpr * texpr
  | Tun of Ast.unop * texpr
  | Tderef of texpr
  | Tfield of texpr * string * string      (* pointer expr, struct, field *)
  | Tdirect_field of texpr * string * string (* struct lvalue, struct, field *)
  | Tindex of texpr * texpr                (* base (array or pointer), index *)
  | Taddr of texpr                         (* address of a memory lvalue *)
  | Tcall of string * texpr list
  | Tprint of texpr                        (* builtin print(e) *)
  | Tinput of texpr                        (* builtin in(i) *)
  | Tinput_len                             (* builtin inlen() *)

type tstmt =
  | Sassign of texpr * texpr               (* lvalue, rvalue *)
  | Sif of texpr * tstmt list * tstmt list
  | Swhile of texpr * tstmt list
  | Sdo_while of tstmt list * texpr
  | Sfor of tstmt option * texpr option * tstmt option * tstmt list
  | Sreturn of texpr option
  | Sexpr of texpr
  | Sbreak
  | Scontinue

type tfunc = {
  tf_name : string;
  tf_return : ty;
  tf_params : (string * ty) list;
  tf_locals : (string * ty) list;          (* declared locals, function scope *)
  tf_body : tstmt list;
}

type tprogram = {
  tp_structs : (string * (string * ty) list) list;  (* name -> fields *)
  tp_globals : Ast.global list;
  tp_funcs : tfunc list;
}
