type t =
  | Int_lit of int
  | Ident of string
  | Kw_int
  | Kw_void
  | Kw_struct
  | Kw_if
  | Kw_else
  | Kw_while
  | Kw_do
  | Kw_for
  | Kw_return
  | Kw_break
  | Kw_continue
  | Kw_null
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Semi
  | Comma
  | Dot
  | Arrow
  | Assign
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Amp
  | Pipe
  | Caret
  | Shl
  | Shr
  | Eq_eq
  | Bang_eq
  | Lt
  | Le
  | Gt
  | Ge
  | Amp_amp
  | Pipe_pipe
  | Bang
  | Eof

type pos = { line : int; col : int }

type spanned = { tok : t; pos : pos }

let describe = function
  | Int_lit n -> Printf.sprintf "integer literal %d" n
  | Ident s -> Printf.sprintf "identifier '%s'" s
  | Kw_int -> "'int'"
  | Kw_void -> "'void'"
  | Kw_struct -> "'struct'"
  | Kw_if -> "'if'"
  | Kw_else -> "'else'"
  | Kw_while -> "'while'"
  | Kw_do -> "'do'"
  | Kw_for -> "'for'"
  | Kw_return -> "'return'"
  | Kw_break -> "'break'"
  | Kw_continue -> "'continue'"
  | Kw_null -> "'null'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Semi -> "';'"
  | Comma -> "','"
  | Dot -> "'.'"
  | Arrow -> "'->'"
  | Assign -> "'='"
  | Plus -> "'+'"
  | Minus -> "'-'"
  | Star -> "'*'"
  | Slash -> "'/'"
  | Percent -> "'%'"
  | Amp -> "'&'"
  | Pipe -> "'|'"
  | Caret -> "'^'"
  | Shl -> "'<<'"
  | Shr -> "'>>'"
  | Eq_eq -> "'=='"
  | Bang_eq -> "'!='"
  | Lt -> "'<'"
  | Le -> "'<='"
  | Gt -> "'>'"
  | Ge -> "'>='"
  | Amp_amp -> "'&&'"
  | Pipe_pipe -> "'||'"
  | Bang -> "'!'"
  | Eof -> "end of input"
