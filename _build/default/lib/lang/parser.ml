exception Error of string * Token.pos

type state = { mutable toks : Token.spanned list }

let peek st =
  match st.toks with
  | t :: _ -> t
  | [] -> { Token.tok = Token.Eof; pos = { line = 0; col = 0 } }

let peek_tok st = (peek st).Token.tok

let peek2_tok st =
  match st.toks with
  | _ :: t :: _ -> t.Token.tok
  | _ -> Token.Eof

let advance st =
  match st.toks with
  | _ :: rest -> st.toks <- rest
  | [] -> ()

let fail st msg =
  let t = peek st in
  raise (Error (Printf.sprintf "%s (found %s)" msg (Token.describe t.tok), t.pos))

let expect st tok =
  let t = peek st in
  if t.Token.tok = tok then advance st
  else fail st (Printf.sprintf "expected %s" (Token.describe tok))

let expect_ident st =
  match peek_tok st with
  | Token.Ident name ->
    advance st;
    name
  | _ -> fail st "expected identifier"

let expect_int st =
  match peek_tok st with
  | Token.Int_lit n ->
    advance st;
    n
  | _ -> fail st "expected integer literal"

(* A type begins with 'int', 'void', or a struct name.  We only know that an
   identifier is a struct name from context: a declaration is recognized by
   IDENT IDENT or IDENT '*' patterns. *)

let rec parse_stars st base =
  if peek_tok st = Token.Star then begin
    advance st;
    parse_stars st (Ast.Tptr base)
  end
  else base

let parse_type st =
  match peek_tok st with
  | Token.Kw_int ->
    advance st;
    parse_stars st Ast.Tint
  | Token.Kw_void ->
    advance st;
    parse_stars st Ast.Tvoid
  | Token.Ident name ->
    advance st;
    parse_stars st (Ast.Tstruct name)
  | _ -> fail st "expected type"

(* Does the upcoming token sequence start a declaration?  True for
   'int' ..., or IDENT followed by ('*' or IDENT). *)
let starts_decl st =
  match peek_tok st with
  | Token.Kw_int -> true
  | Token.Ident _ -> begin
    match peek2_tok st with
    | Token.Star | Token.Ident _ -> true
    | _ -> false
  end
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let mk pos desc : Ast.expr = { Ast.desc; pos }

let rec parse_expr_prec st = parse_lor st

and parse_lor st =
  let lhs = parse_land st in
  let rec loop lhs =
    match peek_tok st with
    | Token.Pipe_pipe ->
      let p = (peek st).Token.pos in
      advance st;
      let rhs = parse_land st in
      loop (mk p (Ast.Binop (Ast.Lor, lhs, rhs)))
    | _ -> lhs
  in
  loop lhs

and parse_land st =
  let lhs = parse_bitor st in
  let rec loop lhs =
    match peek_tok st with
    | Token.Amp_amp ->
      let p = (peek st).Token.pos in
      advance st;
      let rhs = parse_bitor st in
      loop (mk p (Ast.Binop (Ast.Land, lhs, rhs)))
    | _ -> lhs
  in
  loop lhs

and parse_bitor st =
  let lhs = parse_bitxor st in
  let rec loop lhs =
    match peek_tok st with
    | Token.Pipe ->
      let p = (peek st).Token.pos in
      advance st;
      let rhs = parse_bitxor st in
      loop (mk p (Ast.Binop (Ast.Bor, lhs, rhs)))
    | _ -> lhs
  in
  loop lhs

and parse_bitxor st =
  let lhs = parse_bitand st in
  let rec loop lhs =
    match peek_tok st with
    | Token.Caret ->
      let p = (peek st).Token.pos in
      advance st;
      let rhs = parse_bitand st in
      loop (mk p (Ast.Binop (Ast.Bxor, lhs, rhs)))
    | _ -> lhs
  in
  loop lhs

and parse_bitand st =
  let lhs = parse_equality st in
  let rec loop lhs =
    match peek_tok st with
    | Token.Amp ->
      let p = (peek st).Token.pos in
      advance st;
      let rhs = parse_equality st in
      loop (mk p (Ast.Binop (Ast.Band, lhs, rhs)))
    | _ -> lhs
  in
  loop lhs

and parse_equality st =
  let lhs = parse_relational st in
  let rec loop lhs =
    match peek_tok st with
    | Token.Eq_eq ->
      let p = (peek st).Token.pos in
      advance st;
      let rhs = parse_relational st in
      loop (mk p (Ast.Binop (Ast.Eq, lhs, rhs)))
    | Token.Bang_eq ->
      let p = (peek st).Token.pos in
      advance st;
      let rhs = parse_relational st in
      loop (mk p (Ast.Binop (Ast.Ne, lhs, rhs)))
    | _ -> lhs
  in
  loop lhs

and parse_relational st =
  let lhs = parse_shift st in
  let rec loop lhs =
    let op =
      match peek_tok st with
      | Token.Lt -> Some Ast.Lt
      | Token.Le -> Some Ast.Le
      | Token.Gt -> Some Ast.Gt
      | Token.Ge -> Some Ast.Ge
      | _ -> None
    in
    match op with
    | Some op ->
      let p = (peek st).Token.pos in
      advance st;
      let rhs = parse_shift st in
      loop (mk p (Ast.Binop (op, lhs, rhs)))
    | None -> lhs
  in
  loop lhs

and parse_shift st =
  let lhs = parse_additive st in
  let rec loop lhs =
    let op =
      match peek_tok st with
      | Token.Shl -> Some Ast.Shl
      | Token.Shr -> Some Ast.Shr
      | _ -> None
    in
    match op with
    | Some op ->
      let p = (peek st).Token.pos in
      advance st;
      let rhs = parse_additive st in
      loop (mk p (Ast.Binop (op, lhs, rhs)))
    | None -> lhs
  in
  loop lhs

and parse_additive st =
  let lhs = parse_multiplicative st in
  let rec loop lhs =
    let op =
      match peek_tok st with
      | Token.Plus -> Some Ast.Add
      | Token.Minus -> Some Ast.Sub
      | _ -> None
    in
    match op with
    | Some op ->
      let p = (peek st).Token.pos in
      advance st;
      let rhs = parse_multiplicative st in
      loop (mk p (Ast.Binop (op, lhs, rhs)))
    | None -> lhs
  in
  loop lhs

and parse_multiplicative st =
  let lhs = parse_unary st in
  let rec loop lhs =
    let op =
      match peek_tok st with
      | Token.Star -> Some Ast.Mul
      | Token.Slash -> Some Ast.Div
      | Token.Percent -> Some Ast.Rem
      | _ -> None
    in
    match op with
    | Some op ->
      let p = (peek st).Token.pos in
      advance st;
      let rhs = parse_unary st in
      loop (mk p (Ast.Binop (op, lhs, rhs)))
    | None -> lhs
  in
  loop lhs

and parse_unary st =
  let p = (peek st).Token.pos in
  match peek_tok st with
  | Token.Minus ->
    advance st;
    mk p (Ast.Unop (Ast.Neg, parse_unary st))
  | Token.Bang ->
    advance st;
    mk p (Ast.Unop (Ast.Not, parse_unary st))
  | Token.Star ->
    advance st;
    mk p (Ast.Deref (parse_unary st))
  | Token.Amp ->
    advance st;
    mk p (Ast.Addr_of (parse_unary st))
  | _ -> parse_postfix st

and parse_postfix st =
  let e = parse_primary st in
  let rec loop e =
    let p = (peek st).Token.pos in
    match peek_tok st with
    | Token.Arrow ->
      advance st;
      let field = expect_ident st in
      loop (mk p (Ast.Field (e, field)))
    | Token.Dot ->
      advance st;
      let field = expect_ident st in
      loop (mk p (Ast.Direct_field (e, field)))
    | Token.Lbracket ->
      advance st;
      let idx = parse_expr_prec st in
      expect st Token.Rbracket;
      loop (mk p (Ast.Index (e, idx)))
    | _ -> e
  in
  loop e

and parse_primary st =
  let t = peek st in
  let p = t.Token.pos in
  match t.Token.tok with
  | Token.Int_lit n ->
    advance st;
    mk p (Ast.Int n)
  | Token.Kw_null ->
    advance st;
    mk p Ast.Null
  | Token.Lparen ->
    advance st;
    let e = parse_expr_prec st in
    expect st Token.Rparen;
    e
  | Token.Ident name ->
    advance st;
    if peek_tok st = Token.Lparen then begin
      advance st;
      let args = parse_args st in
      expect st Token.Rparen;
      mk p (Ast.Call (name, args))
    end
    else mk p (Ast.Var name)
  | _ -> fail st "expected expression"

and parse_args st =
  if peek_tok st = Token.Rparen then []
  else begin
    let first = parse_expr_prec st in
    let rec loop acc =
      if peek_tok st = Token.Comma then begin
        advance st;
        let e = parse_expr_prec st in
        loop (e :: acc)
      end
      else List.rev acc
    in
    loop [ first ]
  end

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let mks pos sdesc : Ast.stmt = { Ast.sdesc; spos = pos }

let rec parse_stmt st : Ast.stmt =
  let t = peek st in
  let p = t.Token.pos in
  match t.Token.tok with
  | Token.Kw_if ->
    advance st;
    expect st Token.Lparen;
    let cond = parse_expr_prec st in
    expect st Token.Rparen;
    let then_body = parse_stmt_as_block st in
    let else_body =
      if peek_tok st = Token.Kw_else then begin
        advance st;
        parse_stmt_as_block st
      end
      else []
    in
    mks p (Ast.If (cond, then_body, else_body))
  | Token.Kw_while ->
    advance st;
    expect st Token.Lparen;
    let cond = parse_expr_prec st in
    expect st Token.Rparen;
    let body = parse_stmt_as_block st in
    mks p (Ast.While (cond, body))
  | Token.Kw_do ->
    advance st;
    let body = parse_stmt_as_block st in
    expect st Token.Kw_while;
    expect st Token.Lparen;
    let cond = parse_expr_prec st in
    expect st Token.Rparen;
    expect st Token.Semi;
    mks p (Ast.Do_while (body, cond))
  | Token.Kw_for ->
    advance st;
    expect st Token.Lparen;
    let init =
      if peek_tok st = Token.Semi then None else Some (parse_simple_stmt st)
    in
    expect st Token.Semi;
    let cond =
      if peek_tok st = Token.Semi then None else Some (parse_expr_prec st)
    in
    expect st Token.Semi;
    let step =
      if peek_tok st = Token.Rparen then None else Some (parse_simple_stmt st)
    in
    expect st Token.Rparen;
    let body = parse_stmt_as_block st in
    mks p (Ast.For (init, cond, step, body))
  | Token.Kw_return ->
    advance st;
    let value =
      if peek_tok st = Token.Semi then None else Some (parse_expr_prec st)
    in
    expect st Token.Semi;
    mks p (Ast.Return value)
  | Token.Kw_break ->
    advance st;
    expect st Token.Semi;
    mks p Ast.Break
  | Token.Kw_continue ->
    advance st;
    expect st Token.Semi;
    mks p Ast.Continue
  | Token.Lbrace ->
    (* Inline block: flattened into an If(true) would change scoping; we
       keep blocks flat since locals are function-scoped. *)
    let body = parse_block st in
    mks p (Ast.If ({ Ast.desc = Ast.Int 1; pos = p }, body, []))
  | _ ->
    if starts_decl st then begin
      let s = parse_decl st in
      expect st Token.Semi;
      s
    end
    else begin
      let s = parse_simple_stmt st in
      expect st Token.Semi;
      s
    end

(* Declaration without the trailing semicolon. *)
and parse_decl st : Ast.stmt =
  let p = (peek st).Token.pos in
  let ty = parse_type st in
  let name = expect_ident st in
  let init =
    if peek_tok st = Token.Assign then begin
      advance st;
      Some (parse_expr_prec st)
    end
    else None
  in
  mks p (Ast.Decl (ty, name, init))

(* Assignment or expression statement, without the trailing semicolon
   (shared by 'for' headers and plain statements). *)
and parse_simple_stmt st : Ast.stmt =
  let p = (peek st).Token.pos in
  let lhs = parse_expr_prec st in
  if peek_tok st = Token.Assign then begin
    advance st;
    let rhs = parse_expr_prec st in
    mks p (Ast.Assign (lhs, rhs))
  end
  else mks p (Ast.Expr lhs)

and parse_stmt_as_block st : Ast.stmt list =
  if peek_tok st = Token.Lbrace then parse_block st else [ parse_stmt st ]

and parse_block st : Ast.stmt list =
  expect st Token.Lbrace;
  let rec loop acc =
    if peek_tok st = Token.Rbrace then begin
      advance st;
      List.rev acc
    end
    else loop (parse_stmt st :: acc)
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let parse_struct st : Ast.struct_decl =
  let p = (peek st).Token.pos in
  expect st Token.Kw_struct;
  let sname = expect_ident st in
  expect st Token.Lbrace;
  let rec loop acc =
    if peek_tok st = Token.Rbrace then begin
      advance st;
      List.rev acc
    end
    else begin
      let ty = parse_type st in
      let fname = expect_ident st in
      expect st Token.Semi;
      loop ((ty, fname) :: acc)
    end
  in
  let fields = loop [] in
  if peek_tok st = Token.Semi then advance st;
  { Ast.sname; fields; stpos = p }

let parse_params st =
  if peek_tok st = Token.Rparen then []
  else begin
    let parse_one () =
      let ty = parse_type st in
      let name = expect_ident st in
      (ty, name)
    in
    let first = parse_one () in
    let rec loop acc =
      if peek_tok st = Token.Comma then begin
        advance st;
        loop (parse_one () :: acc)
      end
      else List.rev acc
    in
    loop [ first ]
  end

(* Global variable or function, disambiguated by the token after the name. *)
let parse_global_or_func st (acc_globals, acc_funcs) =
  let p = (peek st).Token.pos in
  let ty = parse_type st in
  let name = expect_ident st in
  match peek_tok st with
  | Token.Lparen ->
    advance st;
    let params = parse_params st in
    expect st Token.Rparen;
    let body = parse_block st in
    let f = { Ast.fname = name; return_ty = ty; params; body; fpos = p } in
    (acc_globals, f :: acc_funcs)
  | Token.Lbracket ->
    advance st;
    let len = expect_int st in
    expect st Token.Rbracket;
    expect st Token.Semi;
    let g =
      { Ast.gname = name; gty = ty; array_len = Some len; init = None; gpos = p }
    in
    (g :: acc_globals, acc_funcs)
  | Token.Assign ->
    advance st;
    let neg =
      if peek_tok st = Token.Minus then begin
        advance st;
        true
      end
      else false
    in
    let v = expect_int st in
    expect st Token.Semi;
    let v = if neg then -v else v in
    let g =
      { Ast.gname = name; gty = ty; array_len = None; init = Some v; gpos = p }
    in
    (g :: acc_globals, acc_funcs)
  | Token.Semi ->
    advance st;
    let g =
      { Ast.gname = name; gty = ty; array_len = None; init = None; gpos = p }
    in
    (g :: acc_globals, acc_funcs)
  | _ -> fail st "expected '(', '[', '=' or ';' after top-level name"

let parse_program src =
  let st = { toks = Lexer.tokenize src } in
  let rec loop structs globals funcs =
    match peek_tok st with
    | Token.Eof ->
      {
        Ast.structs = List.rev structs;
        globals = List.rev globals;
        funcs = List.rev funcs;
      }
    | Token.Kw_struct ->
      let s = parse_struct st in
      loop (s :: structs) globals funcs
    | _ ->
      let globals, funcs = parse_global_or_func st (globals, funcs) in
      loop structs globals funcs
  in
  loop [] [] []

let parse_expr src =
  let st = { toks = Lexer.tokenize src } in
  let e = parse_expr_prec st in
  (match peek_tok st with
  | Token.Eof -> ()
  | _ -> fail st "trailing tokens after expression");
  e
