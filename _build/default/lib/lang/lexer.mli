(** Hand-written lexer for the mini-C workload language.

    Supports decimal and hexadecimal integer literals, [//] line comments and
    [/* ... */] block comments. *)

exception Error of string * Token.pos

(** [tokenize source] is the token list of [source], ending in [Eof].
    @raise Error on an unrecognized character or unterminated comment. *)
val tokenize : string -> Token.spanned list
