exception Error of string * Token.pos

type state = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable col : int;
}

let pos st : Token.pos = { line = st.line; col = st.col }

let peek st = if st.off >= String.length st.src then '\000' else st.src.[st.off]

let peek2 st =
  if st.off + 1 >= String.length st.src then '\000' else st.src.[st.off + 1]

let advance st =
  if st.off < String.length st.src then begin
    if st.src.[st.off] = '\n' then begin
      st.line <- st.line + 1;
      st.col <- 1
    end
    else st.col <- st.col + 1;
    st.off <- st.off + 1
  end

let is_digit c = c >= '0' && c <= '9'

let is_hex_digit c =
  is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let keyword_of_ident = function
  | "int" -> Some Token.Kw_int
  | "void" -> Some Token.Kw_void
  | "struct" -> Some Token.Kw_struct
  | "if" -> Some Token.Kw_if
  | "else" -> Some Token.Kw_else
  | "while" -> Some Token.Kw_while
  | "do" -> Some Token.Kw_do
  | "for" -> Some Token.Kw_for
  | "return" -> Some Token.Kw_return
  | "break" -> Some Token.Kw_break
  | "continue" -> Some Token.Kw_continue
  | "null" -> Some Token.Kw_null
  | _ -> None

let rec skip_trivia st =
  match peek st with
  | ' ' | '\t' | '\r' | '\n' ->
    advance st;
    skip_trivia st
  | '/' when peek2 st = '/' ->
    while peek st <> '\n' && peek st <> '\000' do
      advance st
    done;
    skip_trivia st
  | '/' when peek2 st = '*' ->
    let start = pos st in
    advance st;
    advance st;
    let rec loop () =
      match peek st with
      | '\000' -> raise (Error ("unterminated block comment", start))
      | '*' when peek2 st = '/' ->
        advance st;
        advance st
      | _ ->
        advance st;
        loop ()
    in
    loop ();
    skip_trivia st
  | _ -> ()

let lex_number st =
  let start = st.off in
  if peek st = '0' && (peek2 st = 'x' || peek2 st = 'X') then begin
    advance st;
    advance st;
    while is_hex_digit (peek st) do
      advance st
    done
  end
  else
    while is_digit (peek st) do
      advance st
    done;
  let text = String.sub st.src start (st.off - start) in
  int_of_string text

let lex_ident st =
  let start = st.off in
  while is_ident_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.off - start)

let next_token st : Token.spanned =
  skip_trivia st;
  let p = pos st in
  let single tok =
    advance st;
    { Token.tok; pos = p }
  in
  let double tok =
    advance st;
    advance st;
    { Token.tok; pos = p }
  in
  match peek st with
  | '\000' -> { Token.tok = Token.Eof; pos = p }
  | c when is_digit c -> { Token.tok = Token.Int_lit (lex_number st); pos = p }
  | c when is_ident_start c ->
    let name = lex_ident st in
    let tok =
      match keyword_of_ident name with
      | Some kw -> kw
      | None -> Token.Ident name
    in
    { Token.tok; pos = p }
  | '(' -> single Token.Lparen
  | ')' -> single Token.Rparen
  | '{' -> single Token.Lbrace
  | '}' -> single Token.Rbrace
  | '[' -> single Token.Lbracket
  | ']' -> single Token.Rbracket
  | ';' -> single Token.Semi
  | ',' -> single Token.Comma
  | '.' -> single Token.Dot
  | '+' -> single Token.Plus
  | '-' -> if peek2 st = '>' then double Token.Arrow else single Token.Minus
  | '*' -> single Token.Star
  | '/' -> single Token.Slash
  | '%' -> single Token.Percent
  | '^' -> single Token.Caret
  | '&' -> if peek2 st = '&' then double Token.Amp_amp else single Token.Amp
  | '|' -> if peek2 st = '|' then double Token.Pipe_pipe else single Token.Pipe
  | '=' -> if peek2 st = '=' then double Token.Eq_eq else single Token.Assign
  | '!' -> if peek2 st = '=' then double Token.Bang_eq else single Token.Bang
  | '<' ->
    if peek2 st = '=' then double Token.Le
    else if peek2 st = '<' then double Token.Shl
    else single Token.Lt
  | '>' ->
    if peek2 st = '=' then double Token.Ge
    else if peek2 st = '>' then double Token.Shr
    else single Token.Gt
  | c -> raise (Error (Printf.sprintf "unexpected character '%c'" c, p))

let tokenize src =
  let st = { src; off = 0; line = 1; col = 1 } in
  let rec loop acc =
    let t = next_token st in
    match t.Token.tok with
    | Token.Eof -> List.rev (t :: acc)
    | _ -> loop (t :: acc)
  in
  loop []
