(** Type checker: resolves names, checks types, and produces the typed AST
    consumed by IR lowering.

    Rules enforced:
    - locals and parameters are [int] or pointer typed (register-resident;
      their address cannot be taken — this is what makes the paper's scalar
      vs. memory-resident distinction crisp in the workload language);
    - struct-typed expressions are lvalues only (used via [.], [\[\]], [&]);
    - pointer arithmetic is [ptr +/- int] (scaled in lowering), pointers
      compare with [==]/[!=]/relational operators and [null];
    - builtins: [print(int)], [in(int) -> int], [inlen() -> int];
    - every program must define [void main()]. *)

exception Error of string * Token.pos

(** Typecheck a parsed program.  @raise Error on the first type error. *)
val check : Ast.program -> Tast.tprogram

(** Convenience: parse then check. *)
val check_source : string -> Tast.tprogram
