(* Regenerate the paper's tables and figures.

   Usage:
     experiments                  # everything
     experiments fig8 table2     # selected experiments
     experiments --bench parser --bench gap fig10   # selected benchmarks *)

let all_experiment_names =
  [
    "table1"; "fig2"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10"; "fig11";
    "fig12"; "table2"; "prose"; "ablations"; "extensions";
  ]

let run_experiments benches experiments =
  let workloads =
    match benches with
    | [] -> Workloads.Registry.all
    | names ->
      List.filter_map
        (fun n ->
          match Workloads.Registry.find n with
          | Some w -> Some w
          | None ->
            Printf.eprintf "unknown benchmark %s (have: %s)\n" n
              (String.concat ", " Workloads.Registry.names);
            exit 2)
        names
  in
  let experiments = if experiments = [] then all_experiment_names else experiments in
  let needs_ctx =
    List.exists (fun e -> not (String.equal e "table1")) experiments
  in
  let ctxs =
    if needs_ctx then begin
      List.map
        (fun (w : Workloads.Workload.t) ->
          Printf.eprintf "[setup] %s\n%!" w.Workloads.Workload.name;
          Harness.Context.make w)
        workloads
    end
    else []
  in
  List.iter
    (fun name ->
      Printf.eprintf "[run] %s\n%!" name;
      let output =
        match name with
        | "table1" -> Harness.Figures.table1 ()
        | "fig2" -> Harness.Figures.fig2 ctxs
        | "fig6" -> Harness.Figures.fig6 ctxs
        | "fig7" -> Harness.Figures.fig7 ctxs
        | "fig8" -> Harness.Figures.fig8 ctxs
        | "fig9" -> Harness.Figures.fig9 ctxs
        | "fig10" -> Harness.Figures.fig10 ctxs
        | "fig11" -> Harness.Figures.fig11 ctxs
        | "fig12" -> Harness.Figures.fig12 ctxs
        | "table2" -> Harness.Figures.table2 ctxs
        | "prose" -> Harness.Figures.prose_checks ctxs
        | "ablations" -> Harness.Figures.ablations ctxs
        | "extensions" -> Harness.Figures.extensions ctxs
        | other ->
          Printf.eprintf "unknown experiment %s (have: %s)\n" other
            (String.concat ", " all_experiment_names);
          exit 2
      in
      print_endline output;
      print_newline ())
    experiments

open Cmdliner

let benches =
  let doc = "Restrict to one benchmark (repeatable)." in
  Arg.(value & opt_all string [] & info [ "bench"; "b" ] ~docv:"NAME" ~doc)

let experiments =
  let doc = "Experiments to run (default: all)." in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let cmd =
  let doc = "regenerate the paper's tables and figures" in
  Cmd.v
    (Cmd.info "experiments" ~doc)
    Term.(const run_experiments $ benches $ experiments)

let () = exit (Cmd.eval cmd)
