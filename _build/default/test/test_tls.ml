(* Simulator tests: caches, hardware tables, value predictor, oracle, and
   the TLS engine itself — including the paper's §2.2 forwarding
   correctness cases, exercised end-to-end through crafted programs. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let cache_hits_misses () =
  let c = Tls.Cache.create ~sets:4 ~ways:2 in
  check_bool "cold miss" false (Tls.Cache.access c 0);
  check_bool "hit" true (Tls.Cache.access c 0);
  check_bool "same set other tag" false (Tls.Cache.access c 4);
  check_bool "both resident" true (Tls.Cache.access c 0);
  check_bool "both resident 2" true (Tls.Cache.access c 4);
  check_int "hits" 3 (Tls.Cache.hits c);
  check_int "misses" 2 (Tls.Cache.misses c)

let cache_lru_eviction () =
  let c = Tls.Cache.create ~sets:1 ~ways:2 in
  ignore (Tls.Cache.access c 0);
  ignore (Tls.Cache.access c 1);
  ignore (Tls.Cache.access c 0);          (* 1 is now LRU *)
  ignore (Tls.Cache.access c 2);          (* evicts 1 *)
  check_bool "0 still in" true (Tls.Cache.probe c 0);
  check_bool "1 evicted" false (Tls.Cache.probe c 1);
  check_bool "2 in" true (Tls.Cache.probe c 2)

let cache_bad_geometry () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Cache.create: sets must be a positive power of two")
    (fun () -> ignore (Tls.Cache.create ~sets:3 ~ways:1))

(* Reference-model property: a tiny direct-mapped cache behaves exactly
   like a naive model. *)
let cache_matches_reference =
  QCheck.Test.make ~name:"direct-mapped cache matches naive model" ~count:200
    QCheck.(small_list (int_range 0 31))
    (fun lines ->
      let c = Tls.Cache.create ~sets:4 ~ways:1 in
      let model = Array.make 4 (-1) in
      List.for_all
        (fun line ->
          let set = line land 3 in
          let expect_hit = model.(set) = line in
          model.(set) <- line;
          Tls.Cache.access c line = expect_hit)
        lines)

(* ------------------------------------------------------------------ *)
(* Memory system                                                       *)
(* ------------------------------------------------------------------ *)

let memsys_latencies () =
  let cfg = Tls.Config.default in
  let m = Tls.Memsys.create cfg in
  (* Cold: L1 miss + L2 miss -> memory. *)
  let cold = Tls.Memsys.access m ~proc:0 ~addr:4096 in
  check_int "cold" (cfg.Tls.Config.l1_hit + cfg.Tls.Config.l2_hit + cfg.Tls.Config.mem_lat) cold;
  (* Hot: L1 hit. *)
  check_int "hot" cfg.Tls.Config.l1_hit (Tls.Memsys.access m ~proc:0 ~addr:4097);
  (* Other processor: misses its own L1, hits shared L2. *)
  check_int "cross-proc L2"
    (cfg.Tls.Config.l1_hit + cfg.Tls.Config.l2_hit)
    (Tls.Memsys.access m ~proc:1 ~addr:4096)

let memsys_line_of () =
  let m = Tls.Memsys.create Tls.Config.default in
  check_int "same line" (Tls.Memsys.line_of m 8) (Tls.Memsys.line_of m 15);
  check_bool "next line" true (Tls.Memsys.line_of m 16 <> Tls.Memsys.line_of m 15);
  check_bool "negative stable" true
    (Tls.Memsys.line_of m (-1) <> Tls.Memsys.line_of m 0)

(* ------------------------------------------------------------------ *)
(* Hardware sync table                                                 *)
(* ------------------------------------------------------------------ *)

let hwsync_basic () =
  let t = Tls.Hwsync.create ~size:2 ~reset_interval:1000 in
  check_bool "not marked" false (Tls.Hwsync.marked t 1);
  Tls.Hwsync.record_violation t 1;
  check_bool "marked" true (Tls.Hwsync.marked t 1)

let hwsync_lru_capacity () =
  let t = Tls.Hwsync.create ~size:2 ~reset_interval:1000 in
  Tls.Hwsync.record_violation t 1;
  Tls.Hwsync.record_violation t 2;
  Tls.Hwsync.record_violation t 1;   (* refresh 1; 2 becomes LRU *)
  Tls.Hwsync.record_violation t 3;   (* evicts 2 *)
  check_bool "1 kept" true (Tls.Hwsync.marked t 1);
  check_bool "2 evicted" false (Tls.Hwsync.marked t 2);
  check_bool "3 in" true (Tls.Hwsync.marked t 3)

let hwsync_periodic_reset () =
  let t = Tls.Hwsync.create ~size:4 ~reset_interval:100 in
  Tls.Hwsync.record_violation t 7;
  Tls.Hwsync.tick t ~now:50;
  check_bool "kept before interval" true (Tls.Hwsync.marked t 7);
  Tls.Hwsync.tick t ~now:150;
  check_bool "cleared" false (Tls.Hwsync.marked t 7);
  check_int "reset count" 1 (Tls.Hwsync.resets t)

(* ------------------------------------------------------------------ *)
(* Value predictor                                                     *)
(* ------------------------------------------------------------------ *)

let vpred_confidence_build () =
  let p = Tls.Vpred.create ~stride:false in
  check_bool "cold no prediction" true (Tls.Vpred.predict p 1 ~confidence:2 = None);
  Tls.Vpred.train p 1 ~actual:42;
  check_bool "confidence 1 insufficient" true (Tls.Vpred.predict p 1 ~confidence:2 = None);
  Tls.Vpred.train p 1 ~actual:42;
  check_bool "confident now" true (Tls.Vpred.predict p 1 ~confidence:2 = Some 42)

let vpred_stride_mode () =
  let p = Tls.Vpred.create ~stride:true in
  Tls.Vpred.train p 1 ~actual:10;
  Tls.Vpred.train p 1 ~actual:20;   (* stride 10 learned, confidence reset *)
  Tls.Vpred.train p 1 ~actual:30;   (* 20+10 matches: confidence up *)
  Tls.Vpred.train p 1 ~actual:40;
  check_bool "predicts next stride value" true
    (Tls.Vpred.predict p 1 ~confidence:2 = Some 50);
  (* The last-value predictor cannot predict a strided stream. *)
  let q = Tls.Vpred.create ~stride:false in
  Tls.Vpred.train q 1 ~actual:10;
  Tls.Vpred.train q 1 ~actual:20;
  Tls.Vpred.train q 1 ~actual:30;
  Tls.Vpred.train q 1 ~actual:40;
  check_bool "last-value stays unconfident" true
    (Tls.Vpred.predict q 1 ~confidence:2 = None)

let vpred_mispredict_decay () =
  let p = Tls.Vpred.create ~stride:false in
  Tls.Vpred.train p 1 ~actual:5;
  Tls.Vpred.train p 1 ~actual:5;
  Tls.Vpred.train p 1 ~actual:5;
  check_bool "confident" true (Tls.Vpred.predict p 1 ~confidence:2 = Some 5);
  Tls.Vpred.train p 1 ~actual:9;
  check_bool "retrained, less confident" true (Tls.Vpred.predict p 1 ~confidence:2 = None)

(* ------------------------------------------------------------------ *)
(* Simulator: end-to-end on crafted programs                           *)
(* ------------------------------------------------------------------ *)

let compile_modes src input =
  let u =
    Tlscore.Pipeline.compile ~source:src ~profile_input:input
      ~memory_sync:Tlscore.Pipeline.No_memory_sync ()
  in
  let c =
    Tlscore.Pipeline.compile ~source:src ~profile_input:input
      ~memory_sync:(Tlscore.Pipeline.Profiled { dep_input = input; threshold = 0.05 })
      ()
  in
  (u, c)

let seq_output src input =
  let prog = Ir.Lower.compile_source src in
  let code = Runtime.Code.of_prog prog in
  let mem = Runtime.Memory.create () in
  Runtime.Thread.run_sequential code ~input mem

let run_tls cfg (compiled : Tlscore.Pipeline.compiled) input =
  Tls.Sim.run cfg compiled.Tlscore.Pipeline.code ~input ()

(* Program with a genuinely parallel loop and a frequent serial chain. *)
let chain_src =
  "int g;\n\
   int out[64];\n\
   int work(int x) { int j; int t; t = x; for (j = 0; j < 10 + x % 7; j = \
   j + 1) { t = t + ((t << 1) ^ j) % 53; } return t; }\n\
   void main() {\n\
  \  int i; int v;\n\
  \  for (i = 0; i < 40; i = i + 1) {\n\
  \    v = g;\n\
  \    out[i % 64] = work(v + i);\n\
  \    g = v + 1;\n\
  \  }\n\
  \  print(g);\n\
  \  print(out[5]);\n\
   }"

let sim_outputs_match_sequential () =
  let input = [||] in
  let expected = seq_output chain_src input in
  let u, c = compile_modes chain_src input in
  List.iter
    (fun (name, cfg, compiled) ->
      let r = run_tls cfg compiled input in
      Alcotest.(check (list int)) (name ^ " output") expected r.Tls.Simstats.output)
    [
      ("U", Tls.Config.u_mode, u);
      ("C", Tls.Config.c_mode, c);
      ("H", Tls.Config.h_mode, u);
      ("P", Tls.Config.p_mode, u);
      ("B", Tls.Config.b_mode, c);
    ]

let sim_final_memory_matches () =
  let input = [||] in
  let prog = Ir.Lower.compile_source chain_src in
  let code = Runtime.Code.of_prog prog in
  let mem = Runtime.Memory.create () in
  ignore (Runtime.Thread.run_sequential code ~input mem);
  let u, _ = compile_modes chain_src input in
  let r = run_tls Tls.Config.u_mode u input in
  check_bool "final memory equals sequential" true
    (Runtime.Memory.equal mem r.Tls.Simstats.final_memory)

let sim_violations_in_u_not_c () =
  let input = [||] in
  let u, c = compile_modes chain_src input in
  let ru = run_tls Tls.Config.u_mode u input in
  let rc = run_tls Tls.Config.c_mode c input in
  check_bool "U violates" true (ru.Tls.Simstats.violations > 0);
  check_bool "C violates less" true
    (rc.Tls.Simstats.violations < ru.Tls.Simstats.violations)

let sim_epochs_committed () =
  let input = [||] in
  let u, _ = compile_modes chain_src input in
  let r = run_tls Tls.Config.u_mode u input in
  (* 40 loop epochs; the final (exiting) epoch also commits. *)
  check_bool "all epochs committed" true (r.Tls.Simstats.epochs_committed >= 40)

let sim_hw_sync_reduces_violations () =
  let input = [||] in
  let u, _ = compile_modes chain_src input in
  let ru = run_tls Tls.Config.u_mode u input in
  let rh = run_tls Tls.Config.h_mode u input in
  check_bool "H reduces violations" true
    (rh.Tls.Simstats.violations < ru.Tls.Simstats.violations);
  check_bool "H marked loads" true (rh.Tls.Simstats.hw_marked_loads > 0)

let sim_sequential_timing_tracks_regions () =
  let input = [||] in
  let u, _ = compile_modes chain_src input in
  let prog = Ir.Lower.compile_source chain_src in
  let seq =
    Tls.Sim.run_sequential Tls.Config.default
      (Runtime.Code.of_prog prog)
      ~input ~track:u.Tlscore.Pipeline.code.Runtime.Code.regions
  in
  check_bool "region cycles positive" true
    (List.exists (fun (_, c) -> c > 0) seq.Tls.Simstats.sq_region_cycles);
  check_bool "region below total" true
    (List.fold_left (fun a (_, c) -> a + c) 0 seq.Tls.Simstats.sq_region_cycles
    < seq.Tls.Simstats.sq_cycles)

(* §2.2 forwarding correctness: pointer-varying groups where the
   forwarded address sometimes matches, sometimes not, and where the
   producer re-stores a signaled address. *)
let aliasing_src =
  "int slots[32];   // one slot per line would hide the conflicts we want\n\
   int sel[64];\n\
   int work(int x) { int j; int t; t = x; for (j = 0; j < 12; j = j + 1) { \
   t = t + ((t << 1) ^ j) % 53; } return t; }\n\
   void main() {\n\
  \  int i; int k; int v;\n\
  \  for (i = 0; i < 48; i = i + 1) {\n\
  \    k = sel[i % 64] % 4;\n\
  \    v = slots[k * 8];\n\
  \    v = v + work(i);\n\
  \    slots[k * 8] = v;\n\
  \    if (i % 5 == 0) { slots[k * 8] = v + 1; }   // re-store after signal\n\
  \  }\n\
  \  print(slots[0] + slots[8] + slots[16] + slots[24]);\n\
   }"

let sim_aliasing_correct () =
  let input = Array.init 64 (fun i -> i * 7) in
  let expected = seq_output aliasing_src input in
  let u, c = compile_modes aliasing_src input in
  List.iter
    (fun (name, cfg, compiled) ->
      let r = run_tls cfg compiled input in
      Alcotest.(check (list int)) (name ^ " aliasing output") expected
        r.Tls.Simstats.output)
    [ ("U", Tls.Config.u_mode, u); ("C", Tls.Config.c_mode, c);
      ("B", Tls.Config.b_mode, c) ]

(* Conditional production: paths that never store must release consumers
   via NULL signals. *)
let null_path_src =
  "int g;\n\
   int out[64];\n\
   int work(int x) { int j; int t; t = x; for (j = 0; j < 10; j = j + 1) { \
   t = t + ((t << 1) ^ j) % 53; } return t; }\n\
   void main() {\n\
  \  int i; int v;\n\
  \  for (i = 0; i < 40; i = i + 1) {\n\
  \    v = g;\n\
  \    out[i % 64] = work(v + i);\n\
  \    if (i % 3 == 0) { g = v + i; }\n\
  \  }\n\
  \  print(g);\n\
   }"

let sim_null_paths_correct () =
  let input = [||] in
  let expected = seq_output null_path_src input in
  let _, c = compile_modes null_path_src input in
  let r = run_tls Tls.Config.c_mode c input in
  Alcotest.(check (list int)) "null-path output" expected r.Tls.Simstats.output

(* Loop exits by break: speculative epochs beyond the exit are discarded. *)
let break_src =
  "int a[64];\n\
   int work(int x) { int j; int t; t = x; for (j = 0; j < 10; j = j + 1) { \
   t = t + ((t << 1) ^ j) % 53; } return t; }\n\
   void main() {\n\
  \  int i; int v;\n\
  \  for (i = 0; i < 1000; i = i + 1) {\n\
  \    v = work(i);\n\
  \    a[i % 64] = v;\n\
  \    if (v % 97 == 13) { break; }\n\
  \  }\n\
  \  print(i);\n\
   }"

let sim_break_exits () =
  let input = [||] in
  let expected = seq_output break_src input in
  let u, _ = compile_modes break_src input in
  let r = run_tls Tls.Config.u_mode u input in
  Alcotest.(check (list int)) "break output" expected r.Tls.Simstats.output;
  check_bool "wrong-path epochs discarded" true (r.Tls.Simstats.epochs_squashed > 0)

(* Loop exit via return from within the region. *)
let return_src =
  "int a[64];\n\
   int work(int x) { int j; int t; t = x; for (j = 0; j < 10; j = j + 1) { \
   t = t + ((t << 1) ^ j) % 53; } return t; }\n\
   int scan() { int i; int v; for (i = 0; i < 1000; i = i + 1) { v = \
   work(i); a[i % 64] = v; if (v % 89 == 7) { return i; } } return -1; }\n\
   void main() { print(scan()); }"

let sim_return_exits () =
  let input = [||] in
  let expected = seq_output return_src input in
  let u, _ = compile_modes return_src input in
  let r = run_tls Tls.Config.u_mode u input in
  Alcotest.(check (list int)) "return output" expected r.Tls.Simstats.output

(* Nested regions: a region reached inside another region's epoch must
   execute sequentially and still be correct. *)
let nested_region_src =
  "int acc[64];\n\
   int inner(int base) { int j; int s; s = 0; for (j = 0; j < 20; j = j + \
   1) { s = s + ((base + j) * 7) % 31; acc[(base + j) % 64] = s; } return \
   s; }\n\
   void main() {\n\
  \  int i; int t;\n\
  \  t = 0;\n\
  \  for (i = 0; i < 25; i = i + 1) { acc[i % 64] = inner(i * 3); }\n\
  \  for (i = 0; i < 64; i = i + 1) { t = t ^ acc[i]; }\n\
  \  print(t);\n\
   }"

let sim_nested_regions () =
  let input = [||] in
  let expected = seq_output nested_region_src input in
  let u, _ = compile_modes nested_region_src input in
  check_bool "both loops selected" true
    (List.length u.Tlscore.Pipeline.selected >= 1);
  let r = run_tls Tls.Config.u_mode u input in
  Alcotest.(check (list int)) "nested output" expected r.Tls.Simstats.output

(* Slot accounting: total slots equal wall cycles x processors x width,
   and the classified slots never exceed the total. *)
let sim_slot_accounting () =
  let input = [||] in
  let u, _ = compile_modes chain_src input in
  let r = run_tls Tls.Config.u_mode u input in
  let cfg = Tls.Config.u_mode in
  let s = r.Tls.Simstats.slots in
  check_int "total slots = region cycles x procs x width"
    (r.Tls.Simstats.region_cycles * cfg.Tls.Config.num_procs
   * cfg.Tls.Config.issue_width)
    s.Tls.Simstats.s_total;
  check_bool "classification within total" true
    (s.Tls.Simstats.s_busy + s.Tls.Simstats.s_sync + s.Tls.Simstats.s_fail
    <= s.Tls.Simstats.s_total);
  check_bool "other non-negative" true (Tls.Simstats.other s >= 0)

(* The simulator is deterministic: identical runs give identical stats. *)
let sim_deterministic () =
  let input = [||] in
  let _, c = compile_modes chain_src input in
  let a = run_tls Tls.Config.b_mode c input in
  let b = run_tls Tls.Config.b_mode c input in
  check_int "same cycles" a.Tls.Simstats.total_cycles b.Tls.Simstats.total_cycles;
  check_int "same violations" a.Tls.Simstats.violations b.Tls.Simstats.violations;
  check_int "same busy slots" a.Tls.Simstats.slots.Tls.Simstats.s_busy
    b.Tls.Simstats.slots.Tls.Simstats.s_busy

(* Word-granularity tracking (the Cintra-Torrellas per-word access bits)
   eliminates pure false sharing without breaking true-dependence
   detection. *)
let false_sharing_src =
  "int flags[8];   // one cache line: flags[0] read, flags[4] written\n\
   int out[64];\n\
   int work(int x) { int j; int t; t = x; for (j = 0; j < 10 + x % 5; j = \
   j + 1) { t = t + ((t << 1) ^ j) % 53; } return t; }\n\
   void main() {\n\
  \  int i; int m;\n\
  \  for (i = 0; i < 40; i = i + 1) {\n\
  \    m = flags[0];\n\
  \    out[i % 64] = work(m + i);\n\
  \    flags[4] = i;\n\
  \  }\n\
  \  print(flags[4]);\n\
  \  print(out[3]);\n\
   }"

let sim_word_tracking () =
  let input = [||] in
  let expected = seq_output false_sharing_src input in
  let u, _ = compile_modes false_sharing_src input in
  let line = run_tls Tls.Config.u_mode u input in
  let word_cfg =
    { Tls.Config.u_mode with Tls.Config.word_level_tracking = true }
  in
  let word = run_tls word_cfg u input in
  Alcotest.(check (list int)) "line-tracking output" expected line.Tls.Simstats.output;
  Alcotest.(check (list int)) "word-tracking output" expected word.Tls.Simstats.output;
  check_bool "line tracking sees false sharing" true
    (line.Tls.Simstats.violations > 10);
  check_int "word tracking sees none" 0 word.Tls.Simstats.violations;
  (* True dependences must still violate under word tracking. *)
  let u2, _ = compile_modes chain_src input in
  let r2 = run_tls { Tls.Config.u_mode with Tls.Config.word_level_tracking = true } u2 input in
  check_bool "true deps still caught" true (r2.Tls.Simstats.violations > 0);
  Alcotest.(check (list int)) "true-dep output" (seq_output chain_src input)
    r2.Tls.Simstats.output

(* Value prediction must stay correct even when the predicted load is
   followed by the epoch's own store to the same address (regression: the
   commit-time verification used to be skipped in that case), and even
   when a wrong prediction sends an epoch down a divergent path. *)
let sim_value_prediction_correct () =
  List.iter
    (fun src ->
      let input = [||] in
      let expected = seq_output src input in
      let u, _ = compile_modes src input in
      let r = run_tls Tls.Config.p_mode u input in
      Alcotest.(check (list int)) "P-mode output" expected r.Tls.Simstats.output)
    [ chain_src; aliasing_src; null_path_src; break_src ]

(* Region corner cases: zero-trip instances, single-iteration instances,
   and a region inside a function called many times (one TLS activation
   per call). *)
let sim_region_corner_cases () =
  let src =
    "int a[64];\n\
     int work(int x) { int j; int t; t = x; for (j = 0; j < 12; j = j + 1) \
     { t = t + ((t << 1) ^ j) % 53; } return t; }\n\
     void sweep(int n) { int i; for (i = 0; i < n; i = i + 1) { a[i % 64] \
     = work(i); } }\n\
     void main() {\n\
    \  int r;\n\
    \  sweep(0);           // zero-trip instance\n\
    \  sweep(1);           // single epoch\n\
    \  for (r = 0; r < 5; r = r + 1) { sweep(20 + r); }  // repeated activation\n\
    \  print(a[3]); print(a[17]);\n\
     }"
  in
  let input = [||] in
  let expected = seq_output src input in
  (* Force selection of sweep's loop (the outer r-loop would dominate). *)
  let prog = Ir.Lower.compile_source src in
  let key =
    List.find
      (fun (k : Profiler.Profile.loop_key) -> k.Profiler.Profile.lk_func = "sweep")
      (Profiler.Runner.all_loops prog)
  in
  let u =
    Tlscore.Pipeline.compile ~selection:[ key ] ~source:src ~profile_input:input
      ~memory_sync:Tlscore.Pipeline.No_memory_sync ()
  in
  let r = run_tls Tls.Config.u_mode u input in
  Alcotest.(check (list int)) "corner-case output" expected r.Tls.Simstats.output;
  (* 7 activations of the region: sweep called 7 times. *)
  check_int "one TLS activation per call" 7
    (List.fold_left (fun acc (_, n) -> acc + n) 0 r.Tls.Simstats.region_instances)

(* A consumer whose committed predecessor never signaled is a protocol
   violation the simulator must report, not hang on. *)
let sim_deadlock_detection () =
  let src =
    "int a[64];\n\
     int work(int x) { int j; int t; t = x; for (j = 0; j < 12; j = j + 1) \
     { t = t + ((t << 1) ^ j) % 53; } return t; }\n\
     void main() { int i; for (i = 0; i < 20; i = i + 1) { a[i % 64] = \
     work(i); } print(a[5]); }"
  in
  let prog0 = Ir.Lower.compile_source src in
  let key =
    List.find
      (fun (k : Profiler.Profile.loop_key) -> k.Profiler.Profile.lk_func = "main")
      (Profiler.Runner.all_loops prog0)
  in
  let u =
    Tlscore.Pipeline.compile ~selection:[ key ] ~source:src ~profile_input:[||]
      ~memory_sync:Tlscore.Pipeline.No_memory_sync ()
  in
  assert (u.Tlscore.Pipeline.prog.Ir.Prog.regions <> []);
  (* Sabotage: strip every scalar signal from the program, leaving the
     waits in place. *)
  List.iter
    (fun (_, f) ->
      Array.iter
        (fun (b : Ir.Func.block) ->
          b.Ir.Func.instrs <-
            List.filter
              (fun (i : Ir.Instr.t) ->
                match i.Ir.Instr.kind with
                | Ir.Instr.Signal_scalar _ -> false
                | _ -> true)
              b.Ir.Func.instrs)
        f.Ir.Func.blocks)
    u.Tlscore.Pipeline.prog.Ir.Prog.funcs;
  let code = Runtime.Code.of_prog u.Tlscore.Pipeline.prog in
  match Tls.Sim.run Tls.Config.u_mode code ~input:[||] () with
  | exception Tls.Sim.Deadlock _ -> ()
  | exception Failure _ -> ()   (* cycle-budget backstop also acceptable *)
  | _ -> Alcotest.fail "expected a deadlock report"

(* ------------------------------------------------------------------ *)
(* Oracle                                                              *)
(* ------------------------------------------------------------------ *)

let oracle_eliminates_failures () =
  let input = [||] in
  let u, _ = compile_modes chain_src input in
  let oracle = Tls.Oracle.record u.Tlscore.Pipeline.code ~input in
  check_bool "recorded values" true (Tls.Oracle.size oracle > 0);
  let cfg = { Tls.Config.u_mode with Tls.Config.oracle = Tls.Config.Oracle_all } in
  let r = Tls.Sim.run cfg u.Tlscore.Pipeline.code ~input ~oracle () in
  check_int "no violations" 0 r.Tls.Simstats.violations;
  check_int "no fail slots" 0 r.Tls.Simstats.slots.Tls.Simstats.s_fail;
  Alcotest.(check (list int)) "oracle output still correct"
    (seq_output chain_src input) r.Tls.Simstats.output

let oracle_faster_than_u () =
  let input = [||] in
  let u, _ = compile_modes chain_src input in
  let oracle = Tls.Oracle.record u.Tlscore.Pipeline.code ~input in
  let ru = run_tls Tls.Config.u_mode u input in
  let cfg = { Tls.Config.u_mode with Tls.Config.oracle = Tls.Config.Oracle_all } in
  let ro = Tls.Sim.run cfg u.Tlscore.Pipeline.code ~input ~oracle () in
  check_bool "O faster" true
    (ro.Tls.Simstats.region_cycles < ru.Tls.Simstats.region_cycles)

(* Property: TLS output equals sequential output across random inputs and
   modes (the simulator's fundamental invariant). *)
let tls_equals_sequential_prop =
  QCheck.Test.make ~name:"TLS == sequential across inputs/modes" ~count:12
    QCheck.(pair (int_range 0 1000) (int_range 0 3))
    (fun (seed, mode) ->
      let input = Array.init 16 (fun i -> (seed * 31 + i * 17) mod 211) in
      let expected = seq_output aliasing_src input in
      let u, c = compile_modes aliasing_src input in
      let cfg, compiled =
        match mode with
        | 0 -> (Tls.Config.u_mode, u)
        | 1 -> (Tls.Config.c_mode, c)
        | 2 -> (Tls.Config.h_mode, u)
        | _ -> (Tls.Config.b_mode, c)
      in
      let r = run_tls cfg compiled input in
      r.Tls.Simstats.output = expected)

let () =
  Alcotest.run "tls"
    [
      ( "cache",
        [
          Alcotest.test_case "hits/misses" `Quick cache_hits_misses;
          Alcotest.test_case "LRU eviction" `Quick cache_lru_eviction;
          Alcotest.test_case "bad geometry" `Quick cache_bad_geometry;
          QCheck_alcotest.to_alcotest cache_matches_reference;
        ] );
      ( "memsys",
        [
          Alcotest.test_case "latencies" `Quick memsys_latencies;
          Alcotest.test_case "line mapping" `Quick memsys_line_of;
        ] );
      ( "hwsync",
        [
          Alcotest.test_case "basic" `Quick hwsync_basic;
          Alcotest.test_case "LRU capacity" `Quick hwsync_lru_capacity;
          Alcotest.test_case "periodic reset" `Quick hwsync_periodic_reset;
        ] );
      ( "vpred",
        [
          Alcotest.test_case "confidence" `Quick vpred_confidence_build;
          Alcotest.test_case "mispredict decay" `Quick vpred_mispredict_decay;
          Alcotest.test_case "stride mode" `Quick vpred_stride_mode;
        ] );
      ( "sim",
        [
          Alcotest.test_case "outputs match sequential" `Quick sim_outputs_match_sequential;
          Alcotest.test_case "final memory" `Quick sim_final_memory_matches;
          Alcotest.test_case "violations U vs C" `Quick sim_violations_in_u_not_c;
          Alcotest.test_case "epochs committed" `Quick sim_epochs_committed;
          Alcotest.test_case "hw sync works" `Quick sim_hw_sync_reduces_violations;
          Alcotest.test_case "seq timing regions" `Quick sim_sequential_timing_tracks_regions;
          Alcotest.test_case "aliasing correct" `Quick sim_aliasing_correct;
          Alcotest.test_case "null paths" `Quick sim_null_paths_correct;
          Alcotest.test_case "break exit" `Quick sim_break_exits;
          Alcotest.test_case "return exit" `Quick sim_return_exits;
          Alcotest.test_case "nested regions" `Quick sim_nested_regions;
          Alcotest.test_case "value prediction correct" `Quick sim_value_prediction_correct;
          Alcotest.test_case "word-level tracking" `Quick sim_word_tracking;
          Alcotest.test_case "slot accounting" `Quick sim_slot_accounting;
          Alcotest.test_case "deterministic" `Quick sim_deterministic;
          Alcotest.test_case "region corner cases" `Quick sim_region_corner_cases;
          Alcotest.test_case "deadlock detection" `Quick sim_deadlock_detection;
          QCheck_alcotest.to_alcotest tls_equals_sequential_prop;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "eliminates failures" `Quick oracle_eliminates_failures;
          Alcotest.test_case "faster than U" `Quick oracle_faster_than_u;
        ] );
    ]
