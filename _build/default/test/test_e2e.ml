(* End-to-end tests over the benchmark suite: every workload, under every
   simulator configuration, must produce exactly the sequential output —
   the fundamental TLS correctness invariant — and the headline paper
   shapes must hold. *)

let check_bool = Alcotest.(check bool)

let seq_output (w : Workloads.Workload.t) input =
  let prog = Ir.Lower.compile_source w.Workloads.Workload.source in
  let code = Runtime.Code.of_prog prog in
  let mem = Runtime.Memory.create () in
  Runtime.Thread.run_sequential code ~input mem

let compile_modes (w : Workloads.Workload.t) =
  let src = w.Workloads.Workload.source in
  let train = w.Workloads.Workload.train_input in
  let refi = w.Workloads.Workload.ref_input in
  let u =
    Tlscore.Pipeline.compile ~source:src ~profile_input:train
      ~memory_sync:Tlscore.Pipeline.No_memory_sync ()
  in
  let c =
    Tlscore.Pipeline.compile ~selection:u.Tlscore.Pipeline.selected ~source:src
      ~profile_input:train
      ~memory_sync:(Tlscore.Pipeline.Profiled { dep_input = refi; threshold = 0.05 })
      ()
  in
  (u, c)

(* One correctness test per workload: U/C/H/B outputs == sequential. *)
let workload_correct (w : Workloads.Workload.t) () =
  let input = w.Workloads.Workload.ref_input in
  let expected = seq_output w input in
  let u, c = compile_modes w in
  List.iter
    (fun (name, cfg, (compiled : Tlscore.Pipeline.compiled)) ->
      let r = Tls.Sim.run cfg compiled.Tlscore.Pipeline.code ~input () in
      check_bool
        (w.Workloads.Workload.name ^ " " ^ name ^ " output matches")
        true
        (r.Tls.Simstats.output = expected))
    [
      ("U", Tls.Config.u_mode, u);
      ("C", Tls.Config.c_mode, c);
      ("H", Tls.Config.h_mode, u);
      ("B", Tls.Config.b_mode, c);
    ]

(* Train-input correctness too (different control paths). *)
let workload_correct_train (w : Workloads.Workload.t) () =
  let input = w.Workloads.Workload.train_input in
  let expected = seq_output w input in
  let u, c = compile_modes w in
  List.iter
    (fun (name, cfg, (compiled : Tlscore.Pipeline.compiled)) ->
      let r = Tls.Sim.run cfg compiled.Tlscore.Pipeline.code ~input () in
      check_bool
        (w.Workloads.Workload.name ^ " " ^ name ^ " train output matches")
        true
        (r.Tls.Simstats.output = expected))
    [ ("U", Tls.Config.u_mode, u); ("C", Tls.Config.c_mode, c) ]

(* Headline shapes from the paper, as coarse assertions. *)

let region_speedup (w : Workloads.Workload.t) cfg compiled =
  let input = w.Workloads.Workload.ref_input in
  let u, _ = compiled in
  let prog = Ir.Lower.compile_source w.Workloads.Workload.source in
  let seq =
    Tls.Sim.run_sequential Tls.Config.default
      (Runtime.Code.of_prog prog)
      ~input
      ~track:u.Tlscore.Pipeline.code.Runtime.Code.regions
  in
  let seq_region =
    List.fold_left (fun a (_, c) -> a + c) 0 seq.Tls.Simstats.sq_region_cycles
  in
  let target =
    match cfg with
    | `U -> (Tls.Config.u_mode, fst compiled)
    | `C -> (Tls.Config.c_mode, snd compiled)
    | `H -> (Tls.Config.h_mode, fst compiled)
  in
  let cfg, (comp : Tlscore.Pipeline.compiled) = target in
  let r = Tls.Sim.run cfg comp.Tlscore.Pipeline.code ~input () in
  float_of_int seq_region /. float_of_int r.Tls.Simstats.region_cycles

let shape_parser_compiler_wins () =
  let w = Option.get (Workloads.Registry.find "parser") in
  let compiled = compile_modes w in
  let u = region_speedup w `U compiled in
  let c = region_speedup w `C compiled in
  let h = region_speedup w `H compiled in
  check_bool "C speeds parser up" true (c > 1.5);
  check_bool "C beats U" true (c > u +. 0.5);
  check_bool "C beats H" true (c > h +. 0.5)

let shape_m88ksim_hardware_wins () =
  let w = Option.get (Workloads.Registry.find "m88ksim") in
  let compiled = compile_modes w in
  let c = region_speedup w `C compiled in
  let h = region_speedup w `H compiled in
  check_bool "H beats C on false sharing" true (h > c +. 0.3)

let shape_ijpeg_independent () =
  let w = Option.get (Workloads.Registry.find "ijpeg") in
  let compiled = compile_modes w in
  let u = region_speedup w `U compiled in
  check_bool "near-full speedup" true (u > 3.0)

let shape_gzip_decomp_forwarding () =
  let w = Option.get (Workloads.Registry.find "gzip_decomp") in
  let compiled = compile_modes w in
  let c = region_speedup w `C compiled in
  let h = region_speedup w `H compiled in
  check_bool "compiler forwards earlier than hardware" true (c > h +. 0.5)

let shape_bzip2_decomp_no_failures () =
  let w = Option.get (Workloads.Registry.find "bzip2_decomp") in
  let input = w.Workloads.Workload.ref_input in
  let u, _ = compile_modes w in
  let r = Tls.Sim.run Tls.Config.u_mode u.Tlscore.Pipeline.code ~input () in
  check_bool "no violations at all" true (r.Tls.Simstats.violations = 0)

(* Signal address buffer stays small (paper §2.2: never above 10). *)
let signal_buffer_small () =
  List.iter
    (fun name ->
      let w = Option.get (Workloads.Registry.find name) in
      let input = w.Workloads.Workload.ref_input in
      let _, c = compile_modes w in
      let r = Tls.Sim.run Tls.Config.c_mode c.Tlscore.Pipeline.code ~input () in
      check_bool (name ^ " buffer <= 10") true
        (r.Tls.Simstats.max_signal_buffer <= 10))
    [ "parser"; "gzip_decomp"; "mcf" ]

(* Harness sanity: bar segments decompose the normalized time, coverage is
   a fraction, speedups are consistent between figures. *)
let harness_consistency () =
  let w = Option.get (Workloads.Registry.find "ijpeg") in
  let ctx = Harness.Context.make w in
  let r = Harness.Context.run ctx Tls.Config.u_mode ctx.Harness.Context.u () in
  let total, busy, sync, fail, other = Harness.Context.region_bar ctx r in
  check_bool "segments sum to total" true
    (abs_float (total -. (busy +. sync +. fail +. other)) < 0.5);
  let cov = Harness.Context.coverage ctx in
  check_bool "coverage in (0,1]" true (cov > 0.0 && cov <= 1.0);
  let rs = Harness.Context.region_speedup ctx r in
  check_bool "region speedup consistent with bar" true
    (abs_float ((100.0 /. total) -. rs) < 0.05);
  let ps = Harness.Context.program_speedup ctx r in
  check_bool "program speedup below region speedup at partial coverage" true
    (ps <= rs +. 0.05);
  check_bool "sequential regions unchanged" true
    (abs_float (Harness.Context.seq_region_speedup ctx r -. 1.0) < 0.02)

(* Property: parameterized workload stays correct across random inputs. *)
let random_input_invariant =
  QCheck.Test.make ~name:"parser correct on random inputs" ~count:6
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let base = Option.get (Workloads.Registry.find "parser") in
      let input = Array.init 32 (fun i -> (seed * 131 + i * 29) mod 223) in
      let w = { base with Workloads.Workload.ref_input = input } in
      let expected = seq_output w input in
      let u, c = compile_modes w in
      let ru = Tls.Sim.run Tls.Config.u_mode u.Tlscore.Pipeline.code ~input () in
      let rc = Tls.Sim.run Tls.Config.c_mode c.Tlscore.Pipeline.code ~input () in
      ru.Tls.Simstats.output = expected && rc.Tls.Simstats.output = expected)

let () =
  let correctness =
    List.map
      (fun (w : Workloads.Workload.t) ->
        Alcotest.test_case (w.Workloads.Workload.name ^ " ref") `Slow
          (workload_correct w))
      Workloads.Registry.all
    @ List.map
        (fun (w : Workloads.Workload.t) ->
          Alcotest.test_case (w.Workloads.Workload.name ^ " train") `Slow
            (workload_correct_train w))
        Workloads.Registry.all
  in
  Alcotest.run "e2e"
    [
      ("correctness", correctness);
      ( "paper shapes",
        [
          Alcotest.test_case "parser: compiler wins" `Slow shape_parser_compiler_wins;
          Alcotest.test_case "m88ksim: hardware wins" `Slow shape_m88ksim_hardware_wins;
          Alcotest.test_case "ijpeg: independent" `Slow shape_ijpeg_independent;
          Alcotest.test_case "gzip_decomp: early forwarding" `Slow shape_gzip_decomp_forwarding;
          Alcotest.test_case "bzip2_decomp: no failures" `Slow shape_bzip2_decomp_no_failures;
          Alcotest.test_case "signal buffer small" `Slow signal_buffer_small;
          Alcotest.test_case "harness consistency" `Slow harness_consistency;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest random_input_invariant ]);
    ]
