(* Tests for the support substrate: union-find, RNG, stats, tables. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Union-find                                                          *)
(* ------------------------------------------------------------------ *)

let uf_singletons () =
  let uf = Support.Union_find.create 5 in
  check_int "classes" 5 (Support.Union_find.class_count uf);
  for i = 0 to 4 do
    check_int "self root" i (Support.Union_find.find uf i)
  done

let uf_union_chain () =
  let uf = Support.Union_find.create 6 in
  ignore (Support.Union_find.union uf 0 1);
  ignore (Support.Union_find.union uf 1 2);
  ignore (Support.Union_find.union uf 4 5);
  check_bool "0~2" true (Support.Union_find.same uf 0 2);
  check_bool "0!~4" false (Support.Union_find.same uf 0 4);
  check_int "classes" 3 (Support.Union_find.class_count uf)

let uf_classes_sorted () =
  let uf = Support.Union_find.create 4 in
  ignore (Support.Union_find.union uf 3 1);
  let classes = Support.Union_find.classes uf in
  check_int "three classes" 3 (List.length classes);
  check_bool "1 and 3 together" true
    (List.exists (fun c -> c = [ 1; 3 ]) classes)

let uf_idempotent_union () =
  let uf = Support.Union_find.create 3 in
  let r1 = Support.Union_find.union uf 0 1 in
  let r2 = Support.Union_find.union uf 0 1 in
  check_int "same root" r1 r2;
  check_int "classes" 2 (Support.Union_find.class_count uf)

let uf_out_of_range () =
  let uf = Support.Union_find.create 2 in
  Alcotest.check_raises "negative" (Invalid_argument "Union_find: key out of range")
    (fun () -> ignore (Support.Union_find.find uf (-1)));
  Alcotest.check_raises "too large" (Invalid_argument "Union_find: key out of range")
    (fun () -> ignore (Support.Union_find.find uf 2))

(* Property: union is equivalence closure — same iff connected in the
   union graph (checked against a naive reference). *)
let uf_matches_reference =
  QCheck.Test.make ~name:"union_find matches naive reference" ~count:200
    QCheck.(pair (int_range 1 20) (small_list (pair small_nat small_nat)))
    (fun (n, edges) ->
      let edges = List.map (fun (a, b) -> (a mod n, b mod n)) edges in
      let uf = Support.Union_find.create n in
      List.iter (fun (a, b) -> ignore (Support.Union_find.union uf a b)) edges;
      (* Naive: repeated relabeling. *)
      let label = Array.init n Fun.id in
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun (a, b) ->
            let m = min label.(a) label.(b) in
            if label.(a) <> m || label.(b) <> m then begin
              label.(a) <- m;
              label.(b) <- m;
              changed := true
            end)
          edges
      done;
      (* Propagate to closure. *)
      let rec root i = if label.(i) = i then i else root label.(i) in
      List.for_all
        (fun i ->
          List.for_all
            (fun j ->
              Support.Union_find.same uf i j = (root i = root j))
            (List.init n Fun.id))
        (List.init n Fun.id))

(* ------------------------------------------------------------------ *)
(* RNG                                                                 *)
(* ------------------------------------------------------------------ *)

let rng_deterministic () =
  let a = Support.Rng.of_int 42 and b = Support.Rng.of_int 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Support.Rng.int a 1000) (Support.Rng.int b 1000)
  done

let rng_bounds () =
  let rng = Support.Rng.of_int 7 in
  for _ = 1 to 1000 do
    let v = Support.Rng.int rng 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let v = Support.Rng.range rng 5 9 in
    check_bool "range incl" true (v >= 5 && v <= 9)
  done

let rng_split_independent () =
  let a = Support.Rng.of_int 1 in
  let b = Support.Rng.split a in
  let xs = List.init 20 (fun _ -> Support.Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Support.Rng.int b 1000) in
  check_bool "streams differ" true (xs <> ys)

let rng_shuffle_permutation () =
  let rng = Support.Rng.of_int 3 in
  let arr = Array.init 50 Fun.id in
  Support.Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let rng_bad_bound () =
  let rng = Support.Rng.of_int 0 in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Support.Rng.int rng 0))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let check_float = Alcotest.(check (float 1e-9))

let stats_mean () =
  check_float "mean" 2.5 (Support.Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "empty" 0.0 (Support.Stats.mean [])

let stats_geomean () =
  check_float "geomean" 2.0 (Support.Stats.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Stats.geomean: non-positive value") (fun () ->
      ignore (Support.Stats.geomean [ 1.0; 0.0 ]))

let stats_percent_ratio () =
  check_float "percent" 50.0 (Support.Stats.percent 1.0 2.0);
  check_float "percent div0" 0.0 (Support.Stats.percent 1.0 0.0);
  check_float "ratio" 0.5 (Support.Stats.ratio 1.0 2.0)

let stats_histogram () =
  let h = Support.Stats.histogram [ 0; 10; 20 ] [ 0; 5; 10; 19; 25; -3 ] in
  Alcotest.(check (list int)) "bins" [ 2; 2; 1 ] h;
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Stats.histogram: bins must increase") (fun () ->
      ignore (Support.Stats.histogram [ 5; 5 ] []))

let stats_round () =
  check_float "round" 1.23 (Support.Stats.round_to 2 1.2345)

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let table_render () =
  let out =
    Support.Table.render ~header:[ "a"; "bb" ] [ [ "xx"; "1" ]; [ "y"; "22" ] ]
  in
  let lines = String.split_on_char '\n' out in
  check_int "four lines" 4 (List.length lines);
  (* All lines equal width. *)
  match lines with
  | first :: rest ->
    List.iter
      (fun l -> check_int "width" (String.length first) (String.length l))
      rest
  | [] -> Alcotest.fail "no output"

let table_bad_rows () =
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Table.render: row width mismatch") (fun () ->
      ignore (Support.Table.render ~header:[ "a" ] [ [ "x"; "y" ] ]))

let () =
  Alcotest.run "support"
    [
      ( "union_find",
        [
          Alcotest.test_case "singletons" `Quick uf_singletons;
          Alcotest.test_case "union chain" `Quick uf_union_chain;
          Alcotest.test_case "classes sorted" `Quick uf_classes_sorted;
          Alcotest.test_case "idempotent union" `Quick uf_idempotent_union;
          Alcotest.test_case "out of range" `Quick uf_out_of_range;
          QCheck_alcotest.to_alcotest uf_matches_reference;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick rng_deterministic;
          Alcotest.test_case "bounds" `Quick rng_bounds;
          Alcotest.test_case "split independent" `Quick rng_split_independent;
          Alcotest.test_case "shuffle permutation" `Quick rng_shuffle_permutation;
          Alcotest.test_case "bad bound" `Quick rng_bad_bound;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick stats_mean;
          Alcotest.test_case "geomean" `Quick stats_geomean;
          Alcotest.test_case "percent/ratio" `Quick stats_percent_ratio;
          Alcotest.test_case "histogram" `Quick stats_histogram;
          Alcotest.test_case "round" `Quick stats_round;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick table_render;
          Alcotest.test_case "bad rows" `Quick table_bad_rows;
        ] );
    ]
