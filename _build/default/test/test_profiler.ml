(* Profiler tests: loop statistics and context-sensitive dependence
   profiling on crafted programs whose counts are known exactly. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let profile ?(input = [||]) ?(watch_all = false) src =
  let prog = Ir.Lower.compile_source src in
  let watch = if watch_all then Profiler.Runner.all_loops prog else [] in
  (prog, Profiler.Runner.run prog ~input ~watch)

let loop_keys prog = Profiler.Runner.all_loops prog

(* ------------------------------------------------------------------ *)
(* Loop statistics                                                     *)
(* ------------------------------------------------------------------ *)

let loop_counts () =
  let prog, p =
    profile
      "void main() { int i; int j; int s; for (i = 0; i < 10; i = i + 1) { \
       for (j = 0; j < 4; j = j + 1) { s = s + j; } } }"
  in
  match loop_keys prog with
  | [ a; b ] ->
    (* Outer loop has the smaller header label (lowered first). *)
    let outer, inner =
      if a.Profiler.Profile.lk_header < b.Profiler.Profile.lk_header then (a, b)
      else (b, a)
    in
    let so = Profiler.Profile.stats p outer in
    let si = Profiler.Profile.stats p inner in
    check_int "outer instances" 1 so.Profiler.Profile.instances;
    (* iterations = header arrivals: 10 trips + the exit test *)
    check_int "outer iterations" 11 so.Profiler.Profile.iterations;
    check_int "inner instances" 10 si.Profiler.Profile.instances;
    check_int "inner iterations" 50 si.Profiler.Profile.iterations;
    check_bool "outer covers inner" true
      (so.Profiler.Profile.dyn_instrs > si.Profiler.Profile.dyn_instrs);
    check_bool "coverage below 1" true (Profiler.Profile.coverage p outer <= 1.0)
  | ls -> Alcotest.fail (Printf.sprintf "expected 2 loops, got %d" (List.length ls))

let loop_in_callee_counts_per_call () =
  let prog, p =
    profile
      "int f() { int j; int s; s = 0; for (j = 0; j < 3; j = j + 1) { s = s \
       + j; } return s; } void main() { int i; for (i = 0; i < 5; i = i + \
       1) { f(); } }"
  in
  let f_loop =
    List.find
      (fun (k : Profiler.Profile.loop_key) -> k.Profiler.Profile.lk_func = "f")
      (loop_keys prog)
  in
  let s = Profiler.Profile.stats p f_loop in
  check_int "instances = calls" 5 s.Profiler.Profile.instances;
  check_int "iterations (3 trips + exit test, per call)" 20
    s.Profiler.Profile.iterations

let zero_trip_loop () =
  let prog, p =
    profile "void main() { int i; for (i = 0; i < 0; i = i + 1) { print(i); } }"
  in
  match loop_keys prog with
  | [ k ] ->
    let s = Profiler.Profile.stats p k in
    check_int "one instance" 1 s.Profiler.Profile.instances
  | _ -> Alcotest.fail "expected one loop"

(* ------------------------------------------------------------------ *)
(* Dependence profiling                                                *)
(* ------------------------------------------------------------------ *)

let dep_profile_of prog p =
  match loop_keys prog with
  | k :: _ -> (k, Option.get (Profiler.Profile.dep_profile p k))
  | [] -> Alcotest.fail "no loop"

let dep_every_epoch () =
  (* g is read+written every iteration: dependence in every epoch but the
     first; distance always 1. *)
  let prog, p =
    profile ~watch_all:true
      "int g; void main() { int i; for (i = 0; i < 8; i = i + 1) { g = g + \
       i; } print(g); }"
  in
  let _, dp = dep_profile_of prog p in
  check_int "epochs (8 trips + exit test)" 9 dp.Profiler.Profile.total_epochs;
  (match Profiler.Profile.frequent_deps dp ~threshold:0.5 with
  | [ d ] ->
    check_bool "bare context" true
      (d.Profiler.Profile.producer.Profiler.Profile.a_ctx = []
      && d.Profiler.Profile.consumer.Profiler.Profile.a_ctx = [])
  | ds -> Alcotest.fail (Printf.sprintf "expected 1 dep, got %d" (List.length ds)));
  Alcotest.(check (list (pair int int))) "all distance 1" [ (1, 7) ]
    (Profiler.Profile.distance_histogram dp)

let dep_distance_two () =
  (* Even iterations write a; odd read it: consumer at distance 1.
     But writes to b at i, reads at i+2: distance 2. *)
  let prog, p =
    profile ~watch_all:true
      "int slot[2]; void main() { int i; for (i = 0; i < 10; i = i + 1) { \
       slot[i % 2] = i; if (i >= 2) { print(slot[i % 2]); } } }"
  in
  let _, dp = dep_profile_of prog p in
  (* slot[i%2] written at i is read... the read is of the value just
     written this epoch (intra-epoch), so no inter-epoch dep at all. *)
  check_int "no inter-epoch deps" 0 (Hashtbl.length dp.Profiler.Profile.dep_epochs)

let dep_real_distance_two () =
  (* slot[i%2] is read before being rewritten: its last writer is epoch
     i-2 (distance 2); the accumulator s is a distance-1 chain. *)
  let prog, p =
    profile ~watch_all:true
      "int slot[2]; int s; void main() { int i; for (i = 0; i < 10; i = i \
       + 1) { s = s + slot[i % 2]; slot[i % 2] = i; } print(s); }"
  in
  let _, dp = dep_profile_of prog p in
  let hist = Profiler.Profile.distance_histogram dp in
  check_bool "has distance-2 (slot)" true (List.exists (fun (d, _) -> d = 2) hist);
  check_bool "has distance-1 (s)" true (List.exists (fun (d, _) -> d = 1) hist);
  check_bool "nothing longer" true (List.for_all (fun (d, _) -> d <= 2) hist)

let dep_infrequent_below_threshold () =
  let prog, p =
    profile ~watch_all:true
      "int g; void main() { int i; for (i = 0; i < 100; i = i + 1) { if (i \
       % 50 == 49) { g = g + 1; } } print(g); }"
  in
  let _, dp = dep_profile_of prog p in
  check_int "rare dep not frequent at 5%" 0
    (List.length (Profiler.Profile.frequent_deps dp ~threshold:0.05));
  check_bool "but recorded" true (Hashtbl.length dp.Profiler.Profile.dep_epochs > 0)

let dep_context_sensitivity () =
  (* The same helper stores g from two different call sites; only the loop
     call site's context appears in the loop's dependence profile, and the
     two sites yield distinct contexts. *)
  let src =
    "int g;\n\
     void bump() { g = g + 1; }\n\
     void twice() { bump(); bump(); }\n\
     void main() { int i; for (i = 0; i < 6; i = i + 1) { twice(); } print(g); }"
  in
  let prog, p = profile ~watch_all:true src in
  let key =
    List.find
      (fun (k : Profiler.Profile.loop_key) -> k.Profiler.Profile.lk_func = "main")
      (loop_keys prog)
  in
  let dp = Option.get (Profiler.Profile.dep_profile p key) in
  let deps = Profiler.Profile.frequent_deps dp ~threshold:0.5 in
  check_bool "deps exist" true (deps <> []);
  List.iter
    (fun (d : Profiler.Profile.dep) ->
      check_int "producer ctx depth 2" 2
        (List.length d.Profiler.Profile.producer.Profiler.Profile.a_ctx);
      check_int "consumer ctx depth 2" 2
        (List.length d.Profiler.Profile.consumer.Profiler.Profile.a_ctx))
    deps;
  (* The frequent dependence crosses call sites: the producer is the
     second bump() call of the previous epoch, the consumer the first
     bump() of the next — distinct contexts for the same helper. *)
  List.iter
    (fun (d : Profiler.Profile.dep) ->
      check_bool "distinct call-site contexts" true
        (d.Profiler.Profile.producer.Profiler.Profile.a_ctx
        <> d.Profiler.Profile.consumer.Profiler.Profile.a_ctx))
    deps

let dep_loads_frequency () =
  let prog, p =
    profile ~watch_all:true
      "int g; int h; void main() { int i; int x; for (i = 0; i < 20; i = i \
       + 1) { x = g; g = i; if (i % 4 == 0) { x = x + h; h = i; } } \
       print(x); }"
  in
  let _, dp = dep_profile_of prog p in
  let freq_50 = Profiler.Profile.frequent_loads dp ~threshold:0.5 in
  let freq_10 = Profiler.Profile.frequent_loads dp ~threshold:0.10 in
  check_int "only g's load above 50%" 1 (List.length freq_50);
  check_int "both loads above 10%" 2 (List.length freq_10)

let dep_graph_dot () =
  let prog, p =
    profile ~watch_all:true
      "int g; void main() { int i; for (i = 0; i < 8; i = i + 1) { g = g + \
       i; } print(g); }"
  in
  let _, dp = dep_profile_of prog p in
  let dot = Profiler.Profile.to_dot ~threshold:0.05 dp in
  let contains needle =
    let n = String.length needle and h = String.length dot in
    let rec loop i = i + n <= h && (String.sub dot i n = needle || loop (i + 1)) in
    loop 0
  in
  check_bool "digraph header" true (contains "digraph dependences");
  check_bool "solid frequent edge" true (contains "style=solid");
  check_bool "percentage label" true (contains "%\"")

let profiler_preserves_output () =
  let src = "void main() { print(4); print(2); }" in
  let _, p = profile src in
  Alcotest.(check (list int)) "output" [ 4; 2 ] p.Profiler.Profile.output

let () =
  Alcotest.run "profiler"
    [
      ( "loops",
        [
          Alcotest.test_case "counts" `Quick loop_counts;
          Alcotest.test_case "callee per-call" `Quick loop_in_callee_counts_per_call;
          Alcotest.test_case "zero trip" `Quick zero_trip_loop;
        ] );
      ( "dependences",
        [
          Alcotest.test_case "every epoch" `Quick dep_every_epoch;
          Alcotest.test_case "intra-epoch excluded" `Quick dep_distance_two;
          Alcotest.test_case "distance two" `Quick dep_real_distance_two;
          Alcotest.test_case "threshold" `Quick dep_infrequent_below_threshold;
          Alcotest.test_case "context sensitivity" `Quick dep_context_sensitivity;
          Alcotest.test_case "load frequency" `Quick dep_loads_frequency;
          Alcotest.test_case "output preserved" `Quick profiler_preserves_output;
          Alcotest.test_case "dependence graph DOT" `Quick dep_graph_dot;
        ] );
    ]
