(* Workload-character tests: each benchmark was engineered to exhibit a
   specific dependence pattern (its doc comment states which); these tests
   pin that character at the profile/pass level, so recalibration
   regressions are caught without running the full simulator. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let compiled = Hashtbl.create 16

(* U and C builds per workload, computed once per process. *)
let builds name =
  match Hashtbl.find_opt compiled name with
  | Some b -> b
  | None ->
    let w = Option.get (Workloads.Registry.find name) in
    let src = w.Workloads.Workload.source in
    let train = w.Workloads.Workload.train_input in
    let refi = w.Workloads.Workload.ref_input in
    let u =
      Tlscore.Pipeline.compile ~source:src ~profile_input:train
        ~memory_sync:Tlscore.Pipeline.No_memory_sync ()
    in
    let c =
      Tlscore.Pipeline.compile ~selection:u.Tlscore.Pipeline.selected
        ~source:src ~profile_input:train
        ~memory_sync:
          (Tlscore.Pipeline.Profiled { dep_input = refi; threshold = 0.05 })
        ()
    in
    let b = (w, u, c) in
    Hashtbl.replace compiled name b;
    b

let total_groups (c : Tlscore.Pipeline.compiled) =
  List.fold_left
    (fun acc (_, s) -> acc + s.Tlscore.Memsync.ms_groups)
    0 c.Tlscore.Pipeline.mem_stats

let total_clones (c : Tlscore.Pipeline.compiled) =
  List.fold_left
    (fun acc (_, s) -> acc + s.Tlscore.Memsync.ms_clones)
    0 c.Tlscore.Pipeline.mem_stats

let all_deps (c : Tlscore.Pipeline.compiled) =
  List.concat_map
    (fun (_, dp) -> Profiler.Profile.frequent_deps dp ~threshold:0.05)
    c.Tlscore.Pipeline.dep_profiles

(* Every workload: parses, checks, selects at least one region, and the
   transformed program passes IR verification (done by the pipeline). *)
let basics name () =
  let _, u, c = builds name in
  check_bool "at least one region" true (u.Tlscore.Pipeline.selected <> []);
  check_bool "same regions in U and C" true
    (u.Tlscore.Pipeline.selected = c.Tlscore.Pipeline.selected)

let parser_character () =
  let _, _, c = builds "parser" in
  (* The free-list dependences flow through the helper procedures: the
     profile names them with non-empty call stacks, so cloning happens. *)
  check_bool "deps through call stacks" true
    (List.exists
       (fun (d : Profiler.Profile.dep) ->
         d.Profiler.Profile.producer.Profiler.Profile.a_ctx <> [])
       (all_deps c));
  check_bool "procedures cloned" true (total_clones c >= 2);
  check_bool "multiple groups (free_list, nfree, node fields)" true
    (total_groups c >= 3)

let m88ksim_character () =
  let _, _, c = builds "m88ksim" in
  (* Pure false sharing: the only word-level dependence is the harmless
     distance-4 counter recurrence; the violating flag load has none. *)
  let deps = all_deps c in
  check_bool "only the counter group" true (total_groups c <= 1);
  List.iter
    (fun (_, dp) ->
      List.iter
        (fun (dist, _) ->
          check_bool "no short-distance deps" true (dist >= 4))
        (Profiler.Profile.distance_histogram dp))
    c.Tlscore.Pipeline.dep_profiles;
  ignore deps

let ijpeg_character () =
  let _, _, c = builds "ijpeg" in
  check_int "no frequent dependences at all" 0 (List.length (all_deps c))

let bzip2_decomp_character () =
  let _, _, c = builds "bzip2_decomp" in
  check_int "no frequent dependences at all" 0 (List.length (all_deps c))

let gzip_comp_profile_sensitivity () =
  (* The T (train-profiled) build synchronizes a different store site than
     the C (ref-profiled) build: the hot path flips with the input. *)
  let w, u, c = builds "gzip_comp" in
  let t =
    Tlscore.Pipeline.compile ~selection:u.Tlscore.Pipeline.selected
      ~source:w.Workloads.Workload.source
      ~profile_input:w.Workloads.Workload.train_input
      ~memory_sync:
        (Tlscore.Pipeline.Profiled
           { dep_input = w.Workloads.Workload.train_input; threshold = 0.05 })
      ()
  in
  let store_sets (b : Tlscore.Pipeline.compiled) =
    List.concat_map
      (fun (r : Ir.Region.t) ->
        List.concat_map
          (fun (mg : Ir.Region.mem_group) -> mg.Ir.Region.mg_stores)
          r.Ir.Region.mem_groups)
      b.Tlscore.Pipeline.prog.Ir.Prog.regions
    |> List.sort_uniq compare
  in
  check_bool "different synchronized stores" true (store_sets t <> store_sets c)

let gzip_decomp_character () =
  let _, _, c = builds "gzip_decomp" in
  (* The write-position dependence is distance-1, every epoch. *)
  List.iter
    (fun (_, (dp : Profiler.Profile.dep_profile)) ->
      let hist = Profiler.Profile.distance_histogram dp in
      check_bool "all distance 1" true (List.for_all (fun (d, _) -> d = 1) hist))
    c.Tlscore.Pipeline.dep_profiles;
  check_bool "helpers cloned (reserve)" true (total_clones c >= 1)

let mcf_character () =
  let _, _, c = builds "mcf" in
  (* The best-record store is conditional: the dataflow placement needs
     guarded frontier signals. *)
  check_bool "guarded frontier signals" true
    (List.exists
       (fun (_, s) -> s.Tlscore.Memsync.ms_guarded_signals > 0)
       c.Tlscore.Pipeline.mem_stats)

let gap_character () =
  let _, _, c = builds "gap" in
  (* Unconditional bump-pointer chain: nulls elided for at least one
     group, and all dependences are distance 1. *)
  List.iter
    (fun (_, (dp : Profiler.Profile.dep_profile)) ->
      let hist = Profiler.Profile.distance_histogram dp in
      check_bool "all distance 1" true (List.for_all (fun (d, _) -> d = 1) hist))
    c.Tlscore.Pipeline.dep_profiles

let twolf_character () =
  let _, _, c = builds "twolf" in
  (* The profiled dependence is real but conditional: frequency sits well
     below 100% (the consumer reads on 25% of epochs). *)
  let freqs =
    List.concat_map
      (fun (_, (dp : Profiler.Profile.dep_profile)) ->
        Hashtbl.fold
          (fun _ count acc ->
            Support.Stats.percent (float_of_int count)
              (float_of_int dp.Profiler.Profile.total_epochs)
            :: acc)
          dp.Profiler.Profile.dep_epochs [])
      c.Tlscore.Pipeline.dep_profiles
  in
  check_bool "has a 5-30%% dependence" true
    (List.exists (fun f -> f >= 5.0 && f <= 40.0) freqs)

let crafty_character () =
  let _, _, c = builds "crafty" in
  (* The hash-hit counter sits just above the 5% threshold. *)
  let freqs =
    List.concat_map
      (fun (_, (dp : Profiler.Profile.dep_profile)) ->
        Hashtbl.fold
          (fun _ count acc ->
            Support.Stats.percent (float_of_int count)
              (float_of_int dp.Profiler.Profile.total_epochs)
            :: acc)
          dp.Profiler.Profile.dep_epochs [])
      c.Tlscore.Pipeline.dep_profiles
  in
  check_bool "a near-threshold dependence exists" true
    (List.exists (fun f -> f >= 5.0 && f <= 20.0) freqs)

let perlbmk_character () =
  let _, _, c = builds "perlbmk" in
  (* Interpreter variables accessed through cloned helpers. *)
  check_bool "var helpers cloned" true (total_clones c >= 2)

let () =
  let per_workload =
    List.map
      (fun name -> Alcotest.test_case name `Slow (basics name))
      Workloads.Registry.names
  in
  Alcotest.run "workloads"
    [
      ("basics", per_workload);
      ( "character",
        [
          Alcotest.test_case "parser: free list via clones" `Slow parser_character;
          Alcotest.test_case "m88ksim: false sharing only" `Slow m88ksim_character;
          Alcotest.test_case "ijpeg: independent" `Slow ijpeg_character;
          Alcotest.test_case "bzip2_decomp: independent" `Slow bzip2_decomp_character;
          Alcotest.test_case "gzip_comp: profile-sensitive" `Slow gzip_comp_profile_sensitivity;
          Alcotest.test_case "gzip_decomp: distance-1 early" `Slow gzip_decomp_character;
          Alcotest.test_case "mcf: guarded frontier" `Slow mcf_character;
          Alcotest.test_case "gap: serial chain" `Slow gap_character;
          Alcotest.test_case "twolf: conditional consumer" `Slow twolf_character;
          Alcotest.test_case "crafty: near-threshold" `Slow crafty_character;
          Alcotest.test_case "perlbmk: cloned helpers" `Slow perlbmk_character;
        ] );
    ]
