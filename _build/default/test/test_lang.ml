(* Frontend tests: lexer, parser, type checker. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let toks src =
  List.map (fun (s : Lang.Token.spanned) -> s.Lang.Token.tok) (Lang.Lexer.tokenize src)

let lex_simple () =
  check_bool "tokens" true
    (toks "int x = 42;"
    = [ Lang.Token.Kw_int; Lang.Token.Ident "x"; Lang.Token.Assign;
        Lang.Token.Int_lit 42; Lang.Token.Semi; Lang.Token.Eof ])

let lex_operators () =
  check_bool "ops" true
    (toks "a->b == c && d << 2 >= e != f"
    = Lang.Token.[ Ident "a"; Arrow; Ident "b"; Eq_eq; Ident "c"; Amp_amp;
                   Ident "d"; Shl; Int_lit 2; Ge; Ident "e"; Bang_eq;
                   Ident "f"; Eof ])

let lex_comments () =
  check_bool "line comment" true (toks "x // hi\n y" = Lang.Token.[ Ident "x"; Ident "y"; Eof ]);
  check_bool "block comment" true (toks "x /* a\nb */ y" = Lang.Token.[ Ident "x"; Ident "y"; Eof ])

let lex_hex () =
  check_bool "hex" true (toks "0x10" = Lang.Token.[ Int_lit 16; Eof ])

let lex_positions () =
  match Lang.Lexer.tokenize "a\n  b" with
  | [ a; b; _eof ] ->
    check_int "a line" 1 a.Lang.Token.pos.Lang.Token.line;
    check_int "b line" 2 b.Lang.Token.pos.Lang.Token.line;
    check_int "b col" 3 b.Lang.Token.pos.Lang.Token.col
  | _ -> Alcotest.fail "unexpected token count"

let lex_errors () =
  (try
     ignore (Lang.Lexer.tokenize "a $ b");
     Alcotest.fail "expected lex error"
   with Lang.Lexer.Error (_, _) -> ());
  try
    ignore (Lang.Lexer.tokenize "/* unterminated");
    Alcotest.fail "expected lex error"
  with Lang.Lexer.Error (msg, _) ->
    check_bool "message" true
      (String.length msg > 0 && String.sub msg 0 12 = "unterminated")

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let parse_ok src =
  try
    ignore (Lang.Parser.parse_program src);
    true
  with Lang.Parser.Error _ -> false

let rec expr_to_string (e : Lang.Ast.expr) =
  match e.Lang.Ast.desc with
  | Lang.Ast.Int n -> string_of_int n
  | Lang.Ast.Null -> "null"
  | Lang.Ast.Var v -> v
  | Lang.Ast.Binop (op, a, b) ->
    let ops =
      match op with
      | Lang.Ast.Add -> "+" | Lang.Ast.Sub -> "-" | Lang.Ast.Mul -> "*"
      | Lang.Ast.Div -> "/" | Lang.Ast.Rem -> "%" | Lang.Ast.Band -> "&"
      | Lang.Ast.Bor -> "|" | Lang.Ast.Bxor -> "^" | Lang.Ast.Shl -> "<<"
      | Lang.Ast.Shr -> ">>" | Lang.Ast.Eq -> "==" | Lang.Ast.Ne -> "!="
      | Lang.Ast.Lt -> "<" | Lang.Ast.Le -> "<=" | Lang.Ast.Gt -> ">"
      | Lang.Ast.Ge -> ">=" | Lang.Ast.Land -> "&&" | Lang.Ast.Lor -> "||"
    in
    Printf.sprintf "(%s%s%s)" (expr_to_string a) ops (expr_to_string b)
  | Lang.Ast.Unop (Lang.Ast.Neg, a) -> Printf.sprintf "(-%s)" (expr_to_string a)
  | Lang.Ast.Unop (Lang.Ast.Not, a) -> Printf.sprintf "(!%s)" (expr_to_string a)
  | Lang.Ast.Deref a -> Printf.sprintf "(*%s)" (expr_to_string a)
  | Lang.Ast.Field (a, f) -> Printf.sprintf "(%s->%s)" (expr_to_string a) f
  | Lang.Ast.Direct_field (a, f) -> Printf.sprintf "(%s.%s)" (expr_to_string a) f
  | Lang.Ast.Index (a, i) ->
    Printf.sprintf "(%s[%s])" (expr_to_string a) (expr_to_string i)
  | Lang.Ast.Addr_of a -> Printf.sprintf "(&%s)" (expr_to_string a)
  | Lang.Ast.Call (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat "," (List.map expr_to_string args))

let parse_expr_str src = expr_to_string (Lang.Parser.parse_expr src)

let parser_precedence () =
  Alcotest.(check string) "mul before add" "(a+(b*c))" (parse_expr_str "a + b * c");
  Alcotest.(check string) "shift vs cmp" "((a<<2)<b)" (parse_expr_str "a << 2 < b");
  Alcotest.(check string) "and/or" "(a||(b&&c))" (parse_expr_str "a || b && c");
  Alcotest.(check string) "bitops" "((a|(b^c))|(d&e))" (parse_expr_str "a | b ^ c | d & e");
  Alcotest.(check string) "unary" "((-a)+(!b))" (parse_expr_str "-a + !b");
  Alcotest.(check string) "parens" "((a+b)*c)" (parse_expr_str "(a + b) * c")

let parser_postfix () =
  Alcotest.(check string) "chain" "(((p->next)->data)[(i+1)])"
    (parse_expr_str "p->next->data[i + 1]");
  Alcotest.(check string) "addr of field" "(&(p->f))" (parse_expr_str "&p->f");
  Alcotest.(check string) "deref index" "((*p)[0])" (parse_expr_str "(*p)[0]")

let parser_program_shapes () =
  check_bool "struct + func" true
    (parse_ok "struct s { int a; s* b; } void main() { }");
  check_bool "globals" true
    (parse_ok "int g; int arr[10]; int init = -5; void main() {}");
  check_bool "control" true
    (parse_ok
       "void main() { int i; for (i = 0; i < 3; i = i + 1) { if (i == 1) \
        continue; if (i == 2) break; } while (i > 0) i = i - 1; do { i = 1; \
        } while (i < 0); }");
  check_bool "missing semi" false (parse_ok "void main() { int x }");
  check_bool "bad top level" false (parse_ok "42;")

let parser_dangling_else () =
  (* else binds to the nearest if *)
  let p =
    Lang.Parser.parse_program
      "void main() { int a; if (1) if (0) a = 1; else a = 2; }"
  in
  match (List.hd (List.rev p.Lang.Ast.funcs)).Lang.Ast.body with
  | [ _decl; { Lang.Ast.sdesc = Lang.Ast.If (_, [ inner ], []); _ } ] -> begin
    match inner.Lang.Ast.sdesc with
    | Lang.Ast.If (_, _, [ _ ]) -> ()
    | _ -> Alcotest.fail "inner if lacks else"
  end
  | _ -> Alcotest.fail "unexpected shape"

(* ------------------------------------------------------------------ *)
(* Sema                                                                *)
(* ------------------------------------------------------------------ *)

let checks src =
  try
    ignore (Lang.Sema.check_source src);
    Ok ()
  with
  | Lang.Sema.Error (msg, _) -> Error msg
  | Lang.Parser.Error (msg, _) -> Error ("parse: " ^ msg)

let expect_ok name src =
  match checks src with
  | Ok () -> ()
  | Error m -> Alcotest.fail (name ^ ": unexpected error " ^ m)

let expect_err name src =
  match checks src with
  | Ok () -> Alcotest.fail (name ^ ": expected a type error")
  | Error _ -> ()

let sema_accepts () =
  expect_ok "pointers"
    "struct n { int v; n* next; } n pool[4]; n* head; void main() { n* p; p \
     = &pool[0]; p->next = head; head = p; p->v = head->v + 1; }";
  expect_ok "null compare"
    "int* p; void main() { if (p == null) { p = null; } }";
  expect_ok "array decay"
    "int a[8]; int f(int* p) { return *p + p[1]; } void main() { int x; x = \
     f(a); x = f(&a[2]); }";
  expect_ok "builtins"
    "void main() { int i; i = inlen(); print(in(i - 1)); }";
  expect_ok "direct field"
    "struct s { int a; int b; } s g; s arr[3]; void main() { g.a = 1; \
     arr[2].b = g.a; }"

let sema_rejects () =
  expect_err "unknown var" "void main() { x = 1; }";
  expect_err "undeclared fn" "void main() { f(); }";
  expect_err "arg count" "int f(int a) { return a; } void main() { f(); }";
  expect_err "arg type"
    "int f(int* p) { return *p; } void main() { f(3); }";
  expect_err "deref int" "void main() { int x; x = *x; }";
  expect_err "arrow on int" "void main() { int x; x = x->f; }";
  expect_err "unknown field"
    "struct s { int a; } s* p; void main() { p->b = 1; }";
  expect_err "addr of local" "void main() { int x; int* p; p = &x; }";
  expect_err "assign struct"
    "struct s { int a; } s g; s h; void main() { g = h; }";
  expect_err "return mismatch" "int f() { return; } void main() { }";
  expect_err "void value" "void g() {} void main() { int x; x = g(); }";
  expect_err "missing main" "int f() { return 1; }";
  expect_err "main with args" "void main(int x) { }";
  expect_err "dup global" "int g; int g; void main() {}";
  expect_err "dup local" "void main() { int x; int x; }";
  expect_err "ptr arith两" "int* p; int* q; void main() { p = p + q; }";
  expect_err "redefine builtin" "void print(int x) {} void main() {}"

let sema_pointer_rules () =
  expect_ok "ptr arith" "int a[4]; void main() { int* p; p = a + 1; p = p - 1; }";
  expect_err "ptr plus ptr" "int* p; void main() { p = p + p; }";
  expect_ok "ptr compare" "int* p; int* q; void main() { if (p == q) {} if (p < q) {} }";
  expect_err "ptr type mismatch"
    "struct s { int a; } s* p; int* q; void main() { p = q; }"

let () =
  Alcotest.run "lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "simple" `Quick lex_simple;
          Alcotest.test_case "operators" `Quick lex_operators;
          Alcotest.test_case "comments" `Quick lex_comments;
          Alcotest.test_case "hex" `Quick lex_hex;
          Alcotest.test_case "positions" `Quick lex_positions;
          Alcotest.test_case "errors" `Quick lex_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick parser_precedence;
          Alcotest.test_case "postfix" `Quick parser_postfix;
          Alcotest.test_case "program shapes" `Quick parser_program_shapes;
          Alcotest.test_case "dangling else" `Quick parser_dangling_else;
        ] );
      ( "sema",
        [
          Alcotest.test_case "accepts" `Quick sema_accepts;
          Alcotest.test_case "rejects" `Quick sema_rejects;
          Alcotest.test_case "pointer rules" `Quick sema_pointer_rules;
        ] );
    ]
