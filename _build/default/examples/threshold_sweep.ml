(* Ablation: the synchronization frequency threshold (paper §2.4).

   The paper picks 5% — dependences occurring in at least 5% of epochs are
   synchronized — after a limit study (Figure 6).  This example runs the
   REAL pass (not the oracle) at several thresholds on one benchmark and
   shows the trade-off: a high threshold leaves violations in place, an
   aggressively low one can over-synchronize.

   Run with:  dune exec examples/threshold_sweep.exe [benchmark] *)

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "mcf" in
  let w =
    match Workloads.Registry.find bench with
    | Some w -> w
    | None ->
      Printf.eprintf "unknown benchmark %s (have: %s)\n" bench
        (String.concat ", " Workloads.Registry.names);
      exit 2
  in
  Printf.printf "%s\n"
    (Support.Table.section
       (Printf.sprintf "Synchronization threshold sweep — %s" w.Workloads.Workload.name));
  let source = w.Workloads.Workload.source in
  let train = w.Workloads.Workload.train_input in
  let refi = w.Workloads.Workload.ref_input in
  let u =
    Tlscore.Pipeline.compile ~source ~profile_input:train
      ~memory_sync:Tlscore.Pipeline.No_memory_sync ()
  in
  let original = Tlscore.Pipeline.original ~source in
  let seq =
    Tls.Sim.run_sequential Tls.Config.default
      (Runtime.Code.of_prog original)
      ~input:refi ~track:u.Tlscore.Pipeline.code.Runtime.Code.regions
  in
  let seq_region =
    List.fold_left (fun a (_, c) -> a + c) 0 seq.Tls.Simstats.sq_region_cycles
  in
  let row_for label cfg (compiled : Tlscore.Pipeline.compiled) groups =
    let r = Tls.Sim.run cfg compiled.Tlscore.Pipeline.code ~input:refi () in
    [
      label;
      string_of_int groups;
      string_of_int r.Tls.Simstats.violations;
      Support.Table.float_cell 2
        (float_of_int seq_region /. float_of_int r.Tls.Simstats.region_cycles);
    ]
  in
  let rows =
    row_for "U (no sync)" Tls.Config.u_mode u 0
    :: List.map
         (fun threshold ->
           let c =
             Tlscore.Pipeline.compile
               ~selection:u.Tlscore.Pipeline.selected ~source
               ~profile_input:train
               ~memory_sync:
                 (Tlscore.Pipeline.Profiled { dep_input = refi; threshold })
               ()
           in
           let groups =
             List.fold_left
               (fun acc (_, s) -> acc + s.Tlscore.Memsync.ms_groups)
               0 c.Tlscore.Pipeline.mem_stats
           in
           row_for
             (Printf.sprintf "C @ %2.0f%%" (100.0 *. threshold))
             Tls.Config.c_mode c groups)
         [ 0.25; 0.15; 0.05; 0.01 ]
  in
  print_endline
    (Support.Table.render
       ~header:[ "config"; "groups"; "violations"; "region speedup" ]
       rows)
