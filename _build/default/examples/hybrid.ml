(* Compiler vs hardware vs hybrid synchronization (paper §4.2).

   Two bundled benchmarks make the complementarity concrete:
   - parser: the free-list dependence is produced early, so compiler
     forwarding preserves overlap and beats hardware stall-until-commit;
   - m88ksim: violations come from false sharing with no word-level
     dependence at all, so the compiler has nothing to synchronize and
     the hardware's line-granularity table wins.
   The hybrid (B) tracks the best of the two on both.

   Run with:  dune exec examples/hybrid.exe *)

let show_benchmark name =
  let w = Option.get (Workloads.Registry.find name) in
  Printf.printf "%s\n" (Support.Table.section (w.Workloads.Workload.paper_name ^ " — " ^ w.Workloads.Workload.notes));
  let ctx = Harness.Context.make w in
  let rows =
    [
      ("U", Tls.Config.u_mode, ctx.Harness.Context.u);
      ("C", Tls.Config.c_mode, ctx.Harness.Context.c);
      ("H", Tls.Config.h_mode, ctx.Harness.Context.u);
      ("B", Tls.Config.b_mode, ctx.Harness.Context.c);
    ]
  in
  let body =
    List.map
      (fun (mode, cfg, compiled) ->
        let r = Harness.Context.run ctx cfg compiled () in
        let total, busy, sync, fail, other = Harness.Context.region_bar ctx r in
        [
          mode;
          Support.Table.pct_cell total;
          Support.Table.pct_cell busy;
          Support.Table.pct_cell sync;
          Support.Table.pct_cell fail;
          Support.Table.pct_cell other;
          string_of_int r.Tls.Simstats.violations;
          Support.Table.float_cell 2 (Harness.Context.region_speedup ctx r);
        ])
      rows
  in
  print_endline
    (Support.Table.render
       ~header:[ "mode"; "time%"; "busy"; "sync"; "fail"; "other"; "violations"; "speedup" ]
       body);
  print_newline ()

let () =
  show_benchmark "parser";
  show_benchmark "m88ksim";
  print_endline
    "parser: compiler sync wins (value forwarded early); m88ksim: hardware\n\
     sync wins (false sharing invisible to the word-level profile).  The\n\
     hybrid B follows the winner on each — the paper's §4.2 conclusion."
