(* Quickstart: compile a mini-C program for TLS, inspect what the compiler
   did, and compare speculative execution with and without compiler-
   inserted memory synchronization.

   Run with:  dune exec examples/quickstart.exe *)

let source =
  {|
// A loop with one frequent memory-resident dependence: the running
// maximum is read at the top of each iteration and written near the top
// on improving iterations, followed by a chunk of independent work.
int best = -1;
int out[128];

int evaluate(int x) {
  int j;
  int acc;
  acc = x;
  for (j = 0; j < 14 + x % 9; j = j + 1) {
    acc = acc + ((acc << 1) ^ j) % 211;
  }
  return acc;
}

void main() {
  int i;
  int quick;
  int v;
  for (i = 0; i < 300; i = i + 1) {
    quick = (i * 37) % 1000;
    if (quick > best) { best = quick; }
    v = evaluate(quick);
    out[i % 128] = v;
  }
  print(best);
  print(out[17]);
}
|}

let () =
  print_endline "=== 1. Sequential reference ===";
  let original = Tlscore.Pipeline.original ~source in
  let code0 = Runtime.Code.of_prog original in
  let mem = Runtime.Memory.create () in
  let reference = Runtime.Thread.run_sequential code0 ~input:[||] mem in
  Printf.printf "output: %s\n\n"
    (String.concat " " (List.map string_of_int reference));

  print_endline "=== 2. What the compiler sees ===";
  let profile = Profiler.Runner.run original ~input:[||] ~watch:[] in
  let selected = Tlscore.Selection.select original profile in
  List.iter
    (fun (k : Profiler.Profile.loop_key) ->
      Printf.printf "selected region: loop at %s/L%d (%.0f%% coverage)\n"
        k.Profiler.Profile.lk_func k.Profiler.Profile.lk_header
        (100.0 *. Profiler.Profile.coverage profile k))
    selected;
  let deps = Profiler.Runner.run original ~input:[||] ~watch:selected in
  List.iter
    (fun (k : Profiler.Profile.loop_key) ->
      match Profiler.Profile.dep_profile deps k with
      | None -> ()
      | Some dp ->
        List.iter
          (fun (d : Profiler.Profile.dep) ->
            Printf.printf "frequent dependence: store %s -> load %s\n"
              (Profiler.Profile.pp_access d.Profiler.Profile.producer)
              (Profiler.Profile.pp_access d.Profiler.Profile.consumer))
          (Profiler.Profile.frequent_deps dp ~threshold:0.05))
    selected;
  print_newline ();

  print_endline "=== 3. Compile U (speculation only) and C (compiler sync) ===";
  let u =
    Tlscore.Pipeline.compile ~source ~profile_input:[||]
      ~memory_sync:Tlscore.Pipeline.No_memory_sync ()
  in
  let c =
    Tlscore.Pipeline.compile ~source ~profile_input:[||]
      ~memory_sync:
        (Tlscore.Pipeline.Profiled { dep_input = [||]; threshold = 0.05 })
      ()
  in
  List.iter
    (fun (_, (s : Tlscore.Memsync.stats)) ->
      Printf.printf
        "memory sync: %d group(s), %d synchronized load(s), %d signal(s), %d \
         guarded signal(s)\n"
        s.Tlscore.Memsync.ms_groups s.Tlscore.Memsync.ms_sync_loads
        s.Tlscore.Memsync.ms_sync_stores s.Tlscore.Memsync.ms_guarded_signals)
    c.Tlscore.Pipeline.mem_stats;
  print_newline ();

  print_endline "=== 4. Simulate on the 4-core TLS machine ===";
  let seq =
    Tls.Sim.run_sequential Tls.Config.default code0 ~input:[||]
      ~track:u.Tlscore.Pipeline.code.Runtime.Code.regions
  in
  let show name cfg (compiled : Tlscore.Pipeline.compiled) =
    let r = Tls.Sim.run cfg compiled.Tlscore.Pipeline.code ~input:[||] () in
    assert (r.Tls.Simstats.output = reference);
    Printf.printf
      "%s: %7d cycles (%.2fx vs sequential), %3d violations, %4d epochs \
       committed\n"
      name r.Tls.Simstats.total_cycles
      (float_of_int seq.Tls.Simstats.sq_cycles
      /. float_of_int r.Tls.Simstats.total_cycles)
      r.Tls.Simstats.violations r.Tls.Simstats.epochs_committed
  in
  Printf.printf "sequential: %d cycles\n" seq.Tls.Simstats.sq_cycles;
  show "U (speculation only)  " Tls.Config.u_mode u;
  show "C (compiler sync)     " Tls.Config.c_mode c;
  show "H (hardware sync)     " Tls.Config.h_mode u;
  print_endline "\n(all TLS outputs verified against the sequential run)"
