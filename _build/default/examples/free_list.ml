(* The paper's running example (Figures 1, 3, 4): a speculatively
   parallelized loop that adds and removes members of a linked free list
   through helper procedures.  This example walks through exactly the
   steps of paper §2.3: dependence profiling with call-stack contexts,
   grouping, procedure cloning, and wait/signal insertion — then shows
   the transformed IR and the effect on simulated execution.

   Run with:  dune exec examples/free_list.exe *)

let source =
  {|
struct element { int value; element* next; }

element pool[128];
element* free_list;
int processed = 0;
int results[128];

void free_element(element* e) {
  e->next = free_list;
  free_list = e;
}

element* use_element() {
  element* e;
  e = free_list;
  free_list = e->next;
  return e;
}

int work(int v, int salt) {
  int j;
  int acc;
  acc = v;
  for (j = 0; j < 20; j = j + 1) {
    acc = acc + ((acc << 1) ^ (salt + j)) % 127;
  }
  return acc;
}

void main() {
  int i;
  int r;
  element* e;
  for (i = 0; i < 128; i = i + 1) {
    pool[i].value = i * 3;
    free_element(&pool[i]);
  }
  for (i = 0; i < 200; i = i + 1) {
    e = use_element();
    if (e->value % 3 != 0) {
      free_element(e);
    } else {
      processed = processed + 1;
    }
    r = work(e->value, i);
    results[i % 128] = results[i % 128] ^ r;
  }
  r = 0;
  for (i = 0; i < 128; i = i + 1) { r = r ^ results[i]; }
  print(r);
  print(processed);
}
|}

let () =
  print_endline (Support.Table.section "Paper Figure 4: the free-list loop");
  let original = Tlscore.Pipeline.original ~source in

  (* 1. Profile: every load/store named by (instruction, call stack). *)
  let profile = Profiler.Runner.run original ~input:[||] ~watch:[] in
  let selected = Tlscore.Selection.select original profile in
  let deps = Profiler.Runner.run original ~input:[||] ~watch:selected in
  print_endline "\nFrequent inter-epoch dependences (>= 5% of epochs),";
  print_endline "named as iN@[call stack] exactly as in paper Figure 5:";
  List.iter
    (fun key ->
      match Profiler.Profile.dep_profile deps key with
      | None -> ()
      | Some dp ->
        List.iter
          (fun (d : Profiler.Profile.dep) ->
            let count =
              match Hashtbl.find_opt dp.Profiler.Profile.dep_epochs d with
              | Some c -> c
              | None -> 0
            in
            Printf.printf "  %-14s -> %-14s  (%d of %d epochs)\n"
              (Profiler.Profile.pp_access d.Profiler.Profile.producer)
              (Profiler.Profile.pp_access d.Profiler.Profile.consumer)
              count dp.Profiler.Profile.total_epochs)
          (Profiler.Profile.frequent_deps dp ~threshold:0.05))
    selected;

  (* 2. Transform: cloning + synchronization insertion. *)
  let c =
    Tlscore.Pipeline.compile ~source ~profile_input:[||]
      ~memory_sync:
        (Tlscore.Pipeline.Profiled { dep_input = [||]; threshold = 0.05 })
      ()
  in
  print_endline "\nAfter the pass (paper Figure 4b):";
  List.iter
    (fun (_, (s : Tlscore.Memsync.stats)) ->
      Printf.printf
        "  %d synchronization group(s); %d procedure clone(s) created \
         (free_element/use_element specialized for the loop's call paths)\n"
        s.Tlscore.Memsync.ms_groups s.Tlscore.Memsync.ms_clones)
    c.Tlscore.Pipeline.mem_stats;
  (* Clones are named <original>__cloneN. *)
  let is_clone name =
    let rec scan i =
      i + 7 <= String.length name
      && (String.sub name i 7 = "__clone" || scan (i + 1))
    in
    scan 0
  in
  List.iter
    (fun (name, f) ->
      if is_clone name then begin
        Printf.printf "\n--- %s (wait/sync_load/signal inserted) ---\n" name;
        print_string (Ir.Pp.func f)
      end)
    c.Tlscore.Pipeline.prog.Ir.Prog.funcs;

  (* 3. Simulate U vs C (paper Figure 1's speculation-vs-sync tradeoff). *)
  let u =
    Tlscore.Pipeline.compile ~source ~profile_input:[||]
      ~memory_sync:Tlscore.Pipeline.No_memory_sync ()
  in
  let code0 = Runtime.Code.of_prog original in
  let seq =
    Tls.Sim.run_sequential Tls.Config.default code0 ~input:[||]
      ~track:u.Tlscore.Pipeline.code.Runtime.Code.regions
  in
  let seq_region =
    List.fold_left (fun a (_, c) -> a + c) 0 seq.Tls.Simstats.sq_region_cycles
  in
  print_endline "\nSimulated region execution (4-processor TLS machine):";
  List.iter
    (fun (name, cfg, (compiled : Tlscore.Pipeline.compiled)) ->
      let r = Tls.Sim.run cfg compiled.Tlscore.Pipeline.code ~input:[||] () in
      Printf.printf
        "  %s: region %6d cycles (sequential %d) — %.2fx, %d violations\n"
        name r.Tls.Simstats.region_cycles seq_region
        (float_of_int seq_region /. float_of_int r.Tls.Simstats.region_cycles)
        r.Tls.Simstats.violations)
    [
      ("U (speculate)  ", Tls.Config.u_mode, u);
      ("C (synchronize)", Tls.Config.c_mode, c);
    ]
