type memory_sync =
  | No_memory_sync
  | Profiled of { dep_input : int array; threshold : float }

type compiled = {
  prog : Ir.Prog.t;
  code : Runtime.Code.t;
  selected : Profiler.Profile.loop_key list;
  loop_profile : Profiler.Profile.t;
  dep_profiles : (Profiler.Profile.loop_key * Profiler.Profile.dep_profile) list;
  mem_stats : (Profiler.Profile.loop_key * Memsync.stats) list;
  scalar_infos : (Profiler.Profile.loop_key * Regions.scalar_info list) list;
  unroll_factors : (Profiler.Profile.loop_key * int) list;
  lint_findings : Analysis.Synclint.finding list;
  sched_stats : Analysis.Syncsched.stats;
}

let original ~source = Ir.Lower.compile_source source

let compile ?thresholds ?selection ?(unroll = true) ?(optimize = false)
    ?(eager_signals = true) ?(lint = true) ?(sync_sched = false)
    ?profile_fault ~source ~profile_input ~memory_sync () =
  (* Profile the untransformed program. *)
  let reference = Ir.Lower.compile_source source in
  if optimize then ignore (Ir.Opt.run reference);
  let loop_profile =
    Profiler.Runner.run reference ~input:profile_input ~watch:[]
  in
  let selected =
    match selection with
    | Some keys -> keys
    | None -> Selection.select ?thresholds reference loop_profile
  in
  (* Small-loop unrolling (paper §3.1), applied identically to the
     reference (so dependence profiling sees unrolled epochs) and to the
     program being transformed — lowering and unrolling are deterministic,
     so instruction ids agree between the two compiles. *)
  let unroll_factors =
    List.map
      (fun key ->
        ( key,
          if unroll then Unroll.suggested_factor loop_profile key else 1 ))
      selected
  in
  let apply_unrolling target =
    List.iter
      (fun (key, factor) ->
        if factor > 1 then ignore (Unroll.apply target key ~factor))
      unroll_factors
  in
  apply_unrolling reference;
  let dep_profiles =
    match memory_sync with
    | No_memory_sync -> []
    | Profiled { dep_input; _ } ->
      if selected = [] then []
      else begin
        let p =
          Profiler.Runner.run reference ~input:dep_input ~watch:selected
        in
        List.filter_map
          (fun key ->
            Option.map
              (fun dp -> (key, dp))
              (Profiler.Profile.dep_profile p key))
          selected
      end
  in
  (* Chaos hook: distort the dependence profiles the sync passes consume
     (drop/duplicate/shuffle arcs, stale-train substitution) without
     touching the reference execution. *)
  let dep_profiles =
    match profile_fault with
    | None -> dep_profiles
    | Some f -> List.map (fun (key, dp) -> (key, f dp)) dep_profiles
  in
  (* Transform a fresh compile of the same source. *)
  let prog = Ir.Lower.compile_source source in
  if optimize then ignore (Ir.Opt.run prog);
  apply_unrolling prog;
  let regions_and_infos =
    List.map (fun key -> (key, Regions.create prog key)) selected
  in
  let scalar_infos =
    List.map (fun (key, (_, infos)) -> (key, infos)) regions_and_infos
  in
  let mem_stats =
    match memory_sync with
    | No_memory_sync -> []
    | Profiled { threshold; _ } ->
      List.filter_map
        (fun (key, (region, _)) ->
          match List.assoc_opt key dep_profiles with
          | Some dp ->
            Some (key, Memsync.apply ~eager_signals prog region dp ~threshold)
          | None -> None)
        regions_and_infos
  in
  Ir.Verify.check_exn prog;
  (* Sync scheduling (signal hoisting / wait sinking) runs after both sync
     passes; its points-to analysis stays valid across the reordering, so
     the lint pass reuses it instead of recomputing. *)
  let shared_pt, sched_stats =
    if sync_sched then begin
      let pt = Analysis.Pointsto.analyze prog in
      let stats = Analysis.Syncsched.apply ~pointsto:pt prog in
      Ir.Verify.check_exn prog;
      (Some pt, stats)
    end
    else (None, Analysis.Syncsched.zero)
  in
  let lint_findings =
    if lint then Analysis.Synclint.run_prog ?pointsto:shared_pt ~dep_profiles prog
    else []
  in
  let code = Runtime.Code.of_prog prog in
  {
    prog;
    code;
    selected;
    loop_profile;
    dep_profiles;
    mem_stats;
    scalar_infos;
    unroll_factors;
    lint_findings;
    sched_stats;
  }

(* A compiled artifact's identity for content-addressed caching and
   warm-vs-cold equality checks: the digest of the transformed program's
   canonical pretty-print.  Lowering and the passes are deterministic,
   so two compiles of the same source and configuration always agree —
   the property the serve cache's crash-safety test pins. *)
let artifact_digest (c : compiled) =
  Digest.to_hex (Digest.string (Ir.Pp.program c.prog))
