(* The editing helpers moved to [Ir.Edit] so the analysis layer can rewrite
   IR too; this alias keeps the historical [Tlscore.Edit] path working. *)
include Ir.Edit
