(** Alias of [Ir.Edit] (the helpers moved so [lib/analysis] can use them). *)

include module type of Ir.Edit
