(** End-to-end compilation pipeline (paper §3.1):

    source → lower → loop-profile → select regions → scalar sync
    → (optionally) dependence-profile → memory sync → executable snapshot.

    Profiling and transformation use separate compiles of the same source;
    lowering is deterministic, so instruction ids and labels agree between
    them (mirroring the paper's use of profiles gathered on one binary to
    transform another build of the same program). *)

type memory_sync =
  | No_memory_sync
  (* Profile dependences on this input, synchronize deps above threshold. *)
  | Profiled of { dep_input : int array; threshold : float }

type compiled = {
  prog : Ir.Prog.t;
  code : Runtime.Code.t;
  selected : Profiler.Profile.loop_key list;
  loop_profile : Profiler.Profile.t;
  dep_profiles : (Profiler.Profile.loop_key * Profiler.Profile.dep_profile) list;
  mem_stats : (Profiler.Profile.loop_key * Memsync.stats) list;
  scalar_infos : (Profiler.Profile.loop_key * Regions.scalar_info list) list;
  unroll_factors : (Profiler.Profile.loop_key * int) list;
      (* factor applied per selected loop (1 = left alone) *)
  lint_findings : Analysis.Synclint.finding list;
      (* synclint report on the transformed program (empty when clean or
         when [~lint:false]) *)
  sched_stats : Analysis.Syncsched.stats;
      (* what the sync scheduler moved ({!Analysis.Syncsched.zero} when
         [~sync_sched:false]) *)
}

(** Compile one configuration.
    @param profile_input drives region selection (the paper's automatically
    gathered loop profile).
    @param selection overrides the heuristics (used by tests).
    @param unroll applies the paper's small-loop unrolling (default true);
    dependence profiling then runs on the unrolled program, so epochs and
    frequencies refer to unrolled iterations.
    @param optimize runs the scalar optimizer (fold/copy-prop/DCE) on both
    compiles before any profiling or transformation (default false, so the
    calibrated workload timings are those reported in EXPERIMENTS.md).
    @param eager_signals see {!Memsync.apply} (ablation knob).
    @param lint run {!Analysis.Synclint} on the transformed program and
    report its findings in [lint_findings] (default true; findings never
    abort the compile).
    @param profile_fault distorts each collected dependence profile before
    the memory-sync pass consumes it (the chaos harness's profile-fault
    layer); the reference execution itself is untouched.
    @param sync_sched run {!Analysis.Syncsched} after the sync passes —
    hoist signals toward their value definitions and sink waits toward
    their first uses (default false; off, the generated code is
    byte-identical to previous releases).  The rewritten program is
    re-checked by {!Ir.Verify}, and the lint pass reuses the scheduler's
    points-to analysis.
    The resulting program is always checked by {!Ir.Verify}. *)
val compile :
  ?thresholds:Selection.thresholds ->
  ?selection:Profiler.Profile.loop_key list ->
  ?unroll:bool ->
  ?optimize:bool ->
  ?eager_signals:bool ->
  ?lint:bool ->
  ?sync_sched:bool ->
  ?profile_fault:
    (Profiler.Profile.dep_profile -> Profiler.Profile.dep_profile) ->
  source:string ->
  profile_input:int array ->
  memory_sync:memory_sync ->
  unit ->
  compiled

(** The untransformed program of the same source (sequential reference). *)
val original : source:string -> Ir.Prog.t

(** Deterministic identity of a compiled artifact (MD5 of the canonical
    program pretty-print).  Two compiles of the same source and
    configuration always produce the same digest; the serve layer keys
    its content-addressed artifact cache and its crash-safety
    (warm-vs-cold byte-equality) checks on it. *)
val artifact_digest : compiled -> string
