type kind =
  | Drop_signal
  | Drop_wait
  | Duplicate_signal
  | Retarget_channel
  | Foreign_signal

type applied = {
  prog : Ir.Prog.t;
  channel : Ir.Instr.channel;
  scalar : bool;
}

let kinds =
  [
    ("drop-signal", Drop_signal);
    ("drop-wait", Drop_wait);
    ("dup-signal", Duplicate_signal);
    ("retarget-channel", Retarget_channel);
    ("foreign-signal", Foreign_signal);
  ]

let kind_name k = fst (List.find (fun (_, k') -> k' = k) kinds)

let is_mem_signal_on ch (i : Ir.Instr.t) =
  match i.Ir.Instr.kind with
  | Ir.Instr.Signal_mem (c, _)
  | Ir.Instr.Signal_mem_if_unsent (c, _)
  | Ir.Instr.Signal_null c
  | Ir.Instr.Signal_null_if_unsent c ->
    c = ch
  | _ -> false

let is_scalar_signal_on ch (i : Ir.Instr.t) =
  match i.Ir.Instr.kind with
  | Ir.Instr.Signal_scalar (c, _) -> c = ch
  | _ -> false

let is_wait_mem_on ch (i : Ir.Instr.t) =
  match i.Ir.Instr.kind with
  | Ir.Instr.Wait_mem c -> c = ch
  | _ -> false

let exists_instr (prog : Ir.Prog.t) pred =
  List.exists
    (fun (_, f) ->
      Array.exists
        (fun (b : Ir.Func.block) -> List.exists pred b.Ir.Func.instrs)
        f.Ir.Func.blocks)
    prog.Ir.Prog.funcs

let remove_instrs (prog : Ir.Prog.t) pred =
  List.iter
    (fun (_, f) ->
      Array.iter
        (fun (b : Ir.Func.block) ->
          b.Ir.Func.instrs <-
            List.filter (fun i -> not (pred i)) b.Ir.Func.instrs)
        f.Ir.Func.blocks)
    prog.Ir.Prog.funcs

(* Channels in deterministic program order. *)
let mem_channels (prog : Ir.Prog.t) =
  List.concat_map
    (fun (r : Ir.Region.t) ->
      List.map (fun (mg : Ir.Region.mem_group) -> mg.Ir.Region.mg_id)
        r.Ir.Region.mem_groups)
    prog.Ir.Prog.regions

let scalar_channels (prog : Ir.Prog.t) =
  List.concat_map
    (fun (r : Ir.Region.t) ->
      List.map (fun (sc : Ir.Region.scalar_channel) -> sc.Ir.Region.sc_id)
        r.Ir.Region.scalar_channels)
    prog.Ir.Prog.regions

let first_channel_matching prog channels pred =
  List.find_opt (fun ch -> exists_instr prog (pred ch)) channels

let apply kind prog0 =
  let prog = Ir.Prog.clone prog0 in
  match kind with
  | Drop_signal -> begin
    (* Prefer a memory channel; dropping means removing every signal on
       the channel, NULL forms included, so no path releases the
       consumer. *)
    match first_channel_matching prog (mem_channels prog) is_mem_signal_on with
    | Some ch ->
      remove_instrs prog (is_mem_signal_on ch);
      Some { prog; channel = ch; scalar = false }
    | None -> begin
      match
        first_channel_matching prog (scalar_channels prog) is_scalar_signal_on
      with
      | Some ch ->
        remove_instrs prog (is_scalar_signal_on ch);
        Some { prog; channel = ch; scalar = true }
      | None -> None
    end
  end
  | Drop_wait -> begin
    match first_channel_matching prog (mem_channels prog) is_wait_mem_on with
    | Some ch ->
      remove_instrs prog (is_wait_mem_on ch);
      Some { prog; channel = ch; scalar = false }
    | None -> None
  end
  | Duplicate_signal -> begin
    (* Duplicate the first unconditional Signal_mem, right after itself. *)
    let found = ref None in
    List.iter
      (fun ((fname : string), (f : Ir.Func.t)) ->
        Array.iter
          (fun (b : Ir.Func.block) ->
            if !found = None then
              match
                List.find_opt
                  (fun (i : Ir.Instr.t) ->
                    match i.Ir.Instr.kind with
                    | Ir.Instr.Signal_mem _ -> true
                    | _ -> false)
                  b.Ir.Func.instrs
              with
              | Some i ->
                let dup =
                  {
                    i with
                    Ir.Instr.iid =
                      Ir.Prog.fresh_iid prog ~in_func:fname
                        ~what:"chaos duplicate signal";
                  }
                in
                b.Ir.Func.instrs <-
                  List.concat_map
                    (fun j -> if j == i then [ j; dup ] else [ j ])
                    b.Ir.Func.instrs;
                found := Some i
              | None -> ())
          f.Ir.Func.blocks)
      prog.Ir.Prog.funcs;
    match !found with
    | Some i -> begin
      match Ir.Instr.channel_of i with
      | Some ch -> Some { prog; channel = ch; scalar = false }
      | None -> None
    end
    | None -> None
  end
  | Retarget_channel -> begin
    match first_channel_matching prog (mem_channels prog) is_mem_signal_on with
    | Some victim -> begin
      match List.find_opt (fun ch -> ch <> victim) (mem_channels prog) with
      | Some target ->
        List.iter
          (fun (_, (f : Ir.Func.t)) ->
            Array.iter
              (fun (b : Ir.Func.block) ->
                b.Ir.Func.instrs <-
                  List.map
                    (fun (i : Ir.Instr.t) ->
                      if is_mem_signal_on victim i then
                        let kind =
                          match i.Ir.Instr.kind with
                          | Ir.Instr.Signal_mem (_, a) ->
                            Ir.Instr.Signal_mem (target, a)
                          | Ir.Instr.Signal_mem_if_unsent (_, a) ->
                            Ir.Instr.Signal_mem_if_unsent (target, a)
                          | Ir.Instr.Signal_null _ ->
                            Ir.Instr.Signal_null target
                          | Ir.Instr.Signal_null_if_unsent _ ->
                            Ir.Instr.Signal_null_if_unsent target
                          | k -> k
                        in
                        { i with Ir.Instr.kind }
                      else i)
                    b.Ir.Func.instrs)
              f.Ir.Func.blocks)
          prog.Ir.Prog.funcs;
        Some { prog; channel = victim; scalar = false }
      | None -> None
    end
    | None -> None
  end
  | Foreign_signal -> begin
    (* Inject a signal the region does not own at the top of its body:
       another region's channel when one exists, else a fresh id. *)
    match prog.Ir.Prog.regions with
    | [] -> None
    | (r : Ir.Region.t) :: rest ->
      let foreign =
        let of_region (r' : Ir.Region.t) =
          List.map
            (fun (mg : Ir.Region.mem_group) -> mg.Ir.Region.mg_id)
            r'.Ir.Region.mem_groups
          @ List.map
              (fun (sc : Ir.Region.scalar_channel) -> sc.Ir.Region.sc_id)
              r'.Ir.Region.scalar_channels
        in
        match List.concat_map of_region rest with
        | ch :: _ -> ch
        | [] -> Ir.Prog.fresh_channel prog
      in
      let f = Ir.Prog.func prog r.Ir.Region.func in
      let b = f.Ir.Func.blocks.(r.Ir.Region.header) in
      let inj =
        {
          Ir.Instr.iid =
            Ir.Prog.fresh_iid prog ~in_func:r.Ir.Region.func
              ~what:"chaos foreign signal";
          kind = Ir.Instr.Signal_null foreign;
        }
      in
      b.Ir.Func.instrs <- inj :: b.Ir.Func.instrs;
      Some { prog; channel = foreign; scalar = false }
  end
