(** IR-layer faults: structural mutations of a compiled (synchronized)
    program — the same mutation shapes synclint's static detectors are
    built around, applied for real so the dynamic outcome can be checked
    against the static prediction.

    [apply] works on a {!Ir.Prog.clone} of its argument, so the input
    program is never modified.  Target channels are chosen
    deterministically (first region, first channel with matching
    instructions), keeping every run reproducible. *)

type kind =
  | Drop_signal
      (** Delete every signal on one channel (memory channels preferred,
          scalar as fallback).  Detectable: a consumer on the committed
          path deadlocks once its predecessor commits without signaling. *)
  | Drop_wait
      (** Delete every [Wait_mem] on one memory channel, leaving its
          [Sync_load]s.  Detectable under [Forward_normal] via the
          simulator's protocol check ({e Stuck}/[Missing_wait]). *)
  | Duplicate_signal
      (** Duplicate an unconditional [Signal_mem].  Absorbable: the second
          signal overwrites the first, violating the consumer if it
          already used the value. *)
  | Retarget_channel
      (** Redirect all signals of one memory channel onto another.
          Detectable: the original channel's consumer starves. *)
  | Foreign_signal
      (** Inject a signal on a channel the region does not own (another
          region's, or a fresh id).  Absorbable: epochs ignore channels
          outside their region. *)

(** What a successful application did. *)
type applied = {
  prog : Ir.Prog.t;                (* the mutated clone *)
  channel : Ir.Instr.channel;      (* the channel that was attacked *)
  scalar : bool;                   (* true if it was a scalar channel *)
}

(** CLI names, e.g. [("drop-signal", Drop_signal)]. *)
val kinds : (string * kind) list

val kind_name : kind -> string

(** [None] when the program has no applicable site (e.g. no second memory
    channel to retarget onto). *)
val apply : kind -> Ir.Prog.t -> applied option
