type t =
  | Drop_arcs of { seed : int }
  | Duplicate_arcs of { seed : int }
  | Shuffle_arcs of { seed : int }

let name = function
  | Drop_arcs _ -> "drop-arcs"
  | Duplicate_arcs _ -> "dup-arcs"
  | Shuffle_arcs _ -> "shuffle-arcs"

let copy (dp : Profiler.Profile.dep_profile) =
  {
    Profiler.Profile.total_epochs = dp.Profiler.Profile.total_epochs;
    dep_epochs = Hashtbl.copy dp.Profiler.Profile.dep_epochs;
    load_dep_epochs = Hashtbl.copy dp.Profiler.Profile.load_dep_epochs;
    distances = Hashtbl.copy dp.Profiler.Profile.distances;
  }

(* Arcs in a stable order: hash-table iteration order must never leak
   into which arcs a seed selects. *)
let sorted_arcs (dp : Profiler.Profile.dep_profile) =
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) dp.Profiler.Profile.dep_epochs []
  |> List.sort compare

let apply t dp =
  let out = copy dp in
  let arcs = sorted_arcs dp in
  (match t with
  | Drop_arcs { seed } ->
    let rng = Support.Rng.of_int seed in
    List.iter
      (fun (dep, _) ->
        if Support.Rng.chance rng 1 2 then
          Hashtbl.remove out.Profiler.Profile.dep_epochs dep)
      arcs
  | Duplicate_arcs { seed } ->
    let rng = Support.Rng.of_int seed in
    let n = List.length arcs in
    if n > 0 then begin
      let arr = Array.of_list arcs in
      for _ = 1 to min 3 n do
        let { Profiler.Profile.producer; _ }, _ =
          arr.(Support.Rng.int rng n)
        in
        let { Profiler.Profile.consumer; _ }, _ =
          arr.(Support.Rng.int rng n)
        in
        let dep = { Profiler.Profile.producer; consumer } in
        if not (Hashtbl.mem out.Profiler.Profile.dep_epochs dep) then
          (* Maximally frequent, so the sync pass is sure to act on it. *)
          Hashtbl.replace out.Profiler.Profile.dep_epochs dep
            (max 1 dp.Profiler.Profile.total_epochs)
      done
    end
  | Shuffle_arcs { seed } ->
    let rng = Support.Rng.of_int seed in
    let counts = Array.of_list (List.map snd arcs) in
    Support.Rng.shuffle rng counts;
    List.iteri
      (fun i (dep, _) ->
        Hashtbl.replace out.Profiler.Profile.dep_epochs dep counts.(i))
      arcs);
  out
