let generate ~seed =
  let rng = Support.Rng.of_int (0x9e3779b9 + seed) in
  let trips = Support.Rng.range rng 12 40 in
  let work_len = Support.Rng.range rng 6 18 in
  let chain_mod = List.nth [ 53; 61; 97 ] (Support.Rng.int rng 3) in
  let stride = if Support.Rng.chance rng 1 2 then 4 else 8 in
  let slots = Support.Rng.range rng 2 6 in
  let cond_period = Support.Rng.range rng 2 5 in
  let cond_chain = Support.Rng.chance rng 1 2 in
  let second_chain = Support.Rng.chance rng 1 2 in
  let call_wrapper = Support.Rng.chance rng 1 2 in
  let with_break = Support.Rng.chance rng 1 3 in
  let break_residue = Support.Rng.int rng 251 in
  let input_len = Support.Rng.range rng 8 16 in
  let input = Array.init input_len (fun _ -> Support.Rng.int rng 1000) in
  let b = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "int A[256];\n";
  pr "int B[64];\n";
  pr "int g;\n";
  pr "int h;\n";
  pr "int work(int x) {\n";
  pr "  int j; int t;\n";
  pr "  t = x;\n";
  pr "  for (j = 0; j < %d + x %% 7; j = j + 1) {\n" work_len;
  pr "    t = t + ((t << 1) ^ j) %% %d;\n" chain_mod;
  pr "  }\n";
  pr "  return t;\n";
  pr "}\n";
  if call_wrapper then begin
    pr "int step(int x, int y) {\n";
    pr "  return work(x) + work(y) %% 19;\n";
    pr "}\n"
  end;
  pr "void fill(int n) {\n";
  pr "  int i;\n";
  pr "  for (i = 0; i < 64; i = i + 1) {\n";
  pr "    B[i] = in(i %% n) %% 100 + 1;\n";
  pr "  }\n";
  pr "}\n";
  pr "void main() {\n";
  pr "  int i; int v; int k; int n;\n";
  pr "  n = inlen();\n";
  pr "  fill(n);\n";
  pr "  for (i = 0; i < %d; i = i + 1) {\n" trips;
  pr "    v = g;\n";
  pr "    k = B[i %% 64] %% %d;\n" slots;
  let call = if call_wrapper then "step(v + i, i)" else "work(v + i)" in
  pr "    A[k * %d] = A[k * %d] + %s %% 31;\n" stride stride call;
  if cond_chain then
    pr "    if (i %% %d == 0) { g = v + i %% 13 + 1; }\n" cond_period
  else pr "    g = v + i %% 13 + 1;\n";
  if second_chain then pr "    h = h + A[(i * 7) %% 256];\n";
  if with_break then
    pr "    if (work(i) %% 251 == %d) { break; }\n" break_residue;
  pr "  }\n";
  pr "  print(g);\n";
  pr "  print(h);\n";
  pr "  print(A[0]);\n";
  pr "  print(A[%d]);\n" stride;
  pr "  print(B[3]);\n";
  pr "}\n";
  (Buffer.contents b, input)
