(** Runtime-layer chaos for the real speculative executor ([chaos
    --exec], DESIGN §16).

    Crosses programs with the {!Specrt.fault} catalog and classifies
    each cell with the simulator matrix's discipline: absorbable faults
    (bounded commit delay, stolen timeslices, dropped forwarding-cell
    wakeups, transient epoch crashes) must leave output and final memory
    byte-identical to sequential execution; detectable faults (a commit
    delay past the watchdog, a persistently crashing epoch) must end in
    the matching typed error — never a hang, never a process death.

    The rendered table is byte-deterministic despite real concurrency:
    outcomes depend only on committed state and typed errors, which the
    runtime guarantees independent of scheduling. *)

type cell = {
  x_program : string;
  x_fault : string;            (* "none" for the baseline *)
  x_detectable : bool;
  x_outcome : Chaos.outcome;
}

(** Baseline plus every catalog fault for one program, in catalog
    order.  [log] receives one progress line per cell. *)
val run_program : ?log:(string -> unit) -> Chaos.program -> cell list

(** {!run_program} over many programs, cells in program order. *)
val run_matrix : ?log:(string -> unit) -> Chaos.program list -> cell list

(** Program × fault outcome grid, FAILED detail lines, and a tally. *)
val render_table : cell list -> string

val count_failed : cell list -> int
