(** The fault catalog: every injectable fault with its contract.

    [Absorbable] faults must leave TLS execution sequentially equivalent —
    the architectural recovery paths (signal address buffer, NULL-signal
    fallback, violation detection, in-order commit) have to absorb them.
    [Detectable] faults break the synchronization protocol itself; the
    system must terminate promptly with a typed diagnostic
    ({!Tls.Sim.Stuck} or {!Tls.Sim.Deadlock}), never hang to the cycle
    budget.  A detectable fault that lands on a discarded epoch, or in a
    mode that does not honor the broken mechanism, is legitimately
    absorbed instead. *)

type classification = Absorbable | Detectable

type plan =
  | No_fault
  | Profile_fault of Proffault.t     (* distort the dependence profile *)
  | Stale_train                      (* profile on train, run on ref *)
  | Ir_fault of Irfault.kind         (* mutate the synchronized IR *)
  | Sim_fault of Tls.Config.sim_fault  (* corrupt the machine itself *)

type spec = {
  name : string;                     (* CLI / table name *)
  classification : classification;
  plan : plan;
}

val classification_name : classification -> string

(** All faults, profile layer first, then IR, then simulator. *)
val catalog : spec list

val find : string -> spec option
