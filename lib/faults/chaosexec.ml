(* Runtime-layer chaos: the fault catalog of the *real* speculative
   executor (DESIGN §16), classified with the same absorbable/detectable
   discipline as the simulator matrix in Chaos.

   Each cell runs [Specrt.run] on a compiled program with one injected
   runtime fault and classifies the outcome:
   - absorbable faults (bounded commit delay, stolen timeslices, a
     dropped forwarding-cell wakeup, a transient epoch crash) must end
     with output and final memory byte-identical to sequential
     execution — [Absorbed];
   - detectable faults (a commit delay past the watchdog, a persistent
     epoch crash) must end in the matching typed error — [Detected]
     with the constructor name, never a hang or a process death.

   The rendered table is byte-deterministic even though the runs race
   for real: outcomes classify committed state and typed errors, both
   of which the runtime guarantees independent of scheduling, and the
   Detected detail deliberately drops the (scheduling-dependent)
   diagnostic payload. *)

type cell = {
  x_program : string;
  x_fault : string;            (* "none" for the baseline *)
  x_detectable : bool;
  x_outcome : Chaos.outcome;
}

(* Watchdog/budget chosen so detectable cells trip their typed error in
   well under a second while absorbable cells have generous headroom. *)
let watchdog_ms = 5_000

type armed = {
  a_name : string;
  a_detectable : bool;
  a_faults : Specrt.fault list;
  a_watchdog_ms : int;
  a_max_aborts : int;
}

let catalog =
  [
    { a_name = "delay-commit"; a_detectable = false;
      a_faults = [ Specrt.Delay_commit { epoch = 0; ms = 60 } ];
      a_watchdog_ms = watchdog_ms; a_max_aborts = 64 };
    { a_name = "delay-commit-hang"; a_detectable = true;
      (* A delay far past the watchdog: must surface as Specrt_stuck. *)
      a_faults = [ Specrt.Delay_commit { epoch = 0; ms = 120_000 } ];
      a_watchdog_ms = 400; a_max_aborts = 64 };
    { a_name = "stolen-timeslice"; a_detectable = false;
      a_faults = [ Specrt.Yield_steps { epoch = 1; every = 3 } ];
      a_watchdog_ms = watchdog_ms; a_max_aborts = 64 };
    { a_name = "drop-wakeup"; a_detectable = false;
      a_faults = [ Specrt.Drop_wakeup { epoch = 1; channel = 0 } ];
      a_watchdog_ms = watchdog_ms; a_max_aborts = 64 };
    { a_name = "crash-transient"; a_detectable = false;
      a_faults = [ Specrt.Crash_epoch { epoch = 1; persistent = false } ];
      a_watchdog_ms = watchdog_ms; a_max_aborts = 64 };
    { a_name = "crash-persistent"; a_detectable = true;
      (* Every retry crashes: must exhaust the budget as the typed
         Abort_exhausted, never livelock. *)
      a_faults = [ Specrt.Crash_epoch { epoch = 1; persistent = true } ];
      a_watchdog_ms = watchdog_ms; a_max_aborts = 6 };
  ]

let baseline =
  { a_name = "none"; a_detectable = false; a_faults = [];
    a_watchdog_ms = watchdog_ms; a_max_aborts = 64 }

let compile (p : Chaos.program) =
  let selection =
    if not p.Chaos.p_select_main then None
    else
      let prog = Tlscore.Pipeline.original ~source:p.Chaos.p_source in
      Some
        (List.filter
           (fun k -> String.equal k.Profiler.Profile.lk_func "main")
           (Profiler.Runner.all_loops prog))
  in
  Tlscore.Pipeline.compile ?selection ~lint:false ~source:p.Chaos.p_source
    ~profile_input:p.Chaos.p_train
    ~memory_sync:
      (Tlscore.Pipeline.Profiled
         { dep_input = p.Chaos.p_train; threshold = 0.05 })
    ()

let sequential_ref (code : Runtime.Code.t) input =
  let mem = Runtime.Memory.create () in
  Runtime.Memory.store_all mem code.Runtime.Code.initial_stores;
  let out = Runtime.Thread.run_sequential code ~input mem in
  (out, mem)

let classify (a : armed) cfg code input =
  let opts =
    {
      (Specrt.default_opts cfg) with
      Specrt.domains = 4;
      watchdog_ms = a.a_watchdog_ms;
      max_aborts = a.a_max_aborts;
      faults = a.a_faults;
    }
  in
  match Specrt.run ~opts cfg code ~input with
  | r ->
    if a.a_detectable then
      Chaos.Failed "detectable fault was silently absorbed"
    else begin
      let seq_out, seq_mem = sequential_ref code input in
      if
        r.Specrt.r_output = seq_out
        && Runtime.Memory.equal seq_mem r.Specrt.r_final_memory
      then if a.a_faults = [] then Chaos.Passed else Chaos.Absorbed
      else Chaos.Failed "exec output/memory differs from sequential"
    end
  | exception Specrt.Specrt_stuck _ ->
    if a.a_detectable then Chaos.Detected "Specrt_stuck"
    else Chaos.Failed "absorbable fault wedged the runtime (Specrt_stuck)"
  | exception Specrt.Abort_exhausted _ ->
    if a.a_detectable then Chaos.Detected "Abort_exhausted"
    else Chaos.Failed "absorbable fault exhausted the abort budget"
  | exception Specrt.Exec_deadlock msg ->
    Chaos.Failed ("exec deadlock: " ^ msg)

let run_program ?(log = ignore) (p : Chaos.program) =
  let compiled = compile p in
  let code = compiled.Tlscore.Pipeline.code in
  let cfg = Tls.Config.c_mode in
  List.map
    (fun a ->
      let outcome = classify a cfg code p.Chaos.p_train in
      let cell =
        {
          x_program = p.Chaos.p_name;
          x_fault = a.a_name;
          x_detectable = a.a_detectable;
          x_outcome = outcome;
        }
      in
      log
        (Printf.sprintf "exec-chaos %-12s %-18s %s" p.Chaos.p_name a.a_name
           (match outcome with
           | Chaos.Passed -> "PASSED"
           | Chaos.Absorbed -> "ABSORBED"
           | Chaos.Detected d -> "DETECTED " ^ d
           | Chaos.Skipped -> "SKIPPED"
           | Chaos.Failed f -> "FAILED " ^ f));
      cell)
    (baseline :: catalog)

let run_matrix ?log programs =
  List.concat_map (fun p -> run_program ?log p) programs

let outcome_name = function
  | Chaos.Passed -> "passed"
  | Chaos.Absorbed -> "absorbed"
  | Chaos.Detected _ -> "detected"
  | Chaos.Skipped -> "skipped"
  | Chaos.Failed _ -> "FAILED"

let count_failed cells =
  List.length
    (List.filter
       (fun c -> match c.x_outcome with Chaos.Failed _ -> true | _ -> false)
       cells)

let render_table cells =
  let b = Buffer.create 1024 in
  let faults = List.map (fun a -> a.a_name) (baseline :: catalog) in
  Buffer.add_string b (Printf.sprintf "%-14s" "program");
  List.iter (fun f -> Buffer.add_string b (Printf.sprintf " %-18s" f)) faults;
  Buffer.add_char b '\n';
  let programs =
    List.sort_uniq compare (List.map (fun c -> c.x_program) cells)
  in
  List.iter
    (fun p ->
      Buffer.add_string b (Printf.sprintf "%-14s" p);
      List.iter
        (fun f ->
          let o =
            match
              List.find_opt
                (fun c -> c.x_program = p && c.x_fault = f)
                cells
            with
            | Some c -> outcome_name c.x_outcome
            | None -> "-"
          in
          Buffer.add_string b (Printf.sprintf " %-18s" o))
        faults;
      Buffer.add_char b '\n')
    programs;
  List.iter
    (fun c ->
      match c.x_outcome with
      | Chaos.Failed why ->
        Buffer.add_string b
          (Printf.sprintf "FAILED: %s / %s: %s\n" c.x_program c.x_fault why)
      | _ -> ())
    cells;
  Buffer.add_string b
    (Printf.sprintf "cells: %d, failed: %d\n" (List.length cells)
       (count_failed cells));
  Buffer.contents b
