type program = {
  p_name : string;
  p_source : string;
  p_train : int array;
  p_ref : int array;
  p_select_main : bool;
}

type outcome =
  | Passed
  | Absorbed
  | Detected of string
  | Skipped
  | Failed of string

type cell = {
  c_program : string;
  c_mode : string;
  c_fault : string;
  c_class : Fault.classification option;
  c_outcome : outcome;
}

let default_modes =
  [
    ("U", Tls.Config.u_mode);
    ("C", Tls.Config.c_mode);
    ("H", Tls.Config.h_mode);
    ("B", Tls.Config.b_mode);
  ]

let seq_output source input =
  let prog = Tlscore.Pipeline.original ~source in
  let code = Runtime.Code.of_prog prog in
  let mem = Runtime.Memory.create () in
  Runtime.Thread.run_sequential code ~input mem

let compile ?profile_fault ?(sync_sched = false) p =
  let selection =
    if not p.p_select_main then None
    else
      let prog = Tlscore.Pipeline.original ~source:p.p_source in
      Some
        (List.filter
           (fun k -> String.equal k.Profiler.Profile.lk_func "main")
           (Profiler.Runner.all_loops prog))
  in
  Tlscore.Pipeline.compile ?selection ?profile_fault ~lint:false ~sync_sched
    ~source:p.p_source ~profile_input:p.p_train
    ~memory_sync:
      (Tlscore.Pipeline.Profiled { dep_input = p.p_train; threshold = 0.05 })
    ()

(* Whether a fault's injection sites are even reachable under [cfg]:
   profile distortions and the signal-path simulator faults only matter
   when the simulator honors compiler-inserted memory synchronization. *)
let fault_applies cfg (spec : Fault.spec) =
  let stall = cfg.Tls.Config.stall_compiler_sync in
  match spec.Fault.plan with
  | Fault.No_fault | Fault.Ir_fault _ -> true
  | Fault.Profile_fault _ | Fault.Stale_train -> stall
  | Fault.Sim_fault (Tls.Config.Spurious_violation _) -> true
  | Fault.Sim_fault _ -> stall

type run_kind = Baseline | Faulty of Fault.classification

(* Run one simulation and classify it.  The classification is empirical:
   a detectable fault that completes with the right output was
   legitimately absorbed (discarded epoch, unexercised site); what it can
   never do is produce wrong output or hang. *)
let evaluate ~kind ~expected ?(armed = fun _ -> true) run =
  match run () with
  | r ->
    if not (armed r) then Skipped
    else if r.Tls.Simstats.output = expected then
      match kind with Baseline -> Passed | Faulty _ -> Absorbed
    else Failed "output differs from sequential reference"
  | exception Tls.Sim.Deadlock msg -> (
    match kind with
    | Faulty Fault.Detectable -> Detected ("deadlock: " ^ msg)
    | _ -> Failed ("unexpected deadlock: " ^ msg))
  | exception Tls.Sim.Stuck d -> (
    let msg = Tls.Sim.describe_stuck d in
    match kind with
    | Faulty Fault.Detectable -> Detected msg
    | _ -> Failed ("unexpected stuck: " ^ msg))
  | exception Tls.Sim.Cycle_limit { cycle; _ } ->
    Failed
      (Printf.sprintf "hang: cycle budget hit at cycle %d (watchdog missed it)"
         cycle)
  | exception e -> Failed (Printexc.to_string e)

let run_program ?(log = fun _ -> ()) ?watchdog ?(sync_sched = false) ~modes
    ~faults p =
  let tune cfg =
    match watchdog with
    | None -> cfg
    | Some w -> { cfg with Tls.Config.watchdog_window = w }
  in
  let seq_train = seq_output p.p_source p.p_train in
  let seq_ref = lazy (seq_output p.p_source p.p_ref) in
  let base = compile ~sync_sched p in
  (* Shared across modes: profile-fault recompiles and IR mutations are
     mode-independent, so build each at most once per program. *)
  let profile_compiles : (string, (Tlscore.Pipeline.compiled, string) result) Hashtbl.t =
    Hashtbl.create 4
  in
  let compile_faulty name pf =
    match Hashtbl.find_opt profile_compiles name with
    | Some r -> r
    | None ->
      let r =
        try Ok (compile ~profile_fault:(Proffault.apply pf) ~sync_sched p)
        with e -> Error ("compile: " ^ Printexc.to_string e)
      in
      Hashtbl.replace profile_compiles name r;
      r
  in
  let ir_mutants : (string, Runtime.Code.t option) Hashtbl.t =
    Hashtbl.create 8
  in
  let mutate name kind =
    match Hashtbl.find_opt ir_mutants name with
    | Some r -> r
    | None ->
      let r =
        match Irfault.apply kind base.Tlscore.Pipeline.prog with
        | None -> None
        | Some a -> Some (Runtime.Code.of_prog a.Irfault.prog)
      in
      Hashtbl.replace ir_mutants name r;
      r
  in
  let cell ~mode ~fault ~cls outcome =
    { c_program = p.p_name; c_mode = mode; c_fault = fault; c_class = cls;
      c_outcome = outcome }
  in
  let run_mode (mode_name, cfg0) =
    let cfg = tune cfg0 in
    let run_code ?(cfg = cfg) ?(input = p.p_train) code () =
      Tls.Sim.run cfg code ~input ()
    in
    let baseline =
      cell ~mode:mode_name ~fault:"none" ~cls:None
        (evaluate ~kind:Baseline ~expected:seq_train
           (run_code base.Tlscore.Pipeline.code))
    in
    let fault_cell (spec : Fault.spec) =
      let cls = Some spec.Fault.classification in
      let kind = Faulty spec.Fault.classification in
      let mk = cell ~mode:mode_name ~fault:spec.Fault.name ~cls in
      if not (fault_applies cfg spec) then mk Skipped
      else
        match spec.Fault.plan with
        | Fault.No_fault ->
          mk
            (evaluate ~kind ~expected:seq_train
               (run_code base.Tlscore.Pipeline.code))
        | Fault.Profile_fault pf -> (
          match compile_faulty spec.Fault.name pf with
          | Error msg -> mk (Failed msg)
          | Ok compiled ->
            mk
              (evaluate ~kind ~expected:seq_train
                 (run_code compiled.Tlscore.Pipeline.code)))
        | Fault.Stale_train ->
          (* Same artifact, trained on p_train, run on p_ref: the profile
             is stale by construction. *)
          mk
            (evaluate ~kind ~expected:(Lazy.force seq_ref)
               (run_code ~input:p.p_ref base.Tlscore.Pipeline.code))
        | Fault.Ir_fault k -> (
          match mutate spec.Fault.name k with
          | None -> mk Skipped
          | Some code -> mk (evaluate ~kind ~expected:seq_train (run_code code)))
        | Fault.Sim_fault f ->
          let cfg = { cfg with Tls.Config.sim_faults = [ f ] } in
          mk
            (evaluate ~kind ~expected:seq_train
               ~armed:(fun r -> r.Tls.Simstats.faults_fired > 0)
               (run_code ~cfg base.Tlscore.Pipeline.code))
    in
    baseline :: List.map fault_cell faults
  in
  let cells = List.concat_map run_mode modes in
  let failed =
    List.length
      (List.filter (fun c -> match c.c_outcome with Failed _ -> true | _ -> false)
         cells)
  in
  log
    (Printf.sprintf "%-12s %d cells%s" p.p_name (List.length cells)
       (if failed = 0 then "" else Printf.sprintf ", %d FAILED" failed));
  cells

(* [map] lets the caller plug in a parallel order-preserving mapper
   (e.g. Harness.Jobs).  Per-program log lines are collected inside each
   job and replayed in program order once the whole matrix is done, so
   the bytes sent to [log] are identical whatever mapper runs the cells
   — the property the determinism suite pins. *)
let run_matrix ?(log = fun _ -> ()) ?(map = fun f l -> List.map f l) ?watchdog
    ?sync_sched ~modes ~faults programs =
  let per_program =
    map
      (fun p ->
        let lines = ref [] in
        let cells =
          run_program
            ~log:(fun s -> lines := s :: !lines)
            ?watchdog ?sync_sched ~modes ~faults p
        in
        (List.rev !lines, cells))
      programs
  in
  List.iter (fun (lines, _) -> List.iter log lines) per_program;
  List.concat_map snd per_program

let fuzz_programs ~count ~seed =
  List.init count (fun i ->
      let s = seed + i in
      let source, input = Proggen.generate ~seed:s in
      {
        p_name = Printf.sprintf "gen-%d" s;
        p_source = source;
        p_train = input;
        p_ref = input;
        p_select_main = true;
      })

let count_failed cells =
  List.length
    (List.filter
       (fun c -> match c.c_outcome with Failed _ -> true | _ -> false)
       cells)

(* ------------------------------------------------------------------ *)
(* Capacity sweep: finite-resource degradation (DESIGN §12)            *)
(* ------------------------------------------------------------------ *)

type capacity_axis =
  | Cap_sig_buffer
  | Cap_spec_stall
  | Cap_spec_squash
  | Cap_fwd_queue

let capacity_axes =
  [ Cap_sig_buffer; Cap_spec_stall; Cap_spec_squash; Cap_fwd_queue ]

let axis_name = function
  | Cap_sig_buffer -> "sig-buffer"
  | Cap_spec_stall -> "spec-lines/stall"
  | Cap_spec_squash -> "spec-lines/squash"
  | Cap_fwd_queue -> "fwd-queue"

type capacity_cell = {
  cc_program : string;
  cc_mode : string;
  cc_axis : capacity_axis;
  cc_peak : int;
  cc_limit : int;
  cc_events : int;
  cc_outcome : outcome;
}

let apply_axis axis limit cfg =
  match axis with
  | Cap_sig_buffer -> { cfg with Tls.Config.sig_buffer_entries = limit }
  | Cap_spec_stall ->
    {
      cfg with
      Tls.Config.spec_lines_per_epoch = limit;
      overflow_policy = Tls.Config.Overflow_stall;
    }
  | Cap_spec_squash ->
    {
      cfg with
      Tls.Config.spec_lines_per_epoch = limit;
      overflow_policy = Tls.Config.Overflow_squash;
    }
  | Cap_fwd_queue -> { cfg with Tls.Config.fwd_queue_depth = limit }

let axis_peak axis (r : Tls.Simstats.result) =
  match axis with
  | Cap_sig_buffer -> r.Tls.Simstats.max_signal_buffer
  | Cap_spec_stall | Cap_spec_squash ->
    r.Tls.Simstats.resources.Tls.Simstats.rs_peak_spec_lines
  | Cap_fwd_queue -> r.Tls.Simstats.resources.Tls.Simstats.rs_peak_fwd_queue

let axis_events axis (r : Tls.Simstats.result) =
  match axis with
  | Cap_sig_buffer -> r.Tls.Simstats.resources.Tls.Simstats.rs_sig_drops
  | Cap_spec_stall | Cap_spec_squash ->
    r.Tls.Simstats.resources.Tls.Simstats.rs_spec_overflows
  | Cap_fwd_queue -> r.Tls.Simstats.resources.Tls.Simstats.rs_bp_signals

(* One run under [limit] on [axis].  The absorbable axes (signal-buffer
   drops degrade forwarding to the violation-protected NULL path;
   speculative-state overflow stalls or squashes) must stay sequentially
   equivalent under any limit.  The forwarding-queue axis is detectable:
   a backpressure cycle must surface as the typed
   {!Tls.Sim.Resource_deadlock} (or the watchdog's {!Tls.Sim.Stuck}),
   never as a hang that reaches the cycle budget. *)
let probe_axis ~expected ~cfg ~code ~input axis limit =
  let cfg = apply_axis axis limit cfg in
  match Tls.Sim.run cfg code ~input () with
  | r ->
    let events = axis_events axis r in
    let outcome =
      if events = 0 then Skipped
      else if r.Tls.Simstats.output = expected then Absorbed
      else Failed "output differs from sequential reference"
    in
    (events, outcome)
  | exception Tls.Sim.Resource_deadlock d -> (
    let msg = Tls.Sim.describe_resource_deadlock d in
    match axis with
    | Cap_fwd_queue -> (1, Detected msg)
    | _ -> (1, Failed ("unexpected resource deadlock: " ^ msg)))
  | exception Tls.Sim.Stuck d -> (
    let msg = Tls.Sim.describe_stuck d in
    match axis with
    | Cap_fwd_queue -> (1, Detected msg)
    | _ -> (1, Failed ("unexpected stuck: " ^ msg)))
  | exception Tls.Sim.Deadlock msg -> (1, Failed ("unexpected deadlock: " ^ msg))
  | exception Tls.Sim.Cycle_limit { cycle; _ } ->
    ( 1,
      Failed
        (Printf.sprintf
           "hang: cycle budget hit at cycle %d (watchdog missed it)" cycle) )
  | exception e -> (1, Failed (Printexc.to_string e))

(* Halve the limit starting from [peak / 2] until the resource actually
   degrades (>= 1 event), and report that first-triggering limit.  A peak
   of 0 (the mode never uses the resource) or a sweep that bottoms out at
   limit 0 without a single event is Skipped — the axis is not
   exercisable for this program x mode. *)
let sweep_axis ~expected ~cfg ~code ~input ~program ~mode axis peak =
  let mk limit events outcome =
    {
      cc_program = program;
      cc_mode = mode;
      cc_axis = axis;
      cc_peak = peak;
      cc_limit = limit;
      cc_events = events;
      cc_outcome = outcome;
    }
  in
  if peak <= 0 then mk 0 0 Skipped
  else
    let rec go limit =
      let events, outcome = probe_axis ~expected ~cfg ~code ~input axis limit in
      if events > 0 then mk limit events outcome
      else if limit = 0 then mk 0 0 Skipped
      else go (limit / 2)
    in
    go (peak / 2)

let run_capacity_program ?(log = fun _ -> ()) ?watchdog ?(sync_sched = false)
    ~modes p =
  let tune cfg =
    match watchdog with
    | None -> cfg
    | Some w -> { cfg with Tls.Config.watchdog_window = w }
  in
  let expected = seq_output p.p_source p.p_train in
  let base = compile ~sync_sched p in
  let code = base.Tlscore.Pipeline.code in
  let input = p.p_train in
  let run_mode (mode_name, cfg0) =
    let cfg = tune cfg0 in
    (* Unbounded baseline: harvest each resource's peak occupancy so the
       sweep starts from a limit the run is known to exceed. *)
    match Tls.Sim.run cfg code ~input () with
    | r ->
      List.map
        (fun axis ->
          sweep_axis ~expected ~cfg ~code ~input ~program:p.p_name
            ~mode:mode_name axis (axis_peak axis r))
        capacity_axes
    | exception e ->
      let msg = "baseline: " ^ Printexc.to_string e in
      List.map
        (fun axis ->
          {
            cc_program = p.p_name;
            cc_mode = mode_name;
            cc_axis = axis;
            cc_peak = 0;
            cc_limit = 0;
            cc_events = 0;
            cc_outcome = Failed msg;
          })
        capacity_axes
  in
  let cells = List.concat_map run_mode modes in
  let failed =
    List.length
      (List.filter
         (fun c -> match c.cc_outcome with Failed _ -> true | _ -> false)
         cells)
  in
  log
    (Printf.sprintf "%-12s %d capacity cells%s" p.p_name (List.length cells)
       (if failed = 0 then "" else Printf.sprintf ", %d FAILED" failed));
  cells

let run_capacity ?(log = fun _ -> ()) ?(map = fun f l -> List.map f l)
    ?watchdog ?sync_sched ~modes programs =
  let per_program =
    map
      (fun p ->
        let lines = ref [] in
        let cells =
          run_capacity_program
            ~log:(fun s -> lines := s :: !lines)
            ?watchdog ?sync_sched ~modes p
        in
        (List.rev !lines, cells))
      programs
  in
  List.iter (fun (lines, _) -> List.iter log lines) per_program;
  List.concat_map snd per_program

let count_capacity_failed cells =
  List.length
    (List.filter
       (fun c -> match c.cc_outcome with Failed _ -> true | _ -> false)
       cells)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let outcome_letter = function
  | Passed -> 'P'
  | Absorbed -> 'A'
  | Detected _ -> 'D'
  | Skipped -> 'S'
  | Failed _ -> 'F'

(* Stable de-duplicated list of keys in first-appearance order. *)
let ordered key cells =
  List.rev
    (List.fold_left
       (fun acc c ->
         let k = key c in
         if List.mem k acc then acc else k :: acc)
       [] cells)

let render_table cells =
  let buf = Buffer.create 1024 in
  let faults = ordered (fun c -> c.c_fault) cells in
  let modes = ordered (fun c -> c.c_mode) cells in
  let class_of fault =
    List.find_map
      (fun c -> if String.equal c.c_fault fault then Some c.c_class else None)
      cells
  in
  let summarize fault mode =
    let counts = Hashtbl.create 5 in
    List.iter
      (fun c ->
        if String.equal c.c_fault fault && String.equal c.c_mode mode then begin
          let l = outcome_letter c.c_outcome in
          Hashtbl.replace counts l (1 + Option.value ~default:0 (Hashtbl.find_opt counts l))
        end)
      cells;
    let part l =
      match Hashtbl.find_opt counts l with
      | None | Some 0 -> None
      | Some n -> Some (Printf.sprintf "%d%c" n l)
    in
    let parts = List.filter_map part [ 'F'; 'P'; 'A'; 'D'; 'S' ] in
    if parts = [] then "-" else String.concat " " parts
  in
  let rows =
    List.map
      (fun fault ->
        let cls =
          match class_of fault with
          | Some (Some c) -> Fault.classification_name c
          | _ -> "baseline"
        in
        fault :: cls :: List.map (summarize fault) modes)
      faults
  in
  let header = "fault" :: "class" :: modes in
  let table = header :: rows in
  let ncols = List.length header in
  let width i =
    List.fold_left (fun w row -> max w (String.length (List.nth row i))) 0 table
  in
  let widths = List.init ncols width in
  List.iter
    (fun row ->
      List.iteri
        (fun i s ->
          Buffer.add_string buf s;
          if i < ncols - 1 then
            Buffer.add_string buf
              (String.make (List.nth widths i - String.length s + 2) ' '))
        row;
      Buffer.add_char buf '\n')
    table;
  let tally letter =
    List.length
      (List.filter (fun c -> outcome_letter c.c_outcome = letter) cells)
  in
  Buffer.add_string buf
    (Printf.sprintf
       "cells: %d total | %d passed | %d absorbed | %d detected | %d skipped | %d FAILED\n"
       (List.length cells) (tally 'P') (tally 'A') (tally 'D') (tally 'S')
       (tally 'F'));
  List.iter
    (fun c ->
      match c.c_outcome with
      | Failed msg ->
        Buffer.add_string buf
          (Printf.sprintf "FAILED  %s mode=%s fault=%s: %s\n" c.c_program
             c.c_mode c.c_fault msg)
      | _ -> ())
    cells;
  Buffer.contents buf

let outcome_word = function
  | Passed -> "passed"
  | Absorbed -> "absorbed"
  | Detected _ -> "detected"
  | Skipped -> "skipped"
  | Failed _ -> "FAILED"

let render_capacity_table cells =
  let buf = Buffer.create 1024 in
  let rows =
    List.map
      (fun c ->
        [
          c.cc_program;
          c.cc_mode;
          axis_name c.cc_axis;
          string_of_int c.cc_peak;
          string_of_int c.cc_limit;
          string_of_int c.cc_events;
          outcome_word c.cc_outcome;
        ])
      cells
  in
  Buffer.add_string buf
    (Support.Table.render
       ~aligns:
         Support.Table.[ Left; Left; Left; Right; Right; Right; Left ]
       ~header:[ "program"; "mode"; "axis"; "peak"; "limit"; "events"; "outcome" ]
       rows);
  Buffer.add_char buf '\n';
  let tally p = List.length (List.filter p cells) in
  Buffer.add_string buf
    (Printf.sprintf
       "capacity: %d cells | %d absorbed | %d detected | %d skipped | %d FAILED\n"
       (List.length cells)
       (tally (fun c -> c.cc_outcome = Absorbed))
       (tally (fun c ->
            match c.cc_outcome with Detected _ -> true | _ -> false))
       (tally (fun c -> c.cc_outcome = Skipped))
       (tally (fun c -> match c.cc_outcome with Failed _ -> true | _ -> false)));
  List.iter
    (fun c ->
      match c.cc_outcome with
      | Failed msg ->
        Buffer.add_string buf
          (Printf.sprintf "FAILED  %s mode=%s axis=%s limit=%d: %s\n"
             c.cc_program c.cc_mode (axis_name c.cc_axis) c.cc_limit msg)
      | _ -> ())
    cells;
  Buffer.contents buf
