(** Service-layer faults for the compile service (DESIGN §14), extending
    the PR2 fault catalog one layer up: instead of lying profiles, broken
    IR or a misbehaving machine, these model a misbehaving {e serving}
    environment — slow jobs, flaky I/O, corrupted cache entries and burst
    arrivals.

    Request-level kinds are injected by naming the fault in a request's
    ["fault"] field; the service's executor consults {!Slow_job} /
    {!Transient_io} / {!Always_transient} hooks per attempt.
    Harness-level kinds ({!Cache_corrupt}, {!Burst}) are injected by the
    chaos harness around the request stream — corrupting entry bytes on
    disk, or collapsing arrivals into one admission tick.

    Like the PR2 catalog, every kind carries the outcome class the chaos
    matrix asserts: the service must resolve each cell to
    absorbed/degraded/detected — never a hang, never wrong output. *)

type kind =
  | Slow_job
      (** The executor sleeps past the request deadline on {e every}
          attempt.  Detected: the response must be a typed
          [deadline] after the bounded retry schedule — never a hang. *)
  | Transient_io
      (** The first attempt raises a transient I/O error; later attempts
          succeed.  Absorbed: the deterministic backoff retry completes
          the request with a correct, cache-consistent result. *)
  | Always_transient
      (** Every attempt raises a transient error.  Degraded when a
          last-known-good artifact exists (served stale, marked
          degraded — the service-layer analogue of the NULL-signal
          fallback); a typed error response otherwise. *)
  | Cache_corrupt
      (** Entry bytes are flipped on disk between requests.  Absorbed:
          startup/read validation must detect the bad digest, quarantine
          the entry and recompute — a poisoned cache never poisons a
          response. *)
  | Burst
      (** All requests arrive in a single admission tick, exceeding the
          bounded queue.  Detected: the overflow is shed with typed
          rejections (mirroring Overflow_squash at the service layer);
          admitted requests still complete correctly. *)

(** Expected chaos-cell resolution. *)
type expectation = Expect_absorbed | Expect_degraded | Expect_detected

type spec = { sf_name : string; sf_kind : kind; sf_expect : expectation }

val catalog : spec list

val find : string -> spec option

(** True for kinds injected via a request's ["fault"] field (the
    executor hooks); false for the harness-level kinds. *)
val request_level : kind -> bool

val expectation_name : expectation -> string
