(** Deterministic generator of pointer/loop/call-heavy mini-C programs for
    differential chaos fuzzing.

    Every program has exactly one top-level loop in [main] (the
    speculative-region candidate, at least 12 iterations) mixing the
    hazard shapes the paper's machinery must handle: a serial scalar
    chain through a global, array stores through computed ("pointer")
    indices that alias across epochs, conditional production, calls with
    internal loops, and an optional rare [break].  The source and input
    are pure functions of the seed. *)

val generate : seed:int -> string * int array
