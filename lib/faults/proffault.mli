(** Profile-layer faults: deterministic distortions of a dependence
    profile before the memory-sync pass consumes it.

    The paper's central robustness claim (§2.2) is that synchronization
    decisions are only a {e performance} hint — the signal address buffer
    and violation machinery keep execution correct under any profile.
    These mutators make that claim testable: every one of them is
    Absorbable (TLS output must still equal sequential output). *)

type t =
  | Drop_arcs of { seed : int }       (* forget ~half the arcs *)
  | Duplicate_arcs of { seed : int }  (* invent frequent cross-paired arcs *)
  | Shuffle_arcs of { seed : int }    (* permute counts among arcs *)

val name : t -> string

(** Fresh mutated copy; the input profile is not modified.  Arc order is
    stabilized by sorting, so results depend only on the seed and the
    profile contents, never on hash-table iteration order. *)
val apply : t -> Profiler.Profile.dep_profile -> Profiler.Profile.dep_profile
