(** Differential chaos harness: run a program's fault × mode matrix and
    classify every cell.

    For each (program, mode, fault) cell the harness runs the TLS
    simulator and compares against the sequential reference:
    - [Passed]: the no-fault baseline matched sequential output;
    - [Absorbed]: a fault was injected and the output still matched —
      the architecture absorbed it;
    - [Detected]: a detectable fault ended in {!Tls.Sim.Stuck} or
      {!Tls.Sim.Deadlock} (the message is kept);
    - [Skipped]: the fault had no applicable site, never armed, or the
      mode does not exercise that layer;
    - [Failed]: wrong output, a typed error from an absorbable fault, or
      a hang that reached the cycle budget instead of the watchdog.

    A matrix is healthy iff [count_failed] is zero. *)

type program = {
  p_name : string;
  p_source : string;
  p_train : int array;   (* profile input; also the default run input *)
  p_ref : int array;     (* run input for the stale-train fault *)
  p_select_main : bool;  (* force-select main's loops (generated programs) *)
}

type outcome =
  | Passed
  | Absorbed
  | Detected of string
  | Skipped
  | Failed of string

type cell = {
  c_program : string;
  c_mode : string;
  c_fault : string;                           (* "none" for the baseline *)
  c_class : Fault.classification option;      (* None for the baseline *)
  c_outcome : outcome;
}

(** U, C, H, B. *)
val default_modes : (string * Tls.Config.t) list

(** All cells for one program: the baseline plus every fault in [faults],
    under every mode.  [watchdog] overrides the watchdog window;
    [sync_sched] compiles every artifact (baseline, profile-fault
    recompiles, IR-mutation bases) with the sync scheduler on (default
    false). *)
val run_program :
  ?log:(string -> unit) ->
  ?watchdog:int ->
  ?sync_sched:bool ->
  modes:(string * Tls.Config.t) list ->
  faults:Fault.spec list ->
  program ->
  cell list

(** Like {!run_program} over many programs.  [map] (default [List.map])
    may be an order-preserving parallel mapper such as [Harness.Jobs];
    each program's log lines are buffered inside its job and replayed to
    [log] in program order after the matrix completes, so the logged
    bytes and the returned cells are identical for any mapper. *)
val run_matrix :
  ?log:(string -> unit) ->
  ?map:((program -> string list * cell list) ->
        program list ->
        (string list * cell list) list) ->
  ?watchdog:int ->
  ?sync_sched:bool ->
  modes:(string * Tls.Config.t) list ->
  faults:Fault.spec list ->
  program list ->
  cell list

(** [count] generated programs, seeds [seed, seed+count). *)
val fuzz_programs : count:int -> seed:int -> program list

(** Aggregated fault × mode table (counts over programs) followed by a
    detail line for every FAILED cell. *)
val render_table : cell list -> string

val count_failed : cell list -> int

(** {1 Capacity sweep}

    The finite-hardware degradation matrix (DESIGN §12): for each
    program × mode, run once unbounded to harvest each resource's peak
    occupancy, then halve that resource's limit (peak/2, peak/4, …, 0)
    until the run actually degrades (≥ 1 overflow/drop/backpressure
    event) and classify that first-triggering run:

    - signal-buffer and speculative-lines limits are {e absorbable}:
      the run must still match the sequential output ([Absorbed]);
    - the forwarding-queue limit is {e detectable}: a backpressure
      cycle must end in the typed {!Tls.Sim.Resource_deadlock} (or the
      watchdog's {!Tls.Sim.Stuck}) — [Detected];
    - a resource whose peak is 0, or that never triggers even at limit
      0, is [Skipped] (not exercisable for that program × mode);
    - anything else — wrong output, a typed error on an absorbable
      axis, or a run that reached the cycle budget (a hang the
      watchdog missed) — is [Failed]. *)

type capacity_axis =
  | Cap_sig_buffer    (** {!Tls.Config.t.sig_buffer_entries} *)
  | Cap_spec_stall    (** spec_lines_per_epoch under [Overflow_stall] *)
  | Cap_spec_squash   (** spec_lines_per_epoch under [Overflow_squash] *)
  | Cap_fwd_queue     (** {!Tls.Config.t.fwd_queue_depth} *)

(** All four axes, in table order. *)
val capacity_axes : capacity_axis list

val axis_name : capacity_axis -> string

type capacity_cell = {
  cc_program : string;
  cc_mode : string;
  cc_axis : capacity_axis;
  cc_peak : int;     (* unbounded-run peak occupancy of the resource *)
  cc_limit : int;    (* first (largest) halved limit that degraded *)
  cc_events : int;   (* degradation events observed at cc_limit *)
  cc_outcome : outcome;
}

(** Like {!run_matrix} for the capacity sweep: [map] and [log] have the
    same determinism contract (per-program log lines buffered and
    replayed in program order). *)
val run_capacity :
  ?log:(string -> unit) ->
  ?map:((program -> string list * capacity_cell list) ->
        program list ->
        (string list * capacity_cell list) list) ->
  ?watchdog:int ->
  ?sync_sched:bool ->
  modes:(string * Tls.Config.t) list ->
  program list ->
  capacity_cell list

(** One row per cell (program, mode, axis, peak, limit, events, outcome)
    plus a tally line and a detail line for every FAILED cell. *)
val render_capacity_table : capacity_cell list -> string

val count_capacity_failed : capacity_cell list -> int
