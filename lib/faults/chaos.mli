(** Differential chaos harness: run a program's fault × mode matrix and
    classify every cell.

    For each (program, mode, fault) cell the harness runs the TLS
    simulator and compares against the sequential reference:
    - [Passed]: the no-fault baseline matched sequential output;
    - [Absorbed]: a fault was injected and the output still matched —
      the architecture absorbed it;
    - [Detected]: a detectable fault ended in {!Tls.Sim.Stuck} or
      {!Tls.Sim.Deadlock} (the message is kept);
    - [Skipped]: the fault had no applicable site, never armed, or the
      mode does not exercise that layer;
    - [Failed]: wrong output, a typed error from an absorbable fault, or
      a hang that reached the cycle budget instead of the watchdog.

    A matrix is healthy iff [count_failed] is zero. *)

type program = {
  p_name : string;
  p_source : string;
  p_train : int array;   (* profile input; also the default run input *)
  p_ref : int array;     (* run input for the stale-train fault *)
  p_select_main : bool;  (* force-select main's loops (generated programs) *)
}

type outcome =
  | Passed
  | Absorbed
  | Detected of string
  | Skipped
  | Failed of string

type cell = {
  c_program : string;
  c_mode : string;
  c_fault : string;                           (* "none" for the baseline *)
  c_class : Fault.classification option;      (* None for the baseline *)
  c_outcome : outcome;
}

(** U, C, H, B. *)
val default_modes : (string * Tls.Config.t) list

(** All cells for one program: the baseline plus every fault in [faults],
    under every mode.  [watchdog] overrides the watchdog window. *)
val run_program :
  ?log:(string -> unit) ->
  ?watchdog:int ->
  modes:(string * Tls.Config.t) list ->
  faults:Fault.spec list ->
  program ->
  cell list

(** Like {!run_program} over many programs.  [map] (default [List.map])
    may be an order-preserving parallel mapper such as [Harness.Jobs];
    each program's log lines are buffered inside its job and replayed to
    [log] in program order after the matrix completes, so the logged
    bytes and the returned cells are identical for any mapper. *)
val run_matrix :
  ?log:(string -> unit) ->
  ?map:((program -> string list * cell list) ->
        program list ->
        (string list * cell list) list) ->
  ?watchdog:int ->
  modes:(string * Tls.Config.t) list ->
  faults:Fault.spec list ->
  program list ->
  cell list

(** [count] generated programs, seeds [seed, seed+count). *)
val fuzz_programs : count:int -> seed:int -> program list

(** Aggregated fault × mode table (counts over programs) followed by a
    detail line for every FAILED cell. *)
val render_table : cell list -> string

val count_failed : cell list -> int
