type classification = Absorbable | Detectable

type plan =
  | No_fault
  | Profile_fault of Proffault.t
  | Stale_train
  | Ir_fault of Irfault.kind
  | Sim_fault of Tls.Config.sim_fault

type spec = {
  name : string;
  classification : classification;
  plan : plan;
}

let classification_name = function
  | Absorbable -> "absorbable"
  | Detectable -> "detectable"

let catalog =
  [
    (* Profile layer: the compiler was trained on lies. *)
    {
      name = "drop-arcs";
      classification = Absorbable;
      plan = Profile_fault (Proffault.Drop_arcs { seed = 11 });
    };
    {
      name = "dup-arcs";
      classification = Absorbable;
      plan = Profile_fault (Proffault.Duplicate_arcs { seed = 12 });
    };
    {
      name = "shuffle-arcs";
      classification = Absorbable;
      plan = Profile_fault (Proffault.Shuffle_arcs { seed = 13 });
    };
    { name = "stale-train"; classification = Absorbable; plan = Stale_train };
    (* IR layer: the compiler emitted broken synchronization. *)
    {
      name = "dup-signal";
      classification = Absorbable;
      plan = Ir_fault Irfault.Duplicate_signal;
    };
    {
      name = "foreign-signal";
      classification = Absorbable;
      plan = Ir_fault Irfault.Foreign_signal;
    };
    {
      name = "drop-signal";
      classification = Detectable;
      plan = Ir_fault Irfault.Drop_signal;
    };
    {
      name = "drop-wait";
      classification = Detectable;
      plan = Ir_fault Irfault.Drop_wait;
    };
    {
      name = "retarget-channel";
      classification = Detectable;
      plan = Ir_fault Irfault.Retarget_channel;
    };
    (* Simulator layer: the machine misbehaved. *)
    {
      name = "corrupt-addr";
      classification = Absorbable;
      plan = Sim_fault (Tls.Config.Corrupt_addr 2);
    };
    {
      name = "corrupt-value";
      classification = Absorbable;
      plan = Sim_fault (Tls.Config.Corrupt_value 2);
    };
    {
      name = "delay-signal";
      classification = Absorbable;
      plan = Sim_fault (Tls.Config.Delay_signal { nth = 2; extra = 2000 });
    };
    {
      name = "spurious-violation";
      classification = Absorbable;
      plan = Sim_fault (Tls.Config.Spurious_violation 3);
    };
    {
      name = "drop-wakeup";
      classification = Detectable;
      plan = Sim_fault (Tls.Config.Drop_wakeup 2);
    };
  ]

let find name = List.find_opt (fun s -> String.equal s.name name) catalog
