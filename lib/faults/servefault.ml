type kind =
  | Slow_job
  | Transient_io
  | Always_transient
  | Cache_corrupt
  | Burst

type expectation = Expect_absorbed | Expect_degraded | Expect_detected

type spec = { sf_name : string; sf_kind : kind; sf_expect : expectation }

let catalog =
  [
    { sf_name = "slow-job"; sf_kind = Slow_job; sf_expect = Expect_detected };
    {
      sf_name = "transient-io";
      sf_kind = Transient_io;
      sf_expect = Expect_absorbed;
    };
    {
      sf_name = "stale-degrade";
      sf_kind = Always_transient;
      sf_expect = Expect_degraded;
    };
    {
      sf_name = "cache-corrupt";
      sf_kind = Cache_corrupt;
      sf_expect = Expect_absorbed;
    };
    { sf_name = "burst"; sf_kind = Burst; sf_expect = Expect_detected };
  ]

let find name = List.find_opt (fun s -> String.equal s.sf_name name) catalog

let request_level = function
  | Slow_job | Transient_io | Always_transient -> true
  | Cache_corrupt | Burst -> false

let expectation_name = function
  | Expect_absorbed -> "absorbable"
  | Expect_degraded -> "degradable"
  | Expect_detected -> "detectable"
