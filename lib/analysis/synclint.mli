(** Static sync-placement verifier ("synclint") for the transformed IR.

    Runs after the scalar-sync and memory-sync passes and checks, per
    region and program-wide:

    - [dominance] — every checked load ([Sync_load]) is strictly dominated
      by a [Wait_mem] on its channel;
    - [signal-exactness] — every path from the region header to a loop
      latch signals each of the region's channels (guarded [_if_unsent]
      signals count);
    - [double-signal] — no second unconditional signal of a scalar or
      static-address memory channel in one epoch (eager pointer-group
      signals legitimately repeat);
    - [self-deadlock] — no wait on a channel the same epoch has already
      unconditionally signaled on every path;
    - [foreign-channel] — synchronization only on channels allocated to a
      region, and inside a region only on channels it (or a nested region
      containing the block) owns;
    - [dead-sync-group] — some producer store of each group may alias one
      of its consumer loads, per {!Pointsto};
    - [profile-under-coverage] — same-address store/load pairs in the
      region loop forming a may inter-epoch RAW that the dependence
      profile never observed and no earlier same-epoch store may cover.

    Errors are placement bugs; warnings flag dead or under-profiled
    synchronization worth a look. *)

type severity =
  | Error
  | Warning

type finding = {
  f_func : string;
  f_block : Ir.Instr.label option;
  f_iid : Ir.Instr.iid option;
  f_detector : string;    (* e.g. "dominance", "signal-exactness" *)
  f_severity : severity;
  f_message : string;
}

val severity_string : severity -> string

(** One-line rendering: [error: main/L3/i42: [dominance] ...]. *)
val to_string : finding -> string

(** Lint a single region.  [pointsto] reuses a precomputed analysis of
    [prog] (valid across instruction reorderings, which cannot change the
    flow-insensitive facts); omitted, it is computed afresh. *)
val run :
  ?pointsto:Pointsto.t ->
  ?dep_profile:Profiler.Profile.dep_profile ->
  Ir.Prog.t ->
  Ir.Region.t ->
  finding list

(** Lint the whole program: all regions plus the program-wide dominance
    and channel-ownership checks.  [dep_profiles] (keyed like
    {!Tlscore.Pipeline.compiled.dep_profiles}) enables the profile
    coverage cross-check; [pointsto] as in {!run}. *)
val run_prog :
  ?pointsto:Pointsto.t ->
  ?dep_profiles:
    (Profiler.Profile.loop_key * Profiler.Profile.dep_profile) list ->
  Ir.Prog.t ->
  finding list
