(* Static verifier for the synchronization placement of the scalar-sync
   (Regions) and memory-sync (Memsync) passes, plus a cross-check of the
   static may-dependences against the dynamic dependence profile.

   Detectors:
   - dominance: every [Sync_load] must be strictly dominated by a
     [Wait_mem] on its channel (in whatever function it lives, clones
     included) — otherwise the checked load can consume a stale value.
   - signal-exactness: on every path from the region header to a loop
     latch, each channel of the region must have been signaled (counting
     the guarded [_if_unsent] forms) — a missing signal deadlocks the
     successor epoch.
   - double-signal: a second unconditional signal in the same epoch
     overwrites the forwarded value after consumers may have used it.
     Eager pointer-group signals legitimately repeat (the signal address
     buffer keeps the last store), so only static-address memory channels
     and scalar channels are held to this.
   - self-deadlock: a wait on a channel that the same epoch has already
     unconditionally signaled on every path.  The hardware tolerates this
     (waits consume the predecessor's signals), but a consumer that always
     runs after its own epoch's producer could never have been profiled as
     an inter-epoch consumer — the placement is wrong.
   - foreign-channel: synchronization on a channel not allocated to any
     region, or inside a region's loop on a channel the region (or a
     nested region containing that block) does not own.
   - dead-sync-group: no producer store of the group may alias any of its
     consumer loads (per the points-to analysis) — the synchronization can
     never forward a useful value.
   - profile-under-coverage: a same-address store/load pair in the region
     loop forms a may inter-epoch RAW that the dependence profile never
     observed and that no possible earlier same-epoch store covers — the
     training input may under-cover the dependence.

   The per-channel epoch dataflow treats calls as channel-neutral: the
   passes place every signal of a static-address group in the region
   function, and pointer groups whose stores live in clones always get a
   guarded latch signal, so a latch can only be reached unsignaled through
   a placement bug. *)

module ISet = Set.Make (Int)

type severity =
  | Error
  | Warning

type finding = {
  f_func : string;
  f_block : Ir.Instr.label option;
  f_iid : Ir.Instr.iid option;
  f_detector : string;
  f_severity : severity;
  f_message : string;
}

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"

let to_string fd =
  let where =
    match (fd.f_block, fd.f_iid) with
    | Some l, Some i -> Printf.sprintf "%s/L%d/i%d" fd.f_func l i
    | Some l, None -> Printf.sprintf "%s/L%d" fd.f_func l
    | None, Some i -> Printf.sprintf "%s/i%d" fd.f_func i
    | None, None -> fd.f_func
  in
  Printf.sprintf "%s: %s: [%s] %s"
    (severity_string fd.f_severity)
    where fd.f_detector fd.f_message

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)
(* ------------------------------------------------------------------ *)

let address_operand (i : Ir.Instr.t) =
  match i.Ir.Instr.kind with
  | Ir.Instr.Load (_, a)
  | Ir.Instr.Store (a, _)
  | Ir.Instr.Sync_load (_, _, a) ->
    Some a
  | _ -> None

(* iid -> (function, block, position, instruction), program-wide. *)
let build_iid_index (prog : Ir.Prog.t) =
  let tbl = Hashtbl.create 1024 in
  List.iter
    (fun (fname, f) ->
      Array.iteri
        (fun l (b : Ir.Func.block) ->
          List.iteri
            (fun pos (i : Ir.Instr.t) ->
              Hashtbl.replace tbl i.Ir.Instr.iid (fname, l, pos, i))
            b.Ir.Func.instrs)
        f.Ir.Func.blocks)
    prog.Ir.Prog.funcs;
  tbl

let region_channels (r : Ir.Region.t) =
  List.map (fun sc -> sc.Ir.Region.sc_id) r.Ir.Region.scalar_channels
  @ List.map (fun (g : Ir.Region.mem_group) -> g.Ir.Region.mg_id)
      r.Ir.Region.mem_groups

(* A group has a static address when every member access uses one [Imm]. *)
let static_group_addr iid_index (g : Ir.Region.mem_group) =
  let addr_of iid =
    match Hashtbl.find_opt iid_index iid with
    | Some (_, _, _, i) -> begin
      match address_operand i with
      | Some (Ir.Instr.Imm a) -> Some a
      | Some (Ir.Instr.Reg _) | None -> None
    end
    | None -> None
  in
  match g.Ir.Region.mg_loads @ g.Ir.Region.mg_stores with
  | [] -> None
  | first :: rest -> begin
    match addr_of first with
    | None -> None
    | Some a ->
      if List.for_all (fun m -> addr_of m = Some a) rest then Some a else None
  end

let region_latches (f : Ir.Func.t) (region : Ir.Region.t) =
  let loops = Dataflow.Loops.find f in
  match Dataflow.Loops.loop_of loops region.Ir.Region.header with
  | Some l -> l.Dataflow.Loops.back_edges
  | None -> []

(* ------------------------------------------------------------------ *)
(* Per-channel epoch dataflow (signal-exactness, double-signal,        *)
(* self-deadlock)                                                      *)
(* ------------------------------------------------------------------ *)

(* Per-channel state, tracked separately for "any signal sent" (slot 2j)
   and "an unconditional signal sent" (slot 2j+1):
   0 = unreached, 1 = no, 2 = yes (all paths), 3 = maybe. *)
let join_state a b =
  if a = 0 then b else if b = 0 then a else if a = b then a else 3

let signal_dataflow_findings prog iid_index (region : Ir.Region.t) =
  let tracked = region_channels region in
  if tracked = [] then []
  else begin
    let f = Ir.Prog.func prog region.Ir.Region.func in
    let nch = List.length tracked in
    let idx = Hashtbl.create 8 in
    List.iteri (fun j ch -> Hashtbl.replace idx ch (2 * j)) tracked;
    let static_chans =
      List.fold_left
        (fun acc g ->
          match static_group_addr iid_index g with
          | Some _ -> ISet.add g.Ir.Region.mg_id acc
          | None -> acc)
        ISet.empty region.Ir.Region.mem_groups
    in
    let fresh_epoch () = Array.make (2 * nch) 1 in
    let step idx_of fact (i : Ir.Instr.t) =
      match Ir.Instr.channel_of i with
      | None -> ()
      | Some ch -> begin
        match Hashtbl.find_opt idx_of ch with
        | None -> ()
        | Some j -> begin
          match i.Ir.Instr.kind with
          | Ir.Instr.Signal_scalar _ | Ir.Instr.Signal_mem _
          | Ir.Instr.Signal_null _ ->
            fact.(j) <- 2;
            fact.(j + 1) <- 2
          | Ir.Instr.Signal_mem_if_unsent _ | Ir.Instr.Signal_null_if_unsent _
            ->
            (* After a guarded signal the channel is definitely signaled
               (either it just fired or an earlier signal suppressed it). *)
            fact.(j) <- 2
          | _ -> ()
        end
      end
    in
    let walk ~on_instr init l =
      let fact = Array.copy init in
      List.iter
        (fun i ->
          on_instr fact i;
          step idx fact i)
        (Ir.Func.block f l).Ir.Func.instrs;
      fact
    in
    let module D = struct
      type fact = int array

      let equal = ( = )
      let bottom = Array.make (2 * nch) 0
      let boundary = Array.make (2 * nch) 1

      let join a b =
        Array.init (Array.length a) (fun k -> join_state a.(k) b.(k))
    end in
    let module S = Dataflow.Solver.Make (D) in
    let transfer l input =
      (* Each epoch starts un-signaled: the header ignores its (back-edge)
         input.  Blocks outside the loop carry no region sync. *)
      let init = if l = region.Ir.Region.header then fresh_epoch () else input in
      walk ~on_instr:(fun _ _ -> ()) init l
    in
    let inputs, _ = S.solve ~direction:Dataflow.Solver.Forward ~transfer f in
    let findings = ref [] in
    let add ?block ?iid ~det ~sev msg =
      findings :=
        {
          f_func = region.Ir.Region.func;
          f_block = block;
          f_iid = iid;
          f_detector = det;
          f_severity = sev;
          f_message = msg;
        }
        :: !findings
    in
    let latches = region_latches f region in
    List.iter
      (fun l ->
        let init =
          if l = region.Ir.Region.header then fresh_epoch () else inputs.(l)
        in
        let out =
          walk init l ~on_instr:(fun fact i ->
              match Ir.Instr.channel_of i with
              | Some ch when Hashtbl.mem idx ch -> begin
                let j = Hashtbl.find idx ch in
                let any = fact.(j) and uncond = fact.(j + 1) in
                match i.Ir.Instr.kind with
                | Ir.Instr.Signal_scalar _ when any = 2 ->
                  add ~block:l ~iid:i.Ir.Instr.iid ~det:"double-signal"
                    ~sev:Error
                    (Printf.sprintf
                       "second signal on scalar channel c%d in the same epoch"
                       ch)
                | Ir.Instr.Signal_mem _
                  when ISet.mem ch static_chans && (any = 2 || any = 3) ->
                  add ~block:l ~iid:i.Ir.Instr.iid ~det:"double-signal"
                    ~sev:Error
                    (Printf.sprintf
                       "unconditional signal on static-address channel c%d \
                        may repeat an earlier signal of the same epoch"
                       ch)
                | Ir.Instr.Signal_null _ when any = 2 ->
                  add ~block:l ~iid:i.Ir.Instr.iid ~det:"double-signal"
                    ~sev:Error
                    (Printf.sprintf
                       "null signal on channel c%d after the epoch already \
                        signaled it"
                       ch)
                | (Ir.Instr.Wait_scalar _ | Ir.Instr.Wait_mem _)
                  when uncond = 2 ->
                  add ~block:l ~iid:i.Ir.Instr.iid ~det:"self-deadlock"
                    ~sev:Error
                    (Printf.sprintf
                       "wait on channel c%d after the same epoch \
                        unconditionally signaled it on every path"
                       ch)
                | _ -> ()
              end
              | _ -> ())
        in
        if List.mem l latches then
          List.iter
            (fun ch ->
              let j = Hashtbl.find idx ch in
              match out.(j) with
              | 1 ->
                add ~block:l ~det:"signal-exactness" ~sev:Error
                  (Printf.sprintf
                     "channel c%d is never signaled on the paths reaching \
                      this latch"
                     ch)
              | 3 ->
                add ~block:l ~det:"signal-exactness" ~sev:Error
                  (Printf.sprintf
                     "channel c%d may be left unsignaled on a path reaching \
                      this latch"
                     ch)
              | _ -> ())
            tracked)
      region.Ir.Region.blocks;
    List.rev !findings
  end

(* ------------------------------------------------------------------ *)
(* Dominance: every Sync_load is preceded by a Wait_mem on all paths   *)
(* ------------------------------------------------------------------ *)

let dominance_findings (prog : Ir.Prog.t) =
  List.concat_map
    (fun (fname, f) ->
      let waits = Hashtbl.create 8 in
      let sync_loads = ref [] in
      Array.iteri
        (fun l (b : Ir.Func.block) ->
          List.iteri
            (fun pos (i : Ir.Instr.t) ->
              match i.Ir.Instr.kind with
              | Ir.Instr.Wait_mem ch ->
                Hashtbl.replace waits ch
                  ((l, pos)
                  ::
                  (match Hashtbl.find_opt waits ch with
                  | Some ps -> ps
                  | None -> []))
              | Ir.Instr.Sync_load (ch, _, _) ->
                sync_loads := (ch, l, pos, i.Ir.Instr.iid) :: !sync_loads
              | _ -> ())
            b.Ir.Func.instrs)
        f.Ir.Func.blocks;
      if !sync_loads = [] then []
      else begin
        let dom = Dataflow.Dominance.compute f in
        List.filter_map
          (fun (ch, l, pos, iid) ->
            let covered =
              match Hashtbl.find_opt waits ch with
              | Some ps ->
                List.exists
                  (fun wp -> Dataflow.Dominance.dominates_point dom wp (l, pos))
                  ps
              | None -> false
            in
            if covered then None
            else
              Some
                {
                  f_func = fname;
                  f_block = Some l;
                  f_iid = Some iid;
                  f_detector = "dominance";
                  f_severity = Error;
                  f_message =
                    Printf.sprintf
                      "checked load on channel c%d is not dominated by a \
                       wait_mem on c%d"
                      ch ch;
                })
          (List.rev !sync_loads)
      end)
    prog.Ir.Prog.funcs

(* ------------------------------------------------------------------ *)
(* Foreign channels                                                    *)
(* ------------------------------------------------------------------ *)

let unowned_channel_findings (prog : Ir.Prog.t) =
  let owned =
    List.fold_left
      (fun acc r -> List.fold_left (fun s c -> ISet.add c s) acc
          (region_channels r))
      ISet.empty prog.Ir.Prog.regions
  in
  List.concat_map
    (fun (fname, f) ->
      let fs = ref [] in
      Array.iteri
        (fun l (b : Ir.Func.block) ->
          List.iter
            (fun (i : Ir.Instr.t) ->
              match Ir.Instr.channel_of i with
              | Some ch when not (ISet.mem ch owned) ->
                fs :=
                  {
                    f_func = fname;
                    f_block = Some l;
                    f_iid = Some i.Ir.Instr.iid;
                    f_detector = "foreign-channel";
                    f_severity = Error;
                    f_message =
                      Printf.sprintf
                        "synchronization on channel c%d, which no region owns"
                        ch;
                  }
                  :: !fs
              | _ -> ())
            b.Ir.Func.instrs)
        f.Ir.Func.blocks;
      List.rev !fs)
    prog.Ir.Prog.funcs

let region_ownership_findings (prog : Ir.Prog.t) (region : Ir.Region.t) =
  let own = ISet.of_list (region_channels region) in
  let f = Ir.Prog.func prog region.Ir.Region.func in
  let fs = ref [] in
  List.iter
    (fun l ->
      List.iter
        (fun (i : Ir.Instr.t) ->
          match Ir.Instr.channel_of i with
          | Some ch when not (ISet.mem ch own) ->
            (* Allowed when a nested/overlapping region containing this
               block owns the channel. *)
            let ok =
              List.exists
                (fun (r' : Ir.Region.t) ->
                  String.equal r'.Ir.Region.func region.Ir.Region.func
                  && List.mem l r'.Ir.Region.blocks
                  && List.mem ch (region_channels r'))
                prog.Ir.Prog.regions
            in
            if not ok then
              fs :=
                {
                  f_func = region.Ir.Region.func;
                  f_block = Some l;
                  f_iid = Some i.Ir.Instr.iid;
                  f_detector = "foreign-channel";
                  f_severity = Error;
                  f_message =
                    Printf.sprintf
                      "synchronization on channel c%d inside region %d, which \
                       does not own it"
                      ch region.Ir.Region.id;
                }
                :: !fs
          | _ -> ())
        (Ir.Func.block f l).Ir.Func.instrs)
    region.Ir.Region.blocks;
  List.rev !fs

(* ------------------------------------------------------------------ *)
(* Dead sync groups (alias cross-check)                                *)
(* ------------------------------------------------------------------ *)

let dead_group_findings pt iid_index (region : Ir.Region.t) =
  List.filter_map
    (fun (g : Ir.Region.mem_group) ->
      let addr_abs iid =
        match Hashtbl.find_opt iid_index iid with
        | Some (fname, _, _, i) ->
          Option.map (Pointsto.operand_addr pt fname) (address_operand i)
        | None -> None
      in
      let loads = List.filter_map addr_abs g.Ir.Region.mg_loads in
      let stores = List.filter_map addr_abs g.Ir.Region.mg_stores in
      if loads = [] || stores = [] then None
      else if
        List.exists
          (fun s -> List.exists (fun ld -> Pointsto.may_alias pt s ld) loads)
          stores
      then None
      else
        Some
          {
            f_func = region.Ir.Region.func;
            f_block = Some region.Ir.Region.header;
            f_iid = None;
            f_detector = "dead-sync-group";
            f_severity = Warning;
            f_message =
              Printf.sprintf
                "sync group c%d: no producer store may alias any consumer \
                 load; the synchronization is dead"
                g.Ir.Region.mg_id;
          })
    region.Ir.Region.mem_groups

(* ------------------------------------------------------------------ *)
(* Profile coverage cross-check                                        *)
(* ------------------------------------------------------------------ *)

(* May a store to [addr] (or its object) have executed earlier in the same
   epoch?  Union dataflow over the region blocks, reset at the header. *)
type cover = {
  c_all : bool;          (* a store through a pointer we cannot account for *)
  c_exacts : ISet.t;     (* exact addresses stored *)
  c_objs : ISet.t;       (* objects possibly stored through pointers *)
}

let cover_empty = { c_all = false; c_exacts = ISet.empty; c_objs = ISet.empty }

let cover_join a b =
  {
    c_all = a.c_all || b.c_all;
    c_exacts = ISet.union a.c_exacts b.c_exacts;
    c_objs = ISet.union a.c_objs b.c_objs;
  }

let cover_equal a b =
  a.c_all = b.c_all
  && ISet.equal a.c_exacts b.c_exacts
  && ISet.equal a.c_objs b.c_objs

let covers pt c a =
  c.c_all
  || ISet.mem a c.c_exacts
  ||
  match Pointsto.object_containing pt a with
  | Some o -> ISet.mem o c.c_objs
  | None -> false

let objs_of_addr pt fname r =
  match Pointsto.reg_addr pt fname r with
  | Pointsto.Objects s ->
    `Objs (ISet.of_list (Pointsto.Int_set.elements s))
  | Pointsto.Unknown -> `All
  | Pointsto.Exact a -> `Exact a

(* Transitive store footprint of every function, for calls. *)
let store_footprints pt (prog : Ir.Prog.t) =
  let fp = Hashtbl.create 16 in
  List.iter
    (fun (fname, _) -> Hashtbl.replace fp fname cover_empty)
    prog.Ir.Prog.funcs;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (fname, f) ->
        let cur = ref (Hashtbl.find fp fname) in
        Ir.Func.iter_instrs f (fun _ i ->
            match i.Ir.Instr.kind with
            | Ir.Instr.Store (Ir.Instr.Imm a, _) ->
              cur := { !cur with c_exacts = ISet.add a !cur.c_exacts }
            | Ir.Instr.Store (Ir.Instr.Reg r, _) -> begin
              match objs_of_addr pt fname r with
              | `Objs s -> cur := { !cur with c_objs = ISet.union s !cur.c_objs }
              | `All -> cur := { !cur with c_all = true }
              | `Exact a ->
                cur := { !cur with c_exacts = ISet.add a !cur.c_exacts }
            end
            | Ir.Instr.Call (_, callee, _) -> begin
              match Hashtbl.find_opt fp callee with
              | Some c -> cur := cover_join !cur c
              | None -> ()
            end
            | _ -> ());
        if not (cover_equal !cur (Hashtbl.find fp fname)) then begin
          Hashtbl.replace fp fname !cur;
          changed := true
        end)
      prog.Ir.Prog.funcs
  done;
  fp

let coverage_findings pt (prog : Ir.Prog.t) (region : Ir.Region.t)
    (dp : Profiler.Profile.dep_profile) =
  if dp.Profiler.Profile.total_epochs = 0 then []
  else begin
    let fname = region.Ir.Region.func in
    let f = Ir.Prog.func prog fname in
    let fp = store_footprints pt prog in
    (* Candidate accesses: exact-address stores and (unsynchronized) loads
       of globals within the region loop. *)
    let stores = ref [] and loads = ref [] in
    List.iter
      (fun l ->
        List.iteri
          (fun pos (i : Ir.Instr.t) ->
            match i.Ir.Instr.kind with
            | Ir.Instr.Store (Ir.Instr.Imm a, _)
              when Pointsto.object_containing pt a <> None ->
              stores := (a, l, pos, i.Ir.Instr.iid) :: !stores
            | Ir.Instr.Load (_, Ir.Instr.Imm a)
              when Pointsto.object_containing pt a <> None ->
              loads := (a, l, pos, i.Ir.Instr.iid) :: !loads
            | _ -> ())
          (Ir.Func.block f l).Ir.Func.instrs)
      region.Ir.Region.blocks;
    if !stores = [] || !loads = [] then []
    else begin
      let synced =
        List.fold_left
          (fun acc (r : Ir.Region.t) ->
            List.fold_left
              (fun acc (g : Ir.Region.mem_group) ->
                List.fold_left (fun s i -> ISet.add i s) acc
                  g.Ir.Region.mg_loads)
              acc r.Ir.Region.mem_groups)
          ISet.empty prog.Ir.Prog.regions
      in
      let observed = Hashtbl.create 64 in
      Hashtbl.iter
        (fun (d : Profiler.Profile.dep) _ ->
          Hashtbl.replace observed
            ( d.Profiler.Profile.producer.Profiler.Profile.a_iid,
              d.Profiler.Profile.consumer.Profiler.Profile.a_iid )
            ())
        dp.Profiler.Profile.dep_epochs;
      let gen fact (i : Ir.Instr.t) =
        match i.Ir.Instr.kind with
        | Ir.Instr.Store (Ir.Instr.Imm a, _) ->
          { fact with c_exacts = ISet.add a fact.c_exacts }
        | Ir.Instr.Store (Ir.Instr.Reg r, _) -> begin
          match objs_of_addr pt fname r with
          | `Objs s -> { fact with c_objs = ISet.union s fact.c_objs }
          | `All -> { fact with c_all = true }
          | `Exact a -> { fact with c_exacts = ISet.add a fact.c_exacts }
        end
        | Ir.Instr.Call (_, callee, _) -> begin
          match Hashtbl.find_opt fp callee with
          | Some c -> cover_join fact c
          | None -> fact
        end
        | _ -> fact
      in
      let module D = struct
        type fact = cover

        let equal = cover_equal
        let bottom = cover_empty
        let boundary = cover_empty
        let join = cover_join
      end in
      let module S = Dataflow.Solver.Make (D) in
      let transfer l input =
        let init =
          if l = region.Ir.Region.header then cover_empty else input
        in
        List.fold_left gen init (Ir.Func.block f l).Ir.Func.instrs
      in
      let inputs, _ = S.solve ~direction:Dataflow.Solver.Forward ~transfer f in
      let cover_at l pos =
        let init =
          if l = region.Ir.Region.header then cover_empty else inputs.(l)
        in
        let instrs = (Ir.Func.block f l).Ir.Func.instrs in
        let rec go k fact = function
          | [] -> fact
          | i :: rest ->
            if k >= pos then fact else go (k + 1) (gen fact i) rest
        in
        go 0 init instrs
      in
      List.concat_map
        (fun (la, ll, lpos, liid) ->
          if ISet.mem liid synced then []
          else begin
            let cov = lazy (cover_at ll lpos) in
            List.filter_map
              (fun (sa, _, _, siid) ->
                if
                  sa <> la
                  || Hashtbl.mem observed (siid, liid)
                  || covers pt (Lazy.force cov) la
                then None
                else
                  Some
                    {
                      f_func = fname;
                      f_block = Some ll;
                      f_iid = Some liid;
                      f_detector = "profile-under-coverage";
                      f_severity = Warning;
                      f_message =
                        Printf.sprintf
                          "load i%d of %s may consume store i%d across \
                           epochs, but the dependence profile never observed \
                           it (training input may under-cover it)"
                          liid
                          (Pointsto.pp_addr pt (Pointsto.Exact la))
                          siid;
                    })
              !stores
          end)
        !loads
    end
  end

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let run_region pt iid_index prog (region : Ir.Region.t) ~dep_profile =
  signal_dataflow_findings prog iid_index region
  @ region_ownership_findings prog region
  @ dead_group_findings pt iid_index region
  @
  match dep_profile with
  | Some dp -> coverage_findings pt prog region dp
  | None -> []

(* Re-running the linter after an IR rewrite (e.g. sync scheduling) can
   reuse the points-to analysis computed before it: the flow-insensitive
   facts depend only on the instruction set, not on instruction order. *)
let resolve_pointsto pointsto prog =
  match pointsto with
  | Some pt -> pt
  | None -> Pointsto.analyze prog

let run ?pointsto ?dep_profile (prog : Ir.Prog.t) (region : Ir.Region.t) =
  let pt = resolve_pointsto pointsto prog in
  let iid_index = build_iid_index prog in
  List.sort_uniq compare (run_region pt iid_index prog region ~dep_profile)

let run_prog ?pointsto ?(dep_profiles = []) (prog : Ir.Prog.t) =
  let pt = resolve_pointsto pointsto prog in
  let iid_index = build_iid_index prog in
  let per_region =
    List.concat_map
      (fun (r : Ir.Region.t) ->
        let key =
          {
            Profiler.Profile.lk_func = r.Ir.Region.func;
            lk_header = r.Ir.Region.header;
          }
        in
        let dep_profile = List.assoc_opt key dep_profiles in
        run_region pt iid_index prog r ~dep_profile)
      prog.Ir.Prog.regions
  in
  List.sort_uniq compare
    (dominance_findings prog @ unowned_channel_findings prog @ per_region)
