(** Static per-dependence stall estimation and violation-risk prediction
    for synchronized regions, computed from the CFG, loop structure,
    profile trip counts and points-to facts — without running the
    simulator.

    The per-channel model: with [d_p] the estimated cycles from epoch
    start to the signal and [d_c] to the wait,

      stall = max(0, d_p + forward_latency - spawn_overhead - d_c)

    per consumer epoch (successive epochs start ~[spawn_overhead] cycles
    apart).  Distances average over the epoch DAG (loop body minus back
    edges, equal branch weights), weighting inner-loop blocks by their
    profiled average trip counts.  Simulator sync-stall counters are kept
    in issue slots; divide them by the issue width before comparing.

    The predicted-violation set over-approximates: every load the region
    may execute (transitively through calls) whose address may alias a
    reachable store is flagged, so the set is a superset of the
    violations the simulator can observe. *)

type params = {
  issue_width : int;
  lat_mul : int;
  lat_div : int;
  forward_latency : int;
  spawn_overhead : int;
  track_line_words : int option;
      (* Some w: the simulator detects conflicts at w-word cache-line
         granularity (so false sharing counts); None: word-level *)
}

type channel_kind =
  | Scalar
  | Mem

type channel_cost = {
  cc_channel : Ir.Instr.channel;
  cc_kind : channel_kind;
  cc_producer : float;   (* est. cycles from epoch start to the signal *)
  cc_consumer : float;   (* est. cycles from epoch start to the wait *)
  cc_stall : float;      (* predicted stall cycles per consumer epoch *)
  cc_total : float;      (* predicted stall cycles over the whole run *)
}

type region_cost = {
  rc_id : int;
  rc_func : string;
  rc_header : Ir.Instr.label;
  rc_epochs : int;       (* profiled epochs (header arrivals) *)
  rc_channels : channel_cost list;
  rc_violations : Ir.Instr.iid list;  (* predicted-violation superset *)
}

val kind_string : channel_kind -> string

(** Conservative superset of the loads the simulator may flag as
    violated while executing [region], at the conflict granularity given
    by [params.track_line_words]. *)
val predicted_violations :
  Pointsto.t -> params -> Ir.Prog.t -> Ir.Region.t -> Ir.Instr.iid list

val analyze_region :
  Pointsto.t -> params -> Profiler.Profile.t -> Ir.Prog.t -> Ir.Region.t ->
  region_cost

(** Analyze every region, sorted by region id. *)
val analyze :
  ?pointsto:Pointsto.t -> params -> Profiler.Profile.t -> Ir.Prog.t ->
  region_cost list
