(** Andersen-style flow-insensitive points-to/alias analysis over the
    register IR.

    Abstract objects are the program's globals (an array is one summarized
    object); the machine has no heap and no stack memory, so these are the
    whole universe.  Register copies are collapsed with a union-find;
    arithmetic, loads, stores, call/return bindings, and the TLS forwarding
    channels (scalar signal -> wait, memory signal -> checked load) become
    subset constraints solved to a fixpoint.

    Soundness contract: [may_alias] answers [false] only between addresses
    the analysis fully accounts for.  A register not derived from any
    global base abstracts to [Unknown], which aliases everything.  Element
    addresses ([base + index*scale]) are assumed in bounds, i.e. an access
    through a pointer derived from object [o] stays within [o]. *)

module Int_set : Set.S with type elt = int

(** Abstraction of an access address. *)
type addr =
  | Exact of int           (* a folded constant address *)
  | Objects of Int_set.t   (* somewhere within one of these objects *)
  | Unknown                (* not derived from any global base *)

type t

val analyze : Ir.Prog.t -> t

val num_objects : t -> int

val object_name : t -> int -> string

(** Base word address and size in words of object [k]. *)
val object_extent : t -> int -> int * int

(** Object whose word range contains the given address, if any. *)
val object_containing : t -> int -> int option

(** What the contents of object [k] may point to (field-insensitive). *)
val object_contents : t -> int -> Int_set.t

(** May-point-to abstraction of a register in a function.  An unknown
    function or an empty points-to set yields [Unknown]. *)
val reg_addr : t -> string -> Ir.Instr.reg -> addr

(** Abstraction of an address operand ([Imm] is [Exact]). *)
val operand_addr : t -> string -> Ir.Instr.operand -> addr

val may_alias : t -> addr -> addr -> bool

(** Human-readable form for diagnostics (object names when known). *)
val pp_addr : t -> addr -> string
