(** Sync scheduling: dataflow-driven signal hoisting and wait sinking
    (the sync-optimization pass of arXiv 1211.4101 for this IR).

    Sinks each [Wait_scalar] toward the first use of its register (in
    block and across blocks, guarded by epoch dominance over the loop
    body, loop-exit liveness, and latch coverage), sinks each adjacent
    [Wait_mem]+[Sync_load] pair toward the first use of the loaded
    register, hoists each adjacent [Store]+[Signal_mem] pair toward
    the definition of the stored value, and moves each post-call
    [Signal_mem] into its single-call-site callee at the earliest block
    where the forwarded location's stores are complete (leaving a guarded
    signal at the original site so signal-exactness still holds) — all
    alias-checked through {!Pointsto} so no may-alias access is
    reordered.

    All rewrites are sequentially invisible (waits are the identity and
    signals no-ops under sequential semantics, and no register def/use or
    may-alias memory pair is reordered); the caller should still re-run
    [Ir.Verify] and {!Synclint} afterwards, which the pipeline does. *)

type stats = {
  ss_waits_sunk : int;       (* scalar waits moved at least one slot *)
  ss_mem_sunk : int;         (* wait_mem + sync_load pairs moved *)
  ss_signals_hoisted : int;  (* store + signal_mem pairs moved *)
  ss_signals_inlined : int;  (* post-call signals moved into the callee *)
  ss_slots : int;            (* total instruction slots crossed *)
}

val zero : stats
val add : stats -> stats -> stats

(** Total number of units moved. *)
val total : stats -> int

val to_string : stats -> string

(** Schedule one region in place. *)
val apply_region : Pointsto.t -> Ir.Prog.t -> Ir.Region.t -> stats

(** Schedule every region of the program in place.  [pointsto] may be a
    precomputed analysis of [prog] (the pass only reorders instructions,
    which cannot change flow-insensitive points-to facts, so computing it
    once before scheduling stays valid afterwards). *)
val apply : ?pointsto:Pointsto.t -> Ir.Prog.t -> stats
