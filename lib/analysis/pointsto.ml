(* Andersen-style flow-insensitive points-to analysis over the register IR.

   Abstract memory objects are the globals of the program layout: a scalar
   global is one object, an array (or array of structs) is one summarized
   object.  There is no heap and no stack memory in this machine — locals
   live in registers — so the global segment is the whole may-point-to
   universe.

   Nodes are the virtual registers of every function plus one "contents"
   node per object (field-insensitive: everything ever stored into an
   object merges into its contents node).  [Mov] register copies are
   collapsed with a union-find (the Steensgaard shortcut for the one case
   where it loses nothing); all remaining flow — arithmetic, loads,
   stores, calls, returns, and the TLS forwarding channels — becomes
   directed subset edges solved to a fixpoint with a worklist.

   Address arithmetic assumption: the IR computes element addresses as
   [base + index*scale] where [base] is a folded [Imm] global address, so
   an access through a pointer derived from object [o] stays within [o]
   (indices are assumed in bounds — the machine has no bounds checks and
   the workloads never stray).  A register whose points-to set is empty
   yields [Unknown], which [may_alias] treats conservatively: the analysis
   only ever *claims* no-alias between addresses it fully accounts for. *)

module Int_set = Set.Make (Int)

type addr =
  | Exact of int           (* a folded constant address *)
  | Objects of Int_set.t   (* somewhere within one of these objects *)
  | Unknown                (* not derived from any global base *)

type obj = { o_name : string; o_addr : int; o_words : int }

type t = {
  objs : obj array;
  reg_base : (string, int) Hashtbl.t;   (* function -> first register node *)
  mem_base : int;                       (* first object-contents node *)
  uf : Support.Union_find.t;
  pts : Int_set.t array;                (* indexed by union-find root *)
}

let num_objects t = Array.length t.objs

let object_name t k = t.objs.(k).o_name
let object_extent t k = (t.objs.(k).o_addr, t.objs.(k).o_words)

let object_containing t a =
  let n = Array.length t.objs in
  let rec go k =
    if k >= n then None
    else
      let o = t.objs.(k) in
      if a >= o.o_addr && a < o.o_addr + o.o_words then Some k else go (k + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)

let analyze (prog : Ir.Prog.t) : t =
  let objs =
    Ir.Layout.globals prog.Ir.Prog.layout
    |> List.map (fun (o_name, o_addr, o_words) -> { o_name; o_addr; o_words })
    |> Array.of_list
  in
  let obj_of_const a =
    let n = Array.length objs in
    let rec go k =
      if k >= n then None
      else if a >= objs.(k).o_addr && a < objs.(k).o_addr + objs.(k).o_words
      then Some k
      else go (k + 1)
    in
    go 0
  in
  (* Node numbering: registers of each function, then object contents. *)
  let reg_base = Hashtbl.create 16 in
  let next = ref 0 in
  List.iter
    (fun (name, f) ->
      Hashtbl.replace reg_base name !next;
      next := !next + f.Ir.Func.nregs)
    prog.Ir.Prog.funcs;
  let mem_base = !next in
  let nnodes = mem_base + Array.length objs in
  let uf = Support.Union_find.create (max nnodes 1) in
  let node fname r = Hashtbl.find reg_base fname + r in
  let memnode k = mem_base + k in
  (* Collapse Mov register copies. *)
  List.iter
    (fun (fname, f) ->
      Ir.Func.iter_instrs f (fun _ i ->
          match i.Ir.Instr.kind with
          | Ir.Instr.Mov (d, Ir.Instr.Reg s) ->
            ignore (Support.Union_find.union uf (node fname d) (node fname s))
          | _ -> ()))
    prog.Ir.Prog.funcs;
  let root n = Support.Union_find.find uf n in
  let pts = Array.make (max nnodes 1) Int_set.empty in
  let succ = Array.make (max nnodes 1) Int_set.empty in
  (* Deferred (address-dependent) constraints, indexed by address root:
     when object [o] enters pts(a), a load constraint adds the edge
     mem(o) -> dst and a store constraint adds value -> mem(o). *)
  let loadc = Array.make (max nnodes 1) [] in
  let storec = Array.make (max nnodes 1) [] in
  let storec_const = Array.make (max nnodes 1) Int_set.empty in
  let work = Queue.create () in
  let queued = Array.make (max nnodes 1) false in
  let enqueue n =
    if not queued.(n) then begin
      queued.(n) <- true;
      Queue.add n work
    end
  in
  let add_objs n os =
    if not (Int_set.is_empty os) then begin
      let n = root n in
      let merged = Int_set.union pts.(n) os in
      if not (Int_set.equal merged pts.(n)) then begin
        pts.(n) <- merged;
        enqueue n
      end
    end
  in
  let add_edge src dst =
    let src = root src and dst = root dst in
    if src <> dst && not (Int_set.mem dst succ.(src)) then begin
      succ.(src) <- Int_set.add dst succ.(src);
      add_objs dst pts.(src)
    end
  in
  (* Value flow: operand (resolved in [fname]) into node [dst]. *)
  let flow_operand fname dst op =
    match op with
    | Ir.Instr.Reg r -> add_edge (node fname r) dst
    | Ir.Instr.Imm n -> begin
      match obj_of_const n with
      | Some k -> add_objs dst (Int_set.singleton k)
      | None -> ()
    end
  in
  (* A load of [aop] (resolved in [fname]) into node [dst]. *)
  let flow_load fname dst aop =
    match aop with
    | Ir.Instr.Imm n -> begin
      match obj_of_const n with
      | Some k -> add_edge (memnode k) dst
      | None -> ()
    end
    | Ir.Instr.Reg r ->
      let a = root (node fname r) in
      loadc.(a) <- root dst :: loadc.(a);
      enqueue a
  in
  (* Return operands per function, for call-return flow. *)
  let rets = Hashtbl.create 16 in
  List.iter
    (fun (fname, f) ->
      let ops = ref [] in
      Array.iter
        (fun (b : Ir.Func.block) ->
          match b.Ir.Func.term with
          | Ir.Instr.Ret (Some op) -> ops := op :: !ops
          | _ -> ())
        f.Ir.Func.blocks;
      Hashtbl.replace rets fname !ops)
    prog.Ir.Prog.funcs;
  (* Forwarding channels: producers feed consumers of the same channel. *)
  let scalar_waits = ref [] (* (channel, dst node) *)
  and scalar_sigs = ref [] (* (channel, fname, operand) *)
  and sync_dsts = ref [] (* (channel, dst node) *)
  and mem_sigs = ref [] (* (channel, fname, addr operand) *) in
  (* Constraint generation. *)
  List.iter
    (fun (fname, f) ->
      Ir.Func.iter_instrs f (fun _ i ->
          match i.Ir.Instr.kind with
          | Ir.Instr.Mov (d, (Ir.Instr.Imm _ as op)) ->
            flow_operand fname (node fname d) op
          | Ir.Instr.Mov (_, Ir.Instr.Reg _) -> () (* unified above *)
          | Ir.Instr.Bin (_, d, a, b) ->
            (* Pointer arithmetic keeps pointing into the same object. *)
            flow_operand fname (node fname d) a;
            flow_operand fname (node fname d) b
          | Ir.Instr.Load (d, aop) -> flow_load fname (node fname d) aop
          | Ir.Instr.Store (aop, vop) -> begin
            match aop with
            | Ir.Instr.Imm n -> begin
              match obj_of_const n with
              | Some k -> flow_operand fname (memnode k) vop
              | None -> ()
            end
            | Ir.Instr.Reg r -> begin
              let a = root (node fname r) in
              (match vop with
              | Ir.Instr.Reg rv -> storec.(a) <- root (node fname rv) :: storec.(a)
              | Ir.Instr.Imm n -> begin
                match obj_of_const n with
                | Some k ->
                  storec_const.(a) <- Int_set.add k storec_const.(a)
                | None -> ()
              end);
              enqueue a
            end
          end
          | Ir.Instr.Call (dst, callee, args) -> begin
            match Ir.Prog.func_opt prog callee with
            | None -> ()
            | Some cf ->
              let rec bind params args =
                match (params, args) with
                | (_, preg) :: ps, a :: as_ ->
                  flow_operand fname (node callee preg) a;
                  bind ps as_
                | _ -> ()
              in
              bind cf.Ir.Func.params args;
              (match dst with
              | Some d ->
                List.iter
                  (fun rop -> flow_operand callee (node fname d) rop)
                  (try Hashtbl.find rets callee with Not_found -> [])
              | None -> ())
          end
          | Ir.Instr.Wait_scalar (ch, d) ->
            scalar_waits := (ch, node fname d) :: !scalar_waits
          | Ir.Instr.Signal_scalar (ch, op) ->
            scalar_sigs := (ch, fname, op) :: !scalar_sigs
          | Ir.Instr.Sync_load (ch, d, aop) ->
            flow_load fname (node fname d) aop;
            sync_dsts := (ch, node fname d) :: !sync_dsts
          | Ir.Instr.Signal_mem (ch, aop)
          | Ir.Instr.Signal_mem_if_unsent (ch, aop) ->
            mem_sigs := (ch, fname, aop) :: !mem_sigs
          | Ir.Instr.Print _ | Ir.Instr.Input _ | Ir.Instr.Input_len _
          | Ir.Instr.Wait_mem _ | Ir.Instr.Signal_null _
          | Ir.Instr.Signal_null_if_unsent _ ->
            ()))
    prog.Ir.Prog.funcs;
  List.iter
    (fun (ch, dst) ->
      List.iter
        (fun (ch', fs, op) -> if ch = ch' then flow_operand fs dst op)
        !scalar_sigs)
    !scalar_waits;
  (* A checked load receives mem[addr] for every signaled address of its
     channel (in addition to its own address, handled above). *)
  List.iter
    (fun (ch, dst) ->
      List.iter
        (fun (ch', fs, aop) -> if ch = ch' then flow_load fs dst aop)
        !mem_sigs)
    !sync_dsts;
  (* Fixpoint. *)
  for n = 0 to nnodes - 1 do
    if root n = n && not (Int_set.is_empty pts.(n)) then enqueue n
  done;
  while not (Queue.is_empty work) do
    let n = Queue.pop work in
    queued.(n) <- false;
    let p = pts.(n) in
    Int_set.iter (fun s -> add_objs s p) succ.(n);
    List.iter
      (fun d -> Int_set.iter (fun o -> add_edge (memnode o) d) p)
      loadc.(n);
    List.iter
      (fun v -> Int_set.iter (fun o -> add_edge v (memnode o)) p)
      storec.(n);
    if not (Int_set.is_empty storec_const.(n)) then
      Int_set.iter (fun o -> add_objs (memnode o) storec_const.(n)) p
  done;
  { objs; reg_base; mem_base; uf; pts }

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let reg_addr t fname r =
  match Hashtbl.find_opt t.reg_base fname with
  | None -> Unknown
  | Some base ->
    let n = Support.Union_find.find t.uf (base + r) in
    let s = t.pts.(n) in
    if Int_set.is_empty s then Unknown else Objects s

let operand_addr t fname = function
  | Ir.Instr.Imm n -> Exact n
  | Ir.Instr.Reg r -> reg_addr t fname r

let object_contents t k =
  let n = Support.Union_find.find t.uf (t.mem_base + k) in
  t.pts.(n)

let may_alias t a b =
  match (a, b) with
  | Unknown, _ | _, Unknown -> true
  | Exact x, Exact y -> x = y
  | Exact x, Objects s | Objects s, Exact x -> begin
    match object_containing t x with
    | Some o -> Int_set.mem o s
    | None -> false
  end
  | Objects s1, Objects s2 -> not (Int_set.disjoint s1 s2)

let pp_addr t = function
  | Exact a -> begin
    match object_containing t a with
    | Some o when t.objs.(o).o_addr = a -> t.objs.(o).o_name
    | Some o -> Printf.sprintf "%s+%d" t.objs.(o).o_name (a - t.objs.(o).o_addr)
    | None -> Printf.sprintf "0x%x" a
  end
  | Objects s ->
    Printf.sprintf "{%s}"
      (String.concat ","
         (List.map (fun o -> t.objs.(o).o_name) (Int_set.elements s)))
  | Unknown -> "?"
