(* Sync scheduling: hoist signals toward the definition of the value they
   forward, sink waits toward the first use of the value they receive
   (the sync-optimization of arXiv 1211.4101 applied to this IR).

   The memory-sync pass already places each static-group signal at the
   final store point of its epoch, so the producer-side slack is the
   distance between a store+signal pair and the instructions that compute
   the stored value; the consumer side is where the big win lives: the
   scalar pass parks every [Wait_scalar] at the top of the region header,
   so each epoch stalls at cycle 0 on every carried scalar whether or not
   it needs the value yet.

   Three kinds of scheduling unit, each moved as a whole:
   - a [Wait_scalar (ch, r)] sinks toward the first use of [r], in-block
     and across blocks (see the epoch-dominance rules below);
   - an adjacent [Wait_mem ch; Sync_load (ch, d, a)] pair sinks within its
     block toward the first use of [d];
   - an adjacent [Store (a, v); Signal_mem (ch, a')] pair hoists within
     its block toward the definitions of [a]/[v] (the backward slice over
     the forwarded value), alias-checked so no may-alias access crosses.

   Safety is purely static.  Under sequential semantics a wait is the
   identity and signals are no-ops, so any single-unit reordering that
   respects register def/use crossings and memory may-alias order is
   sequentially invisible.  Speculatively, a sunk wait must still execute
   before every same-epoch use of its register and before every same-epoch
   instruction the forwarded value flows into; both are enforced with
   *epoch dominance*: dominance computed over the loop body with back
   edges removed, entry at the header, so "s epoch-dominates b" means
   every same-iteration path from the header to [b] passes [s].  Plain
   block dominance is iteration-blind (a path may satisfy it by passing
   [s] in an *earlier* iteration) and would be unsound here.

   A sunk wait may leave some epoch paths wait-free (e.g. the loop-exit
   test path of a rotated loop).  That is safe when (a) every path to a
   latch still passes the wait — each committed epoch consumes exactly one
   signal, so bounded forwarding queues cannot fill with unconsumed
   signals — and (b) on every exit edge the wait either already executed
   or the register is dead outside the loop, so the final epoch cannot
   publish a stale value to post-loop code. *)

module ISet = Set.Make (Int)

type stats = {
  ss_waits_sunk : int;       (* scalar waits moved at least one slot *)
  ss_mem_sunk : int;         (* wait_mem + sync_load pairs moved *)
  ss_signals_hoisted : int;  (* store + signal_mem pairs moved *)
  ss_signals_inlined : int;  (* post-call signals moved into the callee *)
  ss_slots : int;            (* total instruction slots crossed *)
}

let zero =
  {
    ss_waits_sunk = 0;
    ss_mem_sunk = 0;
    ss_signals_hoisted = 0;
    ss_signals_inlined = 0;
    ss_slots = 0;
  }

let add a b =
  {
    ss_waits_sunk = a.ss_waits_sunk + b.ss_waits_sunk;
    ss_mem_sunk = a.ss_mem_sunk + b.ss_mem_sunk;
    ss_signals_hoisted = a.ss_signals_hoisted + b.ss_signals_hoisted;
    ss_signals_inlined = a.ss_signals_inlined + b.ss_signals_inlined;
    ss_slots = a.ss_slots + b.ss_slots;
  }

let total s =
  s.ss_waits_sunk + s.ss_mem_sunk + s.ss_signals_hoisted + s.ss_signals_inlined

let to_string s =
  Printf.sprintf
    "%d wait(s) sunk, %d mem pair(s) sunk, %d signal(s) hoisted, %d \
     inlined, %d slot(s)"
    s.ss_waits_sunk s.ss_mem_sunk s.ss_signals_hoisted s.ss_signals_inlined
    s.ss_slots

(* ------------------------------------------------------------------ *)
(* Epoch dominance                                                     *)
(* ------------------------------------------------------------------ *)

(* Dominators of the "epoch subgraph": the loop body restricted to edges
   that do not re-enter the header.  Entry is the header; a block's epoch
   dominators are the blocks every same-iteration path from the header
   must pass.  Reflexive. *)
let epoch_dominators (f : Ir.Func.t) (loop : Dataflow.Loops.loop) =
  let body = loop.Dataflow.Loops.body in
  let header = loop.Dataflow.Loops.header in
  let in_body l = List.mem l body in
  let succs l =
    Ir.Func.successors f l |> List.filter (fun s -> in_body s && s <> header)
  in
  let preds = Hashtbl.create 16 in
  List.iter
    (fun l ->
      List.iter
        (fun s ->
          Hashtbl.replace preds s
            (l :: Option.value (Hashtbl.find_opt preds s) ~default:[]))
        (succs l))
    body;
  let all = ISet.of_list body in
  let dom = Hashtbl.create 16 in
  List.iter
    (fun l ->
      Hashtbl.replace dom l
        (if l = header then ISet.singleton header else all))
    body;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        if l <> header then begin
          let ps = Option.value (Hashtbl.find_opt preds l) ~default:[] in
          let meet =
            match ps with
            | [] -> ISet.empty  (* unreachable within the epoch subgraph *)
            | p :: rest ->
              List.fold_left
                (fun acc q -> ISet.inter acc (Hashtbl.find dom q))
                (Hashtbl.find dom p) rest
          in
          let next = ISet.add l meet in
          if not (ISet.equal next (Hashtbl.find dom l)) then begin
            Hashtbl.replace dom l next;
            changed := true
          end
        end)
      body
  done;
  fun a b ->
    match Hashtbl.find_opt dom b with
    | Some s -> ISet.mem a s
    | None -> false

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)
(* ------------------------------------------------------------------ *)

(* Memory effect of an instruction: addresses it may read / may write.
   Memory-forwarding signals read [mem[addr]] when they execute, so they
   count as reads. *)
let mem_reads (i : Ir.Instr.t) =
  match i.Ir.Instr.kind with
  | Ir.Instr.Load (_, a)
  | Ir.Instr.Sync_load (_, _, a)
  | Ir.Instr.Signal_mem (_, a)
  | Ir.Instr.Signal_mem_if_unsent (_, a) ->
    [ a ]
  | _ -> []

let mem_writes (i : Ir.Instr.t) =
  match i.Ir.Instr.kind with
  | Ir.Instr.Store (a, _) -> [ a ]
  | _ -> []

let is_call (i : Ir.Instr.t) =
  match i.Ir.Instr.kind with
  | Ir.Instr.Call _ -> true
  | _ -> false

let may_alias_any pt fname ops addr =
  let a = Pointsto.operand_addr pt fname addr in
  List.exists
    (fun o -> Pointsto.may_alias pt (Pointsto.operand_addr pt fname o) a)
    ops

(* Swap the instructions at positions [idx] and [idx + 1] of block [l]. *)
let swap_down f l idx =
  let b = Ir.Func.block f l in
  let arr = Array.of_list b.Ir.Func.instrs in
  let tmp = arr.(idx) in
  arr.(idx) <- arr.(idx + 1);
  arr.(idx + 1) <- tmp;
  b.Ir.Func.instrs <- Array.to_list arr

(* Move the adjacent pair at [idx, idx+1] one slot down (past [idx+2]) or
   one slot up (past [idx-1]). *)
let move_pair f l idx ~down =
  let b = Ir.Func.block f l in
  let arr = Array.of_list b.Ir.Func.instrs in
  if down then begin
    let crossed = arr.(idx + 2) in
    arr.(idx + 2) <- arr.(idx + 1);
    arr.(idx + 1) <- arr.(idx);
    arr.(idx) <- crossed
  end
  else begin
    let crossed = arr.(idx - 1) in
    arr.(idx - 1) <- arr.(idx);
    arr.(idx) <- arr.(idx + 1);
    arr.(idx + 1) <- crossed
  end;
  b.Ir.Func.instrs <- Array.to_list arr

(* ------------------------------------------------------------------ *)
(* Scalar wait sinking                                                 *)
(* ------------------------------------------------------------------ *)

(* Blocks of the loop body holding a def or use of [r] (instruction or
   terminator). *)
let reg_blocks (f : Ir.Func.t) (body : int list) r =
  List.filter
    (fun l ->
      let b = Ir.Func.block f l in
      List.exists
        (fun (i : Ir.Instr.t) ->
          List.mem r (Ir.Instr.defs i) || List.mem r (Ir.Instr.uses i))
        b.Ir.Func.instrs
      || List.mem r (Ir.Instr.term_uses b.Ir.Func.term))
    body

let sink_scalar_wait f (loop : Dataflow.Loops.loop) ~edom ~live ~exits ~loops
    ch r =
  let header = loop.Dataflow.Loops.header in
  let latches = loop.Dataflow.Loops.back_edges in
  let loops_containing b =
    List.filter_map
      (fun (l : Dataflow.Loops.loop) ->
        if List.mem b l.Dataflow.Loops.body then Some l.Dataflow.Loops.header
        else None)
      loops
    |> List.sort compare
  in
  let header_loops = loops_containing header in
  let rblocks = reg_blocks f loop.Dataflow.Loops.body r in
  let target_ok s =
    s <> header
    && List.mem s loop.Dataflow.Loops.body
    && loops_containing s = header_loops
    && List.for_all (fun latch -> edom s latch) latches
    && List.for_all
         (fun (u, v) -> edom s u || not (Dataflow.Liveness.is_live_in live v r))
         exits
    && List.for_all (fun b -> b = s || edom s b) rblocks
  in
  (* Find the wait. *)
  let pos = ref None in
  List.iter
    (fun l ->
      List.iteri
        (fun idx (i : Ir.Instr.t) ->
          match i.Ir.Instr.kind with
          | Ir.Instr.Wait_scalar (c, r') when c = ch && r' = r && !pos = None
            ->
            pos := Some (l, idx)
          | _ -> ())
        (Ir.Func.block f l).Ir.Func.instrs)
    loop.Dataflow.Loops.body;
  match !pos with
  | None -> (false, 0)
  | Some (l0, idx0) ->
    let slots = ref 0 in
    let l = ref l0 and idx = ref idx0 in
    let continue = ref true in
    while !continue do
      let b = Ir.Func.block f !l in
      let len = List.length b.Ir.Func.instrs in
      if !idx + 1 < len then begin
        let next = List.nth b.Ir.Func.instrs (!idx + 1) in
        let safe =
          Ir.Instr.channel_of next <> Some ch
          && (not (List.mem r (Ir.Instr.defs next)))
          && not (List.mem r (Ir.Instr.uses next))
        in
        if safe then begin
          swap_down f !l !idx;
          incr idx;
          incr slots
        end
        else continue := false
      end
      else if List.mem r (Ir.Instr.term_uses b.Ir.Func.term) then
        continue := false
      else begin
        (* At the bottom of the block: step into a successor from which
           every remaining latch, exit, use and def is still covered. *)
        match List.find_opt target_ok (Ir.Func.successors f !l) with
        | Some s ->
          let wait = Ir.Edit.remove_at f !l !idx in
          Ir.Edit.insert_at f s 0 [ wait ];
          l := s;
          idx := 0;
          incr slots
        | None -> continue := false
      end
    done;
    (((!l, !idx) <> (l0, idx0)), !slots)

(* ------------------------------------------------------------------ *)
(* Memory wait+load pair sinking (within block)                        *)
(* ------------------------------------------------------------------ *)

let sink_mem_pairs pt fname f (region : Ir.Region.t) =
  let moved = ref 0 and slots = ref 0 in
  List.iter
    (fun l ->
      (* Re-scan the block until no pair moves (positions shift as pairs
         sink). *)
      let progress = ref true in
      let already = Hashtbl.create 4 in
      while !progress do
        progress := false;
        let instrs = Array.of_list (Ir.Func.block f l).Ir.Func.instrs in
        let n = Array.length instrs in
        let i = ref 0 in
        while !i + 1 < n && not !progress do
          (match (instrs.(!i).Ir.Instr.kind, instrs.(!i + 1).Ir.Instr.kind) with
          | Ir.Instr.Wait_mem ch, Ir.Instr.Sync_load (ch', d, a)
            when ch = ch'
                 && List.exists
                      (fun (g : Ir.Region.mem_group) -> g.Ir.Region.mg_id = ch)
                      region.Ir.Region.mem_groups ->
            let load_iid = instrs.(!i + 1).Ir.Instr.iid in
            let cur = ref !i in
            let moved_this = ref 0 in
            let continue = ref true in
            while !continue && !cur + 2 < n do
              let k = instrs.(!cur + 2) in
              let addr_regs =
                match a with Ir.Instr.Reg r -> [ r ] | Ir.Instr.Imm _ -> []
              in
              let safe =
                Ir.Instr.channel_of k <> Some ch
                && (not (is_call k))
                && (not
                      (List.exists
                         (fun rg -> rg = d || List.mem rg addr_regs)
                         (Ir.Instr.defs k)))
                && (not (List.mem d (Ir.Instr.uses k)))
                && not (may_alias_any pt fname (mem_writes k) a)
              in
              if safe then begin
                move_pair f l !cur ~down:true;
                (* refresh the local array view *)
                let fresh = Array.of_list (Ir.Func.block f l).Ir.Func.instrs in
                Array.blit fresh 0 instrs 0 n;
                incr cur;
                incr moved_this;
                incr slots
              end
              else continue := false
            done;
            if !moved_this > 0 && not (Hashtbl.mem already load_iid) then begin
              Hashtbl.replace already load_iid ();
              incr moved;
              progress := true  (* rescan from a consistent view *)
            end
          | _ -> ());
          incr i
        done
      done)
    region.Ir.Region.blocks;
  (!moved, !slots)

(* ------------------------------------------------------------------ *)
(* Store+signal pair hoisting (within block)                           *)
(* ------------------------------------------------------------------ *)

let hoist_signal_pairs pt fname f (region : Ir.Region.t) =
  let moved = ref 0 and slots = ref 0 in
  List.iter
    (fun l ->
      let progress = ref true in
      let already = Hashtbl.create 4 in
      while !progress do
        progress := false;
        let instrs = Array.of_list (Ir.Func.block f l).Ir.Func.instrs in
        let n = Array.length instrs in
        let i = ref 0 in
        while !i + 1 < n && not !progress do
          (match (instrs.(!i).Ir.Instr.kind, instrs.(!i + 1).Ir.Instr.kind) with
          | Ir.Instr.Store (sa, sv), Ir.Instr.Signal_mem (ch, ga)
            when List.exists
                   (fun (g : Ir.Region.mem_group) -> g.Ir.Region.mg_id = ch)
                   region.Ir.Region.mem_groups ->
            let sig_iid = instrs.(!i + 1).Ir.Instr.iid in
            let unit_regs =
              List.concat_map
                (function Ir.Instr.Reg r -> [ r ] | Ir.Instr.Imm _ -> [])
                [ sa; sv; ga ]
            in
            let cur = ref !i in
            let moved_this = ref 0 in
            let continue = ref true in
            while !continue && !cur > 0 do
              let p = instrs.(!cur - 1) in
              let safe =
                Ir.Instr.channel_of p <> Some ch
                && (not (is_call p))
                && (not
                      (List.exists
                         (fun rg -> List.mem rg unit_regs)
                         (Ir.Instr.defs p)))
                (* a read that may alias the store must keep seeing the
                   pre-store value *)
                && (not (may_alias_any pt fname (mem_reads p) sa))
                (* write/write order on the stored address, and the signal
                   must still read memory after every earlier store that
                   may alias its forwarded address *)
                && (not (may_alias_any pt fname (mem_writes p) sa))
                && not (may_alias_any pt fname (mem_writes p) ga)
              in
              if safe then begin
                move_pair f l !cur ~down:false;
                let fresh = Array.of_list (Ir.Func.block f l).Ir.Func.instrs in
                Array.blit fresh 0 instrs 0 n;
                decr cur;
                incr moved_this;
                incr slots
              end
              else continue := false
            done;
            if !moved_this > 0 && not (Hashtbl.mem already sig_iid) then begin
              Hashtbl.replace already sig_iid ();
              incr moved;
              progress := true
            end
          | _ -> ());
          incr i
        done
      done)
    region.Ir.Region.blocks;
  (!moved, !slots)

(* ------------------------------------------------------------------ *)
(* Post-call signal hoisting into single-call-site callees             *)
(* ------------------------------------------------------------------ *)

(* A [Signal_mem (ch, [a])] that directly follows a call fires only after
   the whole callee tail has executed, even when the callee's store to
   [a] completes early — the consumer epoch then stalls for the entire
   remainder of the callee.  When the callee is a dedicated clone (one
   call site in the whole program, no nested calls, no sync on [ch]),
   the signal can instead fire inside the callee, at the top of the
   earliest block that post-dominates the callee entry, executes at most
   once per call (not in a cycle), and from which no may-alias store to
   [a] is reachable: at that point the forwarded value is final on every
   path and the per-epoch signal count is unchanged.

   The caller keeps a guarded [Signal_mem_if_unsent] at the original
   position (same iid), so the region's signal-exactness invariant —
   checked by [Synclint], whose per-channel epoch dataflow treats calls
   as channel-neutral — still holds syntactically; at run time the guard
   is a no-op because the callee has always signaled first. *)

let call_counts (prog : Ir.Prog.t) =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun (_, f) ->
      Ir.Func.iter_instrs f (fun _ (i : Ir.Instr.t) ->
          match i.Ir.Instr.kind with
          | Ir.Instr.Call (_, g, _) ->
            Hashtbl.replace counts g
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts g))
          | _ -> ()))
    prog.Ir.Prog.funcs;
  counts

(* Labels reachable from the start of [l0], inclusive. *)
let reachable_from (g : Ir.Func.t) l0 =
  let seen = Hashtbl.create 16 in
  let rec go l =
    if not (Hashtbl.mem seen l) then begin
      Hashtbl.replace seen l ();
      List.iter go (Ir.Func.successors g l)
    end
  in
  go l0;
  seen

let is_signal_family (i : Ir.Instr.t) =
  match i.Ir.Instr.kind with
  | Ir.Instr.Signal_mem _ | Ir.Instr.Signal_mem_if_unsent _
  | Ir.Instr.Signal_scalar _ | Ir.Instr.Signal_null _
  | Ir.Instr.Signal_null_if_unsent _ ->
    true
  | _ -> false

(* The earliest block of [g] where [Signal_mem (ch, ga)] may fire: post-
   dominates the entry (fires on every call), not in a cycle (fires at
   most once), and from its top no may-alias store to [ga] and no other
   instruction on channel [ch] is reachable — the callee may well wait on
   [ch] itself (it consumes the predecessor epoch's value before storing
   the new one), and the inserted signal must stay after that wait and
   after every store on every path. *)
let callee_signal_point pt ~caller gname (g : Ir.Func.t) ch ga =
  let has_call = ref false in
  Ir.Func.iter_instrs g (fun _ i -> if is_call i then has_call := true);
  if !has_call then None
  else begin
    let target = Pointsto.operand_addr pt caller ga in
    let pdom = Dataflow.Dominance.compute_post g in
    let n = Ir.Func.num_blocks g in
    let blocked = Hashtbl.create 8 in
    let conflict_from l =
      match Hashtbl.find_opt blocked l with
      | Some b -> b
      | None ->
        let seen = reachable_from g l in
        let conflict =
          Hashtbl.fold
            (fun b () acc ->
              acc
              || List.exists
                   (fun (i : Ir.Instr.t) ->
                     Ir.Instr.channel_of i = Some ch
                     || List.exists
                          (fun w ->
                            Pointsto.may_alias pt
                              (Pointsto.operand_addr pt gname w)
                              target)
                          (mem_writes i))
                   (Ir.Func.block g b).Ir.Func.instrs)
            seen false
        in
        Hashtbl.replace blocked l conflict;
        conflict
    in
    let in_cycle l =
      List.exists
        (fun s -> Hashtbl.mem (reachable_from g s) l)
        (Ir.Func.successors g l)
    in
    let candidates = ref [] in
    for l = 0 to n - 1 do
      if
        Dataflow.Dominance.post_dominates pdom l Ir.Func.entry
        && (not (in_cycle l))
        && not (conflict_from l)
      then candidates := l :: !candidates
    done;
    (* Post-dominators of the entry form a chain; the earliest candidate
       is the one every other candidate post-dominates. *)
    List.find_opt
      (fun c ->
        List.for_all
          (fun c' -> c' = c || Dataflow.Dominance.post_dominates pdom c' c)
          !candidates)
      !candidates
  end

let hoist_signals_into_callees pt (prog : Ir.Prog.t) (region : Ir.Region.t) =
  let caller = region.Ir.Region.func in
  let f = Ir.Prog.func prog caller in
  let counts = call_counts prog in
  let moved = ref 0 and slots = ref 0 in
  List.iter
    (fun l ->
      (* Collect (callee, signal) pairs first: rewrites keep positions
         stable in the caller (replace-in-place) and only grow callees. *)
      let pending = ref [] in
      let instrs = Array.of_list (Ir.Func.block f l).Ir.Func.instrs in
      Array.iteri
        (fun i (ins : Ir.Instr.t) ->
          match ins.Ir.Instr.kind with
          | Ir.Instr.Call (_, gname, _) ->
            let j = ref (i + 1) in
            while !j < Array.length instrs && is_signal_family instrs.(!j) do
              (match instrs.(!j).Ir.Instr.kind with
              | Ir.Instr.Signal_mem (ch, (Ir.Instr.Imm _ as ga))
                when List.exists
                       (fun (g : Ir.Region.mem_group) ->
                         g.Ir.Region.mg_id = ch)
                       region.Ir.Region.mem_groups ->
                pending := (gname, instrs.(!j).Ir.Instr.iid, ch, ga) :: !pending
              | _ -> ());
              incr j
            done
          | _ -> ())
        instrs;
      List.iter
        (fun (gname, sig_iid, ch, ga) ->
          if gname <> caller && Hashtbl.find_opt counts gname = Some 1 then
            match Ir.Prog.func_opt prog gname with
            | None -> ()
            | Some g -> (
              match callee_signal_point pt ~caller gname g ch ga with
              | None -> ()
              | Some b ->
                (* Slots gained: every instruction from the insertion
                   point to the callee's exit now runs after the signal
                   instead of before it. *)
                Hashtbl.iter
                  (fun bl () ->
                    slots :=
                      !slots
                      + List.length (Ir.Func.block g bl).Ir.Func.instrs)
                  (reachable_from g b);
                Ir.Edit.replace_kind f ~anchor:sig_iid
                  (Ir.Instr.Signal_mem_if_unsent (ch, ga));
                Ir.Edit.prepend g b
                  [
                    {
                      Ir.Instr.iid =
                        Ir.Prog.fresh_iid prog ~in_func:gname
                          ~what:(Printf.sprintf "hoisted signal ch%d" ch);
                      kind = Ir.Instr.Signal_mem (ch, ga);
                    };
                  ];
                incr moved))
        (List.rev !pending))
    region.Ir.Region.blocks;
  (!moved, !slots)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let apply_region pt (prog : Ir.Prog.t) (region : Ir.Region.t) =
  let fname = region.Ir.Region.func in
  let f = Ir.Prog.func prog fname in
  let loops = Dataflow.Loops.find f in
  match Dataflow.Loops.loop_of loops region.Ir.Region.header with
  | None -> zero
  | Some loop ->
    let edom = epoch_dominators f loop in
    let live = Dataflow.Liveness.compute f in
    let exits = Dataflow.Loops.exit_edges f loop in
    let waits_sunk = ref 0 and wait_slots = ref 0 in
    List.iter
      (fun (sc : Ir.Region.scalar_channel) ->
        let moved, slots =
          sink_scalar_wait f loop ~edom ~live ~exits ~loops sc.Ir.Region.sc_id
            sc.Ir.Region.sc_reg
        in
        if moved then incr waits_sunk;
        wait_slots := !wait_slots + slots)
      region.Ir.Region.scalar_channels;
    let mem_moved, mem_slots = sink_mem_pairs pt fname f region in
    let sig_moved, sig_slots = hoist_signal_pairs pt fname f region in
    let inl_moved, inl_slots = hoist_signals_into_callees pt prog region in
    {
      ss_waits_sunk = !waits_sunk;
      ss_mem_sunk = mem_moved;
      ss_signals_hoisted = sig_moved;
      ss_signals_inlined = inl_moved;
      ss_slots = !wait_slots + mem_slots + sig_slots + inl_slots;
    }

let apply ?pointsto (prog : Ir.Prog.t) =
  let pt =
    match pointsto with Some p -> p | None -> Pointsto.analyze prog
  in
  List.fold_left
    (fun acc r -> add acc (apply_region pt prog r))
    zero prog.Ir.Prog.regions
