(* Static stall-cycle estimation and violation-risk prediction for the
   synchronized regions — the per-dependence classification the
   Prophet-style pre-computation model (arXiv 1412.3224) consumes,
   computed without running the simulator.

   Per-channel stall model.  Let d_p be the estimated number of cycles
   from the start of an epoch to its (last) signal on channel c, and d_c
   the estimated cycles to its (first) wait on c.  Successive epochs start
   about [spawn_overhead] cycles apart, and a forwarded value becomes
   visible [forward_latency] cycles after the signal, so the predicted
   stall per epoch is

     stall(c) = max(0, d_p + forward_latency - spawn_overhead - d_c)

   and the whole-run prediction multiplies by the number of consumer
   epochs (profiled iterations minus one per loop instance).  Distances
   are computed over the epoch DAG — the loop body with all back edges
   removed — with equal branch weighting; a block nested in an inner loop
   contributes its cost times the inner loop's profiled average trip
   count.  Instruction cost is 1/issue_width cycles, plus the extra
   latency of multiplies and divides, plus the (memoized, transitive)
   body cost of called functions.

   Violation prediction is a deliberate over-approximation: every load
   executed by the region (in the loop body or any transitively called
   function) whose address may conflict with some store the region may
   execute is flagged.  Soundness direction matters here — the set must
   be a superset of the violations the simulator observes, so an
   alias-unknown load counts against every store, and under line-granular
   dependence tracking ([track_line_words]) "conflict" means sharing a
   cache line, not just aliasing: the simulator's speculative read/write
   sets are keyed by line, so false sharing between adjacent objects
   violates too and must be predicted. *)

module ISet = Set.Make (Int)

type params = {
  issue_width : int;
  lat_mul : int;
  lat_div : int;
  forward_latency : int;
  spawn_overhead : int;
  track_line_words : int option;
      (* Some w: the simulator tracks speculative state at w-word cache
         line granularity; None: word-level tracking *)
}

type channel_kind =
  | Scalar
  | Mem

type channel_cost = {
  cc_channel : Ir.Instr.channel;
  cc_kind : channel_kind;
  cc_producer : float;   (* est. cycles from epoch start to the signal *)
  cc_consumer : float;   (* est. cycles from epoch start to the wait *)
  cc_stall : float;      (* predicted stall cycles per consumer epoch *)
  cc_total : float;      (* predicted stall cycles over the whole run *)
}

type region_cost = {
  rc_id : int;
  rc_func : string;
  rc_header : Ir.Instr.label;
  rc_epochs : int;       (* profiled epochs (header arrivals) *)
  rc_channels : channel_cost list;
  rc_violations : Ir.Instr.iid list;  (* predicted-violation superset *)
}

let kind_string = function
  | Scalar -> "scalar"
  | Mem -> "mem"

(* ------------------------------------------------------------------ *)
(* Instruction and block costs                                         *)
(* ------------------------------------------------------------------ *)

(* Transitive cost of calling each function: the sum of its instruction
   costs, callees included, each function's body counted once (recursion
   contributes a single unrolling). *)
let func_costs params (prog : Ir.Prog.t) =
  let costs = Hashtbl.create 16 in
  let base_cost (i : Ir.Instr.t) =
    1.0 /. float_of_int (max 1 params.issue_width)
    +.
    match i.Ir.Instr.kind with
    | Ir.Instr.Bin (Ir.Instr.Mul, _, _, _) ->
      float_of_int (params.lat_mul - 1)
    | Ir.Instr.Bin ((Ir.Instr.Div | Ir.Instr.Rem), _, _, _) ->
      float_of_int (params.lat_div - 1)
    | _ -> 0.0
  in
  let rec cost_of visiting fname =
    match Hashtbl.find_opt costs fname with
    | Some c -> c
    | None ->
      if List.mem fname visiting then 0.0
      else begin
        match Ir.Prog.func_opt prog fname with
        | None -> 0.0
        | Some f ->
          let acc = ref 0.0 in
          Ir.Func.iter_instrs f (fun _ i ->
              acc := !acc +. base_cost i;
              match i.Ir.Instr.kind with
              | Ir.Instr.Call (_, callee, _) ->
                acc := !acc +. cost_of (fname :: visiting) callee
              | _ -> ());
          Hashtbl.replace costs fname !acc;
          !acc
      end
  in
  List.iter (fun (fname, _) -> ignore (cost_of [] fname)) prog.Ir.Prog.funcs;
  fun fname -> Option.value (Hashtbl.find_opt costs fname) ~default:0.0

let instr_cost params callee_cost (i : Ir.Instr.t) =
  1.0 /. float_of_int (max 1 params.issue_width)
  +.
  match i.Ir.Instr.kind with
  | Ir.Instr.Bin (Ir.Instr.Mul, _, _, _) -> float_of_int (params.lat_mul - 1)
  | Ir.Instr.Bin ((Ir.Instr.Div | Ir.Instr.Rem), _, _, _) ->
    float_of_int (params.lat_div - 1)
  | Ir.Instr.Call (_, callee, _) -> callee_cost callee
  | _ -> 0.0

(* ------------------------------------------------------------------ *)
(* Epoch DAG distances                                                 *)
(* ------------------------------------------------------------------ *)

(* Average trip count of a profiled loop (1 if it never ran). *)
let avg_trips (profile : Profiler.Profile.t) fname header =
  let st =
    Profiler.Profile.stats profile
      { Profiler.Profile.lk_func = fname; lk_header = header }
  in
  if st.Profiler.Profile.instances = 0 then 1.0
  else
    float_of_int st.Profiler.Profile.iterations
    /. float_of_int st.Profiler.Profile.instances

(* Estimated cycles from the start of an epoch (top of [loop]'s header)
   to each (block, position) point of the loop body; returns a function
   of (block, pos).  Back edges (any edge into a loop header from inside
   that loop) are removed; remaining edges are averaged with equal
   weight; blocks inside an inner loop are weighted by its profiled
   average trip count relative to the region loop. *)
let epoch_distances params profile callee_cost fname (f : Ir.Func.t)
    (loops : Dataflow.Loops.loop list) (loop : Dataflow.Loops.loop) =
  let body = loop.Dataflow.Loops.body in
  let header = loop.Dataflow.Loops.header in
  let in_body l = List.mem l body in
  (* Multiplier of a block: product of the average trip counts of the
     loops strictly inside the region loop that contain it. *)
  let mult b =
    List.fold_left
      (fun acc (l : Dataflow.Loops.loop) ->
        if
          l.Dataflow.Loops.header <> header
          && List.mem l.Dataflow.Loops.header body
          && List.mem b l.Dataflow.Loops.body
        then acc *. avg_trips profile fname l.Dataflow.Loops.header
        else acc)
      1.0 loops
  in
  let block_cost l =
    List.fold_left
      (fun acc i -> acc +. instr_cost params callee_cost i)
      0.0 (Ir.Func.block f l).Ir.Func.instrs
  in
  let is_back_edge u v =
    (* an edge into the header of any loop containing its source *)
    List.exists
      (fun (l : Dataflow.Loops.loop) ->
        v = l.Dataflow.Loops.header && List.mem u l.Dataflow.Loops.body)
      loops
  in
  let succs l =
    Ir.Func.successors f l
    |> List.filter (fun s -> in_body s && not (is_back_edge l s))
  in
  let preds = Hashtbl.create 16 in
  List.iter
    (fun l ->
      List.iter
        (fun s ->
          Hashtbl.replace preds s
            (l :: Option.value (Hashtbl.find_opt preds s) ~default:[]))
        (succs l))
    body;
  (* Topological order of the epoch DAG by DFS from the header. *)
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit l =
    if not (Hashtbl.mem seen l) then begin
      Hashtbl.replace seen l ();
      List.iter visit (succs l);
      order := l :: !order
    end
  in
  visit header;
  let dist = Hashtbl.create 16 in
  Hashtbl.replace dist header 0.0;
  List.iter
    (fun l ->
      if l <> header then begin
        let ps =
          Option.value (Hashtbl.find_opt preds l) ~default:[]
          |> List.filter (Hashtbl.mem dist)
        in
        match ps with
        | [] -> ()
        | _ ->
          let sum =
            List.fold_left
              (fun acc p ->
                acc +. Hashtbl.find dist p +. (block_cost p *. mult p))
              0.0 ps
          in
          Hashtbl.replace dist l (sum /. float_of_int (List.length ps))
      end)
    !order;
  fun (l, pos) ->
    match Hashtbl.find_opt dist l with
    | None -> None
    | Some d ->
      let instrs = (Ir.Func.block f l).Ir.Func.instrs in
      let partial = ref 0.0 in
      List.iteri
        (fun k i ->
          if k < pos then partial := !partial +. instr_cost params callee_cost i)
        instrs;
      Some (d +. (!partial *. mult l))

(* ------------------------------------------------------------------ *)
(* Violation prediction                                                *)
(* ------------------------------------------------------------------ *)

(* Functions the region may execute: the region's own function restricted
   to the loop body, plus every transitively called function (whole
   bodies). *)
let region_scope (prog : Ir.Prog.t) (region : Ir.Region.t) =
  let f = Ir.Prog.func prog region.Ir.Region.func in
  let callees = ref [] in
  let rec add_callee name =
    if not (List.mem name !callees) then begin
      callees := name :: !callees;
      match Ir.Prog.func_opt prog name with
      | None -> ()
      | Some g ->
        Ir.Func.iter_instrs g (fun _ i ->
            match i.Ir.Instr.kind with
            | Ir.Instr.Call (_, c, _) -> add_callee c
            | _ -> ())
    end
  in
  List.iter
    (fun l ->
      List.iter
        (fun (i : Ir.Instr.t) ->
          match i.Ir.Instr.kind with
          | Ir.Instr.Call (_, c, _) -> add_callee c
          | _ -> ())
        (Ir.Func.block f l).Ir.Func.instrs)
    region.Ir.Region.blocks;
  (* accesses: (fname, instr) in scope *)
  let acc = ref [] in
  List.iter
    (fun l ->
      List.iter
        (fun (i : Ir.Instr.t) -> acc := (region.Ir.Region.func, i) :: !acc)
        (Ir.Func.block f l).Ir.Func.instrs)
    region.Ir.Region.blocks;
  List.iter
    (fun name ->
      match Ir.Prog.func_opt prog name with
      | None -> ()
      | Some g -> Ir.Func.iter_instrs g (fun _ i -> acc := (name, i) :: !acc))
    !callees;
  List.rev !acc

(* The lines an abstract address may touch, mirroring the simulator's
   speculative-set key ([Memsys.line_of]; layout addresses are
   non-negative, so plain division matches its floor semantics).
   [`All] conflicts with everything. *)
let lines_of_addr pt w = function
  | Pointsto.Unknown -> `All
  | Pointsto.Exact a -> `Lines (ISet.singleton (a / w))
  | Pointsto.Objects s ->
    `Lines
      (Pointsto.Int_set.fold
         (fun k acc ->
           let base, words = Pointsto.object_extent pt k in
           let rec add l acc =
             if l > (base + words - 1) / w then acc
             else add (l + 1) (ISet.add l acc)
           in
           add (base / w) acc)
         s ISet.empty)

let predicted_violations pt params (prog : Ir.Prog.t) (region : Ir.Region.t) =
  let scope = region_scope prog region in
  let conflict =
    match params.track_line_words with
    | None -> fun sa la -> Pointsto.may_alias pt sa la
    | Some w -> (
      fun sa la ->
        match (lines_of_addr pt w sa, lines_of_addr pt w la) with
        | `All, _ | _, `All -> true
        | `Lines s1, `Lines s2 -> not (ISet.disjoint s1 s2))
  in
  let loads =
    List.filter_map
      (fun (fname, (i : Ir.Instr.t)) ->
        match i.Ir.Instr.kind with
        | Ir.Instr.Load (_, a) | Ir.Instr.Sync_load (_, _, a) ->
          Some (i.Ir.Instr.iid, Pointsto.operand_addr pt fname a)
        | _ -> None)
      scope
  in
  let stores =
    List.filter_map
      (fun (fname, (i : Ir.Instr.t)) ->
        match i.Ir.Instr.kind with
        | Ir.Instr.Store (a, _) -> Some (Pointsto.operand_addr pt fname a)
        | _ -> None)
      scope
  in
  List.filter_map
    (fun (iid, la) ->
      if List.exists (fun sa -> conflict sa la) stores then Some iid
      else None)
    loads
  |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Per-region analysis                                                 *)
(* ------------------------------------------------------------------ *)

let sync_points (f : Ir.Func.t) (body : int list) =
  let waits = Hashtbl.create 8 and signals = Hashtbl.create 8 in
  List.iter
    (fun l ->
      List.iteri
        (fun pos (i : Ir.Instr.t) ->
          match i.Ir.Instr.kind with
          | Ir.Instr.Wait_scalar (ch, _) | Ir.Instr.Wait_mem ch ->
            if not (Hashtbl.mem waits ch) then Hashtbl.replace waits ch (l, pos)
          | Ir.Instr.Signal_scalar (ch, _)
          | Ir.Instr.Signal_mem (ch, _)
          | Ir.Instr.Signal_mem_if_unsent (ch, _)
          | Ir.Instr.Signal_null ch
          | Ir.Instr.Signal_null_if_unsent ch ->
            Hashtbl.replace signals ch
              ((l, pos)
              :: Option.value (Hashtbl.find_opt signals ch) ~default:[])
          | _ -> ())
        (Ir.Func.block f l).Ir.Func.instrs)
    body;
  (waits, signals)

let analyze_region pt params profile (prog : Ir.Prog.t)
    (region : Ir.Region.t) =
  let fname = region.Ir.Region.func in
  let f = Ir.Prog.func prog fname in
  let loops = Dataflow.Loops.find f in
  let callee_cost = func_costs params prog in
  let stats =
    Profiler.Profile.stats profile
      { Profiler.Profile.lk_func = fname; lk_header = region.Ir.Region.header }
  in
  let epochs = stats.Profiler.Profile.iterations in
  let consumer_epochs =
    max 0 (stats.Profiler.Profile.iterations - stats.Profiler.Profile.instances)
  in
  let channels =
    match Dataflow.Loops.loop_of loops region.Ir.Region.header with
    | None -> []
    | Some loop ->
      let dist =
        epoch_distances params profile callee_cost fname f loops loop
      in
      let body_cost =
        (* fallback producer distance: the average full epoch length,
           approximated by the distance to the latest latch end *)
        List.fold_left
          (fun acc l ->
            match dist (l, List.length (Ir.Func.block f l).Ir.Func.instrs) with
            | Some d -> Float.max acc d
            | None -> acc)
          0.0 loop.Dataflow.Loops.back_edges
      in
      let waits, signals = sync_points f loop.Dataflow.Loops.body in
      let kinds =
        List.map
          (fun (sc : Ir.Region.scalar_channel) -> (sc.Ir.Region.sc_id, Scalar))
          region.Ir.Region.scalar_channels
        @ List.map
            (fun (g : Ir.Region.mem_group) -> (g.Ir.Region.mg_id, Mem))
            region.Ir.Region.mem_groups
      in
      List.filter_map
        (fun (ch, kind) ->
          match Hashtbl.find_opt waits ch with
          | None -> None
          | Some wp ->
            let d_c = Option.value (dist wp) ~default:0.0 in
            let d_p =
              match Hashtbl.find_opt signals ch with
              | None | Some [] ->
                (* signals live in clones (pointer groups): assume the
                   value is complete only at epoch end *)
                body_cost
              | Some sites ->
                List.fold_left
                  (fun acc site ->
                    match dist site with
                    | Some d -> Float.max acc d
                    | None -> acc)
                  0.0 sites
            in
            let stall =
              Float.max 0.0
                (d_p
                +. float_of_int params.forward_latency
                -. float_of_int params.spawn_overhead
                -. d_c)
            in
            Some
              {
                cc_channel = ch;
                cc_kind = kind;
                cc_producer = d_p;
                cc_consumer = d_c;
                cc_stall = stall;
                cc_total = stall *. float_of_int consumer_epochs;
              })
        kinds
      |> List.sort (fun a b -> compare a.cc_channel b.cc_channel)
  in
  {
    rc_id = region.Ir.Region.id;
    rc_func = fname;
    rc_header = region.Ir.Region.header;
    rc_epochs = epochs;
    rc_channels = channels;
    rc_violations = predicted_violations pt params prog region;
  }

let analyze ?pointsto params profile (prog : Ir.Prog.t) =
  let pt =
    match pointsto with Some p -> p | None -> Pointsto.analyze prog
  in
  List.map
    (fun r -> analyze_region pt params profile prog r)
    prog.Ir.Prog.regions
  |> List.sort (fun a b -> compare a.rc_id b.rc_id)
