(** Monotone wake-event priority queue for the event-driven simulator
    core (DESIGN §15): a binary min-heap keyed by cycle with a monotone
    per-queue sequence number breaking ties, so events posted for the
    same cycle pop in push order (stable).  Int payloads, zero
    steady-state allocation. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val is_empty : t -> bool

(** Drop all events and restart the tie-break sequence. *)
val clear : t -> unit

(** Post an event.  Cycles need not be pushed in order; stability is
    FIFO among events sharing a cycle. *)
val push : t -> cycle:int -> int -> unit

(** Cycle of the minimum event, [max_int] when empty. *)
val min_cycle : t -> int

(** Payload of the minimum event; undefined when empty. *)
val min_payload : t -> int

(** Remove and return the minimum [(cycle, payload)]; undefined when
    empty — guard with {!is_empty}. *)
val pop : t -> int * int
