(** Memory-hierarchy latency model: per-processor private L1 data caches
    backed by a shared L2 (Table 1).  Returns the access latency for each
    load/store and maintains the cache state. *)

type t

val create : Config.t -> t

(** [access t ~proc ~addr] — latency in cycles of a data access by
    processor [proc] to word address [addr]. *)
val access : t -> proc:int -> addr:int -> int

(** Line id of a word address. *)
val line_of : t -> int -> int

(** Same as {!access}, additionally publishing the accessed line id via
    {!last_line} — the speculative read/write trackers key on the same
    line, so the event engine reads it back instead of recomputing
    [line_of] on every load and store. *)
val access_line : t -> proc:int -> addr:int -> int

(** Line id of the most recent {!access_line}/{!access}. *)
val last_line : t -> int

val l1_hits : t -> int
val l1_misses : t -> int
val l2_misses : t -> int
