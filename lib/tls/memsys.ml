type t = {
  cfg : Config.t;
  l1 : Cache.t array;
  l2 : Cache.t;
  line_shift : int;   (* log2 line_words when a power of two, else -1 *)
  mutable l1_hits : int;
  mutable l1_misses : int;
  mutable l2_misses : int;
  mutable last_line : int;   (* line of the most recent access_line *)
}

let log2_exact n =
  let rec go s = if 1 lsl s = n then s else if s >= 62 then -1 else go (s + 1) in
  if n > 0 && n land (n - 1) = 0 then go 0 else -1

let create (cfg : Config.t) =
  {
    cfg;
    l1 =
      Array.init cfg.Config.num_procs (fun _ ->
          Cache.create ~sets:cfg.Config.l1_sets ~ways:cfg.Config.l1_ways);
    l2 = Cache.create ~sets:cfg.Config.l2_sets ~ways:cfg.Config.l2_ways;
    line_shift = log2_exact cfg.Config.line_words;
    l1_hits = 0;
    l1_misses = 0;
    l2_misses = 0;
    last_line = 0;
  }

(* Floor division so negative (garbage speculative) addresses still map to
   stable line ids.  [asr] is exactly floor division for power-of-two
   line sizes, and runs once per simulated memory reference. *)
let line_of t addr =
  if t.line_shift >= 0 then addr asr t.line_shift
  else
    let w = t.cfg.Config.line_words in
    if addr >= 0 then addr / w else ((addr + 1) / w) - 1

(* Access that also publishes the line id through [last_line], so the
   speculative read/write trackers reuse it instead of recomputing
   [line_of] per reference (the event engine's scratch-buffer path). *)
let access_line t ~proc ~addr =
  let line = line_of t addr in
  t.last_line <- line;
  if Cache.access t.l1.(proc) line then begin
    t.l1_hits <- t.l1_hits + 1;
    t.cfg.Config.l1_hit
  end
  else begin
    t.l1_misses <- t.l1_misses + 1;
    if Cache.access t.l2 line then t.cfg.Config.l1_hit + t.cfg.Config.l2_hit
    else begin
      t.l2_misses <- t.l2_misses + 1;
      t.cfg.Config.l1_hit + t.cfg.Config.l2_hit + t.cfg.Config.mem_lat
    end
  end

let access t ~proc ~addr = access_line t ~proc ~addr
let last_line t = t.last_line

let l1_hits t = t.l1_hits
let l1_misses t = t.l1_misses
let l2_misses t = t.l2_misses
