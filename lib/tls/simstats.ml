(* Result records of the TLS simulator.

   Slot accounting follows Figure 2's methodology: during parallel
   execution, every cycle provides (issue width x processors) graduation
   slots.  "busy" slots graduated an instruction of an epoch that
   eventually committed; "sync" slots were spent stalled on wait
   instructions (scalar or memory) of committed epochs; "fail" slots are
   everything consumed by attempts that were later squashed or discarded;
   "other" is the remainder (latency stalls, commit waits, idle
   processors). *)

type slots = {
  mutable s_busy : int;
  mutable s_sync : int;
  mutable s_fail : int;
  mutable s_other_stall : int;   (* latency stalls of committed attempts *)
  mutable s_total : int;         (* wall slots: cycles x procs x width *)
}

let fresh_slots () =
  { s_busy = 0; s_sync = 0; s_fail = 0; s_other_stall = 0; s_total = 0 }

(* Everything not otherwise classified: latency stalls, commit waits, idle
   processors. *)
let other s = max 0 (s.s_total - s.s_busy - s.s_sync - s.s_fail)

(* Violated loads classified by which scheme had marked them when the
   violation happened (Figure 11). *)
type attribution = {
  mutable v_comp_only : int;
  mutable v_hw_only : int;
  mutable v_both : int;
  mutable v_neither : int;
}

let fresh_attribution () =
  { v_comp_only = 0; v_hw_only = 0; v_both = 0; v_neither = 0 }

(* Host-side measurements of one simulator run.  These are the only
   nondeterministic fields of a result: wall time and allocation depend
   on the machine, GC state, and what else the process is doing, never
   on the simulated program.  Determinism checks must go through
   [strip_runtime] / [fingerprint], which zero them out. *)
type runtime_counters = {
  rt_wall_ns : int;             (* host wall-clock time of the run *)
  rt_minor_words : float;       (* minor-heap words allocated by the run *)
  rt_major_words : float;       (* major-heap words allocated by the run *)
}

let no_runtime = { rt_wall_ns = 0; rt_minor_words = 0.0; rt_major_words = 0.0 }

(* Finite-resource accounting (DESIGN §12): degradation events and peak
   occupancies of the bounded hardware structures.  Deterministic for a
   given configuration, but — like [runtime] — excluded from fingerprints:
   with default (unbounded) limits every counter is zero and tightening a
   limit must change the digest only through its architectural effects
   (extra violations, stall cycles), not through the bookkeeping itself. *)
type resources = {
  mutable rs_sig_drops : int;        (* signals degraded to NULL: full buffer *)
  mutable rs_spec_overflows : int;   (* lines tracked past the epoch limit *)
  mutable rs_spec_stalls : int;      (* epochs parked until oldest (stall) *)
  mutable rs_spec_squashes : int;    (* epochs squashed by policy (squash) *)
  mutable rs_bp_signals : int;       (* signals that hit backpressure *)
  mutable rs_bp_slots : int;         (* issue slots spent producer-stalled *)
  mutable rs_peak_spec_lines : int;  (* peak speculative lines of any epoch *)
  mutable rs_peak_fwd_queue : int;   (* peak unconsumed-signal queue depth *)
  mutable rs_hw_evictions : int;     (* LRU evictions from the hw sync table *)
  mutable rs_peak_hw_table : int;    (* peak hw sync table occupancy *)
}

let fresh_resources () =
  {
    rs_sig_drops = 0;
    rs_spec_overflows = 0;
    rs_spec_stalls = 0;
    rs_spec_squashes = 0;
    rs_bp_signals = 0;
    rs_bp_slots = 0;
    rs_peak_spec_lines = 0;
    rs_peak_fwd_queue = 0;
    rs_hw_evictions = 0;
    rs_peak_hw_table = 0;
  }

type result = {
  total_cycles : int;
  seq_cycles : int;               (* cycles outside speculative regions *)
  region_cycles : int;            (* wall-clock cycles in TLS mode *)
  slots : slots;
  violations : int;               (* dependence violations (squash causes) *)
  attribution : attribution;
  epochs_committed : int;
  epochs_squashed : int;
  output : int list;
  final_memory : Runtime.Memory.t;
  max_signal_buffer : int;        (* peak signal-address-buffer occupancy *)
  region_cycle_by_id : (int * int) list;  (* region id -> wall cycles *)
  region_instances : (int * int) list;    (* region id -> activations *)
  l1_miss_rate : float;
  hw_marked_loads : int;          (* distinct loads ever in the hw table *)
  vpred_predictions : int;
  faults_fired : int;             (* injected faults that actually armed *)
  runtime : runtime_counters;
  resources : resources;
  (* Per-channel committed sync-stall slots and per-load violation counts
     (sorted assoc lists).  Like [resources], excluded from fingerprints:
     they are pure bookkeeping refinements of [slots.s_sync] and
     [violations], consumed by the static-cost validator. *)
  sync_stall_by_channel : (int * int) list;
  violated_load_counts : (int * int) list;
}

type seq_result = {
  sq_cycles : int;
  sq_region_cycles : (int * int) list;  (* region id -> cycles inside *)
  sq_output : int list;
  sq_memory : Runtime.Memory.t;
  sq_instrs : int;
  sq_runtime : runtime_counters;
}

(* ------------------------------------------------------------------ *)
(* Determinism support                                                 *)
(* ------------------------------------------------------------------ *)

let strip_runtime r = { r with runtime = no_runtime }
let strip_seq_runtime r = { r with sq_runtime = no_runtime }

(* Committed memory as a canonical sorted association list: hash-table
   internals (bucket layout, resize history) must not leak into the
   fingerprint. *)
let canonical_memory m =
  let acc = ref [] in
  Runtime.Memory.iter m (fun k v -> acc := (k, v) :: !acc);
  List.sort compare !acc

(* Byte-exact digest of everything deterministic in a result.  Two runs
   of the same configuration over the same program and input must agree
   on this digest; host-side runtime counters and resource bookkeeping
   are excluded.  The tuple below mirrors, field for field, the result
   record as it stood before [resources] existed — records and tuples
   share their Marshal representation, so digests remain byte-comparable
   across that addition. *)
let fingerprint r =
  let r = strip_runtime r in
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( ( r.total_cycles,
              r.seq_cycles,
              r.region_cycles,
              r.slots,
              r.violations,
              r.attribution,
              r.epochs_committed,
              r.epochs_squashed,
              r.output,
              Runtime.Memory.create (),
              r.max_signal_buffer,
              r.region_cycle_by_id,
              r.region_instances,
              r.l1_miss_rate,
              r.hw_marked_loads,
              r.vpred_predictions,
              r.faults_fired,
              r.runtime ),
            canonical_memory r.final_memory )
          []))

let seq_fingerprint r =
  let r = strip_seq_runtime r in
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( { r with sq_memory = Runtime.Memory.create () },
            canonical_memory r.sq_memory )
          []))
