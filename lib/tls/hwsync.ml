type t = {
  size : int;
  reset_interval : int;
  entries : (Ir.Instr.iid, int) Hashtbl.t;   (* iid -> LRU stamp *)
  mutable clock : int;
  mutable last_reset : int;
  mutable resets : int;
  mutable evictions : int;
  mutable peak : int;
}

let create ~size ~reset_interval =
  {
    size;
    reset_interval;
    entries = Hashtbl.create 64;
    clock = 0;
    last_reset = 0;
    resets = 0;
    evictions = 0;
    peak = 0;
  }

let record_violation t iid =
  t.clock <- t.clock + 1;
  if (not (Hashtbl.mem t.entries iid)) && Hashtbl.length t.entries >= t.size
  then begin
    (* Evict the LRU entry. *)
    let victim =
      Hashtbl.fold
        (fun id stamp acc ->
          match acc with
          | Some (_, best) when best <= stamp -> acc
          | _ -> Some (id, stamp))
        t.entries None
    in
    match victim with
    | Some (id, _) ->
      Hashtbl.remove t.entries id;
      t.evictions <- t.evictions + 1
    | None -> ()
  end;
  Hashtbl.replace t.entries iid t.clock;
  let occ = Hashtbl.length t.entries in
  if occ > t.peak then t.peak <- occ

let marked t iid = Hashtbl.mem t.entries iid
let is_empty t = Hashtbl.length t.entries = 0

let tick t ~now =
  if now - t.last_reset >= t.reset_interval then begin
    Hashtbl.reset t.entries;
    t.last_reset <- now;
    t.resets <- t.resets + 1
  end

let contents t =
  Hashtbl.fold (fun iid _ acc -> iid :: acc) t.entries [] |> List.sort compare

let resets t = t.resets
let evictions t = t.evictions
let peak t = t.peak
