(* Preallocated scratch int->int maps for the event-driven simulator
   core (DESIGN §15).

   Open addressing with linear probing over three parallel int arrays,
   plus a generation stamp per slot: [clear] bumps the generation and is
   O(1), so per-attempt speculative state (write buffer, exposed-read
   set, footprint lines) resets without walking or reallocating
   anything.  No deletion (the simulator only ever clears whole
   attempts), no boxing, no [option] allocation on lookup: [probe]
   returns a slot index or -1 and [value_at] reads it back.

   Iteration order is arbitrary; callers on observable paths must not
   depend on it (the one order-sensitive table in the simulator,
   commit-time [write_lines], deliberately stays a [Hashtbl] — see
   Sim_event). *)

type t = {
  mutable keys : int array;
  mutable vals : int array;
  mutable gens : int array;
  mutable mask : int;            (* capacity - 1, capacity a power of 2 *)
  mutable count : int;
  mutable gen : int;
}

let create ?(capacity = 16) () =
  let rec pow2 n = if n >= capacity then n else pow2 (n * 2) in
  let cap = pow2 16 in
  {
    keys = Array.make cap 0;
    vals = Array.make cap 0;
    gens = Array.make cap 0;
    mask = cap - 1;
    count = 0;
    gen = 1;
  }

let cardinal t = t.count

let clear t =
  t.gen <- t.gen + 1;
  t.count <- 0

(* Fibonacci hashing scatters consecutive addresses/lines well; the
   final [land max_int] forces a non-negative value for negative keys. *)
let slot_of t k = k * 0x2545F4914F6CDD1D land max_int land t.mask

(* The probe/insert loops are top-level recursive functions, not local
   ones: a local [let rec] closes over its environment and OCaml
   allocates that closure on every call, which matters for functions
   the simulator runs several times per instruction. *)

(* Slot of [k] starting the scan at [i], or -1 when absent. *)
let rec probe_from keys gens gen mask k i =
  if gens.(i) <> gen then -1
  else if keys.(i) = k then i
  else probe_from keys gens gen mask k ((i + 1) land mask)

let probe t k = probe_from t.keys t.gens t.gen t.mask k (slot_of t k)

let mem t k = probe t k >= 0
let value_at t i = t.vals.(i)

let rec set_from t keys gens gen mask k v i =
  if gens.(i) <> gen then begin
    keys.(i) <- k;
    t.vals.(i) <- v;
    gens.(i) <- gen;
    t.count <- t.count + 1;
    if 2 * t.count > t.mask then grow t
  end
  else if keys.(i) = k then t.vals.(i) <- v
  else set_from t keys gens gen mask k v ((i + 1) land mask)

and grow t =
  let okeys = t.keys and ovals = t.vals and ogens = t.gens in
  let ogen = t.gen and ocap = Array.length t.keys in
  let ncap = ocap * 2 in
  t.keys <- Array.make ncap 0;
  t.vals <- Array.make ncap 0;
  t.gens <- Array.make ncap 0;
  t.mask <- ncap - 1;
  t.count <- 0;
  t.gen <- 1;
  for i = 0 to ocap - 1 do
    if ogens.(i) = ogen then set t okeys.(i) ovals.(i)
  done

and set t k v = set_from t t.keys t.gens t.gen t.mask k v (slot_of t k)

let iter f t =
  let gen = t.gen in
  for i = 0 to t.mask do
    if t.gens.(i) = gen then f t.keys.(i) t.vals.(i)
  done

let fold f t acc =
  let gen = t.gen in
  let acc = ref acc in
  for i = 0 to t.mask do
    if t.gens.(i) = gen then acc := f t.keys.(i) t.vals.(i) !acc
  done;
  !acc
