(* The reference cycle-stepped engine (the oracle): byte-for-byte the
   original Sim implementation.  Sim_event must match every observable
   of this engine exactly (DESIGN §15); the differential suite enforces
   it.  Shared diagnostics live in Simdiag.  *)

include Simdiag

module Int_set = Set.Make (Int)

type payload =
  | P_scalar of int
  | P_mem of int * int          (* address (0 = NULL), value *)

type sent_entry = { se_payload : payload; se_avail : int }

type estatus = Running | Done | Committed | Discarded

type exitkind = Exit_back | Exit_out of int | Exit_return of int option

type epoch = {
  ep_index : int;
  mutable ep_thread : Runtime.Thread.t;
  mutable status : estatus;
  mutable exitk : exitkind option;
  spec_writes : (int, int) Hashtbl.t;
  read_lines : (int, Ir.Instr.iid) Hashtbl.t;
  write_lines : (int, unit) Hashtbl.t;
  sent : (Ir.Instr.channel, sent_entry) Hashtbl.t;
  consumed : (Ir.Instr.channel, payload) Hashtbl.t;
  sig_buffer : (Ir.Instr.channel, int) Hashtbl.t;
  spec_lines : (int, unit) Hashtbl.t;       (* union of read/write keys *)
  occ : (Ir.Instr.iid, int) Hashtbl.t;      (* oracle occurrence counters *)
  mutable pending_preds : (Ir.Instr.iid * int * int * bool) list;
  mutable stall_until : int;
  mutable blocked : bool;
  mutable wake_at : int;                    (* max_int = poll every cycle *)
  mutable last_block : Ir.Instr.channel option;  (* diagnostic only *)
  mutable a_busy : int;
  mutable a_sync : int;
  mutable a_other : int;
  a_sync_chan : (Ir.Instr.channel, int) Hashtbl.t;
      (* attempt sync slots split by blocking channel (compiler sync only;
         hardware-sync stalls have no channel and stay unattributed) *)
  mutable attempt_instrs : int;
  mutable restarts : int;
  mutable hold_until_oldest : bool;
  mutable overflow_hold : bool;             (* parked by Overflow_stall *)
  mutable overflow_squash_pending : bool;   (* Overflow_squash deferred to
                                               graduate: hooks must not
                                               squash mid-instruction *)
  mutable bp_channel : Ir.Instr.channel option;  (* backpressure-stalled on *)
  mutable hooks : Runtime.Thread.hooks option;  (* built once per epoch *)
}

type tls_state = {
  ts_region : Ir.Region.t;
  ts_instance : int;
  ts_base : Runtime.Thread.frame;
  ts_blocks : Int_set.t;
  ts_channels : Int_set.t;                  (* this region's channel ids *)
  ts_comp_loads : Int_set.t;                (* compiler-synchronized loads *)
  ts_entry_sent : (Ir.Instr.channel, sent_entry) Hashtbl.t;
  epochs : (int, epoch) Hashtbl.t;
  mutable ts_oldest : int;
  mutable ts_next_spawn : int;
  mutable ts_commit_ready : int;            (* commits are serialized *)
  mutable ts_ended : bool;
  mutable ts_winner : epoch option;
  ts_start_cycle : int;
}

type mode = Seq | Tls of tls_state

type sim = {
  cfg : Config.t;
  code : Runtime.Code.t;
  memsys : Memsys.t;
  hwsync : Hwsync.t;
  vpred : Vpred.t;
  oracle : Oracle.t option;
  committed : Runtime.Memory.t;
  seq_thread : Runtime.Thread.t;
  regions_by_func : (string, Ir.Region.t list) Hashtbl.t;
  instance_counters : (int, int) Hashtbl.t;
  mutable mode : mode;
  mutable cycle : int;
  mutable seq_cycles : int;
  mutable region_wall : int;
  mutable seq_stall_until : int;
  mutable pending_region : Ir.Region.t option;
  mutable extra_latency : int;
  mutable finished : bool;
  mutable output_rev : int list;
  slots : Simstats.slots;
  attribution : Simstats.attribution;
  mutable violations : int;
  mutable committed_epochs : int;
  mutable squashed_epochs : int;
  mutable max_sig_buffer : int;
  ever_marked : (Ir.Instr.iid, unit) Hashtbl.t;
  region_wall_by_id : (int, int) Hashtbl.t;
  (* Forwarding usefulness per channel, for the filter_useless_sync
     enhancement: how often the forwarded address matched the load. *)
  chan_stats : (Ir.Instr.channel, int * int) Hashtbl.t;  (* matched, seen *)
  (* Committed sync-stall slots per blocking compiler channel, and
     violation counts per flagged load — the measurements {!Staticcost}
     predictions are validated against. *)
  sync_by_channel : (Ir.Instr.channel, int) Hashtbl.t;
  violated_loads : (Ir.Instr.iid, int) Hashtbl.t;
  (* Robustness harness (DESIGN §11): watchdog + fault injection. *)
  mutable last_progress : int;     (* cycle of the last graduation/commit *)
  mutable f_mem_signals : int;     (* dynamic memory-signal counter *)
  mutable f_blocked_waits : int;   (* dynamic blocking mem-wait counter *)
  fired : (Config.sim_fault, unit) Hashtbl.t;      (* faults already armed *)
  dropped_wakeups : (int * Ir.Instr.channel, unit) Hashtbl.t;
      (* (epoch index, channel) pairs whose wake-up was dropped; persists
         across squashes so a restarted epoch stays condemned *)
  resources : Simstats.resources;  (* finite-resource accounting (§12) *)
}

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)
(* ------------------------------------------------------------------ *)

let line_of sim addr = Memsys.line_of sim.memsys addr

(* Key of the speculative read/write sets: cache line normally, the word
   itself under per-word access bits (Cintra & Torrellas [8]). *)
let track_key sim addr =
  if sim.cfg.Config.word_level_tracking then addr else line_of sim addr

let drain_thread_output sim (t : Runtime.Thread.t) =
  sim.output_rev <- t.Runtime.Thread.output @ sim.output_rev;
  t.Runtime.Thread.output <- []

let epoch_proc sim e = e.ep_index mod sim.cfg.Config.num_procs

let is_oldest st e = e.ep_index = st.ts_oldest

let active_epochs st =
  let rec collect k acc =
    if k >= st.ts_next_spawn then List.rev acc
    else
      match Hashtbl.find_opt st.epochs k with
      | Some e when e.status = Running || e.status = Done ->
        collect (k + 1) (e :: acc)
      | _ -> collect (k + 1) acc
  in
  collect st.ts_oldest []

let epoch_diag_of e =
  let channels tbl =
    Hashtbl.fold (fun ch _ acc -> ch :: acc) tbl [] |> List.sort compare
  in
  {
    ed_index = e.ep_index;
    ed_status =
      (match e.status with
      | Running -> "running"
      | Done -> "done"
      | Committed -> "committed"
      | Discarded -> "discarded");
    ed_blocked = e.blocked;
    ed_wake_at = e.wake_at;
    ed_last_block = e.last_block;
    ed_sent = channels e.sent;
    ed_consumed = channels e.consumed;
  }

let stuck_diag_of sim st reason =
  {
    sd_reason = reason;
    sd_cycle = sim.cycle;
    sd_region = st.ts_region.Ir.Region.id;
    sd_func = st.ts_region.Ir.Region.func;
    sd_oldest = st.ts_oldest;
    sd_epochs = List.map epoch_diag_of (active_epochs st);
  }

let mark_fired sim fault = Hashtbl.replace sim.fired fault ()

(* One blocking wait on a memory channel: advance the deterministic wait
   counter and, if a Drop_wakeup fault targets this wait, condemn the
   (epoch, channel) pair so the signal's arrival is never delivered. *)
let note_blocked_wait sim e ch =
  let n = sim.f_blocked_waits in
  sim.f_blocked_waits <- n + 1;
  List.iter
    (fun fault ->
      match fault with
      | Config.Drop_wakeup k when k = n ->
        mark_fired sim fault;
        Hashtbl.replace sim.dropped_wakeups (e.ep_index, ch) ();
        e.wake_at <- max_int
      | _ -> ())
    sim.cfg.Config.sim_faults

let fresh_epoch sim st index =
  let frame = Runtime.Thread.copy_frame st.ts_base in
  let thread =
    Runtime.Thread.create_from_frame sim.code frame
      ~input:sim.seq_thread.Runtime.Thread.input
  in
  {
    ep_index = index;
    ep_thread = thread;
    status = Running;
    exitk = None;
    spec_writes = Hashtbl.create 64;
    read_lines = Hashtbl.create 64;
    write_lines = Hashtbl.create 16;
    sent = Hashtbl.create 8;
    consumed = Hashtbl.create 8;
    sig_buffer = Hashtbl.create 4;
    spec_lines = Hashtbl.create 64;
    occ = Hashtbl.create 16;
    pending_preds = [];
    stall_until = sim.cycle + sim.cfg.Config.spawn_overhead;
    blocked = false;
    wake_at = max_int;
    last_block = None;
    a_busy = 0;
    a_sync = 0;
    a_other = 0;
    a_sync_chan = Hashtbl.create 4;
    attempt_instrs = 0;
    restarts = 0;
    hold_until_oldest = false;
    overflow_hold = false;
    overflow_squash_pending = false;
    bp_channel = None;
    hooks = None;
  }

(* Attribute [n] of the attempt's sync slots to compiler channel [ch]
   (None = a hardware-sync or channel-less stall, left unattributed). *)
let add_sync_chan e ch n =
  match ch with
  | None -> ()
  | Some ch ->
    if n > 0 then
      Hashtbl.replace e.a_sync_chan ch
        (n + Option.value ~default:0 (Hashtbl.find_opt e.a_sync_chan ch))

let reset_attempt sim st e =
  sim.slots.Simstats.s_fail <-
    sim.slots.Simstats.s_fail + e.a_busy + e.a_sync + e.a_other;
  e.a_busy <- 0;
  e.a_sync <- 0;
  e.a_other <- 0;
  Hashtbl.reset e.a_sync_chan;
  e.attempt_instrs <- 0;
  Hashtbl.reset e.spec_writes;
  Hashtbl.reset e.read_lines;
  Hashtbl.reset e.write_lines;
  Hashtbl.reset e.sent;
  Hashtbl.reset e.consumed;
  Hashtbl.reset e.sig_buffer;
  Hashtbl.reset e.spec_lines;
  Hashtbl.reset e.occ;
  e.pending_preds <- [];
  e.overflow_hold <- false;
  e.overflow_squash_pending <- false;
  e.bp_channel <- None;
  let frame = Runtime.Thread.copy_frame st.ts_base in
  e.ep_thread <-
    Runtime.Thread.create_from_frame sim.code frame
      ~input:sim.seq_thread.Runtime.Thread.input

let squash sim st e =
  if e.status = Running || e.status = Done then begin
    sim.squashed_epochs <- sim.squashed_epochs + 1;
    reset_attempt sim st e;
    e.status <- Running;
    e.exitk <- None;
    e.blocked <- false;
    e.wake_at <- max_int;
    e.stall_until <- sim.cycle + sim.cfg.Config.violation_penalty;
    e.restarts <- e.restarts + 1;
    if e.restarts > sim.cfg.Config.max_restarts_before_hold then
      e.hold_until_oldest <- true
  end

(* Squash [victim] and every younger epoch (cascading restart).  Restarts
   are staggered by the spawn overhead — squashed epochs re-dispatch
   serially, as the lightweight-fork hardware would — which also restores
   the pipeline skew that keeps non-dependent epochs from racing. *)
let cascade_squash sim st victim_idx =
  for k = victim_idx to st.ts_next_spawn - 1 do
    match Hashtbl.find_opt st.epochs k with
    | Some e ->
      squash sim st e;
      e.stall_until <-
        e.stall_until + (sim.cfg.Config.spawn_overhead * (k - victim_idx))
    | None -> ()
  done

(* A dependence violation on [victim_idx], first observed through load
   [load_iid]: record attribution, teach the hardware table, cascade. *)
let violate sim st ~victim_idx ~load_iid =
  sim.violations <- sim.violations + 1;
  let comp = Int_set.mem load_iid st.ts_comp_loads in
  let hw = Hwsync.marked sim.hwsync load_iid in
  let a = sim.attribution in
  (match comp, hw with
  | true, true -> a.Simstats.v_both <- a.Simstats.v_both + 1
  | true, false -> a.Simstats.v_comp_only <- a.Simstats.v_comp_only + 1
  | false, true -> a.Simstats.v_hw_only <- a.Simstats.v_hw_only + 1
  | false, false -> a.Simstats.v_neither <- a.Simstats.v_neither + 1);
  Hwsync.record_violation sim.hwsync load_iid;
  Hashtbl.replace sim.ever_marked load_iid ();
  Hashtbl.replace sim.violated_loads load_iid
    (1 + Option.value ~default:0 (Hashtbl.find_opt sim.violated_loads load_iid));
  cascade_squash sim st victim_idx

(* ------------------------------------------------------------------ *)
(* Channel plumbing                                                    *)
(* ------------------------------------------------------------------ *)

let sent_of_predecessor st e ch =
  if e.ep_index = 0 then Hashtbl.find_opt st.ts_entry_sent ch
  else
    match Hashtbl.find_opt st.epochs (e.ep_index - 1) with
    | Some pred -> Hashtbl.find_opt pred.sent ch
    | None -> None

let predecessor_finished st e =
  if e.ep_index = 0 then true
  else
    match Hashtbl.find_opt st.epochs (e.ep_index - 1) with
    | Some pred -> pred.status = Committed
    | None -> false

(* Receive on a channel: Ready payload / Not_yet wake / Nothing. *)
type recv = Ready of payload | Not_yet of int | Nothing

let receive sim st e ch =
  match Hashtbl.find_opt e.consumed ch with
  | Some p -> Ready p
  | None -> begin
    match sent_of_predecessor st e ch with
    | Some { se_payload; se_avail } ->
      if se_avail <= sim.cycle then begin
        Hashtbl.replace e.consumed ch se_payload;
        Ready se_payload
      end
      else Not_yet se_avail
    | None ->
      if predecessor_finished st e then
        raise
          (Deadlock
             (Printf.sprintf
                "epoch %d waits on channel %d its committed predecessor never signaled"
                e.ep_index ch))
      else Nothing
  end

(* ------------------------------------------------------------------ *)
(* Epoch memory semantics                                              *)
(* ------------------------------------------------------------------ *)

let oracle_covers sim iid =
  match sim.cfg.Config.oracle with
  | Config.Oracle_none -> false
  | Config.Oracle_all -> true
  | Config.Oracle_set s -> Config.Iid_set.mem iid s

let oracle_value sim st e iid =
  match sim.oracle with
  | None -> None
  | Some oracle ->
    let occurrence =
      match Hashtbl.find_opt e.occ iid with Some n -> n | None -> 0
    in
    Hashtbl.replace e.occ iid (occurrence + 1);
    Oracle.value oracle ~region:st.ts_region.Ir.Region.id
      ~instance:st.ts_instance ~iteration:(e.ep_index + 1) ~iid ~occurrence

(* Finite speculative-state tracking (DESIGN §12): every line an epoch
   reads or writes speculatively occupies L1 space.  Crossing
   [spec_lines_per_epoch] on a non-oldest epoch triggers the overflow
   policy; the oldest epoch is exempt — it is homefree and can always
   drain, which guarantees forward progress.  Policy actions are deferred
   to [graduate]: hooks must never squash mid-instruction. *)
let note_spec_line sim st e key =
  if not (Hashtbl.mem e.spec_lines key) then begin
    Hashtbl.replace e.spec_lines key ();
    let occ = Hashtbl.length e.spec_lines in
    let rs = sim.resources in
    if occ > rs.Simstats.rs_peak_spec_lines then
      rs.Simstats.rs_peak_spec_lines <- occ;
    if occ > sim.cfg.Config.spec_lines_per_epoch && not (is_oldest st e)
    then begin
      rs.Simstats.rs_spec_overflows <- rs.Simstats.rs_spec_overflows + 1;
      match sim.cfg.Config.overflow_policy with
      | Config.Overflow_stall ->
        if not e.overflow_hold then begin
          e.overflow_hold <- true;
          rs.Simstats.rs_spec_stalls <- rs.Simstats.rs_spec_stalls + 1
        end
      | Config.Overflow_squash ->
        if not e.overflow_squash_pending then begin
          e.overflow_squash_pending <- true;
          rs.Simstats.rs_spec_squashes <- rs.Simstats.rs_spec_squashes + 1
        end
    end
  end

(* Plain speculative load: own writes overlay committed memory; exposed
   reads mark the line in the speculative-load set. *)
let speculative_load sim st e iid addr =
  let proc = epoch_proc sim e in
  sim.extra_latency <- Memsys.access sim.memsys ~proc ~addr - 1;
  match Hashtbl.find_opt e.spec_writes addr with
  | Some v -> v
  | None ->
    let key = track_key sim addr in
    if not (Hashtbl.mem e.read_lines key) then
      Hashtbl.replace e.read_lines key iid;
    note_spec_line sim st e key;
    Runtime.Memory.load sim.committed addr

let epoch_load sim st e (i : Ir.Instr.t) addr =
  let iid = i.Ir.Instr.iid in
  if oracle_covers sim iid then begin
    match oracle_value sim st e iid with
    | Some v ->
      let proc = epoch_proc sim e in
      sim.extra_latency <- Memsys.access sim.memsys ~proc ~addr - 1;
      v
    | None -> speculative_load sim st e iid addr
  end
  else if
    sim.cfg.Config.hw_value_predict
    && Hwsync.marked sim.hwsync iid
    && (not (is_oldest st e))
    (* The epoch's own earlier store always supplies the value; prediction
       only applies to exposed loads. *)
    && not (Hashtbl.mem e.spec_writes addr)
  then begin
    match
      Vpred.predict sim.vpred iid
        ~confidence:sim.cfg.Config.vpred_confidence
    with
    | Some v ->
      e.pending_preds <- (iid, addr, v, true) :: e.pending_preds;
      sim.extra_latency <- 0;
      v
    | None ->
      let v = speculative_load sim st e iid addr in
      e.pending_preds <- (iid, addr, v, false) :: e.pending_preds;
      v
  end
  else speculative_load sim st e iid addr

let epoch_store sim st e (i : Ir.Instr.t) addr v =
  let proc = epoch_proc sim e in
  sim.extra_latency <- Memsys.access sim.memsys ~proc ~addr - 1;
  Hashtbl.replace e.spec_writes addr v;
  let line = track_key sim addr in
  Hashtbl.replace e.write_lines line ();
  note_spec_line sim st e line;
  (* Store-time violation: younger epochs that speculatively read the line. *)
  let rec check k =
    if k < st.ts_next_spawn then begin
      match Hashtbl.find_opt st.epochs k with
      | Some e' when e'.status = Running || e'.status = Done -> begin
        match Hashtbl.find_opt e'.read_lines line with
        | Some reader_iid ->
          violate sim st ~victim_idx:k ~load_iid:reader_iid
          (* cascade squashed everything younger; stop *)
        | None -> check (k + 1)
      end
      | _ -> check (k + 1)
    end
  in
  check (e.ep_index + 1);
  ignore i;
  (* Producer-side signal address buffer: storing to an address already
     forwarded means the wrong value was sent. *)
  Hashtbl.iter
    (fun ch signaled_addr ->
      if signaled_addr = addr then begin
        Hashtbl.replace e.sent ch
          {
            se_payload = P_mem (addr, v);
            se_avail = sim.cycle + sim.cfg.Config.forward_latency;
          };
        match Hashtbl.find_opt st.epochs (e.ep_index + 1) with
        | Some succ
          when (succ.status = Running || succ.status = Done)
               && Hashtbl.mem succ.consumed ch ->
          violate sim st ~victim_idx:succ.ep_index
            ~load_iid:
              (match Int_set.choose_opt st.ts_comp_loads with
              | Some iid -> iid
              | None -> -1)
        | _ -> ()
      end)
    e.sig_buffer

(* The value an epoch may legitimately forward for [addr]: its own
   speculative write, or the value it received on the same channel
   (pass-through — still sequentially correct for the successor).  The
   committed value may be stale while older epochs are in flight, so when
   neither source applies the signal degrades to NULL and the consumer
   falls back to (violation-protected) speculation, exactly as the paper's
   NULL signals do. *)
let forwardable_value sim e ch addr =
  ignore sim;
  match Hashtbl.find_opt e.spec_writes addr with
  | Some v -> Some v
  | None -> begin
    match Hashtbl.find_opt e.consumed ch with
    | Some (P_mem (a, v)) when a = addr -> Some v
    | Some _ | None -> None
  end

(* Occupancy of the forwarding queue between [e] and its successor:
   signals posted but not yet consumed (DESIGN §12).  In-place updates of
   a channel already in [sent] never grow the queue; with no live
   successor the interconnect drains into the void (nothing can ever
   consume), so the final epoch of a region is never backpressured. *)
let fwd_queue_occupancy st e =
  match Hashtbl.find_opt st.epochs (e.ep_index + 1) with
  | Some succ when succ.status = Running || succ.status = Done ->
    Hashtbl.fold
      (fun ch _ n -> if Hashtbl.mem succ.consumed ch then n else n + 1)
      e.sent 0
  | _ -> 0

let note_fwd_peak sim st e =
  let occ = fwd_queue_occupancy st e in
  let rs = sim.resources in
  if occ > rs.Simstats.rs_peak_fwd_queue then rs.Simstats.rs_peak_fwd_queue <- occ

let epoch_signal_mem sim st e ch addr =
  if sim.cfg.Config.stall_compiler_sync then begin
    let addr, value =
      if addr = 0 then (0, 0)
      else
        match forwardable_value sim e ch addr with
        | Some v -> (addr, v)
        | None -> (0, 0)
    in
    (* Chaos faults keyed on the dynamic memory-signal counter: corrupt
       the forwarded address (consumers fail the address check and fall
       back to protected speculation), detect a corrupt value before the
       address check (payload degrades to NULL), or delay delivery. *)
    let n = sim.f_mem_signals in
    sim.f_mem_signals <- n + 1;
    let addr, value, extra_delay =
      List.fold_left
        (fun (a, v, d) fault ->
          match fault with
          | Config.Corrupt_addr k when k = n ->
            mark_fired sim fault;
            ((-987654321) - k, v, d)
          | Config.Corrupt_value k when k = n ->
            mark_fired sim fault;
            (0, 0, d)
          | Config.Delay_signal { nth; extra } when nth = n ->
            mark_fired sim fault;
            (a, v, d + extra)
          | _ -> (a, v, d))
        (addr, value, 0) sim.cfg.Config.sim_faults
    in
    (* Finite signal address buffer (DESIGN §12): a full buffer cannot
       track a new forwarded address, so the signal degrades to NULL —
       the consumer unblocks without a value and falls back to a
       violation-protected speculative load (absorbable, like
       [Corrupt_value]).  Re-signaling a channel already in the buffer
       replaces its entry and never needs a new slot. *)
    let addr, value =
      if
        addr <> 0
        && (not (Hashtbl.mem e.sig_buffer ch))
        && Hashtbl.length e.sig_buffer >= sim.cfg.Config.sig_buffer_entries
      then begin
        sim.resources.Simstats.rs_sig_drops <-
          sim.resources.Simstats.rs_sig_drops + 1;
        (0, 0)
      end
      else (addr, value)
    in
    let had_previous = Hashtbl.mem e.sent ch in
    Hashtbl.replace e.sent ch
      {
        se_payload = P_mem (addr, value);
        se_avail = sim.cycle + sim.cfg.Config.forward_latency + extra_delay;
      };
    note_fwd_peak sim st e;
    if addr <> 0 then begin
      Hashtbl.replace e.sig_buffer ch addr;
      sim.max_sig_buffer <-
        max sim.max_sig_buffer (Hashtbl.length e.sig_buffer)
    end;
    if had_previous then begin
      (* A second signal on the channel: if the consumer already used the
         first value, it used the wrong one. *)
      match Hashtbl.find_opt st.epochs (e.ep_index + 1) with
      | Some succ
        when (succ.status = Running || succ.status = Done)
             && Hashtbl.mem succ.consumed ch ->
        violate sim st ~victim_idx:succ.ep_index
          ~load_iid:
            (match Int_set.choose_opt st.ts_comp_loads with
            | Some iid -> iid
            | None -> -1)
      | _ -> ()
    end
  end

(* Has this channel's forwarding proven useless (rarely matching)?  When
   the filter is on, consumers stop stalling on such channels and fall
   back to plain speculation (paper §4.2 (iv)). *)
let channel_filtered sim ch =
  sim.cfg.Config.filter_useless_sync
  &&
  match Hashtbl.find_opt sim.chan_stats ch with
  | Some (matched, seen) ->
    seen >= sim.cfg.Config.filter_window && matched * 4 < seen
  | None -> false

let note_channel_outcome sim ch ~matched =
  let m, s =
    match Hashtbl.find_opt sim.chan_stats ch with
    | Some (m, s) -> (m, s)
    | None -> (0, 0)
  in
  Hashtbl.replace sim.chan_stats ch ((m + if matched then 1 else 0), s + 1)

(* ------------------------------------------------------------------ *)
(* Epoch hooks                                                         *)
(* ------------------------------------------------------------------ *)

let epoch_hooks sim st e : Runtime.Thread.hooks =
  let my_channel ch = Int_set.mem ch st.ts_channels in
  {
    Runtime.Thread.load = (fun _ i addr -> epoch_load sim st e i addr);
    store = (fun _ i addr v -> epoch_store sim st e i addr v);
    wait_scalar =
      (fun t i ch ->
        if not (my_channel ch) then begin
          (* A nested region's synchronization, executed sequentially. *)
          match i.Ir.Instr.kind with
          | Ir.Instr.Wait_scalar (_, dst) ->
            Some (Runtime.Thread.current_frame t).Runtime.Thread.regs.(dst)
          | _ -> None
        end
        else begin
          match receive sim st e ch with
          | Ready (P_scalar v) -> Some v
          | Ready (P_mem (_, v)) -> Some v
          | Not_yet avail ->
            e.blocked <- true;
            e.wake_at <- avail;
            e.last_block <- Some ch;
            None
          | Nothing ->
            e.blocked <- true;
            e.wake_at <- max_int;
            e.last_block <- Some ch;
            None
        end)
    ;
    signal_scalar =
      (fun _ _ ch v ->
        if my_channel ch then begin
          Hashtbl.replace e.sent ch
            {
              se_payload = P_scalar v;
              se_avail = sim.cycle + sim.cfg.Config.forward_latency;
            };
          note_fwd_peak sim st e
        end);
    wait_mem =
      (fun _ _ ch ->
        if not (my_channel ch) then true
        else if not sim.cfg.Config.stall_compiler_sync then true
        else if Hashtbl.mem sim.dropped_wakeups (e.ep_index, ch) then begin
          (* Drop_wakeup fault: the signal may have arrived, but this
             epoch's wake-up was lost; it must stay blocked so the
             watchdog (not the cycle budget) ends the run. *)
          e.blocked <- true;
          e.wake_at <- max_int;
          e.last_block <- Some ch;
          false
        end
        else if channel_filtered sim ch then true
        else begin
          match sim.cfg.Config.forward_timing with
          | Config.Forward_perfect -> true
          | Config.Forward_at_commit ->
            if is_oldest st e then true
            else begin
              e.blocked <- true;
              e.wake_at <- max_int;
              e.last_block <- Some ch;
              false
            end
          | Config.Forward_normal -> begin
            match receive sim st e ch with
            | Ready _ -> true
            | Not_yet avail ->
              e.blocked <- true;
              e.wake_at <- avail;
              e.last_block <- Some ch;
              note_blocked_wait sim e ch;
              false
            | Nothing ->
              e.blocked <- true;
              e.wake_at <- max_int;
              e.last_block <- Some ch;
              note_blocked_wait sim e ch;
              false
          end
        end)
    ;
    sync_load =
      (fun _ i ch addr ->
        let iid = i.Ir.Instr.iid in
        if not (my_channel ch) then speculative_load sim st e iid addr
        else if not sim.cfg.Config.stall_compiler_sync then
          speculative_load sim st e iid addr
        else begin
          match sim.cfg.Config.forward_timing with
          | Config.Forward_perfect -> begin
            match oracle_value sim st e iid with
            | Some v ->
              sim.extra_latency <- 0;
              v
            | None -> speculative_load sim st e iid addr
          end
          | Config.Forward_at_commit ->
            (* We are the oldest epoch here (the wait stalled us). *)
            speculative_load sim st e iid addr
          | Config.Forward_normal -> begin
            if channel_filtered sim ch then speculative_load sim st e iid addr
            else
              match Hashtbl.find_opt e.consumed ch with
              | Some (P_mem (a, v)) when a <> 0 && a = addr ->
                note_channel_outcome sim ch ~matched:true;
                if Hashtbl.mem e.spec_writes addr then begin
                  (* Locally overwritten: use the local value. *)
                  sim.extra_latency <- 0;
                  Hashtbl.find e.spec_writes addr
                end
                else begin
                  (* The forwarded value satisfies the load point-to-point:
                     no speculative-load mark, no violation possible. *)
                  sim.extra_latency <- 0;
                  v
                end
              | Some _ ->
                (* NULL signal or non-matching address: violation-protected
                   fallback, exactly as the paper's NULL signals. *)
                note_channel_outcome sim ch ~matched:false;
                speculative_load sim st e iid addr
              | None ->
                (* Nothing was ever received on this channel, so no
                   Wait_mem dominated this load — the compiler's sync
                   protocol is broken (e.g. a dropped wait).  Filtering
                   legitimately elides waits, so the check only applies
                   when it is off. *)
                if
                  sim.cfg.Config.protocol_checks
                  && not sim.cfg.Config.filter_useless_sync
                then
                  raise
                    (Stuck
                       (stuck_diag_of sim st (Missing_wait { channel = ch; iid })))
                else begin
                  note_channel_outcome sim ch ~matched:false;
                  speculative_load sim st e iid addr
                end
          end
        end)
    ;
    signal_mem = (fun _ _ ch addr -> if my_channel ch then epoch_signal_mem sim st e ch addr);
    signal_mem_if_unsent =
      (fun _ _ ch addr ->
        if
          my_channel ch
          && sim.cfg.Config.stall_compiler_sync
          && not (Hashtbl.mem e.sent ch)
        then epoch_signal_mem sim st e ch addr);
    signal_null =
      (fun _ _ ch ->
        if my_channel ch && sim.cfg.Config.stall_compiler_sync then begin
          Hashtbl.replace e.sent ch
            {
              se_payload = P_mem (0, 0);
              se_avail = sim.cycle + sim.cfg.Config.forward_latency;
            };
          note_fwd_peak sim st e
        end);
    signal_null_if_unsent =
      (fun _ _ ch ->
        if
          my_channel ch
          && sim.cfg.Config.stall_compiler_sync
          && not (Hashtbl.mem e.sent ch)
        then begin
          Hashtbl.replace e.sent ch
            {
              se_payload = P_mem (0, 0);
              se_avail = sim.cycle + sim.cfg.Config.forward_latency;
            };
          note_fwd_peak sim st e
        end);
    control =
      (fun t ~target ->
        if Runtime.Thread.depth t > 1 then true
        else if target = st.ts_region.Ir.Region.header then begin
          e.exitk <- Some Exit_back;
          false
        end
        else if not (Int_set.mem target st.ts_blocks) then begin
          e.exitk <- Some (Exit_out target);
          false
        end
        else true);
  }

(* ------------------------------------------------------------------ *)
(* Graduation                                                          *)
(* ------------------------------------------------------------------ *)

(* Does the hardware-synchronization table force the next instruction of
   this epoch to stall?  Under the coordinated hybrid the hardware trusts
   compiler-synchronized loads and leaves them alone (paper §4.2 (iii)). *)
let hw_stall_next sim st e =
  sim.cfg.Config.hw_sync_stall
  && (not (is_oldest st e))
  &&
  match Runtime.Thread.next_instr e.ep_thread with
  | Some { Ir.Instr.kind = Ir.Instr.Load _ | Ir.Instr.Sync_load _; iid; _ } ->
    Hwsync.marked sim.hwsync iid
    && not
         (sim.cfg.Config.hw_skip_compiler_synced
         && Int_set.mem iid st.ts_comp_loads)
  | Some _ | None -> false

(* Would the next instruction of [e] post a signal on a fresh channel of
   this region?  Used by forwarding-queue backpressure: only signals that
   need a new queue entry can be stalled — updates in place (the channel
   is already in [sent]) and nested-region or unhonored signals pass
   freely. *)
let next_signal_channel sim st e =
  if sim.cfg.Config.fwd_queue_depth = max_int then None
  else
    match Runtime.Thread.next_instr e.ep_thread with
    | Some { Ir.Instr.kind; _ } -> begin
      let mem_sync = sim.cfg.Config.stall_compiler_sync in
      let candidate =
        match kind with
        | Ir.Instr.Signal_scalar (ch, _) -> Some ch
        | Ir.Instr.Signal_mem (ch, _) when mem_sync -> Some ch
        | Ir.Instr.Signal_mem_if_unsent (ch, _) when mem_sync -> Some ch
        | Ir.Instr.Signal_null ch when mem_sync -> Some ch
        | Ir.Instr.Signal_null_if_unsent ch when mem_sync -> Some ch
        | _ -> None
      in
      match candidate with
      | Some ch
        when Int_set.mem ch st.ts_channels && not (Hashtbl.mem e.sent ch) ->
        Some ch
      | _ -> None
    end
    | None -> None


let graduate sim st e =
  let width = sim.cfg.Config.issue_width in
  let slots = ref width in
  let continue_ = ref true in
  e.blocked <- false;
  while !slots > 0 && !continue_ do
    if e.status <> Running then continue_ := false
    else if e.stall_until > sim.cycle then begin
      e.a_other <- e.a_other + !slots;
      slots := 0
    end
    else if e.hold_until_oldest && not (is_oldest st e) then begin
      e.blocked <- true;
      e.wake_at <- max_int;
      e.last_block <- None;
      e.a_other <- e.a_other + !slots;
      slots := 0
    end
    else if e.overflow_hold && not (is_oldest st e) then begin
      (* Speculative-state overflow under Overflow_stall: parked until
         oldest, when the footprint may drain non-speculatively. *)
      e.blocked <- true;
      e.wake_at <- max_int;
      e.last_block <- None;
      e.a_other <- e.a_other + !slots;
      slots := 0
    end
    else if hw_stall_next sim st e then begin
      e.blocked <- true;
      e.wake_at <- max_int;
      (* Hardware-sync stall: no compiler channel to attribute to. *)
      e.last_block <- None;
      e.a_sync <- e.a_sync + !slots;
      slots := 0
    end
    else if
      match next_signal_channel sim st e with
      | Some _ ->
        fwd_queue_occupancy st e >= sim.cfg.Config.fwd_queue_depth
      | None -> false
    then begin
      (* Forwarding-queue backpressure: the interconnect cannot accept a
         new signal until the successor consumes.  If the whole region
         wedges in this state, the watchdog refines Stuck into the typed
         Resource_deadlock (see tls_cycle). *)
      let ch =
        match next_signal_channel sim st e with Some c -> c | None -> -1
      in
      let rs = sim.resources in
      if e.bp_channel = None then
        rs.Simstats.rs_bp_signals <- rs.Simstats.rs_bp_signals + 1;
      rs.Simstats.rs_bp_slots <- rs.Simstats.rs_bp_slots + !slots;
      e.bp_channel <- Some ch;
      e.blocked <- true;
      e.wake_at <- max_int;
      e.last_block <- Some ch;
      e.a_sync <- e.a_sync + !slots;
      add_sync_chan e (Some ch) !slots;
      slots := 0
    end
    else begin
      e.bp_channel <- None;
      sim.extra_latency <- 0;
      let hooks =
        match e.hooks with
        | Some h -> h
        | None ->
          let h = epoch_hooks sim st e in
          e.hooks <- Some h;
          h
      in
      match Runtime.Thread.step e.ep_thread hooks with
      | Runtime.Thread.Ran ev ->
        sim.last_progress <- sim.cycle;
        e.a_busy <- e.a_busy + 1;
        decr slots;
        e.attempt_instrs <- e.attempt_instrs + 1;
        (* Fixed-latency functional units. *)
        let unit_latency =
          match ev with
          | Runtime.Thread.Exec
              { Ir.Instr.kind = Ir.Instr.Bin (Ir.Instr.Mul, _, _, _); _ } ->
            sim.cfg.Config.lat_mul - 1
          | Runtime.Thread.Exec
              {
                Ir.Instr.kind =
                  Ir.Instr.Bin ((Ir.Instr.Div | Ir.Instr.Rem), _, _, _);
                _;
              } ->
            sim.cfg.Config.lat_div - 1
          | _ -> 0
        in
        let extra = max sim.extra_latency unit_latency in
        if extra > 0 then e.stall_until <- sim.cycle + extra;
        if e.status = Running && e.overflow_squash_pending then begin
          (* Speculative-state overflow under Overflow_squash: discard
             the oversized footprint and re-run once oldest.  The squash
             must cascade: younger epochs may have consumed values this
             epoch forwarded from its (pre-commit) speculative state, and
             the re-run as oldest can legitimately produce different
             ones. *)
          cascade_squash sim st e.ep_index;
          e.hold_until_oldest <- true;
          continue_ := false
        end
        else if
          e.status = Running && e.attempt_instrs > sim.cfg.Config.epoch_max_instrs
        then begin
          if is_oldest st e then
            (* A wrong value prediction can send even the oldest epoch down
               a runaway path; restarting it is safe (it re-runs with real
               loads).  Without an outstanding prediction a runaway oldest
               epoch is a genuine non-terminating program. *)
            if List.exists (fun (_, _, _, p) -> p) e.pending_preds then begin
              sim.violations <- sim.violations + 1;
              cascade_squash sim st e.ep_index;
              continue_ := false
            end
            else failwith "Sim: oldest epoch exceeded the instruction cap"
          else begin
            squash sim st e;
            e.hold_until_oldest <- true;
            continue_ := false
          end
        end
      | Runtime.Thread.Blocked ->
        e.a_sync <- e.a_sync + !slots;
        add_sync_chan e e.last_block !slots;
        slots := 0
      | Runtime.Thread.Suspended ->
        e.status <- Done;
        continue_ := false
      | Runtime.Thread.Finished rv ->
        e.exitk <- Some (Exit_return rv);
        e.status <- Done;
        continue_ := false
    end
  done

(* ------------------------------------------------------------------ *)
(* Commit                                                              *)
(* ------------------------------------------------------------------ *)

(* Predicted loads were exposed (no own store preceded them), so the value
   each should have seen is exactly committed memory at commit time — all
   older epochs have merged, none of the epoch's own writes affect it. *)
let verify_predictions sim e =
  List.for_all
    (fun (_, addr, used, was_predicted) ->
      (not was_predicted) || Runtime.Memory.load sim.committed addr = used)
    e.pending_preds

let train_predictions sim e =
  List.iter
    (fun (iid, addr, _, _) ->
      Vpred.train sim.vpred iid
        ~actual:(Runtime.Memory.load sim.committed addr))
    e.pending_preds

let accumulate_attempt sim e =
  sim.slots.Simstats.s_busy <- sim.slots.Simstats.s_busy + e.a_busy;
  sim.slots.Simstats.s_sync <- sim.slots.Simstats.s_sync + e.a_sync;
  sim.slots.Simstats.s_other_stall <-
    sim.slots.Simstats.s_other_stall + e.a_other;
  Hashtbl.iter
    (fun ch n ->
      Hashtbl.replace sim.sync_by_channel ch
        (n + Option.value ~default:0 (Hashtbl.find_opt sim.sync_by_channel ch)))
    e.a_sync_chan

(* Spurious_violation fault targeting the next commit, if one is armed and
   unfired.  Keyed on the global commit counter, which does not advance on
   a squash, so the single-shot guard is what stops it refiring. *)
let spurious_violation_fires sim =
  match
    List.find_opt
      (fun fault ->
        match fault with
        | Config.Spurious_violation k ->
          k = sim.committed_epochs && not (Hashtbl.mem sim.fired fault)
        | _ -> false)
      sim.cfg.Config.sim_faults
  with
  | Some fault ->
    mark_fired sim fault;
    true
  | None -> false

let try_commit sim st =
  if sim.cycle >= st.ts_commit_ready then begin
    match Hashtbl.find_opt st.epochs st.ts_oldest with
    | Some e when e.status = Done ->
      if spurious_violation_fires sim then begin
        (* The hardware squashed a correct epoch: re-running it must be
           idempotent, so this is absorbable by construction. *)
        sim.violations <- sim.violations + 1;
        cascade_squash sim st e.ep_index
      end
      else if
        sim.cfg.Config.hw_value_predict
        && not (verify_predictions sim e)
      then begin
        (* Value misprediction: restart this epoch (it re-runs as oldest). *)
        sim.violations <- sim.violations + 1;
        train_predictions sim e;
        cascade_squash sim st e.ep_index
      end
      else begin
        if sim.cfg.Config.hw_value_predict then train_predictions sim e;
        (* Commit-time violations: uncommitted-store-then-load staleness. *)
        Hashtbl.iter
          (fun line () ->
            let rec check k =
              if k < st.ts_next_spawn then begin
                match Hashtbl.find_opt st.epochs k with
                | Some e' when e'.status = Running || e'.status = Done -> begin
                  match Hashtbl.find_opt e'.read_lines line with
                  | Some reader_iid ->
                    violate sim st ~victim_idx:k ~load_iid:reader_iid
                  | None -> check (k + 1)
                end
                | _ -> check (k + 1)
              end
            in
            check (e.ep_index + 1))
          e.write_lines;
        (* Merge the speculative writes into committed memory. *)
        Hashtbl.iter
          (fun addr v -> Runtime.Memory.store sim.committed addr v)
          e.spec_writes;
        drain_thread_output sim e.ep_thread;
        accumulate_attempt sim e;
        e.status <- Committed;
        sim.last_progress <- sim.cycle;
        sim.committed_epochs <- sim.committed_epochs + 1;
        st.ts_commit_ready <- sim.cycle + sim.cfg.Config.commit_overhead;
        match e.exitk with
        | Some Exit_back -> st.ts_oldest <- st.ts_oldest + 1
        | Some (Exit_out _ | Exit_return _) ->
          st.ts_ended <- true;
          st.ts_winner <- Some e
        | None -> assert false
      end
    | Some _ | None -> ()
  end

let spawn_epochs sim st =
  let speculative_exit_pending =
    List.exists
      (fun e -> e.status = Done && e.exitk <> Some Exit_back)
      (active_epochs st)
  in
  if not speculative_exit_pending then
    while
      st.ts_next_spawn < st.ts_oldest + sim.cfg.Config.num_procs
      && not st.ts_ended
    do
      let idx = st.ts_next_spawn in
      Hashtbl.replace st.epochs idx (fresh_epoch sim st idx);
      st.ts_next_spawn <- idx + 1
    done

(* ------------------------------------------------------------------ *)
(* TLS cycle                                                           *)
(* ------------------------------------------------------------------ *)

let procs_slots sim = sim.cfg.Config.num_procs * sim.cfg.Config.issue_width

(* Fast-forward when every epoch is stalled with a known wake time. *)
let fast_forward sim st =
  let actives = active_epochs st in
  let can_act_now =
    List.exists
      (fun e ->
        e.status = Running && e.stall_until <= sim.cycle
        && not (e.blocked && e.wake_at > sim.cycle))
      actives
    ||
    (* a commit is possible *)
    (match Hashtbl.find_opt st.epochs st.ts_oldest with
    | Some e -> e.status = Done && sim.cycle >= st.ts_commit_ready
    | None -> false)
  in
  if can_act_now then ()
  else begin
    let next =
      List.fold_left
        (fun acc e ->
          let t =
            if e.status <> Running then max_int
            else if e.stall_until > sim.cycle then e.stall_until
            else if e.blocked then e.wake_at
            else max_int
          in
          min acc t)
        max_int actives
    in
    let next =
      match Hashtbl.find_opt st.epochs st.ts_oldest with
      | Some e when e.status = Done -> min next st.ts_commit_ready
      | _ -> next
    in
    if next = max_int || next <= sim.cycle then ()
      (* cannot prove a skip; fall through to normal polling *)
    else begin
      let skip = next - sim.cycle in
      let w = sim.cfg.Config.issue_width in
      List.iter
        (fun e ->
          if e.status = Running then
            if e.blocked then begin
              e.a_sync <- e.a_sync + (skip * w);
              add_sync_chan e e.last_block (skip * w)
            end
            else e.a_other <- e.a_other + (skip * w))
        actives;
      sim.slots.Simstats.s_total <-
        sim.slots.Simstats.s_total + (skip * procs_slots sim);
      sim.region_wall <- sim.region_wall + skip;
      sim.cycle <- sim.cycle + skip
    end
  end

let tls_cycle sim st =
  (* Progress watchdog: if no instruction graduated and no epoch committed
     for a whole window, the region is wedged (dropped signal, lost
     wake-up, ...) — raise a typed diagnostic instead of spinning to the
     cycle budget.  Legitimate stalls (cache misses, forwarding latency,
     staggered restarts) are orders of magnitude shorter than the window. *)
  if sim.cycle - sim.last_progress > sim.cfg.Config.watchdog_window then begin
    (* Backpressure refinement: a producer stalled on a full forwarding
       queue when the watchdog expires means the consumer side can never
       drain it — a resource deadlock, typed as such.  Anything else
       stays Stuck.  Detection latency is bounded by the window, so
       "never a hang" holds either way. *)
    (match
       List.find_opt (fun e -> e.bp_channel <> None) (active_epochs st)
     with
    | Some e ->
      raise
        (Resource_deadlock
           {
             rd_cycle = sim.cycle;
             rd_region = st.ts_region.Ir.Region.id;
             rd_func = st.ts_region.Ir.Region.func;
             rd_producer = e.ep_index;
             rd_channel =
               (match e.bp_channel with Some c -> c | None -> -1);
             rd_depth = sim.cfg.Config.fwd_queue_depth;
             rd_epochs = List.map epoch_diag_of (active_epochs st);
           })
    | None -> ());
    raise
      (Stuck
         (stuck_diag_of sim st
            (No_progress { window = sim.cfg.Config.watchdog_window })))
  end;
  Hwsync.tick sim.hwsync ~now:sim.cycle;
  fast_forward sim st;
  sim.slots.Simstats.s_total <- sim.slots.Simstats.s_total + procs_slots sim;
  sim.region_wall <- sim.region_wall + 1;
  let rec step_epochs k =
    if k < st.ts_next_spawn && not st.ts_ended then begin
      (match Hashtbl.find_opt st.epochs k with
      | Some e when e.status = Running -> graduate sim st e
      | _ -> ());
      step_epochs (k + 1)
    end
  in
  step_epochs st.ts_oldest;
  if not st.ts_ended then try_commit sim st;
  if not st.ts_ended then spawn_epochs sim st;
  sim.cycle <- sim.cycle + 1

(* Finish a region instance: discard wrong-path epochs and resume the
   sequential thread from the winning epoch. *)
let finish_instance sim st =
  let winner =
    match st.ts_winner with
    | Some e -> e
    | None -> failwith "Sim.finish_instance: no winner"
  in
  Hashtbl.iter
    (fun _ e ->
      match e.status with
      | Running | Done ->
        sim.squashed_epochs <- sim.squashed_epochs + 1;
        sim.slots.Simstats.s_fail <-
          sim.slots.Simstats.s_fail + e.a_busy + e.a_sync + e.a_other;
        e.status <- Discarded
      | Committed | Discarded -> ())
    st.epochs;
  let prev =
    match Hashtbl.find_opt sim.region_wall_by_id st.ts_region.Ir.Region.id with
    | Some c -> c
    | None -> 0
  in
  Hashtbl.replace sim.region_wall_by_id st.ts_region.Ir.Region.id
    (prev + (sim.cycle - st.ts_start_cycle));
  (* Resume sequential execution. *)
  (match winner.exitk with
  | Some (Exit_out target) ->
    let seq_frame = Runtime.Thread.current_frame sim.seq_thread in
    let ep_frame = Runtime.Thread.current_frame winner.ep_thread in
    Array.blit ep_frame.Runtime.Thread.regs 0 seq_frame.Runtime.Thread.regs 0
      (Array.length seq_frame.Runtime.Thread.regs);
    seq_frame.Runtime.Thread.block <- target;
    seq_frame.Runtime.Thread.pc <- 0
  | Some (Exit_return rv) -> begin
    match sim.seq_thread.Runtime.Thread.frames with
    | f :: rest ->
      (match rest with
      | caller :: _ ->
        (match f.Runtime.Thread.ret_to, rv with
        | Some dst, Some v -> caller.Runtime.Thread.regs.(dst) <- v
        | Some dst, None -> caller.Runtime.Thread.regs.(dst) <- 0
        | None, _ -> ());
        sim.seq_thread.Runtime.Thread.frames <- rest
      | [] ->
        sim.seq_thread.Runtime.Thread.frames <- [];
        sim.finished <- true)
    | [] -> sim.finished <- true
  end
  | Some Exit_back | None -> failwith "Sim.finish_instance: bad winner exit");
  sim.mode <- Seq

(* ------------------------------------------------------------------ *)
(* Sequential engine                                                   *)
(* ------------------------------------------------------------------ *)

let seq_hooks sim : Runtime.Thread.hooks =
  let base = Runtime.Thread.sequential_hooks sim.committed in
  {
    base with
    Runtime.Thread.load =
      (fun _ _ addr ->
        sim.extra_latency <- Memsys.access sim.memsys ~proc:0 ~addr - 1;
        Runtime.Memory.load sim.committed addr);
    store =
      (fun _ _ addr v ->
        sim.extra_latency <- Memsys.access sim.memsys ~proc:0 ~addr - 1;
        Runtime.Memory.store sim.committed addr v);
    control =
      (fun t ~target ->
        let fname =
          (Runtime.Thread.current_frame t).Runtime.Thread.cfunc
            .Runtime.Code.cf_name
        in
        match Hashtbl.find_opt sim.regions_by_func fname with
        | Some regions -> begin
          match
            List.find_opt (fun (r : Ir.Region.t) -> r.Ir.Region.header = target) regions
          with
          | Some r ->
            sim.pending_region <- Some r;
            false
          | None -> true
        end
        | None -> true);
  }

let enter_tls sim (r : Ir.Region.t) =
  let instance =
    match Hashtbl.find_opt sim.instance_counters r.Ir.Region.id with
    | Some n -> n
    | None -> 0
  in
  Hashtbl.replace sim.instance_counters r.Ir.Region.id (instance + 1);
  let seq_frame = Runtime.Thread.current_frame sim.seq_thread in
  let base = Runtime.Thread.copy_frame seq_frame in
  base.Runtime.Thread.block <- r.Ir.Region.header;
  base.Runtime.Thread.pc <- 0;
  let entry_sent = Hashtbl.create 8 in
  List.iter
    (fun (sc : Ir.Region.scalar_channel) ->
      Hashtbl.replace entry_sent sc.Ir.Region.sc_id
        {
          se_payload = P_scalar base.Runtime.Thread.regs.(sc.Ir.Region.sc_reg);
          se_avail = sim.cycle;
        })
    r.Ir.Region.scalar_channels;
  List.iter
    (fun (mg : Ir.Region.mem_group) ->
      Hashtbl.replace entry_sent mg.Ir.Region.mg_id
        { se_payload = P_mem (0, 0); se_avail = sim.cycle })
    r.Ir.Region.mem_groups;
  let channels =
    Int_set.union
      (Int_set.of_list
         (List.map (fun (sc : Ir.Region.scalar_channel) -> sc.Ir.Region.sc_id)
            r.Ir.Region.scalar_channels))
      (Int_set.of_list
         (List.map (fun (mg : Ir.Region.mem_group) -> mg.Ir.Region.mg_id)
            r.Ir.Region.mem_groups))
  in
  let comp_loads =
    Int_set.of_list
      (List.concat_map
         (fun (mg : Ir.Region.mem_group) -> mg.Ir.Region.mg_loads)
         r.Ir.Region.mem_groups)
  in
  drain_thread_output sim sim.seq_thread;
  let st =
    {
      ts_region = r;
      ts_instance = instance;
      ts_base = base;
      ts_blocks = Int_set.of_list r.Ir.Region.blocks;
      ts_channels = channels;
      ts_comp_loads = comp_loads;
      ts_entry_sent = entry_sent;
      epochs = Hashtbl.create 16;
      ts_oldest = 0;
      ts_next_spawn = 0;
      ts_commit_ready = 0;
      ts_ended = false;
      ts_winner = None;
      ts_start_cycle = sim.cycle;
    }
  in
  spawn_epochs sim st;
  sim.last_progress <- sim.cycle;
  sim.mode <- Tls st

let seq_cycle sim hooks =
  if sim.seq_stall_until > sim.cycle then begin
    let skip = sim.seq_stall_until - sim.cycle in
    sim.cycle <- sim.cycle + skip;
    sim.seq_cycles <- sim.seq_cycles + skip
  end;
  let slots = ref sim.cfg.Config.issue_width in
  let continue_ = ref true in
  while !slots > 0 && !continue_ && not sim.finished do
    sim.extra_latency <- 0;
    match Runtime.Thread.step sim.seq_thread hooks with
    | Runtime.Thread.Ran ev ->
      decr slots;
      let unit_latency =
        match ev with
        | Runtime.Thread.Exec
            { Ir.Instr.kind = Ir.Instr.Bin (Ir.Instr.Mul, _, _, _); _ } ->
          sim.cfg.Config.lat_mul - 1
        | Runtime.Thread.Exec
            {
              Ir.Instr.kind =
                Ir.Instr.Bin ((Ir.Instr.Div | Ir.Instr.Rem), _, _, _);
              _;
            } ->
          sim.cfg.Config.lat_div - 1
        | _ -> 0
      in
      let extra = max sim.extra_latency unit_latency in
      if extra > 0 then begin
        sim.seq_stall_until <- sim.cycle + extra;
        continue_ := false
      end
    | Runtime.Thread.Suspended -> begin
      match sim.pending_region with
      | Some r ->
        sim.pending_region <- None;
        enter_tls sim r;
        continue_ := false
      | None -> failwith "Sim: sequential thread suspended without a region"
    end
    | Runtime.Thread.Blocked -> failwith "Sim: sequential thread blocked"
    | Runtime.Thread.Finished _ -> sim.finished <- true
  done;
  sim.cycle <- sim.cycle + 1;
  sim.seq_cycles <- sim.seq_cycles + 1

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let create_sim cfg code ~input ~oracle ~tls_enabled =
  let committed = Runtime.Memory.create () in
  Runtime.Memory.store_all committed code.Runtime.Code.initial_stores;
  let regions_by_func = Hashtbl.create 8 in
  if tls_enabled then
    List.iter
      (fun (r : Ir.Region.t) ->
        let prev =
          match Hashtbl.find_opt regions_by_func r.Ir.Region.func with
          | Some l -> l
          | None -> []
        in
        Hashtbl.replace regions_by_func r.Ir.Region.func (r :: prev))
      code.Runtime.Code.regions;
  {
    cfg;
    code;
    memsys = Memsys.create cfg;
    hwsync =
      Hwsync.create ~size:cfg.Config.hw_table_size
        ~reset_interval:cfg.Config.hw_reset_interval;
    vpred = Vpred.create ~stride:cfg.Config.vpred_stride;
    oracle;
    committed;
    seq_thread = Runtime.Thread.create code ~func_name:"main" ~input;
    regions_by_func;
    instance_counters = Hashtbl.create 8;
    mode = Seq;
    cycle = 0;
    seq_cycles = 0;
    region_wall = 0;
    seq_stall_until = 0;
    pending_region = None;
    extra_latency = 0;
    finished = false;
    output_rev = [];
    slots = Simstats.fresh_slots ();
    attribution = Simstats.fresh_attribution ();
    violations = 0;
    committed_epochs = 0;
    squashed_epochs = 0;
    max_sig_buffer = 0;
    ever_marked = Hashtbl.create 64;
    region_wall_by_id = Hashtbl.create 8;
    chan_stats = Hashtbl.create 32;
    sync_by_channel = Hashtbl.create 32;
    violated_loads = Hashtbl.create 16;
    last_progress = 0;
    f_mem_signals = 0;
    f_blocked_waits = 0;
    fired = Hashtbl.create 4;
    dropped_wakeups = Hashtbl.create 4;
    resources = Simstats.fresh_resources ();
  }

(* Host-side measurement of one run: wall time and words allocated.
   [Gc.minor_words]/[Gc.major_words] are cumulative per-domain counters,
   so the difference is what [f] itself allocated. *)
let with_runtime_counters f =
  let t0 = Unix.gettimeofday () in
  let g0 = Gc.quick_stat () in
  let v = f () in
  let g1 = Gc.quick_stat () in
  let rt =
    {
      Simstats.rt_wall_ns =
        int_of_float ((Unix.gettimeofday () -. t0) *. 1e9);
      rt_minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
      rt_major_words = g1.Gc.major_words -. g0.Gc.major_words;
    }
  in
  (v, rt)

let run ?max_cycles cfg code ~input ?oracle () =
  let max_cycles =
    match max_cycles with Some m -> m | None -> cfg.Config.max_cycles
  in
  let result, runtime = with_runtime_counters @@ fun () ->
  let sim = create_sim cfg code ~input ~oracle ~tls_enabled:true in
  let hooks = seq_hooks sim in
  while not sim.finished do
    if sim.cycle > max_cycles then
      raise
        (Cycle_limit { max_cycles; cycle = sim.cycle; where = "Sim.run" });
    match sim.mode with
    | Seq -> seq_cycle sim hooks
    | Tls st ->
      tls_cycle sim st;
      if st.ts_ended then finish_instance sim st
  done;
  drain_thread_output sim sim.seq_thread;
  let l1_accesses = Memsys.l1_hits sim.memsys + Memsys.l1_misses sim.memsys in
  sim.resources.Simstats.rs_hw_evictions <- Hwsync.evictions sim.hwsync;
  sim.resources.Simstats.rs_peak_hw_table <- Hwsync.peak sim.hwsync;
  {
    Simstats.total_cycles = sim.cycle;
    seq_cycles = sim.seq_cycles;
    region_cycles = sim.region_wall;
    slots = sim.slots;
    violations = sim.violations;
    attribution = sim.attribution;
    epochs_committed = sim.committed_epochs;
    epochs_squashed = sim.squashed_epochs;
    output = List.rev sim.output_rev;
    final_memory = sim.committed;
    max_signal_buffer = sim.max_sig_buffer;
    region_cycle_by_id =
      Hashtbl.fold (fun id c acc -> (id, c) :: acc) sim.region_wall_by_id []
      |> List.sort compare;
    region_instances =
      Hashtbl.fold (fun id c acc -> (id, c) :: acc) sim.instance_counters []
      |> List.sort compare;
    l1_miss_rate =
      (if l1_accesses = 0 then 0.0
       else float_of_int (Memsys.l1_misses sim.memsys) /. float_of_int l1_accesses);
    hw_marked_loads = Hashtbl.length sim.ever_marked;
    vpred_predictions = Vpred.predictions sim.vpred;
    faults_fired = Hashtbl.length sim.fired;
    runtime = Simstats.no_runtime;
    resources = sim.resources;
    sync_stall_by_channel =
      Hashtbl.fold (fun ch n acc -> (ch, n) :: acc) sim.sync_by_channel []
      |> List.sort compare;
    violated_load_counts =
      Hashtbl.fold (fun iid n acc -> (iid, n) :: acc) sim.violated_loads []
      |> List.sort compare;
  }
  in
  { result with Simstats.runtime }

(* ------------------------------------------------------------------ *)
(* Sequential timed run with loop-extent tracking                      *)
(* ------------------------------------------------------------------ *)

type extent_active = { ea_region : int; ea_body : Int_set.t }

type extent_state = {
  ex_by_func : (string, (int * int * Int_set.t) list) Hashtbl.t;
  mutable ex_stack : extent_active list list;   (* parallel to frames *)
}

let extent_current st =
  let rec scan = function
    | [] -> None
    | actives :: rest -> begin
      match actives with
      | a :: _ -> Some a.ea_region
      | [] -> scan rest
    end
  in
  (* Outermost attribution: find the deepest list entry (bottom frame) that
     has an active region.  ex_stack is innermost-first, so scan reversed. *)
  scan (List.rev st.ex_stack)

let extent_goto st fname target =
  match st.ex_stack with
  | [] -> ()
  | actives :: rest ->
    let still =
      List.filter (fun a -> Int_set.mem target a.ea_body) actives
    in
    let actives =
      match Hashtbl.find_opt st.ex_by_func fname with
      | Some regions -> begin
        match
          List.find_opt (fun (_, header, _) -> header = target) regions
        with
        | Some (rid, _, body)
          when not
                 (List.exists
                    (fun a -> a.ea_region = rid)
                    still) ->
          { ea_region = rid; ea_body = body } :: still
        | Some _ | None -> still
      end
      | None -> still
    in
    st.ex_stack <- actives :: rest

let run_sequential ?max_cycles cfg code ~input ~track =
  let max_cycles =
    match max_cycles with Some m -> m | None -> cfg.Config.max_cycles
  in
  let result, runtime = with_runtime_counters @@ fun () ->
  let sim = create_sim cfg code ~input ~oracle:None ~tls_enabled:false in
  let ex_by_func = Hashtbl.create 8 in
  List.iter
    (fun (r : Ir.Region.t) ->
      let prev =
        match Hashtbl.find_opt ex_by_func r.Ir.Region.func with
        | Some l -> l
        | None -> []
      in
      Hashtbl.replace ex_by_func r.Ir.Region.func
        ((r.Ir.Region.id, r.Ir.Region.header, Int_set.of_list r.Ir.Region.blocks)
        :: prev))
    track;
  let ex = { ex_by_func; ex_stack = [ [] ] } in
  let region_cycles = Hashtbl.create 8 in
  let base = seq_hooks sim in
  let hooks = { base with Runtime.Thread.control = (fun _ ~target:_ -> true) } in
  let attribute cycles =
    match extent_current ex with
    | Some rid ->
      let prev =
        match Hashtbl.find_opt region_cycles rid with
        | Some c -> c
        | None -> 0
      in
      Hashtbl.replace region_cycles rid (prev + cycles)
    | None -> ()
  in
  while not sim.finished do
    if sim.cycle > max_cycles then
      raise
        (Cycle_limit
           { max_cycles; cycle = sim.cycle; where = "Sim.run_sequential" });
    (* One cycle: up to issue_width graduations, tracking extents. *)
    if sim.seq_stall_until > sim.cycle then begin
      let skip = sim.seq_stall_until - sim.cycle in
      attribute skip;
      sim.cycle <- sim.cycle + skip
    end;
    let slots = ref sim.cfg.Config.issue_width in
    let continue_ = ref true in
    while !slots > 0 && !continue_ && not sim.finished do
      sim.extra_latency <- 0;
      match Runtime.Thread.step sim.seq_thread hooks with
      | Runtime.Thread.Ran ev ->
        decr slots;
        (match ev with
        | Runtime.Thread.Exec { Ir.Instr.kind = Ir.Instr.Call _; _ } ->
          ex.ex_stack <- [] :: ex.ex_stack
        | Runtime.Thread.Exec
            { Ir.Instr.kind = Ir.Instr.Bin (Ir.Instr.Mul, _, _, _); _ } ->
          sim.extra_latency <- max sim.extra_latency (cfg.Config.lat_mul - 1)
        | Runtime.Thread.Exec
            {
              Ir.Instr.kind =
                Ir.Instr.Bin ((Ir.Instr.Div | Ir.Instr.Rem), _, _, _);
              _;
            } ->
          sim.extra_latency <- max sim.extra_latency (cfg.Config.lat_div - 1)
        | Runtime.Thread.Goto (fname, _from, target) ->
          extent_goto ex fname target
        | Runtime.Thread.Return (_, _) -> begin
          match ex.ex_stack with
          | _ :: rest -> ex.ex_stack <- rest
          | [] -> ()
        end
        | Runtime.Thread.Exec _ -> ());
        if sim.extra_latency > 0 then begin
          sim.seq_stall_until <- sim.cycle + sim.extra_latency;
          continue_ := false
        end
      | Runtime.Thread.Suspended | Runtime.Thread.Blocked ->
        failwith "Sim.run_sequential: unexpected suspension"
      | Runtime.Thread.Finished _ -> sim.finished <- true
    done;
    attribute 1;
    sim.cycle <- sim.cycle + 1
  done;
  {
    Simstats.sq_cycles = sim.cycle;
    sq_region_cycles =
      Hashtbl.fold (fun id c acc -> (id, c) :: acc) region_cycles []
      |> List.sort compare;
    sq_output = Runtime.Thread.output sim.seq_thread;
    sq_memory = sim.committed;
    sq_instrs = sim.seq_thread.Runtime.Thread.icount;
    sq_runtime = Simstats.no_runtime;
  }
  in
  { result with Simstats.sq_runtime = runtime }
