(** Flat pre-resolved instruction encoding ("icode", DESIGN §17).

    The event engine graduates hundreds of millions of instructions per
    bench run; decoding the boxed list/variant [Ir.Instr] representation
    per graduated instruction is the measured remainder of the PR8 wall
    gap.  This module lowers every [Runtime.Code.cfunc] once, at
    simulator construction, into a single dense [int array] per function
    — integer opcodes, inline operand slots, pre-resolved branch and
    call targets, channel indices in place — so the hot loop dispatches
    on integers with no allocation, no pointer chasing, and no string
    hashing.  Anything non-integral (callee names for the
    unknown-function error path, interned [reg option] call
    destinations) lives in side tables indexed by slot values.

    {2 Layout}

    Blocks are laid out back-to-back in label order, block 0 first, so a
    program counter is a flat offset into [code] and the legacy
    [frame.pc = 0] entry convention still lands on the function entry.
    [block_off.(l)] is the offset of block [l]; branch slots carry both
    the label (region-exit logic keys on labels) and the pre-resolved
    offset.

    Each instruction starts with a word [w]: opcode in the low 8 bits,
    bit 8 ({!flag_a}) set when the first operand slot is an immediate,
    bit 9 ({!flag_b}) when the second is.  Operand fetch is branch-free
    of the variant: [let x = code.(pc + k) in
    if w land flag <> 0 then x else regs.(x)].

    Opcodes 0–15 are the sixteen binops in [Ir.Instr.binop] constructor
    order (Add Sub Mul Div Rem Band Bor Bxor Shl Shr Eq Ne Lt Le Gt Ge),
    so [op < 16] is the ALU fast path and [op = 2] (Mul) / [op = 3 | 4]
    (Div/Rem) select the latency class.  Slot layouts (width includes
    [w]; [iid] is always at [pc+1] for straight-line ops):

    {v
    op  kind                    slots                              width
    0-15 Bin                    w iid d a b                        5
    16  Mov                     w iid d a                          4
    17  Load                    w iid d addr                       4
    18  Store                   w iid addr v                       4
    19  Call                    w iid fidx ret nargs (mode val)*   5+2n
    20  Print                   w iid a                            3
    21  Input                   w iid d idx                        4
    22  Input_len               w iid d                            3
    23  Wait_scalar             w iid ch d                         4
    24  Signal_scalar           w iid ch a                         4
    25  Wait_mem                w iid ch                           3
    26  Sync_load               w iid ch d addr                    5
    27  Signal_mem              w iid ch a                         4
    28  Signal_mem_if_unsent    w iid ch a                         4
    29  Signal_null             w iid ch                           3
    30  Signal_null_if_unsent   w iid ch                           3
    31  Jmp                     w label off                        3
    32  Br                      w c la lb offa offb                6
    33  Ret                     w v                                2
    v}

    [Call.fidx] is the callee's pre-resolved [cf_id] ([>= 0]), or
    [-(i)-1] with [names.(i)] the callee name when the function is
    unknown — the error path reconstructs the exact legacy message.
    [Call.ret] indexes {!field-ret_opts}; argument pairs are
    [(1, imm)] or [(0, reg)].  For [Ret], bit 8 means "has a value" and
    bit 9 "the value is an immediate". *)

type func = {
  fn_cfunc : Runtime.Code.cfunc;  (* the source snapshot (regions, decode) *)
  code : int array;               (* whole function, blocks in label order *)
  block_off : int array;          (* label -> flat offset; block_off.(0)=0 *)
}

type prog = {
  funcs : func array;                     (* indexed by [cf_id] *)
  names : string array;                   (* unknown-callee names *)
  ret_opts : Ir.Instr.reg option array;   (* interned call destinations *)
}

(** A valid [prog] with no functions; the disabled-icode placeholder. *)
val empty : prog

val opcode_mask : int  (* 0xff *)
val flag_a : int       (* 0x100: first operand slot is an immediate *)
val flag_b : int       (* 0x200: second operand slot is an immediate *)

(** Encode without verifying — the test seam for doctoring arrays. *)
val encode : Runtime.Code.t -> prog

(** Structural well-formedness: opcode validity, instruction widths
    landing exactly on block boundaries, terminator per block, register
    operands within [cf_nregs], non-negative channels and iids, branch
    labels in range with offsets matching [block_off], call-site indices
    within the side tables.  This is what justifies unchecked array
    reads in the dispatcher. *)
val verify : prog -> (unit, string) result

(** [encode] + [verify], raising [Failure] on malformed output (an
    encoder bug, not a user error). *)
val of_code : Runtime.Code.t -> prog

(** Reconstruct one block; the round-trip test seam.  Decoded
    instructions are structurally equal to the originals. *)
val decode_block :
  prog -> func -> Ir.Instr.label -> Ir.Instr.t list * Ir.Instr.terminator

(** Integer-coded {!Ir.Instr.eval_binop}: [eval_binop_i (binop_index op)]
    ≡ [eval_binop op], including the div/rem-by-zero guards and the
    6-bit shift masks. *)
val eval_binop_i : int -> int -> int -> int

val binop_index : Ir.Instr.binop -> int
