module Iid_set = Set.Make (Int)

type oracle_mode =
  | Oracle_none
  | Oracle_all
  | Oracle_set of Iid_set.t

type forward_timing = Forward_normal | Forward_perfect | Forward_at_commit

type sim_fault =
  | Corrupt_addr of int
  | Corrupt_value of int
  | Delay_signal of { nth : int; extra : int }
  | Spurious_violation of int
  | Drop_wakeup of int

type overflow_policy = Overflow_stall | Overflow_squash

type engine = Engine_ref | Engine_event

type t = {
  num_procs : int;
  issue_width : int;
  lat_mul : int;
  lat_div : int;
  line_words : int;
  l1_sets : int;
  l1_ways : int;
  l1_hit : int;
  l2_sets : int;
  l2_ways : int;
  l2_hit : int;
  mem_lat : int;
  spawn_overhead : int;
  commit_overhead : int;
  forward_latency : int;
  violation_penalty : int;
  epoch_max_instrs : int;
  max_restarts_before_hold : int;
  stall_compiler_sync : bool;
  hw_sync_stall : bool;
  hw_value_predict : bool;
  hw_skip_compiler_synced : bool;
  filter_useless_sync : bool;
  filter_window : int;
  hw_table_size : int;
  hw_reset_interval : int;
  vpred_confidence : int;
  vpred_stride : bool;
  word_level_tracking : bool;
  oracle : oracle_mode;
  forward_timing : forward_timing;
  sim_faults : sim_fault list;
  watchdog_window : int;
  protocol_checks : bool;
  max_cycles : int;
  sig_buffer_entries : int;
  spec_lines_per_epoch : int;
  fwd_queue_depth : int;
  overflow_policy : overflow_policy;
  engine : engine;
  icode : bool;
}

let default =
  {
    num_procs = 4;
    issue_width = 4;
    lat_mul = 3;
    lat_div = 12;
    line_words = 8;            (* 32B lines, 4B words *)
    l1_sets = 512;             (* 32KB, 2-way *)
    l1_ways = 2;
    l1_hit = 1;
    l2_sets = 16384;           (* 2MB, 4-way *)
    l2_ways = 4;
    l2_hit = 10;
    mem_lat = 75;
    spawn_overhead = 10;
    commit_overhead = 5;
    forward_latency = 10;
    violation_penalty = 25;
    epoch_max_instrs = 200_000;
    max_restarts_before_hold = 3;
    stall_compiler_sync = true;
    hw_sync_stall = false;
    hw_value_predict = false;
    hw_skip_compiler_synced = false;
    filter_useless_sync = false;
    filter_window = 16;
    hw_table_size = 32;
    hw_reset_interval = 20_000;
    vpred_confidence = 2;
    vpred_stride = false;
    word_level_tracking = false;
    oracle = Oracle_none;
    forward_timing = Forward_normal;
    sim_faults = [];
    watchdog_window = 50_000;
    protocol_checks = true;
    max_cycles = 2_000_000_000;
    sig_buffer_entries = max_int;
    spec_lines_per_epoch = max_int;
    fwd_queue_depth = max_int;
    overflow_policy = Overflow_stall;
    engine = Engine_event;
    icode = true;
  }

let u_mode = { default with stall_compiler_sync = false }
let c_mode = default
let h_mode = { default with stall_compiler_sync = false; hw_sync_stall = true }
let p_mode =
  { default with stall_compiler_sync = false; hw_value_predict = true }
let b_mode = { default with stall_compiler_sync = true; hw_sync_stall = true }

let bplus_mode =
  {
    b_mode with
    hw_skip_compiler_synced = true;
    filter_useless_sync = true;
  }

let describe t =
  let line_bytes = t.line_words * 4 in
  let kb sets ways = sets * ways * line_bytes / 1024 in
  String.concat "\n"
    [
      "Pipeline Parameters";
      Printf.sprintf "  Issue Width                 %d" t.issue_width;
      Printf.sprintf "  Integer Multiply            %d cycles" t.lat_mul;
      Printf.sprintf "  Integer Divide              %d cycles" t.lat_div;
      "  All Other Integer           1 cycle";
      "Memory Parameters";
      Printf.sprintf "  Cache Line Size             %dB" line_bytes;
      Printf.sprintf "  Data Cache                  %dKB, %d-way set-assoc"
        (kb t.l1_sets t.l1_ways) t.l1_ways;
      Printf.sprintf "  Unified Secondary Cache     %dKB, %d-way set-assoc"
        (kb t.l2_sets t.l2_ways) t.l2_ways;
      Printf.sprintf "  Miss Latency to Secondary   %d cycles" t.l2_hit;
      Printf.sprintf "  Miss Latency to Memory      %d cycles" t.mem_lat;
      "TLS Parameters";
      Printf.sprintf "  Processors                  %d" t.num_procs;
      Printf.sprintf "  Epoch Spawn Overhead        %d cycles" t.spawn_overhead;
      Printf.sprintf "  Commit Overhead             %d cycles" t.commit_overhead;
      Printf.sprintf "  Forwarding Latency          %d cycles" t.forward_latency;
      Printf.sprintf "  Violation Penalty           %d cycles" t.violation_penalty;
      Printf.sprintf "  HW Sync Table               %d entries, reset every %d cycles"
        t.hw_table_size t.hw_reset_interval;
    ]
