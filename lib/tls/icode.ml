(* Flat pre-resolved instruction encoding (DESIGN §17).  See icode.mli
   for the layout table; the encoder, verifier, and decoder here are the
   single source of truth for it. *)

module I = Ir.Instr

type func = {
  fn_cfunc : Runtime.Code.cfunc;
  code : int array;
  block_off : int array;
}

type prog = {
  funcs : func array;
  names : string array;
  ret_opts : I.reg option array;
}

let empty = { funcs = [||]; names = [||]; ret_opts = [||] }

let opcode_mask = 0xff
let flag_a = 0x100
let flag_b = 0x200

(* Opcodes 0..15 are binops in constructor order. *)
let op_mov = 16
let op_load = 17
let op_store = 18
let op_call = 19
let op_print = 20
let op_input = 21
let op_input_len = 22
let op_wait_scalar = 23
let op_signal_scalar = 24
let op_wait_mem = 25
let op_sync_load = 26
let op_signal_mem = 27
let op_signal_mem_unsent = 28
let op_signal_null = 29
let op_signal_null_unsent = 30
let op_jmp = 31
let op_br = 32
let op_ret = 33

let binop_index : I.binop -> int = function
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Div -> 3 | Rem -> 4 | Band -> 5
  | Bor -> 6 | Bxor -> 7 | Shl -> 8 | Shr -> 9 | Eq -> 10 | Ne -> 11
  | Lt -> 12 | Le -> 13 | Gt -> 14 | Ge -> 15

let binop_of_index : I.binop array =
  [| Add; Sub; Mul; Div; Rem; Band; Bor; Bxor; Shl; Shr; Eq; Ne; Lt; Le;
     Gt; Ge |]

(* Must mirror Ir.Instr.eval_binop exactly (div/rem-by-zero guards,
   6-bit shift masks) — the round-trip property test cross-checks it
   against the variant evaluator over random operands. *)
let[@inline] eval_binop_i op a b =
  match op with
  | 0 -> a + b
  | 1 -> a - b
  | 2 -> a * b
  | 3 -> if b = 0 then 0 else a / b
  | 4 -> if b = 0 then 0 else a mod b
  | 5 -> a land b
  | 6 -> a lor b
  | 7 -> a lxor b
  | 8 -> a lsl (b land 63)
  | 9 -> a asr (b land 63)
  | 10 -> if a = b then 1 else 0
  | 11 -> if a <> b then 1 else 0
  | 12 -> if a < b then 1 else 0
  | 13 -> if a <= b then 1 else 0
  | 14 -> if a > b then 1 else 0
  | _ -> if a >= b then 1 else 0

(* ------------------------------------------------------------------ *)
(* Encoding *)

let width_of_kind : I.kind -> int = function
  | Bin _ | Sync_load _ -> 5
  | Mov _ | Load _ | Store _ | Input _ | Wait_scalar _ | Signal_scalar _
  | Signal_mem _ | Signal_mem_if_unsent _ ->
    4
  | Call (_, _, args) -> 5 + (2 * List.length args)
  | Print _ | Input_len _ | Wait_mem _ | Signal_null _
  | Signal_null_if_unsent _ ->
    3

let width_of_term : I.terminator -> int = function
  | Jmp _ -> 3
  | Br _ -> 6
  | Ret _ -> 2

(* (immediate-flag, slot-value) of an operand. *)
let slot_of_operand : I.operand -> int * int = function
  | Reg r -> (0, r)
  | Imm v -> (1, v)

type 'a interner = {
  tbl : ('a, int) Hashtbl.t;
  mutable rev : 'a list;  (* newest first *)
}

let interner () = { tbl = Hashtbl.create 8; rev = [] }

let intern it key =
  match Hashtbl.find_opt it.tbl key with
  | Some i -> i
  | None ->
    let i = Hashtbl.length it.tbl in
    Hashtbl.add it.tbl key i;
    it.rev <- key :: it.rev;
    i

let interned it = Array.of_list (List.rev it.rev)

let encode_func ~resolve ~names ~ret_opts (cf : Runtime.Code.cfunc) : func =
  let nb = Array.length cf.cf_blocks in
  let block_off = Array.make nb 0 in
  let total = ref 0 in
  for b = 0 to nb - 1 do
    block_off.(b) <- !total;
    let blk = cf.cf_blocks.(b) in
    Array.iter
      (fun (i : I.t) -> total := !total + width_of_kind i.kind)
      blk.instrs;
    total := !total + width_of_term blk.term
  done;
  let code = Array.make !total 0 in
  let pc = ref 0 in
  let emit v =
    code.(!pc) <- v;
    incr pc
  in
  let emit_instr (i : I.t) =
    let iid = i.iid in
    match i.kind with
    | Bin (op, d, a, b) ->
      let ma, va = slot_of_operand a and mb, vb = slot_of_operand b in
      emit (binop_index op lor (ma lsl 8) lor (mb lsl 9));
      emit iid; emit d; emit va; emit vb
    | Mov (d, a) ->
      let ma, va = slot_of_operand a in
      emit (op_mov lor (ma lsl 8));
      emit iid; emit d; emit va
    | Load (d, a) ->
      let ma, va = slot_of_operand a in
      emit (op_load lor (ma lsl 8));
      emit iid; emit d; emit va
    | Store (a, v) ->
      let ma, va = slot_of_operand a and mv, vv = slot_of_operand v in
      emit (op_store lor (ma lsl 8) lor (mv lsl 9));
      emit iid; emit va; emit vv
    | Call (ret, name, args) ->
      let fidx =
        match resolve name with
        | Some id -> id
        | None -> -intern names name - 1
      in
      emit op_call;
      emit iid;
      emit fidx;
      emit (intern ret_opts ret);
      emit (List.length args);
      List.iter
        (fun a ->
          let m, v = slot_of_operand a in
          emit m; emit v)
        args
    | Print a ->
      let ma, va = slot_of_operand a in
      emit (op_print lor (ma lsl 8));
      emit iid; emit va
    | Input (d, a) ->
      let ma, va = slot_of_operand a in
      emit (op_input lor (ma lsl 8));
      emit iid; emit d; emit va
    | Input_len d ->
      emit op_input_len;
      emit iid; emit d
    | Wait_scalar (ch, d) ->
      emit op_wait_scalar;
      emit iid; emit ch; emit d
    | Signal_scalar (ch, a) ->
      let ma, va = slot_of_operand a in
      emit (op_signal_scalar lor (ma lsl 8));
      emit iid; emit ch; emit va
    | Wait_mem ch ->
      emit op_wait_mem;
      emit iid; emit ch
    | Sync_load (ch, d, a) ->
      let ma, va = slot_of_operand a in
      emit (op_sync_load lor (ma lsl 8));
      emit iid; emit ch; emit d; emit va
    | Signal_mem (ch, a) ->
      let ma, va = slot_of_operand a in
      emit (op_signal_mem lor (ma lsl 8));
      emit iid; emit ch; emit va
    | Signal_mem_if_unsent (ch, a) ->
      let ma, va = slot_of_operand a in
      emit (op_signal_mem_unsent lor (ma lsl 8));
      emit iid; emit ch; emit va
    | Signal_null ch ->
      emit op_signal_null;
      emit iid; emit ch
    | Signal_null_if_unsent ch ->
      emit op_signal_null_unsent;
      emit iid; emit ch
  in
  let emit_term : I.terminator -> unit = function
    | Jmp l ->
      emit op_jmp;
      emit l;
      emit block_off.(l)
    | Br (c, la, lb) ->
      let mc, vc = slot_of_operand c in
      emit (op_br lor (mc lsl 8));
      emit vc; emit la; emit lb; emit block_off.(la); emit block_off.(lb)
    | Ret v ->
      (match v with
      | None -> emit op_ret; emit 0
      | Some o ->
        let m, v = slot_of_operand o in
        emit (op_ret lor flag_a lor (m lsl 9));
        emit v)
  in
  Array.iter
    (fun (blk : Runtime.Code.cblock) ->
      Array.iter emit_instr blk.instrs;
      emit_term blk.term)
    cf.cf_blocks;
  assert (!pc = !total);
  { fn_cfunc = cf; code; block_off }

let encode (code : Runtime.Code.t) : prog =
  let cfuncs =
    Hashtbl.fold (fun _ cf acc -> cf :: acc) code.Runtime.Code.funcs []
    |> List.sort (fun (a : Runtime.Code.cfunc) b ->
           compare a.cf_id b.cf_id)
  in
  List.iteri
    (fun i (cf : Runtime.Code.cfunc) ->
      if cf.cf_id <> i then
        failwith
          (Printf.sprintf "Icode: non-dense cf_id %d at position %d (%s)"
             cf.cf_id i cf.cf_name))
    cfuncs;
  let names = interner () in
  let ret_opts = interner () in
  let resolve name =
    match Hashtbl.find_opt code.Runtime.Code.funcs name with
    | Some cf -> Some cf.Runtime.Code.cf_id
    | None -> None
  in
  let funcs =
    Array.of_list (List.map (encode_func ~resolve ~names ~ret_opts) cfuncs)
  in
  { funcs; names = interned names; ret_opts = interned ret_opts }

(* ------------------------------------------------------------------ *)
(* Verification — the license for unchecked reads in the dispatcher. *)

let verify (p : prog) : (unit, string) result =
  let nfuncs = Array.length p.funcs in
  let nnames = Array.length p.names in
  let nrets = Array.length p.ret_opts in
  let err = ref None in
  let fail fn b pc msg =
    if !err = None then
      err :=
        Some
          (Printf.sprintf "%s: block %d at +%d: %s"
             fn.fn_cfunc.Runtime.Code.cf_name b pc msg)
  in
  let check_func fi (f : func) =
    let cf = f.fn_cfunc in
    if cf.Runtime.Code.cf_id <> fi then
      fail f 0 0 (Printf.sprintf "cf_id %d at index %d" cf.cf_id fi);
    let nregs = cf.Runtime.Code.cf_nregs in
    let len = Array.length f.code in
    let nb = Array.length f.block_off in
    if nb <> Array.length cf.cf_blocks then
      fail f 0 0 "block_off length does not match block count";
    if nb > 0 && f.block_off.(0) <> 0 then fail f 0 0 "block 0 not at offset 0";
    for b = 1 to nb - 1 do
      if f.block_off.(b) <= f.block_off.(b - 1) then
        fail f b f.block_off.(b) "block offsets not strictly increasing"
    done;
    let reg b pc v =
      if v < 0 || v >= nregs then
        fail f b pc (Printf.sprintf "out-of-range register %d (nregs %d)" v nregs)
    in
    let operand b pc w bit v = if w land bit = 0 then reg b pc v in
    let chan b pc ch =
      if ch < 0 then fail f b pc (Printf.sprintf "negative channel %d" ch)
    in
    let iid b pc v =
      if v < 0 then fail f b pc (Printf.sprintf "negative iid %d" v)
    in
    let target b pc slot l off =
      if l < 0 || l >= nb then
        fail f b pc (Printf.sprintf "dangling branch target %d (%s)" l slot)
      else if off <> f.block_off.(l) then
        fail f b pc
          (Printf.sprintf "branch offset %d does not match block %d at %d" off
             l f.block_off.(l))
    in
    for b = 0 to nb - 1 do
      let stop = if b + 1 < nb then f.block_off.(b + 1) else len in
      let pc = ref f.block_off.(b) in
      let terminated = ref false in
      while (not !terminated) && !err = None do
        if !pc >= stop then (
          fail f b !pc "block has no terminator";
          terminated := true)
        else begin
          let w = f.code.(!pc) in
          let op = w land opcode_mask in
          let width =
            if op < op_mov then 5
            else if op = op_sync_load then 5
            else if op = op_mov || op = op_load || op = op_store
                    || op = op_input || op = op_wait_scalar
                    || op = op_signal_scalar || op = op_signal_mem
                    || op = op_signal_mem_unsent then 4
            else if op = op_print || op = op_input_len || op = op_wait_mem
                    || op = op_signal_null || op = op_signal_null_unsent
                    || op = op_jmp then 3
            else if op = op_br then 6
            else if op = op_ret then 2
            else if op = op_call then
              if !pc + 4 < stop then 5 + (2 * f.code.(!pc + 4)) else max_int
            else (
              fail f b !pc (Printf.sprintf "invalid opcode %d" op);
              max_int)
          in
          if !err = None then
            if width = max_int || !pc + width > stop then (
              if !err = None then
                fail f b !pc
                  (Printf.sprintf "opcode %d overruns block end %d" op stop))
            else begin
              let s k = f.code.(!pc + k) in
              (if op < op_mov then begin
                 iid b !pc (s 1);
                 reg b !pc (s 2);
                 operand b !pc w flag_a (s 3);
                 operand b !pc w flag_b (s 4)
               end
               else if op = op_mov || op = op_load || op = op_input then begin
                 iid b !pc (s 1);
                 reg b !pc (s 2);
                 operand b !pc w flag_a (s 3)
               end
               else if op = op_store then begin
                 iid b !pc (s 1);
                 operand b !pc w flag_a (s 2);
                 operand b !pc w flag_b (s 3)
               end
               else if op = op_call then begin
                 iid b !pc (s 1);
                 let fidx = s 2 in
                 if fidx >= nfuncs || -fidx - 1 >= nnames then
                   fail f b !pc (Printf.sprintf "call index %d out of range" fidx);
                 let ridx = s 3 in
                 if ridx < 0 || ridx >= nrets then
                   fail f b !pc
                     (Printf.sprintf "call ret index %d out of range" ridx)
                 else
                   (match p.ret_opts.(ridx) with
                   | Some r -> reg b !pc r
                   | None -> ());
                 let nargs = s 4 in
                 if nargs < 0 then fail f b !pc "negative call arity";
                 for a = 0 to nargs - 1 do
                   let m = s (5 + (2 * a)) in
                   if m <> 0 && m <> 1 then
                     fail f b !pc (Printf.sprintf "bad call arg mode %d" m);
                   if m = 0 then reg b !pc (s (6 + (2 * a)))
                 done
               end
               else if op = op_print then begin
                 iid b !pc (s 1);
                 operand b !pc w flag_a (s 2)
               end
               else if op = op_input_len then begin
                 iid b !pc (s 1);
                 reg b !pc (s 2)
               end
               else if op = op_wait_scalar then begin
                 iid b !pc (s 1);
                 chan b !pc (s 2);
                 reg b !pc (s 3)
               end
               else if op = op_signal_scalar || op = op_signal_mem
                       || op = op_signal_mem_unsent then begin
                 iid b !pc (s 1);
                 chan b !pc (s 2);
                 operand b !pc w flag_a (s 3)
               end
               else if op = op_wait_mem || op = op_signal_null
                       || op = op_signal_null_unsent then begin
                 iid b !pc (s 1);
                 chan b !pc (s 2)
               end
               else if op = op_sync_load then begin
                 iid b !pc (s 1);
                 chan b !pc (s 2);
                 reg b !pc (s 3);
                 operand b !pc w flag_a (s 4)
               end
               else if op = op_jmp then target b !pc "jmp" (s 1) (s 2)
               else if op = op_br then begin
                 operand b !pc w flag_a (s 1);
                 target b !pc "br-then" (s 2) (s 4);
                 target b !pc "br-else" (s 3) (s 5)
               end
               else if op = op_ret then begin
                 if w land flag_a <> 0 && w land flag_b = 0 then reg b !pc (s 1)
               end);
              if op >= op_jmp then begin
                terminated := true;
                if !pc + width <> stop then
                  fail f b !pc "terminator does not end the block"
              end;
              pc := !pc + width
            end
        end
      done
    done
  in
  Array.iteri check_func p.funcs;
  match !err with Some e -> Error e | None -> Ok ()

let of_code code =
  let p = encode code in
  (match verify p with
  | Ok () -> ()
  | Error e -> failwith ("Icode.of_code: encoder produced malformed icode: " ^ e));
  p

(* ------------------------------------------------------------------ *)
(* Decoding — the test seam for the round-trip property. *)

let decode_block (p : prog) (f : func) (b : I.label) :
    I.t list * I.terminator =
  let code = f.code in
  let operand w bit v : I.operand =
    if w land bit <> 0 then Imm v else Reg v
  in
  let rec go pc acc =
    let w = code.(pc) in
    let op = w land opcode_mask in
    if op = op_jmp then (List.rev acc, I.Jmp code.(pc + 1))
    else if op = op_br then
      ( List.rev acc,
        I.Br (operand w flag_a code.(pc + 1), code.(pc + 2), code.(pc + 3)) )
    else if op = op_ret then
      ( List.rev acc,
        I.Ret
          (if w land flag_a = 0 then None
           else Some (operand w flag_b code.(pc + 1))) )
    else
      let iid = code.(pc + 1) in
      let kind, width =
        if op < op_mov then
          ( I.Bin
              ( binop_of_index.(op),
                code.(pc + 2),
                operand w flag_a code.(pc + 3),
                operand w flag_b code.(pc + 4) ),
            5 )
        else if op = op_mov then
          (I.Mov (code.(pc + 2), operand w flag_a code.(pc + 3)), 4)
        else if op = op_load then
          (I.Load (code.(pc + 2), operand w flag_a code.(pc + 3)), 4)
        else if op = op_store then
          ( I.Store (operand w flag_a code.(pc + 2), operand w flag_b code.(pc + 3)),
            4 )
        else if op = op_call then begin
          let fidx = code.(pc + 2) in
          let name =
            if fidx >= 0 then
              p.funcs.(fidx).fn_cfunc.Runtime.Code.cf_name
            else p.names.(-fidx - 1)
          in
          let nargs = code.(pc + 4) in
          let args =
            List.init nargs (fun a ->
                let m = code.(pc + 5 + (2 * a)) in
                let v = code.(pc + 6 + (2 * a)) in
                if m <> 0 then I.Imm v else I.Reg v)
          in
          (I.Call (p.ret_opts.(code.(pc + 3)), name, args), 5 + (2 * nargs))
        end
        else if op = op_print then (I.Print (operand w flag_a code.(pc + 2)), 3)
        else if op = op_input then
          (I.Input (code.(pc + 2), operand w flag_a code.(pc + 3)), 4)
        else if op = op_input_len then (I.Input_len code.(pc + 2), 3)
        else if op = op_wait_scalar then
          (I.Wait_scalar (code.(pc + 2), code.(pc + 3)), 4)
        else if op = op_signal_scalar then
          (I.Signal_scalar (code.(pc + 2), operand w flag_a code.(pc + 3)), 4)
        else if op = op_wait_mem then (I.Wait_mem code.(pc + 2), 3)
        else if op = op_sync_load then
          ( I.Sync_load
              (code.(pc + 2), code.(pc + 3), operand w flag_a code.(pc + 4)),
            5 )
        else if op = op_signal_mem then
          (I.Signal_mem (code.(pc + 2), operand w flag_a code.(pc + 3)), 4)
        else if op = op_signal_mem_unsent then
          ( I.Signal_mem_if_unsent (code.(pc + 2), operand w flag_a code.(pc + 3)),
            4 )
        else if op = op_signal_null then (I.Signal_null code.(pc + 2), 3)
        else if op = op_signal_null_unsent then
          (I.Signal_null_if_unsent code.(pc + 2), 3)
        else failwith (Printf.sprintf "Icode.decode_block: invalid opcode %d" op)
      in
      go (pc + width) ({ I.iid; kind } :: acc)
  in
  go f.block_off.(b) []
