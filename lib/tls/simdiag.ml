exception Deadlock of string

(* Typed snapshot of why the simulator is stuck (DESIGN §11): raised by
   the progress watchdog instead of spinning to the cycle budget, and by
   the dynamic sync-protocol check. *)
type epoch_diag = {
  ed_index : int;
  ed_status : string;
  ed_blocked : bool;
  ed_wake_at : int;                          (* max_int = polling *)
  ed_last_block : Ir.Instr.channel option;   (* last channel blocked on *)
  ed_sent : Ir.Instr.channel list;
  ed_consumed : Ir.Instr.channel list;
}

type stuck_reason =
  | No_progress of { window : int }
  | Missing_wait of { channel : Ir.Instr.channel; iid : Ir.Instr.iid }

type stuck_diag = {
  sd_reason : stuck_reason;
  sd_cycle : int;
  sd_region : int;
  sd_func : string;
  sd_oldest : int;
  sd_epochs : epoch_diag list;
}

exception Stuck of stuck_diag

exception Cycle_limit of { max_cycles : int; cycle : int; where : string }

let describe_stuck d =
  let blocked =
    List.filter_map
      (fun ed ->
        if ed.ed_blocked then
          Some
            (Printf.sprintf "epoch %d on channel %s" ed.ed_index
               (match ed.ed_last_block with
               | Some ch -> string_of_int ch
               | None -> "?"))
        else None)
      d.sd_epochs
  in
  let who = match blocked with [] -> "" | l -> ": " ^ String.concat ", " l in
  match d.sd_reason with
  | No_progress { window } ->
    Printf.sprintf
      "no graduation or commit for %d cycles in region %d (%s) at cycle %d, oldest epoch %d%s"
      window d.sd_region d.sd_func d.sd_cycle d.sd_oldest who
  | Missing_wait { channel; iid } ->
    Printf.sprintf
      "sync load %d in region %d (%s) consumed channel %d that no wait ever received (cycle %d)"
      iid d.sd_region d.sd_func channel d.sd_cycle

(* A backpressure cycle under a finite forwarding queue (DESIGN §12): a
   producer stalled on a full queue while the region as a whole stopped
   progressing — the consumer side can never drain it.  Raised by the
   watchdog refinement in place of {!Stuck}, so detection latency is
   bounded by the watchdog window and there are no false positives from
   transient backpressure. *)
type resource_diag = {
  rd_cycle : int;
  rd_region : int;
  rd_func : string;
  rd_producer : int;              (* backpressure-stalled producer epoch *)
  rd_channel : Ir.Instr.channel;  (* channel it cannot enqueue *)
  rd_depth : int;                 (* configured fwd_queue_depth *)
  rd_epochs : epoch_diag list;
}

exception Resource_deadlock of resource_diag

let describe_resource_deadlock d =
  Printf.sprintf
    "backpressure cycle: epoch %d cannot post on channel %d (forwarding queue of depth %d full, consumer never drains) in region %d (%s) at cycle %d"
    d.rd_producer d.rd_channel d.rd_depth d.rd_region d.rd_func d.rd_cycle
