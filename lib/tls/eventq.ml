(* Monotone priority queue of wake events for the event-driven simulator
   core (DESIGN §15).

   A binary min-heap over (cycle, seq) pairs with a per-queue monotone
   sequence number as the tie-break: two events posted for the same cycle
   pop in the order they were pushed (stable / FIFO among ties), so the
   scheduler's choice among simultaneous events is deterministic and
   insertion-ordered.  Storage is three parallel int arrays grown
   geometrically — pushing and popping allocate nothing once the arrays
   have reached their high-water mark.

   The queue is used lazily: producers push a (cycle, payload) event
   whenever they learn a wake time (stall release, signal availability,
   commit readiness) and never retract.  Consumers pop and revalidate
   against current simulator state, discarding stale entries.  Pushed
   cycles may therefore be in the popped past — "monotone" is a property
   of how the scheduler consumes the queue (simulated time only moves
   forward), not an enforced precondition of [push]. *)

type t = {
  mutable cycles : int array;
  mutable seqs : int array;
  mutable payloads : int array;
  mutable size : int;
  mutable next_seq : int;
}

let create ?(capacity = 64) () =
  let capacity = max capacity 1 in
  {
    cycles = Array.make capacity 0;
    seqs = Array.make capacity 0;
    payloads = Array.make capacity 0;
    size = 0;
    next_seq = 0;
  }

let length t = t.size
let is_empty t = t.size = 0

let clear t =
  t.size <- 0;
  t.next_seq <- 0

let grow t =
  let cap = Array.length t.cycles in
  let ncap = cap * 2 in
  let copy a = let b = Array.make ncap 0 in Array.blit a 0 b 0 cap; b in
  t.cycles <- copy t.cycles;
  t.seqs <- copy t.seqs;
  t.payloads <- copy t.payloads

(* (cycle, seq) lexicographic order. *)
let lt t i j =
  t.cycles.(i) < t.cycles.(j)
  || (t.cycles.(i) = t.cycles.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let c = t.cycles.(i) in t.cycles.(i) <- t.cycles.(j); t.cycles.(j) <- c;
  let s = t.seqs.(i) in t.seqs.(i) <- t.seqs.(j); t.seqs.(j) <- s;
  let p = t.payloads.(i) in t.payloads.(i) <- t.payloads.(j); t.payloads.(j) <- p

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 in
  if l < t.size then begin
    let r = l + 1 in
    let m = if r < t.size && lt t r l then r else l in
    if lt t m i then begin
      swap t i m;
      sift_down t m
    end
  end

let push t ~cycle payload =
  if t.size = Array.length t.cycles then grow t;
  let i = t.size in
  t.cycles.(i) <- cycle;
  t.seqs.(i) <- t.next_seq;
  t.payloads.(i) <- payload;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t i

let min_cycle t = if t.size = 0 then max_int else t.cycles.(0)
let min_payload t = t.payloads.(0)

(* Pop the minimum event; undefined when empty (guard with [is_empty]). *)
let pop t =
  let cycle = t.cycles.(0) and payload = t.payloads.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    swap t 0 t.size;
    sift_down t 0
  end;
  (cycle, payload)
