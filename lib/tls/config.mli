(** Simulator configuration: the machine of Table 1 plus the experiment
    mode knobs used across the paper's figures. *)

module Iid_set : Set.S with type elt = int

(** Which loads receive perfect (sequential) values — the paper's limit
    studies: [Oracle_all] is Figure 2's O bars; [Oracle_set] is Figure 6's
    frequency-threshold study and Figure 9's E bars. *)
type oracle_mode =
  | Oracle_none
  | Oracle_all
  | Oracle_set of Iid_set.t

(** Timing of compiler-forwarded values (Figure 9):
    [Forward_normal] — signal/wait over the interconnect;
    [Forward_perfect] (E) — consumers never stall and receive the correct
    value; [Forward_at_commit] (L) — synchronized loads stall until the
    previous epoch commits. *)
type forward_timing = Forward_normal | Forward_perfect | Forward_at_commit

(** Simulator-level fault injections (the chaos harness, DESIGN §11).
    Counting is per-simulation and deterministic: "the [n]th memory
    signal" means the [n]th dynamic [Signal_mem]/[Signal_mem_if_unsent]
    whose payload is actually sent, 0-based.

    - [Corrupt_addr n]: the [n]th memory signal forwards a garbage
      address.  Absorbable — consumers fail the address check, fall back
      to speculative loads, and violation detection covers them.
    - [Corrupt_value n]: the value of the [n]th memory signal is detected
      as corrupt before the address check and the payload degrades to a
      NULL signal (unblocks the consumer, forwards nothing).  Absorbable.
    - [Delay_signal { nth; extra }]: delivery of the [nth] memory signal
      is delayed by [extra] additional cycles.  Absorbable (finite delay).
    - [Spurious_violation n]: the epoch committing [n]th (0-based) is
      squashed once just before it would commit.  Absorbable — re-running
      an epoch must be idempotent.
    - [Drop_wakeup n]: the [n]th blocking wait on a memory channel never
      gets woken even though the signal arrives.  Detectable — the
      watchdog must raise {e Stuck}. *)
type sim_fault =
  | Corrupt_addr of int
  | Corrupt_value of int
  | Delay_signal of { nth : int; extra : int }
  | Spurious_violation of int
  | Drop_wakeup of int

(** What happens when an epoch's speculative state exceeds
    [spec_lines_per_epoch] (DESIGN §12):
    - [Overflow_stall]: the epoch stalls until it is the oldest (and thus
      free to touch memory non-speculatively), mirroring designs that park
      an overflowing context — e.g. Prophet's buffer-full stall.
    - [Overflow_squash]: the epoch is squashed and restarted with
      [hold_until_oldest] set, discarding the oversized footprint.
    Both are absorbable: sequential equivalence is preserved. *)
type overflow_policy = Overflow_stall | Overflow_squash

(** Which simulator core executes the run.  Both engines are required to
    produce byte-identical observables ({!Simstats.fingerprint}, typed
    errors, per-channel counters, resource peaks); [Engine_ref] is the
    cycle-stepped oracle, [Engine_event] the event-queue core that skips
    to the next interesting cycle (DESIGN §15). *)
type engine = Engine_ref | Engine_event

type t = {
  (* Machine (Table 1). *)
  num_procs : int;
  issue_width : int;
  lat_mul : int;
  lat_div : int;
  line_words : int;
  l1_sets : int;
  l1_ways : int;
  l1_hit : int;
  l2_sets : int;
  l2_ways : int;
  l2_hit : int;               (* minimum miss latency to secondary cache *)
  mem_lat : int;              (* minimum miss latency to local memory *)
  (* TLS mechanism costs. *)
  spawn_overhead : int;       (* cycles before a spawned epoch may run *)
  commit_overhead : int;      (* serialized commit cost *)
  forward_latency : int;      (* signal -> wait communication delay *)
  violation_penalty : int;    (* squash/restart cost *)
  epoch_max_instrs : int;     (* runaway-speculation cap *)
  max_restarts_before_hold : int;  (* after this many squashes, wait to be
                                      the oldest epoch before re-running *)
  (* Experiment modes. *)
  stall_compiler_sync : bool; (* honor Wait_mem/Sync_load/Signal_mem *)
  hw_sync_stall : bool;       (* [25]: stall table-marked loads *)
  hw_value_predict : bool;    (* [25]: predict table-marked loads *)
  (* The paper's §4.2 hybrid enhancements ("future work", implemented): *)
  hw_skip_compiler_synced : bool;
      (* coordinated hybrid: the hardware never stalls loads the compiler
         already synchronizes, trusting the forwarded value *)
  filter_useless_sync : bool;
      (* the hardware filters out compiler-inserted synchronization that
         rarely forwards a matching value: after [filter_window] waits on
         a channel with a match rate below 1/4, consumers stop stalling *)
  filter_window : int;
  hw_table_size : int;
  hw_reset_interval : int;    (* cycles between violating-loads resets *)
  vpred_confidence : int;     (* confidence needed to use a prediction *)
  vpred_stride : bool;        (* stride predictor instead of last-value *)
  word_level_tracking : bool;
      (* track speculative reads/writes at word rather than cache-line
         granularity, as the per-word access bits of Cintra & Torrellas [8]
         allow: false sharing then never violates (ablation knob) *)
  oracle : oracle_mode;
  forward_timing : forward_timing;
  (* Robustness harness. *)
  sim_faults : sim_fault list;     (* injected faults (normally []) *)
  watchdog_window : int;           (* cycles without graduation or commit
                                      before the simulator raises Stuck *)
  protocol_checks : bool;
      (* dynamic sync-protocol checks, e.g. a Sync_load consuming a
         channel no Wait_mem ever waited on raises Stuck rather than
         silently degrading to a speculative load *)
  max_cycles : int;
      (* cycle budget of a single {!Sim.run} / {!Sim.run_sequential};
         exceeding it raises {e Cycle_limit}.  The chaos and bench
         harnesses tighten it uniformly through this knob. *)
  (* Finite-hardware resource model (DESIGN §12).  The defaults are
     [max_int], i.e. today's effectively-unbounded structures; finite
     values enable graceful degradation, never divergence. *)
  sig_buffer_entries : int;
      (* producer-side signal address buffer capacity (distinct channels
         with a pending non-NULL forwarded address).  On overflow the
         signal degrades to NULL: the consumer unblocks without a value
         and falls back to a violation-protected speculative load
         (absorbable, like [Corrupt_value]). *)
  spec_lines_per_epoch : int;
      (* cache lines of speculative state (exposed reads + writes) a
         non-oldest epoch may track before [overflow_policy] applies.
         The oldest epoch is exempt — it is homefree and can always
         drain, which guarantees forward progress. *)
  fwd_queue_depth : int;
      (* forwarding-queue entries between an epoch and its successor:
         signals posted but not yet consumed.  A full queue applies
         backpressure (the producer stalls before issuing the signal); a
         backpressure cycle raises the typed {e Resource_deadlock} rather
         than hanging, with the watchdog as backstop. *)
  overflow_policy : overflow_policy;
  engine : engine;
  icode : bool;
      (* dispatch the event engine over the flat pre-resolved {!Icode}
         encoding (DESIGN §17) instead of the boxed [Ir.Instr] variants.
         Observables are byte-identical either way; [--icode off] is the
         escape hatch and the differential-test axis.  [Engine_ref]
         ignores it — the oracle always interprets the IR directly. *)
}

(** The machine of Table 1 with compiler synchronization honored and all
    hardware mechanisms off (the paper's C configuration; clear
    [stall_compiler_sync] for U). *)
val default : t

(** Named configurations matching the paper's bar labels. *)
val u_mode : t   (* no memory sync stalls *)
val c_mode : t   (* compiler-inserted sync *)
val h_mode : t   (* hardware-inserted sync *)
val p_mode : t   (* hardware value prediction *)
val b_mode : t   (* hybrid: compiler + hardware *)

(** The enhanced hybrid of the paper's §4.2 suggestions (iii)/(iv):
    hardware skips compiler-synchronized loads and filters rarely-useful
    compiler synchronization. *)
val bplus_mode : t

(** Render the Table 1 parameter block. *)
val describe : t -> string
