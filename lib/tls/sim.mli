(** The TLS chip-multiprocessor simulator.

    Trace-driven and cycle-stepped: each simulated processor graduates up
    to [issue_width] instructions per cycle from the epoch it is running,
    with latencies from {!Memsys} and stalls from synchronization.
    Sequential program phases run on processor 0 with the same pipeline
    model; reaching a parallelized loop header switches to TLS mode.

    Speculation model (DESIGN.md §4):
    - epochs buffer stores; speculative loads read committed memory
      overlaid with the epoch's own writes;
    - violations are detected at store time (line in a younger epoch's
      speculative-load set) and at commit time (write set vs younger load
      sets); a violated epoch and all younger epochs squash and restart;
    - compiler-forwarded values travel point-to-point over channels with
      {!Config.t.forward_latency}; the signal address buffer violates the
      consumer when the producer stores to an already-signaled address;
    - epochs commit in order; a committed epoch whose exit leaves the loop
      ends the region instance and discards all younger epochs. *)

exception Deadlock of string

(** Snapshot of one in-flight epoch at the moment the simulator got stuck. *)
type epoch_diag = {
  ed_index : int;
  ed_status : string;             (* "running" / "done" / ... *)
  ed_blocked : bool;
  ed_wake_at : int;               (* max_int = polling with no known wake *)
  ed_last_block : Ir.Instr.channel option;
  ed_sent : Ir.Instr.channel list;
  ed_consumed : Ir.Instr.channel list;
}

type stuck_reason =
  | No_progress of { window : int }
      (** The watchdog: no instruction graduated and no epoch committed
          for [window] consecutive cycles. *)
  | Missing_wait of { channel : Ir.Instr.channel; iid : Ir.Instr.iid }
      (** A [Sync_load] consumed a channel nothing was ever received on,
          i.e. no dominating [Wait_mem] ran — the dynamic counterpart of
          synclint's dominance check.  Only raised under [Forward_normal]
          with filtering off and {!Config.t.protocol_checks} set. *)

(** Why and where a TLS region wedged: the typed diagnostic carried by
    {!Stuck} (DESIGN §11). *)
type stuck_diag = {
  sd_reason : stuck_reason;
  sd_cycle : int;
  sd_region : int;                (* region id *)
  sd_func : string;               (* function owning the region *)
  sd_oldest : int;                (* oldest (next-to-commit) epoch index *)
  sd_epochs : epoch_diag list;    (* all in-flight epochs, oldest first *)
}

(** Raised instead of spinning to the cycle budget when a region stops
    making progress, and by the dynamic sync-protocol check. *)
exception Stuck of stuck_diag

(** Raised by {!run} / {!run_sequential} when the cycle budget
    ([?max_cycles], defaulting to {!Config.t.max_cycles}) is exhausted —
    a genuinely non-terminating program, since protocol failures surface
    as {!Stuck} or {!Deadlock} long before. *)
exception Cycle_limit of { max_cycles : int; cycle : int; where : string }

(** A backpressure cycle under a finite {!Config.t.fwd_queue_depth}
    (DESIGN §12): a producer was stalled on a full forwarding queue when
    the progress watchdog expired, i.e. the consumer side can never drain
    the queue.  Raised in place of {!Stuck} — detection latency is
    bounded by the watchdog window, so a full queue can degrade
    throughput but never hang the simulator. *)
type resource_diag = {
  rd_cycle : int;
  rd_region : int;                (* region id *)
  rd_func : string;               (* function owning the region *)
  rd_producer : int;              (* backpressure-stalled producer epoch *)
  rd_channel : Ir.Instr.channel;  (* channel it cannot enqueue *)
  rd_depth : int;                 (* configured fwd_queue_depth *)
  rd_epochs : epoch_diag list;    (* all in-flight epochs, oldest first *)
}

exception Resource_deadlock of resource_diag

(** One-line rendering of a {!stuck_diag} for CLI error messages. *)
val describe_stuck : stuck_diag -> string

(** One-line rendering of a {!resource_diag} for CLI error messages. *)
val describe_resource_deadlock : resource_diag -> string

(** Run a whole program under TLS.
    @param oracle required when [cfg.oracle <> Oracle_none] or
    [cfg.forward_timing = Forward_perfect].
    @raise Deadlock on a synchronization protocol violation (a consumer
    waits on a channel its completed predecessor never signaled).
    @raise Stuck when a region makes no progress for
    [cfg.watchdog_window] cycles or a protocol check fails.
    @raise Cycle_limit when the cycle budget — [max_cycles] if given,
    else [cfg.max_cycles] — is exhausted.
    @raise Resource_deadlock when a finite forwarding queue backpressures
    a producer into a cycle (detected at watchdog expiry). *)
val run :
  ?max_cycles:int ->
  Config.t ->
  Runtime.Code.t ->
  input:int array ->
  ?oracle:Oracle.t ->
  unit ->
  Simstats.result

(** Sequential timed run (1 processor, same pipeline/cache model), tracking
    cycles inside the loop extents of [track] — used to time the original
    program as the normalization baseline. *)
val run_sequential :
  ?max_cycles:int ->
  Config.t ->
  Runtime.Code.t ->
  input:int array ->
  track:Ir.Region.t list ->
  Simstats.seq_result
