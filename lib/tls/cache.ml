type t = {
  sets : int;
  ways : int;
  (* tags.(set * ways + way); -1 = invalid. *)
  tags : int array;
  (* LRU stamps parallel to [tags]. *)
  stamps : int array;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~sets ~ways =
  if sets <= 0 || sets land (sets - 1) <> 0 then
    invalid_arg "Cache.create: sets must be a positive power of two";
  if ways <= 0 then invalid_arg "Cache.create: ways must be positive";
  {
    sets;
    ways;
    tags = Array.make (sets * ways) (-1);
    stamps = Array.make (sets * ways) 0;
    clock = 0;
    hits = 0;
    misses = 0;
  }

(* -1 when the line is not resident.  An int (not an option), and the
   scan is a top-level function (a local [let rec] would allocate its
   closure), because this runs once per simulated memory reference in
   both engines. *)
let rec find_way_from tags base ways line w =
  if w >= ways then -1
  else if tags.(base + w) = line then w
  else find_way_from tags base ways line (w + 1)

let find_way t set line = find_way_from t.tags (set * t.ways) t.ways line 0

let probe t line =
  let set = line land (t.sets - 1) in
  find_way t set line >= 0

let access t line =
  t.clock <- t.clock + 1;
  let set = line land (t.sets - 1) in
  let base = set * t.ways in
  let w = find_way t set line in
  if w >= 0 then begin
    t.stamps.(base + w) <- t.clock;
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (* Evict LRU (or fill an invalid way). *)
    let victim = ref 0 in
    for w = 1 to t.ways - 1 do
      if t.stamps.(base + w) < t.stamps.(base + !victim) then victim := w
    done;
    t.tags.(base + !victim) <- line;
    t.stamps.(base + !victim) <- t.clock;
    false
  end

let hits t = t.hits
let misses t = t.misses
