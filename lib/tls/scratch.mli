(** Preallocated int->int scratch maps with O(1) generation-based
    {!clear}, for the event engine's per-attempt speculative state
    (DESIGN §15).  No deletion, no allocation on the lookup/insert fast
    path; iteration order is arbitrary and must not feed any observable
    that is order-sensitive. *)

type t

val create : ?capacity:int -> unit -> t
val cardinal : t -> int
val clear : t -> unit

(** Slot index of a key, or -1 when absent.  Read the value back with
    {!value_at}; slots are invalidated by {!set} and {!clear}. *)
val probe : t -> int -> int

val value_at : t -> int -> int
val mem : t -> int -> bool
val set : t -> int -> int -> unit
val iter : (int -> int -> unit) -> t -> unit
val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
