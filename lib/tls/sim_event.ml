(* The event-driven simulator core (DESIGN §15).

   Same observable semantics as {!Sim_ref} — the differential suite
   (test_sim_diff) enforces byte equality of fingerprints, slot
   counters, per-channel attributions, resource peaks and typed errors —
   rebuilt around:

   - a ring of mutable epoch slots (window [ts_oldest-1, ts_next_spawn))
     instead of a per-instance hash table of epochs,
   - preallocated {!Scratch} int->int maps for the per-attempt
     speculative state (write buffer, exposed-read set, footprint lines,
     oracle occurrence counters) with O(1) generation-based reset,
   - a direct instruction dispatcher replacing the Thread.step + hook
     closures (no outcome/event allocation per graduated instruction),
   - parked pollers: a blocked wait re-polls only when its wake time
     arrives or a producer-side event dirties the park, instead of
     re-executing the wait every cycle (the per-cycle charge an epoch
     would have accrued is applied eagerly, so the accounting is
     byte-identical),
   - a next-interesting-cycle skip over the live epoch window.  The
     skip decisions themselves are exactly the reference engine's:
     [fast_forward] only jumps when no epoch can act, to the same cycle
     the reference's linear scan would find (the minimum wake time over
     the window).

   The one observable-order-sensitive table, the commit-time
   [write_lines] scan, deliberately stays a stdlib [Hashtbl] fed the
   exact same operation sequence as the reference engine, so its
   iteration order (and hence violation attribution) matches. *)

include Simdiag

module Int_set = Set.Make (Int)

type payload =
  | P_scalar of int
  | P_mem of int * int          (* address (0 = NULL), value *)

type sent_entry = { se_payload : payload; se_avail : int }

type estatus = Running | Done | Committed | Discarded

(* Status tests as pattern matches: [status_running e.status] would compile
   to the polymorphic [caml_equal], a C call the per-cycle scans pay
   several times per simulated cycle. *)
let[@inline] status_running = function Running -> true | _ -> false
let[@inline] status_done = function Done -> true | _ -> false
let[@inline] status_live = function Running | Done -> true | _ -> false

type exitkind = Exit_back | Exit_out of int | Exit_return of int option

type epoch = {
  mutable ep_index : int;
  mutable ep_thread : Runtime.Thread.t;
  mutable status : estatus;
  mutable exitk : exitkind option;
  spec_writes : Scratch.t;              (* addr -> value *)
  read_lines : Scratch.t;               (* key -> first reader iid *)
  write_lines : (int, unit) Hashtbl.t;  (* order-sensitive at commit *)
  sent : (Ir.Instr.channel, sent_entry) Hashtbl.t;
  consumed : (Ir.Instr.channel, payload) Hashtbl.t;
  sig_buffer : (Ir.Instr.channel, int) Hashtbl.t;
  spec_lines : Scratch.t;               (* union of read/write keys *)
  occ : Scratch.t;                      (* oracle occurrence counters *)
  mutable pending_preds : (Ir.Instr.iid * int * int * bool) list;
  mutable stall_until : int;
  mutable blocked : bool;
  mutable wake_at : int;                (* max_int = poll every cycle *)
  mutable last_block : int;             (* blocking channel; -1 = none *)
  mutable a_busy : int;
  mutable a_sync : int;
  mutable a_other : int;
  a_sync_chan : Scratch.t;              (* summed commutatively at commit *)
  mutable attempt_instrs : int;
  mutable restarts : int;
  mutable hold_until_oldest : bool;
  mutable overflow_hold : bool;
  mutable overflow_squash_pending : bool;
  mutable bp_channel : int;             (* backpressure channel; -1 = none *)
  (* Parked poller: 1 = Forward_normal memory wait, 2 = scalar wait,
     3 = Forward_at_commit wait (non-oldest).  0 = not parked. *)
  mutable park_kind : int;
  mutable park_dirty : bool;
}

type tls_state = {
  ts_region : Ir.Region.t;
  ts_instance : int;
  ts_base : Runtime.Thread.frame;
  ts_blocks : Int_set.t;
  ts_channels : Int_set.t;
  ts_comp_loads : Int_set.t;
  ts_entry_sent : (Ir.Instr.channel, sent_entry) Hashtbl.t;
  ring : epoch option array;            (* slot = ep_index land (cap-1) *)
  cap : int;   (* smallest power of two > num_procs, so slot lookup is a
                  mask rather than a division *)
  mutable ts_oldest : int;
  mutable ts_next_spawn : int;
  mutable ts_commit_ready : int;
  mutable ts_ended : bool;
  mutable ts_winner : epoch option;
  ts_start_cycle : int;
}

type mode = Seq | Tls of tls_state

(* Per-channel sync-filter statistics, updated in place: the reference
   engine's immutable (matched, seen) pairs would allocate once per
   executed sync load here. *)
type chan_stat = { mutable cs_matched : int; mutable cs_seen : int }

type sim = {
  cfg : Config.t;
  code : Runtime.Code.t;
  memsys : Memsys.t;
  hwsync : Hwsync.t;
  vpred : Vpred.t;
  oracle : Oracle.t option;
  committed : Runtime.Memory.t;
  seq_thread : Runtime.Thread.t;
  regions_by_func : (string, Ir.Region.t list) Hashtbl.t;
  (* Header-indexed region lookup per function, memoized on the current
     frame's cfunc so the sequential goto path does not hash strings. *)
  region_arrays : (string, Ir.Region.t option array) Hashtbl.t;
  mutable cur_cfunc : Runtime.Code.cfunc option;
  mutable cur_regions : Ir.Region.t option array;
  instance_counters : (int, int) Hashtbl.t;
  mutable mode : mode;
  mutable cycle : int;
  mutable seq_cycles : int;
  mutable region_wall : int;
  mutable seq_stall_until : int;
  mutable pending_region : Ir.Region.t option;
  mutable extra_latency : int;
  mutable finished : bool;
  mutable output_rev : int list;
  slots : Simstats.slots;
  attribution : Simstats.attribution;
  mutable violations : int;
  mutable committed_epochs : int;
  mutable squashed_epochs : int;
  mutable max_sig_buffer : int;
  ever_marked : (Ir.Instr.iid, unit) Hashtbl.t;
  region_wall_by_id : (int, int) Hashtbl.t;
  chan_stats : (Ir.Instr.channel, chan_stat) Hashtbl.t;
  sync_by_channel : (Ir.Instr.channel, int) Hashtbl.t;
  violated_loads : (Ir.Instr.iid, int) Hashtbl.t;
  mutable last_progress : int;
  mutable f_mem_signals : int;
  mutable f_blocked_waits : int;
  fired : (Config.sim_fault, unit) Hashtbl.t;
  dropped_wakeups : (int * Ir.Instr.channel, unit) Hashtbl.t;
  resources : Simstats.resources;
  (* Event-engine machinery. *)
  parking_enabled : bool;
  (* Flat icode dispatch (DESIGN §17).  The side tables are hoisted out
     of the [Icode.prog] record so the hot fetch is one load each. *)
  use_icode : bool;
  ic_funcs : Icode.func array;          (* indexed by [cf_id] *)
  ic_names : string array;
  ic_ret_opts : Ir.Instr.reg option array;
  mutable rcv_v : int;                  (* receive: Ready payload value *)
  mutable rcv_avail : int;              (* receive: Not_yet wake cycle *)
  mutable sig_a : int;                  (* signal payload scratch: addr *)
  mutable sig_v : int;                  (* signal payload scratch: value *)
  mutable step_rv : int option;         (* dispatcher: Finished value *)
}

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)
(* ------------------------------------------------------------------ *)

let track_key sim addr =
  if sim.cfg.Config.word_level_tracking then addr
  else Memsys.line_of sim.memsys addr

let drain_thread_output sim (t : Runtime.Thread.t) =
  sim.output_rev <- t.Runtime.Thread.output @ sim.output_rev;
  t.Runtime.Thread.output <- []

let epoch_proc sim e = e.ep_index mod sim.cfg.Config.num_procs

(* Flat offset of block [target] in [cfunc]'s icode — the frame fix-up
   applied wherever the legacy convention "[pc <- 0] at block entry"
   appears (region entry, TLS-exit handoff). *)
let block_entry sim (cfunc : Runtime.Code.cfunc) target =
  if sim.use_icode then
    (Array.unsafe_get sim.ic_funcs
       cfunc.Runtime.Code.cf_id).Icode.block_off.(target)
  else 0

let[@inline] is_oldest st e = e.ep_index = st.ts_oldest

(* Live epoch at absolute index [k], if the ring slot still holds it.
   Inlined: the per-cycle scans call this once per window slot. *)
let[@inline] epoch_at st k =
  if k < 0 then None
  else
    match st.ring.(k land (st.cap - 1)) with
    | Some e as s when e.ep_index = k -> s
    | _ -> None

let active_epochs st =
  let rec collect k acc =
    if k >= st.ts_next_spawn then List.rev acc
    else
      match epoch_at st k with
      | Some e when status_live e.status ->
        collect (k + 1) (e :: acc)
      | _ -> collect (k + 1) acc
  in
  collect st.ts_oldest []

let epoch_diag_of e =
  let channels tbl =
    Hashtbl.fold (fun ch _ acc -> ch :: acc) tbl [] |> List.sort compare
  in
  {
    ed_index = e.ep_index;
    ed_status =
      (match e.status with
      | Running -> "running"
      | Done -> "done"
      | Committed -> "committed"
      | Discarded -> "discarded");
    ed_blocked = e.blocked;
    ed_wake_at = e.wake_at;
    ed_last_block = (if e.last_block >= 0 then Some e.last_block else None);
    ed_sent = channels e.sent;
    ed_consumed = channels e.consumed;
  }

let stuck_diag_of sim st reason =
  {
    sd_reason = reason;
    sd_cycle = sim.cycle;
    sd_region = st.ts_region.Ir.Region.id;
    sd_func = st.ts_region.Ir.Region.func;
    sd_oldest = st.ts_oldest;
    sd_epochs = List.map epoch_diag_of (active_epochs st);
  }

let mark_fired sim fault = Hashtbl.replace sim.fired fault ()

(* Park invalidation: the producer-side state feeding epoch [k]'s wait
   changed, so its next poll must run the full path. *)
let dirty_at st k =
  match epoch_at st k with Some e -> e.park_dirty <- true | None -> ()

let dirty_succ st e = dirty_at st (e.ep_index + 1)

let dirty_all st =
  for k = st.ts_oldest to st.ts_next_spawn - 1 do
    dirty_at st k
  done

let note_blocked_wait sim e ch =
  let n = sim.f_blocked_waits in
  sim.f_blocked_waits <- n + 1;
  (* Fault scan only when faults are configured: the common path stays
     allocation-free (a local [let rec] closure would be built per call
     even over an empty fault list). *)
  match sim.cfg.Config.sim_faults with
  | [] -> ()
  | faults ->
    let rec scan = function
      | [] -> ()
      | fault :: rest ->
        (match fault with
        | Config.Drop_wakeup k when k = n ->
          mark_fired sim fault;
          Hashtbl.replace sim.dropped_wakeups (e.ep_index, ch) ();
          e.wake_at <- max_int
        | _ -> ());
        scan rest
    in
    scan faults

(* Allocate or recycle the ring slot for epoch [index].  Recycling keeps
   the Scratch arrays and Hashtbls; [Hashtbl.reset] restores the initial
   capacity, so iteration order stays identical to fresh tables given
   the same subsequent operation sequence. *)
let fresh_epoch sim st index =
  let frame = Runtime.Thread.copy_frame st.ts_base in
  let thread =
    Runtime.Thread.create_from_frame sim.code frame
      ~input:sim.seq_thread.Runtime.Thread.input
  in
  let stall = sim.cycle + sim.cfg.Config.spawn_overhead in
  let e =
    match st.ring.(index land (st.cap - 1)) with
    | Some e ->
      e.ep_index <- index;
      e.ep_thread <- thread;
      e.status <- Running;
      e.exitk <- None;
      Scratch.clear e.spec_writes;
      Scratch.clear e.read_lines;
      Hashtbl.reset e.write_lines;
      Hashtbl.reset e.sent;
      Hashtbl.reset e.consumed;
      Hashtbl.reset e.sig_buffer;
      Scratch.clear e.spec_lines;
      Scratch.clear e.occ;
      e.pending_preds <- [];
      e.stall_until <- stall;
      e.blocked <- false;
      e.wake_at <- max_int;
      e.last_block <- -1;
      e.a_busy <- 0;
      e.a_sync <- 0;
      e.a_other <- 0;
      Scratch.clear e.a_sync_chan;
      e.attempt_instrs <- 0;
      e.restarts <- 0;
      e.hold_until_oldest <- false;
      e.overflow_hold <- false;
      e.overflow_squash_pending <- false;
      e.bp_channel <- -1;
      e.park_kind <- 0;
      e.park_dirty <- false;
      e
    | None ->
      {
        ep_index = index;
        ep_thread = thread;
        status = Running;
        exitk = None;
        spec_writes = Scratch.create ~capacity:64 ();
        read_lines = Scratch.create ~capacity:64 ();
        write_lines = Hashtbl.create 16;
        sent = Hashtbl.create 8;
        consumed = Hashtbl.create 8;
        sig_buffer = Hashtbl.create 4;
        spec_lines = Scratch.create ~capacity:64 ();
        occ = Scratch.create ~capacity:16 ();
        pending_preds = [];
        stall_until = stall;
        blocked = false;
        wake_at = max_int;
        last_block = -1;
        a_busy = 0;
        a_sync = 0;
        a_other = 0;
        a_sync_chan = Scratch.create ();
        attempt_instrs = 0;
        restarts = 0;
        hold_until_oldest = false;
        overflow_hold = false;
        overflow_squash_pending = false;
        bp_channel = -1;
        park_kind = 0;
        park_dirty = false;
      }
  in
  e

let add_sync_chan e ch n =
  if ch >= 0 && n > 0 then begin
    let i = Scratch.probe e.a_sync_chan ch in
    let prev = if i >= 0 then Scratch.value_at e.a_sync_chan i else 0 in
    Scratch.set e.a_sync_chan ch (n + prev)
  end

let reset_attempt sim st e =
  sim.slots.Simstats.s_fail <-
    sim.slots.Simstats.s_fail + e.a_busy + e.a_sync + e.a_other;
  e.a_busy <- 0;
  e.a_sync <- 0;
  e.a_other <- 0;
  Scratch.clear e.a_sync_chan;
  e.attempt_instrs <- 0;
  Scratch.clear e.spec_writes;
  Scratch.clear e.read_lines;
  Hashtbl.reset e.write_lines;
  Hashtbl.reset e.sent;
  Hashtbl.reset e.consumed;
  Hashtbl.reset e.sig_buffer;
  Scratch.clear e.spec_lines;
  Scratch.clear e.occ;
  e.pending_preds <- [];
  e.overflow_hold <- false;
  e.overflow_squash_pending <- false;
  e.bp_channel <- -1;
  let frame = Runtime.Thread.copy_frame st.ts_base in
  e.ep_thread <-
    Runtime.Thread.create_from_frame sim.code frame
      ~input:sim.seq_thread.Runtime.Thread.input;
  (* The successor's wait may have been watching this epoch's (now
     cleared) sent table. *)
  dirty_succ st e

let squash sim st e =
  if status_live e.status then begin
    sim.squashed_epochs <- sim.squashed_epochs + 1;
    reset_attempt sim st e;
    e.status <- Running;
    e.exitk <- None;
    e.blocked <- false;
    e.wake_at <- max_int;
    e.stall_until <- sim.cycle + sim.cfg.Config.violation_penalty;
    e.park_kind <- 0;
    e.park_dirty <- false;
    e.restarts <- e.restarts + 1;
    if e.restarts > sim.cfg.Config.max_restarts_before_hold then
      e.hold_until_oldest <- true
  end

let cascade_squash sim st victim_idx =
  for k = victim_idx to st.ts_next_spawn - 1 do
    match epoch_at st k with
    | Some e ->
      squash sim st e;
      e.stall_until <-
        e.stall_until + (sim.cfg.Config.spawn_overhead * (k - victim_idx))
    | None -> ()
  done

let violate sim st ~victim_idx ~load_iid =
  sim.violations <- sim.violations + 1;
  let comp = Int_set.mem load_iid st.ts_comp_loads in
  let hw = Hwsync.marked sim.hwsync load_iid in
  let a = sim.attribution in
  (match comp, hw with
  | true, true -> a.Simstats.v_both <- a.Simstats.v_both + 1
  | true, false -> a.Simstats.v_comp_only <- a.Simstats.v_comp_only + 1
  | false, true -> a.Simstats.v_hw_only <- a.Simstats.v_hw_only + 1
  | false, false -> a.Simstats.v_neither <- a.Simstats.v_neither + 1);
  Hwsync.record_violation sim.hwsync load_iid;
  Hashtbl.replace sim.ever_marked load_iid ();
  Hashtbl.replace sim.violated_loads load_iid
    (1 + Option.value ~default:0 (Hashtbl.find_opt sim.violated_loads load_iid));
  cascade_squash sim st victim_idx

(* ------------------------------------------------------------------ *)
(* Channel plumbing                                                    *)
(* ------------------------------------------------------------------ *)

(* Raises [Not_found] when the predecessor has not signaled; the caller
   catches it.  The exception keeps the hot poll allocation-free (a
   [find_opt] would box a [Some] per poll). *)
let sent_of_predecessor st e ch =
  if e.ep_index = 0 then Hashtbl.find st.ts_entry_sent ch
  else
    match epoch_at st (e.ep_index - 1) with
    | Some pred -> Hashtbl.find pred.sent ch
    | None -> raise Not_found

let predecessor_finished st e =
  if e.ep_index = 0 then true
  else
    match epoch_at st (e.ep_index - 1) with
    | Some pred -> (match pred.status with Committed -> true | _ -> false)
    | None -> false

(* Receive on a channel, int-coded: 0 = Ready (value in [sim.rcv_v]),
   1 = Not_yet (wake cycle in [sim.rcv_avail]), 2 = Nothing. *)
let receive sim st e ch =
  match Hashtbl.find e.consumed ch with
  | p ->
    (match p with P_scalar v | P_mem (_, v) -> sim.rcv_v <- v);
    0
  | exception Not_found -> begin
    match sent_of_predecessor st e ch with
    | { se_payload; se_avail } ->
      if se_avail <= sim.cycle then begin
        Hashtbl.replace e.consumed ch se_payload;
        (match se_payload with P_scalar v | P_mem (_, v) -> sim.rcv_v <- v);
        0
      end
      else begin
        sim.rcv_avail <- se_avail;
        1
      end
    | exception Not_found ->
      if predecessor_finished st e then
        raise
          (Deadlock
             (Printf.sprintf
                "epoch %d waits on channel %d its committed predecessor never signaled"
                e.ep_index ch))
      else 2
  end

(* ------------------------------------------------------------------ *)
(* Epoch memory semantics                                              *)
(* ------------------------------------------------------------------ *)

let oracle_covers sim iid =
  match sim.cfg.Config.oracle with
  | Config.Oracle_none -> false
  | Config.Oracle_all -> true
  | Config.Oracle_set s -> Config.Iid_set.mem iid s

let oracle_value sim st e iid =
  match sim.oracle with
  | None -> None
  | Some oracle ->
    let occurrence =
      let s = Scratch.probe e.occ iid in
      if s >= 0 then Scratch.value_at e.occ s else 0
    in
    Scratch.set e.occ iid (occurrence + 1);
    Oracle.value oracle ~region:st.ts_region.Ir.Region.id
      ~instance:st.ts_instance ~iteration:(e.ep_index + 1) ~iid ~occurrence

let note_spec_line sim st e key =
  if not (Scratch.mem e.spec_lines key) then begin
    Scratch.set e.spec_lines key 0;
    let occ = Scratch.cardinal e.spec_lines in
    let rs = sim.resources in
    if occ > rs.Simstats.rs_peak_spec_lines then
      rs.Simstats.rs_peak_spec_lines <- occ;
    if occ > sim.cfg.Config.spec_lines_per_epoch && not (is_oldest st e)
    then begin
      rs.Simstats.rs_spec_overflows <- rs.Simstats.rs_spec_overflows + 1;
      match sim.cfg.Config.overflow_policy with
      | Config.Overflow_stall ->
        if not e.overflow_hold then begin
          e.overflow_hold <- true;
          rs.Simstats.rs_spec_stalls <- rs.Simstats.rs_spec_stalls + 1
        end
      | Config.Overflow_squash ->
        if not e.overflow_squash_pending then begin
          e.overflow_squash_pending <- true;
          rs.Simstats.rs_spec_squashes <- rs.Simstats.rs_spec_squashes + 1
        end
    end
  end

(* Plain speculative load.  [Memsys.access_line] publishes the line id,
   so the tracking key reuses it instead of recomputing [line_of]. *)
let speculative_load sim st e iid addr =
  let proc = epoch_proc sim e in
  sim.extra_latency <- Memsys.access_line sim.memsys ~proc ~addr - 1;
  let s = Scratch.probe e.spec_writes addr in
  if s >= 0 then Scratch.value_at e.spec_writes s
  else begin
    let key =
      if sim.cfg.Config.word_level_tracking then addr
      else Memsys.last_line sim.memsys
    in
    if not (Scratch.mem e.read_lines key) then
      Scratch.set e.read_lines key iid;
    note_spec_line sim st e key;
    Runtime.Memory.get sim.committed addr
  end

let epoch_load sim st e iid addr =
  if oracle_covers sim iid then begin
    match oracle_value sim st e iid with
    | Some v ->
      let proc = epoch_proc sim e in
      sim.extra_latency <- Memsys.access sim.memsys ~proc ~addr - 1;
      v
    | None -> speculative_load sim st e iid addr
  end
  else if
    sim.cfg.Config.hw_value_predict
    && Hwsync.marked sim.hwsync iid
    && (not (is_oldest st e))
    && Scratch.probe e.spec_writes addr < 0
  then begin
    match
      Vpred.predict sim.vpred iid
        ~confidence:sim.cfg.Config.vpred_confidence
    with
    | Some v ->
      e.pending_preds <- (iid, addr, v, true) :: e.pending_preds;
      sim.extra_latency <- 0;
      v
    | None ->
      let v = speculative_load sim st e iid addr in
      e.pending_preds <- (iid, addr, v, false) :: e.pending_preds;
      v
  end
  else speculative_load sim st e iid addr

(* Violation scan shared by stores and commits: the first epoch at or
   after [k] that speculatively read [line] is the violate victim.
   Top-level (not a local [let rec]) so the per-store path does not
   allocate the scan closure. *)
let rec scan_line_readers sim st line k =
  if k < st.ts_next_spawn then begin
    match epoch_at st k with
    | Some e' when status_live e'.status ->
      let s = Scratch.probe e'.read_lines line in
      if s >= 0 then
        violate sim st ~victim_idx:k
          ~load_iid:(Scratch.value_at e'.read_lines s)
      else scan_line_readers sim st line (k + 1)
    | _ -> scan_line_readers sim st line (k + 1)
  end

let epoch_store sim st e addr v =
  let proc = epoch_proc sim e in
  sim.extra_latency <- Memsys.access_line sim.memsys ~proc ~addr - 1;
  Scratch.set e.spec_writes addr v;
  let line =
    if sim.cfg.Config.word_level_tracking then addr
    else Memsys.last_line sim.memsys
  in
  Hashtbl.replace e.write_lines line ();
  note_spec_line sim st e line;
  (* Store-time violation: younger epochs that speculatively read the line. *)
  scan_line_readers sim st line (e.ep_index + 1);
  (* Producer-side signal address buffer: storing to an address already
     forwarded means the wrong value was sent.  Guarded: iterating even
     an empty table walks its bucket array, and most stores see no
     outstanding signals. *)
  if Hashtbl.length e.sig_buffer > 0 then
  Hashtbl.iter
    (fun ch signaled_addr ->
      if signaled_addr = addr then begin
        Hashtbl.replace e.sent ch
          {
            se_payload = P_mem (addr, v);
            se_avail = sim.cycle + sim.cfg.Config.forward_latency;
          };
        dirty_succ st e;
        match epoch_at st (e.ep_index + 1) with
        | Some succ
          when (status_live succ.status)
               && Hashtbl.mem succ.consumed ch ->
          violate sim st ~victim_idx:succ.ep_index
            ~load_iid:
              (match Int_set.choose_opt st.ts_comp_loads with
              | Some iid -> iid
              | None -> -1)
        | _ -> ()
      end)
    e.sig_buffer

let forwardable_value e ch addr =
  let s = Scratch.probe e.spec_writes addr in
  if s >= 0 then Some (Scratch.value_at e.spec_writes s)
  else begin
    match Hashtbl.find_opt e.consumed ch with
    | Some (P_mem (a, v)) when a = addr -> Some v
    | Some _ | None -> None
  end

let fwd_queue_occupancy st e =
  match epoch_at st (e.ep_index + 1) with
  | Some succ when status_live succ.status ->
    Hashtbl.fold
      (fun ch _ n -> if Hashtbl.mem succ.consumed ch then n else n + 1)
      e.sent 0
  | _ -> 0

let note_fwd_peak sim st e =
  let occ = fwd_queue_occupancy st e in
  let rs = sim.resources in
  if occ > rs.Simstats.rs_peak_fwd_queue then rs.Simstats.rs_peak_fwd_queue <- occ

(* Resolve the payload a mem signal on [ch] would forward for [addr],
   into [sim.sig_a]/[sim.sig_v] (sig_a = 0 encodes an unresolvable or
   null signal).  Mutable scratch instead of an (addr, value) pair:
   this runs once per executed mem signal, and the tuple-chain it
   replaces was a measurable slice of the engine's allocation. *)
let resolve_signal_payload sim e ch addr =
  if addr = 0 then begin
    sim.sig_a <- 0;
    sim.sig_v <- 0
  end
  else begin
    let s = Scratch.probe e.spec_writes addr in
    if s >= 0 then begin
      sim.sig_a <- addr;
      sim.sig_v <- Scratch.value_at e.spec_writes s
    end
    else
      match Hashtbl.find e.consumed ch with
      | P_mem (a, v) when a = addr ->
        sim.sig_a <- addr;
        sim.sig_v <- v
      | _ ->
        sim.sig_a <- 0;
        sim.sig_v <- 0
      | exception Not_found ->
        sim.sig_a <- 0;
        sim.sig_v <- 0
  end

let epoch_signal_mem sim st e ch addr =
  if sim.cfg.Config.stall_compiler_sync then begin
    resolve_signal_payload sim e ch addr;
    let n = sim.f_mem_signals in
    sim.f_mem_signals <- n + 1;
    let extra_delay =
      match sim.cfg.Config.sim_faults with
      | [] -> 0
      | faults ->
        let a, v, d =
          List.fold_left
            (fun (a, v, d) fault ->
              match fault with
              | Config.Corrupt_addr k when k = n ->
                mark_fired sim fault;
                ((-987654321) - k, v, d)
              | Config.Corrupt_value k when k = n ->
                mark_fired sim fault;
                (0, 0, d)
              | Config.Delay_signal { nth; extra } when nth = n ->
                mark_fired sim fault;
                (a, v, d + extra)
              | _ -> (a, v, d))
            (sim.sig_a, sim.sig_v, 0) faults
        in
        sim.sig_a <- a;
        sim.sig_v <- v;
        d
    in
    if
      sim.sig_a <> 0
      && (not (Hashtbl.mem e.sig_buffer ch))
      && Hashtbl.length e.sig_buffer >= sim.cfg.Config.sig_buffer_entries
    then begin
      sim.resources.Simstats.rs_sig_drops <-
        sim.resources.Simstats.rs_sig_drops + 1;
      sim.sig_a <- 0;
      sim.sig_v <- 0
    end;
    let had_previous = Hashtbl.mem e.sent ch in
    Hashtbl.replace e.sent ch
      {
        se_payload = P_mem (sim.sig_a, sim.sig_v);
        se_avail = sim.cycle + sim.cfg.Config.forward_latency + extra_delay;
      };
    dirty_succ st e;
    note_fwd_peak sim st e;
    if sim.sig_a <> 0 then begin
      Hashtbl.replace e.sig_buffer ch sim.sig_a;
      sim.max_sig_buffer <-
        max sim.max_sig_buffer (Hashtbl.length e.sig_buffer)
    end;
    if had_previous then begin
      match epoch_at st (e.ep_index + 1) with
      | Some succ
        when (status_live succ.status)
             && Hashtbl.mem succ.consumed ch ->
        violate sim st ~victim_idx:succ.ep_index
          ~load_iid:
            (match Int_set.choose_opt st.ts_comp_loads with
            | Some iid -> iid
            | None -> -1)
      | _ -> ()
    end
  end

let channel_filtered sim ch =
  sim.cfg.Config.filter_useless_sync
  &&
  match Hashtbl.find sim.chan_stats ch with
  | cs ->
    cs.cs_seen >= sim.cfg.Config.filter_window
    && cs.cs_matched * 4 < cs.cs_seen
  | exception Not_found -> false

let note_channel_outcome sim ch ~matched =
  match Hashtbl.find sim.chan_stats ch with
  | cs ->
    if matched then cs.cs_matched <- cs.cs_matched + 1;
    cs.cs_seen <- cs.cs_seen + 1
  | exception Not_found ->
    Hashtbl.replace sim.chan_stats ch
      { cs_matched = (if matched then 1 else 0); cs_seen = 1 }

(* ------------------------------------------------------------------ *)
(* Epoch instruction dispatcher                                        *)
(* ------------------------------------------------------------------ *)

(* Outcome codes of one dispatch (matching Thread.outcome without the
   allocation): 0 = ran, 1 = blocked, 2 = suspended, 3 = finished
   (return value in [sim.step_rv]). *)

let operand_value (regs : int array) = function
  | Ir.Instr.Reg r -> regs.(r)
  | Ir.Instr.Imm n -> n

(* Bind call arguments to the callee's parameter registers pairwise;
   extra arguments are dropped, unbound parameters stay 0.  Top-level
   list recursion: the List.iteri/nth_opt formulation allocated a
   closure plus an option per argument on every executed call. *)
let rec bind_args regs callee_regs params args =
  match params, args with
  | preg :: ps, arg :: rest ->
    callee_regs.(preg) <- operand_value regs arg;
    bind_args regs callee_regs ps rest
  | _, _ -> ()

(* Park a blocked wait.  The eager per-cycle charge in [step_epochs]
   reproduces exactly what a failed re-poll would account. *)
let park sim e kind =
  if sim.parking_enabled then begin
    e.park_kind <- kind;
    e.park_dirty <- false
  end

(* One instruction (or terminator) of epoch [e], with the reference
   engine's hook semantics inlined.  This is the boxed-IR dispatcher
   ([--icode off]); [epoch_step_ic] below is the flat-encoding mirror. *)
let epoch_step_ir sim st e =
  let t = e.ep_thread in
  match t.Runtime.Thread.frames with
  | [] -> failwith "Thread: step on finished thread"
  | f :: frames_rest ->
    let cfunc = f.Runtime.Thread.cfunc in
    let blk = cfunc.Runtime.Code.cf_blocks.(f.Runtime.Thread.block) in
    let regs = f.Runtime.Thread.regs in
    let my_channel ch = Int_set.mem ch st.ts_channels in
    if f.Runtime.Thread.pc < Array.length blk.Runtime.Code.instrs then begin
      let i = blk.Runtime.Code.instrs.(f.Runtime.Thread.pc) in
      let finish () =
        f.Runtime.Thread.pc <- f.Runtime.Thread.pc + 1;
        t.Runtime.Thread.icount <- t.Runtime.Thread.icount + 1;
        0
      in
      match i.Ir.Instr.kind with
      | Ir.Instr.Bin (op, d, a, b) ->
        regs.(d) <-
          Ir.Instr.eval_binop op (operand_value regs a) (operand_value regs b);
        (match op with
        | Ir.Instr.Mul -> sim.extra_latency <- sim.cfg.Config.lat_mul - 1
        | Ir.Instr.Div | Ir.Instr.Rem ->
          sim.extra_latency <- sim.cfg.Config.lat_div - 1
        | _ -> ());
        finish ()
      | Ir.Instr.Mov (d, a) ->
        regs.(d) <- operand_value regs a;
        finish ()
      | Ir.Instr.Load (d, a) ->
        regs.(d) <- epoch_load sim st e i.Ir.Instr.iid (operand_value regs a);
        finish ()
      | Ir.Instr.Store (a, value) ->
        epoch_store sim st e (operand_value regs a) (operand_value regs value);
        finish ()
      | Ir.Instr.Call (dst, name, args) -> begin
        match Hashtbl.find_opt t.Runtime.Thread.code.Runtime.Code.funcs name with
        | None -> failwith ("Thread: call to unknown function " ^ name)
        | Some callee ->
          let callee_regs = Array.make callee.Runtime.Code.cf_nregs 0 in
          bind_args regs callee_regs callee.Runtime.Code.cf_params args;
          f.Runtime.Thread.pc <- f.Runtime.Thread.pc + 1;
          t.Runtime.Thread.icount <- t.Runtime.Thread.icount + 1;
          let callee_frame =
            {
              Runtime.Thread.cfunc = callee;
              regs = callee_regs;
              block = 0;
              pc = 0;
              ret_to = dst;
              call_iid = i.Ir.Instr.iid;
            }
          in
          t.Runtime.Thread.frames <- callee_frame :: t.Runtime.Thread.frames;
          0
      end
      | Ir.Instr.Print a ->
        t.Runtime.Thread.output <-
          operand_value regs a :: t.Runtime.Thread.output;
        finish ()
      | Ir.Instr.Input (d, a) ->
        let idx = operand_value regs a in
        let input = t.Runtime.Thread.input in
        regs.(d) <-
          (if idx >= 0 && idx < Array.length input then input.(idx) else 0);
        finish ()
      | Ir.Instr.Input_len d ->
        regs.(d) <- Array.length t.Runtime.Thread.input;
        finish ()
      | Ir.Instr.Wait_scalar (ch, d) ->
        if not (my_channel ch) then
          (* A nested region's synchronization, executed sequentially:
             the "forwarded" value is the current one (identity). *)
          finish ()
        else begin
          match receive sim st e ch with
          | 0 ->
            regs.(d) <- sim.rcv_v;
            finish ()
          | 1 ->
            e.blocked <- true;
            e.wake_at <- sim.rcv_avail;
            e.last_block <- ch;
            park sim e 2;
            1
          | _ ->
            e.blocked <- true;
            e.wake_at <- max_int;
            e.last_block <- ch;
            park sim e 2;
            1
        end
      | Ir.Instr.Signal_scalar (ch, a) ->
        if my_channel ch then begin
          Hashtbl.replace e.sent ch
            {
              se_payload = P_scalar (operand_value regs a);
              se_avail = sim.cycle + sim.cfg.Config.forward_latency;
            };
          dirty_succ st e;
          note_fwd_peak sim st e
        end;
        finish ()
      | Ir.Instr.Wait_mem ch ->
        if not (my_channel ch) then finish ()
        else if not sim.cfg.Config.stall_compiler_sync then finish ()
        else if
          (* Only fault injection populates [dropped_wakeups]; the guard
             keeps the common path from allocating the key pair. *)
          Hashtbl.length sim.dropped_wakeups > 0
          && Hashtbl.mem sim.dropped_wakeups (e.ep_index, ch)
        then begin
          e.blocked <- true;
          e.wake_at <- max_int;
          e.last_block <- ch;
          1
        end
        else if channel_filtered sim ch then finish ()
        else begin
          match sim.cfg.Config.forward_timing with
          | Config.Forward_perfect -> finish ()
          | Config.Forward_at_commit ->
            if is_oldest st e then finish ()
            else begin
              e.blocked <- true;
              e.wake_at <- max_int;
              e.last_block <- ch;
              park sim e 3;
              1
            end
          | Config.Forward_normal -> begin
            match receive sim st e ch with
            | 0 -> finish ()
            | 1 ->
              e.blocked <- true;
              e.wake_at <- sim.rcv_avail;
              e.last_block <- ch;
              note_blocked_wait sim e ch;
              park sim e 1;
              1
            | _ ->
              e.blocked <- true;
              e.wake_at <- max_int;
              e.last_block <- ch;
              note_blocked_wait sim e ch;
              park sim e 1;
              1
          end
        end
      | Ir.Instr.Sync_load (ch, d, a) ->
        let iid = i.Ir.Instr.iid in
        let addr = operand_value regs a in
        let value =
          if not (my_channel ch) then speculative_load sim st e iid addr
          else if not sim.cfg.Config.stall_compiler_sync then
            speculative_load sim st e iid addr
          else begin
            match sim.cfg.Config.forward_timing with
            | Config.Forward_perfect -> begin
              match oracle_value sim st e iid with
              | Some v ->
                sim.extra_latency <- 0;
                v
              | None -> speculative_load sim st e iid addr
            end
            | Config.Forward_at_commit -> speculative_load sim st e iid addr
            | Config.Forward_normal -> begin
              if channel_filtered sim ch then speculative_load sim st e iid addr
              else
                match Hashtbl.find e.consumed ch with
                | P_mem (fa, v) when fa <> 0 && fa = addr ->
                  note_channel_outcome sim ch ~matched:true;
                  let s = Scratch.probe e.spec_writes addr in
                  if s >= 0 then begin
                    sim.extra_latency <- 0;
                    Scratch.value_at e.spec_writes s
                  end
                  else begin
                    sim.extra_latency <- 0;
                    v
                  end
                | _ ->
                  note_channel_outcome sim ch ~matched:false;
                  speculative_load sim st e iid addr
                | exception Not_found ->
                  if
                    sim.cfg.Config.protocol_checks
                    && not sim.cfg.Config.filter_useless_sync
                  then
                    raise
                      (Stuck
                         (stuck_diag_of sim st
                            (Missing_wait { channel = ch; iid })))
                  else begin
                    note_channel_outcome sim ch ~matched:false;
                    speculative_load sim st e iid addr
                  end
            end
          end
        in
        regs.(d) <- value;
        finish ()
      | Ir.Instr.Signal_mem (ch, a) ->
        if my_channel ch then
          epoch_signal_mem sim st e ch (operand_value regs a);
        finish ()
      | Ir.Instr.Signal_mem_if_unsent (ch, a) ->
        if
          my_channel ch
          && sim.cfg.Config.stall_compiler_sync
          && not (Hashtbl.mem e.sent ch)
        then epoch_signal_mem sim st e ch (operand_value regs a);
        finish ()
      | Ir.Instr.Signal_null ch ->
        if my_channel ch && sim.cfg.Config.stall_compiler_sync then begin
          Hashtbl.replace e.sent ch
            {
              se_payload = P_mem (0, 0);
              se_avail = sim.cycle + sim.cfg.Config.forward_latency;
            };
          dirty_succ st e;
          note_fwd_peak sim st e
        end;
        finish ()
      | Ir.Instr.Signal_null_if_unsent ch ->
        if
          my_channel ch
          && sim.cfg.Config.stall_compiler_sync
          && not (Hashtbl.mem e.sent ch)
        then begin
          Hashtbl.replace e.sent ch
            {
              se_payload = P_mem (0, 0);
              se_avail = sim.cycle + sim.cfg.Config.forward_latency;
            };
          dirty_succ st e;
          note_fwd_peak sim st e
        end;
        finish ()
    end
    else begin
      (* Terminator. *)
      let goto target =
        let proceed =
          (match frames_rest with _ :: _ -> true | [] -> false)
          ||
          if target = st.ts_region.Ir.Region.header then begin
            e.exitk <- Some Exit_back;
            false
          end
          else if not (Int_set.mem target st.ts_blocks) then begin
            e.exitk <- Some (Exit_out target);
            false
          end
          else true
        in
        if proceed then begin
          f.Runtime.Thread.block <- target;
          f.Runtime.Thread.pc <- 0;
          t.Runtime.Thread.icount <- t.Runtime.Thread.icount + 1;
          0
        end
        else 2
      in
      match blk.Runtime.Code.term with
      | Ir.Instr.Jmp l -> goto l
      | Ir.Instr.Br (c, a, b) ->
        goto (if operand_value regs c <> 0 then a else b)
      | Ir.Instr.Ret value ->
        (* The return value stays unboxed on the common nested-call
           path; only the final thread exit builds the option. *)
        t.Runtime.Thread.icount <- t.Runtime.Thread.icount + 1;
        (match t.Runtime.Thread.frames with
        | [ _ ] ->
          t.Runtime.Thread.frames <- [];
          sim.step_rv <-
            (match value with
            | Some v -> Some (operand_value regs v)
            | None -> None);
          3
        | _ :: (caller :: _ as rest) ->
          (match f.Runtime.Thread.ret_to with
          | Some dst ->
            caller.Runtime.Thread.regs.(dst) <-
              (match value with Some v -> operand_value regs v | None -> 0)
          | None -> ());
          t.Runtime.Thread.frames <- rest;
          0
        | [] -> failwith "Thread: step on finished thread")
    end

(* Pairwise argument binding over the inline (mode, value) slots of a
   flat call site; same drop-extras / leave-unbound-zero semantics as
   [bind_args]. *)
let rec bind_args_ic code regs callee_regs params base n k =
  if k < n then
    match params with
    | preg :: ps ->
      let m = Array.unsafe_get code (base + (2 * k)) in
      let v = Array.unsafe_get code (base + (2 * k) + 1) in
      callee_regs.(preg) <- (if m <> 0 then v else Array.unsafe_get regs v);
      bind_args_ic code regs callee_regs ps base n (k + 1)
    | [] -> ()

let[@inline] finish_ic (t : Runtime.Thread.t) (f : Runtime.Thread.frame) pc width
    =
  f.Runtime.Thread.pc <- pc + width;
  t.Runtime.Thread.icount <- t.Runtime.Thread.icount + 1;
  0

(* [epoch_step_ir] over the flat icode encoding: under [use_icode] a
   frame's [pc] is a flat offset into the function-wide [Icode.code]
   array (blocks in label order, block 0 at offset 0, so the spawn-time
   [pc = 0] convention is unchanged) and [block] is maintained but never
   used for dispatch.  Every memory-system, scratch-table, and hashtable
   operation happens in exactly the order of the boxed dispatcher — the
   differential suite pins byte equality between the two.  The unchecked
   array reads are licensed by {!Icode.verify}, which ran at
   construction. *)
let epoch_step_ic sim st e =
  let t = e.ep_thread in
  match t.Runtime.Thread.frames with
  | [] -> failwith "Thread: step on finished thread"
  | f :: frames_rest ->
    let fn =
      Array.unsafe_get sim.ic_funcs
        f.Runtime.Thread.cfunc.Runtime.Code.cf_id
    in
    let code = fn.Icode.code in
    let regs = f.Runtime.Thread.regs in
    let pc = f.Runtime.Thread.pc in
    let w = Array.unsafe_get code pc in
    let op = w land 0xff in
    if op < 16 then begin
      (* Bin *)
      let a = Array.unsafe_get code (pc + 3) in
      let av = if w land 0x100 <> 0 then a else Array.unsafe_get regs a in
      let b = Array.unsafe_get code (pc + 4) in
      let bv = if w land 0x200 <> 0 then b else Array.unsafe_get regs b in
      Array.unsafe_set regs
        (Array.unsafe_get code (pc + 2))
        (Icode.eval_binop_i op av bv);
      if op = 2 then sim.extra_latency <- sim.cfg.Config.lat_mul - 1
      else if op = 3 || op = 4 then
        sim.extra_latency <- sim.cfg.Config.lat_div - 1;
      finish_ic t f pc 5
    end
    else
      match op with
      | 16 (* Mov *) ->
        let a = Array.unsafe_get code (pc + 3) in
        Array.unsafe_set regs
          (Array.unsafe_get code (pc + 2))
          (if w land 0x100 <> 0 then a else Array.unsafe_get regs a);
        finish_ic t f pc 4
      | 17 (* Load *) ->
        let a = Array.unsafe_get code (pc + 3) in
        let addr = if w land 0x100 <> 0 then a else Array.unsafe_get regs a in
        Array.unsafe_set regs
          (Array.unsafe_get code (pc + 2))
          (epoch_load sim st e (Array.unsafe_get code (pc + 1)) addr);
        finish_ic t f pc 4
      | 18 (* Store *) ->
        let a = Array.unsafe_get code (pc + 2) in
        let addr = if w land 0x100 <> 0 then a else Array.unsafe_get regs a in
        let v = Array.unsafe_get code (pc + 3) in
        let value = if w land 0x200 <> 0 then v else Array.unsafe_get regs v in
        epoch_store sim st e addr value;
        finish_ic t f pc 4
      | 19 (* Call *) ->
        let fidx = Array.unsafe_get code (pc + 2) in
        if fidx < 0 then
          failwith
            ("Thread: call to unknown function " ^ sim.ic_names.(-fidx - 1))
        else begin
          let callee = (Array.unsafe_get sim.ic_funcs fidx).Icode.fn_cfunc in
          let callee_regs = Array.make callee.Runtime.Code.cf_nregs 0 in
          let nargs = Array.unsafe_get code (pc + 4) in
          bind_args_ic code regs callee_regs callee.Runtime.Code.cf_params
            (pc + 5) nargs 0;
          f.Runtime.Thread.pc <- pc + 5 + (2 * nargs);
          t.Runtime.Thread.icount <- t.Runtime.Thread.icount + 1;
          let callee_frame =
            {
              Runtime.Thread.cfunc = callee;
              regs = callee_regs;
              block = 0;
              pc = 0;
              ret_to = Array.unsafe_get sim.ic_ret_opts code.(pc + 3);
              call_iid = Array.unsafe_get code (pc + 1);
            }
          in
          t.Runtime.Thread.frames <- callee_frame :: t.Runtime.Thread.frames;
          0
        end
      | 20 (* Print *) ->
        let a = Array.unsafe_get code (pc + 2) in
        t.Runtime.Thread.output <-
          (if w land 0x100 <> 0 then a else Array.unsafe_get regs a)
          :: t.Runtime.Thread.output;
        finish_ic t f pc 3
      | 21 (* Input *) ->
        let a = Array.unsafe_get code (pc + 3) in
        let idx = if w land 0x100 <> 0 then a else Array.unsafe_get regs a in
        let input = t.Runtime.Thread.input in
        Array.unsafe_set regs
          (Array.unsafe_get code (pc + 2))
          (if idx >= 0 && idx < Array.length input then input.(idx) else 0);
        finish_ic t f pc 4
      | 22 (* Input_len *) ->
        Array.unsafe_set regs
          (Array.unsafe_get code (pc + 2))
          (Array.length t.Runtime.Thread.input);
        finish_ic t f pc 3
      | 23 (* Wait_scalar *) ->
        let ch = Array.unsafe_get code (pc + 2) in
        if not (Int_set.mem ch st.ts_channels) then
          (* A nested region's synchronization, executed sequentially:
             the "forwarded" value is the current one (identity). *)
          finish_ic t f pc 4
        else begin
          match receive sim st e ch with
          | 0 ->
            Array.unsafe_set regs (Array.unsafe_get code (pc + 3)) sim.rcv_v;
            finish_ic t f pc 4
          | 1 ->
            e.blocked <- true;
            e.wake_at <- sim.rcv_avail;
            e.last_block <- ch;
            park sim e 2;
            1
          | _ ->
            e.blocked <- true;
            e.wake_at <- max_int;
            e.last_block <- ch;
            park sim e 2;
            1
        end
      | 24 (* Signal_scalar *) ->
        let ch = Array.unsafe_get code (pc + 2) in
        if Int_set.mem ch st.ts_channels then begin
          let a = Array.unsafe_get code (pc + 3) in
          Hashtbl.replace e.sent ch
            {
              se_payload =
                P_scalar
                  (if w land 0x100 <> 0 then a else Array.unsafe_get regs a);
              se_avail = sim.cycle + sim.cfg.Config.forward_latency;
            };
          dirty_succ st e;
          note_fwd_peak sim st e
        end;
        finish_ic t f pc 4
      | 25 (* Wait_mem *) ->
        let ch = Array.unsafe_get code (pc + 2) in
        if not (Int_set.mem ch st.ts_channels) then finish_ic t f pc 3
        else if not sim.cfg.Config.stall_compiler_sync then finish_ic t f pc 3
        else if
          Hashtbl.length sim.dropped_wakeups > 0
          && Hashtbl.mem sim.dropped_wakeups (e.ep_index, ch)
        then begin
          e.blocked <- true;
          e.wake_at <- max_int;
          e.last_block <- ch;
          1
        end
        else if channel_filtered sim ch then finish_ic t f pc 3
        else begin
          match sim.cfg.Config.forward_timing with
          | Config.Forward_perfect -> finish_ic t f pc 3
          | Config.Forward_at_commit ->
            if is_oldest st e then finish_ic t f pc 3
            else begin
              e.blocked <- true;
              e.wake_at <- max_int;
              e.last_block <- ch;
              park sim e 3;
              1
            end
          | Config.Forward_normal -> begin
            match receive sim st e ch with
            | 0 -> finish_ic t f pc 3
            | 1 ->
              e.blocked <- true;
              e.wake_at <- sim.rcv_avail;
              e.last_block <- ch;
              note_blocked_wait sim e ch;
              park sim e 1;
              1
            | _ ->
              e.blocked <- true;
              e.wake_at <- max_int;
              e.last_block <- ch;
              note_blocked_wait sim e ch;
              park sim e 1;
              1
          end
        end
      | 26 (* Sync_load *) ->
        let ch = Array.unsafe_get code (pc + 2) in
        let iid = Array.unsafe_get code (pc + 1) in
        let a = Array.unsafe_get code (pc + 4) in
        let addr = if w land 0x100 <> 0 then a else Array.unsafe_get regs a in
        let value =
          if not (Int_set.mem ch st.ts_channels) then
            speculative_load sim st e iid addr
          else if not sim.cfg.Config.stall_compiler_sync then
            speculative_load sim st e iid addr
          else begin
            match sim.cfg.Config.forward_timing with
            | Config.Forward_perfect -> begin
              match oracle_value sim st e iid with
              | Some v ->
                sim.extra_latency <- 0;
                v
              | None -> speculative_load sim st e iid addr
            end
            | Config.Forward_at_commit -> speculative_load sim st e iid addr
            | Config.Forward_normal -> begin
              if channel_filtered sim ch then speculative_load sim st e iid addr
              else
                match Hashtbl.find e.consumed ch with
                | P_mem (fa, v) when fa <> 0 && fa = addr ->
                  note_channel_outcome sim ch ~matched:true;
                  let s = Scratch.probe e.spec_writes addr in
                  if s >= 0 then begin
                    sim.extra_latency <- 0;
                    Scratch.value_at e.spec_writes s
                  end
                  else begin
                    sim.extra_latency <- 0;
                    v
                  end
                | _ ->
                  note_channel_outcome sim ch ~matched:false;
                  speculative_load sim st e iid addr
                | exception Not_found ->
                  if
                    sim.cfg.Config.protocol_checks
                    && not sim.cfg.Config.filter_useless_sync
                  then
                    raise
                      (Stuck
                         (stuck_diag_of sim st
                            (Missing_wait { channel = ch; iid })))
                  else begin
                    note_channel_outcome sim ch ~matched:false;
                    speculative_load sim st e iid addr
                  end
            end
          end
        in
        Array.unsafe_set regs (Array.unsafe_get code (pc + 3)) value;
        finish_ic t f pc 5
      | 27 (* Signal_mem *) ->
        let ch = Array.unsafe_get code (pc + 2) in
        if Int_set.mem ch st.ts_channels then begin
          let a = Array.unsafe_get code (pc + 3) in
          epoch_signal_mem sim st e ch
            (if w land 0x100 <> 0 then a else Array.unsafe_get regs a)
        end;
        finish_ic t f pc 4
      | 28 (* Signal_mem_if_unsent *) ->
        let ch = Array.unsafe_get code (pc + 2) in
        if
          Int_set.mem ch st.ts_channels
          && sim.cfg.Config.stall_compiler_sync
          && not (Hashtbl.mem e.sent ch)
        then begin
          let a = Array.unsafe_get code (pc + 3) in
          epoch_signal_mem sim st e ch
            (if w land 0x100 <> 0 then a else Array.unsafe_get regs a)
        end;
        finish_ic t f pc 4
      | 29 (* Signal_null *) ->
        let ch = Array.unsafe_get code (pc + 2) in
        if Int_set.mem ch st.ts_channels && sim.cfg.Config.stall_compiler_sync
        then begin
          Hashtbl.replace e.sent ch
            {
              se_payload = P_mem (0, 0);
              se_avail = sim.cycle + sim.cfg.Config.forward_latency;
            };
          dirty_succ st e;
          note_fwd_peak sim st e
        end;
        finish_ic t f pc 3
      | 30 (* Signal_null_if_unsent *) ->
        let ch = Array.unsafe_get code (pc + 2) in
        if
          Int_set.mem ch st.ts_channels
          && sim.cfg.Config.stall_compiler_sync
          && not (Hashtbl.mem e.sent ch)
        then begin
          Hashtbl.replace e.sent ch
            {
              se_payload = P_mem (0, 0);
              se_avail = sim.cycle + sim.cfg.Config.forward_latency;
            };
          dirty_succ st e;
          note_fwd_peak sim st e
        end;
        finish_ic t f pc 3
      | _ ->
        (* Terminator. *)
        let goto target off =
          let proceed =
            (match frames_rest with _ :: _ -> true | [] -> false)
            ||
            if target = st.ts_region.Ir.Region.header then begin
              e.exitk <- Some Exit_back;
              false
            end
            else if not (Int_set.mem target st.ts_blocks) then begin
              e.exitk <- Some (Exit_out target);
              false
            end
            else true
          in
          if proceed then begin
            f.Runtime.Thread.block <- target;
            f.Runtime.Thread.pc <- off;
            t.Runtime.Thread.icount <- t.Runtime.Thread.icount + 1;
            0
          end
          else 2
        in
        if op = 31 (* Jmp *) then
          goto (Array.unsafe_get code (pc + 1)) (Array.unsafe_get code (pc + 2))
        else if op = 32 (* Br *) then begin
          let c = Array.unsafe_get code (pc + 1) in
          let cv = if w land 0x100 <> 0 then c else Array.unsafe_get regs c in
          if cv <> 0 then
            goto
              (Array.unsafe_get code (pc + 2))
              (Array.unsafe_get code (pc + 4))
          else
            goto
              (Array.unsafe_get code (pc + 3))
              (Array.unsafe_get code (pc + 5))
        end
        else begin
          (* Ret: bit 8 = has value, bit 9 = value is an immediate. *)
          t.Runtime.Thread.icount <- t.Runtime.Thread.icount + 1;
          match t.Runtime.Thread.frames with
          | [ _ ] ->
            t.Runtime.Thread.frames <- [];
            sim.step_rv <-
              (if w land 0x100 = 0 then None
               else
                 Some
                   (let v = Array.unsafe_get code (pc + 1) in
                    if w land 0x200 <> 0 then v else Array.unsafe_get regs v));
            3
          | _ :: (caller :: _ as rest) ->
            (match f.Runtime.Thread.ret_to with
            | Some dst ->
              caller.Runtime.Thread.regs.(dst) <-
                (if w land 0x100 = 0 then 0
                 else
                   let v = Array.unsafe_get code (pc + 1) in
                   if w land 0x200 <> 0 then v else Array.unsafe_get regs v)
            | None -> ());
            t.Runtime.Thread.frames <- rest;
            0
          | [] -> failwith "Thread: step on finished thread"
        end

let epoch_step sim st e =
  if sim.use_icode then epoch_step_ic sim st e else epoch_step_ir sim st e

(* ------------------------------------------------------------------ *)
(* Graduation                                                          *)
(* ------------------------------------------------------------------ *)

(* The next instruction of [e], inlined (no option allocation):
   sets [nx] fields below.  Returns the instr or raises nothing —
   callers use dedicated predicates instead. *)

(* One decode of [e]'s next instruction, classifying what graduation
   must check before issuing it: -2 = hardware sync stall, ch >= 0 = a
   fresh signal that needs a forwarding-queue slot on [ch], -1 =
   neither.  The two cases are disjoint by instruction kind (loads
   vs. signals), so a single peek replaces the two separate decodes
   graduation used to run per issued instruction. *)
let peek_next_ir sim st e =
  let hw =
    sim.cfg.Config.hw_sync_stall
    && (not (is_oldest st e))
    && not (Hwsync.is_empty sim.hwsync)
  in
  let fq = sim.cfg.Config.fwd_queue_depth <> max_int in
  if (not hw) && not fq then -1
  else
    match e.ep_thread.Runtime.Thread.frames with
    | [] -> -1
    | f :: _ ->
      let blk =
        f.Runtime.Thread.cfunc.Runtime.Code.cf_blocks.(f.Runtime.Thread.block)
      in
      if f.Runtime.Thread.pc >= Array.length blk.Runtime.Code.instrs then -1
      else begin
        let i = blk.Runtime.Code.instrs.(f.Runtime.Thread.pc) in
        let mem_sync = sim.cfg.Config.stall_compiler_sync in
        let candidate =
          match i.Ir.Instr.kind with
          | Ir.Instr.Load _ | Ir.Instr.Sync_load _ ->
            if
              hw
              && Hwsync.marked sim.hwsync i.Ir.Instr.iid
              && not
                   (sim.cfg.Config.hw_skip_compiler_synced
                   && Int_set.mem i.Ir.Instr.iid st.ts_comp_loads)
            then -2
            else -1
          | Ir.Instr.Signal_scalar (ch, _) when fq -> ch
          | Ir.Instr.Signal_mem (ch, _) when fq && mem_sync -> ch
          | Ir.Instr.Signal_mem_if_unsent (ch, _) when fq && mem_sync -> ch
          | Ir.Instr.Signal_null ch when fq && mem_sync -> ch
          | Ir.Instr.Signal_null_if_unsent ch when fq && mem_sync -> ch
          | _ -> -1
        in
        if candidate >= 0 then
          if
            Int_set.mem candidate st.ts_channels
            && not (Hashtbl.mem e.sent candidate)
          then candidate
          else -1
        else candidate
      end

(* [peek_next_ir] over the flat encoding: one opcode fetch classifies
   the upcoming instruction; terminators (op >= 31) never stall. *)
let peek_next_ic sim st e =
  let hw =
    sim.cfg.Config.hw_sync_stall
    && (not (is_oldest st e))
    && not (Hwsync.is_empty sim.hwsync)
  in
  let fq = sim.cfg.Config.fwd_queue_depth <> max_int in
  if (not hw) && not fq then -1
  else
    match e.ep_thread.Runtime.Thread.frames with
    | [] -> -1
    | f :: _ ->
      let fn =
        Array.unsafe_get sim.ic_funcs
          f.Runtime.Thread.cfunc.Runtime.Code.cf_id
      in
      let code = fn.Icode.code in
      let pc = f.Runtime.Thread.pc in
      let op = Array.unsafe_get code pc land 0xff in
      let mem_sync = sim.cfg.Config.stall_compiler_sync in
      let candidate =
        if op = 17 || op = 26 (* Load / Sync_load *) then
          if
            hw
            && Hwsync.marked sim.hwsync (Array.unsafe_get code (pc + 1))
            && not
                 (sim.cfg.Config.hw_skip_compiler_synced
                 && Int_set.mem
                      (Array.unsafe_get code (pc + 1))
                      st.ts_comp_loads)
          then -2
          else -1
        else if op = 24 (* Signal_scalar *) then
          if fq then Array.unsafe_get code (pc + 2) else -1
        else if
          (* Signal_mem / _if_unsent / Signal_null / _if_unsent *)
          op >= 27 && op <= 30
        then if fq && mem_sync then Array.unsafe_get code (pc + 2) else -1
        else -1
      in
      if candidate >= 0 then
        if
          Int_set.mem candidate st.ts_channels
          && not (Hashtbl.mem e.sent candidate)
        then candidate
        else -1
      else candidate

let peek_next sim st e =
  if sim.use_icode then peek_next_ic sim st e else peek_next_ir sim st e

(* Issue-slot loop as top-level recursion over the remaining slot
   count: this runs per epoch per cycle, so it must not allocate (a
   ref-cell loop or a local [let rec] closure would cost words per
   call). *)
let rec graduate_slots sim st e slots =
  if slots > 0 then begin
      if not (status_running e.status) then ()
      else if e.stall_until > sim.cycle then
        e.a_other <- e.a_other + slots
      else if e.hold_until_oldest && not (is_oldest st e) then begin
        e.blocked <- true;
        e.wake_at <- max_int;
        e.last_block <- -1;
        e.a_other <- e.a_other + slots
      end
      else if e.overflow_hold && not (is_oldest st e) then begin
        e.blocked <- true;
        e.wake_at <- max_int;
        e.last_block <- -1;
        e.a_other <- e.a_other + slots
      end
      else begin
        let nsc = peek_next sim st e in
        if nsc = -2 then begin
          (* Hardware sync stall on the upcoming marked load. *)
          e.blocked <- true;
          e.wake_at <- max_int;
          e.last_block <- -1;
          e.a_sync <- e.a_sync + slots
        end
        else if
          nsc >= 0
          && fwd_queue_occupancy st e >= sim.cfg.Config.fwd_queue_depth
        then begin
          let rs = sim.resources in
          if e.bp_channel < 0 then
            rs.Simstats.rs_bp_signals <- rs.Simstats.rs_bp_signals + 1;
          rs.Simstats.rs_bp_slots <- rs.Simstats.rs_bp_slots + slots;
          e.bp_channel <- nsc;
          e.blocked <- true;
          e.wake_at <- max_int;
          e.last_block <- nsc;
          e.a_sync <- e.a_sync + slots;
          add_sync_chan e nsc slots
        end
        else begin
          e.bp_channel <- -1;
          sim.extra_latency <- 0;
          match epoch_step sim st e with
          | 0 ->
            sim.last_progress <- sim.cycle;
            e.a_busy <- e.a_busy + 1;
            e.attempt_instrs <- e.attempt_instrs + 1;
            let extra = sim.extra_latency in
            if extra > 0 then e.stall_until <- sim.cycle + extra;
            if status_running e.status && e.overflow_squash_pending then begin
              cascade_squash sim st e.ep_index;
              e.hold_until_oldest <- true
            end
            else if
              status_running e.status
              && e.attempt_instrs > sim.cfg.Config.epoch_max_instrs
            then begin
              if is_oldest st e then
                if List.exists (fun (_, _, _, p) -> p) e.pending_preds
                then begin
                  sim.violations <- sim.violations + 1;
                  cascade_squash sim st e.ep_index
                end
                else failwith "Sim: oldest epoch exceeded the instruction cap"
              else begin
                squash sim st e;
                e.hold_until_oldest <- true
              end
            end
            else graduate_slots sim st e (slots - 1)
          | 1 ->
            e.a_sync <- e.a_sync + slots;
            add_sync_chan e e.last_block slots
          | 2 -> e.status <- Done
          | _ ->
            e.exitk <- Some (Exit_return sim.step_rv);
            e.status <- Done
        end
      end
    end

let graduate sim st e =
  e.blocked <- false;
  e.park_kind <- 0;
  graduate_slots sim st e sim.cfg.Config.issue_width

(* ------------------------------------------------------------------ *)
(* Commit                                                              *)
(* ------------------------------------------------------------------ *)

let verify_predictions sim e =
  List.for_all
    (fun (_, addr, used, was_predicted) ->
      (not was_predicted) || Runtime.Memory.get sim.committed addr = used)
    e.pending_preds

let train_predictions sim e =
  List.iter
    (fun (iid, addr, _, _) ->
      Vpred.train sim.vpred iid
        ~actual:(Runtime.Memory.get sim.committed addr))
    e.pending_preds

let accumulate_attempt sim e =
  sim.slots.Simstats.s_busy <- sim.slots.Simstats.s_busy + e.a_busy;
  sim.slots.Simstats.s_sync <- sim.slots.Simstats.s_sync + e.a_sync;
  sim.slots.Simstats.s_other_stall <-
    sim.slots.Simstats.s_other_stall + e.a_other;
  Scratch.iter
    (fun ch n ->
      Hashtbl.replace sim.sync_by_channel ch
        (n + Option.value ~default:0 (Hashtbl.find_opt sim.sync_by_channel ch)))
    e.a_sync_chan

let spurious_violation_fires sim =
  match
    List.find_opt
      (fun fault ->
        match fault with
        | Config.Spurious_violation k ->
          k = sim.committed_epochs && not (Hashtbl.mem sim.fired fault)
        | _ -> false)
      sim.cfg.Config.sim_faults
  with
  | Some fault ->
    mark_fired sim fault;
    true
  | None -> false

let try_commit sim st =
  if sim.cycle >= st.ts_commit_ready then begin
    match epoch_at st st.ts_oldest with
    | Some e when status_done e.status ->
      if spurious_violation_fires sim then begin
        sim.violations <- sim.violations + 1;
        cascade_squash sim st e.ep_index
      end
      else if
        sim.cfg.Config.hw_value_predict
        && not (verify_predictions sim e)
      then begin
        sim.violations <- sim.violations + 1;
        train_predictions sim e;
        cascade_squash sim st e.ep_index
      end
      else begin
        if sim.cfg.Config.hw_value_predict then train_predictions sim e;
        (* Commit-time violations: uncommitted-store-then-load staleness.
           [write_lines] iteration order determines the violate victim —
           the table's op sequence matches the reference engine's, so the
           order (and the attributed load) is identical. *)
        Hashtbl.iter
          (fun line () -> scan_line_readers sim st line (e.ep_index + 1))
          e.write_lines;
        Scratch.iter
          (fun addr v -> Runtime.Memory.store sim.committed addr v)
          e.spec_writes;
        drain_thread_output sim e.ep_thread;
        accumulate_attempt sim e;
        e.status <- Committed;
        sim.last_progress <- sim.cycle;
        sim.committed_epochs <- sim.committed_epochs + 1;
        st.ts_commit_ready <- sim.cycle + sim.cfg.Config.commit_overhead;
        (match e.exitk with
        | Some Exit_back -> st.ts_oldest <- st.ts_oldest + 1
        | Some (Exit_out _ | Exit_return _) ->
          st.ts_ended <- true;
          st.ts_winner <- Some e
        | None -> assert false);
        (* The new oldest's wait may now deadlock (committed predecessor
           that never signaled) or unhold; re-poll parked epochs. *)
        dirty_all st
      end
    | Some _ | None -> ()
  end

(* A Done epoch whose exit is speculative (not the back edge) blocks
   further spawns; top-level because this runs every TLS cycle. *)
let rec spec_exit_pending st k =
  k < st.ts_next_spawn
  &&
  match epoch_at st k with
  | Some e when
      status_done e.status
      && (match e.exitk with Some Exit_back -> false | _ -> true) ->
    true
  | _ -> spec_exit_pending st (k + 1)

let spawn_epochs sim st =
  if not (spec_exit_pending st st.ts_oldest) then
    while
      st.ts_next_spawn < st.ts_oldest + sim.cfg.Config.num_procs
      && not st.ts_ended
    do
      let idx = st.ts_next_spawn in
      let e = fresh_epoch sim st idx in
      st.ring.(idx land (st.cap - 1)) <- Some e;
      st.ts_next_spawn <- idx + 1
    done

(* ------------------------------------------------------------------ *)
(* TLS cycle                                                           *)
(* ------------------------------------------------------------------ *)

let procs_slots sim = sim.cfg.Config.num_procs * sim.cfg.Config.issue_width

(* Per-cycle slot scan over the live epoch window; top-level so the
   TLS cycle allocates nothing. *)
let rec step_epochs sim st width k =
  if k < st.ts_next_spawn && not st.ts_ended then begin
    (match epoch_at st k with
    | Some e when status_running e.status ->
      (* Parked poller fast path: the wait would re-poll to the same
         blocked outcome (wake time not reached, producer state
         unchanged), so apply the charge the failed poll would. *)
      if
        e.park_kind <> 0
        && (not e.park_dirty)
        && e.stall_until <= sim.cycle
        && sim.cycle < e.wake_at
        && (not e.hold_until_oldest)
        && (not e.overflow_hold)
        && (e.park_kind <> 3 || not (is_oldest st e))
      then begin
        e.a_sync <- e.a_sync + width;
        add_sync_chan e e.last_block width;
        if e.park_kind = 1 then
          sim.f_blocked_waits <- sim.f_blocked_waits + 1
      end
      else graduate sim st e
    | _ -> ());
    step_epochs sim st width (k + 1)
  end

(* Wake cycle of an epoch as the reference fast-forward computes it. *)
let[@inline] wake_of sim e =
  if not (status_running e.status) then max_int
  else if e.stall_until > sim.cycle then e.stall_until
  else if e.blocked then e.wake_at
  else max_int

(* Fast-forward when every epoch is stalled with a known wake time.  The
   skip target is the minimum of [wake_of] over the live window — every
   stall or wake assignment is a field of some live epoch, and the
   window is at most [num_procs + 1] slots, so the direct scan is
   cheaper than maintaining a priority queue of wake events (which this
   engine originally did: the queue paid heap traffic on every mul/div
   stall only to be revalidated against these same fields on pop). *)
(* An epoch that could issue this cycle (so no skip may happen).
   Top-level scans: these run every TLS cycle. *)
let rec ff_runnable sim st k =
  k < st.ts_next_spawn
  &&
  match epoch_at st k with
  | Some e when
      status_running e.status && e.stall_until <= sim.cycle
      && not (e.blocked && e.wake_at > sim.cycle) ->
    true
  | _ -> ff_runnable sim st (k + 1)

(* Earliest wake cycle over the live window. *)
let rec ff_min_wake sim st k acc =
  if k >= st.ts_next_spawn then acc
  else
    let acc =
      match epoch_at st k with
      | Some e ->
        let w = wake_of sim e in
        if w < acc then w else acc
      | None -> acc
    in
    ff_min_wake sim st (k + 1) acc

let fast_forward sim st =
  let can_act_now =
    ff_runnable sim st st.ts_oldest
    || (match epoch_at st st.ts_oldest with
       | Some e -> status_done e.status && sim.cycle >= st.ts_commit_ready
       | None -> false)
  in
  if can_act_now then ()
  else begin
    let next = ff_min_wake sim st st.ts_oldest max_int in
    let next =
      match epoch_at st st.ts_oldest with
      | Some e when status_done e.status -> min next st.ts_commit_ready
      | _ -> next
    in
    if next = max_int || next <= sim.cycle then ()
    else begin
      let skip = next - sim.cycle in
      let w = sim.cfg.Config.issue_width in
      for k = st.ts_oldest to st.ts_next_spawn - 1 do
        match epoch_at st k with
        | Some e when status_running e.status ->
          if e.blocked then begin
            e.a_sync <- e.a_sync + (skip * w);
            add_sync_chan e e.last_block (skip * w)
          end
          else e.a_other <- e.a_other + (skip * w)
        | _ -> ()
      done;
      sim.slots.Simstats.s_total <-
        sim.slots.Simstats.s_total + (skip * procs_slots sim);
      sim.region_wall <- sim.region_wall + skip;
      sim.cycle <- sim.cycle + skip
    end
  end

let tls_cycle sim st =
  if sim.cycle - sim.last_progress > sim.cfg.Config.watchdog_window then begin
    (match
       List.find_opt (fun e -> e.bp_channel >= 0) (active_epochs st)
     with
    | Some e ->
      raise
        (Resource_deadlock
           {
             rd_cycle = sim.cycle;
             rd_region = st.ts_region.Ir.Region.id;
             rd_func = st.ts_region.Ir.Region.func;
             rd_producer = e.ep_index;
             rd_channel = e.bp_channel;
             rd_depth = sim.cfg.Config.fwd_queue_depth;
             rd_epochs = List.map epoch_diag_of (active_epochs st);
           })
    | None -> ());
    raise
      (Stuck
         (stuck_diag_of sim st
            (No_progress { window = sim.cfg.Config.watchdog_window })))
  end;
  Hwsync.tick sim.hwsync ~now:sim.cycle;
  fast_forward sim st;
  sim.slots.Simstats.s_total <- sim.slots.Simstats.s_total + procs_slots sim;
  sim.region_wall <- sim.region_wall + 1;
  step_epochs sim st sim.cfg.Config.issue_width st.ts_oldest;
  if not st.ts_ended then try_commit sim st;
  if not st.ts_ended then spawn_epochs sim st;
  sim.cycle <- sim.cycle + 1

let finish_instance sim st =
  let winner =
    match st.ts_winner with
    | Some e -> e
    | None -> failwith "Sim.finish_instance: no winner"
  in
  Array.iter
    (fun slot ->
      match slot with
      | Some e -> begin
        match e.status with
        | Running | Done ->
          sim.squashed_epochs <- sim.squashed_epochs + 1;
          sim.slots.Simstats.s_fail <-
            sim.slots.Simstats.s_fail + e.a_busy + e.a_sync + e.a_other;
          e.status <- Discarded
        | Committed | Discarded -> ()
      end
      | None -> ())
    st.ring;
  let prev =
    match Hashtbl.find_opt sim.region_wall_by_id st.ts_region.Ir.Region.id with
    | Some c -> c
    | None -> 0
  in
  Hashtbl.replace sim.region_wall_by_id st.ts_region.Ir.Region.id
    (prev + (sim.cycle - st.ts_start_cycle));
  (match winner.exitk with
  | Some (Exit_out target) ->
    let seq_frame = Runtime.Thread.current_frame sim.seq_thread in
    let ep_frame = Runtime.Thread.current_frame winner.ep_thread in
    Array.blit ep_frame.Runtime.Thread.regs 0 seq_frame.Runtime.Thread.regs 0
      (Array.length seq_frame.Runtime.Thread.regs);
    seq_frame.Runtime.Thread.block <- target;
    seq_frame.Runtime.Thread.pc <-
      block_entry sim seq_frame.Runtime.Thread.cfunc target
  | Some (Exit_return rv) -> begin
    match sim.seq_thread.Runtime.Thread.frames with
    | f :: rest ->
      (match rest with
      | caller :: _ ->
        (match f.Runtime.Thread.ret_to, rv with
        | Some dst, Some v -> caller.Runtime.Thread.regs.(dst) <- v
        | Some dst, None -> caller.Runtime.Thread.regs.(dst) <- 0
        | None, _ -> ());
        sim.seq_thread.Runtime.Thread.frames <- rest
      | [] ->
        sim.seq_thread.Runtime.Thread.frames <- [];
        sim.finished <- true)
    | [] -> sim.finished <- true
  end
  | Some Exit_back | None -> failwith "Sim.finish_instance: bad winner exit");
  sim.mode <- Seq

(* ------------------------------------------------------------------ *)
(* Sequential engine                                                   *)
(* ------------------------------------------------------------------ *)

(* Header-indexed regions of the current frame's function, memoized on
   physical equality of the cfunc. *)
let seq_regions_of sim (f : Runtime.Thread.frame) =
  match sim.cur_cfunc with
  | Some c when c == f.Runtime.Thread.cfunc -> sim.cur_regions
  | _ ->
    let arr =
      match
        Hashtbl.find_opt sim.region_arrays
          f.Runtime.Thread.cfunc.Runtime.Code.cf_name
      with
      | Some arr -> arr
      | None -> [||]
    in
    sim.cur_cfunc <- Some f.Runtime.Thread.cfunc;
    sim.cur_regions <- arr;
    arr

(* One sequential instruction with the reference seq-hook semantics:
   loads/stores time through the memory system against committed state,
   sync instructions are transparent, and a goto onto a region header
   suspends into TLS mode. *)
let seq_step_ir sim =
  let t = sim.seq_thread in
  match t.Runtime.Thread.frames with
  | [] -> failwith "Thread: step on finished thread"
  | f :: _ ->
    let cfunc = f.Runtime.Thread.cfunc in
    let blk = cfunc.Runtime.Code.cf_blocks.(f.Runtime.Thread.block) in
    let regs = f.Runtime.Thread.regs in
    if f.Runtime.Thread.pc < Array.length blk.Runtime.Code.instrs then begin
      let i = blk.Runtime.Code.instrs.(f.Runtime.Thread.pc) in
      let finish () =
        f.Runtime.Thread.pc <- f.Runtime.Thread.pc + 1;
        t.Runtime.Thread.icount <- t.Runtime.Thread.icount + 1;
        0
      in
      match i.Ir.Instr.kind with
      | Ir.Instr.Bin (op, d, a, b) ->
        regs.(d) <-
          Ir.Instr.eval_binop op (operand_value regs a) (operand_value regs b);
        (match op with
        | Ir.Instr.Mul -> sim.extra_latency <- sim.cfg.Config.lat_mul - 1
        | Ir.Instr.Div | Ir.Instr.Rem ->
          sim.extra_latency <- sim.cfg.Config.lat_div - 1
        | _ -> ());
        finish ()
      | Ir.Instr.Mov (d, a) ->
        regs.(d) <- operand_value regs a;
        finish ()
      | Ir.Instr.Load (d, a) ->
        let addr = operand_value regs a in
        sim.extra_latency <- Memsys.access sim.memsys ~proc:0 ~addr - 1;
        regs.(d) <- Runtime.Memory.get sim.committed addr;
        finish ()
      | Ir.Instr.Store (a, value) ->
        let addr = operand_value regs a in
        sim.extra_latency <- Memsys.access sim.memsys ~proc:0 ~addr - 1;
        Runtime.Memory.store sim.committed addr (operand_value regs value);
        finish ()
      | Ir.Instr.Call (dst, name, args) -> begin
        match Hashtbl.find_opt t.Runtime.Thread.code.Runtime.Code.funcs name with
        | None -> failwith ("Thread: call to unknown function " ^ name)
        | Some callee ->
          let callee_regs = Array.make callee.Runtime.Code.cf_nregs 0 in
          bind_args regs callee_regs callee.Runtime.Code.cf_params args;
          f.Runtime.Thread.pc <- f.Runtime.Thread.pc + 1;
          t.Runtime.Thread.icount <- t.Runtime.Thread.icount + 1;
          let callee_frame =
            {
              Runtime.Thread.cfunc = callee;
              regs = callee_regs;
              block = 0;
              pc = 0;
              ret_to = dst;
              call_iid = i.Ir.Instr.iid;
            }
          in
          t.Runtime.Thread.frames <- callee_frame :: t.Runtime.Thread.frames;
          0
      end
      | Ir.Instr.Print a ->
        t.Runtime.Thread.output <-
          operand_value regs a :: t.Runtime.Thread.output;
        finish ()
      | Ir.Instr.Input (d, a) ->
        let idx = operand_value regs a in
        let input = t.Runtime.Thread.input in
        regs.(d) <-
          (if idx >= 0 && idx < Array.length input then input.(idx) else 0);
        finish ()
      | Ir.Instr.Input_len d ->
        regs.(d) <- Array.length t.Runtime.Thread.input;
        finish ()
      | Ir.Instr.Wait_scalar (_, _) ->
        (* Sequentially the identity. *)
        finish ()
      | Ir.Instr.Signal_scalar (_, _) -> finish ()
      | Ir.Instr.Wait_mem _ -> finish ()
      | Ir.Instr.Sync_load (_, d, a) ->
        regs.(d) <- Runtime.Memory.get sim.committed (operand_value regs a);
        finish ()
      | Ir.Instr.Signal_mem (_, _)
      | Ir.Instr.Signal_mem_if_unsent (_, _)
      | Ir.Instr.Signal_null _
      | Ir.Instr.Signal_null_if_unsent _ ->
        finish ()
    end
    else begin
      let goto target =
        let proceed =
          let arr = seq_regions_of sim f in
          if target < Array.length arr then begin
            match arr.(target) with
            | Some r ->
              sim.pending_region <- Some r;
              false
            | None -> true
          end
          else true
        in
        if proceed then begin
          f.Runtime.Thread.block <- target;
          f.Runtime.Thread.pc <- 0;
          t.Runtime.Thread.icount <- t.Runtime.Thread.icount + 1;
          0
        end
        else 2
      in
      match blk.Runtime.Code.term with
      | Ir.Instr.Jmp l -> goto l
      | Ir.Instr.Br (c, a, b) ->
        goto (if operand_value regs c <> 0 then a else b)
      | Ir.Instr.Ret value ->
        (* The return value stays unboxed on the common nested-call
           path; only the final thread exit builds the option. *)
        t.Runtime.Thread.icount <- t.Runtime.Thread.icount + 1;
        (match t.Runtime.Thread.frames with
        | [ _ ] ->
          t.Runtime.Thread.frames <- [];
          sim.step_rv <-
            (match value with
            | Some v -> Some (operand_value regs v)
            | None -> None);
          3
        | _ :: (caller :: _ as rest) ->
          (match f.Runtime.Thread.ret_to with
          | Some dst ->
            caller.Runtime.Thread.regs.(dst) <-
              (match value with Some v -> operand_value regs v | None -> 0)
          | None -> ());
          t.Runtime.Thread.frames <- rest;
          0
        | [] -> failwith "Thread: step on finished thread")
    end

(* [seq_step_ir] over the flat encoding; same structure as
   [epoch_step_ic] with the sequential memory/sync semantics. *)
let seq_step_ic sim =
  let t = sim.seq_thread in
  match t.Runtime.Thread.frames with
  | [] -> failwith "Thread: step on finished thread"
  | f :: _ ->
    let fn =
      Array.unsafe_get sim.ic_funcs
        f.Runtime.Thread.cfunc.Runtime.Code.cf_id
    in
    let code = fn.Icode.code in
    let regs = f.Runtime.Thread.regs in
    let pc = f.Runtime.Thread.pc in
    let w = Array.unsafe_get code pc in
    let op = w land 0xff in
    if op < 16 then begin
      let a = Array.unsafe_get code (pc + 3) in
      let av = if w land 0x100 <> 0 then a else Array.unsafe_get regs a in
      let b = Array.unsafe_get code (pc + 4) in
      let bv = if w land 0x200 <> 0 then b else Array.unsafe_get regs b in
      Array.unsafe_set regs
        (Array.unsafe_get code (pc + 2))
        (Icode.eval_binop_i op av bv);
      if op = 2 then sim.extra_latency <- sim.cfg.Config.lat_mul - 1
      else if op = 3 || op = 4 then
        sim.extra_latency <- sim.cfg.Config.lat_div - 1;
      finish_ic t f pc 5
    end
    else
      match op with
      | 16 (* Mov *) ->
        let a = Array.unsafe_get code (pc + 3) in
        Array.unsafe_set regs
          (Array.unsafe_get code (pc + 2))
          (if w land 0x100 <> 0 then a else Array.unsafe_get regs a);
        finish_ic t f pc 4
      | 17 (* Load *) ->
        let a = Array.unsafe_get code (pc + 3) in
        let addr = if w land 0x100 <> 0 then a else Array.unsafe_get regs a in
        sim.extra_latency <- Memsys.access sim.memsys ~proc:0 ~addr - 1;
        Array.unsafe_set regs
          (Array.unsafe_get code (pc + 2))
          (Runtime.Memory.get sim.committed addr);
        finish_ic t f pc 4
      | 18 (* Store *) ->
        let a = Array.unsafe_get code (pc + 2) in
        let addr = if w land 0x100 <> 0 then a else Array.unsafe_get regs a in
        sim.extra_latency <- Memsys.access sim.memsys ~proc:0 ~addr - 1;
        let v = Array.unsafe_get code (pc + 3) in
        Runtime.Memory.store sim.committed addr
          (if w land 0x200 <> 0 then v else Array.unsafe_get regs v);
        finish_ic t f pc 4
      | 19 (* Call *) ->
        let fidx = Array.unsafe_get code (pc + 2) in
        if fidx < 0 then
          failwith
            ("Thread: call to unknown function " ^ sim.ic_names.(-fidx - 1))
        else begin
          let callee = (Array.unsafe_get sim.ic_funcs fidx).Icode.fn_cfunc in
          let callee_regs = Array.make callee.Runtime.Code.cf_nregs 0 in
          let nargs = Array.unsafe_get code (pc + 4) in
          bind_args_ic code regs callee_regs callee.Runtime.Code.cf_params
            (pc + 5) nargs 0;
          f.Runtime.Thread.pc <- pc + 5 + (2 * nargs);
          t.Runtime.Thread.icount <- t.Runtime.Thread.icount + 1;
          let callee_frame =
            {
              Runtime.Thread.cfunc = callee;
              regs = callee_regs;
              block = 0;
              pc = 0;
              ret_to = Array.unsafe_get sim.ic_ret_opts code.(pc + 3);
              call_iid = Array.unsafe_get code (pc + 1);
            }
          in
          t.Runtime.Thread.frames <- callee_frame :: t.Runtime.Thread.frames;
          0
        end
      | 20 (* Print *) ->
        let a = Array.unsafe_get code (pc + 2) in
        t.Runtime.Thread.output <-
          (if w land 0x100 <> 0 then a else Array.unsafe_get regs a)
          :: t.Runtime.Thread.output;
        finish_ic t f pc 3
      | 21 (* Input *) ->
        let a = Array.unsafe_get code (pc + 3) in
        let idx = if w land 0x100 <> 0 then a else Array.unsafe_get regs a in
        let input = t.Runtime.Thread.input in
        Array.unsafe_set regs
          (Array.unsafe_get code (pc + 2))
          (if idx >= 0 && idx < Array.length input then input.(idx) else 0);
        finish_ic t f pc 4
      | 22 (* Input_len *) ->
        Array.unsafe_set regs
          (Array.unsafe_get code (pc + 2))
          (Array.length t.Runtime.Thread.input);
        finish_ic t f pc 3
      | 23 (* Wait_scalar: sequentially the identity. *) -> finish_ic t f pc 4
      | 24 (* Signal_scalar *) -> finish_ic t f pc 4
      | 25 (* Wait_mem *) -> finish_ic t f pc 3
      | 26 (* Sync_load *) ->
        let a = Array.unsafe_get code (pc + 4) in
        let addr = if w land 0x100 <> 0 then a else Array.unsafe_get regs a in
        Array.unsafe_set regs
          (Array.unsafe_get code (pc + 3))
          (Runtime.Memory.get sim.committed addr);
        finish_ic t f pc 5
      | 27 | 28 (* Signal_mem / _if_unsent *) -> finish_ic t f pc 4
      | 29 | 30 (* Signal_null / _if_unsent *) -> finish_ic t f pc 3
      | _ ->
        let goto target off =
          let proceed =
            let arr = seq_regions_of sim f in
            if target < Array.length arr then begin
              match arr.(target) with
              | Some r ->
                sim.pending_region <- Some r;
                false
              | None -> true
            end
            else true
          in
          if proceed then begin
            f.Runtime.Thread.block <- target;
            f.Runtime.Thread.pc <- off;
            t.Runtime.Thread.icount <- t.Runtime.Thread.icount + 1;
            0
          end
          else 2
        in
        if op = 31 (* Jmp *) then
          goto (Array.unsafe_get code (pc + 1)) (Array.unsafe_get code (pc + 2))
        else if op = 32 (* Br *) then begin
          let c = Array.unsafe_get code (pc + 1) in
          let cv = if w land 0x100 <> 0 then c else Array.unsafe_get regs c in
          if cv <> 0 then
            goto
              (Array.unsafe_get code (pc + 2))
              (Array.unsafe_get code (pc + 4))
          else
            goto
              (Array.unsafe_get code (pc + 3))
              (Array.unsafe_get code (pc + 5))
        end
        else begin
          (* Ret *)
          t.Runtime.Thread.icount <- t.Runtime.Thread.icount + 1;
          match t.Runtime.Thread.frames with
          | [ _ ] ->
            t.Runtime.Thread.frames <- [];
            sim.step_rv <-
              (if w land 0x100 = 0 then None
               else
                 Some
                   (let v = Array.unsafe_get code (pc + 1) in
                    if w land 0x200 <> 0 then v else Array.unsafe_get regs v));
            3
          | _ :: (caller :: _ as rest) ->
            (match f.Runtime.Thread.ret_to with
            | Some dst ->
              caller.Runtime.Thread.regs.(dst) <-
                (if w land 0x100 = 0 then 0
                 else
                   let v = Array.unsafe_get code (pc + 1) in
                   if w land 0x200 <> 0 then v else Array.unsafe_get regs v)
            | None -> ());
            t.Runtime.Thread.frames <- rest;
            0
          | [] -> failwith "Thread: step on finished thread"
        end

let seq_step sim = if sim.use_icode then seq_step_ic sim else seq_step_ir sim

let enter_tls sim (r : Ir.Region.t) =
  let instance =
    match Hashtbl.find_opt sim.instance_counters r.Ir.Region.id with
    | Some n -> n
    | None -> 0
  in
  Hashtbl.replace sim.instance_counters r.Ir.Region.id (instance + 1);
  let seq_frame = Runtime.Thread.current_frame sim.seq_thread in
  let base = Runtime.Thread.copy_frame seq_frame in
  base.Runtime.Thread.block <- r.Ir.Region.header;
  base.Runtime.Thread.pc <-
    block_entry sim base.Runtime.Thread.cfunc r.Ir.Region.header;
  let entry_sent = Hashtbl.create 8 in
  List.iter
    (fun (sc : Ir.Region.scalar_channel) ->
      Hashtbl.replace entry_sent sc.Ir.Region.sc_id
        {
          se_payload = P_scalar base.Runtime.Thread.regs.(sc.Ir.Region.sc_reg);
          se_avail = sim.cycle;
        })
    r.Ir.Region.scalar_channels;
  List.iter
    (fun (mg : Ir.Region.mem_group) ->
      Hashtbl.replace entry_sent mg.Ir.Region.mg_id
        { se_payload = P_mem (0, 0); se_avail = sim.cycle })
    r.Ir.Region.mem_groups;
  let channels =
    Int_set.union
      (Int_set.of_list
         (List.map (fun (sc : Ir.Region.scalar_channel) -> sc.Ir.Region.sc_id)
            r.Ir.Region.scalar_channels))
      (Int_set.of_list
         (List.map (fun (mg : Ir.Region.mem_group) -> mg.Ir.Region.mg_id)
            r.Ir.Region.mem_groups))
  in
  let comp_loads =
    Int_set.of_list
      (List.concat_map
         (fun (mg : Ir.Region.mem_group) -> mg.Ir.Region.mg_loads)
         r.Ir.Region.mem_groups)
  in
  drain_thread_output sim sim.seq_thread;
  (* The live window is [ts_oldest-1, ts_next_spawn), at most
     num_procs+1 slots wide; the next power of two keeps indexing a
     mask. *)
  let cap =
    let rec up c = if c > sim.cfg.Config.num_procs then c else up (c * 2) in
    up 1
  in
  let st =
    {
      ts_region = r;
      ts_instance = instance;
      ts_base = base;
      ts_blocks = Int_set.of_list r.Ir.Region.blocks;
      ts_channels = channels;
      ts_comp_loads = comp_loads;
      ts_entry_sent = entry_sent;
      ring = Array.make cap None;
      cap;
      ts_oldest = 0;
      ts_next_spawn = 0;
      ts_commit_ready = 0;
      ts_ended = false;
      ts_winner = None;
      ts_start_cycle = sim.cycle;
    }
  in
  spawn_epochs sim st;
  sim.last_progress <- sim.cycle;
  sim.mode <- Tls st

let seq_cycle sim =
  if sim.seq_stall_until > sim.cycle then begin
    let skip = sim.seq_stall_until - sim.cycle in
    sim.cycle <- sim.cycle + skip;
    sim.seq_cycles <- sim.seq_cycles + skip
  end;
  (* Slot loop as a counted recursion: a ref-cell [while] would
     allocate two cells per sequential cycle. *)
  let rec go slots =
    if slots > 0 && not sim.finished then begin
      sim.extra_latency <- 0;
      match seq_step sim with
      | 0 ->
        if sim.extra_latency > 0 then
          sim.seq_stall_until <- sim.cycle + sim.extra_latency
        else go (slots - 1)
      | 2 -> begin
        match sim.pending_region with
        | Some r ->
          sim.pending_region <- None;
          enter_tls sim r
        | None -> failwith "Sim: sequential thread suspended without a region"
      end
      | 1 -> failwith "Sim: sequential thread blocked"
      | _ -> sim.finished <- true
    end
  in
  go sim.cfg.Config.issue_width;
  sim.cycle <- sim.cycle + 1;
  sim.seq_cycles <- sim.seq_cycles + 1

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let create_sim cfg code ~input ~oracle =
  let committed = Runtime.Memory.create () in
  Runtime.Memory.store_all committed code.Runtime.Code.initial_stores;
  let regions_by_func = Hashtbl.create 8 in
  List.iter
    (fun (r : Ir.Region.t) ->
      let prev =
        match Hashtbl.find_opt regions_by_func r.Ir.Region.func with
        | Some l -> l
        | None -> []
      in
      Hashtbl.replace regions_by_func r.Ir.Region.func (r :: prev))
    code.Runtime.Code.regions;
  let region_arrays = Hashtbl.create 8 in
  Hashtbl.iter
    (fun fname regions ->
      match Hashtbl.find_opt code.Runtime.Code.funcs fname with
      | None -> ()
      | Some cf ->
        let arr =
          Array.make (Array.length cf.Runtime.Code.cf_blocks) None
        in
        (* [regions_by_func] lists are built by consing, so the LAST
           region in program order is first; the reference engine's
           [List.find_opt] scans that same order.  Filling the array in
           reverse makes the first-scanned region win on duplicate
           headers, matching [find_opt]. *)
        List.iter
          (fun (r : Ir.Region.t) ->
            let h = r.Ir.Region.header in
            if h >= 0 && h < Array.length arr && arr.(h) = None then
              arr.(h) <- Some r)
          regions;
        Hashtbl.replace region_arrays fname arr)
    regions_by_func;
  let parking_enabled =
    (not cfg.Config.filter_useless_sync)
    && not
         (List.exists
            (fun f -> match f with Config.Drop_wakeup _ -> true | _ -> false)
            cfg.Config.sim_faults)
  in
  let use_icode = cfg.Config.icode in
  let ic = if use_icode then Icode.of_code code else Icode.empty in
  {
    cfg;
    code;
    memsys = Memsys.create cfg;
    hwsync =
      Hwsync.create ~size:cfg.Config.hw_table_size
        ~reset_interval:cfg.Config.hw_reset_interval;
    vpred = Vpred.create ~stride:cfg.Config.vpred_stride;
    oracle;
    committed;
    seq_thread = Runtime.Thread.create code ~func_name:"main" ~input;
    regions_by_func;
    region_arrays;
    cur_cfunc = None;
    cur_regions = [||];
    instance_counters = Hashtbl.create 8;
    mode = Seq;
    cycle = 0;
    seq_cycles = 0;
    region_wall = 0;
    seq_stall_until = 0;
    pending_region = None;
    extra_latency = 0;
    finished = false;
    output_rev = [];
    slots = Simstats.fresh_slots ();
    attribution = Simstats.fresh_attribution ();
    violations = 0;
    committed_epochs = 0;
    squashed_epochs = 0;
    max_sig_buffer = 0;
    ever_marked = Hashtbl.create 64;
    region_wall_by_id = Hashtbl.create 8;
    chan_stats = Hashtbl.create 32;
    sync_by_channel = Hashtbl.create 32;
    violated_loads = Hashtbl.create 16;
    last_progress = 0;
    f_mem_signals = 0;
    f_blocked_waits = 0;
    fired = Hashtbl.create 4;
    dropped_wakeups = Hashtbl.create 4;
    resources = Simstats.fresh_resources ();
    parking_enabled;
    use_icode;
    ic_funcs = ic.Icode.funcs;
    ic_names = ic.Icode.names;
    ic_ret_opts = ic.Icode.ret_opts;
    rcv_v = 0;
    rcv_avail = 0;
    sig_a = 0;
    sig_v = 0;
    step_rv = None;
  }

let with_runtime_counters f =
  let t0 = Unix.gettimeofday () in
  let g0 = Gc.quick_stat () in
  let v = f () in
  let g1 = Gc.quick_stat () in
  let rt =
    {
      Simstats.rt_wall_ns =
        int_of_float ((Unix.gettimeofday () -. t0) *. 1e9);
      rt_minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
      rt_major_words = g1.Gc.major_words -. g0.Gc.major_words;
    }
  in
  (v, rt)

let run ?max_cycles cfg code ~input ?oracle () =
  let max_cycles =
    match max_cycles with Some m -> m | None -> cfg.Config.max_cycles
  in
  let result, runtime = with_runtime_counters @@ fun () ->
  let sim = create_sim cfg code ~input ~oracle in
  while not sim.finished do
    if sim.cycle > max_cycles then
      raise
        (Cycle_limit { max_cycles; cycle = sim.cycle; where = "Sim.run" });
    match sim.mode with
    | Seq -> seq_cycle sim
    | Tls st ->
      tls_cycle sim st;
      if st.ts_ended then finish_instance sim st
  done;
  drain_thread_output sim sim.seq_thread;
  let l1_accesses = Memsys.l1_hits sim.memsys + Memsys.l1_misses sim.memsys in
  sim.resources.Simstats.rs_hw_evictions <- Hwsync.evictions sim.hwsync;
  sim.resources.Simstats.rs_peak_hw_table <- Hwsync.peak sim.hwsync;
  {
    Simstats.total_cycles = sim.cycle;
    seq_cycles = sim.seq_cycles;
    region_cycles = sim.region_wall;
    slots = sim.slots;
    violations = sim.violations;
    attribution = sim.attribution;
    epochs_committed = sim.committed_epochs;
    epochs_squashed = sim.squashed_epochs;
    output = List.rev sim.output_rev;
    final_memory = sim.committed;
    max_signal_buffer = sim.max_sig_buffer;
    region_cycle_by_id =
      Hashtbl.fold (fun id c acc -> (id, c) :: acc) sim.region_wall_by_id []
      |> List.sort compare;
    region_instances =
      Hashtbl.fold (fun id c acc -> (id, c) :: acc) sim.instance_counters []
      |> List.sort compare;
    l1_miss_rate =
      (if l1_accesses = 0 then 0.0
       else float_of_int (Memsys.l1_misses sim.memsys) /. float_of_int l1_accesses);
    hw_marked_loads = Hashtbl.length sim.ever_marked;
    vpred_predictions = Vpred.predictions sim.vpred;
    faults_fired = Hashtbl.length sim.fired;
    runtime = Simstats.no_runtime;
    resources = sim.resources;
    sync_stall_by_channel =
      Hashtbl.fold (fun ch n acc -> (ch, n) :: acc) sim.sync_by_channel []
      |> List.sort compare;
    violated_load_counts =
      Hashtbl.fold (fun iid n acc -> (iid, n) :: acc) sim.violated_loads []
      |> List.sort compare;
  }
  in
  { result with Simstats.runtime }
