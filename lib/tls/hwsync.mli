(** Hardware-inserted synchronization, after Steffan et al. [25]: a small
    table of the (static) loads that recently caused violations.  A load
    whose id is in the table is stalled until its epoch is the oldest
    ("until the previous epoch completes").  The table is reset
    periodically so infrequently-violating loads stop being synchronized
    (paper §4.2). *)

type t

val create : size:int -> reset_interval:int -> t

(** Record that this load caused a violation (insert / refresh, LRU). *)
val record_violation : t -> Ir.Instr.iid -> unit

(** Is the load currently marked for synchronization? *)
val marked : t -> Ir.Instr.iid -> bool

(** No loads marked at all — lets callers skip a per-instruction peek
    when the table is empty. *)
val is_empty : t -> bool

(** Advance time; clears the table when the reset interval elapses. *)
val tick : t -> now:int -> unit

(** Loads currently in the table. *)
val contents : t -> Ir.Instr.iid list

val resets : t -> int

(** LRU evictions forced by the finite table size (resource accounting). *)
val evictions : t -> int

(** Peak table occupancy observed (resource accounting). *)
val peak : t -> int
