(* Facade over the two simulator cores (DESIGN §15).

   [Sim_ref] is the original cycle-stepped engine, kept alive as the
   oracle; [Sim_event] is the event-queue core that skips to the next
   interesting cycle and runs the hot path on flat mutable arrays and
   preallocated scratch buffers.  Both raise the shared [Simdiag]
   exceptions and must produce byte-identical observables; the engine is
   selected per run by {!Config.t.engine} (default [Engine_event],
   [--engine ref|event] on the CLI). *)

include Simdiag

let run ?max_cycles cfg code ~input ?oracle () =
  match cfg.Config.engine with
  | Config.Engine_ref -> Sim_ref.run ?max_cycles cfg code ~input ?oracle ()
  | Config.Engine_event -> Sim_event.run ?max_cycles cfg code ~input ?oracle ()

(* The sequential timed run has no per-epoch hot path; the reference
   implementation serves both engines. *)
let run_sequential = Sim_ref.run_sequential
