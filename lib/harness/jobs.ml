(* A hand-rolled Domain worker pool (no Domainslib dependency).

   One shared work queue: [next] is the index of the first unclaimed
   item; every worker — the spawned domains plus the calling domain —
   loops on an atomic fetch-and-add claiming one item at a time.  That
   gives dynamic load balancing (a slow cell does not stall a whole
   pre-assigned chunk) while keeping results slotted by input index, so
   the output order never depends on completion order.

   Exceptions: each job's outcome is stored as a [result]; after every
   worker has drained the queue, the error of the lowest-index failing
   item is re-raised with its original backtrace.  This matches serial
   [List.map] semantics, where the first failing item (in input order)
   is the one whose exception escapes. *)

type t = {
  jobs : int;
  map : 'a 'b. ('a -> 'b) -> 'a list -> 'b list;
}

type attempt = { at_timeout_s : float; at_backoff_s : float }

exception Job_timeout of { index : int; timeout_s : float }
exception Retries_exhausted of { index : int; attempts : attempt list }
exception Pool_failure of { reason : string }

let available () = Domain.recommended_domain_count ()

let serial_map f items = List.map f items

(* Per-job timeout enforcement.  OCaml domains cannot be killed, so the
   job runs in a monitor domain that publishes its outcome through an
   [Atomic] slot while the worker polls with a deadline.  On expiry the
   monitor domain is abandoned — it keeps computing until it finishes on
   its own (all our jobs carry their own cycle budgets, so runaways are
   bounded) — and the job's slot becomes [Job_timeout].  A failed spawn
   (resource limits) degrades to running the job inline, without
   enforcement, rather than losing the result. *)
let poll_interval_s = 0.002

let run_with_deadline ~timeout_s f x =
  let slot = Atomic.make None in
  match
    Domain.spawn (fun () ->
        let outcome =
          try Ok (f x) with e -> Error (e, Printexc.get_raw_backtrace ())
        in
        Atomic.set slot (Some outcome))
  with
  | exception _ ->
    Some (try Ok (f x) with e -> Error (e, Printexc.get_raw_backtrace ()))
  | d ->
    let deadline = Unix.gettimeofday () +. timeout_s in
    let rec poll () =
      match Atomic.get slot with
      | Some outcome ->
        Domain.join d;
        Some outcome
      | None ->
        if Unix.gettimeofday () >= deadline then None
        else begin
          Unix.sleepf poll_interval_s;
          poll ()
        end
    in
    poll ()

let with_deadline ~timeout_s f x = run_with_deadline ~timeout_s f x

(* The deterministic retry schedule: attempt [k] (0-based) runs under a
   deadline of [timeout_s * 2^k] after sleeping [backoff_s * 2^(k-1)]
   (no sleep before the first attempt).  No jitter: the same inputs
   always produce the same schedule, so test expectations and chaos
   matrices are reproducible. *)
let attempt_plan ~timeout_s ~backoff_s ~retries =
  List.init (retries + 1) (fun k ->
      {
        at_timeout_s = timeout_s *. Float.of_int (1 lsl k);
        at_backoff_s =
          (if k = 0 then 0.0 else backoff_s *. Float.of_int (1 lsl (k - 1)));
      })

let run_with_retries ~index ~timeout_s ~backoff_s ~retries
    ?(sleep = Unix.sleepf) f x =
  let plan = attempt_plan ~timeout_s ~backoff_s ~retries in
  let rec go = function
    | [] ->
      Error
        ( Retries_exhausted { index; attempts = plan },
          Printexc.get_callstack 0 )
    | a :: rest ->
      if a.at_backoff_s > 0.0 then sleep a.at_backoff_s;
      (match run_with_deadline ~timeout_s:a.at_timeout_s f x with
      | Some outcome -> outcome
      | None -> go rest)
  in
  go plan

(* The retry policy of one job.  [Single_retry] is the PR4 behavior
   (opt-in one retry at double the bound, [Job_timeout] on failure) and
   stays the default so existing callers see identical semantics;
   [Backoff] is the generalized schedule raising [Retries_exhausted]
   with the full attempt history. *)
type retry_policy = Single_retry of bool | Backoff of { retries : int; backoff_s : float }

let run_bounded ~index ~timeout_s ~policy f x =
  match policy with
  | Backoff { retries; backoff_s } ->
    run_with_retries ~index ~timeout_s ~backoff_s ~retries f x
  | Single_retry retry -> begin
    match run_with_deadline ~timeout_s f x with
    | Some outcome -> outcome
    | None -> begin
      (* Opt-in single retry at double the bound: a transiently slow host
         (GC pause, noisy neighbour) gets a second chance; a genuinely
         wedged job times out again. *)
      let retried =
        if retry then run_with_deadline ~timeout_s:(2.0 *. timeout_s) f x
        else None
      in
      match retried with
      | Some outcome -> outcome
      | None ->
        Error (Job_timeout { index; timeout_s }, Printexc.get_callstack 0)
    end
  end

let parallel_map ?timeout ?worker_fault ~policy ~jobs f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let slots = Array.make n None in
  let next = Atomic.make 0 in
  let run i =
    match timeout with
    | None -> (
      try Ok (f arr.(i)) with e -> Error (e, Printexc.get_raw_backtrace ()))
    | Some timeout_s -> run_bounded ~index:i ~timeout_s ~policy f arr.(i)
  in
  let rec worker () =
    let i = Atomic.fetch_and_add next 1 in
    if i < n then begin
      (match worker_fault with Some hook -> hook i | None -> ());
      slots.(i) <- Some (run i);
      worker ()
    end
  in
  (* A worker body never lets an exception reach [Domain.join]: job
     exceptions are already slotted by [run], and anything else — a
     dying domain — is recorded here so the join below cannot re-raise
     a raw sibling failure that would mask slotted results. *)
  let worker_err = Atomic.make None in
  let guarded_worker () =
    try worker ()
    with e -> ignore (Atomic.compare_and_set worker_err None (Some e))
  in
  (* The calling domain is worker number [jobs]; a failed spawn (fd or
     thread limits) just means fewer helpers — the queue still drains. *)
  let helpers =
    let rec spawn k acc =
      if k <= 0 then acc
      else
        match Domain.spawn guarded_worker with
        | d -> spawn (k - 1) (d :: acc)
        | exception _ -> acc
    in
    spawn (min (jobs - 1) (n - 1)) []
  in
  guarded_worker ();
  List.iter Domain.join helpers;
  (* Pool self-check: a dead worker must not orphan queued work.  Any
     unslotted item — claimed by a dying worker, or never claimed
     because the workers died before draining the queue — is run inline
     here, in the calling domain, without the fault hook.  Only if that
     recovery itself cannot complete does the typed pool error escape. *)
  (try
     Array.iteri
       (fun i slot -> if slot = None then slots.(i) <- Some (run i))
       slots
   with e ->
     raise (Pool_failure { reason = "recovery failed: " ^ Printexc.to_string e }));
  Array.iteri
    (fun i slot ->
      match slot with
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Ok _) | None -> ignore i)
    slots;
  Array.to_list
    (Array.map
       (function
         | Some (Ok v) -> v
         | Some (Error _) | None ->
           (* Unreachable after the self-check, but never a bare assert:
              an unfilled slot is a pool invariant failure, typed. *)
           raise (Pool_failure { reason = "result slot left empty" }))
       slots)

let serial = { jobs = 1; map = serial_map }

let create ?timeout ?(retry = false) ?retries ?(backoff = 0.0) ?worker_fault
    ~jobs () =
  if jobs <= 1 && timeout = None && worker_fault = None then serial
  else
    let policy =
      match retries with
      | Some r -> Backoff { retries = max 0 r; backoff_s = backoff }
      | None -> Single_retry retry
    in
    let jobs = max 1 jobs in
    {
      jobs;
      map =
        (fun f items ->
          parallel_map ?timeout ?worker_fault ~policy ~jobs f items);
    }

let map ~jobs f items = (create ~jobs ()).map f items
