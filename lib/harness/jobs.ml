(* A hand-rolled Domain worker pool (no Domainslib dependency).

   One shared work queue: [next] is the index of the first unclaimed
   item; every worker — the spawned domains plus the calling domain —
   loops on an atomic fetch-and-add claiming one item at a time.  That
   gives dynamic load balancing (a slow cell does not stall a whole
   pre-assigned chunk) while keeping results slotted by input index, so
   the output order never depends on completion order.

   Exceptions: each job's outcome is stored as a [result]; after every
   worker has drained the queue, the error of the lowest-index failing
   item is re-raised with its original backtrace.  This matches serial
   [List.map] semantics, where the first failing item (in input order)
   is the one whose exception escapes. *)

type t = {
  jobs : int;
  map : 'a 'b. ('a -> 'b) -> 'a list -> 'b list;
}

let available () = Domain.recommended_domain_count ()

let serial_map f items = List.map f items

let parallel_map ~jobs f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let slots = Array.make n None in
  let next = Atomic.make 0 in
  let rec worker () =
    let i = Atomic.fetch_and_add next 1 in
    if i < n then begin
      let outcome =
        try Ok (f arr.(i))
        with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      slots.(i) <- Some outcome;
      worker ()
    end
  in
  (* The calling domain is worker number [jobs]; a failed spawn (fd or
     thread limits) just means fewer helpers — the queue still drains. *)
  let helpers =
    let rec spawn k acc =
      if k <= 0 then acc
      else
        match Domain.spawn worker with
        | d -> spawn (k - 1) (d :: acc)
        | exception _ -> acc
    in
    spawn (min (jobs - 1) (n - 1)) []
  in
  worker ();
  List.iter Domain.join helpers;
  Array.iteri
    (fun i slot ->
      match slot with
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Ok _) | None -> ignore i)
    slots;
  Array.to_list
    (Array.map
       (function
         | Some (Ok v) -> v
         | Some (Error _) | None ->
           (* Unreachable: the queue was drained and errors re-raised. *)
           assert false)
       slots)

let serial = { jobs = 1; map = serial_map }

let create ~jobs =
  if jobs <= 1 then serial
  else { jobs; map = (fun f items -> parallel_map ~jobs f items) }

let map ~jobs f items = (create ~jobs).map f items
