(** Domain-based worker pool for the embarrassingly parallel experiment
    matrices (per-figure cells, chaos cells, bench phases).

    Design constraints, in order:
    - {b determinism}: [map] always returns results in input order, and a
      parallel map must be observably identical to [List.map] — callers
      are required to pass jobs that do not share mutable state or print;
    - {b isolation}: each map call spawns fresh domains and tears them
      down afterwards, so no heap state leaks from one batch into the
      next and a crashed job cannot poison a long-lived worker;
    - {b graceful degradation}: [jobs <= 1], a single-item list, or a
      failed [Domain.spawn] (resource limits) all fall back to running
      jobs in the calling domain.

    Scheduling is a Domainslib-style single shared work queue: workers
    repeatedly claim the next unclaimed index with an atomic
    fetch-and-add, so long-running cells load-balance instead of being
    pre-partitioned. *)

type t = {
  jobs : int;  (** requested worker count (1 = serial) *)
  map : 'a 'b. ('a -> 'b) -> 'a list -> 'b list;
      (** Order-preserving map.  If any job raises, the exception of the
          lowest-index failing item is re-raised (with its backtrace)
          after all workers have drained — the same exception [List.map]
          would have surfaced first. *)
}

(** Run everything in the calling domain ([jobs = 1]). *)
val serial : t

(** A pool of [jobs] workers; [create ~jobs:1] (or less) is {!serial}.
    The calling domain participates as one of the workers, so [jobs = 4]
    spawns 3 domains. *)
val create : jobs:int -> t

(** One-shot convenience: [(create ~jobs).map f items]. *)
val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** What the host advertises ([Domain.recommended_domain_count]). *)
val available : unit -> int
