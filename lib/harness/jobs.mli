(** Domain-based worker pool for the embarrassingly parallel experiment
    matrices (per-figure cells, chaos cells, bench phases).

    Design constraints, in order:
    - {b determinism}: [map] always returns results in input order, and a
      parallel map must be observably identical to [List.map] — callers
      are required to pass jobs that do not share mutable state or print;
    - {b isolation}: each map call spawns fresh domains and tears them
      down afterwards, so no heap state leaks from one batch into the
      next and a crashed job cannot poison a long-lived worker;
    - {b graceful degradation}: [jobs <= 1], a single-item list, or a
      failed [Domain.spawn] (resource limits) all fall back to running
      jobs in the calling domain.

    Scheduling is a Domainslib-style single shared work queue: workers
    repeatedly claim the next unclaimed index with an atomic
    fetch-and-add, so long-running cells load-balance instead of being
    pre-partitioned. *)

type t = {
  jobs : int;  (** requested worker count (1 = serial) *)
  map : 'a 'b. ('a -> 'b) -> 'a list -> 'b list;
      (** Order-preserving map.  If any job raises, the exception of the
          lowest-index failing item is re-raised (with its backtrace)
          after all workers have drained — the same exception [List.map]
          would have surfaced first. *)
}

(** One scheduled attempt of a retried job: the deadline it ran under
    and the backoff slept before it (0 for the first attempt). *)
type attempt = { at_timeout_s : float; at_backoff_s : float }

(** A job exceeded its per-job timeout (and its retry, if enabled).
    [index] is the job's position in the input list, so a failed matrix
    run names the exact cell that wedged. *)
exception Job_timeout of { index : int; timeout_s : float }

(** A job exhausted its [?retries] budget.  [attempts] is the full
    deterministic schedule that was tried (oldest first), so a failed
    matrix run reports exactly which deadlines and backoffs were
    granted. *)
exception Retries_exhausted of { index : int; attempts : attempt list }

(** The pool's own invariant broke: a result slot could not be filled
    even by the inline recovery pass (see the worker-death contract on
    {!create}).  Job exceptions never surface as this — they re-raise
    as themselves, lowest index first. *)
exception Pool_failure of { reason : string }

(** Run everything in the calling domain ([jobs = 1]). *)
val serial : t

(** A pool of [jobs] workers; [create ~jobs:1] (or less, with no
    [timeout]) is {!serial}.  The calling domain participates as one of
    the workers, so [jobs = 4] spawns 3 domains.

    [?timeout] bounds each job's wall time in seconds.  A job past its
    deadline is abandoned (OCaml domains cannot be killed — the stray
    computation finishes on its own cycle budget) and its outcome becomes
    {!Job_timeout}; the rest of the matrix still completes, in input
    order, and the lowest-index error is the one re-raised.  A timed-out
    job surfaces within the timeout plus one poll interval (~2ms), i.e.
    well within 2x the bound.  [?retry] (default false) grants one
    retry at double the timeout before giving up.

    [?retries] replaces the single-retry policy with a deterministic
    exponential schedule: attempt [k] (0-based, [retries + 1] attempts
    total) runs under a deadline of [timeout * 2^k] after sleeping
    [backoff * 2^(k-1)] ([?backoff] default 0 — no sleep, and never one
    before the first attempt).  There is no jitter, so the schedule is
    reproducible.  Exhaustion raises {!Retries_exhausted} carrying the
    attempted schedule instead of {!Job_timeout}.  When [?retries] is
    given, [?retry] is ignored; omitting both keeps the pre-existing
    behavior exactly.

    Worker-death contract: a domain that dies from an exception raised
    outside a job (the jobs' own exceptions are slotted as results)
    never orphans queued work and never masks slotted results — after
    all workers are joined, a self-check re-runs every unslotted item
    inline in the calling domain, so either every result is present (in
    input order, job errors re-raised lowest index first as always) or
    the typed {!Pool_failure} is raised.  [?worker_fault] is the fault
    hook that regression-tests this contract: it is called with each
    claimed index before the job runs, and an exception it raises kills
    that worker the way an unexpected infrastructure failure would. *)
val create :
  ?timeout:float ->
  ?retry:bool ->
  ?retries:int ->
  ?backoff:float ->
  ?worker_fault:(int -> unit) ->
  jobs:int ->
  unit ->
  t

(** [attempt_plan ~timeout_s ~backoff_s ~retries] is the deterministic
    schedule [create ~retries] would run, exposed so callers (the serve
    layer, tests) can reason about it without running anything. *)
val attempt_plan :
  timeout_s:float -> backoff_s:float -> retries:int -> attempt list

(** [with_deadline ~timeout_s f x] runs one computation under a wall
    deadline on a monitor domain: [Some (Ok v)] / [Some (Error ...)] if
    it finished, [None] if it was abandoned at the deadline (the stray
    domain finishes on its own).  The building block the serve layer's
    per-request deadlines are made of. *)
val with_deadline :
  timeout_s:float ->
  ('a -> 'b) ->
  'a ->
  ('b, exn * Printexc.raw_backtrace) result option

(** One-shot convenience: [(create ~jobs).map f items]. *)
val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** What the host advertises ([Domain.recommended_domain_count]). *)
val available : unit -> int
