(** Domain-based worker pool for the embarrassingly parallel experiment
    matrices (per-figure cells, chaos cells, bench phases).

    Design constraints, in order:
    - {b determinism}: [map] always returns results in input order, and a
      parallel map must be observably identical to [List.map] — callers
      are required to pass jobs that do not share mutable state or print;
    - {b isolation}: each map call spawns fresh domains and tears them
      down afterwards, so no heap state leaks from one batch into the
      next and a crashed job cannot poison a long-lived worker;
    - {b graceful degradation}: [jobs <= 1], a single-item list, or a
      failed [Domain.spawn] (resource limits) all fall back to running
      jobs in the calling domain.

    Scheduling is a Domainslib-style single shared work queue: workers
    repeatedly claim the next unclaimed index with an atomic
    fetch-and-add, so long-running cells load-balance instead of being
    pre-partitioned. *)

type t = {
  jobs : int;  (** requested worker count (1 = serial) *)
  map : 'a 'b. ('a -> 'b) -> 'a list -> 'b list;
      (** Order-preserving map.  If any job raises, the exception of the
          lowest-index failing item is re-raised (with its backtrace)
          after all workers have drained — the same exception [List.map]
          would have surfaced first. *)
}

(** A job exceeded its per-job timeout (and its retry, if enabled).
    [index] is the job's position in the input list, so a failed matrix
    run names the exact cell that wedged. *)
exception Job_timeout of { index : int; timeout_s : float }

(** Run everything in the calling domain ([jobs = 1]). *)
val serial : t

(** A pool of [jobs] workers; [create ~jobs:1] (or less, with no
    [timeout]) is {!serial}.  The calling domain participates as one of
    the workers, so [jobs = 4] spawns 3 domains.

    [?timeout] bounds each job's wall time in seconds.  A job past its
    deadline is abandoned (OCaml domains cannot be killed — the stray
    computation finishes on its own cycle budget) and its outcome becomes
    {!Job_timeout}; the rest of the matrix still completes, in input
    order, and the lowest-index error is the one re-raised.  A timed-out
    job surfaces within the timeout plus one poll interval (~2ms), i.e.
    well within 2x the bound.  [?retry] (default false) grants one
    retry at double the timeout before giving up. *)
val create : ?timeout:float -> ?retry:bool -> jobs:int -> unit -> t

(** One-shot convenience: [(create ~jobs).map f items]. *)
val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** What the host advertises ([Domain.recommended_domain_count]). *)
val available : unit -> int
