let table1 () =
  Support.Table.section "Table 1: simulation parameters"
  ^ "\n"
  ^ Tls.Config.describe Tls.Config.default

(* Order-preserving parallel concat_map over a pool: the cells of one
   figure are independent per benchmark, so they are the unit of work. *)
let concat_pmap (pool : Jobs.t) f items = List.concat (pool.Jobs.map f items)

(* Render one normalized-region-bar table: rows = benchmark x mode. *)
let bar_table ~title (rows : (string * string * Tls.Simstats.result * Context.t) list) =
  let header = [ "benchmark"; "mode"; "time"; "busy"; "sync"; "fail"; "other" ] in
  let body =
    List.map
      (fun (bench, mode, r, ctx) ->
        let total, busy, sync, fail, other = Context.region_bar ctx r in
        [
          bench;
          mode;
          Support.Table.pct_cell total;
          Support.Table.pct_cell busy;
          Support.Table.pct_cell sync;
          Support.Table.pct_cell fail;
          Support.Table.pct_cell other;
        ])
      rows
  in
  Support.Table.section title
  ^ "\n(normalized region execution time, % of sequential; lower is better)\n"
  ^ Support.Table.render ~header body

let fig2 ?(pool = Jobs.serial) (ctxs : Context.t list) =
  let rows =
    concat_pmap pool
      (fun (ctx : Context.t) ->
        let name = ctx.Context.w.Workloads.Workload.name in
        let u = Context.run ctx Tls.Config.u_mode ctx.Context.u () in
        let o_cfg =
          { Tls.Config.u_mode with Tls.Config.oracle = Tls.Config.Oracle_all }
        in
        let o =
          Context.run ctx o_cfg ctx.Context.u
            ~oracle:(Context.oracle_for_u ctx) ()
        in
        [ (name, "U", u, ctx); (name, "O", o, ctx) ])
      ctxs
  in
  bar_table ~title:"Figure 2: potential of perfect memory value communication"
    rows

let oracle_set_for ctx ~threshold =
  (* Loads whose inter-epoch dependence frequency (ref profile) is at
     least [threshold]; iids are the original program's, valid in the U
     binary. *)
  List.fold_left
    (fun acc (_, dp) ->
      List.fold_left
        (fun acc (a : Profiler.Profile.access) ->
          Tls.Config.Iid_set.add a.Profiler.Profile.a_iid acc)
        acc
        (Profiler.Profile.frequent_loads dp ~threshold))
    Tls.Config.Iid_set.empty
    ctx.Context.c.Tlscore.Pipeline.dep_profiles

let fig6 ?(pool = Jobs.serial) (ctxs : Context.t list) =
  let rows =
    concat_pmap pool
      (fun (ctx : Context.t) ->
        let name = ctx.Context.w.Workloads.Workload.name in
        let u = Context.run ctx Tls.Config.u_mode ctx.Context.u () in
        let bars =
          List.map
            (fun threshold ->
              let set = oracle_set_for ctx ~threshold in
              let cfg =
                {
                  Tls.Config.u_mode with
                  Tls.Config.oracle = Tls.Config.Oracle_set set;
                }
              in
              let r =
                Context.run ctx cfg ctx.Context.u
                  ~oracle:(Context.oracle_for_u ctx) ()
              in
              (Printf.sprintf ">%d%%" (int_of_float (threshold *. 100.)), r))
            [ 0.25; 0.15; 0.05 ]
        in
        (name, "U", u, ctx)
        :: List.map (fun (label, r) -> (name, label, r, ctx)) bars)
      ctxs
  in
  bar_table
    ~title:
      "Figure 6: perfect prediction of loads above a dependence-frequency \
       threshold"
    rows

let fig7 ?(pool = Jobs.serial) (ctxs : Context.t list) =
  let header = [ "benchmark"; "deps"; "dist=1"; "dist=2"; "dist>2" ] in
  let body =
    pool.Jobs.map
      (fun (ctx : Context.t) ->
        let d1 = ref 0 and d2 = ref 0 and dmore = ref 0 in
        List.iter
          (fun (_, (dp : Profiler.Profile.dep_profile)) ->
            Hashtbl.iter
              (fun dist count ->
                if dist = 1 then d1 := !d1 + count
                else if dist = 2 then d2 := !d2 + count
                else dmore := !dmore + count)
              dp.Profiler.Profile.distances)
          ctx.Context.c.Tlscore.Pipeline.dep_profiles;
        let all = !d1 + !d2 + !dmore in
        let pct v = Support.Table.pct_cell (Support.Stats.percent (float_of_int v) (float_of_int all)) in
        [
          ctx.Context.w.Workloads.Workload.name;
          string_of_int all;
          pct !d1;
          pct !d2;
          pct !dmore;
        ])
      ctxs
  in
  Support.Table.section "Figure 7: dependence distance distribution (% of dynamic dependences)"
  ^ "\n"
  ^ Support.Table.render ~header body

let fig8 ?(pool = Jobs.serial) (ctxs : Context.t list) =
  let rows =
    concat_pmap pool
      (fun (ctx : Context.t) ->
        let name = ctx.Context.w.Workloads.Workload.name in
        let u = Context.run ctx Tls.Config.u_mode ctx.Context.u () in
        let t = Context.run ctx Tls.Config.c_mode ctx.Context.t_build () in
        let c = Context.run ctx Tls.Config.c_mode ctx.Context.c () in
        [ (name, "U", u, ctx); (name, "T", t, ctx); (name, "C", c, ctx) ])
      ctxs
  in
  bar_table
    ~title:
      "Figure 8: compiler-inserted synchronization (T: train profile, C: \
       ref profile)"
    rows

let fig9 ?(pool = Jobs.serial) (ctxs : Context.t list) =
  let rows =
    concat_pmap pool
      (fun (ctx : Context.t) ->
        let name = ctx.Context.w.Workloads.Workload.name in
        let c = Context.run ctx Tls.Config.c_mode ctx.Context.c () in
        let e_cfg =
          {
            Tls.Config.c_mode with
            Tls.Config.forward_timing = Tls.Config.Forward_perfect;
          }
        in
        let e =
          Context.run ctx e_cfg ctx.Context.c
            ~oracle:(Context.oracle_for_c ctx) ()
        in
        let l_cfg =
          {
            Tls.Config.c_mode with
            Tls.Config.forward_timing = Tls.Config.Forward_at_commit;
          }
        in
        let l = Context.run ctx l_cfg ctx.Context.c () in
        [ (name, "C", c, ctx); (name, "E", e, ctx); (name, "L", l, ctx) ])
      ctxs
  in
  bar_table
    ~title:
      "Figure 9: cost of synchronization (E: perfect forwarding, L: stall \
       to previous epoch completion)"
    rows

let fig10 ?(pool = Jobs.serial) (ctxs : Context.t list) =
  let rows =
    concat_pmap pool
      (fun (ctx : Context.t) ->
        let name = ctx.Context.w.Workloads.Workload.name in
        let u = Context.run ctx Tls.Config.u_mode ctx.Context.u () in
        let c = Context.run ctx Tls.Config.c_mode ctx.Context.c () in
        let p = Context.run ctx Tls.Config.p_mode ctx.Context.u () in
        let h = Context.run ctx Tls.Config.h_mode ctx.Context.u () in
        let b = Context.run ctx Tls.Config.b_mode ctx.Context.c () in
        [
          (name, "U", u, ctx);
          (name, "C", c, ctx);
          (name, "P", p, ctx);
          (name, "H", h, ctx);
          (name, "B", b, ctx);
        ])
      ctxs
  in
  bar_table
    ~title:
      "Figure 10: compiler- vs hardware-inserted synchronization (P: value \
       prediction, H: hardware sync, B: hybrid)"
    rows

let fig11 ?(pool = Jobs.serial) (ctxs : Context.t list) =
  let header =
    [ "benchmark"; "mode"; "violations"; "comp-only"; "hw-only"; "both"; "neither" ]
  in
  let modes =
    [
      ("U", { Tls.Config.c_mode with Tls.Config.stall_compiler_sync = false });
      ("C", Tls.Config.c_mode);
      ( "H",
        {
          Tls.Config.c_mode with
          Tls.Config.stall_compiler_sync = false;
          hw_sync_stall = true;
        } );
      ("B", Tls.Config.b_mode);
    ]
  in
  let body =
    concat_pmap pool
      (fun (ctx : Context.t) ->
        List.map
          (fun (label, cfg) ->
            let r = Context.run ctx cfg ctx.Context.c () in
            let a = r.Tls.Simstats.attribution in
            [
              ctx.Context.w.Workloads.Workload.name;
              label;
              string_of_int r.Tls.Simstats.violations;
              string_of_int a.Tls.Simstats.v_comp_only;
              string_of_int a.Tls.Simstats.v_hw_only;
              string_of_int a.Tls.Simstats.v_both;
              string_of_int a.Tls.Simstats.v_neither;
            ])
          modes)
      ctxs
  in
  Support.Table.section
    "Figure 11: violated loads by which scheme had marked them (C binary, \
     selective stalling)"
  ^ "\n"
  ^ Support.Table.render ~header body

let speedup_runs (ctx : Context.t) =
  [
    ("U", Context.run ctx Tls.Config.u_mode ctx.Context.u ());
    ("C", Context.run ctx Tls.Config.c_mode ctx.Context.c ());
    ("H", Context.run ctx Tls.Config.h_mode ctx.Context.u ());
    ("B", Context.run ctx Tls.Config.b_mode ctx.Context.c ());
  ]

let fig12 ?(pool = Jobs.serial) (ctxs : Context.t list) =
  let header = [ "benchmark"; "U"; "C"; "H"; "B" ] in
  let speedup_rows =
    pool.Jobs.map
      (fun (ctx : Context.t) ->
        let runs = speedup_runs ctx in
        let cells =
          List.map (fun (_, r) -> Context.program_speedup ctx r) runs
        in
        (ctx.Context.w.Workloads.Workload.name, cells))
      ctxs
  in
  let body =
    List.map
      (fun (name, cells) -> name :: List.map (Support.Table.float_cell 2) cells)
      speedup_rows
  in
  let geo =
    match speedup_rows with
    | [] -> []
    | (_, first) :: _ ->
      let rows = List.map snd speedup_rows in
      let cols = List.length first in
      "geomean"
      :: List.init cols (fun i ->
             Support.Table.float_cell 2
               (Support.Stats.geomean (List.map (fun r -> List.nth r i) rows)))
  in
  Support.Table.section "Figure 12: whole-program speedup vs sequential"
  ^ "\n"
  ^ Support.Table.render ~header (body @ [ geo ])

let table2 ?(pool = Jobs.serial) (ctxs : Context.t list) =
  let header =
    [
      "benchmark";
      "coverage";
      "region B";
      "region C";
      "seq-region B";
      "seq-region C";
      "program B";
      "program C";
    ]
  in
  let body =
    pool.Jobs.map
      (fun (ctx : Context.t) ->
        let b = Context.run ctx Tls.Config.b_mode ctx.Context.c () in
        let c = Context.run ctx Tls.Config.c_mode ctx.Context.c () in
        [
          ctx.Context.w.Workloads.Workload.name;
          Printf.sprintf "%.0f%%" (100.0 *. Context.coverage ctx);
          Support.Table.float_cell 2 (Context.region_speedup ctx b);
          Support.Table.float_cell 2 (Context.region_speedup ctx c);
          Support.Table.float_cell 2 (Context.seq_region_speedup ctx b);
          Support.Table.float_cell 2 (Context.seq_region_speedup ctx c);
          Support.Table.float_cell 2 (Context.program_speedup ctx b);
          Support.Table.float_cell 2 (Context.program_speedup ctx c);
        ])
      ctxs
  in
  Support.Table.section
    "Table 2: region coverage and speedups (B: compiler+hardware hybrid, \
     C: compiler-only)"
  ^ "\n"
  ^ Support.Table.render ~header body

let ablations ?(pool = Jobs.serial) (ctxs : Context.t list) =
  let find name =
    List.find_opt
      (fun (c : Context.t) ->
        String.equal c.Context.w.Workloads.Workload.name name)
      ctxs
  in
  let buf = Buffer.create 1024 in
  let emit s = Buffer.add_string buf s in
  (* 1. Eager vs latch-only signal placement. *)
  emit (Support.Table.section "Ablation: signal placement (eager dataflow vs latch-only)");
  emit "\n";
  let rows =
    concat_pmap pool
      (fun name ->
        match find name with
        | None -> []
        | Some ctx ->
          let w = ctx.Context.w in
          let lazy_build =
            Tlscore.Pipeline.compile ~eager_signals:false
              ~selection:ctx.Context.u.Tlscore.Pipeline.selected
              ~source:w.Workloads.Workload.source
              ~profile_input:w.Workloads.Workload.train_input
              ~memory_sync:
                (Tlscore.Pipeline.Profiled
                   { dep_input = w.Workloads.Workload.ref_input; threshold = 0.05 })
              ()
          in
          let eager = Context.run ctx Tls.Config.c_mode ctx.Context.c () in
          let lazy_r = Context.run ctx Tls.Config.c_mode lazy_build () in
          let cell r = Support.Table.float_cell 2 (Context.region_speedup ctx r) in
          [ [ name; cell eager; cell lazy_r ] ])
      [ "gzip_decomp"; "parser"; "mcf"; "gap" ]
  in
  emit
    (Support.Table.render
       ~header:[ "benchmark"; "eager (dataflow)"; "latch-only" ]
       rows);
  emit "\n\n";
  (* 2. Hardware reset period. *)
  emit (Support.Table.section "Ablation: hardware sync table reset period (H mode)");
  emit "\n";
  let rows =
    concat_pmap pool
      (fun name ->
        match find name with
        | None -> []
        | Some ctx ->
          let run interval =
            let cfg =
              { Tls.Config.h_mode with Tls.Config.hw_reset_interval = interval }
            in
            let r = Context.run ctx cfg ctx.Context.u () in
            Printf.sprintf "%.2f (%d viol)"
              (Context.region_speedup ctx r)
              r.Tls.Simstats.violations
          in
          [ [ name; run 2_000; run 20_000; run 200_000 ] ])
      [ "m88ksim"; "vpr_place"; "twolf" ]
  in
  emit
    (Support.Table.render
       ~header:[ "benchmark"; "reset 2k"; "reset 20k"; "reset 200k" ]
       rows);
  emit "\n\n";
  (* 3. Cache-line size sensitivity of the false-sharing benchmark. *)
  emit (Support.Table.section "Ablation: cache line size vs false sharing (m88ksim, U mode)");
  emit "\n";
  (match find "m88ksim" with
  | None -> ()
  | Some ctx ->
    let rows =
      pool.Jobs.map
        (fun line_words ->
          let cfg =
            {
              Tls.Config.u_mode with
              Tls.Config.line_words;
              l1_sets = 512 * 8 / line_words;
              l2_sets = 16384 * 8 / line_words;
            }
          in
          let r = Context.run ctx cfg ctx.Context.u () in
          [
            Printf.sprintf "%dB lines" (line_words * 4);
            Support.Table.float_cell 2 (Context.region_speedup ctx r);
            string_of_int r.Tls.Simstats.violations;
          ])
        [ 2; 4; 8; 16 ]
    in
    emit
      (Support.Table.render
         ~header:[ "line size"; "region speedup"; "violations" ]
         rows));
  emit "\n\n";
  (* 4. Word-granularity dependence tracking [8]. *)
  emit
    (Support.Table.section
       "Ablation: per-word access bits (Cintra-Torrellas-style) vs \
        line-granularity tracking (U mode)");
  emit "\n";
  let rows =
    concat_pmap pool
      (fun name ->
        match find name with
        | None -> []
        | Some ctx ->
          let run word =
            let cfg =
              { Tls.Config.u_mode with Tls.Config.word_level_tracking = word }
            in
            let r = Context.run ctx cfg ctx.Context.u () in
            Printf.sprintf "%.2f (%d viol)"
              (Context.region_speedup ctx r)
              r.Tls.Simstats.violations
          in
          [ [ name; run false; run true ] ])
      [ "m88ksim"; "vpr_place"; "parser" ]
  in
  emit
    (Support.Table.render
       ~header:[ "benchmark"; "line tracking"; "word tracking" ]
       rows);
  emit "\n\n";
  (* 5. Processor-count scaling. *)
  emit (Support.Table.section "Ablation: processor count (C mode)");
  emit "\n";
  let rows =
    concat_pmap pool
      (fun name ->
        match find name with
        | None -> []
        | Some ctx ->
          let run procs =
            let cfg = { Tls.Config.c_mode with Tls.Config.num_procs = procs } in
            let r = Context.run ctx cfg ctx.Context.c () in
            Support.Table.float_cell 2 (Context.region_speedup ctx r)
          in
          [ [ name; run 2; run 4; run 8 ] ])
      [ "ijpeg"; "parser"; "gzip_decomp"; "gap" ]
  in
  emit
    (Support.Table.render ~header:[ "benchmark"; "2 procs"; "4 procs"; "8 procs" ] rows);
  Buffer.contents buf

let extensions ?(pool = Jobs.serial) (ctxs : Context.t list) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Support.Table.section
       "Extension: coordinated hybrid B+ (hw skips compiler-synced loads, \
        filters useless sync)");
  Buffer.add_string buf "\n(region speedup vs sequential; B+ should track max(C,H))\n";
  let rows =
    pool.Jobs.map
      (fun (ctx : Context.t) ->
        let speed cfg compiled =
          Support.Table.float_cell 2
            (Context.region_speedup ctx (Context.run ctx cfg compiled ()))
        in
        [
          ctx.Context.w.Workloads.Workload.name;
          speed Tls.Config.c_mode ctx.Context.c;
          speed Tls.Config.h_mode ctx.Context.u;
          speed Tls.Config.b_mode ctx.Context.c;
          speed Tls.Config.bplus_mode ctx.Context.c;
        ])
      ctxs
  in
  Buffer.add_string buf
    (Support.Table.render ~header:[ "benchmark"; "C"; "H"; "B"; "B+" ] rows);
  Buffer.add_string buf "\n\n";
  Buffer.add_string buf
    (Support.Table.section
       "Extension: stride value predictor vs last-value (P modes)");
  Buffer.add_string buf "\n";
  let rows =
    pool.Jobs.map
      (fun (ctx : Context.t) ->
        let run stride =
          let cfg = { Tls.Config.p_mode with Tls.Config.vpred_stride = stride } in
          let r = Context.run ctx cfg ctx.Context.u () in
          Printf.sprintf "%.2f (%d pred)"
            (Context.region_speedup ctx r)
            r.Tls.Simstats.vpred_predictions
        in
        [ ctx.Context.w.Workloads.Workload.name; run false; run true ])
      ctxs
  in
  Buffer.add_string buf
    (Support.Table.render
       ~header:[ "benchmark"; "P (last-value)"; "P (stride)" ]
       rows);
  Buffer.contents buf

let prose_checks ?(pool = Jobs.serial) (ctxs : Context.t list) =
  let header =
    [ "benchmark"; "max sig buffer"; "clones"; "code expansion"; "groups" ]
  in
  let body =
    pool.Jobs.map
      (fun (ctx : Context.t) ->
        let r = Context.run ctx Tls.Config.c_mode ctx.Context.c () in
        let clones, added, groups =
          List.fold_left
            (fun (c, a, g) (_, (s : Tlscore.Memsync.stats)) ->
              ( c + s.Tlscore.Memsync.ms_clones,
                a + s.Tlscore.Memsync.ms_instrs_added,
                g + s.Tlscore.Memsync.ms_groups ))
            (0, 0, 0) ctx.Context.c.Tlscore.Pipeline.mem_stats
        in
        let total = Ir.Prog.static_size ctx.Context.c.Tlscore.Pipeline.prog in
        [
          ctx.Context.w.Workloads.Workload.name;
          string_of_int r.Tls.Simstats.max_signal_buffer;
          string_of_int clones;
          Printf.sprintf "%.1f%%"
            (Support.Stats.percent (float_of_int added) (float_of_int total));
          string_of_int groups;
        ])
      ctxs
  in
  Support.Table.section
    "Prose checks: signal address buffer occupancy (paper: <= 10), cloning \
     code expansion (paper: < 1% average)"
  ^ "\n"
  ^ Support.Table.render ~header body
