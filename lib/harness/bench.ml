type phase = {
  ph_name : string;
  ph_wall_ns : int;
  ph_ref_wall_ns : int option;
  ph_icode_off_wall_ns : int option;
  ph_minor_words : float;
  ph_major_words : float;
  ph_cycles : int option;
  ph_commits : int option;
  ph_aborts : int option;
}

type workload_bench = { wb_name : string; wb_phases : phase list }

type matrix_bench = {
  mx_name : string;
  mx_cells : int;
  mx_jobs : int;
  mx_serial_wall_ns : int;
  mx_parallel_wall_ns : int;
}

type serve_phase = {
  sv_name : string;
  sv_requests : int;
  sv_completed : int;
  sv_shed : int;
  sv_degraded : int;
  sv_cache_hits : int;
  sv_cache_misses : int;
  sv_wall_ns : int;
  sv_p50_ns : int;
  sv_p99_ns : int;
}

type t = {
  bench_schema_version : int;
  bench_workloads : workload_bench list;
  bench_matrix : matrix_bench option;
  bench_serve : serve_phase list;
}

let schema_version = 9

let phase_names =
  [
    "frontend"; "lower"; "profile"; "pass"; "sim_seq"; "sim_tls";
    "sim_tls_sched"; "sim_tls_bounded"; "exec_tls";
  ]

(* The TLS sim phases are run on both engines since schema v7:
   [wall_ns] is the event engine (the default), [ref_wall_ns] the
   cycle-stepped oracle on the same compiled code and input.  [sim_seq]
   has a single shared implementation, so it carries no ref time.
   Schema v9 adds a third timing to the same phases: [icode_off_wall_ns],
   the event engine with the flat icode encoding disabled (the boxed
   variant dispatcher), so the committed baseline records what the
   encoding buys separately from what event-driven scheduling buys. *)
let dual_engine_phase_names = [ "sim_tls"; "sim_tls_sched"; "sim_tls_bounded" ]

(* [exec_tls] (schema v8) is not a simulation: it runs the compiled code
   for real on OCaml domains via [Specrt], so its wall time is directly
   comparable to [sim_seq]'s and to the two sim engines' wall times on
   the same compiled code and input.  Instead of a cycle count it
   carries the runtime's commit/abort counters. *)
let exec_phase_name = "exec_tls"

let serve_phase_names = [ "serve_cold"; "serve_warm"; "serve_burst" ]

(* The finite-resource configuration of the [sim_tls_bounded] phase:
   C mode with the DESIGN §12 limits tightened enough to exercise the
   degradation machinery on real workloads while staying representative
   of a small TLS implementation. *)
let bounded_cfg =
  {
    Tls.Config.c_mode with
    Tls.Config.sig_buffer_entries = 2;
    spec_lines_per_epoch = 8;
    fwd_queue_depth = 8;
  }

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

let timed_phase name f =
  let t0 = Unix.gettimeofday () in
  let g0 = Gc.quick_stat () in
  let v = f () in
  let g1 = Gc.quick_stat () in
  ( v,
    {
      ph_name = name;
      ph_wall_ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9);
      ph_ref_wall_ns = None;
      ph_icode_off_wall_ns = None;
      ph_minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
      ph_major_words = g1.Gc.major_words -. g0.Gc.major_words;
      ph_cycles = None;
      ph_commits = None;
      ph_aborts = None;
    } )

(* A sim phase reuses the simulator's own runtime counters so the JSON
   surfaces exactly what Simstats recorded, not a second measurement. *)
let sim_phase ?ref_wall ?icode_off_wall name
    (rt : Tls.Simstats.runtime_counters) ~cycles =
  {
    ph_name = name;
    ph_wall_ns = rt.Tls.Simstats.rt_wall_ns;
    ph_ref_wall_ns = ref_wall;
    ph_icode_off_wall_ns = icode_off_wall;
    ph_minor_words = rt.Tls.Simstats.rt_minor_words;
    ph_major_words = rt.Tls.Simstats.rt_major_words;
    ph_cycles = Some cycles;
    ph_commits = None;
    ph_aborts = None;
  }

let bench_workload (w : Workloads.Workload.t) =
  let source = w.Workloads.Workload.source in
  let train = w.Workloads.Workload.train_input in
  let ref_input = w.Workloads.Workload.ref_input in
  let _, frontend =
    timed_phase "frontend" (fun () -> ignore (Lang.Sema.check_source source))
  in
  let prog, lower =
    timed_phase "lower" (fun () -> Ir.Lower.compile_source source)
  in
  let _, profile =
    timed_phase "profile" (fun () ->
        let loops = Profiler.Runner.all_loops prog in
        ignore (Profiler.Runner.run prog ~input:train ~watch:loops))
  in
  let compiled, pass =
    timed_phase "pass" (fun () ->
        Tlscore.Pipeline.compile ~source ~profile_input:train
          ~memory_sync:
            (Tlscore.Pipeline.Profiled
               { dep_input = ref_input; threshold = 0.05 })
          ())
  in
  let code0 = Runtime.Code.of_prog (Tlscore.Pipeline.original ~source) in
  let seq =
    Tls.Sim.run_sequential Tls.Config.default code0 ~input:ref_input
      ~track:compiled.Tlscore.Pipeline.code.Runtime.Code.regions
  in
  (* Each TLS configuration runs on both engines: the event engine is the
     primary measurement, the cycle-stepped oracle contributes
     [ref_wall_ns] so the committed baseline records the speedup. *)
  let ref_engine cfg = { cfg with Tls.Config.engine = Tls.Config.Engine_ref } in
  let ref_wall cfg code =
    let r = Tls.Sim.run (ref_engine cfg) code ~input:ref_input () in
    r.Tls.Simstats.runtime.Tls.Simstats.rt_wall_ns
  in
  (* Third timing of the same run (schema v9): the event engine with the
     flat icode encoding off, i.e. the boxed variant dispatcher. *)
  let icode_off_wall cfg code =
    let cfg = { cfg with Tls.Config.icode = false } in
    let r = Tls.Sim.run cfg code ~input:ref_input () in
    r.Tls.Simstats.runtime.Tls.Simstats.rt_wall_ns
  in
  let tls =
    Tls.Sim.run Tls.Config.c_mode compiled.Tlscore.Pipeline.code
      ~input:ref_input ()
  in
  let tls_ref_wall = ref_wall Tls.Config.c_mode compiled.Tlscore.Pipeline.code in
  (* Same configuration with the sync scheduler on: how much of the sync
     stall the signal-hoisting / wait-sinking pass recovers. *)
  let scheduled =
    Tlscore.Pipeline.compile ~sync_sched:true ~source ~profile_input:train
      ~memory_sync:
        (Tlscore.Pipeline.Profiled { dep_input = ref_input; threshold = 0.05 })
      ()
  in
  let tls_sched =
    Tls.Sim.run Tls.Config.c_mode scheduled.Tlscore.Pipeline.code
      ~input:ref_input ()
  in
  let sched_ref_wall =
    ref_wall Tls.Config.c_mode scheduled.Tlscore.Pipeline.code
  in
  let tls_bounded =
    Tls.Sim.run bounded_cfg compiled.Tlscore.Pipeline.code ~input:ref_input ()
  in
  let bounded_ref_wall = ref_wall bounded_cfg compiled.Tlscore.Pipeline.code in
  (* Real speculative execution on domains (DESIGN §16): the same
     compiled code and input as [sim_tls], so [exec_tls.wall_ns] vs
     [sim_seq.wall_ns] is the actual-parallelism number and vs the sim
     phases' wall the engine-overhead number. *)
  let exec_r, exec_phase =
    timed_phase exec_phase_name (fun () ->
        Specrt.run
          ~opts:(Specrt.default_opts Tls.Config.c_mode)
          Tls.Config.c_mode compiled.Tlscore.Pipeline.code ~input:ref_input)
  in
  let exec_phase =
    {
      exec_phase with
      ph_commits = Some exec_r.Specrt.r_epochs_committed;
      ph_aborts = Some exec_r.Specrt.r_epochs_squashed;
    }
  in
  {
    wb_name = w.Workloads.Workload.name;
    wb_phases =
      [
        frontend;
        lower;
        profile;
        pass;
        sim_phase "sim_seq" seq.Tls.Simstats.sq_runtime
          ~cycles:seq.Tls.Simstats.sq_cycles;
        sim_phase "sim_tls" tls.Tls.Simstats.runtime ~ref_wall:tls_ref_wall
          ~icode_off_wall:
            (icode_off_wall Tls.Config.c_mode compiled.Tlscore.Pipeline.code)
          ~cycles:tls.Tls.Simstats.total_cycles;
        sim_phase "sim_tls_sched" tls_sched.Tls.Simstats.runtime
          ~ref_wall:sched_ref_wall
          ~icode_off_wall:
            (icode_off_wall Tls.Config.c_mode scheduled.Tlscore.Pipeline.code)
          ~cycles:tls_sched.Tls.Simstats.total_cycles;
        sim_phase "sim_tls_bounded" tls_bounded.Tls.Simstats.runtime
          ~ref_wall:bounded_ref_wall
          ~icode_off_wall:
            (icode_off_wall bounded_cfg compiled.Tlscore.Pipeline.code)
          ~cycles:tls_bounded.Tls.Simstats.total_cycles;
        exec_phase;
      ];
  }

(* ------------------------------------------------------------------ *)
(* JSON emission                                                       *)
(* ------------------------------------------------------------------ *)

(* Allocation counters are whole word counts that can exceed int ranges
   of other readers; emit them as integral literals. *)
let float_words f = Printf.sprintf "%.0f" f

let phase_json b (p : phase) =
  Buffer.add_string b
    (Printf.sprintf "      { \"phase\": %S, \"wall_ns\": %d" p.ph_name
       p.ph_wall_ns);
  (match p.ph_ref_wall_ns with
  | Some r -> Buffer.add_string b (Printf.sprintf ", \"ref_wall_ns\": %d" r)
  | None -> ());
  (match p.ph_icode_off_wall_ns with
  | Some r ->
    Buffer.add_string b (Printf.sprintf ", \"icode_off_wall_ns\": %d" r)
  | None -> ());
  Buffer.add_string b
    (Printf.sprintf ", \"minor_words\": %s, \"major_words\": %s"
       (float_words p.ph_minor_words)
       (float_words p.ph_major_words));
  (match p.ph_cycles with
  | Some c -> Buffer.add_string b (Printf.sprintf ", \"cycles\": %d" c)
  | None -> ());
  (match p.ph_commits with
  | Some c -> Buffer.add_string b (Printf.sprintf ", \"commits\": %d" c)
  | None -> ());
  (match p.ph_aborts with
  | Some a -> Buffer.add_string b (Printf.sprintf ", \"aborts\": %d" a)
  | None -> ());
  Buffer.add_string b " }"

let serve_phase_json b (s : serve_phase) =
  Buffer.add_string b
    (Printf.sprintf
       "    { \"phase\": %S, \"requests\": %d, \"completed\": %d, \
        \"shed\": %d, \"degraded\": %d, \"cache_hits\": %d, \
        \"cache_misses\": %d, \"wall_ns\": %d, \"p50_ns\": %d, \
        \"p99_ns\": %d }"
       s.sv_name s.sv_requests s.sv_completed s.sv_shed s.sv_degraded
       s.sv_cache_hits s.sv_cache_misses s.sv_wall_ns s.sv_p50_ns s.sv_p99_ns)

let to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf "  \"schema_version\": %d,\n" t.bench_schema_version);
  Buffer.add_string b
    "  \"units\": { \"wall\": \"ns\", \"alloc\": \"words\", \"cycles\": \
     \"sim-cycles\" },\n";
  Buffer.add_string b "  \"workloads\": [\n";
  List.iteri
    (fun i w ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf "    { \"name\": %S, \"phases\": [\n" w.wb_name);
      List.iteri
        (fun j p ->
          if j > 0 then Buffer.add_string b ",\n";
          phase_json b p)
        w.wb_phases;
      Buffer.add_string b "\n    ] }")
    t.bench_workloads;
  Buffer.add_string b "\n  ]";
  (match t.bench_matrix with
  | None -> ()
  | Some m ->
    Buffer.add_string b
      (Printf.sprintf
         ",\n\
         \  \"matrix\": { \"name\": %S, \"cells\": %d, \"jobs\": %d, \
          \"serial_wall_ns\": %d, \"parallel_wall_ns\": %d }"
         m.mx_name m.mx_cells m.mx_jobs m.mx_serial_wall_ns
         m.mx_parallel_wall_ns));
  (match t.bench_serve with
  | [] -> ()
  | phases ->
    Buffer.add_string b ",\n  \"serve\": [\n";
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_string b ",\n";
        serve_phase_json b s)
      phases;
    Buffer.add_string b "\n  ]");
  Buffer.add_string b "\n}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Schema validation (parsing lives in Harness.Json)                   *)
(* ------------------------------------------------------------------ *)

let field = Json.field
let as_int = Json.as_int
let as_num = Json.as_num
let as_str = Json.as_str
let as_arr = Json.as_arr

let require what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %s" what)

let ( let* ) = Result.bind

let check_unit obj key expected =
  let* u = require ("units." ^ key) (field obj key) in
  let* u = as_str ("units." ^ key) u in
  if String.equal u expected then Ok ()
  else
    Error
      (Printf.sprintf "units.%s is %S, wanted %S" key u expected)

let check_phase ~workload p =
  let ctx what = Printf.sprintf "%s: phases[].%s" workload what in
  let* name = require (ctx "phase") (field p "phase") in
  let* name = as_str (ctx "phase") name in
  let* wall = require (ctx "wall_ns") (field p "wall_ns") in
  let* wall = as_int (ctx "wall_ns") wall in
  let* _ =
    if wall >= 0 then Ok () else Error (ctx "wall_ns must be >= 0")
  in
  let* minor = require (ctx "minor_words") (field p "minor_words") in
  let* _ = as_num (ctx "minor_words") minor in
  let* major = require (ctx "major_words") (field p "major_words") in
  let* _ = as_num (ctx "major_words") major in
  let sim =
    List.mem name [ "sim_seq"; "sim_tls"; "sim_tls_sched"; "sim_tls_bounded" ]
  in
  let dual = List.mem name dual_engine_phase_names in
  let exec = String.equal name exec_phase_name in
  (* Commit/abort counters are the exec phase's payload: required there
     (a run that committed nothing measured nothing), forbidden on every
     other phase. *)
  let counter key =
    match field p key with
    | Some v ->
      if not exec then
        Error
          (Printf.sprintf "%s: %s phase must not carry %s" workload name key)
      else
        let* v = as_int (ctx key) v in
        if v >= 0 then Ok () else Error (ctx key ^ " must be >= 0")
    | None ->
      if exec then
        Error (Printf.sprintf "%s: %s phase lacks %s" workload name key)
      else Ok ()
  in
  let* _ = counter "commits" in
  let* _ = counter "aborts" in
  (* [ref_wall_ns] (v7) and [icode_off_wall_ns] (v9) ride exactly on the
     dual-engine TLS sim phases and nowhere else. *)
  let dual_wall key =
    match field p key with
    | Some r ->
      if not dual then
        Error
          (Printf.sprintf "%s: %s phase must not carry %s" workload name key)
      else
        let* r = as_int (ctx key) r in
        if r >= 0 then Ok () else Error (ctx key ^ " must be >= 0")
    | None ->
      if dual then
        Error (Printf.sprintf "%s: %s phase lacks %s" workload name key)
      else Ok ()
  in
  let* _ = dual_wall "ref_wall_ns" in
  let* _ = dual_wall "icode_off_wall_ns" in
  match field p "cycles" with
  | Some c ->
    if exec then
      (* exec_tls is real execution: there is no simulated cycle count. *)
      Error
        (Printf.sprintf "%s: %s phase must not carry cycles" workload name)
    else
      let* cycles = as_int (ctx "cycles") c in
      if cycles > 0 then Ok (name, true)
      else Error (ctx "cycles must be > 0")
  | None ->
    if sim then Error (Printf.sprintf "%s: %s phase lacks cycles" workload name)
    else Ok (name, false)

let check_workload w =
  let* name = require "workloads[].name" (field w "name") in
  let* name = as_str "workloads[].name" name in
  let* phases = require (name ^ ".phases") (field w "phases") in
  let* phases = as_arr (name ^ ".phases") phases in
  let* checked =
    List.fold_left
      (fun acc p ->
        let* acc = acc in
        let* c = check_phase ~workload:name p in
        Ok (c :: acc))
      (Ok []) phases
  in
  let have = List.rev_map fst checked in
  let missing = List.filter (fun p -> not (List.mem p have)) phase_names in
  if missing <> [] then
    Error
      (Printf.sprintf "%s: missing phase(s) %s" name
         (String.concat ", " missing))
  else Ok (name, have)

let check_matrix m =
  let* name = require "matrix.name" (field m "name") in
  let* name = as_str "matrix.name" name in
  let* cells = require "matrix.cells" (field m "cells") in
  let* cells = as_int "matrix.cells" cells in
  let* jobs = require "matrix.jobs" (field m "jobs") in
  let* jobs = as_int "matrix.jobs" jobs in
  let* serial = require "matrix.serial_wall_ns" (field m "serial_wall_ns") in
  let* _ = as_int "matrix.serial_wall_ns" serial in
  let* par = require "matrix.parallel_wall_ns" (field m "parallel_wall_ns") in
  let* _ = as_int "matrix.parallel_wall_ns" par in
  if cells <= 0 then Error "matrix.cells must be > 0"
  else if jobs < 1 then Error "matrix.jobs must be >= 1"
  else Ok (name, cells)

(* A serve phase (DESIGN §14): one load-harness run of the compile
   service.  Counts are structural (the request mix is fixed by the
   harness), so the summary can pin them; latencies are timing and are
   only range-checked. *)
let check_serve_phase p =
  let* name = require "serve[].phase" (field p "phase") in
  let* name = as_str "serve[].phase" name in
  let ctx what = Printf.sprintf "serve.%s.%s" name what in
  let* _ =
    if List.mem name serve_phase_names then Ok ()
    else
      Error
        (Printf.sprintf "unknown serve phase %S (want %s)" name
           (String.concat ", " serve_phase_names))
  in
  let int_field key =
    let* v = require (ctx key) (field p key) in
    let* v = as_int (ctx key) v in
    if v >= 0 then Ok v else Error (ctx key ^ " must be >= 0")
  in
  let* requests = int_field "requests" in
  let* completed = int_field "completed" in
  let* shed = int_field "shed" in
  let* degraded = int_field "degraded" in
  let* hits = int_field "cache_hits" in
  let* misses = int_field "cache_misses" in
  let* _ = int_field "wall_ns" in
  let* p50 = int_field "p50_ns" in
  let* p99 = int_field "p99_ns" in
  let* _ =
    if requests > 0 then Ok () else Error (ctx "requests" ^ " must be > 0")
  in
  let* _ =
    if completed + shed = requests then Ok ()
    else
      Error
        (Printf.sprintf "%s: completed (%d) + shed (%d) must equal requests (%d)"
           name completed shed requests)
  in
  let* _ =
    if degraded <= completed then Ok ()
    else Error (ctx "degraded" ^ " exceeds completed")
  in
  let* _ =
    if hits + misses <= completed then Ok ()
    else Error (ctx "cache_hits+cache_misses" ^ " exceed completed")
  in
  let* _ =
    if p50 <= p99 then Ok ()
    else Error (ctx "p50_ns" ^ " must be <= p99_ns")
  in
  Ok (name, requests, shed, hits)

(* Validate, and summarize the structure (never the timing values) so an
   expect test over the summary stays stable across regenerations. *)
let validate_json j =
  let* v = require "schema_version" (field j "schema_version") in
  let* v = as_int "schema_version" v in
  let* _ =
    if v = schema_version then Ok ()
    else Error (Printf.sprintf "schema_version is %d, wanted %d" v schema_version)
  in
  let* units = require "units" (field j "units") in
  let* _ = check_unit units "wall" "ns" in
  let* _ = check_unit units "alloc" "words" in
  let* _ = check_unit units "cycles" "sim-cycles" in
  let* workloads = require "workloads" (field j "workloads") in
  let* workloads = as_arr "workloads" workloads in
  let* _ = if workloads = [] then Error "workloads is empty" else Ok () in
  let* checked =
    List.fold_left
      (fun acc w ->
        let* acc = acc in
        let* c = check_workload w in
        Ok (c :: acc))
      (Ok []) workloads
  in
  let checked = List.rev checked in
  let* matrix =
    match field j "matrix" with
    | None -> Ok None
    | Some m ->
      let* m = check_matrix m in
      Ok (Some m)
  in
  let* serve =
    match field j "serve" with
    | None -> Ok []
    | Some s ->
      let* phases = as_arr "serve" s in
      let* checked =
        List.fold_left
          (fun acc p ->
            let* acc = acc in
            let* c = check_serve_phase p in
            Ok (c :: acc))
          (Ok []) phases
      in
      let checked = List.rev checked in
      let have = List.map (fun (n, _, _, _) -> n) checked in
      let missing =
        List.filter (fun p -> not (List.mem p have)) serve_phase_names
      in
      if missing <> [] then
        Error
          (Printf.sprintf "serve: missing phase(s) %s"
             (String.concat ", " missing))
      else Ok checked
  in
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "schema_version %d\n" schema_version);
  Buffer.add_string b "units wall=ns alloc=words cycles=sim-cycles\n";
  Buffer.add_string b
    (Printf.sprintf "dual-engine wall (event + ref oracle + icode off): %s\n"
       (String.concat " " dual_engine_phase_names));
  Buffer.add_string b
    (Printf.sprintf "real-exec wall + commit/abort counters: %s\n"
       exec_phase_name);
  List.iter
    (fun (name, phases) ->
      Buffer.add_string b
        (Printf.sprintf "workload %-14s %s\n" name (String.concat " " phases)))
    checked;
  (match matrix with
  | Some (name, cells) ->
    Buffer.add_string b
      (Printf.sprintf "matrix %s: %d cells, serial and parallel wall time\n"
         name cells)
  | None -> ());
  List.iter
    (fun (name, requests, shed, hits) ->
      Buffer.add_string b
        (Printf.sprintf "serve %-11s requests=%d shed=%d cache_hits=%d\n" name
           requests shed hits))
    serve;
  Buffer.add_string b
    (Printf.sprintf "ok: %d workload(s) cover all %d phases\n"
       (List.length checked) (List.length phase_names));
  Ok (Buffer.contents b)

let validate_string s =
  match Json.parse s with
  | j -> validate_json j
  | exception Json.Parse_error msg -> Error ("JSON parse error: " ^ msg)

let validate_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  validate_string s

(* ------------------------------------------------------------------ *)
(* Baseline comparison — the perf-regression gate                      *)
(* ------------------------------------------------------------------ *)

(* `mrvcc benchdiff OLD NEW` compares a freshly measured baseline
   against the committed one in two tiers:

   - deterministic counters must be EXACTLY equal — the simulated cycle
     counts of every sim phase, the real runtime's committed-epoch
     counts, the matrix cell/job counts and the serve request mix are
     functions of the code, not of the machine, so any drift is a
     semantic change that must arrive with a regenerated baseline;
   - wall times are one-shot measurements on a shared machine, so they
     are gated per phase name on the geometric mean across workloads
     with a relative tolerance (aggregating first keeps a single noisy
     workload from tripping the gate, while a real regression moves the
     mean).  Scheduling-dependent counters (exec_tls aborts) and serve
     latencies are deliberately not gated. *)

type baseline = {
  (* (workload, phase) -> wall, ref_wall, icode_off_wall, cycles, commits *)
  bl_phases :
    ((string * string) * (int * int option * int option * int option * int option))
    list;
  bl_matrix : (int * int) option;  (* cells, jobs *)
  bl_serve : (string * int) list;  (* serve phase -> request count *)
}

let baseline_of_json j =
  let* workloads = require "workloads" (field j "workloads") in
  let* workloads = as_arr "workloads" workloads in
  let* phases =
    List.fold_left
      (fun acc w ->
        let* acc = acc in
        let* name = require "workloads[].name" (field w "name") in
        let* name = as_str "workloads[].name" name in
        let* ps = require (name ^ ".phases") (field w "phases") in
        let* ps = as_arr (name ^ ".phases") ps in
        List.fold_left
          (fun acc p ->
            let* acc = acc in
            let* ph = require (name ^ ".phase") (field p "phase") in
            let* ph = as_str (name ^ ".phase") ph in
            let ctx key = Printf.sprintf "%s.%s.%s" name ph key in
            let* wall = require (ctx "wall_ns") (field p "wall_ns") in
            let* wall = as_int (ctx "wall_ns") wall in
            let opt key =
              match field p key with
              | None -> Ok None
              | Some v ->
                let* v = as_int (ctx key) v in
                Ok (Some v)
            in
            let* rw = opt "ref_wall_ns" in
            let* iw = opt "icode_off_wall_ns" in
            let* cy = opt "cycles" in
            let* cm = opt "commits" in
            Ok (((name, ph), (wall, rw, iw, cy, cm)) :: acc))
          (Ok acc) ps)
      (Ok []) workloads
  in
  let* matrix =
    match field j "matrix" with
    | None -> Ok None
    | Some m ->
      let* c = require "matrix.cells" (field m "cells") in
      let* c = as_int "matrix.cells" c in
      let* jb = require "matrix.jobs" (field m "jobs") in
      let* jb = as_int "matrix.jobs" jb in
      Ok (Some (c, jb))
  in
  let* serve =
    match field j "serve" with
    | None -> Ok []
    | Some s ->
      let* s = as_arr "serve" s in
      List.fold_left
        (fun acc p ->
          let* acc = acc in
          let* n = require "serve[].phase" (field p "phase") in
          let* n = as_str "serve[].phase" n in
          let* r = require (n ^ ".requests") (field p "requests") in
          let* r = as_int (n ^ ".requests") r in
          Ok ((n, r) :: acc))
        (Ok []) s
  in
  Ok
    {
      bl_phases = List.rev phases;
      bl_matrix = matrix;
      bl_serve = List.rev serve;
    }

let geomean = function
  | [] -> 0.0
  | l ->
    exp
      (List.fold_left (fun a v -> a +. log (float_of_int (max 1 v))) 0.0 l
      /. float_of_int (List.length l))

let compare_baselines ~tolerance (old_b : baseline) (new_b : baseline) =
  let problems = ref [] in
  let report = Buffer.create 1024 in
  let problem fmt =
    Printf.ksprintf (fun s -> problems := s :: !problems) fmt
  in
  (* Same workload x phase grid on both sides. *)
  let keys b = List.map fst b.bl_phases in
  List.iter
    (fun (w, p) ->
      if not (List.mem_assoc (w, p) new_b.bl_phases) then
        problem "%s/%s present in old baseline, missing in new" w p)
    (keys old_b);
  List.iter
    (fun (w, p) ->
      if not (List.mem_assoc (w, p) old_b.bl_phases) then
        problem "%s/%s present in new baseline, missing in old" w p)
    (keys new_b);
  let shared =
    List.filter (fun k -> List.mem_assoc k new_b.bl_phases) (keys old_b)
  in
  (* Tier 1: deterministic counters, exact. *)
  List.iter
    (fun ((w, p) as k) ->
      let _, _, _, ocy, ocm = List.assoc k old_b.bl_phases in
      let _, _, _, ncy, ncm = List.assoc k new_b.bl_phases in
      (match (ocy, ncy) with
      | Some a, Some b when a <> b ->
        problem "%s/%s: cycles %d -> %d (deterministic counter changed)" w p a
          b
      | Some _, None | None, Some _ ->
        problem "%s/%s: cycles present on one side only" w p
      | _ -> ());
      match (ocm, ncm) with
      | Some a, Some b when a <> b ->
        problem "%s/%s: commits %d -> %d (deterministic counter changed)" w p
          a b
      | Some _, None | None, Some _ ->
        problem "%s/%s: commits present on one side only" w p
      | _ -> ())
    shared;
  (match (old_b.bl_matrix, new_b.bl_matrix) with
  | Some (oc, oj), Some (nc, nj) ->
    if oc <> nc then problem "matrix.cells %d -> %d" oc nc;
    if oj <> nj then problem "matrix.jobs %d -> %d" oj nj
  | Some _, None -> problem "matrix section disappeared"
  | None, Some _ -> ()  (* a new section is not a regression *)
  | None, None -> ());
  List.iter
    (fun (n, r) ->
      match List.assoc_opt n new_b.bl_serve with
      | Some r' when r <> r' -> problem "serve.%s.requests %d -> %d" n r r'
      | None when new_b.bl_serve <> [] ->
        problem "serve phase %s disappeared" n
      | _ -> ())
    old_b.bl_serve;
  (* Tier 2: wall times, per-phase geomean across workloads with a
     relative tolerance. *)
  let phase_names_in b =
    List.sort_uniq compare (List.map (fun ((_, p), _) -> p) b.bl_phases)
  in
  let walls b pick p =
    List.filter_map
      (fun ((_, p'), v) -> if String.equal p p' then pick v else None)
      b.bl_phases
  in
  let gate kind pick p =
    let o = walls old_b pick p and n = walls new_b pick p in
    if o <> [] && n <> [] then begin
      let go = geomean o and gn = geomean n in
      let ratio = if go > 0.0 then gn /. go else 1.0 in
      let verdict = if ratio <= 1.0 +. tolerance then "ok" else "REGRESSION" in
      Buffer.add_string report
        (Printf.sprintf "%-16s %-18s %10.3f ms -> %10.3f ms  x%.2f  %s\n" p
           kind (go /. 1e6) (gn /. 1e6) ratio verdict);
      if ratio > 1.0 +. tolerance then
        problem "%s %s geomean regressed x%.2f (tolerance x%.2f)" p kind
          ratio (1.0 +. tolerance)
    end
  in
  List.iter
    (fun p ->
      gate "wall" (fun (w, _, _, _, _) -> Some w) p;
      gate "ref_wall" (fun (_, r, _, _, _) -> r) p;
      gate "icode_off_wall" (fun (_, _, i, _, _) -> i) p)
    (phase_names_in old_b);
  Buffer.add_string report
    (Printf.sprintf
       "counters compared on %d workload-phase cells; wall tolerance +%.0f%%\n"
       (List.length shared) (tolerance *. 100.));
  match !problems with
  | [] -> Ok (Buffer.contents report)
  | ps ->
    Error
      (Buffer.contents report ^ "\n"
      ^ String.concat "\n" (List.rev ps))

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let compare_strings ~tolerance ?(old_name = "old baseline")
    ?(new_name = "new baseline") old_s new_s =
  let load what s =
    (* Schema-validate first so the comparison never reads a malformed
       document, then extract the comparison view. *)
    let* _ =
      Result.map_error (fun e -> Printf.sprintf "%s: %s" what e)
        (validate_string s)
    in
    match Json.parse s with
    | j ->
      Result.map_error
        (fun e -> Printf.sprintf "%s: %s" what e)
        (baseline_of_json j)
    | exception Json.Parse_error msg ->
      Error (Printf.sprintf "%s: JSON parse error: %s" what msg)
  in
  let* old_b = load old_name old_s in
  let* new_b = load new_name new_s in
  compare_baselines ~tolerance old_b new_b

let compare_files ~tolerance old_path new_path =
  compare_strings ~tolerance ~old_name:old_path ~new_name:new_path
    (read_file old_path) (read_file new_path)

(* ------------------------------------------------------------------ *)
(* Atomic file writes                                                  *)
(* ------------------------------------------------------------------ *)

(* Write-to-temp + rename in the destination directory: a reader (or a
   crash/kill at any point) sees either the complete old file or the
   complete new one, never a truncated BENCH_*.json.  [?before_rename]
   exists for the kill-mid-write test, which parks the writer between
   the temp write and the rename. *)
let write_file_atomic ?(before_rename = fun () -> ()) path contents =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (try
     output_string oc contents;
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  before_rename ();
  try Unix.rename tmp path
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e
