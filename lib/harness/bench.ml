type phase = {
  ph_name : string;
  ph_wall_ns : int;
  ph_minor_words : float;
  ph_major_words : float;
  ph_cycles : int option;
}

type workload_bench = { wb_name : string; wb_phases : phase list }

type matrix_bench = {
  mx_name : string;
  mx_cells : int;
  mx_jobs : int;
  mx_serial_wall_ns : int;
  mx_parallel_wall_ns : int;
}

type t = {
  bench_schema_version : int;
  bench_workloads : workload_bench list;
  bench_matrix : matrix_bench option;
}

let schema_version = 5

let phase_names =
  [
    "frontend"; "lower"; "profile"; "pass"; "sim_seq"; "sim_tls";
    "sim_tls_sched"; "sim_tls_bounded";
  ]

(* The finite-resource configuration of the [sim_tls_bounded] phase:
   C mode with the DESIGN §12 limits tightened enough to exercise the
   degradation machinery on real workloads while staying representative
   of a small TLS implementation. *)
let bounded_cfg =
  {
    Tls.Config.c_mode with
    Tls.Config.sig_buffer_entries = 2;
    spec_lines_per_epoch = 8;
    fwd_queue_depth = 8;
  }

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

let timed_phase name f =
  let t0 = Unix.gettimeofday () in
  let g0 = Gc.quick_stat () in
  let v = f () in
  let g1 = Gc.quick_stat () in
  ( v,
    {
      ph_name = name;
      ph_wall_ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9);
      ph_minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
      ph_major_words = g1.Gc.major_words -. g0.Gc.major_words;
      ph_cycles = None;
    } )

(* A sim phase reuses the simulator's own runtime counters so the JSON
   surfaces exactly what Simstats recorded, not a second measurement. *)
let sim_phase name (rt : Tls.Simstats.runtime_counters) ~cycles =
  {
    ph_name = name;
    ph_wall_ns = rt.Tls.Simstats.rt_wall_ns;
    ph_minor_words = rt.Tls.Simstats.rt_minor_words;
    ph_major_words = rt.Tls.Simstats.rt_major_words;
    ph_cycles = Some cycles;
  }

let bench_workload (w : Workloads.Workload.t) =
  let source = w.Workloads.Workload.source in
  let train = w.Workloads.Workload.train_input in
  let ref_input = w.Workloads.Workload.ref_input in
  let _, frontend =
    timed_phase "frontend" (fun () -> ignore (Lang.Sema.check_source source))
  in
  let prog, lower =
    timed_phase "lower" (fun () -> Ir.Lower.compile_source source)
  in
  let _, profile =
    timed_phase "profile" (fun () ->
        let loops = Profiler.Runner.all_loops prog in
        ignore (Profiler.Runner.run prog ~input:train ~watch:loops))
  in
  let compiled, pass =
    timed_phase "pass" (fun () ->
        Tlscore.Pipeline.compile ~source ~profile_input:train
          ~memory_sync:
            (Tlscore.Pipeline.Profiled
               { dep_input = ref_input; threshold = 0.05 })
          ())
  in
  let code0 = Runtime.Code.of_prog (Tlscore.Pipeline.original ~source) in
  let seq =
    Tls.Sim.run_sequential Tls.Config.default code0 ~input:ref_input
      ~track:compiled.Tlscore.Pipeline.code.Runtime.Code.regions
  in
  let tls =
    Tls.Sim.run Tls.Config.c_mode compiled.Tlscore.Pipeline.code
      ~input:ref_input ()
  in
  (* Same configuration with the sync scheduler on: how much of the sync
     stall the signal-hoisting / wait-sinking pass recovers. *)
  let scheduled =
    Tlscore.Pipeline.compile ~sync_sched:true ~source ~profile_input:train
      ~memory_sync:
        (Tlscore.Pipeline.Profiled { dep_input = ref_input; threshold = 0.05 })
      ()
  in
  let tls_sched =
    Tls.Sim.run Tls.Config.c_mode scheduled.Tlscore.Pipeline.code
      ~input:ref_input ()
  in
  let tls_bounded =
    Tls.Sim.run bounded_cfg compiled.Tlscore.Pipeline.code ~input:ref_input ()
  in
  {
    wb_name = w.Workloads.Workload.name;
    wb_phases =
      [
        frontend;
        lower;
        profile;
        pass;
        sim_phase "sim_seq" seq.Tls.Simstats.sq_runtime
          ~cycles:seq.Tls.Simstats.sq_cycles;
        sim_phase "sim_tls" tls.Tls.Simstats.runtime
          ~cycles:tls.Tls.Simstats.total_cycles;
        sim_phase "sim_tls_sched" tls_sched.Tls.Simstats.runtime
          ~cycles:tls_sched.Tls.Simstats.total_cycles;
        sim_phase "sim_tls_bounded" tls_bounded.Tls.Simstats.runtime
          ~cycles:tls_bounded.Tls.Simstats.total_cycles;
      ];
  }

(* ------------------------------------------------------------------ *)
(* JSON emission                                                       *)
(* ------------------------------------------------------------------ *)

(* Allocation counters are whole word counts that can exceed int ranges
   of other readers; emit them as integral literals. *)
let float_words f = Printf.sprintf "%.0f" f

let phase_json b (p : phase) =
  Buffer.add_string b
    (Printf.sprintf
       "      { \"phase\": %S, \"wall_ns\": %d, \"minor_words\": %s, \
        \"major_words\": %s"
       p.ph_name p.ph_wall_ns (float_words p.ph_minor_words)
       (float_words p.ph_major_words));
  (match p.ph_cycles with
  | Some c -> Buffer.add_string b (Printf.sprintf ", \"cycles\": %d" c)
  | None -> ());
  Buffer.add_string b " }"

let to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf "  \"schema_version\": %d,\n" t.bench_schema_version);
  Buffer.add_string b
    "  \"units\": { \"wall\": \"ns\", \"alloc\": \"words\", \"cycles\": \
     \"sim-cycles\" },\n";
  Buffer.add_string b "  \"workloads\": [\n";
  List.iteri
    (fun i w ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf "    { \"name\": %S, \"phases\": [\n" w.wb_name);
      List.iteri
        (fun j p ->
          if j > 0 then Buffer.add_string b ",\n";
          phase_json b p)
        w.wb_phases;
      Buffer.add_string b "\n    ] }")
    t.bench_workloads;
  Buffer.add_string b "\n  ]";
  (match t.bench_matrix with
  | None -> ()
  | Some m ->
    Buffer.add_string b
      (Printf.sprintf
         ",\n\
         \  \"matrix\": { \"name\": %S, \"cells\": %d, \"jobs\": %d, \
          \"serial_wall_ns\": %d, \"parallel_wall_ns\": %d }"
         m.mx_name m.mx_cells m.mx_jobs m.mx_serial_wall_ns
         m.mx_parallel_wall_ns));
  Buffer.add_string b "\n}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* JSON parsing (hand-rolled: the container has no JSON library)       *)
(* ------------------------------------------------------------------ *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some 'n' -> advance (); Buffer.add_char b '\n'; go ()
        | Some 't' -> advance (); Buffer.add_char b '\t'; go ()
        | Some (('"' | '\\' | '/') as c) -> advance (); Buffer.add_char b c; go ()
        | _ -> fail "unsupported escape")
      | Some c ->
        advance ();
        Buffer.add_char b c;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> f
    | None -> fail ("bad number " ^ text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); Jobj [])
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Jobj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); Jarr [])
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Jarr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ -> Jnum (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Schema validation                                                   *)
(* ------------------------------------------------------------------ *)

let field obj key =
  match obj with
  | Jobj members -> List.assoc_opt key members
  | _ -> None

let require what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %s" what)

let as_int what = function
  | Jnum f when Float.is_integer f -> Ok (int_of_float f)
  | _ -> Error (Printf.sprintf "%s must be an integer" what)

let as_num what = function
  | Jnum f -> Ok f
  | _ -> Error (Printf.sprintf "%s must be a number" what)

let as_str what = function
  | Jstr s -> Ok s
  | _ -> Error (Printf.sprintf "%s must be a string" what)

let as_arr what = function
  | Jarr l -> Ok l
  | _ -> Error (Printf.sprintf "%s must be an array" what)

let ( let* ) = Result.bind

let check_unit obj key expected =
  let* u = require ("units." ^ key) (field obj key) in
  let* u = as_str ("units." ^ key) u in
  if String.equal u expected then Ok ()
  else
    Error
      (Printf.sprintf "units.%s is %S, wanted %S" key u expected)

let check_phase ~workload p =
  let ctx what = Printf.sprintf "%s: phases[].%s" workload what in
  let* name = require (ctx "phase") (field p "phase") in
  let* name = as_str (ctx "phase") name in
  let* wall = require (ctx "wall_ns") (field p "wall_ns") in
  let* wall = as_int (ctx "wall_ns") wall in
  let* _ =
    if wall >= 0 then Ok () else Error (ctx "wall_ns must be >= 0")
  in
  let* minor = require (ctx "minor_words") (field p "minor_words") in
  let* _ = as_num (ctx "minor_words") minor in
  let* major = require (ctx "major_words") (field p "major_words") in
  let* _ = as_num (ctx "major_words") major in
  let sim =
    List.mem name [ "sim_seq"; "sim_tls"; "sim_tls_sched"; "sim_tls_bounded" ]
  in
  match field p "cycles" with
  | Some c ->
    let* cycles = as_int (ctx "cycles") c in
    if cycles > 0 then Ok (name, true)
    else Error (ctx "cycles must be > 0")
  | None ->
    if sim then Error (Printf.sprintf "%s: %s phase lacks cycles" workload name)
    else Ok (name, false)

let check_workload w =
  let* name = require "workloads[].name" (field w "name") in
  let* name = as_str "workloads[].name" name in
  let* phases = require (name ^ ".phases") (field w "phases") in
  let* phases = as_arr (name ^ ".phases") phases in
  let* checked =
    List.fold_left
      (fun acc p ->
        let* acc = acc in
        let* c = check_phase ~workload:name p in
        Ok (c :: acc))
      (Ok []) phases
  in
  let have = List.rev_map fst checked in
  let missing = List.filter (fun p -> not (List.mem p have)) phase_names in
  if missing <> [] then
    Error
      (Printf.sprintf "%s: missing phase(s) %s" name
         (String.concat ", " missing))
  else Ok (name, have)

let check_matrix m =
  let* name = require "matrix.name" (field m "name") in
  let* name = as_str "matrix.name" name in
  let* cells = require "matrix.cells" (field m "cells") in
  let* cells = as_int "matrix.cells" cells in
  let* jobs = require "matrix.jobs" (field m "jobs") in
  let* jobs = as_int "matrix.jobs" jobs in
  let* serial = require "matrix.serial_wall_ns" (field m "serial_wall_ns") in
  let* _ = as_int "matrix.serial_wall_ns" serial in
  let* par = require "matrix.parallel_wall_ns" (field m "parallel_wall_ns") in
  let* _ = as_int "matrix.parallel_wall_ns" par in
  if cells <= 0 then Error "matrix.cells must be > 0"
  else if jobs < 1 then Error "matrix.jobs must be >= 1"
  else Ok (name, cells)

(* Validate, and summarize the structure (never the timing values) so an
   expect test over the summary stays stable across regenerations. *)
let validate_json j =
  let* v = require "schema_version" (field j "schema_version") in
  let* v = as_int "schema_version" v in
  let* _ =
    if v = schema_version then Ok ()
    else Error (Printf.sprintf "schema_version is %d, wanted %d" v schema_version)
  in
  let* units = require "units" (field j "units") in
  let* _ = check_unit units "wall" "ns" in
  let* _ = check_unit units "alloc" "words" in
  let* _ = check_unit units "cycles" "sim-cycles" in
  let* workloads = require "workloads" (field j "workloads") in
  let* workloads = as_arr "workloads" workloads in
  let* _ = if workloads = [] then Error "workloads is empty" else Ok () in
  let* checked =
    List.fold_left
      (fun acc w ->
        let* acc = acc in
        let* c = check_workload w in
        Ok (c :: acc))
      (Ok []) workloads
  in
  let checked = List.rev checked in
  let* matrix =
    match field j "matrix" with
    | None -> Ok None
    | Some m ->
      let* m = check_matrix m in
      Ok (Some m)
  in
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "schema_version %d\n" schema_version);
  Buffer.add_string b "units wall=ns alloc=words cycles=sim-cycles\n";
  List.iter
    (fun (name, phases) ->
      Buffer.add_string b
        (Printf.sprintf "workload %-14s %s\n" name (String.concat " " phases)))
    checked;
  (match matrix with
  | Some (name, cells) ->
    Buffer.add_string b
      (Printf.sprintf "matrix %s: %d cells, serial and parallel wall time\n"
         name cells)
  | None -> ());
  Buffer.add_string b
    (Printf.sprintf "ok: %d workload(s) cover all %d phases\n"
       (List.length checked) (List.length phase_names));
  Ok (Buffer.contents b)

let validate_string s =
  match parse_json s with
  | j -> validate_json j
  | exception Parse_error msg -> Error ("JSON parse error: " ^ msg)

let validate_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  validate_string s

(* ------------------------------------------------------------------ *)
(* Atomic file writes                                                  *)
(* ------------------------------------------------------------------ *)

(* Write-to-temp + rename in the destination directory: a reader (or a
   crash/kill at any point) sees either the complete old file or the
   complete new one, never a truncated BENCH_*.json.  [?before_rename]
   exists for the kill-mid-write test, which parks the writer between
   the temp write and the rename. *)
let write_file_atomic ?(before_rename = fun () -> ()) path contents =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (try
     output_string oc contents;
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  before_rename ();
  try Unix.rename tmp path
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e
