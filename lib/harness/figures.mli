(** One generator per table/figure of the paper's evaluation.  Each
    returns the rendered text (the harness's equivalent of the plotted
    figure); EXPERIMENTS.md records these against the paper's values. *)

(** Every generator that consumes contexts takes an optional [pool]
    (default {!Jobs.serial}): its per-benchmark cells are independent, so
    a parallel pool computes the same bytes faster.  Each context's
    mutable oracle cache is only ever touched by the job that owns that
    context within one figure. *)

val table1 : unit -> string

(** Fig. 2: region slot breakdown, U vs O (perfect memory communication). *)
val fig2 : ?pool:Jobs.t -> Context.t list -> string

(** Fig. 6: limit study — perfect prediction of loads whose dependence
    frequency exceeds 25/15/5%. *)
val fig6 : ?pool:Jobs.t -> Context.t list -> string

(** Fig. 7: dependence distance distribution (ref-input profiles). *)
val fig7 : ?pool:Jobs.t -> Context.t list -> string

(** Fig. 8: compiler-inserted synchronization, train vs ref profiling
    (U/T/C region breakdowns). *)
val fig8 : ?pool:Jobs.t -> Context.t list -> string

(** Fig. 9: cost of synchronization — C vs E (perfect forwarding) vs L
    (stall until the previous epoch completes). *)
val fig9 : ?pool:Jobs.t -> Context.t list -> string

(** Fig. 10: compiler vs hardware — U/C/P/H/B region breakdowns. *)
val fig10 : ?pool:Jobs.t -> Context.t list -> string

(** Fig. 11: violated loads attributed to compiler/hardware marking under
    stall modes U/C/H/B (all on the C-compiled binary). *)
val fig11 : ?pool:Jobs.t -> Context.t list -> string

(** Fig. 12: whole-program speedups, U/C/H/B. *)
val fig12 : ?pool:Jobs.t -> Context.t list -> string

(** Table 2: coverage and region/sequential/program speedups. *)
val table2 : ?pool:Jobs.t -> Context.t list -> string

(** Extra diagnostics the paper states in prose: signal-address-buffer
    occupancy (§2.2: never more than 10 entries), cloning code expansion
    (§2.3: below 1% on average). *)
val prose_checks : ?pool:Jobs.t -> Context.t list -> string

(** Ablations of the design choices DESIGN.md §6 calls out: eager vs
    latch-only signal placement (on the early-forwarding benchmarks),
    hardware-table reset period, and cache-line size sensitivity of the
    false-sharing benchmark. *)
val ablations : ?pool:Jobs.t -> Context.t list -> string

(** The paper's §4.2/§5 future-work directions, implemented: the
    coordinated hybrid B+ (hardware skips compiler-synchronized loads and
    filters rarely-matching compiler sync) against C/H/B, and the stride
    value predictor against the paper's last-value P. *)
val extensions : ?pool:Jobs.t -> Context.t list -> string
