(** Machine-readable performance baseline: the wall time and allocation
    of each pipeline phase per workload, emitted as schema-versioned JSON
    (committed as [BENCH_PR4.json]; [BENCH_PR3.json] is the schema-v3
    trajectory record) so later PRs have a perf trajectory to regress
    against.

    The compile-and-simulate phases mirror the Bechamel microbenchmarks
    in [bench/main.ml]: frontend (lex+parse+check), lower (to IR),
    profile (loop+dependence profiling), pass (full pipeline with memory
    sync), sim_seq (sequential timing run), sim_tls (TLS run, C mode)
    and sim_tls_bounded (TLS run, C mode under the finite-resource
    limits of {!bounded_cfg}).  The sim phases surface the simulator's
    own {!Tls.Simstats.runtime_counters} plus their deterministic cycle
    counts.  Schema v8 adds [exec_tls]: the same compiled code and input
    run for real on OCaml domains by [Specrt], carrying the runtime's
    commit/abort counters instead of a cycle count, so the baseline
    records actual parallel wall time next to both simulators'.

    Numbers are one-shot measurements (a trajectory record, not a
    statistically analyzed benchmark — Bechamel part 1 covers that); the
    JSON {e structure} is what the schema expect test pins. *)

(** One timed phase.  [ph_cycles] is the deterministic simulated cycle
    count, present only for the sim phases.  [ph_ref_wall_ns] (schema v7)
    is the cycle-stepped oracle engine's wall time on the same run,
    present only for the TLS sim phases ({!dual_engine_phase_names});
    [ph_wall_ns] on those phases is the event engine.
    [ph_icode_off_wall_ns] (schema v9) rides on the same phases: the
    event engine with the flat icode encoding disabled (the boxed
    variant dispatcher), so the baseline separates what the encoding
    buys from what event-driven scheduling buys.  [ph_commits] and
    [ph_aborts] (schema v8) are the speculative runtime's epoch counters,
    present exactly on the [exec_tls] phase (and forbidden elsewhere —
    as [ph_cycles] is forbidden on [exec_tls]). *)
type phase = {
  ph_name : string;
  ph_wall_ns : int;
  ph_ref_wall_ns : int option;
  ph_icode_off_wall_ns : int option;
  ph_minor_words : float;
  ph_major_words : float;
  ph_cycles : int option;
  ph_commits : int option;
  ph_aborts : int option;
}

type workload_bench = { wb_name : string; wb_phases : phase list }

(** Serial vs parallel wall time of one run of a cell matrix (the chaos
    matrix, timed by the [mrvcc bench] driver). *)
type matrix_bench = {
  mx_name : string;
  mx_cells : int;
  mx_jobs : int;
  mx_serial_wall_ns : int;
  mx_parallel_wall_ns : int;
}

(** One load-harness run of the compile service (DESIGN §14): request
    counts, shedding/degradation/cache counters and latency percentiles
    for one of the [serve_cold]/[serve_warm]/[serve_burst] phases.  The
    count fields are structural (the harness fixes the request mix), so
    the validation summary pins them; latencies are timing. *)
type serve_phase = {
  sv_name : string;
  sv_requests : int;
  sv_completed : int;       (* requests that got a non-shed response *)
  sv_shed : int;            (* typed load-shedding rejections *)
  sv_degraded : int;        (* served from last-known-good, marked degraded *)
  sv_cache_hits : int;
  sv_cache_misses : int;
  sv_wall_ns : int;         (* whole-phase wall time *)
  sv_p50_ns : int;          (* per-request latency percentiles *)
  sv_p99_ns : int;
}

type t = {
  bench_schema_version : int;
  bench_workloads : workload_bench list;
  bench_matrix : matrix_bench option;
  bench_serve : serve_phase list;  (* [] = no serve section *)
}

val schema_version : int

(** The phase names every workload entry must cover, in order. *)
val phase_names : string list

(** The serve phases a [serve] section must cover, in order. *)
val serve_phase_names : string list

(** The sim phases that are run on both engines and must carry
    [ref_wall_ns]: the three TLS configurations.  [sim_seq] has one
    shared implementation and is excluded. *)
val dual_engine_phase_names : string list

(** C mode with the DESIGN §12 resource limits tightened (signal buffer
    2, 8 speculative lines per epoch, forwarding queue 8) so most
    workloads actually degrade — signal drops and overflow stalls — while
    every one still completes with sequential-equivalent output: the
    configuration of the [sim_tls_bounded] phase. *)
val bounded_cfg : Tls.Config.t

(** The phase run for real on domains, carrying commit/abort counters:
    ["exec_tls"]. *)
val exec_phase_name : string

(** Time every phase of one workload, including the real [exec_tls]
    execution. *)
val bench_workload : Workloads.Workload.t -> workload_bench

(** Time [f ()], returning its value and a phase record. *)
val timed_phase : string -> (unit -> 'a) -> 'a * phase

(** Render as JSON (stable key order, newline-terminated). *)
val to_json : t -> string

(** Parse + schema-check a JSON document.  [Ok summary] describes the
    validated structure (names and phases only — no timing values, so
    expect tests stay stable); [Error msg] pinpoints the first schema
    violation. *)
val validate_string : string -> (string, string) result

val validate_file : string -> (string, string) result

(** Perf-regression gate over two schema-valid baselines (the
    [mrvcc benchdiff] CLI and the CI perf gate).  Deterministic counters
    — per-phase simulated cycle counts, real-runtime commit counts, the
    matrix cell/job counts, the serve request mix — must be exactly
    equal; wall times ([wall_ns], [ref_wall_ns], [icode_off_wall_ns])
    are gated per phase name on the geometric mean across workloads,
    which must not grow by more than [tolerance] (relative, e.g. [0.5]
    = +50%).  Scheduling-dependent counters (exec_tls aborts) and serve
    latencies are not gated.  [Ok report] is the comparison table;
    [Error report] carries the same table plus one line per violation. *)
val compare_strings :
  tolerance:float ->
  ?old_name:string ->
  ?new_name:string ->
  string ->
  string ->
  (string, string) result

(** {!compare_strings} over two files (old baseline first). *)
val compare_files : tolerance:float -> string -> string -> (string, string) result

(** [write_file_atomic path contents] writes via a temp file in [path]'s
    directory followed by [Unix.rename], so an interrupted writer can
    never leave a truncated file: readers see the complete old contents
    or the complete new ones.  [?before_rename] is a test hook run
    between the temp write and the rename. *)
val write_file_atomic :
  ?before_rename:(unit -> unit) -> string -> string -> unit
