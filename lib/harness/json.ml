type t =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of t list
  | Jobj of (string * t) list

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some 'n' -> advance (); Buffer.add_char b '\n'; go ()
        | Some 't' -> advance (); Buffer.add_char b '\t'; go ()
        | Some (('"' | '\\' | '/') as c) -> advance (); Buffer.add_char b c; go ()
        | _ -> fail "unsupported escape")
      | Some c ->
        advance ();
        Buffer.add_char b c;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> f
    | None -> fail ("bad number " ^ text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); Jobj [])
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Jobj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); Jarr [])
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Jarr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ -> Jnum (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_result s =
  match parse s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let quote s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let number f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let to_string t =
  let b = Buffer.create 256 in
  let rec go = function
    | Jnull -> Buffer.add_string b "null"
    | Jbool v -> Buffer.add_string b (if v then "true" else "false")
    | Jnum f -> Buffer.add_string b (number f)
    | Jstr s -> Buffer.add_string b (quote s)
    | Jarr l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string b ", ";
          go v)
        l;
      Buffer.add_char b ']'
    | Jobj members ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ", ";
          Buffer.add_string b (quote k);
          Buffer.add_string b ": ";
          go v)
        members;
      Buffer.add_char b '}'
  in
  go t;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let field obj key =
  match obj with
  | Jobj members -> List.assoc_opt key members
  | _ -> None

let as_int what = function
  | Jnum f when Float.is_integer f -> Ok (int_of_float f)
  | _ -> Error (Printf.sprintf "%s must be an integer" what)

let as_num what = function
  | Jnum f -> Ok f
  | _ -> Error (Printf.sprintf "%s must be a number" what)

let as_str what = function
  | Jstr s -> Ok s
  | _ -> Error (Printf.sprintf "%s must be a string" what)

let as_arr what = function
  | Jarr l -> Ok l
  | _ -> Error (Printf.sprintf "%s must be an array" what)

let as_bool what = function
  | Jbool v -> Ok v
  | _ -> Error (Printf.sprintf "%s must be a boolean" what)

let opt_field as_kind obj key =
  match field obj key with
  | None -> Ok None
  | Some v -> Result.map Option.some (as_kind key v)

let opt_int obj key = opt_field as_int obj key
let opt_str obj key = opt_field as_str obj key
let opt_bool obj key = opt_field as_bool obj key
let opt_num obj key = opt_field as_num obj key
