(** Minimal hand-rolled JSON support (the container has no JSON library),
    shared by the bench baseline ({!Bench}) and the compile service's
    request/response codec ({!Serve.Request} in [lib/serve]).

    The parser accepts the subset the repo emits: objects, arrays,
    strings with the n/t/quote/backslash/slash escapes, numbers, booleans and
    null.  The emission helpers keep key order exactly as given, so
    emitted documents are byte-deterministic. *)

type t =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of t list
  | Jobj of (string * t) list

exception Parse_error of string

(** Parse a complete document; trailing garbage is an error.
    @raise Parse_error with a byte offset on malformed input. *)
val parse : string -> t

(** [parse_result s] is [parse] with the error as a value. *)
val parse_result : string -> (t, string) result

(** {2 Emission} *)

(** Escape and quote a string literal. *)
val quote : string -> string

(** Render compactly (no newlines), preserving object key order.
    Integral floats print without a decimal point. *)
val to_string : t -> string

(** {2 Accessors} — all total, [None]/[Error] on shape mismatch. *)

val field : t -> string -> t option

val as_int : string -> t -> (int, string) result
val as_num : string -> t -> (float, string) result
val as_str : string -> t -> (string, string) result
val as_arr : string -> t -> (t list, string) result
val as_bool : string -> t -> (bool, string) result

(** Optional typed field helpers: [Ok None] when the field is absent. *)
val opt_int : t -> string -> (int option, string) result
val opt_str : t -> string -> (string option, string) result
val opt_bool : t -> string -> (bool option, string) result
val opt_num : t -> string -> (float option, string) result
