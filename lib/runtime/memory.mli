(** Flat word-addressed memory.  Uninitialized words read as 0; any address
    (including garbage computed on speculative wrong paths) is readable and
    writable without trapping. *)

type t

val create : unit -> t

(** Copy-on-write-free deep copy (used to snapshot committed state). *)
val copy : t -> t

val load : t -> int -> int

(** Same as {!load}, without allocating (hot path of the event engine). *)
val get : t -> int -> int

val store : t -> int -> int -> unit

(** Apply a list of (addr, value) stores. *)
val store_all : t -> (int * int) list -> unit

(** Iterate over all written words (order unspecified). *)
val iter : t -> (int -> int -> unit) -> unit

(** Number of distinct written words. *)
val footprint : t -> int

(** Structural equality of contents, ignoring words equal to 0. *)
val equal : t -> t -> bool
