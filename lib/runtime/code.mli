(** Immutable execution snapshot of an IR program.

    Block instruction lists become arrays for O(1) program-counter
    indexing; taken after all compiler passes have run. *)

type cblock = {
  instrs : Ir.Instr.t array;
  term : Ir.Instr.terminator;
}

type cfunc = {
  cf_id : int;  (** dense index, stable across the snapshot (source order) *)
  cf_name : string;
  cf_nregs : int;
  cf_params : Ir.Instr.reg list;
  cf_blocks : cblock array;
}

type t = {
  funcs : (string, cfunc) Hashtbl.t;
  layout : Ir.Layout.t;
  regions : Ir.Region.t list;
  initial_stores : (int * int) list;
}

val of_prog : Ir.Prog.t -> t

(** @raise Not_found on unknown function. *)
val func : t -> string -> cfunc

(** Region keyed by (function, header), if one is registered. *)
val region_at : t -> string -> Ir.Instr.label -> Ir.Region.t option
