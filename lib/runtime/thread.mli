(** Single-threaded IR execution engine with pluggable memory/sync hooks.

    Both the profiling interpreter and each simulated TLS processor drive
    one of these: the engine owns control flow (frames, program counters)
    while the driver owns memory semantics, synchronization, and timing
    through {!hooks}.

    One [step] executes exactly one instruction or one terminator, so
    drivers can charge latencies per dynamic instruction. *)

type frame = {
  cfunc : Code.cfunc;
  regs : int array;
  mutable block : Ir.Instr.label;
  mutable pc : int;                    (* next instruction index *)
  ret_to : Ir.Instr.reg option;        (* caller register for a return value *)
  call_iid : Ir.Instr.iid;             (* call-site id; -1 at the root *)
}

type t = {
  code : Code.t;
  mutable frames : frame list;         (* innermost first *)
  input : int array;
  mutable output : int list;           (* reversed print stream *)
  mutable icount : int;                (* dynamic instructions executed *)
}

(** What a successful step did. *)
type event =
  | Exec of Ir.Instr.t                       (* straight-line instruction *)
  | Goto of string * Ir.Instr.label * Ir.Instr.label
      (* function, from-block, target: a taken Jmp/Br *)
  | Return of string * int option            (* popped a frame *)

type outcome =
  | Ran of event
  | Blocked                    (* a wait hook refused; thread unchanged *)
  | Suspended                  (* the control hook declined a transition *)
  | Finished of int option     (* returned from the outermost frame *)

type hooks = {
  load : t -> Ir.Instr.t -> int -> int;
  store : t -> Ir.Instr.t -> int -> int -> unit;
  wait_scalar : t -> Ir.Instr.t -> Ir.Instr.channel -> int option;
  signal_scalar : t -> Ir.Instr.t -> Ir.Instr.channel -> int -> unit;
  wait_mem : t -> Ir.Instr.t -> Ir.Instr.channel -> bool;
  sync_load : t -> Ir.Instr.t -> Ir.Instr.channel -> int -> int;
  signal_mem : t -> Ir.Instr.t -> Ir.Instr.channel -> int -> unit;
  signal_mem_if_unsent : t -> Ir.Instr.t -> Ir.Instr.channel -> int -> unit;
  signal_null : t -> Ir.Instr.t -> Ir.Instr.channel -> unit;
  signal_null_if_unsent : t -> Ir.Instr.t -> Ir.Instr.channel -> unit;
  (* Consulted before following a Jmp/Br; [false] suspends the thread with
     the transition not taken (used to detect epoch boundaries). *)
  control : t -> target:Ir.Instr.label -> bool;
}

(** Hooks implementing plain sequential semantics over the given memory:
    sync instructions are no-ops ([Sync_load] degenerates to [Load]). *)
val sequential_hooks : Memory.t -> hooks

(** Start a thread at the entry of [func_name] (normally ["main"]). *)
val create : Code.t -> func_name:string -> input:int array -> t

(** Start a thread from an explicit base frame (epoch execution). *)
val create_from_frame : Code.t -> frame -> input:int array -> t

(** Deep-copy a frame (registers included). *)
val copy_frame : frame -> frame

val current_frame : t -> frame
val depth : t -> int

(** Execute one instruction or terminator under the given hooks. *)
val step : t -> hooks -> outcome

(** The instruction the thread will execute next, if it is a straight-line
    instruction (terminators return [None]). *)
val next_instr : t -> Ir.Instr.t option

(** Output in print order. *)
val output : t -> int list

(** Raised by {!run_sequential} when the step budget is exhausted (a
    non-terminating program, or a budget set too low for the workload). *)
exception Step_limit of { max_steps : int; icount : int }

(** Raised by {!run_sequential} when the thread blocks or suspends: under
    pure sequential hooks neither can happen, so this indicates malformed
    code or hooks (the reason is ["blocked"] or ["suspended"]). *)
exception Unexpected_stop of { reason : string; icount : int }

(** Run under sequential hooks until finished or [max_steps] is hit;
    returns the outputs.
    @raise Step_limit on exceeding [max_steps].
    @raise Unexpected_stop if the thread blocks or suspends. *)
val run_sequential :
  ?max_steps:int -> Code.t -> input:int array -> Memory.t -> int list
