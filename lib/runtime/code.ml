type cblock = {
  instrs : Ir.Instr.t array;
  term : Ir.Instr.terminator;
}

type cfunc = {
  cf_id : int;
  cf_name : string;
  cf_nregs : int;
  cf_params : Ir.Instr.reg list;
  cf_blocks : cblock array;
}

type t = {
  funcs : (string, cfunc) Hashtbl.t;
  layout : Ir.Layout.t;
  regions : Ir.Region.t list;
  initial_stores : (int * int) list;
}

let snapshot_func ~id (f : Ir.Func.t) : cfunc =
  {
    cf_id = id;
    cf_name = f.Ir.Func.name;
    cf_nregs = f.Ir.Func.nregs;
    cf_params = List.map snd f.Ir.Func.params;
    cf_blocks =
      Array.map
        (fun (b : Ir.Func.block) ->
          { instrs = Array.of_list b.Ir.Func.instrs; term = b.Ir.Func.term })
        f.Ir.Func.blocks;
  }

let of_prog (p : Ir.Prog.t) : t =
  let funcs = Hashtbl.create 64 in
  List.iteri
    (fun id (name, f) -> Hashtbl.replace funcs name (snapshot_func ~id f))
    p.Ir.Prog.funcs;
  {
    funcs;
    layout = p.Ir.Prog.layout;
    regions = p.Ir.Prog.regions;
    initial_stores = Ir.Layout.initial_stores p.Ir.Prog.layout;
  }

let func t name = Hashtbl.find t.funcs name

let region_at t fname header =
  List.find_opt
    (fun (r : Ir.Region.t) ->
      String.equal r.Ir.Region.func fname && r.Ir.Region.header = header)
    t.regions
