(* Open-addressed (linear probing) int->int table.  Both simulator
   engines hit committed memory on every load/store, so the generic
   [Hashtbl] (polymorphic hash + bucket chains) was a measurable slice
   of simulation wall time.  Iteration order is unspecified either way;
   the only order-sensitive consumer sorts (Simstats.canonical_memory).

   Slot states live in [state] (0 = empty, 1 = used) so any int —
   including min_int garbage computed on speculative wrong paths — is a
   valid address.  A zero store to a present slot keeps the slot but
   zeroes the value; [iter]/[footprint]/[equal] skip zero values, so
   observable behavior matches the old remove-on-zero table.  Zero
   stores to absent addresses are dropped (a load of an absent address
   is 0 already). *)

type t = {
  mutable keys : int array;
  mutable vals : int array;
  mutable state : Bytes.t;
  mutable mask : int;      (* capacity - 1; capacity is a power of two *)
  mutable used : int;      (* occupied slots, zero values included *)
  mutable nonzero : int;   (* occupied slots with a nonzero value *)
}

let initial_capacity = 4096

let create () : t =
  {
    keys = Array.make initial_capacity 0;
    vals = Array.make initial_capacity 0;
    state = Bytes.make initial_capacity '\000';
    mask = initial_capacity - 1;
    used = 0;
    nonzero = 0;
  }

let copy t =
  {
    keys = Array.copy t.keys;
    vals = Array.copy t.vals;
    state = Bytes.copy t.state;
    mask = t.mask;
    used = t.used;
    nonzero = t.nonzero;
  }

(* Fibonacci hashing on the low bits; deterministic across runs. *)
let slot_of t key = (key * 0x2545F4914F6CDD1D) land t.mask

(* Index of [key]'s slot, or -1 if absent.  Top-level probe loop: a
   local [let rec] would allocate its closure on every lookup, and both
   engines look up committed memory on every load and store. *)
let rec probe_from keys state mask key i =
  if Bytes.unsafe_get state i = '\000' then -1
  else if Array.unsafe_get keys i = key then i
  else probe_from keys state mask key ((i + 1) land mask)

let find t key = probe_from t.keys t.state t.mask key (slot_of t key)

let get t key =
  let i = find t key in
  if i >= 0 then Array.unsafe_get t.vals i else 0

let load = get

(* Insert [key -> v] into an empty slot scanning from [j]; the caller
   maintains [used]/[nonzero]. *)
let rec place_from keys vals state mask key v j =
  if Bytes.unsafe_get state j = '\000' then begin
    Bytes.unsafe_set state j '\001';
    Array.unsafe_set keys j key;
    Array.unsafe_set vals j v
  end
  else place_from keys vals state mask key v ((j + 1) land mask)

let grow t =
  let old_keys = t.keys and old_vals = t.vals and old_state = t.state in
  let old_cap = t.mask + 1 in
  let cap = old_cap * 2 in
  t.keys <- Array.make cap 0;
  t.vals <- Array.make cap 0;
  t.state <- Bytes.make cap '\000';
  t.mask <- cap - 1;
  t.used <- 0;
  (* Zero-valued slots are dropped on rehash; [nonzero] is unchanged. *)
  for i = 0 to old_cap - 1 do
    if Bytes.unsafe_get old_state i = '\001' && Array.unsafe_get old_vals i <> 0
    then begin
      let key = Array.unsafe_get old_keys i in
      place_from t.keys t.vals t.state t.mask key
        (Array.unsafe_get old_vals i)
        (slot_of t key);
      t.used <- t.used + 1
    end
  done

let store t key v =
  let i = find t key in
  if i >= 0 then begin
    let old = Array.unsafe_get t.vals i in
    if old <> 0 && v = 0 then t.nonzero <- t.nonzero - 1
    else if old = 0 && v <> 0 then t.nonzero <- t.nonzero + 1;
    Array.unsafe_set t.vals i v
  end
  else if v <> 0 then begin
    if 2 * (t.used + 1) > t.mask + 1 then grow t;
    place_from t.keys t.vals t.state t.mask key v (slot_of t key);
    t.used <- t.used + 1;
    t.nonzero <- t.nonzero + 1
  end

let store_all t pairs = List.iter (fun (a, v) -> store t a v) pairs

let iter t k =
  for i = 0 to t.mask do
    if Bytes.unsafe_get t.state i = '\001' && Array.unsafe_get t.vals i <> 0
    then k (Array.unsafe_get t.keys i) (Array.unsafe_get t.vals i)
  done

let footprint t = t.nonzero

let equal a b =
  let ok = ref true in
  iter a (fun k v -> if get b k <> v then ok := false);
  iter b (fun k v -> if get a k <> v then ok := false);
  !ok
