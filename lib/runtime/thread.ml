type frame = {
  cfunc : Code.cfunc;
  regs : int array;
  mutable block : Ir.Instr.label;
  mutable pc : int;
  ret_to : Ir.Instr.reg option;
  call_iid : Ir.Instr.iid;
}

type t = {
  code : Code.t;
  mutable frames : frame list;
  input : int array;
  mutable output : int list;
  mutable icount : int;
}

type event =
  | Exec of Ir.Instr.t
  | Goto of string * Ir.Instr.label * Ir.Instr.label
  | Return of string * int option

type outcome =
  | Ran of event
  | Blocked
  | Suspended
  | Finished of int option

type hooks = {
  load : t -> Ir.Instr.t -> int -> int;
  store : t -> Ir.Instr.t -> int -> int -> unit;
  wait_scalar : t -> Ir.Instr.t -> Ir.Instr.channel -> int option;
  signal_scalar : t -> Ir.Instr.t -> Ir.Instr.channel -> int -> unit;
  wait_mem : t -> Ir.Instr.t -> Ir.Instr.channel -> bool;
  sync_load : t -> Ir.Instr.t -> Ir.Instr.channel -> int -> int;
  signal_mem : t -> Ir.Instr.t -> Ir.Instr.channel -> int -> unit;
  signal_mem_if_unsent : t -> Ir.Instr.t -> Ir.Instr.channel -> int -> unit;
  signal_null : t -> Ir.Instr.t -> Ir.Instr.channel -> unit;
  signal_null_if_unsent : t -> Ir.Instr.t -> Ir.Instr.channel -> unit;
  control : t -> target:Ir.Instr.label -> bool;
}

let current_regs t =
  match t.frames with
  | f :: _ -> f.regs
  | [] -> [||]

let sequential_hooks mem =
  {
    load = (fun _ _ addr -> Memory.load mem addr);
    store = (fun _ _ addr v -> Memory.store mem addr v);
    wait_scalar =
      (fun t i _ch ->
        (* Sequentially, the "forwarded" value is just the current one. *)
        match i.Ir.Instr.kind with
        | Ir.Instr.Wait_scalar (_, dst) ->
          Some (current_regs t).(dst)
        | _ -> None);
    signal_scalar = (fun _ _ _ _ -> ());
    wait_mem = (fun _ _ _ -> true);
    sync_load = (fun _ _ _ addr -> Memory.load mem addr);
    signal_mem = (fun _ _ _ _ -> ());
    signal_mem_if_unsent = (fun _ _ _ _ -> ());
    signal_null = (fun _ _ _ -> ());
    signal_null_if_unsent = (fun _ _ _ -> ());
    control = (fun _ ~target:_ -> true);
  }

let create code ~func_name ~input =
  let cf = Code.func code func_name in
  let frame =
    {
      cfunc = cf;
      regs = Array.make cf.Code.cf_nregs 0;
      block = 0;
      pc = 0;
      ret_to = None;
      call_iid = -1;
    }
  in
  { code; frames = [ frame ]; input; output = []; icount = 0 }

let create_from_frame code frame ~input =
  { code; frames = [ frame ]; input; output = []; icount = 0 }

let copy_frame f = { f with regs = Array.copy f.regs }

let current_frame t =
  match t.frames with
  | f :: _ -> f
  | [] -> failwith "Thread.current_frame: no frames"

let depth t = List.length t.frames

let operand_value regs = function
  | Ir.Instr.Reg r -> regs.(r)
  | Ir.Instr.Imm n -> n

let next_instr t =
  match t.frames with
  | [] -> None
  | f :: _ ->
    let b = f.cfunc.Code.cf_blocks.(f.block) in
    if f.pc < Array.length b.Code.instrs then Some b.Code.instrs.(f.pc)
    else None

let exec_instr t hooks (f : frame) (i : Ir.Instr.t) : outcome =
  let regs = f.regs in
  let v op = operand_value regs op in
  let finish () =
    f.pc <- f.pc + 1;
    t.icount <- t.icount + 1;
    Ran (Exec i)
  in
  match i.Ir.Instr.kind with
  | Ir.Instr.Bin (op, d, a, b) ->
    regs.(d) <- Ir.Instr.eval_binop op (v a) (v b);
    finish ()
  | Ir.Instr.Mov (d, a) ->
    regs.(d) <- v a;
    finish ()
  | Ir.Instr.Load (d, a) ->
    regs.(d) <- hooks.load t i (v a);
    finish ()
  | Ir.Instr.Store (a, value) ->
    hooks.store t i (v a) (v value);
    finish ()
  | Ir.Instr.Call (_, name, args) -> begin
    match Hashtbl.find_opt t.code.Code.funcs name with
    | None -> failwith ("Thread: call to unknown function " ^ name)
    | Some callee ->
      let callee_regs = Array.make callee.Code.cf_nregs 0 in
      List.iteri
        (fun idx arg ->
          match List.nth_opt callee.Code.cf_params idx with
          | Some preg -> callee_regs.(preg) <- v arg
          | None -> ())
        args;
      f.pc <- f.pc + 1;
      (* the call itself graduates *)
      t.icount <- t.icount + 1;
      let ret_to =
        match i.Ir.Instr.kind with
        | Ir.Instr.Call (dst, _, _) -> dst
        | _ -> None
      in
      let callee_frame =
        {
          cfunc = callee;
          regs = callee_regs;
          block = 0;
          pc = 0;
          ret_to;
          call_iid = i.Ir.Instr.iid;
        }
      in
      t.frames <- callee_frame :: t.frames;
      Ran (Exec i)
  end
  | Ir.Instr.Print a ->
    t.output <- v a :: t.output;
    finish ()
  | Ir.Instr.Input (d, a) ->
    let idx = v a in
    regs.(d) <-
      (if idx >= 0 && idx < Array.length t.input then t.input.(idx) else 0);
    finish ()
  | Ir.Instr.Input_len d ->
    regs.(d) <- Array.length t.input;
    finish ()
  | Ir.Instr.Wait_scalar (ch, d) -> begin
    match hooks.wait_scalar t i ch with
    | Some value ->
      regs.(d) <- value;
      finish ()
    | None -> Blocked
  end
  | Ir.Instr.Signal_scalar (ch, a) ->
    hooks.signal_scalar t i ch (v a);
    finish ()
  | Ir.Instr.Wait_mem ch ->
    if hooks.wait_mem t i ch then finish () else Blocked
  | Ir.Instr.Sync_load (ch, d, a) ->
    regs.(d) <- hooks.sync_load t i ch (v a);
    finish ()
  | Ir.Instr.Signal_mem (ch, a) ->
    hooks.signal_mem t i ch (v a);
    finish ()
  | Ir.Instr.Signal_mem_if_unsent (ch, a) ->
    hooks.signal_mem_if_unsent t i ch (v a);
    finish ()
  | Ir.Instr.Signal_null ch ->
    hooks.signal_null t i ch;
    finish ()
  | Ir.Instr.Signal_null_if_unsent ch ->
    hooks.signal_null_if_unsent t i ch;
    finish ()

let exec_term t hooks (f : frame) : outcome =
  let term = f.cfunc.Code.cf_blocks.(f.block).Code.term in
  let goto target =
    if hooks.control t ~target then begin
      let from = f.block in
      f.block <- target;
      f.pc <- 0;
      t.icount <- t.icount + 1;
      Ran (Goto (f.cfunc.Code.cf_name, from, target))
    end
    else Suspended
  in
  match term with
  | Ir.Instr.Jmp l -> goto l
  | Ir.Instr.Br (c, a, b) ->
    let cv = operand_value f.regs c in
    goto (if cv <> 0 then a else b)
  | Ir.Instr.Ret value ->
    let rv = Option.map (operand_value f.regs) value in
    t.icount <- t.icount + 1;
    (match t.frames with
    | [ _ ] ->
      t.frames <- [];
      Finished rv
    | _ :: (caller :: _ as rest) ->
      (match f.ret_to, rv with
      | Some dst, Some v -> caller.regs.(dst) <- v
      | Some dst, None -> caller.regs.(dst) <- 0
      | None, _ -> ());
      t.frames <- rest;
      Ran (Return (f.cfunc.Code.cf_name, rv))
    | [] -> failwith "Thread: step on finished thread")

let step t hooks : outcome =
  match t.frames with
  | [] -> failwith "Thread: step on finished thread"
  | f :: _ ->
    let b = f.cfunc.Code.cf_blocks.(f.block) in
    if f.pc < Array.length b.Code.instrs then
      exec_instr t hooks f b.Code.instrs.(f.pc)
    else exec_term t hooks f

let output t = List.rev t.output

exception Step_limit of { max_steps : int; icount : int }

exception Unexpected_stop of { reason : string; icount : int }

let run_sequential ?(max_steps = 100_000_000) code ~input mem =
  Memory.store_all mem code.Code.initial_stores;
  let t = create code ~func_name:"main" ~input in
  let hooks = sequential_hooks mem in
  let rec loop () =
    if t.icount > max_steps then
      raise (Step_limit { max_steps; icount = t.icount });
    match step t hooks with
    | Ran _ -> loop ()
    | Blocked -> raise (Unexpected_stop { reason = "blocked"; icount = t.icount })
    | Suspended ->
      raise (Unexpected_stop { reason = "suspended"; icount = t.icount })
    | Finished _ -> output t
  in
  loop ()
