(** The instrumentation-based profiling tool (paper §1.1, §2.3).

    Runs the (untransformed) program sequentially while tracking:
    - every natural loop's instance/iteration/instruction counts, and
    - for each loop in [watch], all inter-epoch RAW memory dependences,
      naming each access by (static instruction id, call stack rooted at
      the loop) exactly as the paper describes.

    The runner is the software stand-in for the paper's binary
    instrumentation tool; it observes the same events (every load, store,
    and loop back edge). *)

(** Raised by {!run} when the profiled execution exceeds its step budget. *)
exception Step_limit of { max_steps : int; icount : int }

(** Raised by {!run} if the profiled (sequential) execution blocks or
    suspends — impossible for well-formed programs under sequential hooks. *)
exception Unexpected_stop of { reason : string; icount : int }

(** [run prog ~input ~watch] profiles one execution.
    @param watch loops to collect dependence profiles for (may be empty).
    @raise Step_limit if execution exceeds [max_steps] (default 200M).
    @raise Unexpected_stop if execution blocks. *)
val run :
  ?max_steps:int ->
  Ir.Prog.t ->
  input:int array ->
  watch:Profile.loop_key list ->
  Profile.t

(** All natural-loop keys of a program (for region selection). *)
val all_loops : Ir.Prog.t -> Profile.loop_key list
