module Int_set = Set.Make (Int)

(* Static loop structure of one function, precomputed for fast lookups
   during execution. *)
type func_loops = {
  headers : Int_set.t;                         (* loop header labels *)
  containing : (int, Int_set.t) Hashtbl.t;     (* block -> headers of loops
                                                  whose body contains it *)
}

(* One dynamic loop instance being tracked. *)
type active = {
  act_key : Profile.loop_key;
  act_body : Int_set.t;            (* labels of the loop body *)
  act_instance : int;              (* globally unique instance id *)
  mutable act_iteration : int;     (* 1-based *)
  act_entered_at : int;            (* icount at entry *)
  act_frame_level : int;           (* index into the frame-data stack *)
  act_watched : bool;
}

(* Per-frame profiling state (parallel to the thread's frame stack). *)
type frame_data = {
  fd_call_iid : Ir.Instr.iid;      (* call site that created this frame *)
  mutable fd_active : active list; (* innermost first *)
}

(* Last writer of a memory word: the store's id plus, for every watched
   loop active at store time, the (instance, iteration, context). *)
type mark = {
  m_key : Profile.loop_key;
  m_instance : int;
  m_iteration : int;
  m_ctx : Ir.Instr.iid list;
}

type writer = { w_iid : Ir.Instr.iid; w_marks : mark list }

type state = {
  mutable active_instances : int;   (* loop instances open across frames *)
  profile : Profile.t;
  func_loops : (string, func_loops) Hashtbl.t;
  loop_bodies : (Profile.loop_key, Int_set.t) Hashtbl.t;
  watch_set : (Profile.loop_key, unit) Hashtbl.t;
  mutable frame_stack : frame_data list;       (* innermost first *)
  mutable watched_active : active list;        (* all watched instances *)
  writers : (int, writer) Hashtbl.t;           (* addr -> last writer *)
  (* Dedup tables: last (instance, iteration) already counted. *)
  dep_seen : (Profile.dep, int * int) Hashtbl.t;
  load_seen : (Profile.access, int * int) Hashtbl.t;
  mutable next_instance : int;
}

let compute_func_loops (f : Ir.Func.t) : func_loops =
  let loops = Dataflow.Loops.find f in
  let headers =
    Int_set.of_list (List.map (fun (l : Dataflow.Loops.loop) -> l.header) loops)
  in
  let containing = Hashtbl.create 16 in
  List.iter
    (fun (l : Dataflow.Loops.loop) ->
      List.iter
        (fun b ->
          let prev =
            match Hashtbl.find_opt containing b with
            | Some s -> s
            | None -> Int_set.empty
          in
          Hashtbl.replace containing b (Int_set.add l.header prev))
        l.body)
    loops;
  { headers; containing }

let stats_for st key =
  match Hashtbl.find_opt st.profile.Profile.loops key with
  | Some s -> s
  | None ->
    let s =
      {
        Profile.instances = 0;
        iterations = 0;
        dyn_instrs = 0;
        nested_instances = 0;
      }
    in
    Hashtbl.replace st.profile.Profile.loops key s;
    s

let dep_profile_for st key =
  match Hashtbl.find_opt st.profile.Profile.deps key with
  | Some dp -> dp
  | None ->
    let dp = Profile.fresh_dep_profile () in
    Hashtbl.replace st.profile.Profile.deps key dp;
    dp

(* Call-site context of the current location relative to a loop entered at
   frame level [lvl]: call iids of the frames strictly inside the loop's
   frame, outermost call first. *)
let context_from st lvl =
  let depth = List.length st.frame_stack in
  (* frame_stack is innermost-first; the frames inside the loop are the
     first (depth - 1 - lvl) entries. *)
  let inside = depth - 1 - lvl in
  let rec take n = function
    | fd :: rest when n > 0 -> fd.fd_call_iid :: take (n - 1) rest
    | _ -> []
  in
  List.rev (take inside st.frame_stack)

let close_instance st icount_now (a : active) =
  st.active_instances <- st.active_instances - 1;
  let s = stats_for st a.act_key in
  s.Profile.iterations <- s.Profile.iterations + a.act_iteration;
  s.Profile.dyn_instrs <- s.Profile.dyn_instrs + (icount_now - a.act_entered_at);
  if a.act_watched then begin
    let dp = dep_profile_for st a.act_key in
    dp.Profile.total_epochs <- dp.Profile.total_epochs + a.act_iteration;
    st.watched_active <-
      List.filter (fun x -> x.act_instance <> a.act_instance) st.watched_active
  end

let open_instance st icount_now key body frame_level =
  let s = stats_for st key in
  s.Profile.instances <- s.Profile.instances + 1;
  if st.active_instances > 0 then
    s.Profile.nested_instances <- s.Profile.nested_instances + 1;
  st.active_instances <- st.active_instances + 1;
  let a =
    {
      act_key = key;
      act_body = body;
      act_instance = st.next_instance;
      act_iteration = 1;
      act_entered_at = icount_now;
      act_frame_level = frame_level;
      act_watched = Hashtbl.mem st.watch_set key;
    }
  in
  st.next_instance <- st.next_instance + 1;
  if a.act_watched then st.watched_active <- a :: st.watched_active;
  a

let handle_goto st icount fname target =
  match st.frame_stack with
  | [] -> ()
  | fd :: _ ->
    let fl = Hashtbl.find st.func_loops fname in
    (* Close instances whose body no longer contains the target. *)
    let still, closed =
      List.partition (fun a -> Int_set.mem target a.act_body) fd.fd_active
    in
    List.iter (close_instance st icount) closed;
    fd.fd_active <- still;
    if Int_set.mem target fl.headers then begin
      match
        List.find_opt
          (fun a -> a.act_key.Profile.lk_header = target)
          fd.fd_active
      with
      | Some a -> a.act_iteration <- a.act_iteration + 1
      | None ->
        let key = { Profile.lk_func = fname; lk_header = target } in
        let body = Hashtbl.find st.loop_bodies key in
        let level = List.length st.frame_stack - 1 in
        fd.fd_active <- open_instance st icount key body level :: fd.fd_active
    end

let handle_frame_pop st icount =
  match st.frame_stack with
  | fd :: rest ->
    List.iter (close_instance st icount) fd.fd_active;
    st.frame_stack <- rest
  | [] -> ()

(* Record the marks of a store for later dependence matching. *)
let record_store st iid addr =
  let marks =
    List.map
      (fun a ->
        {
          m_key = a.act_key;
          m_instance = a.act_instance;
          m_iteration = a.act_iteration;
          m_ctx = context_from st a.act_frame_level;
        })
      st.watched_active
  in
  Hashtbl.replace st.writers addr { w_iid = iid; w_marks = marks }

let record_load st iid addr =
  match Hashtbl.find_opt st.writers addr with
  | None -> ()
  | Some w ->
    List.iter
      (fun a ->
        match
          List.find_opt
            (fun m ->
              m.m_key = a.act_key && m.m_instance = a.act_instance)
            w.w_marks
        with
        | Some m when m.m_iteration < a.act_iteration ->
          let dp = dep_profile_for st a.act_key in
          let consumer_ctx = context_from st a.act_frame_level in
          let dep =
            {
              Profile.producer = { Profile.a_iid = w.w_iid; a_ctx = m.m_ctx };
              consumer = { Profile.a_iid = iid; a_ctx = consumer_ctx };
            }
          in
          let epoch = (a.act_instance, a.act_iteration) in
          let count_once table key_value counter =
            match Hashtbl.find_opt table key_value with
            | Some e when e = epoch -> ()
            | _ ->
              Hashtbl.replace table key_value epoch;
              counter ()
          in
          count_once st.dep_seen dep (fun () ->
              let prev =
                match Hashtbl.find_opt dp.Profile.dep_epochs dep with
                | Some c -> c
                | None -> 0
              in
              Hashtbl.replace dp.Profile.dep_epochs dep (prev + 1));
          count_once st.load_seen dep.Profile.consumer (fun () ->
              let prev =
                match
                  Hashtbl.find_opt dp.Profile.load_dep_epochs
                    dep.Profile.consumer
                with
                | Some c -> c
                | None -> 0
              in
              Hashtbl.replace dp.Profile.load_dep_epochs dep.Profile.consumer
                (prev + 1));
          let dist = a.act_iteration - m.m_iteration in
          let prev =
            match Hashtbl.find_opt dp.Profile.distances dist with
            | Some c -> c
            | None -> 0
          in
          Hashtbl.replace dp.Profile.distances dist (prev + 1)
        | Some _ | None -> ())
      st.watched_active

let all_loops (prog : Ir.Prog.t) =
  List.concat_map
    (fun (fname, f) ->
      List.map
        (fun (l : Dataflow.Loops.loop) ->
          { Profile.lk_func = fname; lk_header = l.header })
        (Dataflow.Loops.find f))
    prog.Ir.Prog.funcs

exception Step_limit of { max_steps : int; icount : int }

exception Unexpected_stop of { reason : string; icount : int }

let run ?(max_steps = 200_000_000) (prog : Ir.Prog.t) ~input ~watch =
  let code = Runtime.Code.of_prog prog in
  let func_loops = Hashtbl.create 64 in
  let loop_bodies = Hashtbl.create 64 in
  List.iter
    (fun (fname, f) ->
      Hashtbl.replace func_loops fname (compute_func_loops f);
      List.iter
        (fun (l : Dataflow.Loops.loop) ->
          Hashtbl.replace loop_bodies
            { Profile.lk_func = fname; lk_header = l.header }
            (Int_set.of_list l.body))
        (Dataflow.Loops.find f))
    prog.Ir.Prog.funcs;
  let watch_set = Hashtbl.create 8 in
  List.iter (fun k -> Hashtbl.replace watch_set k ()) watch;
  let profile =
    {
      Profile.loops = Hashtbl.create 64;
      deps = Hashtbl.create 8;
      total_instrs = 0;
      output = [];
    }
  in
  let st =
    {
      active_instances = 0;
      profile;
      func_loops;
      loop_bodies;
      watch_set;
      frame_stack = [ { fd_call_iid = -1; fd_active = [] } ];
      watched_active = [];
      writers = Hashtbl.create 4096;
      dep_seen = Hashtbl.create 256;
      load_seen = Hashtbl.create 256;
      next_instance = 0;
    }
  in
  let mem = Runtime.Memory.create () in
  Runtime.Memory.store_all mem code.Runtime.Code.initial_stores;
  let base = Runtime.Thread.sequential_hooks mem in
  let hooks =
    {
      base with
      Runtime.Thread.load =
        (fun t i addr ->
          record_load st i.Ir.Instr.iid addr;
          base.Runtime.Thread.load t i addr);
      store =
        (fun t i addr v ->
          record_store st i.Ir.Instr.iid addr;
          base.Runtime.Thread.store t i addr v);
    }
  in
  let t = Runtime.Thread.create code ~func_name:"main" ~input in
  let rec loop () =
    if t.Runtime.Thread.icount > max_steps then
      raise (Step_limit { max_steps; icount = t.Runtime.Thread.icount });
    match Runtime.Thread.step t hooks with
    | Runtime.Thread.Ran (Runtime.Thread.Exec i) ->
      (match i.Ir.Instr.kind with
      | Ir.Instr.Call (_, _, _) ->
        st.frame_stack <-
          { fd_call_iid = i.Ir.Instr.iid; fd_active = [] } :: st.frame_stack
      | _ -> ());
      loop ()
    | Runtime.Thread.Ran (Runtime.Thread.Goto (fname, _from, target)) ->
      handle_goto st t.Runtime.Thread.icount fname target;
      loop ()
    | Runtime.Thread.Ran (Runtime.Thread.Return (_, _)) ->
      handle_frame_pop st t.Runtime.Thread.icount;
      loop ()
    | Runtime.Thread.Blocked | Runtime.Thread.Suspended ->
      raise
        (Unexpected_stop
           {
             reason = "blocked or suspended during sequential profiling";
             icount = t.Runtime.Thread.icount;
           })
    | Runtime.Thread.Finished _ ->
      handle_frame_pop st t.Runtime.Thread.icount
  in
  loop ();
  profile.Profile.total_instrs <- t.Runtime.Thread.icount;
  { profile with Profile.output = Runtime.Thread.output t }
