(** Dominator and post-dominator computation (iterative algorithm over
    dominator sets).

    Blocks unreachable from the entry dominate nothing and are reported as
    dominated only by themselves.  Post-dominance is dominance over the
    reversed CFG with a virtual exit node joining all [Ret] blocks, so it
    is well-defined for multi-exit functions too. *)

type t

val compute : Ir.Func.t -> t

(** [dominates t a b] — does block [a] dominate block [b]? *)
val dominates : t -> Ir.Instr.label -> Ir.Instr.label -> bool

(** [dominates_point t (la, ia) (lb, ib)] — does the instruction at
    position [ia] of block [la] strictly dominate the one at position
    [ib] of block [lb]?  Within one block, program order decides. *)
val dominates_point :
  t -> Ir.Instr.label * int -> Ir.Instr.label * int -> bool

(** Immediate dominator; [None] for the entry and unreachable blocks. *)
val idom : t -> Ir.Instr.label -> Ir.Instr.label option

val reachable : t -> Ir.Instr.label -> bool

(** Post-dominators of every block of [f].  The result covers
    [num_blocks f + 1] labels: label [virtual_exit f] is the synthetic
    exit fed by every block without successors.  Query it only through
    the post accessors below. *)
val compute_post : Ir.Func.t -> t

(** The label of the virtual exit node used by [compute_post]. *)
val virtual_exit : Ir.Func.t -> Ir.Instr.label

(** [post_dominates t a b] — does every path from [b] to the exit pass
    through [a]?  (Reflexive, like [dominates].) *)
val post_dominates : t -> Ir.Instr.label -> Ir.Instr.label -> bool

(** Strict point-wise post-dominance: within one block, the later
    instruction post-dominates the earlier one. *)
val post_dominates_point :
  t -> Ir.Instr.label * int -> Ir.Instr.label * int -> bool

(** Immediate post-dominator; [None] for the virtual exit and for blocks
    that cannot reach any exit. *)
val ipdom : t -> Ir.Instr.label -> Ir.Instr.label option

(** Can this block reach an exit?  ([false] for blocks stuck in infinite
    loops and for blocks unreachable in the reversed graph.) *)
val reaches_exit : t -> Ir.Instr.label -> bool
