(** Dominator computation (iterative algorithm over dominator sets).

    Blocks unreachable from the entry dominate nothing and are reported as
    dominated only by themselves. *)

type t

val compute : Ir.Func.t -> t

(** [dominates t a b] — does block [a] dominate block [b]? *)
val dominates : t -> Ir.Instr.label -> Ir.Instr.label -> bool

(** [dominates_point t (la, ia) (lb, ib)] — does the instruction at
    position [ia] of block [la] strictly dominate the one at position
    [ib] of block [lb]?  Within one block, program order decides. *)
val dominates_point :
  t -> Ir.Instr.label * int -> Ir.Instr.label * int -> bool

(** Immediate dominator; [None] for the entry and unreachable blocks. *)
val idom : t -> Ir.Instr.label -> Ir.Instr.label option

val reachable : t -> Ir.Instr.label -> bool
