module Int_set = Set.Make (Int)

type t = {
  dom : Int_set.t array;      (* dominators of each block *)
  reach : bool array;
  idoms : Ir.Instr.label option array;
}

(* Iterative dominator fixpoint over an explicit graph.  Shared by the
   forward computation (the function's CFG) and the post-dominance one
   (the reversed CFG with a virtual exit). *)
let solve ~n ~entry ~(succs : int -> int list) ~(preds : int list array) =
  let reach = Array.make n false in
  let rec visit l =
    if not reach.(l) then begin
      reach.(l) <- true;
      List.iter visit (succs l)
    end
  in
  if n > 0 then visit entry;
  let all =
    List.init n Fun.id
    |> List.filter (fun l -> reach.(l))
    |> Int_set.of_list
  in
  let dom = Array.make n Int_set.empty in
  for l = 0 to n - 1 do
    if reach.(l) then
      dom.(l) <- (if l = entry then Int_set.singleton l else all)
    else dom.(l) <- Int_set.singleton l
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    for l = 0 to n - 1 do
      if reach.(l) && l <> entry then begin
        let reachable_preds = List.filter (fun p -> reach.(p)) preds.(l) in
        let meet =
          match reachable_preds with
          | [] -> Int_set.empty
          | p :: rest ->
            List.fold_left
              (fun acc q -> Int_set.inter acc dom.(q))
              dom.(p) rest
        in
        let next = Int_set.add l meet in
        if not (Int_set.equal next dom.(l)) then begin
          dom.(l) <- next;
          changed := true
        end
      end
    done
  done;
  (* Immediate dominator: the strict dominator dominated by all others. *)
  let idoms =
    Array.init n (fun l ->
        if (not reach.(l)) || l = entry then None
        else begin
          let strict = Int_set.remove l dom.(l) in
          Int_set.fold
            (fun cand best ->
              match best with
              | None -> Some cand
              | Some b ->
                (* cand is "closer" if b dominates cand *)
                if Int_set.mem b dom.(cand) then Some cand else best)
            strict None
        end)
  in
  { dom; reach; idoms }

let compute (f : Ir.Func.t) =
  let n = Ir.Func.num_blocks f in
  let preds = Ir.Func.predecessors f in
  solve ~n ~entry:Ir.Func.entry ~succs:(Ir.Func.successors f) ~preds

let dominates t a b = Int_set.mem a t.dom.(b)

(* Instruction-point dominance: within one block, program order decides;
   across blocks, block dominance does.  A point never dominates itself
   (the strict variant is what sync-placement checks need: the wait must
   execute before its checked load). *)
let dominates_point t (la, ia) (lb, ib) =
  if la = lb then ia < ib else dominates t la lb

let idom t l = t.idoms.(l)

let reachable t l = t.reach.(l)

(* ------------------------------------------------------------------ *)
(* Post-dominance: dominators of the reversed CFG.  Multi-exit          *)
(* functions get a virtual exit node (label [num_blocks f]) fed by      *)
(* every block without successors; post-dominator sets are computed     *)
(* from it.  Blocks that cannot reach any exit (infinite loops) are     *)
(* unreachable in the reversed graph and post-dominate only themselves. *)
(* ------------------------------------------------------------------ *)

let virtual_exit (f : Ir.Func.t) = Ir.Func.num_blocks f

let compute_post (f : Ir.Func.t) =
  let n = Ir.Func.num_blocks f in
  let exit = n in
  (* Reversed graph over n+1 nodes: each original edge u->v becomes v->u,
     and every block with no successors grows an edge to the virtual exit
     (reversed: exit -> block). *)
  let rsuccs = Array.make (n + 1) [] in
  let rpreds = Array.make (n + 1) [] in
  let add_edge u v =
    (* reversed edge v -> u for original u -> v *)
    rsuccs.(v) <- u :: rsuccs.(v);
    rpreds.(u) <- v :: rpreds.(u)
  in
  for l = 0 to n - 1 do
    match Ir.Func.successors f l with
    | [] -> add_edge l exit
    | ss -> List.iter (fun s -> add_edge l s) ss
  done;
  solve ~n:(n + 1) ~entry:exit ~succs:(fun l -> rsuccs.(l)) ~preds:rpreds

let post_dominates t a b = Int_set.mem a t.dom.(b)

(* Strict point-wise variant, mirroring [dominates_point]: within one
   block the later instruction post-dominates the earlier one. *)
let post_dominates_point t (la, ia) (lb, ib) =
  if la = lb then ia > ib else post_dominates t la lb

let ipdom t l = t.idoms.(l)

let reaches_exit t l = t.reach.(l)
