module Bench = Harness.Bench
open Request

let phase_names = Bench.serve_phase_names

let simulate_request ~id ~tick name =
  {
    rq_id = id;
    rq_op = Simulate;
    rq_bench = Some name;
    rq_source = None;
    rq_input = None;
    rq_mode = "C";
    rq_threshold = 0.05;
    rq_sync_sched = false;
    rq_tick = tick;
    rq_deadline_s = None;
    rq_fault = None;
  }

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else
    let rank = int_of_float (ceil (float_of_int n *. p /. 100.0)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let phase_of_outcome ~name ~wall_ns (o : Service.outcome) =
  let st = o.Service.so_stats in
  if st.Service.st_error > 0 then
    failwith
      (Printf.sprintf "serve load phase %s: %d error response(s)" name
         st.Service.st_error);
  let walls =
    List.filter_map
      (fun r -> if r.rs_status = Sshed then None else r.rs_wall_ns)
      o.Service.so_responses
    |> Array.of_list
  in
  Array.sort compare walls;
  {
    Bench.sv_name = name;
    sv_requests = st.Service.st_requests;
    sv_completed = st.Service.st_requests - st.Service.st_shed;
    sv_shed = st.Service.st_shed;
    sv_degraded = st.Service.st_degraded;
    sv_cache_hits = st.Service.st_cache_hits;
    sv_cache_misses = st.Service.st_cache_misses;
    sv_wall_ns = wall_ns;
    sv_p50_ns = percentile walls 50.0;
    sv_p99_ns = percentile walls 99.0;
  }

let rm_rf = Cache.remove_tree

let run ?cache_dir ~jobs () =
  let owned, dir =
    match cache_dir with
    | Some d -> (false, d)
    | None ->
      ( true,
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "mrvcc-serve-bench.%d" (Unix.getpid ())) )
  in
  if owned then rm_rf dir;
  let config which =
    {
      Service.default_config with
      Service.sc_cache_dir = Some dir;
      (* Generous deadline: the load phases measure latency, they must
         never trip the deadline machinery on a slow host. *)
      sc_deadline_s = 120.0;
      sc_jobs = jobs;
      sc_rate = jobs;
      sc_queue = (match which with `Burst -> 10 | _ -> 64);
    }
  in
  let names = Workloads.Registry.names in
  let stream = List.mapi (fun i n -> simulate_request ~id:i ~tick:None n) names in
  (* Burst: two copies of the stream collapsed into one admission tick —
     deliberately more arrivals than the queue holds. *)
  let burst =
    List.concat
      [
        stream |> List.map (fun r -> { r with rq_tick = Some 0 });
        names
        |> List.mapi (fun i n ->
               simulate_request ~id:(100 + i) ~tick:(Some 0) n);
      ]
  in
  let timed name which requests =
    let t0 = Unix.gettimeofday () in
    let o = Service.run (config which) requests in
    let wall_ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
    phase_of_outcome ~name ~wall_ns o
  in
  Fun.protect
    ~finally:(fun () -> if owned then rm_rf dir)
    (fun () ->
      (* Sequenced explicitly: warm must see the cache cold populated. *)
      let cold = timed "serve_cold" `Cold stream in
      let warm = timed "serve_warm" `Warm stream in
      let burst = timed "serve_burst" `Burst burst in
      [ cold; warm; burst ])
