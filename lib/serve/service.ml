module Json = Harness.Json
module Jobs = Harness.Jobs
open Request

exception Transient of string

(* A fault (or fault/op combination) with no injection site here: the
   request resolves to a typed error the chaos harness reads as
   "skipped", never a silent no-op that would fake an Absorbed cell. *)
exception Inapplicable of string

type config = {
  sc_cache_dir : string option;
  sc_queue : int;
  sc_rate : int;
  sc_jobs : int;
  sc_deadline_s : float;
  sc_retries : int;
  sc_backoff_s : float;
  sc_timing : bool;
}

let default_config =
  {
    sc_cache_dir = Some "_mrvcc_cache";
    sc_queue = 8;
    sc_rate = 2;
    sc_jobs = 2;
    sc_deadline_s = 10.0;
    sc_retries = 1;
    sc_backoff_s = 0.0;
    sc_timing = true;
  }

type stats = {
  st_requests : int;
  st_ok : int;
  st_degraded : int;
  st_shed : int;
  st_deadline : int;
  st_error : int;
  st_cache_hits : int;
  st_cache_misses : int;
  st_cache_stale : int;
  st_quarantined : string list;
  st_cache : Cache.stats option;
}

type outcome = { so_responses : response list; so_stats : stats }

(* ------------------------------------------------------------------ *)
(* Request resolution and content addressing                           *)
(* ------------------------------------------------------------------ *)

let resolve rq =
  match (rq.rq_bench, rq.rq_source) with
  | Some name, _ -> begin
    match Workloads.Registry.find name with
    | Some w ->
      let input =
        match rq.rq_input with
        | Some xs -> Array.of_list xs
        | None -> w.Workloads.Workload.ref_input
      in
      Ok (w.Workloads.Workload.source, input)
    | None ->
      Error
        (Printf.sprintf "unknown benchmark %S (have: %s)" name
           (String.concat ", " Workloads.Registry.names))
  end
  | None, Some source ->
    Ok (source, Array.of_list (Option.value rq.rq_input ~default:[]))
  | None, None -> Error "need a \"bench\" or \"source\""

let key_parts ~fault rq ~source ~input =
  [
    "op=" ^ op_name rq.rq_op;
    "src=" ^ source;
    "input=" ^ String.concat "," (List.map string_of_int (Array.to_list input));
    "mode=" ^ rq.rq_mode;
    Printf.sprintf "threshold=%.6f" rq.rq_threshold;
    "sync_sched=" ^ string_of_bool rq.rq_sync_sched;
    "fault=" ^ fault;
  ]

let exact_key rq ~source ~input =
  Cache.fingerprint
    (key_parts ~fault:(Option.value rq.rq_fault ~default:"") rq ~source ~input)

(* Last-known-good key: the same artifact identity with the fault
   dimension erased, so a faulty request can fall back to the artifact a
   healthy run of the same program/config stored. *)
let lkg_key rq ~source ~input = Cache.fingerprint (key_parts ~fault:"" rq ~source ~input)

(* ------------------------------------------------------------------ *)
(* The computation behind one request                                  *)
(* ------------------------------------------------------------------ *)

let config_of_mode = function
  | "U" -> Tls.Config.u_mode
  | "C" -> Tls.Config.c_mode
  | "H" -> Tls.Config.h_mode
  | "P" -> Tls.Config.p_mode
  | _ -> Tls.Config.b_mode

type injected =
  | No_inj
  | Serve_inj of Faults.Servefault.kind
  | Plan_inj of Faults.Fault.plan

let injection rq =
  match rq.rq_fault with
  | None -> No_inj
  | Some name -> (
    match Faults.Servefault.find name with
    | Some s -> Serve_inj s.Faults.Servefault.sf_kind
    | None -> (
      match Faults.Fault.find name with
      | Some s -> Plan_inj s.Faults.Fault.plan
      | None -> No_inj (* parse validated the name; unreachable *)))

let num n = Json.Jnum (float_of_int n)

let compile_artifact rq ~source ~profile_input ~dep_input ?profile_fault () =
  let memory_sync =
    match rq.rq_mode with
    | "U" | "H" | "P" -> Tlscore.Pipeline.No_memory_sync
    | _ ->
      Tlscore.Pipeline.Profiled { dep_input; threshold = rq.rq_threshold }
  in
  Tlscore.Pipeline.compile ?profile_fault ~sync_sched:rq.rq_sync_sched ~source
    ~profile_input ~memory_sync ()

(* Run the request's op, with any PR2 fault plan applied at the layer it
   targets (profile distortion at compile time, IR mutation on the
   transformed program, machine fault in the simulator config).  Raises
   the typed frontend/simulator exceptions, {!Transient} (injected), or
   {!Inapplicable}. *)
let compute rq ~source ~input ~plan =
  let profile_input, run_input =
    match plan with
    | Some Faults.Fault.Stale_train -> (
      (* The stale-profile fault needs two distinct inputs: profile on the
         benchmark's train input, run on the requested (ref) input. *)
      match Option.map Workloads.Registry.find rq.rq_bench with
      | Some (Some w) -> (w.Workloads.Workload.train_input, input)
      | _ -> raise (Inapplicable "stale-train needs a bundled benchmark"))
    | _ -> (input, input)
  in
  let profile_fault =
    match plan with
    | Some (Faults.Fault.Profile_fault pf) ->
      Some (Faults.Proffault.apply pf)
    | _ -> None
  in
  let compiled =
    compile_artifact rq ~source ~profile_input ~dep_input:profile_input
      ?profile_fault ()
  in
  let digest = Tlscore.Pipeline.artifact_digest compiled in
  match rq.rq_op with
  | Compile ->
    (match plan with
    | Some (Faults.Fault.Ir_fault _ | Faults.Fault.Sim_fault _) ->
      raise (Inapplicable "simulator-layer fault on a compile-only op")
    | _ -> ());
    Json.Jobj
      [
        ("digest", Json.Jstr digest);
        ("regions", num (List.length compiled.Tlscore.Pipeline.selected));
        ( "lint_findings",
          num (List.length compiled.Tlscore.Pipeline.lint_findings) );
      ]
  | Profile ->
    (match plan with
    | Some (Faults.Fault.Ir_fault _ | Faults.Fault.Sim_fault _) ->
      raise (Inapplicable "simulator-layer fault on a profile-only op")
    | _ -> ());
    Json.Jobj
      [
        ("digest", Json.Jstr digest);
        ("selected", num (List.length compiled.Tlscore.Pipeline.selected));
        ( "dep_profiles",
          num (List.length compiled.Tlscore.Pipeline.dep_profiles) );
      ]
  | Simulate ->
    let code =
      match plan with
      | Some (Faults.Fault.Ir_fault kind) -> (
        match Faults.Irfault.apply kind compiled.Tlscore.Pipeline.prog with
        | None ->
          raise (Inapplicable "IR mutation has no applicable site here")
        | Some a -> Runtime.Code.of_prog a.Faults.Irfault.prog)
      | _ -> compiled.Tlscore.Pipeline.code
    in
    let cfg = config_of_mode rq.rq_mode in
    let cfg =
      match plan with
      | Some (Faults.Fault.Sim_fault f) ->
        { cfg with Tls.Config.sim_faults = [ f ] }
      | _ -> cfg
    in
    let r = Tls.Sim.run cfg code ~input:run_input () in
    let reference = Tlscore.Pipeline.original ~source in
    let seq =
      Tls.Sim.run_sequential cfg
        (Runtime.Code.of_prog reference)
        ~input:run_input
        ~track:compiled.Tlscore.Pipeline.code.Runtime.Code.regions
    in
    Json.Jobj
      [
        ("digest", Json.Jstr digest);
        ("mode", Json.Jstr rq.rq_mode);
        ("seq_cycles", num seq.Tls.Simstats.sq_cycles);
        ("tls_cycles", num r.Tls.Simstats.total_cycles);
        ("epochs_committed", num r.Tls.Simstats.epochs_committed);
        ("epochs_squashed", num r.Tls.Simstats.epochs_squashed);
        ("violations", num r.Tls.Simstats.violations);
        ("faults_fired", num r.Tls.Simstats.faults_fired);
        ( "output_match",
          Json.Jbool (r.Tls.Simstats.output = seq.Tls.Simstats.sq_output) );
        ("output", Json.Jarr (List.map num r.Tls.Simstats.output));
      ]

(* ------------------------------------------------------------------ *)
(* Error classification                                                *)
(* ------------------------------------------------------------------ *)

let classify = function
  | Inapplicable msg -> ("fault-inapplicable", msg)
  | Transient msg -> ("transient", msg)
  | Tls.Sim.Deadlock msg -> ("deadlock", "deadlock: " ^ msg)
  | Tls.Sim.Stuck d -> ("stuck", Tls.Sim.describe_stuck d)
  | Tls.Sim.Cycle_limit { max_cycles; cycle; where } ->
    ( "cycle-limit",
      Printf.sprintf "cycle budget exhausted: %s hit %d cycles (limit %d)"
        where cycle max_cycles )
  | Tls.Sim.Resource_deadlock d ->
    ("resource-deadlock", Tls.Sim.describe_resource_deadlock d)
  | Runtime.Thread.Step_limit { max_steps; icount }
  | Profiler.Runner.Step_limit { max_steps; icount } ->
    ( "step-limit",
      Printf.sprintf "step budget exhausted: %d instructions (limit %d)"
        icount max_steps )
  | Runtime.Thread.Unexpected_stop { reason; icount }
  | Profiler.Runner.Unexpected_stop { reason; icount } ->
    ( "malformed-sequential",
      Printf.sprintf "sequential thread %s after %d instructions" reason
        icount )
  | Lang.Lexer.Error (msg, pos) ->
    ( "frontend",
      Printf.sprintf "lex error at %d:%d: %s" pos.Lang.Token.line
        pos.Lang.Token.col msg )
  | Lang.Parser.Error (msg, pos) ->
    ( "frontend",
      Printf.sprintf "parse error at %d:%d: %s" pos.Lang.Token.line
        pos.Lang.Token.col msg )
  | Lang.Sema.Error (msg, pos) ->
    ( "frontend",
      Printf.sprintf "type error at %d:%d: %s" pos.Lang.Token.line
        pos.Lang.Token.col msg )
  | e -> ("internal", Printexc.to_string e)

let retryable = function Transient _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* One request, end to end                                             *)
(* ------------------------------------------------------------------ *)

let process ~sleep cfg cache rq =
  let started = Unix.gettimeofday () in
  let finish status disp attempts payload =
    let wall_ns =
      if cfg.sc_timing then
        Some
          (int_of_float ((Unix.gettimeofday () -. started) *. 1e9)
          |> max 0)
      else None
    in
    {
      rs_id = rq.rq_id;
      rs_status = status;
      rs_cache = disp;
      rs_attempts = attempts;
      rs_wall_ns = wall_ns;
      rs_payload = payload;
    }
  in
  let fail status attempts err_class err_msg =
    finish status Cnone attempts (Failure { err_class; err_msg })
  in
  match resolve rq with
  | Error msg -> fail Serror 0 "bad-request" msg
  | Ok (source, input) -> (
    let inj = injection rq in
    let plan = match inj with Plan_inj p -> Some p | _ -> None in
    let ekey = exact_key rq ~source ~input in
    let lkg = lkg_key rq ~source ~input in
    let cached =
      match (cache, inj) with
      | Some c, No_inj -> Cache.find c ~key:ekey
      | _ -> None
    in
    let from_payload status disp attempts payload =
      match Json.parse_result payload with
      | Ok j -> Some (finish status disp attempts (Result j))
      | Error _ -> None (* digest-validated, so effectively unreachable *)
    in
    let degraded attempts last_msg =
      let stale =
        match (cache, inj) with
        | Some c, Serve_inj _ -> Cache.find c ~key:lkg
        | _ -> None
      in
      match Option.bind stale (from_payload Sdegraded Cstale attempts) with
      | Some r -> r
      | None -> fail Serror attempts "transient" last_msg
    in
    match Option.bind cached (from_payload Sok Chit 0) with
    | Some r -> r
    | None ->
      let deadline = Option.value rq.rq_deadline_s ~default:cfg.sc_deadline_s in
      let attempt_body ~k ~timeout_s () =
        (match inj with
        | Serve_inj Faults.Servefault.Slow_job ->
          (* Real time, on purpose: the deadline is wall-clock. *)
          Unix.sleepf (timeout_s *. 2.0)
        | Serve_inj Faults.Servefault.Transient_io when k = 0 ->
          raise (Transient "injected transient I/O fault (attempt 1)")
        | Serve_inj Faults.Servefault.Always_transient ->
          raise (Transient "injected persistent transient fault")
        | Serve_inj (Faults.Servefault.Cache_corrupt | Faults.Servefault.Burst)
          ->
          raise (Inapplicable "harness-level fault named in a request")
        | _ -> ());
        compute rq ~source ~input ~plan
      in
      let plan_attempts =
        Jobs.attempt_plan ~timeout_s:deadline ~backoff_s:cfg.sc_backoff_s
          ~retries:cfg.sc_retries
      in
      let rec go k = function
        | [] -> assert false (* attempt_plan is never empty *)
        | (a : Jobs.attempt) :: rest -> (
          if a.Jobs.at_backoff_s > 0.0 then sleep a.Jobs.at_backoff_s;
          match
            Jobs.with_deadline ~timeout_s:a.Jobs.at_timeout_s
              (attempt_body ~k ~timeout_s:a.Jobs.at_timeout_s)
              ()
          with
          | None ->
            if rest <> [] then go (k + 1) rest
            else
              fail Sdeadline (k + 1) "deadline"
                (Printf.sprintf
                   "deadline exceeded: %d attempt(s), last under %.3fs"
                   (k + 1) a.Jobs.at_timeout_s)
          | Some (Ok result) ->
            let disp =
              match (cache, inj) with
              | Some c, No_inj ->
                Cache.store c ~key:ekey (Json.to_string result);
                Cmiss
              | _ -> Cnone (* fault-injected artifacts are never cached *)
            in
            finish Sok disp (k + 1) (Result result)
          | Some (Error (e, _)) when retryable e ->
            if rest <> [] then go (k + 1) rest
            else degraded (k + 1) (snd (classify e))
          | Some (Error (e, _)) ->
            let err_class, err_msg = classify e in
            fail Serror (k + 1) err_class err_msg)
      in
      go 0 plan_attempts)

let process ~sleep cfg cache rq =
  try process ~sleep cfg cache rq
  with e ->
    {
      rs_id = rq.rq_id;
      rs_status = Serror;
      rs_cache = Cnone;
      rs_attempts = 0;
      rs_wall_ns = None;
      rs_payload =
        Failure { err_class = "internal"; err_msg = Printexc.to_string e };
    }

(* ------------------------------------------------------------------ *)
(* Tick scheduler: bounded admission, rate-limited dispatch            *)
(* ------------------------------------------------------------------ *)

let validate cfg =
  let bad msg = invalid_arg ("Serve.Service.run: " ^ msg) in
  if cfg.sc_queue < 1 then bad "queue capacity must be >= 1";
  if cfg.sc_rate < 1 then bad "rate must be >= 1";
  if cfg.sc_jobs < 1 then bad "jobs must be >= 1";
  if cfg.sc_deadline_s <= 0.0 then bad "deadline must be positive";
  if cfg.sc_retries < 0 then bad "retries must be non-negative";
  if cfg.sc_backoff_s < 0.0 then bad "backoff must be non-negative"

let run ?(sleep = Unix.sleepf) cfg requests =
  validate cfg;
  let cache, quarantined =
    match cfg.sc_cache_dir with
    | None -> (None, [])
    | Some dir ->
      let c, q = Cache.open_dir ~dir in
      (Some c, q)
  in
  let n = List.length requests in
  let responses = Array.make n None in
  let items = List.mapi (fun i r -> (i, r)) requests in
  let tick_of (i, r) = Option.value r.rq_tick ~default:i in
  let ticks =
    List.sort_uniq compare (List.map tick_of items)
  in
  let arrivals t = List.filter (fun it -> tick_of it = t) items in
  let queue = Queue.create () in
  let pool = Jobs.create ~jobs:cfg.sc_jobs () in
  let dispatch batch =
    pool.Jobs.map
      (fun (i, rq) -> (i, process ~sleep cfg cache rq))
      batch
    |> List.iter (fun (i, r) -> responses.(i) <- Some r)
  in
  let drain_step () =
    let batch = ref [] in
    let take = min cfg.sc_rate (Queue.length queue) in
    for _ = 1 to take do
      batch := Queue.pop queue :: !batch
    done;
    dispatch (List.rev !batch)
  in
  let rec drain_steps k =
    if k > 0 && not (Queue.is_empty queue) then begin
      drain_step ();
      drain_steps (k - 1)
    end
  in
  let rec loop = function
    | [] -> ()
    | t :: rest ->
      List.iter
        (fun (i, rq) ->
          if Queue.length queue < cfg.sc_queue then Queue.push (i, rq) queue
          else
            (* Bounded admission: overflow is shed with a typed response,
               never queued unboundedly and never dropped silently. *)
            responses.(i) <-
              Some
                {
                  rs_id = rq.rq_id;
                  rs_status = Sshed;
                  rs_cache = Cnone;
                  rs_attempts = 0;
                  rs_wall_ns = None;
                  rs_payload =
                    Failure
                      {
                        err_class = "shed";
                        err_msg =
                          Printf.sprintf
                            "admission queue full (capacity %d) at tick %d"
                            cfg.sc_queue t;
                      };
                })
        (arrivals t);
      (match rest with
      | next :: _ -> drain_steps (next - t)
      | [] -> ());
      loop rest
  in
  loop ticks;
  while not (Queue.is_empty queue) do
    drain_step ()
  done;
  let so_responses =
    Array.to_list responses
    |> List.map (function
         | Some r -> r
         | None -> assert false (* every request was shed or dispatched *))
  in
  let count p = List.length (List.filter p so_responses) in
  let so_stats =
    {
      st_requests = n;
      st_ok = count (fun r -> r.rs_status = Sok);
      st_degraded = count (fun r -> r.rs_status = Sdegraded);
      st_shed = count (fun r -> r.rs_status = Sshed);
      st_deadline = count (fun r -> r.rs_status = Sdeadline);
      st_error = count (fun r -> r.rs_status = Serror);
      st_cache_hits = count (fun r -> r.rs_cache = Chit);
      st_cache_misses = count (fun r -> r.rs_cache = Cmiss);
      st_cache_stale = count (fun r -> r.rs_cache = Cstale);
      st_quarantined = quarantined;
      st_cache = Option.map Cache.stats cache;
    }
  in
  { so_responses; so_stats }

let exit_code st =
  if st.st_error > 0 then 1
  else if st.st_shed > 0 then 8
  else if st.st_deadline > 0 then 9
  else 0
