(** Content-addressed, crash-safe on-disk artifact cache (DESIGN §14).

    Entries are keyed by an MD5 fingerprint of the logical key parts
    (program source digest + op + configuration); each entry file starts
    with a one-line header carrying the payload's own digest and length,
    so corruption — a flipped byte, a truncation, a partial overwrite —
    is always {e detected} on read, never served.

    Crash safety is the PR4 protocol: writes go to a [.tmp.<pid>] file
    in the cache directory, are fsynced, then renamed over the entry, so
    a [kill -9] at any point leaves either the complete old entry, the
    complete new one, or a stray temp file that {!open_dir} sweeps.  A
    corrupt entry is {e quarantined} (moved into [quarantine/] with its
    bytes intact for post-mortem) and treated as a miss, so the next
    request recomputes and re-stores it.

    All counters are atomics: workers on several domains may hit one
    cache concurrently. *)

type t

type stats = {
  cs_hits : int;
  cs_misses : int;
  cs_stores : int;
  cs_quarantined : int;  (* corrupt entries moved aside, startup + reads *)
}

(** Open (creating if needed) a cache rooted at [dir].  Startup
    validation scans every entry, quarantines corrupt ones and removes
    stray temp files from crashed writers; the returned list names the
    quarantined entries (empty on a healthy cache). *)
val open_dir : dir:string -> t * string list

val dir : t -> string

(** Fingerprint of a logical key: MD5 over the length-prefixed parts
    (no separator ambiguity). *)
val fingerprint : string list -> string

(** [find t ~key] returns the validated payload, counting a hit; a
    missing entry is a miss and a corrupt entry is quarantined, counted,
    and reported as a miss. *)
val find : t -> key:string -> string option

(** Crash-safe store (temp + fsync + rename).  [?before_rename] is the
    kill-mid-write test hook, parked between the temp write and the
    rename. *)
val store : ?before_rename:(unit -> unit) -> t -> key:string -> string -> unit

val stats : t -> stats

(** Path of the entry file a key maps to (exists or not) — lets tests
    and the chaos harness corrupt precisely the right bytes. *)
val entry_path : t -> key:string -> string

(** Recursively delete a cache directory (missing path is a no-op) —
    how the load and chaos harnesses reset their scratch caches. *)
val remove_tree : string -> unit
