(** The persistent compile service (DESIGN §14): a bounded-admission,
    deadline-bounded, cache-backed executor for {!Request.t} streams.

    Scheduling is tick-based and fully deterministic: each request
    carries an admission tick (defaulting to its arrival index), arrivals
    of one tick are admitted into a bounded queue — overflow is {e shed}
    with a typed [shed] response, never silently dropped — and up to
    [sc_rate] queued requests are dispatched per tick onto a
    {!Harness.Jobs} pool.

    Each dispatched request runs under the {!Harness.Jobs.attempt_plan}
    schedule: attempt [k] gets a wall deadline of [deadline * 2^k]
    (via {!Harness.Jobs.with_deadline}) after a [backoff * 2^(k-1)]
    sleep.  Transient faults are retried; typed compiler/simulator errors
    are not (they would fail identically); a request whose every attempt
    misses its deadline resolves to a typed [deadline] response.

    Degradation ladder (the service-layer NULL-signal fallback): exact
    cache hit → compute → last-known-good artifact served [degraded]
    with cache disposition [stale] → typed error.  Artifacts are stored
    through {!Cache.store} (temp + fsync + rename), so a crash
    mid-store can never corrupt a served artifact. *)

(** Raised by an executor attempt on an injected or environmental
    transient fault; the only exception class the retry loop retries. *)
exception Transient of string

type config = {
  sc_cache_dir : string option;  (* None = caching off *)
  sc_queue : int;                (* admission queue capacity, >= 1 *)
  sc_rate : int;                 (* dispatches per tick, >= 1 *)
  sc_jobs : int;                 (* worker pool width, >= 1 *)
  sc_deadline_s : float;         (* default per-request deadline *)
  sc_retries : int;              (* extra attempts after the first *)
  sc_backoff_s : float;          (* base backoff between attempts *)
  sc_timing : bool;              (* emit wall_ns in responses *)
}

(** queue 8, rate 2, jobs 2, deadline 10s, 1 retry, 0 backoff, timing
    on, cache at [_mrvcc_cache]. *)
val default_config : config

type stats = {
  st_requests : int;
  st_ok : int;
  st_degraded : int;
  st_shed : int;
  st_deadline : int;
  st_error : int;
  st_cache_hits : int;     (* responses resolved by an exact cache hit *)
  st_cache_misses : int;   (* responses computed after an exact miss *)
  st_cache_stale : int;    (* responses served from last-known-good *)
  st_quarantined : string list;  (* entries quarantined at startup *)
  st_cache : Cache.stats option; (* raw cache counters, None = cache off *)
}

type outcome = {
  so_responses : Request.response list;  (* in request order *)
  so_stats : stats;
}

(** Resolve a request's program text and input vector ([Error] on an
    unknown benchmark). *)
val resolve : Request.t -> (string * int array, string) result

(** The exact content-address of a request's artifact (program source,
    op, input, mode, threshold, sync-sched, fault) — exposed so the
    chaos harness can corrupt precisely this entry on disk. *)
val exact_key : Request.t -> source:string -> input:int array -> string

(** Run a whole request stream to completion.  [?sleep] (default
    [Unix.sleepf]) services backoff sleeps — injectable so tests don't
    wait; injected fault sleeps always use real time, since deadlines
    are wall-clock.  Never raises on a per-request failure: every
    request gets exactly one typed response. *)
val run : ?sleep:(float -> unit) -> config -> Request.t list -> outcome

(** Driver exit code: [1] if any [error] response, else [8] if any
    request was shed, else [9] if any deadline was exceeded, else
    [0]. *)
val exit_code : stats -> int
