module Json = Harness.Json
open Request

type outcome =
  | Passed
  | Absorbed
  | Degraded
  | Detected of string
  | Skipped
  | Failed of string

type cell = {
  c_program : string;
  c_fault : string;
  c_class : string;
  c_outcome : outcome;
}

let base_request ?fault ?deadline ?tick ~id name =
  {
    rq_id = id;
    rq_op = Simulate;
    rq_bench = Some name;
    rq_source = None;
    rq_input = None;
    rq_mode = "C";
    rq_threshold = 0.05;
    rq_sync_sched = false;
    rq_tick = tick;
    rq_deadline_s = deadline;
    rq_fault = fault;
  }

let svc_config ~jobs ~queue ~dir =
  {
    Service.sc_cache_dir = Some dir;
    sc_queue = queue;
    sc_rate = 4;
    sc_jobs = jobs;
    sc_deadline_s = 60.0;
    sc_retries = 1;
    sc_backoff_s = 0.0;
    sc_timing = false;
  }

let run_svc cfg rqs = Service.run ~sleep:(fun _ -> ()) cfg rqs

let run_one cfg rq =
  match run_svc cfg [ rq ] with
  | { Service.so_responses = [ r ]; so_stats } -> (r, so_stats)
  | _ -> assert false

let result_field r name =
  match r.rs_payload with Result j -> Json.field j name | Failure _ -> None

let result_bool r name =
  match result_field r name with Some (Json.Jbool b) -> Some b | _ -> None

let result_int r name =
  match result_field r name with
  | Some (Json.Jnum f) -> Some (int_of_float f)
  | _ -> None

let result_str r name =
  match result_field r name with Some (Json.Jstr s) -> Some s | _ -> None

let failure r =
  match r.rs_payload with
  | Failure { err_class; err_msg } -> Some (err_class, err_msg)
  | Result _ -> None

let describe r =
  match failure r with
  | Some (cls, msg) -> Printf.sprintf "%s (%s): %s" (status_name r.rs_status) cls msg
  | None -> Printf.sprintf "unexpected status %s" (status_name r.rs_status)

(* The fault-free request correct-output check, shared by the baseline
   and the absorbed-fault cells. *)
let check_ok r ~on_ok =
  match r.rs_status with
  | Sok -> (
    match result_bool r "output_match" with
    | Some true -> on_ok
    | _ -> Failed "output differs from sequential reference")
  | _ -> Failed (describe r)

let serve_cell ~cfg ~dir ~baseline_digest prog (spec : Faults.Servefault.spec) =
  let rq ?deadline ?tick ~id () =
    base_request ?deadline ?tick ~fault:spec.Faults.Servefault.sf_name ~id prog
  in
  match spec.Faults.Servefault.sf_kind with
  | Faults.Servefault.Slow_job -> (
    (* A tight per-request deadline keeps the injected sleeps short; the
       retry schedule still runs in full before the typed rejection. *)
    let r, _ = run_one cfg (rq ~deadline:0.05 ~id:1 ()) in
    match r.rs_status with
    | Sdeadline -> Detected (Printf.sprintf "deadline after %d attempts" r.rs_attempts)
    | _ -> Failed (describe r))
  | Faults.Servefault.Transient_io -> (
    let r, _ = run_one cfg (rq ~id:2 ()) in
    match r.rs_status with
    | Sok when r.rs_attempts < 2 -> Failed "absorbed without a retry"
    | _ -> check_ok r ~on_ok:Absorbed)
  | Faults.Servefault.Always_transient -> (
    let r, _ = run_one cfg (rq ~id:3 ()) in
    match r.rs_status with
    | Sdegraded when r.rs_cache = Cstale ->
      if result_str r "digest" = baseline_digest then Degraded
      else Failed "degraded artifact is not the last-known-good one"
    | _ -> Failed (describe r))
  | Faults.Servefault.Cache_corrupt -> (
    (* Flip a payload byte of the primed entry on disk, then replay the
       fault-free request: the service must detect the bad digest,
       quarantine, and recompute. *)
    let prime = base_request ~id:4 prog in
    match Service.resolve prime with
    | Error msg -> Failed msg
    | Ok (source, input) -> (
      let key = Service.exact_key prime ~source ~input in
      let c, _ = Cache.open_dir ~dir in
      let path = Cache.entry_path c ~key in
      if not (Sys.file_exists path) then
        Failed "expected a primed cache entry to corrupt"
      else begin
        let ic = open_in_bin path in
        let n = in_channel_length ic in
        let bytes = Bytes.of_string (really_input_string ic n) in
        close_in ic;
        let last = Bytes.length bytes - 1 in
        Bytes.set bytes last (Char.chr (Char.code (Bytes.get bytes last) lxor 0xff));
        let oc = open_out_bin path in
        output_bytes oc bytes;
        close_out oc;
        let r, st = run_one cfg prime in
        let quarantined =
          st.Service.st_quarantined <> []
          || match st.Service.st_cache with
             | Some cs -> cs.Cache.cs_quarantined > 0
             | None -> false
        in
        match r.rs_status with
        | Sok when r.rs_cache = Chit -> Failed "corrupt entry served as a hit"
        | Sok when not quarantined -> Failed "corrupt entry not quarantined"
        | _ -> check_ok r ~on_ok:Absorbed
      end))
  | Faults.Servefault.Burst -> (
    let cfg = { cfg with Service.sc_queue = 4 } in
    let rqs = List.init 12 (fun i -> base_request ~tick:0 ~id:(10 + i) prog) in
    let o = run_svc cfg rqs in
    let st = o.Service.so_stats in
    if
      st.Service.st_error = 0
      && st.Service.st_shed > 0
      && st.Service.st_ok = st.Service.st_requests - st.Service.st_shed
    then
      Detected
        (Printf.sprintf "%d admitted ok, %d shed (typed)" st.Service.st_ok
           st.Service.st_shed)
    else
      Failed
        (Printf.sprintf "burst: %d ok, %d shed, %d errors of %d"
           st.Service.st_ok st.Service.st_shed st.Service.st_error
           st.Service.st_requests))

let plan_cell ~cfg prog (spec : Faults.Fault.spec) =
  let r, _ = run_one cfg (base_request ~fault:spec.Faults.Fault.name ~id:5 prog) in
  let detectable = spec.Faults.Fault.classification = Faults.Fault.Detectable in
  match r.rs_status with
  | Sok -> (
    let armed =
      match spec.Faults.Fault.plan with
      | Faults.Fault.Sim_fault _ -> result_int r "faults_fired" <> Some 0
      | _ -> true
    in
    if not armed then Skipped
    else
      match result_bool r "output_match" with
      | Some true -> Absorbed
      | _ -> Failed "output differs from sequential reference")
  | Serror -> (
    match failure r with
    | Some (("deadlock" | "stuck"), msg) when detectable -> Detected msg
    | Some ("fault-inapplicable", _) -> Skipped
    | Some ("cycle-limit", _) ->
      Failed "hang: cycle budget hit (watchdog missed it)"
    | Some (cls, msg) -> Failed (cls ^ ": " ^ msg)
    | None -> Failed "error status without an error payload")
  | _ -> Failed (describe r)

let run_program ~log ~jobs ~cache_dir prog =
  let dir = Filename.concat cache_dir prog in
  Cache.remove_tree dir;
  let cfg = svc_config ~jobs ~queue:16 ~dir in
  let cell fault cls outcome =
    { c_program = prog; c_fault = fault; c_class = cls; c_outcome = outcome }
  in
  (* The baseline doubles as the cache-priming run: its stored artifact
     is the last-known-good the degradation cells fall back to. *)
  let baseline_r, _ = run_one cfg (base_request ~id:0 prog) in
  let baseline = cell "none" "baseline" (check_ok baseline_r ~on_ok:Passed) in
  let baseline_digest = result_str baseline_r "digest" in
  let serve_cells =
    List.map
      (fun (spec : Faults.Servefault.spec) ->
        cell spec.Faults.Servefault.sf_name
          (Faults.Servefault.expectation_name spec.Faults.Servefault.sf_expect)
          (serve_cell ~cfg ~dir ~baseline_digest prog spec))
      Faults.Servefault.catalog
  in
  let plan_cells =
    List.map
      (fun (spec : Faults.Fault.spec) ->
        cell spec.Faults.Fault.name
          (Faults.Fault.classification_name spec.Faults.Fault.classification)
          (plan_cell ~cfg prog spec))
      Faults.Fault.catalog
  in
  let cells = (baseline :: serve_cells) @ plan_cells in
  let failed =
    List.length
      (List.filter
         (fun c -> match c.c_outcome with Failed _ -> true | _ -> false)
         cells)
  in
  log
    (Printf.sprintf "%-12s %d cells%s" prog (List.length cells)
       (if failed = 0 then "" else Printf.sprintf ", %d FAILED" failed));
  cells

let run ?(log = fun _ -> ()) ?(jobs = 1) ~cache_dir ~programs () =
  List.concat_map (run_program ~log ~jobs ~cache_dir) programs

let outcome_letter = function
  | Passed -> 'P'
  | Absorbed -> 'A'
  | Degraded -> 'G'
  | Detected _ -> 'D'
  | Skipped -> 'S'
  | Failed _ -> 'F'

let count_failed cells =
  List.length
    (List.filter
       (fun c -> match c.c_outcome with Failed _ -> true | _ -> false)
       cells)

let ordered key cells =
  List.rev
    (List.fold_left
       (fun acc c ->
         let k = key c in
         if List.mem k acc then acc else k :: acc)
       [] cells)

let render_table cells =
  let buf = Buffer.create 1024 in
  let faults = ordered (fun c -> c.c_fault) cells in
  let programs = ordered (fun c -> c.c_program) cells in
  let class_of fault =
    List.find_map
      (fun c -> if String.equal c.c_fault fault then Some c.c_class else None)
      cells
    |> Option.value ~default:"?"
  in
  let letter fault prog =
    match
      List.find_opt
        (fun c ->
          String.equal c.c_fault fault && String.equal c.c_program prog)
        cells
    with
    | Some c -> String.make 1 (outcome_letter c.c_outcome)
    | None -> "-"
  in
  let rows =
    List.map
      (fun fault ->
        fault :: class_of fault :: List.map (letter fault) programs)
      faults
  in
  let header = "fault" :: "class" :: programs in
  let table = header :: rows in
  let ncols = List.length header in
  let width i =
    List.fold_left (fun w row -> max w (String.length (List.nth row i))) 0 table
  in
  let widths = List.init ncols width in
  List.iter
    (fun row ->
      List.iteri
        (fun i c ->
          Buffer.add_string buf (Printf.sprintf "%-*s" (List.nth widths i) c);
          if i < ncols - 1 then Buffer.add_string buf "  ")
        row;
      Buffer.add_char buf '\n')
    table;
  let tally letter =
    List.length
      (List.filter (fun c -> outcome_letter c.c_outcome = letter) cells)
  in
  Buffer.add_string buf
    (Printf.sprintf
       "cells: %d total | %d passed | %d absorbed | %d degraded | %d detected \
        | %d skipped | %d FAILED\n"
       (List.length cells) (tally 'P') (tally 'A') (tally 'G') (tally 'D')
       (tally 'S') (tally 'F'));
  Buffer.contents buf
