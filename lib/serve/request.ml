module Json = Harness.Json

type op = Compile | Simulate | Profile

type t = {
  rq_id : int;
  rq_op : op;
  rq_bench : string option;
  rq_source : string option;
  rq_input : int list option;
  rq_mode : string;
  rq_threshold : float;
  rq_sync_sched : bool;
  rq_tick : int option;
  rq_deadline_s : float option;
  rq_fault : string option;
}

let op_name = function
  | Compile -> "compile"
  | Simulate -> "simulate"
  | Profile -> "profile"

let op_of_name = function
  | "compile" -> Some Compile
  | "simulate" -> Some Simulate
  | "profile" -> Some Profile
  | _ -> None

let modes = [ "U"; "C"; "H"; "P"; "B" ]

let known_fields =
  [
    "id"; "op"; "bench"; "source"; "input"; "mode"; "threshold"; "sync_sched";
    "tick"; "deadline_s"; "fault";
  ]

let ( let* ) = Result.bind

let parse_obj j =
  let* fields =
    match j with
    | Json.Jobj fs -> Ok fs
    | _ -> Error "request is not a JSON object"
  in
  let* () =
    match
      List.find_opt (fun (k, _) -> not (List.mem k known_fields)) fields
    with
    | Some (k, _) -> Error (Printf.sprintf "unknown field %S" k)
    | None -> Ok ()
  in
  let* id =
    match Json.field j "id" with
    | None -> Error "missing \"id\""
    | Some v -> Json.as_int "id" v
  in
  let* () = if id >= 0 then Ok () else Error "\"id\" must be non-negative" in
  let* opname =
    match Json.field j "op" with
    | None -> Error "missing \"op\""
    | Some v -> Json.as_str "op" v
  in
  let* op =
    match op_of_name opname with
    | Some op -> Ok op
    | None ->
      Error
        (Printf.sprintf "unknown op %S (have compile, simulate, profile)"
           opname)
  in
  let* bench = Json.opt_str j "bench" in
  let* source = Json.opt_str j "source" in
  let* () =
    match (bench, source) with
    | Some _, Some _ -> Error "give exactly one of \"bench\" / \"source\""
    | None, None -> Error "need a \"bench\" or \"source\""
    | _ -> Ok ()
  in
  let* input =
    match Json.field j "input" with
    | None -> Ok None
    | Some v ->
      let* items = Json.as_arr "input" v in
      let* ints =
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* n = Json.as_int "input element" item in
            Ok (n :: acc))
          (Ok []) items
      in
      Ok (Some (List.rev ints))
  in
  let* mode =
    let* m = Json.opt_str j "mode" in
    match m with
    | None -> Ok "C"
    | Some m when List.mem m modes -> Ok m
    | Some m ->
      Error (Printf.sprintf "unknown mode %S (have U, C, H, P, B)" m)
  in
  let* threshold =
    let* t = Json.opt_num j "threshold" in
    match t with
    | None -> Ok 0.05
    | Some t when t >= 0.0 && t <= 1.0 -> Ok t
    | Some t -> Error (Printf.sprintf "\"threshold\" %g out of [0,1]" t)
  in
  let* sync_sched =
    let* b = Json.opt_bool j "sync_sched" in
    Ok (Option.value b ~default:false)
  in
  let* tick =
    let* t = Json.opt_int j "tick" in
    match t with
    | Some t when t < 0 -> Error "\"tick\" must be non-negative"
    | t -> Ok t
  in
  let* deadline_s =
    let* d = Json.opt_num j "deadline_s" in
    match d with
    | Some d when d <= 0.0 -> Error "\"deadline_s\" must be positive"
    | d -> Ok d
  in
  let* fault =
    let* f = Json.opt_str j "fault" in
    match f with
    | None -> Ok None
    | Some name
      when Faults.Servefault.find name <> None || Faults.Fault.find name <> None
      ->
      Ok (Some name)
    | Some name -> Error (Printf.sprintf "unknown fault %S" name)
  in
  Ok
    {
      rq_id = id;
      rq_op = op;
      rq_bench = bench;
      rq_source = source;
      rq_input = input;
      rq_mode = mode;
      rq_threshold = threshold;
      rq_sync_sched = sync_sched;
      rq_tick = tick;
      rq_deadline_s = deadline_s;
      rq_fault = fault;
    }

let parse_line ~lineno line =
  let trimmed = String.trim line in
  if String.equal trimmed "" || (String.length trimmed > 0 && trimmed.[0] = '#')
  then Ok None
  else
    let located msg = Printf.sprintf "request line %d: %s" lineno msg in
    match Json.parse_result trimmed with
    | Error msg -> Error (located msg)
    | Ok j -> (
      match parse_obj j with
      | Ok r -> Ok (Some r)
      | Error msg -> Error (located msg))

let parse_all text =
  let lines = String.split_on_char '\n' text in
  let requests, errors =
    List.fold_left
      (fun (rs, es) (lineno, line) ->
        match parse_line ~lineno line with
        | Ok None -> (rs, es)
        | Ok (Some r) -> (r :: rs, es)
        | Error msg -> (rs, msg :: es))
      ([], [])
      (List.mapi (fun i l -> (i + 1, l)) lines)
  in
  let requests = List.rev requests and errors = List.rev errors in
  (* Duplicate ids would make responses ambiguous: reject up front. *)
  let dup_errors =
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun r ->
        if Hashtbl.mem seen r.rq_id then
          Some (Printf.sprintf "duplicate request id %d" r.rq_id)
        else begin
          Hashtbl.add seen r.rq_id ();
          None
        end)
      requests
  in
  match errors @ dup_errors with [] -> Ok requests | es -> Error es

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

type status = Sok | Sdegraded | Sshed | Sdeadline | Serror

type cache_disp = Chit | Cmiss | Cstale | Cnone

type payload =
  | Result of Json.t
  | Failure of { err_class : string; err_msg : string }

type response = {
  rs_id : int;
  rs_status : status;
  rs_cache : cache_disp;
  rs_attempts : int;
  rs_wall_ns : int option;
  rs_payload : payload;
}

let status_name = function
  | Sok -> "ok"
  | Sdegraded -> "degraded"
  | Sshed -> "shed"
  | Sdeadline -> "deadline"
  | Serror -> "error"

let cache_name = function
  | Chit -> "hit"
  | Cmiss -> "miss"
  | Cstale -> "stale"
  | Cnone -> "none"

let response_line r =
  let base =
    [
      ("id", Json.Jnum (float_of_int r.rs_id));
      ("status", Json.Jstr (status_name r.rs_status));
      ("cache", Json.Jstr (cache_name r.rs_cache));
      ("attempts", Json.Jnum (float_of_int r.rs_attempts));
    ]
  in
  let timing =
    match r.rs_wall_ns with
    | None -> []
    | Some ns -> [ ("wall_ns", Json.Jnum (float_of_int ns)) ]
  in
  let tail =
    match r.rs_payload with
    | Result j -> [ ("result", j) ]
    | Failure { err_class; err_msg } ->
      [ ("error_class", Json.Jstr err_class); ("error", Json.Jstr err_msg) ]
  in
  Json.to_string (Json.Jobj (base @ timing @ tail))
