(** The compile service's wire format (DESIGN §14): one JSON object per
    line, requests in and responses out.

    A request line looks like

    {v
    {"id":1, "op":"simulate", "bench":"mcf", "mode":"C"}
    v}

    with optional fields [source] (inline program text, instead of
    [bench]), [input] (an int array overriding the benchmark's reference
    input), [threshold], [sync_sched], [tick] (admission tick; defaults
    to arrival order), [deadline_s] (per-request deadline override) and
    [fault] (a {!Faults.Servefault} or {!Faults.Fault} catalog name to
    inject).  Blank lines and lines starting with [#] are skipped.

    Responses preserve request order and carry a typed [status]
    ([ok]/[degraded]/[shed]/[deadline]/[error]), the cache disposition
    ([hit]/[miss]/[stale]/[none]), the attempt count, and either the
    op's [result] object or an [error_class] + [error] pair. *)

type op = Compile | Simulate | Profile

type t = {
  rq_id : int;
  rq_op : op;
  rq_bench : string option;   (* exactly one of rq_bench / rq_source *)
  rq_source : string option;
  rq_input : int list option; (* None = benchmark reference input *)
  rq_mode : string;           (* U / C / H / P / B; default C *)
  rq_threshold : float;       (* memory-sync threshold; default 0.05 *)
  rq_sync_sched : bool;
  rq_tick : int option;       (* admission tick; default arrival index *)
  rq_deadline_s : float option;
  rq_fault : string option;
}

val op_name : op -> string

(** Parse one line: [Ok None] for a blank or [#]-comment line, [Error]
    with a self-contained message (including [lineno]) otherwise. *)
val parse_line : lineno:int -> string -> (t option, string) result

(** Parse a whole request document (JSONL).  All malformed lines are
    reported, not just the first. *)
val parse_all : string -> (t list, string list) result

(** {2 Responses} *)

type status = Sok | Sdegraded | Sshed | Sdeadline | Serror

(** How the cache participated: [Chit]/[Cmiss] on the exact key,
    [Cstale] when a last-known-good artifact was served degraded,
    [Cnone] when the cache was off or never consulted (shed requests). *)
type cache_disp = Chit | Cmiss | Cstale | Cnone

type payload =
  | Result of Harness.Json.t
  | Failure of { err_class : string; err_msg : string }

type response = {
  rs_id : int;
  rs_status : status;
  rs_cache : cache_disp;
  rs_attempts : int;          (* 0 for shed requests *)
  rs_wall_ns : int option;    (* None under --no-timing *)
  rs_payload : payload;
}

val status_name : status -> string
val cache_name : cache_disp -> string

(** One compact JSON line (no trailing newline), deterministic key
    order. *)
val response_line : response -> string
