type t = {
  c_dir : string;
  hits : int Atomic.t;
  misses : int Atomic.t;
  stores : int Atomic.t;
  quarantined : int Atomic.t;
}

type stats = {
  cs_hits : int;
  cs_misses : int;
  cs_stores : int;
  cs_quarantined : int;
}

let dir t = t.c_dir

let magic = "mrvcc-cache 1"

let entry_suffix = ".entry"

let quarantine_dirname = "quarantine"

(* MD5 over length-prefixed parts: ["ab"; "c"] and ["a"; "bc"] must not
   collide, so each part is preceded by its length. *)
let fingerprint parts =
  let b = Buffer.create 64 in
  List.iter
    (fun p ->
      Buffer.add_string b (string_of_int (String.length p));
      Buffer.add_char b ':';
      Buffer.add_string b p)
    parts;
  Digest.to_hex (Digest.string (Buffer.contents b))

let entry_path t ~key = Filename.concat t.c_dir (key ^ entry_suffix)

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    let parent = Filename.dirname path in
    if String.length parent < String.length path then mkdir_p parent;
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      really_input_string ic n)

(* Entry layout: "<magic> <payload-md5-hex> <payload-length>\n<payload>".
   [parse_entry] returns the payload only if every claim in the header
   checks out against the bytes that follow. *)
let render_entry payload =
  Printf.sprintf "%s %s %d\n%s" magic
    (Digest.to_hex (Digest.string payload))
    (String.length payload) payload

let parse_entry contents =
  match String.index_opt contents '\n' with
  | None -> None
  | Some nl -> (
    let header = String.sub contents 0 nl in
    let payload =
      String.sub contents (nl + 1) (String.length contents - nl - 1)
    in
    match String.split_on_char ' ' header with
    | [ m1; m2; digest; len ]
      when String.equal (m1 ^ " " ^ m2) magic -> (
      match int_of_string_opt len with
      | Some n
        when n = String.length payload
             && String.equal digest (Digest.to_hex (Digest.string payload)) ->
        Some payload
      | _ -> None)
    | _ -> None)

(* Move a corrupt entry into quarantine/, keeping its bytes for
   post-mortem.  A numeric suffix avoids clobbering an earlier
   quarantined generation of the same entry. *)
let quarantine t path =
  let qdir = Filename.concat t.c_dir quarantine_dirname in
  mkdir_p qdir;
  let base = Filename.basename path in
  let rec fresh n =
    let candidate =
      Filename.concat qdir
        (if n = 0 then base else Printf.sprintf "%s.%d" base n)
    in
    if Sys.file_exists candidate then fresh (n + 1) else candidate
  in
  (try Unix.rename path (fresh 0)
   with Unix.Unix_error _ -> ( try Sys.remove path with Sys_error _ -> ()));
  Atomic.incr t.quarantined

let is_entry name =
  let n = String.length name and m = String.length entry_suffix in
  n > m && String.equal (String.sub name (n - m) m) entry_suffix

let has_prefix ~prefix name =
  String.length name >= String.length prefix
  && String.equal (String.sub name 0 (String.length prefix)) prefix

(* Startup validation: quarantine corrupt entries, sweep temp files a
   killed writer left behind.  Unreadable files count as corrupt. *)
let validate_all t =
  let names = try Sys.readdir t.c_dir with Sys_error _ -> [||] in
  Array.sort compare names;
  Array.fold_left
    (fun acc name ->
      let path = Filename.concat t.c_dir name in
      if is_entry name then begin
        let ok =
          match read_file path with
          | contents -> parse_entry contents <> None
          | exception _ -> false
        in
        if ok then acc
        else begin
          quarantine t path;
          name :: acc
        end
      end
      else if has_prefix ~prefix:"tmp." name then begin
        (try Sys.remove path with Sys_error _ -> ());
        acc
      end
      else acc)
    [] names
  |> List.rev

let open_dir ~dir =
  mkdir_p dir;
  let t =
    {
      c_dir = dir;
      hits = Atomic.make 0;
      misses = Atomic.make 0;
      stores = Atomic.make 0;
      quarantined = Atomic.make 0;
    }
  in
  let quarantined = validate_all t in
  (t, quarantined)

let find t ~key =
  let path = entry_path t ~key in
  if not (Sys.file_exists path) then begin
    Atomic.incr t.misses;
    None
  end
  else
    let payload =
      match read_file path with
      | contents -> parse_entry contents
      | exception _ -> None
    in
    match payload with
    | Some p ->
      Atomic.incr t.hits;
      Some p
    | None ->
      (* Detected corruption on the read path: quarantine and miss, so
         the caller recomputes and the poisoned bytes never escape. *)
      quarantine t path;
      Atomic.incr t.misses;
      None

let store ?(before_rename = fun () -> ()) t ~key payload =
  let path = entry_path t ~key in
  (* Temp names start with "tmp." so startup sweeps strays; the pid plus
     key keeps concurrent writers on different domains/processes from
     colliding. *)
  let tmp =
    Filename.concat t.c_dir
      (Printf.sprintf "tmp.%d.%s" (Unix.getpid ()) key)
  in
  let oc = open_out_bin tmp in
  (try
     output_string oc (render_entry payload);
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  before_rename ();
  (try Unix.rename tmp path
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Atomic.incr t.stores

let rec remove_tree path =
  match Sys.is_directory path with
  | true ->
    Array.iter
      (fun n -> remove_tree (Filename.concat path n))
      (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

let stats t =
  {
    cs_hits = Atomic.get t.hits;
    cs_misses = Atomic.get t.misses;
    cs_stores = Atomic.get t.stores;
    cs_quarantined = Atomic.get t.quarantined;
  }
