(** Load harness for the compile service: the three bench serve phases
    (DESIGN §14, BENCH schema v6).

    - [serve_cold]: one simulate request per bundled workload against a
      fresh cache — every request is a compulsory miss that computes and
      stores its artifact;
    - [serve_warm]: the identical request stream again — every request
      must resolve from the cache (this is the cold-vs-warm p50 ratio
      EXPERIMENTS.md reports);
    - [serve_burst]: two copies of the stream arriving in a single
      admission tick against a deliberately small queue — the overflow
      is shed with typed rejections, the admitted requests are warm
      hits.

    The phases share one cache directory (created fresh, removed
    afterwards unless the caller supplies [~cache_dir]). *)

val phase_names : string list

(** Run all three phases.  [~jobs] sizes the service worker pool.
    Raises [Failure] if any phase produces an error response — a load
    run against healthy workloads must be clean. *)
val run :
  ?cache_dir:string -> jobs:int -> unit -> Harness.Bench.serve_phase list
