(** Chaos harness for the compile service (DESIGN §14): the service-layer
    analogue of {!Faults.Chaos}.

    For each program the harness first runs a fault-free baseline request
    (which also primes the artifact cache), then one cell per fault in
    {!Faults.Servefault.catalog} {e and} per fault in the PR2
    {!Faults.Fault} catalog — the latter injected through a request's
    [fault] field, so the whole compiler/simulator fault surface is
    exercised {e through} the service path.  Every cell must resolve to
    a typed outcome:

    - [Passed]: fault-free baseline, correct output;
    - [Absorbed]: fault injected, correct result anyway (retry absorbed
      a transient, quarantine absorbed cache corruption, the
      architecture absorbed a machine fault);
    - [Degraded]: last-known-good artifact served, explicitly marked;
    - [Detected]: a typed rejection — deadline, shed, stuck, deadlock;
    - [Skipped]: the fault had no applicable site;
    - [Failed]: wrong output, a hang, or an untyped error — the only
      outcome that fails the matrix. *)

type outcome =
  | Passed
  | Absorbed
  | Degraded
  | Detected of string
  | Skipped
  | Failed of string

type cell = {
  c_program : string;
  c_fault : string;   (* "none" for the baseline *)
  c_class : string;   (* baseline / absorbable / degradable / detectable *)
  c_outcome : outcome;
}

(** Run the matrix over bundled workload names.  [~jobs] sizes each
    service run's worker pool; the cache lives under [cache_dir] (one
    subdirectory per program) and is created fresh. *)
val run :
  ?log:(string -> unit) ->
  ?jobs:int ->
  cache_dir:string ->
  programs:string list ->
  unit ->
  cell list

val count_failed : cell list -> int

(** Fault × program grid (letters P/A/G/D/S/F) plus a tally line —
    byte-deterministic, pinned by [test/chaos/serve.expected]. *)
val render_table : cell list -> string
