(** Real speculative execution of compiled TLS regions on OCaml 5 domains.

    Where {!Tls.Sim} *models* thread-level speculation cycle by cycle,
    this runtime actually runs epochs concurrently: each worker domain
    executes whole loop iterations speculatively against buffered write
    state, forwards values through IVar-style cells, detects cross-epoch
    conflicts at cache-line granularity, and rolls mis-speculation back
    by discarding the write buffer and restarting the epoch (DESIGN §16).

    Correctness does not rest on the racy fast paths: the epoch holding
    the homefree token re-validates every exposed read and every consumed
    forwarded value against committed state before draining its write
    buffer, and a failed validation squashes and re-runs the epoch as the
    oldest — with committed memory frozen and all channel values final —
    so the committed outcome is always byte-identical to sequential
    execution, whatever the interleaving did.

    Robustness surface: a wall-clock watchdog turns real hangs into the
    typed {!Specrt_stuck} (never a wedged process), per-epoch abort
    budgets turn livelock into the typed {!Abort_exhausted}, exceptions
    raised inside an epoch are contained (squash + non-speculative retry,
    never process death), and every commit/violation/squash/signal is
    recorded in an event log that {!run} can replay deterministically. *)

(** Runtime-layer fault injections ([chaos --exec]).  All faults key on
    the epoch {e index} within a region instance and arm only in the
    first instance of the run, so outcomes are deterministic:
    - [Delay_commit]: the epoch sleeps [ms] while holding the homefree
      token.  Absorbed if [ms] is below the watchdog; a delay past the
      watchdog must end in {!Specrt_stuck}, never a hang.
    - [Yield_steps]: the epoch yields its timeslice every [every]
      instructions (stolen-timeslice perturbation).  Always absorbed.
    - [Drop_wakeup]: the epoch never observes its predecessor's
      speculative forwarding cell for [channel]; it self-heals once the
      predecessor commits (the committed cell cannot be dropped).
    - [Crash_epoch]: the epoch raises an injected exception shortly into
      its attempt; transient crashes are contained (squash + retry),
      [persistent] ones crash every retry and must exhaust the abort
      budget as the typed {!Abort_exhausted}. *)
type fault =
  | Delay_commit of { epoch : int; ms : int }
  | Yield_steps of { epoch : int; every : int }
  | Drop_wakeup of { epoch : int; channel : int }
  | Crash_epoch of { epoch : int; persistent : bool }

type event_kind =
  | Ev_commit
  | Ev_violation of string      (* validation failure, with reason *)
  | Ev_squash of string         (* attempt abort, with reason *)
  | Ev_signal of int            (* payload posted on a channel *)

(** One entry of the record/replay log, in global observation order.
    [(ev_instance, ev_index, ev_attempt)] names one attempt of one epoch
    deterministically across runs. *)
type event = {
  ev_seq : int;
  ev_instance : int;            (* region-instance activation number *)
  ev_index : int;               (* epoch index within the instance *)
  ev_attempt : int;             (* 1-based attempt of that epoch *)
  ev_kind : event_kind;
}

(** No commit, squash, or sequential progress for [watchdog_ms] of wall
    time: a real hang, reported as a typed error with a per-epoch
    snapshot instead of a wedged process.  Exit code 10. *)
exception Specrt_stuck of { watchdog_ms : int; detail : string }

(** An epoch was squashed more than [max_aborts] times (only reachable
    when retries cannot succeed, e.g. a persistent injected crash).
    Exit code 11. *)
exception Abort_exhausted of { instance : int; index : int; aborts : int;
                               max_aborts : int }

(** The sync protocol wedged: an epoch waits on a channel its committed
    predecessor never signaled (the runtime analogue of
    {!Tls.Sim.Deadlock}).  Exit code 3. *)
exception Exec_deadlock of string

type opts = {
  domains : int;                (* worker domains; 1 = serial in-order *)
  watchdog_ms : int;
  max_aborts : int;             (* per-epoch squash budget *)
  perturb_seed : int option;    (* deterministic schedule perturbation *)
  faults : fault list;
  replay : event list option;
      (* run serially, forcing the recorded squashes/violations so a
         nondeterministic failure reproduces deterministically *)
}

(** [domains = cfg.num_procs], 10 s watchdog, 64-abort budget, no
    perturbation, no faults, no replay. *)
val default_opts : Tls.Config.t -> opts

type result = {
  r_output : int list;
  r_final_memory : Runtime.Memory.t;
  r_epochs_committed : int;     (* deterministic: matches Tls.Sim *)
  r_epochs_squashed : int;      (* scheduling-dependent *)
  r_violations : int;           (* scheduling-dependent *)
  r_region_instances : (int * int) list;   (* region id -> activations *)
  r_domains : int;
  r_events : event list;        (* observation order *)
}

(** Execute the compiled program, running every speculative region on
    [opts.domains] worker domains.
    @raise Specrt_stuck on a real hang (watchdog).
    @raise Abort_exhausted when an epoch exceeds its abort budget.
    @raise Exec_deadlock on a broken sync protocol. *)
val run : ?opts:opts -> Tls.Config.t -> Runtime.Code.t ->
  input:int array -> result

(** {2 Replay-log serialization}

    One JSON object per line, fixed key order
    [{"seq":..,"instance":..,"epoch":..,"attempt":..,"kind":"..",
    "detail":"..","channel":..}].  {!read_log} is tolerant: lines that do
    not parse (e.g. a truncated tail) are skipped, so a cut-short log
    still replays its prefix — shrinking a failure is just truncating
    its log. *)

val write_log : string -> event list -> unit
val read_log : string -> event list
val event_to_line : event -> string
