(* Real speculative execution on OCaml 5 domains (DESIGN §16).

   Concurrency discipline, in one paragraph: one mutex [m] guards every
   piece of cross-epoch shared state (committed memory reads/drains,
   forwarding cells, the epoch registry, the event log); per-epoch
   buffers are touched only by the owning worker, and all cross-domain
   flags (squash requests, the homefree token, instance end, stuck/stop)
   are Atomics polled in bounded loops.  There are no condition
   variables anywhere — every block is a poll loop with a tiny sleep
   that also checks squash/end/stuck — so the runtime cannot hang on a
   lost wakeup by construction; the wall-clock watchdog covers the rest.

   Correctness authority: the epoch holding the homefree token
   re-validates its exposed reads (first-observed values) and consumed
   channel payloads against committed state under [m].  A mismatch is a
   violation: cascade-squash younger epochs and re-run this epoch as the
   oldest, where committed memory is frozen (only the token holder
   commits) and channels resolve from the predecessor's committed
   snapshot — that re-run cannot fail, which proves termination and
   sequential equivalence whatever the interleaving did.  The eager
   commit-time conflict scan at cache-line granularity (false sharing
   included) only accelerates the inevitable squash. *)

module Int_set = Set.Make (Int)

type payload = P_scalar of int | P_mem of int * int

type fault =
  | Delay_commit of { epoch : int; ms : int }
  | Yield_steps of { epoch : int; every : int }
  | Drop_wakeup of { epoch : int; channel : int }
  | Crash_epoch of { epoch : int; persistent : bool }

type event_kind =
  | Ev_commit
  | Ev_violation of string
  | Ev_squash of string
  | Ev_signal of int

type event = {
  ev_seq : int;
  ev_instance : int;
  ev_index : int;
  ev_attempt : int;
  ev_kind : event_kind;
}

exception Specrt_stuck of { watchdog_ms : int; detail : string }

exception Abort_exhausted of { instance : int; index : int; aborts : int;
                               max_aborts : int }

exception Exec_deadlock of string

(* Worker-local control flow; never escapes the library. *)
exception Squash_attempt of string
exception Crash_injected
exception Abandon

type opts = {
  domains : int;
  watchdog_ms : int;
  max_aborts : int;
  perturb_seed : int option;
  faults : fault list;
  replay : event list option;
}

let default_opts (cfg : Tls.Config.t) =
  {
    domains = max 1 cfg.Tls.Config.num_procs;
    watchdog_ms = 10_000;
    max_aborts = 64;
    perturb_seed = None;
    faults = [];
    replay = None;
  }

type result = {
  r_output : int list;
  r_final_memory : Runtime.Memory.t;
  r_epochs_committed : int;
  r_epochs_squashed : int;
  r_violations : int;
  r_region_instances : (int * int) list;
  r_domains : int;
  r_events : event list;
}

type estatus = Running | Done | Committed | Discarded

type exitkind = Exit_back | Exit_out of Ir.Instr.label | Exit_return of int option

type ep = {
  e_index : int;
  mutable e_thread : Runtime.Thread.t;
  mutable e_status : estatus;            (* under [m] *)
  mutable e_exitk : exitkind option;     (* owner only *)
  e_writes : (int, int) Hashtbl.t;       (* speculative write buffer *)
  e_read_log : (int, int) Hashtbl.t;     (* addr -> first exposed value *)
  e_read_keys : (int, unit) Hashtbl.t;   (* line-granularity read set *)
  e_consumed : (int, payload) Hashtbl.t; (* channel -> consumed payload *)
  e_sent : (int, payload) Hashtbl.t;     (* forwarding cells; under [m] *)
  e_sig_buffer : (int, int) Hashtbl.t;   (* channel -> forwarded addr *)
  e_squash : (string * bool) option Atomic.t;
      (* squash request: reason, and whether the consumer should report
         it as a violation (a stale read / stale forwarded value caught
         by eager detection) rather than a plain rollback.  The event is
         emitted when the flag is *consumed*, so the violation and its
         squash always carry the same attempt number — which is what
         lets a replay force both at the right point. *)
  mutable e_attempt : int;               (* 1-based *)
  mutable e_aborts : int;
  mutable e_hold : bool;                 (* retry only as the oldest *)
  mutable e_steps : int;
}

type inst = {
  i_gen : int;
  i_no : int;                            (* global activation number *)
  i_region : Ir.Region.t;
  i_base : Runtime.Thread.frame;         (* immutable after publication *)
  i_blocks : Int_set.t;
  i_channels : Int_set.t;
  i_entry_sent : (int, payload) Hashtbl.t;
  i_epochs : (int, ep) Hashtbl.t;        (* under [m] *)
  i_committed_sent : (int * int, payload) Hashtbl.t;  (* (epoch, ch) *)
  i_oldest : int Atomic.t;               (* the homefree token *)
  i_ended : bool Atomic.t;
  mutable i_winner : ep option;          (* under [m] *)
}

type t = {
  cfg : Tls.Config.t;
  o : opts;
  code : Runtime.Code.t;
  input : int array;
  committed : Runtime.Memory.t;
  memsys : Tls.Memsys.t;                 (* line math only *)
  regions_by_func : (string, Ir.Region.t list) Hashtbl.t;
  m : Mutex.t;
  mutable cur : inst option;             (* under [m] *)
  gen : int Atomic.t;
  stop : bool Atomic.t;
  stuck : bool Atomic.t;
  mutable stuck_detail : string;         (* under [m] *)
  fatal : exn option Atomic.t;
  last_progress : float Atomic.t;
  workers_done : int Atomic.t;
  mutable output_rev : int list;         (* under [m] in TLS mode *)
  mutable events_rev : event list;       (* under [m] *)
  mutable ev_seq : int;
  mutable violations : int;
  mutable squashes : int;
  mutable total_committed : int;
  mutable instances_total : int;
  instance_counters : (int, int) Hashtbl.t;
  (* (instance, index, attempt) -> (reason, was_violation) *)
  forced : (int * int * int, string * bool) Hashtbl.t;
  serial : bool;
}

(* ------------------------------------------------------------------ *)
(* Clock, watchdog, events                                             *)
(* ------------------------------------------------------------------ *)

let now () = Unix.gettimeofday ()

let progress rt = Atomic.set rt.last_progress (now ())

let track_key rt addr =
  if rt.cfg.Tls.Config.word_level_tracking then addr
  else Tls.Memsys.line_of rt.memsys addr

let status_name = function
  | Running -> "running"
  | Done -> "done"
  | Committed -> "committed"
  | Discarded -> "discarded"

(* Must be called with [m] held. *)
let describe_locked rt =
  match rt.cur with
  | None -> "sequential phase (no active region instance)"
  | Some inst ->
    let b = Buffer.create 128 in
    Buffer.add_string b
      (Printf.sprintf "region %d instance %d oldest=%d ended=%b"
         inst.i_region.Ir.Region.id inst.i_no
         (Atomic.get inst.i_oldest) (Atomic.get inst.i_ended));
    let idxs =
      List.sort compare
        (Hashtbl.fold (fun k _ acc -> k :: acc) inst.i_epochs [])
    in
    List.iter
      (fun k ->
        let e = Hashtbl.find inst.i_epochs k in
        Buffer.add_string b
          (Printf.sprintf "; epoch %d %s attempt %d steps %d aborts %d" k
             (status_name e.e_status) e.e_attempt e.e_steps e.e_aborts))
      idxs;
    Buffer.contents b

let mark_stuck rt =
  Mutex.lock rt.m;
  if not (Atomic.get rt.stuck) then begin
    rt.stuck_detail <- describe_locked rt;
    Atomic.set rt.stuck true
  end;
  Mutex.unlock rt.m

(* Worker-side: raise Abandon on stop/stuck, fire the watchdog on wall
   silence.  Never called with [m] held. *)
let check_stuck rt =
  if Atomic.get rt.stop || Atomic.get rt.stuck then raise Abandon;
  let idle_ms = (now () -. Atomic.get rt.last_progress) *. 1000. in
  if idle_ms > float_of_int rt.o.watchdog_ms then begin
    mark_stuck rt;
    raise Abandon
  end

(* Must be called with [m] held. *)
let note_event rt inst (e : ep) kind =
  let ev =
    {
      ev_seq = rt.ev_seq;
      ev_instance = inst.i_no;
      ev_index = e.e_index;
      ev_attempt = e.e_attempt;
      ev_kind = kind;
    }
  in
  rt.ev_seq <- rt.ev_seq + 1;
  rt.events_rev <- ev :: rt.events_rev

(* Interruptible sleep: bounded slices, each checking stop/stuck. *)
let sliced_sleep rt ms =
  let deadline = now () +. (float_of_int ms /. 1000.) in
  let rec go () =
    check_stuck rt;
    let left = deadline -. now () in
    if left > 0. then begin
      Unix.sleepf (Float.min left 0.005);
      go ()
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Fault plumbing (first region instance only, keyed by epoch index)   *)
(* ------------------------------------------------------------------ *)

let fault_scope inst = inst.i_no = 0

let crash_fault rt inst (e : ep) =
  fault_scope inst
  && List.exists
       (function
         | Crash_epoch { epoch; persistent } ->
           epoch = e.e_index && (persistent || e.e_attempt = 1)
         | _ -> false)
       rt.o.faults

let yield_every rt inst (e : ep) =
  if not (fault_scope inst) then None
  else
    List.find_map
      (function
        | Yield_steps { epoch; every } when epoch = e.e_index ->
          Some (max 1 every)
        | _ -> None)
      rt.o.faults

let commit_delay_ms rt inst (e : ep) =
  if not (fault_scope inst) then None
  else
    List.find_map
      (function
        | Delay_commit { epoch; ms } when epoch = e.e_index -> Some ms
        | _ -> None)
      rt.o.faults

let wakeup_dropped rt inst (e : ep) ch =
  fault_scope inst
  && List.exists
       (function
         | Drop_wakeup { epoch; channel } -> epoch = e.e_index && channel = ch
         | _ -> false)
       rt.o.faults

(* ------------------------------------------------------------------ *)
(* Channel cells                                                       *)
(* ------------------------------------------------------------------ *)

type recv = Ready of payload | Nothing

(* Must be called with [m] held.  Consumption order: already-consumed
   cache, then the predecessor's *committed* snapshot (an IVar that can
   never be retracted), then its live speculative cell (retractable —
   the consumer's commit-time validation re-checks it by value). *)
let receive rt inst (e : ep) ch =
  match Hashtbl.find_opt e.e_consumed ch with
  | Some p -> Ready p
  | None -> begin
    let committed_payload =
      if e.e_index = 0 then Hashtbl.find_opt inst.i_entry_sent ch
      else Hashtbl.find_opt inst.i_committed_sent (e.e_index - 1, ch)
    in
    match committed_payload with
    | Some p ->
      Hashtbl.replace e.e_consumed ch p;
      Ready p
    | None ->
      if e.e_index = 0 then
        (* entry_sent seeds every region channel; unreachable for a
           well-formed region. *)
        raise
          (Exec_deadlock
             (Printf.sprintf "epoch 0 waits on unseeded channel %d" ch))
      else begin
        match Hashtbl.find_opt inst.i_epochs (e.e_index - 1) with
        | Some pred when pred.e_status = Committed ->
          if Atomic.get inst.i_ended then raise Abandon
          else
            raise
              (Exec_deadlock
                 (Printf.sprintf
                    "epoch %d waits on channel %d its committed \
                     predecessor never signaled"
                    e.e_index ch))
        | Some pred when pred.e_status = Running || pred.e_status = Done ->
          if wakeup_dropped rt inst e ch then Nothing
          else begin
            match Hashtbl.find_opt pred.e_sent ch with
            | Some p ->
              Hashtbl.replace e.e_consumed ch p;
              Ready p
            | None -> Nothing
          end
        | _ -> Nothing
      end
  end

(* The value an epoch may legitimately forward for [addr]: its own
   speculative write, or a pass-through of the value it consumed on the
   same channel (still sequentially correct for the successor).  Neither
   -> NULL signal, and the consumer falls back to violation-protected
   speculation, exactly as the paper's NULL signals degrade. *)
let forwardable_value (e : ep) ch addr =
  match Hashtbl.find_opt e.e_writes addr with
  | Some v -> Some v
  | None -> begin
    match Hashtbl.find_opt e.e_consumed ch with
    | Some (P_mem (a, v)) when a = addr -> Some v
    | Some _ | None -> None
  end

(* Must be called with [m] held: post [p] on [e]'s cell for [ch].  If
   the successor already consumed a different payload from this cell,
   flag it eagerly — its validation would catch the stale value anyway,
   but the flag saves wasted speculation (PR4 re-signal rule). *)
let post_signal rt inst (e : ep) ch p =
  Hashtbl.replace e.e_sent ch p;
  note_event rt inst e (Ev_signal ch);
  match Hashtbl.find_opt inst.i_epochs (e.e_index + 1) with
  | Some succ
    when (succ.e_status = Running || succ.e_status = Done)
         && (match Hashtbl.find_opt succ.e_consumed ch with
            | Some q -> q <> p
            | None -> false) ->
    Atomic.set succ.e_squash (Some ("resignal", true))
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Epoch memory semantics                                              *)
(* ------------------------------------------------------------------ *)

(* Must be called with [m] held.  Own writes overlay committed memory;
   an exposed read logs its first observed value (repeat reads return
   the logged value, so one validation entry per address keeps the whole
   attempt's read set consistent) and marks its cache line. *)
let speculative_load rt (e : ep) addr =
  match Hashtbl.find_opt e.e_writes addr with
  | Some v -> v
  | None -> begin
    match Hashtbl.find_opt e.e_read_log addr with
    | Some v -> v
    | None ->
      let v = Runtime.Memory.get rt.committed addr in
      Hashtbl.replace e.e_read_log addr v;
      Hashtbl.replace e.e_read_keys (track_key rt addr) ();
      v
  end

(* Must be called with [m] held. *)
let epoch_store rt inst (e : ep) addr v =
  Hashtbl.replace e.e_writes addr v;
  (* Storing to an address already forwarded means the wrong value was
     sent: re-signal with the new value. *)
  Hashtbl.iter
    (fun ch signaled_addr ->
      if signaled_addr = addr then post_signal rt inst e ch (P_mem (addr, v)))
    e.e_sig_buffer

(* ------------------------------------------------------------------ *)
(* Hooks                                                               *)
(* ------------------------------------------------------------------ *)

let locked rt f =
  Mutex.lock rt.m;
  match f () with
  | v ->
    Mutex.unlock rt.m;
    v
  | exception exn ->
    Mutex.unlock rt.m;
    raise exn

let epoch_hooks rt inst (e : ep) : Runtime.Thread.hooks =
  let my_channel ch = Int_set.mem ch inst.i_channels in
  let mem_sync = rt.cfg.Tls.Config.stall_compiler_sync in
  {
    Runtime.Thread.load =
      (fun _ _ addr -> locked rt (fun () -> speculative_load rt e addr));
    store =
      (fun _ _ addr v -> locked rt (fun () -> epoch_store rt inst e addr v));
    wait_scalar =
      (fun t i ch ->
        if not (my_channel ch) then begin
          (* A nested region's synchronization, executed sequentially. *)
          match i.Ir.Instr.kind with
          | Ir.Instr.Wait_scalar (_, dst) ->
            Some (Runtime.Thread.current_frame t).Runtime.Thread.regs.(dst)
          | _ -> None
        end
        else
          locked rt (fun () ->
              match receive rt inst e ch with
              | Ready (P_scalar v) | Ready (P_mem (_, v)) -> Some v
              | Nothing -> None));
    signal_scalar =
      (fun _ _ ch v ->
        if my_channel ch then
          locked rt (fun () -> post_signal rt inst e ch (P_scalar v)));
    wait_mem =
      (fun _ _ ch ->
        if (not (my_channel ch)) || not mem_sync then true
        else
          locked rt (fun () ->
              match receive rt inst e ch with
              | Ready _ -> true
              | Nothing -> false));
    sync_load =
      (fun _ _ ch addr ->
        locked rt (fun () ->
            if (not (my_channel ch)) || not mem_sync then
              speculative_load rt e addr
            else begin
              match Hashtbl.find_opt e.e_consumed ch with
              | Some (P_mem (a, v)) when a <> 0 && a = addr ->
                (* Point-to-point satisfied: locally overwritten wins,
                   otherwise the forwarded value (validated at commit
                   against the predecessor's committed snapshot). *)
                if Hashtbl.mem e.e_writes addr then
                  Hashtbl.find e.e_writes addr
                else v
              | Some _ | None ->
                (* NULL signal, address mismatch, or nothing consumed:
                   violation-protected fallback. *)
                speculative_load rt e addr
            end));
    signal_mem =
      (fun _ _ ch addr ->
        if my_channel ch && mem_sync then
          locked rt (fun () ->
              let addr, value =
                if addr = 0 then (0, 0)
                else
                  match forwardable_value e ch addr with
                  | Some v -> (addr, v)
                  | None -> (0, 0)
              in
              if addr <> 0 then Hashtbl.replace e.e_sig_buffer ch addr
              else Hashtbl.remove e.e_sig_buffer ch;
              post_signal rt inst e ch (P_mem (addr, value))));
    signal_mem_if_unsent =
      (fun _ _ ch addr ->
        if my_channel ch && mem_sync then
          locked rt (fun () ->
              if not (Hashtbl.mem e.e_sent ch) then begin
                let addr, value =
                  if addr = 0 then (0, 0)
                  else
                    match forwardable_value e ch addr with
                    | Some v -> (addr, v)
                    | None -> (0, 0)
                in
                if addr <> 0 then Hashtbl.replace e.e_sig_buffer ch addr;
                post_signal rt inst e ch (P_mem (addr, value))
              end));
    signal_null =
      (fun _ _ ch ->
        if my_channel ch && mem_sync then
          locked rt (fun () -> post_signal rt inst e ch (P_mem (0, 0))));
    signal_null_if_unsent =
      (fun _ _ ch ->
        if my_channel ch && mem_sync then
          locked rt (fun () ->
              if not (Hashtbl.mem e.e_sent ch) then
                post_signal rt inst e ch (P_mem (0, 0))));
    control =
      (fun t ~target ->
        if Runtime.Thread.depth t > 1 then true
        else if target = inst.i_region.Ir.Region.header then begin
          e.e_exitk <- Some Exit_back;
          false
        end
        else if not (Int_set.mem target inst.i_blocks) then begin
          e.e_exitk <- Some (Exit_out target);
          false
        end
        else true);
  }

(* ------------------------------------------------------------------ *)
(* Attempts                                                            *)
(* ------------------------------------------------------------------ *)

let is_oldest inst (e : ep) = Atomic.get inst.i_oldest = e.e_index

(* Must be called with [m] held. *)
let reset_attempt_locked rt inst (e : ep) =
  Hashtbl.reset e.e_writes;
  Hashtbl.reset e.e_read_log;
  Hashtbl.reset e.e_read_keys;
  Hashtbl.reset e.e_consumed;
  Hashtbl.reset e.e_sent;
  Hashtbl.reset e.e_sig_buffer;
  e.e_status <- Running;
  e.e_exitk <- None;
  e.e_steps <- 0;
  e.e_attempt <- e.e_attempt + 1;
  let frame = Runtime.Thread.copy_frame inst.i_base in
  e.e_thread <- Runtime.Thread.create_from_frame rt.code frame ~input:rt.input

let poll_squash rt inst (e : ep) =
  match Atomic.exchange e.e_squash None with
  | Some (reason, was_violation) ->
    if was_violation then
      locked rt (fun () ->
          rt.violations <- rt.violations + 1;
          note_event rt inst e (Ev_violation reason));
    raise (Squash_attempt reason)
  | None -> ()

(* Run one attempt of [e] to Done (exit kind set).  Raises
   Squash_attempt / Crash_injected / Abandon / Exec_deadlock. *)
let run_attempt rt inst (e : ep) =
  locked rt (fun () -> reset_attempt_locked rt inst e);
  let hooks = epoch_hooks rt inst e in
  let crash = crash_fault rt inst e in
  let yield = yield_every rt inst e in
  let cap = rt.cfg.Tls.Config.epoch_max_instrs in
  let rec steploop () =
    poll_squash rt inst e;
    if Atomic.get inst.i_ended then raise Abandon;
    check_stuck rt;
    if crash && e.e_steps = 3 then raise Crash_injected;
    (match yield with
    | Some every when e.e_steps mod every = 0 && e.e_steps > 0 ->
      Unix.sleepf 0.0002
    | _ -> ());
    (match rt.o.perturb_seed with
    | Some seed when not rt.serial ->
      if Hashtbl.hash (seed, inst.i_no, e.e_index, e.e_steps) land 63 = 0
      then Unix.sleepf 0.00005
    | _ -> ());
    match Runtime.Thread.step e.e_thread hooks with
    | Runtime.Thread.Ran _ ->
      e.e_steps <- e.e_steps + 1;
      if e.e_steps > cap then begin
        if is_oldest inst e then
          raise
            (Exec_deadlock
               (Printf.sprintf
                  "epoch %d exceeded the %d-instruction cap as the oldest"
                  e.e_index cap))
        else begin
          e.e_hold <- true;
          raise (Squash_attempt "runaway")
        end
      end;
      steploop ()
    | Runtime.Thread.Blocked ->
      Unix.sleepf 0.0001;
      steploop ()
    | Runtime.Thread.Suspended ->
      locked rt (fun () -> e.e_status <- Done)
    | Runtime.Thread.Finished rv ->
      e.e_exitk <- Some (Exit_return rv);
      locked rt (fun () -> e.e_status <- Done)
  in
  steploop ()

(* Poll until [e] holds the homefree token. *)
let await_token rt inst (e : ep) =
  let rec loop () =
    if Atomic.get inst.i_ended then raise Abandon;
    check_stuck rt;
    poll_squash rt inst e;
    if not (is_oldest inst e) then begin
      Unix.sleepf 0.0001;
      loop ()
    end
  in
  loop ()

(* Replay: was this attempt recorded as squashed/violated?  Must be
   called with [m] held. *)
let forced_squash rt inst (e : ep) =
  match Hashtbl.find_opt rt.forced (inst.i_no, e.e_index, e.e_attempt) with
  | None -> None
  | Some (reason, was_violation) ->
    if was_violation then begin
      rt.violations <- rt.violations + 1;
      note_event rt inst e (Ev_violation reason)
    end;
    Some reason

(* Must be called with [m] held: validate this attempt's inputs against
   committed state.  None = consistent. *)
let validate rt inst (e : ep) =
  let bad = ref None in
  Hashtbl.iter
    (fun ch p ->
      if !bad = None then begin
        let expect =
          if e.e_index = 0 then Hashtbl.find_opt inst.i_entry_sent ch
          else Hashtbl.find_opt inst.i_committed_sent (e.e_index - 1, ch)
        in
        if expect <> Some p then
          bad := Some (Printf.sprintf "channel %d payload mismatch" ch)
      end)
    e.e_consumed;
  if !bad = None then
    Hashtbl.iter
      (fun addr v ->
        if !bad = None && Runtime.Memory.get rt.committed addr <> v then
          bad := Some (Printf.sprintf "stale read at addr %d" addr))
      e.e_read_log;
  !bad

(* Must be called with [m] held: flag every active epoch >= [from]. *)
let cascade_locked inst ~from reason =
  Hashtbl.iter
    (fun idx (e' : ep) ->
      if idx >= from && (e'.e_status = Running || e'.e_status = Done) then
        Atomic.set e'.e_squash (Some (reason, false)))
    inst.i_epochs

(* Must be called with [m] held: drain the write buffer into committed
   memory, eagerly flag younger readers of the written lines, publish
   the committed channel snapshot, drain output, pass the token. *)
let do_commit_locked rt inst (e : ep) =
  Hashtbl.iter (fun a v -> Runtime.Memory.store rt.committed a v) e.e_writes;
  let keys = Hashtbl.create 16 in
  Hashtbl.iter (fun a _ -> Hashtbl.replace keys (track_key rt a) ()) e.e_writes;
  let victim = ref max_int in
  Hashtbl.iter
    (fun idx (e' : ep) ->
      if
        idx > e.e_index
        && (e'.e_status = Running || e'.e_status = Done)
        && idx < !victim
        && Hashtbl.fold
             (fun k () acc -> acc || Hashtbl.mem e'.e_read_keys k)
             keys false
      then victim := idx)
    inst.i_epochs;
  (* The minimal victim read a line this commit just overwrote: that is
     the TLS violation (reported by the victim when it consumes the
     flag); everything younger is collateral cascade. *)
  if !victim < max_int then begin
    (match Hashtbl.find_opt inst.i_epochs !victim with
    | Some v when v.e_status = Running || v.e_status = Done ->
      Atomic.set v.e_squash (Some ("conflict", true))
    | Some _ | None -> ());
    cascade_locked inst ~from:(!victim + 1) "cascade"
  end;
  Hashtbl.iter
    (fun ch p -> Hashtbl.replace inst.i_committed_sent (e.e_index, ch) p)
    e.e_sent;
  if e.e_index > 0 then
    Int_set.iter
      (fun ch -> Hashtbl.remove inst.i_committed_sent (e.e_index - 1, ch))
      inst.i_channels;
  rt.output_rev <- e.e_thread.Runtime.Thread.output @ rt.output_rev;
  e.e_thread.Runtime.Thread.output <- [];
  e.e_status <- Committed;
  rt.total_committed <- rt.total_committed + 1;
  note_event rt inst e Ev_commit;
  (match e.e_exitk with
  | Some Exit_back -> Atomic.set inst.i_oldest (e.e_index + 1)
  | Some (Exit_out _) | Some (Exit_return _) ->
    inst.i_winner <- Some e;
    Atomic.set inst.i_ended true
  | None -> assert false);
  progress rt

type commit_outcome = Committed_ok | Retry of string

(* [e] is Done: take the token, then validate-and-commit or report the
   reason to retry. *)
let try_commit rt inst (e : ep) =
  await_token rt inst e;
  (match commit_delay_ms rt inst e with
  | Some ms when e.e_attempt = 1 -> sliced_sleep rt ms
  | _ -> ());
  locked rt (fun () ->
      match Atomic.exchange e.e_squash None with
      | Some (reason, was_violation) ->
        if was_violation then begin
          rt.violations <- rt.violations + 1;
          note_event rt inst e (Ev_violation reason)
        end;
        Retry reason
      | None -> begin
        match forced_squash rt inst e with
        | Some reason -> Retry reason
        | None -> begin
          match validate rt inst e with
          | Some reason ->
            rt.violations <- rt.violations + 1;
            note_event rt inst e (Ev_violation reason);
            cascade_locked inst ~from:(e.e_index + 1) "cascade";
            Retry reason
          | None ->
            do_commit_locked rt inst e;
            Committed_ok
        end
      end)

(* Record a squash and charge the abort budget. *)
let on_abort rt inst (e : ep) reason =
  locked rt (fun () ->
      rt.squashes <- rt.squashes + 1;
      note_event rt inst e (Ev_squash reason));
  e.e_aborts <- e.e_aborts + 1;
  if e.e_aborts > rt.o.max_aborts then
    raise
      (Abort_exhausted
         {
           instance = inst.i_no;
           index = e.e_index;
           aborts = e.e_aborts;
           max_aborts = rt.o.max_aborts;
         });
  if e.e_aborts > rt.cfg.Tls.Config.max_restarts_before_hold then
    e.e_hold <- true

(* Park until [e] is the oldest (used after crashes and repeated
   squashes: the retry then runs with committed state frozen and can
   never fail again). *)
let await_oldest rt inst (e : ep) =
  let rec loop () =
    if Atomic.get inst.i_ended then raise Abandon;
    check_stuck rt;
    if not (is_oldest inst e) then begin
      Unix.sleepf 0.0001;
      loop ()
    end
  in
  loop ()

(* Drive one epoch to commit: attempts, rollbacks, containment. *)
let drive rt inst (e : ep) =
  let rec go () =
    if e.e_hold then await_oldest rt inst e;
    (* [try_commit] can itself raise [Squash_attempt] (the token wait
       polls the squash flag), so it lives inside the same match as the
       attempt: every rollback path lands on [on_abort]. *)
    match
      run_attempt rt inst e;
      try_commit rt inst e
    with
    | Committed_ok -> ()
    | Retry reason ->
      on_abort rt inst e reason;
      go ()
    | exception Squash_attempt reason ->
      on_abort rt inst e reason;
      go ()
    | exception Crash_injected ->
      on_abort rt inst e "crash-injected";
      e.e_hold <- true;
      go ()
    | exception ((Abandon | Exec_deadlock _ | Abort_exhausted _
                 | Specrt_stuck _) as ex) ->
      raise ex
    | exception ex ->
      (* Containment: an exception inside an epoch squashes the attempt
         and retries non-speculatively; it never kills the process. *)
      on_abort rt inst e ("exception: " ^ Printexc.to_string ex);
      e.e_hold <- true;
      go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Instance execution                                                  *)
(* ------------------------------------------------------------------ *)

let register_epoch rt inst k =
  locked rt (fun () ->
      let frame = Runtime.Thread.copy_frame inst.i_base in
      let e =
        {
          e_index = k;
          e_thread = Runtime.Thread.create_from_frame rt.code frame
              ~input:rt.input;
          e_status = Running;
          e_exitk = None;
          e_writes = Hashtbl.create 32;
          e_read_log = Hashtbl.create 32;
          e_read_keys = Hashtbl.create 16;
          e_consumed = Hashtbl.create 8;
          e_sent = Hashtbl.create 8;
          e_sig_buffer = Hashtbl.create 8;
          e_squash = Atomic.make None;
          e_attempt = 0;
          e_aborts = 0;
          e_hold = false;
          e_steps = 0;
        }
      in
      Hashtbl.replace inst.i_epochs k e;
      e)

(* Worker [w]'s share of an instance: epochs w, w+D, w+2D, ... in order.
   One epoch in flight per worker bounds the speculation window at D,
   and waiting for the token before the next epoch keeps it there. *)
let work_instance rt w inst =
  let d = if rt.serial then 1 else rt.o.domains in
  let k = ref w in
  while not (Atomic.get inst.i_ended) do
    check_stuck rt;
    let e = register_epoch rt inst !k in
    drive rt inst e;
    k := !k + d
  done

let record_fatal rt ex =
  ignore (Atomic.compare_and_set rt.fatal None (Some ex))

let worker rt w =
  let seen = ref 0 in
  let rec loop () =
    if Atomic.get rt.stop then ()
    else begin
      let g = Atomic.get rt.gen in
      if g = !seen then begin
        Unix.sleepf 0.0002;
        loop ()
      end
      else begin
        let inst = locked rt (fun () -> rt.cur) in
        (match inst with
        | Some i when i.i_gen = g -> begin
          (try work_instance rt w i with
          | Abandon -> ()
          | ex -> record_fatal rt ex);
          seen := g;
          Atomic.incr rt.workers_done
        end
        | _ -> seen := g);
        loop ()
      end
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Sequential phase and instance lifecycle                             *)
(* ------------------------------------------------------------------ *)

(* Main-side checks: propagate a worker's fatal error or the watchdog. *)
let main_checks rt =
  (match Atomic.get rt.fatal with
  | Some ex ->
    Atomic.set rt.stop true;
    raise ex
  | None -> ());
  if Atomic.get rt.stuck then
    raise
      (Specrt_stuck { watchdog_ms = rt.o.watchdog_ms; detail = rt.stuck_detail });
  let idle_ms = (now () -. Atomic.get rt.last_progress) *. 1000. in
  if idle_ms > float_of_int rt.o.watchdog_ms then begin
    mark_stuck rt;
    raise
      (Specrt_stuck { watchdog_ms = rt.o.watchdog_ms; detail = rt.stuck_detail })
  end

let drain_seq_output rt (t : Runtime.Thread.t) =
  rt.output_rev <- t.Runtime.Thread.output @ rt.output_rev;
  t.Runtime.Thread.output <- []

let build_instance rt (r : Ir.Region.t) seq_thread =
  let seq_frame = Runtime.Thread.current_frame seq_thread in
  let base = Runtime.Thread.copy_frame seq_frame in
  base.Runtime.Thread.block <- r.Ir.Region.header;
  base.Runtime.Thread.pc <- 0;
  let entry_sent = Hashtbl.create 8 in
  List.iter
    (fun (sc : Ir.Region.scalar_channel) ->
      Hashtbl.replace entry_sent sc.Ir.Region.sc_id
        (P_scalar base.Runtime.Thread.regs.(sc.Ir.Region.sc_reg)))
    r.Ir.Region.scalar_channels;
  List.iter
    (fun (mg : Ir.Region.mem_group) ->
      Hashtbl.replace entry_sent mg.Ir.Region.mg_id (P_mem (0, 0)))
    r.Ir.Region.mem_groups;
  let channels =
    Int_set.union
      (Int_set.of_list
         (List.map
            (fun (sc : Ir.Region.scalar_channel) -> sc.Ir.Region.sc_id)
            r.Ir.Region.scalar_channels))
      (Int_set.of_list
         (List.map
            (fun (mg : Ir.Region.mem_group) -> mg.Ir.Region.mg_id)
            r.Ir.Region.mem_groups))
  in
  let no = rt.instances_total in
  rt.instances_total <- no + 1;
  Hashtbl.replace rt.instance_counters r.Ir.Region.id
    (1
    + Option.value ~default:0
        (Hashtbl.find_opt rt.instance_counters r.Ir.Region.id));
  {
    i_gen = Atomic.get rt.gen + 1;
    i_no = no;
    i_region = r;
    i_base = base;
    i_blocks = Int_set.of_list r.Ir.Region.blocks;
    i_channels = channels;
    i_entry_sent = entry_sent;
    i_epochs = Hashtbl.create 16;
    i_committed_sent = Hashtbl.create 32;
    i_oldest = Atomic.make 0;
    i_ended = Atomic.make false;
    i_winner = None;
  }

(* Returns [true] when the winner's Exit_return popped the outermost
   frame, i.e. the program finished inside the region. *)
let finish_instance rt inst seq_thread =
  let winner =
    match inst.i_winner with
    | Some e -> e
    | None -> raise (Exec_deadlock "region instance ended without a winner")
  in
  locked rt (fun () ->
      Hashtbl.iter
        (fun _ (e : ep) ->
          match e.e_status with
          | Running | Done ->
            rt.squashes <- rt.squashes + 1;
            e.e_status <- Discarded
          | Committed | Discarded -> ())
        inst.i_epochs);
  match winner.e_exitk with
  | Some (Exit_out target) ->
    let seq_frame = Runtime.Thread.current_frame seq_thread in
    let ep_frame = Runtime.Thread.current_frame winner.e_thread in
    Array.blit ep_frame.Runtime.Thread.regs 0 seq_frame.Runtime.Thread.regs 0
      (Array.length seq_frame.Runtime.Thread.regs);
    seq_frame.Runtime.Thread.block <- target;
    seq_frame.Runtime.Thread.pc <- 0;
    false
  | Some (Exit_return rv) -> begin
    match seq_thread.Runtime.Thread.frames with
    | f :: rest -> begin
      match rest with
      | caller :: _ ->
        (match (f.Runtime.Thread.ret_to, rv) with
        | Some dst, Some v -> caller.Runtime.Thread.regs.(dst) <- v
        | Some dst, None -> caller.Runtime.Thread.regs.(dst) <- 0
        | None, _ -> ());
        seq_thread.Runtime.Thread.frames <- rest;
        false
      | [] ->
        seq_thread.Runtime.Thread.frames <- [];
        true
    end
    | [] -> true
  end
  | Some Exit_back | None ->
    raise (Exec_deadlock "region winner has no speculative exit")

let run_instance rt seq_thread (r : Ir.Region.t) =
  drain_seq_output rt seq_thread;
  let inst = build_instance rt r seq_thread in
  Mutex.lock rt.m;
  rt.cur <- Some inst;
  Mutex.unlock rt.m;
  Atomic.set rt.workers_done 0;
  Atomic.incr rt.gen;
  progress rt;
  if rt.serial then begin
    (try work_instance rt 0 inst with Abandon -> ());
    main_checks rt
  end
  else begin
    let d = rt.o.domains in
    let rec wait () =
      main_checks rt;
      if not (Atomic.get inst.i_ended && Atomic.get rt.workers_done = d)
      then begin
        Unix.sleepf 0.0002;
        wait ()
      end
    in
    wait ()
  end;
  progress rt;
  finish_instance rt inst seq_thread

let seq_hooks rt pending : Runtime.Thread.hooks =
  let base = Runtime.Thread.sequential_hooks rt.committed in
  {
    base with
    Runtime.Thread.control =
      (fun t ~target ->
        let fname =
          (Runtime.Thread.current_frame t).Runtime.Thread.cfunc
            .Runtime.Code.cf_name
        in
        match Hashtbl.find_opt rt.regions_by_func fname with
        | Some regions -> begin
          match
            List.find_opt
              (fun (r : Ir.Region.t) -> r.Ir.Region.header = target)
              regions
          with
          | Some r ->
            pending := Some r;
            false
          | None -> true
        end
        | None -> true);
  }

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let fill_forced forced events =
  (* Violations take precedence over the generic squash record of the
     same attempt, so a replay re-reports the violation. *)
  List.iter
    (fun ev ->
      let key = (ev.ev_instance, ev.ev_index, ev.ev_attempt) in
      match ev.ev_kind with
      | Ev_violation reason -> Hashtbl.replace forced key (reason, true)
      | Ev_squash reason ->
        if not (Hashtbl.mem forced key) then
          Hashtbl.replace forced key (reason, false)
      | Ev_commit | Ev_signal _ -> ())
    events

let run ?opts (cfg : Tls.Config.t) (code : Runtime.Code.t) ~input =
  let o = match opts with Some o -> o | None -> default_opts cfg in
  let o = { o with domains = max 1 (min 64 o.domains) } in
  let serial = o.replay <> None || o.domains = 1 in
  let committed = Runtime.Memory.create () in
  Runtime.Memory.store_all committed code.Runtime.Code.initial_stores;
  let regions_by_func = Hashtbl.create 8 in
  List.iter
    (fun (r : Ir.Region.t) ->
      let existing =
        Option.value ~default:[]
          (Hashtbl.find_opt regions_by_func r.Ir.Region.func)
      in
      Hashtbl.replace regions_by_func r.Ir.Region.func (existing @ [ r ]))
    code.Runtime.Code.regions;
  let forced = Hashtbl.create 16 in
  (match o.replay with Some evs -> fill_forced forced evs | None -> ());
  let rt =
    {
      cfg;
      o;
      code;
      input;
      committed;
      memsys = Tls.Memsys.create cfg;
      regions_by_func;
      m = Mutex.create ();
      cur = None;
      gen = Atomic.make 0;
      stop = Atomic.make false;
      stuck = Atomic.make false;
      stuck_detail = "";
      fatal = Atomic.make None;
      last_progress = Atomic.make (now ());
      workers_done = Atomic.make 0;
      output_rev = [];
      events_rev = [];
      ev_seq = 0;
      violations = 0;
      squashes = 0;
      total_committed = 0;
      instances_total = 0;
      instance_counters = Hashtbl.create 8;
      forced;
      serial;
    }
  in
  let seq_thread = Runtime.Thread.create code ~func_name:"main" ~input in
  let pending = ref None in
  let hooks = seq_hooks rt pending in
  let workers =
    if serial then []
    else List.init o.domains (fun w -> Domain.spawn (fun () -> worker rt w))
  in
  let finalize () =
    Atomic.set rt.stop true;
    List.iter Domain.join workers
  in
  Fun.protect ~finally:finalize @@ fun () ->
  let seq_cap = rt.cfg.Tls.Config.epoch_max_instrs * 1000 in
  let rec seq_loop steps =
    if steps land 4095 = 0 then begin
      main_checks rt;
      progress rt
    end;
    if steps > seq_cap then
      raise
        (Specrt_stuck
           {
             watchdog_ms = o.watchdog_ms;
             detail =
               Printf.sprintf "sequential thread exceeded %d steps" seq_cap;
           });
    match Runtime.Thread.step seq_thread hooks with
    | Runtime.Thread.Ran _ -> seq_loop (steps + 1)
    | Runtime.Thread.Suspended -> begin
      match !pending with
      | Some r ->
        pending := None;
        let finished = run_instance rt seq_thread r in
        if not finished then seq_loop (steps + 1)
      | None ->
        raise (Exec_deadlock "sequential thread suspended outside a region")
    end
    | Runtime.Thread.Blocked ->
      raise (Exec_deadlock "sequential thread blocked outside a region")
    | Runtime.Thread.Finished _ -> ()
  in
  seq_loop 1;
  drain_seq_output rt seq_thread;
  {
    r_output = List.rev rt.output_rev;
    r_final_memory = rt.committed;
    r_epochs_committed = rt.total_committed;
    r_epochs_squashed = rt.squashes;
    r_violations = rt.violations;
    r_region_instances =
      List.sort compare
        (Hashtbl.fold
           (fun id n acc -> (id, n) :: acc)
           rt.instance_counters []);
    r_domains = (if serial then 1 else o.domains);
    r_events = List.rev rt.events_rev;
  }

(* ------------------------------------------------------------------ *)
(* Replay-log serialization (JSONL, dependency-free)                   *)
(* ------------------------------------------------------------------ *)

let sanitize s =
  String.map
    (fun c ->
      if Char.code c < 0x20 || c = '"' || c = '\\' then '_' else c)
    s

let kind_fields = function
  | Ev_commit -> ("commit", "", -1)
  | Ev_violation reason -> ("violation", reason, -1)
  | Ev_squash reason -> ("squash", reason, -1)
  | Ev_signal ch -> ("signal", "", ch)

let event_to_line ev =
  let kind, detail, channel = kind_fields ev.ev_kind in
  Printf.sprintf
    "{\"seq\":%d,\"instance\":%d,\"epoch\":%d,\"attempt\":%d,\"kind\":\"%s\",\"detail\":\"%s\",\"channel\":%d}"
    ev.ev_seq ev.ev_instance ev.ev_index ev.ev_attempt kind (sanitize detail)
    channel

let write_log path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun ev ->
          output_string oc (event_to_line ev);
          output_char oc '\n')
        events)

(* Tolerant field extraction: a malformed (e.g. truncated) line is
   skipped rather than rejected, so a cut-short log replays its
   prefix. *)
let find_int line key =
  let pat = "\"" ^ key ^ "\":" in
  match
    let plen = String.length pat in
    let rec search i =
      if i + plen > String.length line then None
      else if String.sub line i plen = pat then Some (i + plen)
      else search (i + 1)
    in
    search 0
  with
  | None -> None
  | Some start ->
    let n = String.length line in
    let stop = ref start in
    if !stop < n && line.[!stop] = '-' then incr stop;
    while !stop < n && line.[!stop] >= '0' && line.[!stop] <= '9' do
      incr stop
    done;
    if !stop = start then None
    else int_of_string_opt (String.sub line start (!stop - start))

let find_str line key =
  let pat = "\"" ^ key ^ "\":\"" in
  let plen = String.length pat in
  let rec search i =
    if i + plen > String.length line then None
    else if String.sub line i plen = pat then Some (i + plen)
    else search (i + 1)
  in
  match search 0 with
  | None -> None
  | Some start -> begin
    match String.index_from_opt line start '"' with
    | None -> None
    | Some stop -> Some (String.sub line start (stop - start))
  end

let event_of_line line =
  match
    ( find_int line "seq",
      find_int line "instance",
      find_int line "epoch",
      find_int line "attempt",
      find_str line "kind" )
  with
  | Some seq, Some inst, Some epoch, Some attempt, Some kind -> begin
    let detail = Option.value ~default:"" (find_str line "detail") in
    let channel = Option.value ~default:(-1) (find_int line "channel") in
    let kind =
      match kind with
      | "commit" -> Some Ev_commit
      | "violation" -> Some (Ev_violation detail)
      | "squash" -> Some (Ev_squash detail)
      | "signal" -> Some (Ev_signal channel)
      | _ -> None
    in
    Option.map
      (fun k ->
        {
          ev_seq = seq;
          ev_instance = inst;
          ev_index = epoch;
          ev_attempt = attempt;
          ev_kind = k;
        })
      kind
  end
  | _ -> None

let read_log path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> begin
          match event_of_line line with
          | Some ev -> go (ev :: acc)
          | None -> go acc
        end
        | exception End_of_file -> List.rev acc
      in
      go [])
