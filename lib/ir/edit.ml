let find_instr (f : Func.t) iid =
  let found = ref None in
  Array.iteri
    (fun l (b : Func.block) ->
      match !found with
      | Some _ -> ()
      | None ->
        List.iteri
          (fun idx (i : Instr.t) ->
            if i.Instr.iid = iid then found := Some (l, idx))
          b.Func.instrs)
    f.Func.blocks;
  !found

let splice f ~anchor instrs ~after =
  match find_instr f anchor with
  | None -> raise Not_found
  | Some (l, idx) ->
    let b = Func.block f l in
    let before, at_and_rest =
      List.filteri (fun i _ -> i < idx) b.Func.instrs,
      List.filteri (fun i _ -> i >= idx) b.Func.instrs
    in
    (match at_and_rest with
    | at :: rest ->
      b.Func.instrs <-
        (if after then before @ (at :: instrs) @ rest
         else before @ instrs @ (at :: rest))
    | [] -> assert false)

let insert_before f ~anchor instrs = splice f ~anchor instrs ~after:false

let insert_after f ~anchor instrs = splice f ~anchor instrs ~after:true

let prepend f l instrs =
  let b = Func.block f l in
  b.Func.instrs <- instrs @ b.Func.instrs

let append f l instrs =
  let b = Func.block f l in
  b.Func.instrs <- b.Func.instrs @ instrs

let insert_at f l idx instrs =
  let b = Func.block f l in
  let before = List.filteri (fun i _ -> i < idx) b.Func.instrs in
  let rest = List.filteri (fun i _ -> i >= idx) b.Func.instrs in
  b.Func.instrs <- before @ instrs @ rest

let remove f iid =
  match find_instr f iid with
  | None -> None
  | Some (l, idx) ->
    let b = Func.block f l in
    let removed = List.nth b.Func.instrs idx in
    b.Func.instrs <- List.filteri (fun i _ -> i <> idx) b.Func.instrs;
    Some removed

let remove_at f l idx =
  let b = Func.block f l in
  let removed = List.nth b.Func.instrs idx in
  b.Func.instrs <- List.filteri (fun i _ -> i <> idx) b.Func.instrs;
  removed

let replace_kind f ~anchor kind =
  match find_instr f anchor with
  | None -> raise Not_found
  | Some (l, idx) ->
    let b = Func.block f l in
    b.Func.instrs <-
      List.mapi
        (fun i (ins : Instr.t) ->
          if i = idx then { ins with Instr.kind } else ins)
        b.Func.instrs

let instr f iid =
  let found = ref None in
  Func.iter_instrs f (fun _ i ->
      if i.Instr.iid = iid then found := Some i);
  !found
