type iid_info = {
  in_func : string;
  what : string;
}

type t = {
  layout : Layout.t;
  mutable funcs : (string * Func.t) list;
  by_name : (string, Func.t) Hashtbl.t;
  mutable next_iid : Instr.iid;
  iid_infos : (Instr.iid, iid_info) Hashtbl.t;
  mutable regions : Region.t list;
  mutable next_region_id : int;
  mutable next_channel : Instr.channel;
}

let create layout =
  {
    layout;
    funcs = [];
    by_name = Hashtbl.create 64;
    next_iid = 0;
    iid_infos = Hashtbl.create 1024;
    regions = [];
    next_region_id = 0;
    next_channel = 0;
  }

let fresh_iid t ~in_func ~what =
  let iid = t.next_iid in
  t.next_iid <- iid + 1;
  Hashtbl.replace t.iid_infos iid { in_func; what };
  iid

let add_func t (f : Func.t) =
  if not (Hashtbl.mem t.by_name f.Func.name) then
    t.funcs <- t.funcs @ [ (f.Func.name, f) ];
  Hashtbl.replace t.by_name f.Func.name f

let func t name = Hashtbl.find t.by_name name

let func_opt t name = Hashtbl.find_opt t.by_name name

let iid_info t iid = Hashtbl.find_opt t.iid_infos iid

let fresh_region_id t =
  let id = t.next_region_id in
  t.next_region_id <- id + 1;
  id

let fresh_channel t =
  let ch = t.next_channel in
  t.next_channel <- ch + 1;
  ch

let region_at t fname header =
  List.find_opt
    (fun (r : Region.t) ->
      String.equal r.Region.func fname && r.Region.header = header)
    t.regions

let clone t =
  let funcs = List.map (fun (name, f) -> (name, Func.clone f)) t.funcs in
  let by_name = Hashtbl.create 64 in
  List.iter (fun (name, f) -> Hashtbl.replace by_name name f) funcs;
  { t with funcs; by_name; iid_infos = Hashtbl.copy t.iid_infos }

let static_size t =
  List.fold_left (fun acc (_, f) -> acc + Func.instr_count f) 0 t.funcs
