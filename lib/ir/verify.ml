let func (f : Func.t) =
  let errors = ref [] in
  let err fmt =
    Printf.ksprintf
      (fun msg -> errors := Printf.sprintf "%s: %s" f.Func.name msg :: !errors)
      fmt
  in
  let n_blocks = Func.num_blocks f in
  let check_reg what r =
    if r < 0 || r >= f.Func.nregs then err "%s uses invalid register r%d" what r
  in
  let check_label what l =
    if l < 0 || l >= n_blocks then err "%s targets invalid block L%d" what l
  in
  List.iter (fun (_, r) -> check_reg "parameter" r) f.Func.params;
  if n_blocks = 0 then err "no blocks";
  Array.iteri
    (fun bl (b : Func.block) ->
      List.iter
        (fun (i : Instr.t) ->
          let where = Printf.sprintf "L%d/i%d" bl i.Instr.iid in
          List.iter (check_reg where) (Instr.defs i);
          List.iter (check_reg where) (Instr.uses i);
          match Instr.channel_of i with
          | Some ch when ch < 0 ->
            err "%s uses negative channel c%d" where ch
          | _ -> ())
        b.Func.instrs;
      let where = Printf.sprintf "L%d terminator" bl in
      List.iter (check_reg where) (Instr.term_uses b.Func.term);
      List.iter (check_label where) (Instr.successors b.Func.term))
    f.Func.blocks;
  List.rev !errors

let program (p : Prog.t) =
  let errors = ref [] in
  List.iter (fun (_, f) -> errors := !errors @ func f) p.Prog.funcs;
  (* Calls resolve. *)
  List.iter
    (fun (fname, f) ->
      Func.iter_instrs f (fun _ i ->
          match i.Instr.kind with
          | Instr.Call (_, callee, _) ->
            if Prog.func_opt p callee = None then
              errors :=
                !errors
                @ [
                    Printf.sprintf "%s: call to undefined function %s" fname
                      callee;
                  ]
          | _ -> ()))
    p.Prog.funcs;
  (* Synchronization channels were allocated by the program's channel
     allocator, and checked loads only exist where the memory-sync pass
     created a group for them (region metadata is the witness that the
     pass ran). *)
  let mem_group_ids =
    List.concat_map
      (fun (r : Region.t) ->
        List.map (fun (g : Region.mem_group) -> g.Region.mg_id) r.Region.mem_groups)
      p.Prog.regions
  in
  List.iter
    (fun (fname, f) ->
      Func.iter_instrs f (fun _ i ->
          match Instr.channel_of i with
          | Some ch ->
            if ch >= p.Prog.next_channel then
              errors :=
                !errors
                @ [
                    Printf.sprintf "%s: i%d uses unallocated channel c%d" fname
                      i.Instr.iid ch;
                  ];
            (match i.Instr.kind with
            | Instr.Sync_load _ when not (List.mem ch mem_group_ids) ->
              errors :=
                !errors
                @ [
                    Printf.sprintf
                      "%s: checked load i%d on channel c%d has no memory-sync \
                       group"
                      fname i.Instr.iid ch;
                  ]
            | _ -> ())
          | None -> ()))
    p.Prog.funcs;
  (* Instruction ids unique program-wide. *)
  let seen = Hashtbl.create 1024 in
  List.iter
    (fun (fname, f) ->
      Func.iter_instrs f (fun _ i ->
          match Hashtbl.find_opt seen i.Instr.iid with
          | Some other ->
            errors :=
              !errors
              @ [
                  Printf.sprintf "duplicate instruction id %d in %s and %s"
                    i.Instr.iid other fname;
                ]
          | None -> Hashtbl.replace seen i.Instr.iid fname))
    p.Prog.funcs;
  !errors

let check_exn p =
  match program p with
  | [] -> ()
  | errs -> failwith ("IR verification failed:\n  " ^ String.concat "\n  " errs)
