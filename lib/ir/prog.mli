(** A whole IR program: functions, memory layout, parallelized regions, and
    the global static-instruction-id allocator. *)

type iid_info = {
  in_func : string;
  what : string;          (* short description, e.g. "load" or "call use_element" *)
}

type t = {
  layout : Layout.t;
  mutable funcs : (string * Func.t) list;   (* in definition order *)
  by_name : (string, Func.t) Hashtbl.t;
  mutable next_iid : Instr.iid;
  iid_infos : (Instr.iid, iid_info) Hashtbl.t;
  mutable regions : Region.t list;
  mutable next_region_id : int;
  mutable next_channel : Instr.channel;
}

val create : Layout.t -> t

val fresh_iid : t -> in_func:string -> what:string -> Instr.iid

(** Register a function (last definition wins on duplicates). *)
val add_func : t -> Func.t -> unit

(** @raise Not_found on unknown functions. *)
val func : t -> string -> Func.t

val func_opt : t -> string -> Func.t option

val iid_info : t -> Instr.iid -> iid_info option

(** Allocate a region id. *)
val fresh_region_id : t -> int

(** Allocate a program-unique synchronization channel id.  Channels are
    globally unique so the simulator can tell an epoch's own channels from
    those of a (sequentially executed) nested region. *)
val fresh_channel : t -> Instr.channel

(** Region whose loop lives at [(func, header)], if any. *)
val region_at : t -> string -> Instr.label -> Region.t option

(** Copy with independently mutable functions/blocks but the same
    instruction ids, so profiles and region metadata keyed by iid still
    apply.  Regions and layout are shared with the original; intended for
    applying destructive IR mutations without disturbing the source. *)
val clone : t -> t

(** Total static instructions across all functions. *)
val static_size : t -> int
