(* The register IR.

   Virtual registers model the paper's "register-resident scalar values";
   all inter-epoch scalar communication happens through explicit
   [Wait_scalar]/[Signal_scalar] instructions inserted by the compiler.
   Memory-resident values are accessed only through [Load]/[Store] (and the
   synchronized [Sync_load] the memory-sync pass introduces).

   Every instruction carries a globally unique static id [iid], which plays
   the role of a PC: the dependence profiler names dynamic accesses by
   (iid, call stack) and the hardware tables of Steffan et al. [25] are
   indexed by it. *)

type reg = int
type label = int
type iid = int
type channel = int

type operand =
  | Reg of reg
  | Imm of int

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type kind =
  | Bin of binop * reg * operand * operand
  | Mov of reg * operand
  | Load of reg * operand                  (* dst <- mem[addr] *)
  | Store of operand * operand             (* mem[addr] <- value *)
  | Call of reg option * string * operand list
  | Print of operand
  | Input of reg * operand                 (* dst <- input[idx] *)
  | Input_len of reg
  (* TLS synchronization (inserted by the compiler passes): *)
  | Wait_scalar of channel * reg           (* stall for a forwarded scalar *)
  | Signal_scalar of channel * operand     (* forward a scalar to successor *)
  | Wait_mem of channel                    (* stall for forwarded (addr,value) *)
  | Sync_load of channel * reg * operand   (* checked load: use forwarded
                                              value if its address matches *)
  | Signal_mem of channel * operand        (* forward (addr, mem[addr]) *)
  | Signal_mem_if_unsent of channel * operand
      (* forward (addr, mem[addr]) unless the channel was already signaled
         this epoch — placed where a may-store-later analysis shows the
         value is final but an earlier signal may have covered the path *)
  | Signal_null of channel                 (* forward a NULL address *)
  | Signal_null_if_unsent of channel       (* epoch-end NULL for paths that
                                              never produced the value *)

type t = { iid : iid; kind : kind }

type terminator =
  | Jmp of label
  | Br of operand * label * label          (* cond, if-nonzero, if-zero *)
  | Ret of operand option

(* ------------------------------------------------------------------ *)

let defs (i : t) : reg list =
  match i.kind with
  | Bin (_, d, _, _)
  | Mov (d, _)
  | Load (d, _)
  | Input (d, _)
  | Input_len d
  | Wait_scalar (_, d)
  | Sync_load (_, d, _) ->
    [ d ]
  | Call (Some d, _, _) -> [ d ]
  | Call (None, _, _)
  | Store _ | Print _
  | Signal_scalar _ | Wait_mem _ | Signal_mem _ | Signal_mem_if_unsent _
  | Signal_null _ | Signal_null_if_unsent _ ->
    []

let operand_uses = function
  | Reg r -> [ r ]
  | Imm _ -> []

let uses (i : t) : reg list =
  match i.kind with
  | Bin (_, _, a, b) -> operand_uses a @ operand_uses b
  | Mov (_, a) | Load (_, a) | Print a | Input (_, a)
  | Signal_scalar (_, a) | Signal_mem (_, a) | Signal_mem_if_unsent (_, a) ->
    operand_uses a
  | Store (a, v) -> operand_uses a @ operand_uses v
  | Call (_, _, args) -> List.concat_map operand_uses args
  | Sync_load (_, _, a) -> operand_uses a
  (* A wait both defines and (sequentially) preserves its register: under
     sequential semantics it is the identity, so the prior value is live
     into it.  Modeling it as a use keeps liveness sound for both
     speculative and sequential executions. *)
  | Wait_scalar (_, d) -> [ d ]
  | Input_len _ | Wait_mem _ | Signal_null _ | Signal_null_if_unsent _ -> []

let term_uses = function
  | Jmp _ -> []
  | Br (c, _, _) -> operand_uses c
  | Ret (Some o) -> operand_uses o
  | Ret None -> []

let successors = function
  | Jmp l -> [ l ]
  | Br (_, a, b) -> if a = b then [ a ] else [ a; b ]
  | Ret _ -> []

let channel_of (i : t) : channel option =
  match i.kind with
  | Wait_scalar (ch, _)
  | Signal_scalar (ch, _)
  | Wait_mem ch
  | Sync_load (ch, _, _)
  | Signal_mem (ch, _)
  | Signal_mem_if_unsent (ch, _)
  | Signal_null ch
  | Signal_null_if_unsent ch ->
    Some ch
  | Bin _ | Mov _ | Load _ | Store _ | Call _ | Print _ | Input _
  | Input_len _ ->
    None

let is_memory_access (i : t) =
  match i.kind with
  | Load _ | Store _ | Sync_load _ -> true
  | Bin _ | Mov _ | Call _ | Print _ | Input _ | Input_len _ | Wait_scalar _
  | Signal_scalar _ | Wait_mem _ | Signal_mem _ | Signal_mem_if_unsent _
  | Signal_null _ | Signal_null_if_unsent _ ->
    false

let binop_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | Band -> "and"
  | Bor -> "or"
  | Bxor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b   (* workloads never trap *)
  | Rem -> if b = 0 then 0 else a mod b
  | Band -> a land b
  | Bor -> a lor b
  | Bxor -> a lxor b
  | Shl -> a lsl (b land 63)
  | Shr -> a asr (b land 63)
  | Eq -> if a = b then 1 else 0
  | Ne -> if a <> b then 1 else 0
  | Lt -> if a < b then 1 else 0
  | Le -> if a <= b then 1 else 0
  | Gt -> if a > b then 1 else 0
  | Ge -> if a >= b then 1 else 0
