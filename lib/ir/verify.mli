(** IR well-formedness checker, run by tests after every transformation.

    Checks per function: register operands and definitions within
    [nregs]; terminator targets within the block array; parameter
    registers valid; synchronization channel ids non-negative.  Per
    program: call targets resolve (builtins are instructions, so every
    [Call] must name a defined function); instruction ids unique
    program-wide; every channel id below the program's allocator mark;
    and checked loads ([Sync_load]) only on channels for which some
    region carries a memory-sync group — the region metadata witnesses
    that the memory-sync pass created them. *)

(** [func f] returns the list of violations (empty = well-formed). *)
val func : Func.t -> string list

(** [program p] checks every function plus the inter-function rules. *)
val program : Prog.t -> string list

(** Raise [Failure] with a readable message if the program is ill-formed
    (convenience for tests and pass pipelines). *)
val check_exn : Prog.t -> unit
