type block = {
  mutable instrs : Instr.t list;
  mutable term : Instr.terminator;
}

type t = {
  name : string;
  params : (string * Instr.reg) list;
  mutable nregs : int;
  mutable blocks : block array;
  reg_names : (Instr.reg, string) Hashtbl.t;
}

let entry = 0

let create name param_names =
  let reg_names = Hashtbl.create 16 in
  let params =
    List.mapi
      (fun i pname ->
        Hashtbl.replace reg_names i pname;
        (pname, i))
      param_names
  in
  { name; params; nregs = List.length param_names; blocks = [||]; reg_names }

let fresh_reg ?name f =
  let r = f.nregs in
  f.nregs <- r + 1;
  (match name with
  | Some n -> Hashtbl.replace f.reg_names r n
  | None -> ());
  r

let add_block f =
  let label = Array.length f.blocks in
  f.blocks <- Array.append f.blocks [| { instrs = []; term = Instr.Ret None } |];
  label

let block f l = f.blocks.(l)

let num_blocks f = Array.length f.blocks

let successors f l = Instr.successors f.blocks.(l).term

let predecessors f =
  let preds = Array.make (num_blocks f) [] in
  Array.iteri
    (fun l b ->
      List.iter
        (fun s -> preds.(s) <- l :: preds.(s))
        (Instr.successors b.term))
    f.blocks;
  Array.map List.rev preds

let iter_instrs f k =
  Array.iteri (fun l b -> List.iter (fun i -> k l i) b.instrs) f.blocks

let reg_name f r =
  match Hashtbl.find_opt f.reg_names r with
  | Some n -> n
  | None -> Printf.sprintf "r%d" r

let copy_with_iids ~fresh_iid ~new_name f =
  let copy_instr (i : Instr.t) = { i with Instr.iid = fresh_iid () } in
  let copy_block b =
    { instrs = List.map copy_instr b.instrs; term = b.term }
  in
  {
    name = new_name;
    params = f.params;
    nregs = f.nregs;
    blocks = Array.map copy_block f.blocks;
    reg_names = Hashtbl.copy f.reg_names;
  }

let clone f =
  {
    f with
    blocks = Array.map (fun b -> { instrs = b.instrs; term = b.term }) f.blocks;
    reg_names = Hashtbl.copy f.reg_names;
  }

let instr_count f =
  Array.fold_left (fun acc b -> acc + List.length b.instrs) 0 f.blocks
