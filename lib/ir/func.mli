(** IR functions: a CFG of basic blocks over virtual registers.

    Labels are indices into the block array; block 0 is the entry.  Blocks
    and instruction lists are mutable because the synchronization passes
    rewrite them in place. *)

type block = {
  mutable instrs : Instr.t list;
  mutable term : Instr.terminator;
}

type t = {
  name : string;
  params : (string * Instr.reg) list;
  mutable nregs : int;
  mutable blocks : block array;
  reg_names : (Instr.reg, string) Hashtbl.t;  (* debug names *)
}

(** [create name param_names] allocates registers for the parameters. *)
val create : string -> string list -> t

(** Allocate a fresh virtual register, optionally debug-named. *)
val fresh_reg : ?name:string -> t -> Instr.reg

(** Append an empty block (terminator [Ret None] until set); returns label. *)
val add_block : t -> Instr.label

val block : t -> Instr.label -> block
val entry : Instr.label
val num_blocks : t -> int

(** Successor labels of a block. *)
val successors : t -> Instr.label -> Instr.label list

(** Predecessor map, one entry per block label. *)
val predecessors : t -> Instr.label list array

(** Iterate over all instructions with their block label. *)
val iter_instrs : t -> (Instr.label -> Instr.t -> unit) -> unit

(** Debug name of a register, or ["r<n>"]. *)
val reg_name : t -> Instr.reg -> string

(** Structural copy with fresh instruction ids obtained from [fresh_iid].
    The copy shares no mutable state with the original. *)
val copy_with_iids : fresh_iid:(unit -> Instr.iid) -> new_name:string -> t -> t

(** Structural copy that keeps instruction ids.  Blocks are fresh records
    so mutating the clone's instruction lists leaves the original intact;
    the (immutable) instructions themselves are shared. *)
val clone : t -> t

(** Total static instruction count (terminators excluded). *)
val instr_count : t -> int
