type entry = { addr : int; words : int }

type t = {
  struct_fields : (string, (string * int) list) Hashtbl.t;  (* field -> off *)
  struct_sizes : (string, int) Hashtbl.t;
  globals : (string, entry) Hashtbl.t;
  order : string list;                                      (* decl order *)
  extent : int;
  inits : (int * int) list;
}

let globals_base = 4096
let words_per_line = 8

let sizeof_with sizes (ty : Lang.Ast.ty) =
  match ty with
  | Lang.Ast.Tint | Lang.Ast.Tptr _ -> 1
  | Lang.Ast.Tvoid -> 0
  | Lang.Ast.Tstruct name -> begin
    match Hashtbl.find_opt sizes name with
    | Some n -> n
    | None -> raise Not_found
  end

let build (p : Lang.Tast.tprogram) : t =
  let struct_fields = Hashtbl.create 16 in
  let struct_sizes = Hashtbl.create 16 in
  List.iter
    (fun (name, fields) ->
      let offsets, size =
        List.fold_left
          (fun (acc, off) (fname, _ty) -> ((fname, off) :: acc, off + 1))
          ([], 0) fields
      in
      Hashtbl.replace struct_fields name (List.rev offsets);
      Hashtbl.replace struct_sizes name size)
    p.Lang.Tast.tp_structs;
  let globals = Hashtbl.create 64 in
  let next = ref globals_base in
  let inits = ref [] in
  let order = ref [] in
  List.iter
    (fun (g : Lang.Ast.global) ->
      let elem_words = sizeof_with struct_sizes g.Lang.Ast.gty in
      let words =
        match g.Lang.Ast.array_len with
        | Some n -> n * elem_words
        | None -> elem_words
      in
      let addr = !next in
      Hashtbl.replace globals g.Lang.Ast.gname { addr; words };
      order := g.Lang.Ast.gname :: !order;
      (match g.Lang.Ast.init with
      | Some v -> inits := (addr, v) :: !inits
      | None -> ());
      next := addr + words)
    p.Lang.Tast.tp_globals;
  {
    struct_fields;
    struct_sizes;
    globals;
    order = List.rev !order;
    extent = !next - globals_base;
    inits = List.rev !inits;
  }

let sizeof t ty = sizeof_with t.struct_sizes ty

let field_offset t sname fname =
  let fields = Hashtbl.find t.struct_fields sname in
  match List.assoc_opt fname fields with
  | Some off -> off
  | None -> raise Not_found

let global_addr t name = (Hashtbl.find t.globals name).addr

let globals t =
  List.map
    (fun name ->
      let { addr; words } = Hashtbl.find t.globals name in
      (name, addr, words))
    t.order

let globals_extent t = t.extent

let initial_stores t = t.inits

let describe_addr t a =
  let best = ref None in
  List.iter
    (fun name ->
      let { addr; words } = Hashtbl.find t.globals name in
      if a >= addr && a < addr + words then best := Some (name, a - addr))
    t.order;
  match !best with
  | Some (name, 0) -> name
  | Some (name, off) -> Printf.sprintf "%s+%d" name off
  | None -> Printf.sprintf "0x%x" a
