(** In-place IR editing utilities shared by the synchronization passes
    and the sync scheduler. *)

(** Location of a static instruction: block label and index within it. *)
val find_instr : Func.t -> Instr.iid -> (Instr.label * int) option

(** [insert_before f ~anchor instrs] splices [instrs] immediately before the
    instruction with id [anchor].  @raise Not_found if absent. *)
val insert_before : Func.t -> anchor:Instr.iid -> Instr.t list -> unit

(** [insert_after f ~anchor instrs] splices immediately after [anchor]. *)
val insert_after : Func.t -> anchor:Instr.iid -> Instr.t list -> unit

(** Prepend instructions at the top of a block. *)
val prepend : Func.t -> Instr.label -> Instr.t list -> unit

(** Append instructions at the bottom of a block (before the terminator). *)
val append : Func.t -> Instr.label -> Instr.t list -> unit

(** [insert_at f l idx instrs] splices [instrs] so the first lands at
    position [idx] of block [l] ([idx] may equal the block length). *)
val insert_at : Func.t -> Instr.label -> int -> Instr.t list -> unit

(** Remove the instruction with the given id, returning it. *)
val remove : Func.t -> Instr.iid -> Instr.t option

(** Remove and return the instruction at a known position. *)
val remove_at : Func.t -> Instr.label -> int -> Instr.t

(** Replace the kind of instruction [anchor], keeping its id.
    @raise Not_found if absent. *)
val replace_kind : Func.t -> anchor:Instr.iid -> Instr.kind -> unit

(** The instruction with the given id, if present. *)
val instr : Func.t -> Instr.iid -> Instr.t option
