(** Memory layout of the simulated address space.

    The machine is word-addressed: every [int] and pointer occupies one
    word; a struct occupies one word per field.  Globals are laid out
    consecutively in declaration order starting at {!globals_base} — so two
    adjacent scalar globals share a cache line, which is how the
    false-sharing workload (m88ksim-like) gets its behaviour. *)

type t

(** Base address of the global segment. *)
val globals_base : int

(** Words per cache line (32-byte lines, 4-byte words — Table 1). *)
val words_per_line : int

(** Build the layout from the checked program. *)
val build : Lang.Tast.tprogram -> t

(** [sizeof layout ty] in words.  Structs are the sum of their fields. *)
val sizeof : t -> Lang.Ast.ty -> int

(** [field_offset layout struct_name field] in words.
    @raise Not_found for unknown struct/field. *)
val field_offset : t -> string -> string -> int

(** [global_addr layout name] is the word address of a global.
    @raise Not_found for unknown globals. *)
val global_addr : t -> string -> int

(** All globals in declaration order as [(name, addr, words)] — the
    abstract memory objects of the points-to analysis (an array is one
    summarized object). *)
val globals : t -> (string * int * int) list

(** Total extent of the global segment in words (for memory sizing). *)
val globals_extent : t -> int

(** Initial (address, value) pairs from scalar global initializers. *)
val initial_stores : t -> (int * int) list

(** Best-effort reverse lookup for diagnostics: name+offset at an address. *)
val describe_addr : t -> int -> string
