(* Benchmark harness.

   Part 1 — Bechamel microbenchmarks of the kernels behind each
   experiment: frontend, lowering, profiling, the synchronization pass,
   and the simulator in its sequential and TLS modes.

   Part 2 — full regeneration of every table and figure of the paper
   (the same output `bin/experiments` produces), so that
   `dune exec bench/main.exe` yields the complete evaluation.  Pass
   `-- --jobs N` to compute part 2's per-benchmark cells on N domains;
   the rendered bytes do not depend on N. *)

open Bechamel
open Toolkit

let bench_source =
  (Option.get (Workloads.Registry.find "mcf")).Workloads.Workload.source

let bench_input =
  (Option.get (Workloads.Registry.find "mcf")).Workloads.Workload.ref_input

let compiled_u =
  lazy
    (Tlscore.Pipeline.compile ~source:bench_source ~profile_input:bench_input
       ~memory_sync:Tlscore.Pipeline.No_memory_sync ())

let compiled_c =
  lazy
    (Tlscore.Pipeline.compile ~source:bench_source ~profile_input:bench_input
       ~memory_sync:
         (Tlscore.Pipeline.Profiled
            { dep_input = bench_input; threshold = 0.05 })
       ())

let tests =
  [
    Test.make ~name:"frontend: lex+parse+check"
      (Staged.stage (fun () -> ignore (Lang.Sema.check_source bench_source)));
    Test.make ~name:"compile: lower to IR"
      (Staged.stage (fun () -> ignore (Ir.Lower.compile_source bench_source)));
    Test.make ~name:"profile: loop+dep profiling run"
      (Staged.stage (fun () ->
           let prog = Ir.Lower.compile_source bench_source in
           let loops = Profiler.Runner.all_loops prog in
           ignore (Profiler.Runner.run prog ~input:bench_input ~watch:loops)));
    Test.make ~name:"pass: full pipeline with memory sync"
      (Staged.stage (fun () ->
           ignore
             (Tlscore.Pipeline.compile ~source:bench_source
                ~profile_input:bench_input
                ~memory_sync:
                  (Tlscore.Pipeline.Profiled
                     { dep_input = bench_input; threshold = 0.05 })
                ())));
    Test.make ~name:"sim: sequential timing run"
      (Staged.stage (fun () ->
           let u = Lazy.force compiled_u in
           ignore
             (Tls.Sim.run_sequential Tls.Config.default
                u.Tlscore.Pipeline.code ~input:bench_input
                ~track:u.Tlscore.Pipeline.code.Runtime.Code.regions)));
    Test.make ~name:"sim: TLS run (U, speculation)"
      (Staged.stage (fun () ->
           let u = Lazy.force compiled_u in
           ignore
             (Tls.Sim.run Tls.Config.u_mode u.Tlscore.Pipeline.code
                ~input:bench_input ())));
    Test.make ~name:"sim: TLS run (C, compiler sync)"
      (Staged.stage (fun () ->
           let c = Lazy.force compiled_c in
           ignore
             (Tls.Sim.run Tls.Config.c_mode c.Tlscore.Pipeline.code
                ~input:bench_input ())));
  ]

let run_microbenchmarks () =
  print_endline
    (Support.Table.section "Microbenchmarks (Bechamel, monotonic clock)");
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.8) ~stabilize:true ()
  in
  let rows =
    List.concat_map
      (fun test ->
        let results = Benchmark.all cfg instances test in
        let analyzed = Analyze.all ols Instance.monotonic_clock results in
        Hashtbl.fold
          (fun name ols_result acc ->
            let ns =
              match Analyze.OLS.estimates ols_result with
              | Some (est :: _) -> est
              | Some [] | None -> nan
            in
            [ name; Printf.sprintf "%.3f ms" (ns /. 1e6) ] :: acc)
          analyzed [])
      tests
  in
  print_endline (Support.Table.render ~header:[ "kernel"; "time/run" ] rows);
  print_newline ()

let run_experiments pool =
  let ctxs =
    pool.Harness.Jobs.map
      (fun (w : Workloads.Workload.t) ->
        Printf.eprintf "[setup] %s\n%!" w.Workloads.Workload.name;
        Harness.Context.make w)
      Workloads.Registry.all
  in
  print_endline (Harness.Figures.table1 ());
  print_newline ();
  List.iter
    (fun (name, f) ->
      Printf.eprintf "[bench] %s\n%!" name;
      print_endline (f pool ctxs);
      print_newline ())
    [
      ("fig2", fun pool ctxs -> Harness.Figures.fig2 ~pool ctxs);
      ("fig6", fun pool ctxs -> Harness.Figures.fig6 ~pool ctxs);
      ("fig7", fun pool ctxs -> Harness.Figures.fig7 ~pool ctxs);
      ("fig8", fun pool ctxs -> Harness.Figures.fig8 ~pool ctxs);
      ("fig9", fun pool ctxs -> Harness.Figures.fig9 ~pool ctxs);
      ("fig10", fun pool ctxs -> Harness.Figures.fig10 ~pool ctxs);
      ("fig11", fun pool ctxs -> Harness.Figures.fig11 ~pool ctxs);
      ("fig12", fun pool ctxs -> Harness.Figures.fig12 ~pool ctxs);
      ("table2", fun pool ctxs -> Harness.Figures.table2 ~pool ctxs);
      ("prose", fun pool ctxs -> Harness.Figures.prose_checks ~pool ctxs);
      ("ablations", fun pool ctxs -> Harness.Figures.ablations ~pool ctxs);
      ("extensions", fun pool ctxs -> Harness.Figures.extensions ~pool ctxs);
    ]

(* The Bechamel half needs no CLI, so keep argument handling minimal:
   `main.exe [--jobs N]`. *)
let jobs_of_argv () =
  let rec scan = function
    | "--jobs" :: n :: _ -> ( try int_of_string n with _ -> 1)
    | _ :: rest -> scan rest
    | [] -> 1
  in
  scan (Array.to_list Sys.argv)

let () =
  run_microbenchmarks ();
  run_experiments (Harness.Jobs.create ~jobs:(jobs_of_argv ()) ())
