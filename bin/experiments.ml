(* Regenerate the paper's tables and figures.

   Usage:
     experiments                  # everything
     experiments fig8 table2     # selected experiments
     experiments --bench parser --bench gap fig10   # selected benchmarks
     experiments --jobs 4        # domain-parallel cells, same bytes *)

let all_experiment_names =
  [
    "table1"; "fig2"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10"; "fig11";
    "fig12"; "table2"; "prose"; "ablations"; "extensions";
  ]

let run_experiments jobs benches experiments =
  let pool = Harness.Jobs.create ~jobs () in
  let workloads =
    match benches with
    | [] -> Workloads.Registry.all
    | names ->
      List.filter_map
        (fun n ->
          match Workloads.Registry.find n with
          | Some w -> Some w
          | None ->
            Printf.eprintf "unknown benchmark %s (have: %s)\n" n
              (String.concat ", " Workloads.Registry.names);
            exit 2)
        names
  in
  let experiments = if experiments = [] then all_experiment_names else experiments in
  let needs_ctx =
    List.exists (fun e -> not (String.equal e "table1")) experiments
  in
  let ctxs =
    if needs_ctx then begin
      pool.Harness.Jobs.map
        (fun (w : Workloads.Workload.t) ->
          Printf.eprintf "[setup] %s\n%!" w.Workloads.Workload.name;
          Harness.Context.make w)
        workloads
    end
    else []
  in
  List.iter
    (fun name ->
      Printf.eprintf "[run] %s\n%!" name;
      let output =
        match name with
        | "table1" -> Harness.Figures.table1 ()
        | "fig2" -> Harness.Figures.fig2 ~pool ctxs
        | "fig6" -> Harness.Figures.fig6 ~pool ctxs
        | "fig7" -> Harness.Figures.fig7 ~pool ctxs
        | "fig8" -> Harness.Figures.fig8 ~pool ctxs
        | "fig9" -> Harness.Figures.fig9 ~pool ctxs
        | "fig10" -> Harness.Figures.fig10 ~pool ctxs
        | "fig11" -> Harness.Figures.fig11 ~pool ctxs
        | "fig12" -> Harness.Figures.fig12 ~pool ctxs
        | "table2" -> Harness.Figures.table2 ~pool ctxs
        | "prose" -> Harness.Figures.prose_checks ~pool ctxs
        | "ablations" -> Harness.Figures.ablations ~pool ctxs
        | "extensions" -> Harness.Figures.extensions ~pool ctxs
        | other ->
          Printf.eprintf "unknown experiment %s (have: %s)\n" other
            (String.concat ", " all_experiment_names);
          exit 2
      in
      print_endline output;
      print_newline ())
    experiments

open Cmdliner

let jobs =
  let doc =
    "Worker domains for per-benchmark cells (1 = serial; output is \
     byte-identical for any value)."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let benches =
  let doc = "Restrict to one benchmark (repeatable)." in
  Arg.(value & opt_all string [] & info [ "bench"; "b" ] ~docv:"NAME" ~doc)

let experiments =
  let doc = "Experiments to run (default: all)." in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let cmd =
  let doc = "regenerate the paper's tables and figures" in
  Cmd.v
    (Cmd.info "experiments" ~doc)
    Term.(const run_experiments $ jobs $ benches $ experiments)

let () = exit (Cmd.eval cmd)
